#!/usr/bin/env bash
# Runs the google-benchmark micro suites and merges their JSON reports into
# one BENCH_micro.json so the perf trajectory accumulates run over run.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    build tree containing bench/ executables (default: build)
#   OUTPUT_JSON  merged report path (default: BENCH_micro.json in the repo root)
#
# Extra google-benchmark flags can be passed via DABS_BENCH_ARGS, e.g.
#   DABS_BENCH_ARGS='--benchmark_min_time=2s' bench/run_benches.sh
#
# Flip-kernel guard: when OUTPUT_JSON already holds a prior report, the new
# BM_BulkFlipK2000 flips/s is compared against it.  A drop beyond
# DABS_BENCH_TOLERANCE (default 0.10 = 10%, generous for shared runners)
# warns; set DABS_BENCH_GATE=1 to turn the warning into a hard failure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
output="${2:-${repo_root}/BENCH_micro.json}"
suites=(bench_micro_incremental bench_micro_search bench_micro_pipeline
        bench_micro_service bench_micro_problems)

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

ran=()
for suite in "${suites[@]}"; do
  exe="${build_dir}/bench/${suite}"
  if [[ ! -x "${exe}" ]]; then
    echo "skip: ${exe} not built (configure with -DDABS_BUILD_BENCH=ON" \
         "and install libbenchmark-dev)" >&2
    continue
  fi
  echo "== ${suite}" >&2
  # shellcheck disable=SC2086  # DABS_BENCH_ARGS is intentionally word-split
  "${exe}" --benchmark_out="${tmpdir}/${suite}.json" \
           --benchmark_out_format=json ${DABS_BENCH_ARGS:-} >&2
  ran+=("${suite}")
done

if [[ ${#ran[@]} -eq 0 ]]; then
  echo "error: no micro bench executable found under ${build_dir}/bench" >&2
  exit 1
fi

# Guard the flip-kernel hot path before overwriting the prior report: the
# telemetry layer must never leak into the inner loops.  Compares per-arg
# BM_BulkFlipK2000 flips/s (items_per_second) new vs old.
if [[ -f "${output}" ]] && command -v python3 >/dev/null 2>&1; then
  guard_status=0
  python3 - "${output}" "${tmpdir}/bench_micro_incremental.json" \
    "${DABS_BENCH_TOLERANCE:-0.10}" <<'PY' || guard_status=$?
import json, sys

prior_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])

def flips(report):
    return {b["name"]: b["items_per_second"]
            for b in report.get("benchmarks", [])
            if b["name"].startswith("BM_BulkFlipK2000") and
               "items_per_second" in b}

try:
    with open(prior_path) as f:
        prior = flips(json.load(f).get("bench_micro_incremental", {}))
    with open(fresh_path) as f:
        fresh = flips(json.load(f))
except (OSError, json.JSONDecodeError) as e:
    print(f"flip guard: skip ({e})", file=sys.stderr)
    sys.exit(0)

regressed = False
for name, before in sorted(prior.items()):
    after = fresh.get(name)
    if after is None:
        continue
    delta = (after - before) / before
    print(f"flip guard: {name} {before / 1e6:.2f} -> {after / 1e6:.2f} "
          f"Mflips/s ({delta:+.1%})", file=sys.stderr)
    if delta < -tolerance:
        regressed = True
sys.exit(2 if regressed else 0)
PY
  if [[ "${guard_status}" -ne 0 ]]; then
    echo "WARNING: BM_BulkFlipK2000 regressed beyond" \
         "${DABS_BENCH_TOLERANCE:-0.10} tolerance" >&2
    if [[ "${DABS_BENCH_GATE:-0}" = "1" ]]; then
      echo "FAIL: flip-kernel regression (DABS_BENCH_GATE=1)" >&2
      exit 1
    fi
  fi
elif [[ -f "${output}" ]]; then
  echo "flip guard: skip (python3 not found)" >&2
fi

# Merge: one object keyed by suite name, each holding the full
# google-benchmark report (context + benchmarks array).
python3 - "${output}" "${tmpdir}" "${ran[@]}" <<'PY'
import json, sys
output, tmpdir, suites = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for s in suites:
    try:
        with open(f"{tmpdir}/{s}.json") as f:
            merged[s] = json.load(f)
    except (OSError, json.JSONDecodeError) as e:  # e.g. filtered-out suite
        print(f"skip {s}: {e}", file=sys.stderr)
with open(output, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY
echo "wrote ${output} (${#ran[@]} suites)" >&2
