#!/usr/bin/env bash
# Runs the google-benchmark micro suites and merges their JSON reports into
# one BENCH_micro.json so the perf trajectory accumulates run over run.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    build tree containing bench/ executables (default: build)
#   OUTPUT_JSON  merged report path (default: BENCH_micro.json in the repo root)
#
# Extra google-benchmark flags can be passed via DABS_BENCH_ARGS, e.g.
#   DABS_BENCH_ARGS='--benchmark_min_time=2s' bench/run_benches.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
output="${2:-${repo_root}/BENCH_micro.json}"
suites=(bench_micro_incremental bench_micro_search bench_micro_pipeline
        bench_micro_service bench_micro_problems)

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

ran=()
for suite in "${suites[@]}"; do
  exe="${build_dir}/bench/${suite}"
  if [[ ! -x "${exe}" ]]; then
    echo "skip: ${exe} not built (configure with -DDABS_BUILD_BENCH=ON" \
         "and install libbenchmark-dev)" >&2
    continue
  fi
  echo "== ${suite}" >&2
  # shellcheck disable=SC2086  # DABS_BENCH_ARGS is intentionally word-split
  "${exe}" --benchmark_out="${tmpdir}/${suite}.json" \
           --benchmark_out_format=json ${DABS_BENCH_ARGS:-} >&2
  ran+=("${suite}")
done

if [[ ${#ran[@]} -eq 0 ]]; then
  echo "error: no micro bench executable found under ${build_dir}/bench" >&2
  exit 1
fi

# Merge: one object keyed by suite name, each holding the full
# google-benchmark report (context + benchmarks array).
python3 - "${output}" "${tmpdir}" "${ran[@]}" <<'PY'
import json, sys
output, tmpdir, suites = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for s in suites:
    try:
        with open(f"{tmpdir}/{s}.json") as f:
            merged[s] = json.load(f)
    except (OSError, json.JSONDecodeError) as e:  # e.g. filtered-out suite
        print(f"skip {s}: {e}", file=sys.stderr)
with open(output, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PY
echo "wrote ${output} (${#ran[@]} suites)" >&2
