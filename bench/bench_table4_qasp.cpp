// Table IV reproduction: QASP at resolutions r = 1, 16, 256 on the Pegasus
// working graph (paper: D-Wave Advantage 4.1, 5627 qubits).  Rows: DABS
// (TTS), ABS (TTS + probability), comparator gaps.
#include <algorithm>

#include "baseline/baseline_result.hpp"  // energy_gap
#include "bench_common.hpp"
#include "problems/qasp.hpp"

namespace dabs {
namespace {

namespace pr = problems;
using bench::bulk_options;

pr::QaspParams qasp_params(int resolution) {
  pr::QaspParams p;
  p.resolution = resolution;
  if (bench::full_size()) {
    p.pegasus_m = 16;
    p.working_nodes = 5627;  // Advantage 4.1 working-qubit count
  } else {
    p.pegasus_m = 4;
    p.working_nodes = 280;  // ~97% of P4's 288 qubits
  }
  p.graph_seed = 41;
  p.value_seed = 42 + resolution;
  return p;
}

void run() {
  bench::print_banner("Table IV — QASP r = 1 / 16 / 256 (Pegasus)");
  bench::JsonSink sink("table4_qasp");
  io::ResultsTable table("Table IV");
  table.columns({"QASP", "nodes", "edges", "ref", "DABS best", "DABS TTS",
                 "DABS succ", "ABS best", "ABS succ", "SA gap", "Tabu gap"});

  const double time_budget = 4.0 * bench::scale();
  const std::size_t n_trials = bench::trials(5);

  for (const int r : {1, 16, 256}) {
    const pr::QaspInstance inst = pr::make_qasp(qasp_params(r));
    bench::note("QASP" + std::to_string(r) + ": " + inst.qubo.describe());

    StopCondition ref_stop;
    ref_stop.time_limit_seconds = 2.0 * time_budget;
    const SolveReport ref = bench::solve_on(
        *bench::make_solver("dabs", bulk_options(21, 0.1, 1.0)), inst.qubo,
        ref_stop);
    Energy best_known = ref.best_energy;

    StopCondition cmp_stop;
    cmp_stop.time_limit_seconds = time_budget;
    const SolveReport sa = bench::solve_on(
        *bench::make_solver("sa", SolverOptions{{"sweeps", "2000"},
                                                {"restarts", "6"}}),
        inst.qubo, cmp_stop);
    const SolveReport tb = bench::solve_on(
        *bench::make_solver("tabu", SolverOptions{{"iterations", "300000"}}),
        inst.qubo, cmp_stop);
    best_known = std::min({best_known, sa.best_energy, tb.best_energy});

    const auto dabs_camp = bench::run_registry_campaign(
        inst.qubo, best_known, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver("dabs", bulk_options(500 + t, 0.1, 1.0));
        });
    const auto abs_camp = bench::run_registry_campaign(
        inst.qubo, best_known, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver("abs", bulk_options(600 + t, 0.1, 1.0));
        });

    const std::string name = "QASP" + std::to_string(r);
    table.add_row(
        {name, std::to_string(inst.nodes),
         std::to_string(inst.edge_count), io::fmt_energy(best_known),
         io::fmt_energy(dabs_camp.best_energy),
         dabs_camp.successes ? io::fmt_seconds(dabs_camp.tts.mean()) : "-",
         io::fmt_percent(dabs_camp.success_rate()),
         io::fmt_energy(abs_camp.best_energy),
         io::fmt_percent(abs_camp.success_rate()),
         io::fmt_gap(energy_gap(sa.best_energy, best_known)),
         io::fmt_gap(energy_gap(tb.best_energy, best_known))});
    sink.metric("success_rate_dabs_" + name, dabs_camp.success_rate());
    sink.metric("success_rate_abs_" + name, abs_camp.success_rate());
    if (dabs_camp.successes) {
      sink.metric("tts_mean_dabs_" + name, dabs_camp.tts.mean());
    }
    sink.row({{"instance", name},
              {"nodes", std::to_string(inst.nodes)},
              {"edges", std::to_string(inst.edge_count)},
              {"ref_energy", std::to_string(best_known)},
              {"dabs_best", std::to_string(dabs_camp.best_energy)},
              {"abs_best", std::to_string(abs_camp.best_energy)}});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
