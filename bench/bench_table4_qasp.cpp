// Table IV reproduction: QASP at resolutions r = 1, 16, 256 on the Pegasus
// working graph (paper: D-Wave Advantage 4.1, 5627 qubits).  Rows: DABS
// (TTS), ABS (TTS + probability), comparator gaps.
#include "baseline/abs_solver.hpp"
#include "baseline/simulated_annealing.hpp"
#include "baseline/tabu_search.hpp"
#include "bench_common.hpp"
#include "problems/qasp.hpp"

namespace dabs {
namespace {

namespace pr = problems;
using bench::bench_config;

pr::QaspParams qasp_params(int resolution) {
  pr::QaspParams p;
  p.resolution = resolution;
  if (bench::full_size()) {
    p.pegasus_m = 16;
    p.working_nodes = 5627;  // Advantage 4.1 working-qubit count
  } else {
    p.pegasus_m = 4;
    p.working_nodes = 280;  // ~97% of P4's 288 qubits
  }
  p.graph_seed = 41;
  p.value_seed = 42 + resolution;
  return p;
}

void run() {
  bench::print_banner("Table IV — QASP r = 1 / 16 / 256 (Pegasus)");
  io::ResultsTable table("Table IV");
  table.columns({"QASP", "nodes", "edges", "ref", "DABS best", "DABS TTS",
                 "DABS succ", "ABS best", "ABS succ", "SA gap", "Tabu gap"});

  const double time_budget = 4.0 * bench::scale();
  const std::size_t n_trials = bench::trials(5);

  for (const int r : {1, 16, 256}) {
    const pr::QaspInstance inst = pr::make_qasp(qasp_params(r));
    bench::note("QASP" + std::to_string(r) + ": " + inst.qubo.describe());

    SolverConfig ref_cfg = bench_config(21, 0.1, 1.0);
    ref_cfg.stop.time_limit_seconds = 2.0 * time_budget;
    const SolveResult ref = DabsSolver(ref_cfg).solve(inst.qubo);
    Energy best_known = ref.best_energy;

    SaParams sa_p;
    sa_p.sweeps = 2000;
    sa_p.restarts = 6;
    sa_p.time_limit_seconds = time_budget;
    const BaselineResult sa = SimulatedAnnealing(sa_p).solve(inst.qubo);
    TabuSearchParams tb_p;
    tb_p.iterations = 300000;
    tb_p.time_limit_seconds = time_budget;
    const BaselineResult tb = TabuSearch(tb_p).solve(inst.qubo);
    best_known = std::min({best_known, sa.best_energy, tb.best_energy});

    const auto dabs_camp = bench::run_campaign(
        inst.qubo, best_known, n_trials, [&](std::size_t t) {
          SolverConfig c = bench_config(500 + t, 0.1, 1.0);
          c.stop.target_energy = best_known;
          c.stop.time_limit_seconds = time_budget;
          return DabsSolver(c);
        });
    const auto abs_camp = bench::run_campaign(
        inst.qubo, best_known, n_trials, [&](std::size_t t) {
          SolverConfig c = bench_config(600 + t, 0.1, 1.0);
          c.stop.target_energy = best_known;
          c.stop.time_limit_seconds = time_budget;
          return AbsSolver(c);
        });

    table.add_row(
        {"QASP" + std::to_string(r), std::to_string(inst.nodes),
         std::to_string(inst.edge_count), io::fmt_energy(best_known),
         io::fmt_energy(dabs_camp.best_energy),
         dabs_camp.successes ? io::fmt_seconds(dabs_camp.tts.mean()) : "-",
         io::fmt_percent(dabs_camp.success_rate()),
         io::fmt_energy(abs_camp.best_energy),
         io::fmt_percent(abs_camp.success_rate()),
         io::fmt_gap(energy_gap(sa.best_energy, best_known)),
         io::fmt_gap(energy_gap(tb.best_energy, best_known))});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
