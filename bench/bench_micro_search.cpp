// Micro benchmarks (google-benchmark): per-iteration cost of each main
// search algorithm and throughput of a whole batch search.
#include <benchmark/benchmark.h>

#include "evolve/genetic_ops.hpp"
#include "problems/maxcut.hpp"
#include "qubo/search_state.hpp"
#include "search/batch_search.hpp"
#include "search/registry.hpp"

namespace dabs {
namespace {

const QuboModel& k300() {
  static const QuboModel m =
      problems::maxcut_to_qubo(problems::make_complete_maxcut(300, 7, "K300"));
  return m;
}

void BM_MainSearchIteration(benchmark::State& state) {
  const auto id = static_cast<MainSearch>(state.range(0));
  const QuboModel& m = k300();
  SearchState s(m);
  Rng rng(1);
  s.reset_to(random_bit_vector(m.size(), rng));
  TabuList tabu(m.size(), 8);
  auto algo = make_search_algorithm(id);
  for (auto _ : state) {
    algo->run(s, rng, &tabu, 16);
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.SetLabel(std::string(to_string(id)));
}
BENCHMARK(BM_MainSearchIteration)
    ->DenseRange(0, static_cast<int>(kMainSearchCount) - 1);

void BM_BatchSearchThroughput(benchmark::State& state) {
  const QuboModel& m = k300();
  BatchParams p;
  p.search_flip_factor = 0.1;
  p.batch_flip_factor = 1.0;
  BatchSearch bs(m, p, 42);
  Rng rng(2);
  std::uint64_t flips = 0;
  for (auto _ : state) {
    const BitVector target = random_bit_vector(m.size(), rng);
    const BatchResult r = bs.run(target, MainSearch::kCyclicMin);
    flips += r.flips;
    benchmark::DoNotOptimize(r.best_energy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flips));
  state.SetLabel("flips/sec");
}
BENCHMARK(BM_BatchSearchThroughput);

void BM_GreedyDescent(benchmark::State& state) {
  const QuboModel& m = k300();
  SearchState s(m);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    s.reset_to(random_bit_vector(m.size(), rng));
    state.ResumeTiming();
    ScanResult r = s.scan();
    while (r.min_delta < 0) r = s.flip_and_scan(r.argmin);
    benchmark::DoNotOptimize(s.energy());
  }
}
BENCHMARK(BM_GreedyDescent);

void BM_GeneticOperation(benchmark::State& state) {
  const auto op = static_cast<GeneticOp>(state.range(0));
  const std::size_t n = 2000;
  SolutionPool pool(100, n);
  SolutionPool neighbor(100, n);
  Rng rng(4);
  pool.initialize_random(rng);
  neighbor.initialize_random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        apply_genetic_op(op, n, pool, &neighbor, rng));
  }
  state.SetLabel(std::string(to_string(op)));
}
BENCHMARK(BM_GeneticOperation)
    ->DenseRange(0, static_cast<int>(kGeneticOpCount) - 1);

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
