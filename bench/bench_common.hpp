// Shared infrastructure for the table/figure reproduction benches.
//
// Scaling: the paper's campaigns (1,000 executions on 8 A100s) are far
// beyond a single-core CI budget, so each bench defaults to a reduced
// instance size and trial count whose *shape* (who wins, relative TTS,
// frequency patterns) mirrors the paper, and scales up via:
//
//   DABS_BENCH_SCALE=<float>   multiplies trial counts / time limits (def 1)
//   DABS_BENCH_FULL=1          switches to the paper's full instance sizes
//
// Protocol for "potentially optimal" reference values (paper §I-B): the
// best energy any solver ever attains within the bench becomes the
// reference; DABS TTS/success statistics are then measured against it,
// matching the paper's operational definition at bench scale.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/dabs_solver.hpp"
#include "io/results_writer.hpp"
#include "qubo/qubo_model.hpp"
#include "util/stats.hpp"

namespace dabs::bench {

inline double scale() {
  if (const char* s = std::getenv("DABS_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline bool full_size() {
  const char* s = std::getenv("DABS_BENCH_FULL");
  return s != nullptr && std::string(s) != "0";
}

/// Trial count scaled by DABS_BENCH_SCALE (at least 1).
inline std::size_t trials(std::size_t base) {
  const auto t = static_cast<std::size_t>(double(base) * scale());
  return t > 0 ? t : 1;
}

/// Baseline solver config shared by the benches (paper §VI defaults:
/// 100-packet pools, tabu 8; devices/blocks shrunk to CPU scale).
inline SolverConfig bench_config(std::uint64_t seed, double s_factor,
                                 double b_factor) {
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.device.batch.search_flip_factor = s_factor;
  c.device.batch.batch_flip_factor = b_factor;
  c.device.batch.tabu_tenure = 8;
  c.pool_capacity = 100;
  c.mode = ExecutionMode::kSynchronous;
  c.seed = seed;
  return c;
}

struct TrialCampaign {
  Energy best_energy = kInfiniteEnergy;  // best over all trials
  SummaryStats tts;                      // seconds, successful trials only
  std::size_t successes = 0;
  std::size_t runs = 0;
  std::vector<double> tts_samples;

  double success_rate() const {
    return runs ? double(successes) / double(runs) : 0.0;
  }
};

/// Runs `n_trials` independent DABS executions against a known target.
/// Each trial stops at the target or at the batch/time budget in `proto`.
template <typename MakeSolver>
TrialCampaign run_campaign(const QuboModel& model, Energy target,
                           std::size_t n_trials, MakeSolver&& make_solver) {
  TrialCampaign camp;
  for (std::size_t t = 0; t < n_trials; ++t) {
    auto solver = make_solver(t);
    const SolveResult r = solver.solve(model);
    ++camp.runs;
    if (r.best_energy < camp.best_energy) camp.best_energy = r.best_energy;
    if (r.reached_target && r.best_energy <= target) {
      ++camp.successes;
      camp.tts.add(r.tts_seconds);
      camp.tts_samples.push_back(r.tts_seconds);
    }
  }
  return camp;
}

inline void note(const std::string& msg) { std::cout << msg << "\n"; }

inline void print_banner(const std::string& title) {
  std::cout << "\n" << std::string(72, '=') << "\n"
            << title << "\n"
            << "scale=" << scale() << (full_size() ? " FULL" : " reduced")
            << " (set DABS_BENCH_FULL=1 / DABS_BENCH_SCALE=<f> to grow)\n"
            << std::string(72, '=') << "\n";
}

}  // namespace dabs::bench
