// Shared infrastructure for the table/figure reproduction benches.
//
// Scaling: the paper's campaigns (1,000 executions on 8 A100s) are far
// beyond a single-core CI budget, so each bench defaults to a reduced
// instance size and trial count whose *shape* (who wins, relative TTS,
// frequency patterns) mirrors the paper, and scales up via:
//
//   DABS_BENCH_SCALE=<float>   multiplies trial counts / time limits (def 1)
//   DABS_BENCH_FULL=1          switches to the paper's full instance sizes
//
// Protocol for "potentially optimal" reference values (paper §I-B): the
// best energy any solver ever attains within the bench becomes the
// reference; DABS TTS/success statistics are then measured against it,
// matching the paper's operational definition at bench scale.
// JSON emission (the tracked paper harness): when DABS_BENCH_JSON names a
// file, each bench writes its headline metrics and table rows there via
// JsonSink; bench/run_paper.sh merges the per-suite files into
// BENCH_paper.json so the reproduction-quality trajectory accumulates run
// over run, exactly like the micro benches' BENCH_micro.json.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/dabs_solver.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "io/json_writer.hpp"
#include "io/results_writer.hpp"
#include "qubo/qubo_model.hpp"
#include "util/stats.hpp"

namespace dabs::bench {

inline double scale() {
  if (const char* s = std::getenv("DABS_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline bool full_size() {
  const char* s = std::getenv("DABS_BENCH_FULL");
  return s != nullptr && std::string(s) != "0";
}

/// Trial count scaled by DABS_BENCH_SCALE (at least 1).
inline std::size_t trials(std::size_t base) {
  const auto t = static_cast<std::size_t>(double(base) * scale());
  return t > 0 ? t : 1;
}

/// Baseline solver config shared by the benches (paper §VI defaults:
/// 100-packet pools, tabu 8; devices/blocks shrunk to CPU scale).
inline SolverConfig bench_config(std::uint64_t seed, double s_factor,
                                 double b_factor) {
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.device.batch.search_flip_factor = s_factor;
  c.device.batch.batch_flip_factor = b_factor;
  c.device.batch.tabu_tenure = 8;
  c.pool_capacity = 100;
  c.mode = ExecutionMode::kSynchronous;
  c.seed = seed;
  return c;
}

/// The registry-option spelling of bench_config(): the paper benches
/// construct their solvers through SolverRegistry so the harness exercises
/// the exact surface the CLI and server expose.
inline SolverOptions bulk_options(std::uint64_t seed, double s_factor,
                                  double b_factor) {
  return SolverOptions{{"devices", "2"},
                       {"blocks", "2"},
                       {"pool", "100"},
                       {"s", std::to_string(s_factor)},
                       {"b", std::to_string(b_factor)},
                       {"seed", std::to_string(seed)}};
}

/// Registry construction, by the same path as `dabs-cli --solver`.
inline std::unique_ptr<Solver> make_solver(const std::string& name,
                                           const SolverOptions& opts) {
  return SolverRegistry::global().create(name, opts);
}

/// One registry-driven solve through the unified request protocol.
inline SolveReport solve_on(Solver& solver, const QuboModel& model,
                            const StopCondition& stop) {
  SolveRequest req;
  req.model = &model;
  req.stop = stop;
  return solver.solve(req);
}

struct TrialCampaign {
  Energy best_energy = kInfiniteEnergy;  // best over all trials
  SummaryStats tts;                      // seconds, successful trials only
  std::size_t successes = 0;
  std::size_t runs = 0;
  std::vector<double> tts_samples;

  double success_rate() const {
    return runs ? double(successes) / double(runs) : 0.0;
  }
};

/// Runs `n_trials` independent DABS executions against a known target.
/// Each trial stops at the target or at the batch/time budget in `proto`.
template <typename MakeSolver>
TrialCampaign run_campaign(const QuboModel& model, Energy target,
                           std::size_t n_trials, MakeSolver&& make_solver) {
  TrialCampaign camp;
  for (std::size_t t = 0; t < n_trials; ++t) {
    auto solver = make_solver(t);
    const SolveResult r = solver.solve(model);
    ++camp.runs;
    if (r.best_energy < camp.best_energy) camp.best_energy = r.best_energy;
    if (r.reached_target && r.best_energy <= target) {
      ++camp.successes;
      camp.tts.add(r.tts_seconds);
      camp.tts_samples.push_back(r.tts_seconds);
    }
  }
  return camp;
}

/// Registry-side twin of run_campaign(): `make_solver(t)` returns a
/// std::unique_ptr<Solver>; every trial runs through the SolveRequest
/// protocol against `target` under `time_budget` seconds.
template <typename MakeSolver>
TrialCampaign run_registry_campaign(const QuboModel& model, Energy target,
                                    double time_budget, std::size_t n_trials,
                                    MakeSolver&& make_solver) {
  TrialCampaign camp;
  for (std::size_t t = 0; t < n_trials; ++t) {
    StopCondition stop;
    stop.target_energy = target;
    stop.time_limit_seconds = time_budget;
    const SolveReport r = solve_on(*make_solver(t), model, stop);
    ++camp.runs;
    if (r.best_energy < camp.best_energy) camp.best_energy = r.best_energy;
    if (r.reached_target && r.best_energy <= target) {
      ++camp.successes;
      camp.tts.add(r.tts_seconds);
      camp.tts_samples.push_back(r.tts_seconds);
    }
  }
  return camp;
}

/// Collects a bench's headline metrics and table rows, then writes them as
/// one JSON object to the DABS_BENCH_JSON path on flush/destruction (no-op
/// when the variable is unset — interactive runs just print tables).
class JsonSink {
 public:
  explicit JsonSink(std::string suite) : suite_(std::move(suite)) {}
  ~JsonSink() { flush(); }

  JsonSink(const JsonSink&) = delete;
  JsonSink& operator=(const JsonSink&) = delete;

  void metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  /// One table row as ordered (column, cell) pairs.
  void row(std::vector<std::pair<std::string, std::string>> cells) {
    rows_.push_back(std::move(cells));
  }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    const char* path = std::getenv("DABS_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "JsonSink: cannot open " << path << "\n";
      return;
    }
    io::JsonWriter json(out);
    json.begin_object();
    json.value("suite", suite_);
    json.value("scale", scale());
    json.value("full_size", full_size());
    json.begin_object("metrics");
    for (const auto& [k, v] : metrics_) json.value(k, v);
    json.end_object();
    json.begin_array("rows");
    for (const auto& cells : rows_) {
      json.begin_object();
      for (const auto& [k, v] : cells) json.value(k, v);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

 private:
  std::string suite_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  bool flushed_ = false;
};

inline void note(const std::string& msg) { std::cout << msg << "\n"; }

inline void print_banner(const std::string& title) {
  std::cout << "\n" << std::string(72, '=') << "\n"
            << title << "\n"
            << "scale=" << scale() << (full_size() ? " FULL" : " reduced")
            << " (set DABS_BENCH_FULL=1 / DABS_BENCH_SCALE=<f> to grow)\n"
            << std::string(72, '=') << "\n";
}

}  // namespace dabs::bench
