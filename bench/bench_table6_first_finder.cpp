// Table VI reproduction: frequency of the main search algorithm / genetic
// operation that *first found* the best solution, across repeated DABS
// executions per problem.  The first-finder pair comes from the report's
// `first_finder_algo` / `first_finder_op` extras.
#include <map>

#include "bench_common.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"
#include "problems/qasp.hpp"

namespace dabs {
namespace {

namespace pr = problems;

struct Case {
  std::string name;
  QuboModel model;
  double s, b;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  const bool full = bench::full_size();
  out.push_back({"K2000f",
                 pr::maxcut_to_qubo(full ? pr::make_k2000()
                                         : pr::make_complete_maxcut(
                                               300, 2000, "K300")),
                 0.1, 10.0});
  out.push_back(
      {"qapf",
       pr::qap_to_qubo(full ? pr::make_grid_qap(5, 6, 10, 30, "nug30-like")
                            : pr::make_grid_qap(3, 4, 10, 30, "nug12-like"))
           .model,
       0.1, 1.0});
  {
    pr::QaspParams p;
    p.pegasus_m = full ? 16 : 4;
    p.working_nodes = full ? 5627 : 280;
    p.resolution = 16;
    p.value_seed = 42 + 16;
    out.push_back({"QASP16", pr::make_qasp(p).qubo, 0.1, 1.0});
  }
  return out;
}

void run() {
  bench::print_banner(
      "Table VI — first-finder frequency over repeated executions");
  bench::JsonSink sink("table6_first_finder");

  io::ResultsTable algos("Table VI (a): first-finder algorithm frequency");
  std::vector<std::string> algo_cols = {"problem"};
  for (const MainSearch s : kAllMainSearches) {
    algo_cols.emplace_back(to_string(s));
  }
  algos.columns(algo_cols);

  io::ResultsTable ops("Table VI (b): first-finder operation frequency");
  std::vector<std::string> op_cols = {"problem"};
  for (const GeneticOp op : kDabsGeneticOps) {
    op_cols.emplace_back(to_string(op));
  }
  ops.columns(op_cols);

  const std::size_t n_runs = bench::trials(10);
  const double time_budget = 2.0 * bench::scale();

  for (const Case& c : cases()) {
    std::map<std::string, std::size_t> algo_hits;
    std::map<std::string, std::size_t> op_hits;
    std::size_t recorded = 0;
    for (std::size_t run = 0; run < n_runs; ++run) {
      StopCondition stop;
      stop.time_limit_seconds = time_budget;
      const SolveReport r = bench::solve_on(
          *bench::make_solver("dabs",
                              bench::bulk_options(9000 + run, c.s, c.b)),
          c.model, stop);
      const auto fa = r.extras.find("first_finder_algo");
      const auto fo = r.extras.find("first_finder_op");
      if (fa != r.extras.end() && fo != r.extras.end()) {
        ++algo_hits[fa->second];
        ++op_hits[fo->second];
        ++recorded;
      }
    }
    std::vector<std::string> arow = {c.name};
    for (const MainSearch s : kAllMainSearches) {
      const std::size_t hits = algo_hits[std::string(to_string(s))];
      const double f = recorded ? double(hits) / double(recorded) : 0.0;
      arow.push_back(io::fmt_percent(f));
      sink.row({{"problem", c.name},
                {"kind", "algo"},
                {"name", std::string(to_string(s))},
                {"fraction", std::to_string(f)}});
    }
    algos.add_row(arow);
    std::vector<std::string> orow = {c.name};
    for (const GeneticOp op : kDabsGeneticOps) {
      const std::size_t hits = op_hits[std::string(to_string(op))];
      const double f = recorded ? double(hits) / double(recorded) : 0.0;
      orow.push_back(io::fmt_percent(f));
      sink.row({{"problem", c.name},
                {"kind", "op"},
                {"name", std::string(to_string(op))},
                {"fraction", std::to_string(f)}});
    }
    ops.add_row(orow);
  }
  algos.print(std::cout);
  ops.print(std::cout);
  bench::note("paper shape: the first-finder distribution differs from the "
              "executed-frequency distribution (Table V vs VI) — the best "
              "algorithm changes between phases of the search.");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
