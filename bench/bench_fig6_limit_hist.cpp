// Fig. 6 reproduction: histogram of best solutions found within fixed time
// limits T, 2T, 4T.  The paper runs the D-Wave Hybrid solver at T = 50, 100,
// 200 s; our comparator is the "sa" registry solver (DESIGN.md §2) — the
// shape to reproduce is "longer limits shift mass toward the optimum".
#include <array>
#include <map>

#include "bench_common.hpp"
#include "problems/maxcut.hpp"

namespace dabs {
namespace {

namespace pr = problems;

void run() {
  bench::print_banner("Fig. 6 — solution histogram vs time limit (SA "
                      "comparator standing in for D-Wave Hybrid)");
  bench::JsonSink sink("fig6_limit_hist");
  const auto inst = bench::full_size()
                        ? pr::make_k2000()
                        : pr::make_complete_maxcut(300, 2000, "K300");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  bench::note("instance " + inst.name + ": " + m.describe());

  // Short enough that the smallest limit misses the optimum regularly —
  // otherwise all three histograms degenerate onto one bar.
  const double base_limit = 0.03 * bench::scale();
  const std::size_t runs_per_limit = bench::trials(20);

  io::ResultsTable table("Fig. 6 histogram (energy -> count per limit)");
  table.columns({"energy", "T=" + io::fmt_seconds(base_limit),
                 "T=" + io::fmt_seconds(2 * base_limit),
                 "T=" + io::fmt_seconds(4 * base_limit)});

  std::map<Energy, std::array<std::size_t, 3>> counts;
  std::array<Energy, 3> best_per_limit{kInfiniteEnergy, kInfiniteEnergy,
                                       kInfiniteEnergy};
  for (int li = 0; li < 3; ++li) {
    const double limit = base_limit * double(1 << li);
    for (std::size_t r = 0; r < runs_per_limit; ++r) {
      const auto solver = bench::make_solver(
          "sa", SolverOptions{{"sweeps", "400"},
                              {"restarts", "1000000"},  // time-limited
                              {"seed", std::to_string(5000 + li * 1000 + r)}});
      StopCondition stop;
      stop.time_limit_seconds = limit;
      const SolveReport res = bench::solve_on(*solver, m, stop);
      ++counts[res.best_energy][li];
      best_per_limit[li] = std::min(best_per_limit[li], res.best_energy);
    }
  }
  for (const auto& [energy, c] : counts) {
    table.add_row({io::fmt_energy(energy), std::to_string(c[0]),
                   std::to_string(c[1]), std::to_string(c[2])});
    sink.row({{"energy", std::to_string(energy)},
              {"count_t1", std::to_string(c[0])},
              {"count_t2", std::to_string(c[1])},
              {"count_t4", std::to_string(c[2])}});
  }
  table.print(std::cout);
  for (int li = 0; li < 3; ++li) {
    sink.metric("best_energy_t" + std::to_string(1 << li),
                double(best_per_limit[li]));
  }
  bench::note("expected shape: larger T concentrates counts at lower "
              "energies (paper Fig. 6).");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
