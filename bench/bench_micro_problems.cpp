// Micro benchmarks (google-benchmark) for the unified Problem API: the
// encode -> decode -> verify path every problem-keyed job crosses.  Encode
// dominates (it rebuilds the QUBO); decode/verify are the per-report cost
// the batch front end pays on every finished job.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/solver_registry.hpp"
#include "problems/problem_registry.hpp"
#include "rng/xorshift.hpp"

namespace dabs {
namespace {

/// Full encode + decode round trip per problem family, on instances sized
/// like the batch service's steady-state jobs.
void BM_EncodeDecode(benchmark::State& state, const char* spec,
                     SolverOptions params) {
  const std::unique_ptr<Problem> problem =
      ProblemRegistry::global().create(spec, params);
  // A fixed random vector stands in for a solver result.
  const QuboModel probe = problem->encode();
  Rng rng(11);
  BitVector x(probe.size());
  for (std::size_t i = 0; i < x.size(); ++i) x.set(i, rng.next_bit());

  for (auto _ : state) {
    const QuboModel model = problem->encode();
    const DomainSolution sol = problem->decode(x);
    const VerifyResult verdict = problem->verify(x, model.energy(x));
    benchmark::DoNotOptimize(model.size());
    benchmark::DoNotOptimize(sol.objective);
    benchmark::DoNotOptimize(verdict.ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// Decode + verify only — the per-finished-job cost at emit time, with the
/// model already cached.
void BM_DecodeVerify(benchmark::State& state, const char* spec,
                     SolverOptions params) {
  const std::unique_ptr<Problem> problem =
      ProblemRegistry::global().create(spec, params);
  const QuboModel model = problem->encode();
  Rng rng(11);
  BitVector x(model.size());
  for (std::size_t i = 0; i < x.size(); ++i) x.set(i, rng.next_bit());

  for (auto _ : state) {
    const DomainSolution sol = problem->decode(x);
    const VerifyResult verdict = problem->verify(x, model.energy(x));
    benchmark::DoNotOptimize(sol.objective);
    benchmark::DoNotOptimize(verdict.ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_EncodeDecode, maxcut_g_style, "maxcut",
                  {{"n", "200"}, {"m", "2000"}});
BENCHMARK_CAPTURE(BM_EncodeDecode, qap_grid_3x4, "qap",
                  {{"kind", "grid"}, {"rows", "3"}, {"cols", "4"}});
BENCHMARK_CAPTURE(BM_EncodeDecode, tsp_12_cities, "tsp", {{"n", "12"}});
BENCHMARK_CAPTURE(BM_EncodeDecode, qasp_p3_r16, "qasp",
                  {{"r", "16"}, {"m", "3"}});
BENCHMARK_CAPTURE(BM_DecodeVerify, maxcut_g_style, "maxcut",
                  {{"n", "200"}, {"m", "2000"}});
BENCHMARK_CAPTURE(BM_DecodeVerify, qap_grid_3x4, "qap",
                  {{"kind", "grid"}, {"rows", "3"}, {"cols", "4"}});

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
