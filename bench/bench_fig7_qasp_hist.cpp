// Fig. 7 reproduction: histogram of DABS running time to reach the
// potentially optimal solution for QASP1 / QASP16 / QASP256.
#include <algorithm>

#include "bench_common.hpp"
#include "problems/qasp.hpp"
#include "util/histogram.hpp"

namespace dabs {
namespace {

namespace pr = problems;

void run() {
  bench::print_banner("Fig. 7 — solve-time histograms, QASP1/16/256");
  const double time_budget = 6.0 * bench::scale();
  const std::size_t n_trials = bench::trials(20);

  for (const int r : {1, 16, 256}) {
    pr::QaspParams params;
    params.resolution = r;
    params.pegasus_m = bench::full_size() ? 16 : 4;
    params.working_nodes = bench::full_size() ? 5627 : 280;
    params.value_seed = 42 + r;
    const pr::QaspInstance inst = pr::make_qasp(params);

    SolverConfig ref_cfg = bench::bench_config(31, 0.1, 1.0);
    ref_cfg.stop.time_limit_seconds = 2.0 * time_budget;
    const Energy ref = DabsSolver(ref_cfg).solve(inst.qubo).best_energy;

    std::vector<double> tts;
    std::size_t failures = 0;
    for (std::size_t t = 0; t < n_trials; ++t) {
      SolverConfig c = bench::bench_config(7000 + 100 * r + t, 0.1, 1.0);
      c.stop.target_energy = ref;
      c.stop.time_limit_seconds = time_budget;
      const SolveResult res = DabsSolver(c).solve(inst.qubo);
      if (res.reached_target)
        tts.push_back(res.tts_seconds);
      else
        ++failures;
    }
    std::cout << "QASP" << r << " ref=" << io::fmt_energy(ref) << " ("
              << tts.size() << " hits, " << failures << " misses)\n";
    if (tts.empty()) continue;
    const double hi = *std::max_element(tts.begin(), tts.end());
    const double width = std::max(hi / 20.0, 1e-3);  // paper: 1 s bins / 20
    Histogram hist(0.0, hi + width, width);
    for (const double s : tts) hist.add(s);
    std::cout << hist.to_table(3);
  }
  bench::note("paper shape: all three resolutions concentrate at small "
              "times with a short tail (Fig. 7).");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
