// Fig. 7 reproduction: histogram of DABS running time to reach the
// potentially optimal solution for QASP1 / QASP16 / QASP256.
#include <algorithm>

#include "bench_common.hpp"
#include "problems/qasp.hpp"
#include "util/histogram.hpp"

namespace dabs {
namespace {

namespace pr = problems;

void run() {
  bench::print_banner("Fig. 7 — solve-time histograms, QASP1/16/256");
  bench::JsonSink sink("fig7_qasp_hist");
  const double time_budget = 6.0 * bench::scale();
  const std::size_t n_trials = bench::trials(20);

  for (const int r : {1, 16, 256}) {
    pr::QaspParams params;
    params.resolution = r;
    params.pegasus_m = bench::full_size() ? 16 : 4;
    params.working_nodes = bench::full_size() ? 5627 : 280;
    params.value_seed = 42 + r;
    const pr::QaspInstance inst = pr::make_qasp(params);

    StopCondition ref_stop;
    ref_stop.time_limit_seconds = 2.0 * time_budget;
    const Energy ref =
        bench::solve_on(
            *bench::make_solver("dabs", bench::bulk_options(31, 0.1, 1.0)),
            inst.qubo, ref_stop)
            .best_energy;

    const auto camp = bench::run_registry_campaign(
        inst.qubo, ref, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver(
              "dabs", bench::bulk_options(7000 + 100 * r + t, 0.1, 1.0));
        });
    std::cout << "QASP" << r << " ref=" << io::fmt_energy(ref) << " ("
              << camp.successes << " hits, " << (camp.runs - camp.successes)
              << " misses)\n";
    const std::string suffix = "_qasp" + std::to_string(r);
    sink.metric("success_rate" + suffix, camp.success_rate());
    if (camp.tts_samples.empty()) continue;
    sink.metric("tts_mean" + suffix, camp.tts.mean());
    const std::vector<double>& tts = camp.tts_samples;
    const double hi = *std::max_element(tts.begin(), tts.end());
    const double width = std::max(hi / 20.0, 1e-3);  // paper: 1 s bins / 20
    Histogram hist(0.0, hi + width, width);
    for (const double s : tts) hist.add(s);
    std::cout << hist.to_table(3);
    for (std::size_t i = 0; i < hist.bin_count(); ++i) {
      sink.row({{"resolution", std::to_string(r)},
                {"bin_lo", std::to_string(hist.bin_lo(i))},
                {"count", std::to_string(hist.count(i))}});
    }
  }
  bench::note("paper shape: all three resolutions concentrate at small "
              "times with a short tail (Fig. 7).");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
