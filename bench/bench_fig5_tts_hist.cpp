// Fig. 5 reproduction: histogram of DABS time-to-solution over many
// independent executions on the K2000-family MaxCut instance.  The paper
// bins TTS in 0.1 s buckets over [0, 1.7); bins here scale with the
// measured TTS range.
#include <algorithm>

#include "bench_common.hpp"
#include "problems/maxcut.hpp"
#include "util/histogram.hpp"

namespace dabs {
namespace {

namespace pr = problems;

void run() {
  bench::print_banner("Fig. 5 — TTS histogram, K2000-family MaxCut");
  const auto inst = bench::full_size()
                        ? pr::make_k2000()
                        : pr::make_complete_maxcut(300, 2000, "K300");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  bench::note("instance " + inst.name + ": " + m.describe());

  // Reference energy from one long run (paper: s=0.1, b=10).
  SolverConfig ref_cfg = bench::bench_config(1, 0.1, 10.0);
  ref_cfg.stop.time_limit_seconds = 8.0 * bench::scale();
  const Energy ref = DabsSolver(ref_cfg).solve(m).best_energy;
  bench::note("potentially optimal energy: " + io::fmt_energy(ref) +
              "  (cut " + io::fmt_energy(-ref) + ")");

  const std::size_t n_trials = bench::trials(30);
  std::vector<double> tts;
  std::size_t failures = 0;
  for (std::size_t t = 0; t < n_trials; ++t) {
    SolverConfig c = bench::bench_config(1000 + t, 0.1, 10.0);
    c.stop.target_energy = ref;
    c.stop.time_limit_seconds = 8.0 * bench::scale();
    const SolveResult r = DabsSolver(c).solve(m);
    if (r.reached_target)
      tts.push_back(r.tts_seconds);
    else
      ++failures;
  }

  if (tts.empty()) {
    bench::note("no successful trials at this scale");
    return;
  }
  const double hi = *std::max_element(tts.begin(), tts.end());
  const double width = std::max(hi / 17.0, 1e-3);  // ~17 bins like Fig. 5
  Histogram hist(0.0, hi + width, width);
  for (const double s : tts) hist.add(s);
  std::cout << "TTS histogram over " << tts.size() << " successful runs ("
            << failures << " failures):\n"
            << hist.to_table(3);
  SummaryStats stats;
  for (const double s : tts) stats.add(s);
  std::cout << "TTS " << stats.to_string() << "\n";
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
