// Fig. 5 reproduction: histogram of DABS time-to-solution over many
// independent executions on the K2000-family MaxCut instance.  The paper
// bins TTS in 0.1 s buckets over [0, 1.7); bins here scale with the
// measured TTS range.
//
// Solvers are constructed through SolverRegistry (the CLI/server surface)
// and results go to DABS_BENCH_JSON for the tracked BENCH_paper.json.
#include <algorithm>

#include "bench_common.hpp"
#include "problems/maxcut.hpp"
#include "util/histogram.hpp"

namespace dabs {
namespace {

namespace pr = problems;

void run() {
  bench::print_banner("Fig. 5 — TTS histogram, K2000-family MaxCut");
  bench::JsonSink sink("fig5_tts_hist");
  const auto inst = bench::full_size()
                        ? pr::make_k2000()
                        : pr::make_complete_maxcut(300, 2000, "K300");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  bench::note("instance " + inst.name + ": " + m.describe());

  // Reference energy from one long run (paper: s=0.1, b=10).
  StopCondition ref_stop;
  ref_stop.time_limit_seconds = 8.0 * bench::scale();
  const Energy ref =
      bench::solve_on(*bench::make_solver("dabs", bench::bulk_options(1, 0.1, 10.0)),
                      m, ref_stop)
          .best_energy;
  bench::note("potentially optimal energy: " + io::fmt_energy(ref) +
              "  (cut " + io::fmt_energy(-ref) + ")");
  sink.metric("ref_energy", double(ref));

  const std::size_t n_trials = bench::trials(30);
  const auto camp = bench::run_registry_campaign(
      m, ref, 8.0 * bench::scale(), n_trials, [&](std::size_t t) {
        return bench::make_solver("dabs", bench::bulk_options(1000 + t, 0.1, 10.0));
      });
  sink.metric("trials", double(camp.runs));
  sink.metric("success_rate", camp.success_rate());

  if (camp.tts_samples.empty()) {
    bench::note("no successful trials at this scale");
    return;
  }
  const std::vector<double>& tts = camp.tts_samples;
  const double hi = *std::max_element(tts.begin(), tts.end());
  const double width = std::max(hi / 17.0, 1e-3);  // ~17 bins like Fig. 5
  Histogram hist(0.0, hi + width, width);
  for (const double s : tts) hist.add(s);
  std::cout << "TTS histogram over " << tts.size() << " successful runs ("
            << (camp.runs - camp.successes) << " failures):\n"
            << hist.to_table(3);
  std::cout << "TTS " << camp.tts.to_string() << "\n";
  sink.metric("tts_mean", camp.tts.mean());
  sink.metric("tts_max", hi);
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    sink.row({{"bin_lo", std::to_string(hist.bin_lo(i))},
              {"count", std::to_string(hist.count(i))}});
  }
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
