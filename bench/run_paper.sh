#!/usr/bin/env bash
# Runs the paper figure/table reproduction suites and merges their JSON
# reports into one BENCH_paper.json so the reproduction-quality trajectory
# accumulates run over run (the paper-harness twin of run_benches.sh).
#
# Usage: bench/run_paper.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    build tree containing bench/ executables (default: build)
#   OUTPUT_JSON  merged report path (default: BENCH_paper.json in the repo root)
#
# Scale knobs pass through to the benches: DABS_BENCH_SCALE (trial/time
# multiplier) and DABS_BENCH_FULL=1 (paper-size instances).
#
# Drift guard: when OUTPUT_JSON already holds a prior report, each suite's
# success_rate* metrics (higher is better, absolute delta) and tts_mean*
# metrics (lower is better, relative delta) are compared against it.  A
# drift beyond DABS_PAPER_TOLERANCE (default 0.25 — stochastic campaigns on
# shared runners are noisy) warns; DABS_BENCH_GATE=1 makes it a hard fail.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
output="${2:-${repo_root}/BENCH_paper.json}"
suites=(bench_fig5_tts_hist bench_fig6_limit_hist bench_fig7_qasp_hist
        bench_table2_maxcut bench_table3_qap bench_table4_qasp
        bench_table5_frequency bench_table6_first_finder)

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

ran=()
for suite in "${suites[@]}"; do
  exe="${build_dir}/bench/${suite}"
  if [[ ! -x "${exe}" ]]; then
    echo "skip: ${exe} not built (configure with -DDABS_BUILD_BENCH=ON)" >&2
    continue
  fi
  echo "== ${suite}" >&2
  DABS_BENCH_JSON="${tmpdir}/${suite}.json" "${exe}" >&2
  ran+=("${suite}")
done

if [[ ${#ran[@]} -eq 0 ]]; then
  echo "error: no paper bench executable found under ${build_dir}/bench" >&2
  exit 1
fi

# Drift guard before overwriting the prior report.
if [[ -f "${output}" ]] && command -v python3 >/dev/null 2>&1; then
  guard_status=0
  python3 - "${output}" "${tmpdir}" \
    "${DABS_PAPER_TOLERANCE:-0.25}" "${ran[@]}" <<'PY' || guard_status=$?
import json, os, sys

prior_path, tmpdir, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
suites = sys.argv[4:]

try:
    with open(prior_path) as f:
        prior = json.load(f)
except (OSError, json.JSONDecodeError) as e:
    print(f"paper guard: skip ({e})", file=sys.stderr)
    sys.exit(0)

drifted = False
for exe_name in suites:
    path = os.path.join(tmpdir, f"{exe_name}.json")
    try:
        with open(path) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError):
        continue
    suite = fresh.get("suite", exe_name)
    old = prior.get(suite, {})
    # Only compare runs made at the same scale/size: the metrics are not
    # comparable across DABS_BENCH_SCALE / DABS_BENCH_FULL settings.
    if (old.get("scale") != fresh.get("scale")
            or old.get("full_size") != fresh.get("full_size")):
        print(f"paper guard: {suite}: scale changed, skipping comparison",
              file=sys.stderr)
        continue
    old_m, new_m = old.get("metrics", {}), fresh.get("metrics", {})
    for name, before in sorted(old_m.items()):
        after = new_m.get(name)
        if after is None:
            continue
        if "success_rate" in name:
            delta = after - before  # fraction in [0, 1]: absolute delta
            print(f"paper guard: {suite}.{name} {before:.2f} -> {after:.2f} "
                  f"({delta:+.2f})", file=sys.stderr)
            if delta < -tolerance:
                drifted = True
        elif "tts_mean" in name and before > 0:
            delta = (after - before) / before  # lower is better
            print(f"paper guard: {suite}.{name} {before:.3g}s -> "
                  f"{after:.3g}s ({delta:+.1%})", file=sys.stderr)
            if delta > tolerance:
                drifted = True
sys.exit(2 if drifted else 0)
PY
  if [[ "${guard_status}" -ne 0 ]]; then
    echo "WARNING: paper metrics drifted beyond" \
         "${DABS_PAPER_TOLERANCE:-0.25} tolerance" >&2
    if [[ "${DABS_BENCH_GATE:-0}" = "1" ]]; then
      echo "FAIL: paper-harness drift (DABS_BENCH_GATE=1)" >&2
      exit 1
    fi
  fi
elif [[ -f "${output}" ]]; then
  echo "paper guard: skip (python3 not found)" >&2
fi

# Merge: one object keyed by each bench's reported suite name.
python3 - "${output}" "${tmpdir}" "${ran[@]}" <<'PY'
import json, os, sys
output, tmpdir, suites = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
if os.path.exists(output):  # keep suites not re-run this invocation
    try:
        with open(output) as f:
            merged = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"discarding unreadable prior report: {e}", file=sys.stderr)
for s in suites:
    try:
        with open(f"{tmpdir}/{s}.json") as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"skip {s}: {e}", file=sys.stderr)
        continue
    merged[fresh.get("suite", s)] = fresh
with open(output, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
PY
echo "wrote ${output} (${#ran[@]} suites)" >&2
