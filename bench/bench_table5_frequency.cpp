// Table V reproduction: frequency of main search algorithms and genetic
// operations *executed* by the adaptive DABS host, per problem.  One row
// per benchmark instance; columns as in the paper.  Frequencies come from
// the diversity engine's `freq_algo_*` / `freq_op_*` report extras — the
// same data any registry client (CLI, server) sees.
#include "bench_common.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"
#include "problems/qasp.hpp"

namespace dabs {
namespace {

namespace pr = problems;

struct Case {
  std::string name;
  QuboModel model;
  double s, b;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  const bool full = bench::full_size();
  out.push_back({"K2000f",
                 pr::maxcut_to_qubo(full ? pr::make_k2000()
                                         : pr::make_complete_maxcut(
                                               300, 2000, "K300")),
                 0.1, 10.0});
  out.push_back({"G22f",
                 pr::maxcut_to_qubo(
                     full ? pr::make_g22_like()
                          : pr::make_random_maxcut(
                                300, 3000, pr::EdgeWeights::kPlusOne, 22,
                                "G22r")),
                 0.1, 10.0});
  out.push_back(
      {"qapf",
       pr::qap_to_qubo(full ? pr::make_grid_qap(5, 6, 10, 30, "nug30-like")
                            : pr::make_grid_qap(3, 4, 10, 30, "nug12-like"))
           .model,
       0.1, 1.0});
  {
    pr::QaspParams p;
    p.pegasus_m = full ? 16 : 4;
    p.working_nodes = full ? 5627 : 280;
    p.resolution = 1;
    out.push_back({"QASP1", pr::make_qasp(p).qubo, 0.1, 1.0});
    p.resolution = 256;
    p.value_seed = 42 + 256;
    out.push_back({"QASP256", pr::make_qasp(p).qubo, 0.1, 1.0});
  }
  return out;
}

double extra_fraction(const SolveReport& r, const std::string& key) {
  const auto it = r.extras.find(key);
  return it == r.extras.end() ? 0.0 : std::atof(it->second.c_str());
}

void run() {
  bench::print_banner("Table V — frequency of executed algorithms/operations");
  bench::JsonSink sink("table5_frequency");

  io::ResultsTable algos("Table V (a): main search algorithm frequency");
  std::vector<std::string> algo_cols = {"problem"};
  for (const MainSearch s : kAllMainSearches) {
    algo_cols.emplace_back(to_string(s));
  }
  algos.columns(algo_cols);

  io::ResultsTable ops("Table V (b): genetic operation frequency");
  std::vector<std::string> op_cols = {"problem"};
  for (const GeneticOp op : kDabsGeneticOps) {
    op_cols.emplace_back(to_string(op));
  }
  ops.columns(op_cols);

  const double time_budget = 5.0 * bench::scale();
  for (const Case& c : cases()) {
    StopCondition stop;
    stop.time_limit_seconds = time_budget;
    const SolveReport r = bench::solve_on(
        *bench::make_solver("dabs", bench::bulk_options(77, c.s, c.b)),
        c.model, stop);

    std::vector<std::string> arow = {c.name};
    for (const MainSearch s : kAllMainSearches) {
      const double f =
          extra_fraction(r, "freq_algo_" + std::string(to_string(s)));
      arow.push_back(io::fmt_percent(f));
      sink.row({{"problem", c.name},
                {"kind", "algo"},
                {"name", std::string(to_string(s))},
                {"fraction", std::to_string(f)}});
    }
    algos.add_row(arow);

    std::vector<std::string> orow = {c.name};
    for (const GeneticOp op : kDabsGeneticOps) {
      const double f =
          extra_fraction(r, "freq_op_" + std::string(to_string(op)));
      orow.push_back(io::fmt_percent(f));
      sink.row({{"problem", c.name},
                {"kind", "op"},
                {"name", std::string(to_string(op))},
                {"fraction", std::to_string(f)}});
    }
    ops.add_row(orow);
  }
  algos.print(std::cout);
  ops.print(std::cout);
  bench::note("paper shape: frequencies differ strongly per problem (no "
              "algorithm dominates everywhere — the NFLT motivation).");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
