// Table II reproduction: MaxCut on K2000 / G22 / G39 style graphs.
//
// Paper row set: potentially optimal cut, DABS (TTS), ABS (TTS + success
// probability), comparator solvers' gaps (Gurobi / D-Wave Hybrid / CIM ->
// here SimulatedAnnealing / TabuSearch / GreedyRestart; see DESIGN.md §2).
#include "baseline/abs_solver.hpp"
#include "baseline/greedy_restart.hpp"
#include "baseline/simulated_annealing.hpp"
#include "baseline/tabu_search.hpp"
#include "bench_common.hpp"
#include "problems/maxcut.hpp"

namespace dabs {
namespace {

namespace pr = problems;
using bench::bench_config;

struct Row {
  std::string name;
  pr::MaxCutInstance inst;
};

std::vector<Row> instances() {
  if (bench::full_size()) {
    return {{"K2000", pr::make_k2000()},
            {"G22", pr::make_g22_like()},
            {"G39", pr::make_g39_like()}};
  }
  // Reduced shapes with matching density/weight structure.
  return {{"K500", pr::make_complete_maxcut(500, 2000, "K500")},
          {"G22r", pr::make_random_maxcut(500, 5000,
                                          pr::EdgeWeights::kPlusOne, 22,
                                          "G22r")},
          {"G39r", pr::make_random_maxcut(500, 2945,
                                          pr::EdgeWeights::kPlusMinusOne, 39,
                                          "G39r")}};
}

void run() {
  bench::print_banner("Table II — MaxCut (K2000 / G22 / G39 family)");
  io::ResultsTable table("Table II");
  table.columns({"instance", "ref(best)", "DABS best", "DABS TTS",
                 "DABS succ", "ABS best", "ABS succ", "SA gap", "Tabu gap",
                 "Greedy gap"});

  const double time_budget = 4.0 * bench::scale();
  const std::size_t n_trials = bench::trials(5);

  for (const Row& row : instances()) {
    const QuboModel m = pr::maxcut_to_qubo(row.inst);
    bench::note("instance " + row.name + ": " + m.describe());

    // Establish the reference ("potentially optimal") energy with one long
    // DABS run; paper parameters s=0.1, b=10 for MaxCut.
    SolverConfig ref_cfg = bench_config(7, 0.1, 10.0);
    ref_cfg.stop.time_limit_seconds = 2.0 * time_budget;
    const SolveResult ref = DabsSolver(ref_cfg).solve(m);
    Energy best_known = ref.best_energy;

    // Comparators.
    SaParams sa_p;
    sa_p.sweeps = 2000;
    sa_p.restarts = 8;
    sa_p.time_limit_seconds = time_budget;
    const BaselineResult sa = SimulatedAnnealing(sa_p).solve(m);
    TabuSearchParams tb_p;
    tb_p.iterations = 100000;
    tb_p.time_limit_seconds = time_budget;
    const BaselineResult tb = TabuSearch(tb_p).solve(m);
    GreedyRestartParams gr_p;
    gr_p.restarts = 10000;
    gr_p.time_limit_seconds = time_budget;
    const BaselineResult gr = GreedyRestart(gr_p).solve(m);
    best_known = std::min({best_known, sa.best_energy, tb.best_energy,
                           gr.best_energy});

    // DABS campaign against the reference.
    const auto dabs_camp = bench::run_campaign(
        m, best_known, n_trials, [&](std::size_t t) {
          SolverConfig c = bench_config(100 + t, 0.1, 10.0);
          c.stop.target_energy = best_known;
          c.stop.time_limit_seconds = time_budget;
          return DabsSolver(c);
        });
    // ABS campaign (restricted feature set), same budget.
    const auto abs_camp = bench::run_campaign(
        m, best_known, n_trials, [&](std::size_t t) {
          SolverConfig c = bench_config(200 + t, 0.1, 10.0);
          c.stop.target_energy = best_known;
          c.stop.time_limit_seconds = time_budget;
          return AbsSolver(c);
        });

    table.add_row(
        {row.name, io::fmt_energy(best_known),
         io::fmt_energy(dabs_camp.best_energy),
         dabs_camp.successes ? io::fmt_seconds(dabs_camp.tts.mean()) : "-",
         io::fmt_percent(dabs_camp.success_rate()),
         io::fmt_energy(abs_camp.best_energy),
         io::fmt_percent(abs_camp.success_rate()),
         io::fmt_gap(energy_gap(sa.best_energy, best_known)),
         io::fmt_gap(energy_gap(tb.best_energy, best_known)),
         io::fmt_gap(energy_gap(gr.best_energy, best_known))});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
