// Table II reproduction: MaxCut on K2000 / G22 / G39 style graphs.
//
// Paper row set: potentially optimal cut, DABS (TTS), ABS (TTS + success
// probability), comparator solvers' gaps (Gurobi / D-Wave Hybrid / CIM ->
// here the "sa" / "tabu" / "greedy-restart" registry solvers; DESIGN.md §2).
#include <algorithm>

#include "baseline/baseline_result.hpp"  // energy_gap
#include "bench_common.hpp"
#include "problems/maxcut.hpp"

namespace dabs {
namespace {

namespace pr = problems;
using bench::bulk_options;

struct Row {
  std::string name;
  pr::MaxCutInstance inst;
};

std::vector<Row> instances() {
  if (bench::full_size()) {
    return {{"K2000", pr::make_k2000()},
            {"G22", pr::make_g22_like()},
            {"G39", pr::make_g39_like()}};
  }
  // Reduced shapes with matching density/weight structure.
  return {{"K500", pr::make_complete_maxcut(500, 2000, "K500")},
          {"G22r", pr::make_random_maxcut(500, 5000,
                                          pr::EdgeWeights::kPlusOne, 22,
                                          "G22r")},
          {"G39r", pr::make_random_maxcut(500, 2945,
                                          pr::EdgeWeights::kPlusMinusOne, 39,
                                          "G39r")}};
}

void run() {
  bench::print_banner("Table II — MaxCut (K2000 / G22 / G39 family)");
  bench::JsonSink sink("table2_maxcut");
  io::ResultsTable table("Table II");
  table.columns({"instance", "ref(best)", "DABS best", "DABS TTS",
                 "DABS succ", "ABS best", "ABS succ", "SA gap", "Tabu gap",
                 "Greedy gap"});

  const double time_budget = 4.0 * bench::scale();
  const std::size_t n_trials = bench::trials(5);

  for (const Row& row : instances()) {
    const QuboModel m = pr::maxcut_to_qubo(row.inst);
    bench::note("instance " + row.name + ": " + m.describe());

    // Establish the reference ("potentially optimal") energy with one long
    // DABS run; paper parameters s=0.1, b=10 for MaxCut.
    StopCondition ref_stop;
    ref_stop.time_limit_seconds = 2.0 * time_budget;
    const SolveReport ref = bench::solve_on(
        *bench::make_solver("dabs", bulk_options(7, 0.1, 10.0)), m, ref_stop);
    Energy best_known = ref.best_energy;

    // Comparators, through the same registry surface.
    StopCondition cmp_stop;
    cmp_stop.time_limit_seconds = time_budget;
    const SolveReport sa = bench::solve_on(
        *bench::make_solver("sa", SolverOptions{{"sweeps", "2000"},
                                                {"restarts", "8"}}),
        m, cmp_stop);
    const SolveReport tb = bench::solve_on(
        *bench::make_solver("tabu", SolverOptions{{"iterations", "100000"}}),
        m, cmp_stop);
    const SolveReport gr = bench::solve_on(
        *bench::make_solver("greedy-restart",
                            SolverOptions{{"restarts", "10000"}}),
        m, cmp_stop);
    best_known = std::min({best_known, sa.best_energy, tb.best_energy,
                           gr.best_energy});

    // DABS campaign against the reference.
    const auto dabs_camp = bench::run_registry_campaign(
        m, best_known, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver("dabs", bulk_options(100 + t, 0.1, 10.0));
        });
    // ABS campaign (restricted feature set), same budget.
    const auto abs_camp = bench::run_registry_campaign(
        m, best_known, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver("abs", bulk_options(200 + t, 0.1, 10.0));
        });

    table.add_row(
        {row.name, io::fmt_energy(best_known),
         io::fmt_energy(dabs_camp.best_energy),
         dabs_camp.successes ? io::fmt_seconds(dabs_camp.tts.mean()) : "-",
         io::fmt_percent(dabs_camp.success_rate()),
         io::fmt_energy(abs_camp.best_energy),
         io::fmt_percent(abs_camp.success_rate()),
         io::fmt_gap(energy_gap(sa.best_energy, best_known)),
         io::fmt_gap(energy_gap(tb.best_energy, best_known)),
         io::fmt_gap(energy_gap(gr.best_energy, best_known))});
    sink.metric("success_rate_dabs_" + row.name, dabs_camp.success_rate());
    sink.metric("success_rate_abs_" + row.name, abs_camp.success_rate());
    if (dabs_camp.successes) {
      sink.metric("tts_mean_dabs_" + row.name, dabs_camp.tts.mean());
    }
    sink.row({{"instance", row.name},
              {"ref_energy", std::to_string(best_known)},
              {"dabs_best", std::to_string(dabs_camp.best_energy)},
              {"abs_best", std::to_string(abs_camp.best_energy)},
              {"sa_best", std::to_string(sa.best_energy)},
              {"tabu_best", std::to_string(tb.best_energy)},
              {"greedy_best", std::to_string(gr.best_energy)}});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
