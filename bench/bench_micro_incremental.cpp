// Micro benchmarks (google-benchmark): the incremental machinery that makes
// the whole framework viable — O(deg) flips and O(n) scans versus O(n^2)
// full evaluation (paper §III-A's motivation), plus the density-adaptive
// kernel engine: dense-row vs CSR backends on the same K2000 instance and
// the fused flip_and_scan entry point.
#include <benchmark/benchmark.h>

#include <vector>

#include "evolve/genetic_ops.hpp"
#include "problems/maxcut.hpp"
#include "qubo/qubo_builder.hpp"
#include "qubo/search_state.hpp"
#include "rng/xorshift.hpp"
#include "search/bulk_search_state.hpp"

namespace dabs {
namespace {

QuboModel dense_model(std::size_t n, std::uint64_t seed,
                      QuboBackend backend = QuboBackend::kAuto) {
  Rng rng(seed);
  QuboBuilder b(n);
  b.set_backend(backend);
  for (VarIndex i = 0; i < n; ++i) {
    b.add_linear(i, static_cast<Weight>(rng.next_index(9)) - 4);
    for (VarIndex j = i + 1; j < n; ++j) {
      b.add_quadratic(i, j, rng.next_bit() ? 1 : -1);
    }
  }
  return b.build();
}

/// K2000 complete-MaxCut QUBO with a forced kernel backend — the
/// head-to-head instance for the acceptance numbers in BENCH_micro.json.
const QuboModel& k2000(QuboBackend backend) {
  static const QuboModel csr =
      problems::maxcut_to_qubo(problems::make_k2000(), QuboBackend::kCsr);
  static const QuboModel dense =
      problems::maxcut_to_qubo(problems::make_k2000(), QuboBackend::kDense);
  return backend == QuboBackend::kDense ? dense : csr;
}

QuboModel sparse_model(std::size_t n, std::size_t deg, std::uint64_t seed) {
  Rng rng(seed);
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) {
    b.add_linear(i, static_cast<Weight>(rng.next_index(9)) - 4);
    for (std::size_t d = 0; d < deg; ++d) {
      const auto j = static_cast<VarIndex>(rng.next_index(n));
      if (j != i) b.add_quadratic(i, j, rng.next_bit() ? 1 : -1);
    }
  }
  return b.build();
}

void BM_FullEnergyDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = dense_model(n, 1);
  Rng rng(2);
  const BitVector x = random_bit_vector(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.energy(x));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullEnergyDense)->Arg(128)->Arg(512)->Arg(1024)->Complexity();

void BM_IncrementalFlipDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = dense_model(n, 3);
  SearchState s(m);
  Rng rng(4);
  s.reset_to(random_bit_vector(n, rng));
  VarIndex i = 0;
  for (auto _ : state) {
    s.flip(i);
    i = static_cast<VarIndex>((i + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IncrementalFlipDense)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1024)
    ->Complexity();

// Head-to-head on the identical K2000 instance: the dense row-stream kernel
// vs the generic CSR walk.  items_per_second == flips/sec; the acceptance
// bar is dense >= 2x the pre-engine (CSR) number.
void BM_FlipK2000(benchmark::State& state) {
  const auto backend = static_cast<QuboBackend>(state.range(0));
  const QuboModel& m = k2000(backend);
  SearchState s(m);
  Rng rng(4);
  s.reset_to(random_bit_vector(m.size(), rng));
  VarIndex i = 0;
  const auto n = static_cast<VarIndex>(m.size());
  for (auto _ : state) {
    s.flip(i);
    i = static_cast<VarIndex>((i + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(to_string(backend));
}
BENCHMARK(BM_FlipK2000)
    ->Arg(static_cast<int>(QuboBackend::kCsr))
    ->Arg(static_cast<int>(QuboBackend::kDense));

// Fused Step 3 + Step 1 (one search iteration's kernel work) on K2000.
void BM_FlipAndScanK2000(benchmark::State& state) {
  const auto backend = static_cast<QuboBackend>(state.range(0));
  const QuboModel& m = k2000(backend);
  SearchState s(m);
  Rng rng(5);
  s.reset_to(random_bit_vector(m.size(), rng));
  VarIndex i = 0;
  const auto n = static_cast<VarIndex>(m.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.flip_and_scan(i));
    i = static_cast<VarIndex>((i + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(to_string(backend));
}
BENCHMARK(BM_FlipAndScanK2000)
    ->Arg(static_cast<int>(QuboBackend::kCsr))
    ->Arg(static_cast<int>(QuboBackend::kDense));

// Bulk replica engine on K2000: 64 replicas advance per chunk pass, so one
// dense row load amortizes across 64 delta updates.  items_per_second
// counts *lane-flips* (positions x 64 lanes) — the aggregate flip
// throughput to compare against BM_FlipK2000's single-replica number.
// Build with -DDABS_NATIVE=ON for the published numbers: the int16 kernel
// needs the host's full vector width to pay off.
void BM_BulkFlipK2000(benchmark::State& state) {
  constexpr std::size_t kReplicas = 64;
  constexpr std::size_t kChunk = BulkSearchState::kMaxChunk;
  const auto backend = static_cast<QuboBackend>(state.range(0));
  const QuboModel& m = k2000(backend);
  BulkSearchState s(m, kReplicas);
  Rng rng(4);
  for (std::size_t r = 0; r < kReplicas; ++r) {
    s.reset_to(r, random_bit_vector(m.size(), rng));
  }
  const auto n = static_cast<VarIndex>(m.size());
  const std::vector<std::uint64_t> full(kChunk, ~std::uint64_t{0});
  std::vector<VarIndex> idx(kChunk);
  VarIndex i = 0;
  for (auto _ : state) {
    for (std::size_t p = 0; p < kChunk; ++p) {
      idx[p] = i;
      i = static_cast<VarIndex>((i + 1) % n);
    }
    s.flip_chunk(idx, full);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kChunk * kReplicas));
  state.SetLabel(to_string(backend));
}
BENCHMARK(BM_BulkFlipK2000)
    ->Arg(static_cast<int>(QuboBackend::kCsr))
    ->Arg(static_cast<int>(QuboBackend::kDense));

// Bulk fused Step 3 + Step 1: one masked flip + the 64-lane scan per
// iteration — the bulk equivalent of BM_FlipAndScanK2000.
void BM_BulkFlipAndScanK2000(benchmark::State& state) {
  constexpr std::size_t kReplicas = 64;
  const auto backend = static_cast<QuboBackend>(state.range(0));
  const QuboModel& m = k2000(backend);
  BulkSearchState s(m, kReplicas);
  Rng rng(5);
  for (std::size_t r = 0; r < kReplicas; ++r) {
    s.reset_to(r, random_bit_vector(m.size(), rng));
  }
  const auto n = static_cast<VarIndex>(m.size());
  const std::vector<std::uint64_t> full(1, ~std::uint64_t{0});
  std::vector<ScanResult> out(kReplicas);
  VarIndex i = 0;
  for (auto _ : state) {
    s.flip_and_scan(i, full, out);
    benchmark::DoNotOptimize(out.data());
    i = static_cast<VarIndex>((i + 1) % n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kReplicas));
  state.SetLabel(to_string(backend));
}
BENCHMARK(BM_BulkFlipAndScanK2000)
    ->Arg(static_cast<int>(QuboBackend::kCsr))
    ->Arg(static_cast<int>(QuboBackend::kDense));

void BM_IncrementalFlipSparse(benchmark::State& state) {
  // Pegasus-like degree ~15: flips should be ~O(15) regardless of n.
  // Guards the <= 5% sparse-regression bound of the kernel engine.
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = sparse_model(n, 8, 5);
  SearchState s(m);
  Rng rng(6);
  s.reset_to(random_bit_vector(n, rng));
  VarIndex i = 0;
  for (auto _ : state) {
    s.flip(i);
    i = static_cast<VarIndex>((i + 1) % n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalFlipSparse)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ScanStep1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = sparse_model(n, 8, 7);
  SearchState s(m);
  Rng rng(8);
  s.reset_to(random_bit_vector(n, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.scan());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScanStep1)->Arg(512)->Arg(2048)->Arg(8192)->Complexity();

void BM_DeltaAllRecompute(benchmark::State& state) {
  // The cost reset_to pays — what the incremental updates avoid per flip.
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = dense_model(n, 9);
  Rng rng(10);
  const BitVector x = random_bit_vector(n, rng);
  std::vector<Energy> out;
  for (auto _ : state) {
    m.delta_all(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DeltaAllRecompute)->Arg(128)->Arg(512)->Arg(1024);

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
