// Micro benchmarks (google-benchmark): the incremental machinery that makes
// the whole framework viable — O(deg) flips and O(n) scans versus O(n^2)
// full evaluation (paper §III-A's motivation).
#include <benchmark/benchmark.h>

#include "ga/genetic_ops.hpp"
#include "qubo/qubo_builder.hpp"
#include "qubo/search_state.hpp"
#include "rng/xorshift.hpp"

namespace dabs {
namespace {

QuboModel dense_model(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) {
    b.add_linear(i, static_cast<Weight>(rng.next_index(9)) - 4);
    for (VarIndex j = i + 1; j < n; ++j) {
      b.add_quadratic(i, j, rng.next_bit() ? 1 : -1);
    }
  }
  return b.build();
}

QuboModel sparse_model(std::size_t n, std::size_t deg, std::uint64_t seed) {
  Rng rng(seed);
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) {
    b.add_linear(i, static_cast<Weight>(rng.next_index(9)) - 4);
    for (std::size_t d = 0; d < deg; ++d) {
      const auto j = static_cast<VarIndex>(rng.next_index(n));
      if (j != i) b.add_quadratic(i, j, rng.next_bit() ? 1 : -1);
    }
  }
  return b.build();
}

void BM_FullEnergyDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = dense_model(n, 1);
  Rng rng(2);
  const BitVector x = random_bit_vector(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.energy(x));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullEnergyDense)->Arg(128)->Arg(512)->Arg(1024)->Complexity();

void BM_IncrementalFlipDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = dense_model(n, 3);
  SearchState s(m);
  Rng rng(4);
  s.reset_to(random_bit_vector(n, rng));
  VarIndex i = 0;
  for (auto _ : state) {
    s.flip(i);
    i = static_cast<VarIndex>((i + 1) % n);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IncrementalFlipDense)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1024)
    ->Complexity();

void BM_IncrementalFlipSparse(benchmark::State& state) {
  // Pegasus-like degree ~15: flips should be ~O(15) regardless of n.
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = sparse_model(n, 8, 5);
  SearchState s(m);
  Rng rng(6);
  s.reset_to(random_bit_vector(n, rng));
  VarIndex i = 0;
  for (auto _ : state) {
    s.flip(i);
    i = static_cast<VarIndex>((i + 1) % n);
  }
}
BENCHMARK(BM_IncrementalFlipSparse)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ScanStep1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = sparse_model(n, 8, 7);
  SearchState s(m);
  Rng rng(8);
  s.reset_to(random_bit_vector(n, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.scan());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScanStep1)->Arg(512)->Arg(2048)->Arg(8192)->Complexity();

void BM_DeltaAllRecompute(benchmark::State& state) {
  // The cost reset_to pays — what the incremental updates avoid per flip.
  const auto n = static_cast<std::size_t>(state.range(0));
  const QuboModel m = dense_model(n, 9);
  Rng rng(10);
  const BitVector x = random_bit_vector(n, rng);
  std::vector<Energy> out;
  for (auto _ : state) {
    m.delta_all(x, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DeltaAllRecompute)->Arg(128)->Arg(512)->Arg(1024);

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
