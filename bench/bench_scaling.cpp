// Scaling ablation: batch throughput and solution quality as the device
// count and blocks-per-device grow — the CPU-substrate analogue of the
// paper's "8 NVIDIA A100" parallel deployment (§V).  On a single core the
// threaded pipeline cannot show real speedups, so the bench reports
// *throughput* (batches/s) and *work distribution* to demonstrate that the
// architecture scales structurally; on a multicore host the same binary
// shows genuine parallel speedup.
#include "bench_common.hpp"
#include "problems/maxcut.hpp"

namespace dabs {
namespace {

namespace pr = problems;

void run() {
  bench::print_banner("Scaling — devices x blocks (threaded pipeline)");
  const auto inst = pr::make_random_maxcut(
      bench::full_size() ? 2000 : 400,
      bench::full_size() ? 19990 : 4000, pr::EdgeWeights::kPlusOne, 22,
      "G22-scale");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  bench::note("instance " + inst.name + ": " + m.describe());

  io::ResultsTable table("Scaling (fixed wall-clock per cell)");
  table.columns({"devices", "blocks", "batches", "batches/s", "best energy"});

  const double budget = 2.0 * bench::scale();
  for (const std::size_t devices : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t blocks : {1u, 4u}) {
      SolverConfig c = bench::bench_config(37, 0.1, 1.0);
      c.devices = devices;
      c.device.blocks = blocks;
      c.mode = ExecutionMode::kThreaded;
      c.stop.time_limit_seconds = budget;
      const SolveResult r = DabsSolver(c).solve(m);
      const auto rate =
          static_cast<long long>(double(r.batches) / r.elapsed_seconds);
      table.add_row({std::to_string(devices), std::to_string(blocks),
                     std::to_string(r.batches), std::to_string(rate),
                     io::fmt_energy(r.best_energy)});
    }
  }
  table.print(std::cout);
  bench::note("on a single-core host the totals stay flat (time-sliced); "
              "on an N-core host batches/s scales with devices x blocks "
              "until cores saturate.");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
