// Micro benchmarks (google-benchmark) for the batch solve service: job
// pipeline throughput end to end (submit -> schedule -> solve -> report)
// and the model-cache fast paths every batch request crosses.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "qubo/qubo_builder.hpp"
#include "rng/xorshift.hpp"
#include "service/model_cache.hpp"
#include "service/solver_service.hpp"

namespace dabs {
namespace {

QuboModel bench_model(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) {
    b.add_linear(i, static_cast<Weight>(rng.next_index(19)) - 9);
  }
  for (VarIndex i = 0; i + 1 < n; ++i) {
    for (VarIndex j = i + 1; j < n; ++j) {
      if (rng.next_unit() < 0.3) {
        b.add_quadratic(i, j, static_cast<Weight>(rng.next_index(19)) - 9);
      }
    }
  }
  return b.build();
}

/// Jobs/second through the full service pipeline: short deterministic sa
/// runs (work-budget stop) over one shared cached model, threads as the
/// benchmark argument.  This is the number the JSONL front end scales with.
void BM_ServiceThroughput(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  service::SolverService::Config config;
  config.threads = threads;
  config.max_events_per_job = 16;
  service::SolverService svc(config);
  const std::shared_ptr<const QuboModel> model =
      svc.cache().intern(bench_model(64, 42));

  constexpr int kJobsPerIter = 32;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    std::vector<service::JobId> ids;
    ids.reserve(kJobsPerIter);
    for (int i = 0; i < kJobsPerIter; ++i) {
      service::JobSpec spec;
      spec.model = model;
      spec.solver = "sa";
      spec.stop.max_batches = 500;  // flips: short but non-trivial runs
      spec.seed = ++seed;
      ids.push_back(svc.submit(std::move(spec)));
    }
    for (const service::JobId id : ids) {
      benchmark::DoNotOptimize(svc.wait(id).report.best_energy);
      svc.release(id);  // keep per-iteration service state uniform
    }
  }
  state.SetItemsProcessed(state.iterations() * kJobsPerIter);
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4);

/// The submit-side cache hit every duplicated model takes.
void BM_ModelCacheInternHit(benchmark::State& state) {
  service::ModelCache cache;
  (void)cache.intern(bench_model(256, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.intern(bench_model(256, 7)));
  }
  state.SetLabel("includes rebuild of the probe model");
}
BENCHMARK(BM_ModelCacheInternHit);

/// The key-aliased lookup the JSONL front end takes on repeated paths —
/// no parse, no hash of the content.
void BM_ModelCacheKeyHit(benchmark::State& state) {
  service::ModelCache cache;
  const auto load = [] { return bench_model(256, 7); };
  (void)cache.get_or_load("qubo#bench.txt", load);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_load("qubo#bench.txt", load));
  }
}
BENCHMARK(BM_ModelCacheKeyHit);

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
