// Micro benchmarks (google-benchmark) for the batch solve service: job
// pipeline throughput end to end (submit -> schedule -> solve -> report)
// and the model-cache fast paths every batch request crosses.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/http_client.hpp"
#include "net/job_api.hpp"
#include "net/shard_router.hpp"
#include "net/solve_server.hpp"
#include "obs/metrics.hpp"
#include "qubo/qubo_builder.hpp"
#include "rng/xorshift.hpp"
#include "service/model_cache.hpp"
#include "service/solver_service.hpp"

namespace dabs {
namespace {

QuboModel bench_model(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) {
    b.add_linear(i, static_cast<Weight>(rng.next_index(19)) - 9);
  }
  for (VarIndex i = 0; i + 1 < n; ++i) {
    for (VarIndex j = i + 1; j < n; ++j) {
      if (rng.next_unit() < 0.3) {
        b.add_quadratic(i, j, static_cast<Weight>(rng.next_index(19)) - 9);
      }
    }
  }
  return b.build();
}

/// Jobs/second through the full service pipeline: short deterministic sa
/// runs (work-budget stop) over one shared cached model, threads as the
/// benchmark argument.  This is the number the JSONL front end scales with.
void BM_ServiceThroughput(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  service::SolverService::Config config;
  config.threads = threads;
  config.max_events_per_job = 16;
  service::SolverService svc(config);
  const std::shared_ptr<const QuboModel> model =
      svc.cache().intern(bench_model(64, 42));

  constexpr int kJobsPerIter = 32;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    std::vector<service::JobId> ids;
    ids.reserve(kJobsPerIter);
    for (int i = 0; i < kJobsPerIter; ++i) {
      service::JobSpec spec;
      spec.model = model;
      spec.solver = "sa";
      spec.stop.max_batches = 500;  // flips: short but non-trivial runs
      spec.seed = ++seed;
      ids.push_back(svc.submit(std::move(spec)));
    }
    for (const service::JobId id : ids) {
      benchmark::DoNotOptimize(svc.wait(id).report.best_energy);
      svc.release(id);  // keep per-iteration service state uniform
    }
  }
  state.SetItemsProcessed(state.iterations() * kJobsPerIter);
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4);

/// The submit-side cache hit every duplicated model takes.
void BM_ModelCacheInternHit(benchmark::State& state) {
  service::ModelCache cache;
  (void)cache.intern(bench_model(256, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.intern(bench_model(256, 7)));
  }
  state.SetLabel("includes rebuild of the probe model");
}
BENCHMARK(BM_ModelCacheInternHit);

/// The key-aliased lookup the JSONL front end takes on repeated paths —
/// no parse, no hash of the content.
void BM_ModelCacheKeyHit(benchmark::State& state) {
  service::ModelCache cache;
  const auto load = [] { return bench_model(256, 7); };
  (void)cache.get_or_load("qubo#bench.txt", load);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_load("qubo#bench.txt", load));
  }
}
BENCHMARK(BM_ModelCacheKeyHit);

/// Cost of one telemetry touch: a counter increment plus a histogram
/// observation through pre-resolved handles, the exact pattern every
/// instrumented call site uses (resolve once, update per event).  This is
/// the per-request overhead /v1/metrics instrumentation adds — it must
/// stay in the low tens of nanoseconds.
void BM_MetricsOverhead(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& requests = reg.counter("bench_requests_total", "bench");
  obs::Histogram& latency = reg.histogram(
      "bench_latency_seconds", "bench",
      obs::Histogram::default_latency_bounds());
  double sample = 0.0;
  for (auto _ : state) {
    requests.inc();
    latency.observe(sample);
    sample += 1e-6;  // walk the bucket ladder instead of hitting one bucket
    if (sample > 1.0) sample = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverhead);

/// The same two updates under thread contention: relaxed atomics mean no
/// lock, but the cachelines bounce.  Threads as the benchmark argument.
void BM_MetricsOverheadContended(benchmark::State& state) {
  static obs::MetricsRegistry reg;
  obs::Counter& requests = reg.counter("bench_contended_total", "bench");
  obs::Histogram& latency = reg.histogram(
      "bench_contended_seconds", "bench",
      obs::Histogram::default_latency_bounds());
  for (auto _ : state) {
    requests.inc();
    latency.observe(0.002);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverheadContended)->Threads(1)->Threads(4);

// ---------------------------------------------------------------------------
// HTTP solve server: the same pipeline through SolveServer + the wire.

/// One running solve server, single-process or internally sharded, plus
/// the client plumbing to drive it.  Shards > 1 forks workers, so the
/// group is constructed before any thread exists in this scope (same
/// fork-before-threads ordering dabs_cli serve uses).
class BenchServer {
 public:
  explicit BenchServer(std::size_t shards, std::size_t total_workers = 2) {
    net::JobApi::Config api;
    api.threads = std::max<std::size_t>(1, total_workers / shards);
    api.max_events_per_job = 16;
    if (shards > 1) {
      group_ = std::make_unique<net::ShardGroup>(api, shards);
      backend_ = std::make_unique<net::ShardBackend>(*group_);
    } else {
      backend_ = std::make_unique<net::JobApi>(api);
    }
    net::SolveServer::Config config;
    config.http.port = 0;
    config.http.stream_poll_seconds = 0.001;
    server_ = std::make_unique<net::SolveServer>(config, *backend_);
    thread_ = std::thread([this] { server_->run(); });
  }
  ~BenchServer() {
    server_->stop();
    thread_.join();
  }
  std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::ShardGroup> group_;  // forked before any thread
  std::unique_ptr<net::JobBackend> backend_;
  std::unique_ptr<net::SolveServer> server_;
  std::thread thread_;
};

std::string bench_job(std::uint64_t seed) {
  // Distinct seeds spread the consistent-hash ring across shards.
  return R"({"problem": "maxcut", "params": {"n": 32, "m": 120, "seed": )" +
         std::to_string(seed) +
         R"(}, "solver": "sa", "max_batches": 500, "seed": )" +
         std::to_string(seed) + "}";
}

std::uint64_t submitted_id(const net::HttpClient::Response& resp) {
  const std::size_t at = resp.body.find("\"job_id\":");
  return std::stoull(resp.body.substr(at + 9));
}

bool is_terminal(const std::string& status_body) {
  return status_body.find("\"state\":\"queued\"") == std::string::npos &&
         status_body.find("\"state\":\"running\"") == std::string::npos;
}

/// Sustained jobs/second through the HTTP server: batches of short solve
/// jobs submitted and polled to completion over one keep-alive connection.
/// Arg = shard count (1 = in-process JobApi, >1 = forked shard workers);
/// total solver threads are held constant so the numbers compare the
/// topology, not the core count.
void BM_HttpServerJobThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  BenchServer server(shards);
  net::HttpClient client("127.0.0.1", server.port());

  constexpr int kJobsPerIter = 32;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    std::vector<std::uint64_t> ids;
    ids.reserve(kJobsPerIter);
    for (int i = 0; i < kJobsPerIter; ++i) {
      ids.push_back(submitted_id(
          client.request("POST", "/v1/jobs", bench_job(++seed))));
    }
    for (const std::uint64_t id : ids) {
      for (;;) {
        const auto status =
            client.request("GET", "/v1/jobs/" + std::to_string(id));
        if (is_terminal(status.body)) break;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kJobsPerIter);
  state.SetLabel(shards == 1 ? "1 process" : std::to_string(shards) +
                                                 " forked shards");
}
BENCHMARK(BM_HttpServerJobThroughput)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()  // the work happens on server threads / forked workers
    ->Unit(benchmark::kMillisecond);

/// Submit -> first solver tick latency over HTTP: time from POST /v1/jobs
/// to the first event observed on the chunked events stream.  Reported as
/// p50/p99 counters (seconds) across the benchmark's iterations.
void BM_HttpSubmitToFirstTick(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  BenchServer server(shards);
  net::HttpClient submit_client("127.0.0.1", server.port());

  std::vector<double> samples;
  std::uint64_t seed = 1000000;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t id = submitted_id(
        submit_client.request("POST", "/v1/jobs", bench_job(++seed)));
    // Follow the events stream until the first event page; abandoning the
    // chunked stream closes the connection, so each sample reconnects.
    net::HttpClient streamer("127.0.0.1", server.port());
    double elapsed = 0.0;
    (void)streamer.stream(
        "GET", "/v1/jobs/" + std::to_string(id) + "/events",
        [&](const std::string& chunk) {
          if (chunk.find("\"kind\":") == std::string::npos) return true;
          elapsed = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
          return false;  // first tick seen; abandon the stream
        });
    samples.push_back(elapsed);
    // Drain the job so queue depth stays flat across samples.
    for (;;) {
      const auto status =
          submit_client.request("GET", "/v1/jobs/" + std::to_string(id));
      if (is_terminal(status.body)) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  std::sort(samples.begin(), samples.end());
  const auto percentile = [&samples](double p) {
    const std::size_t at = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(samples.size())));
    return samples[at];
  };
  state.counters["p50_submit_to_first_tick_s"] = percentile(0.50);
  state.counters["p99_submit_to_first_tick_s"] = percentile(0.99);
  state.SetLabel(shards == 1 ? "1 process" : std::to_string(shards) +
                                                 " forked shards");
}
BENCHMARK(BM_HttpSubmitToFirstTick)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
