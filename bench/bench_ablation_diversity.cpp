// Ablation bench (DESIGN.md): quantify each diversity feature the paper
// motivates qualitatively —
//   (1) full algorithm portfolio vs each single algorithm,
//   (2) eight genetic ops vs the ABS single op,
//   (3) island ring with Xrossover vs a single pool.
// Metric: best energy reached under a fixed batch budget (deterministic
// synchronous mode, common seeds).
#include "bench_common.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"

namespace dabs {
namespace {

namespace pr = problems;

/// Best energy averaged over a few seeds: one seed's luck otherwise
/// dominates the comparison.
double run_with(const QuboModel& m, SolverConfig c) {
  double sum = 0;
  const int kSeeds = 3;
  for (int s = 0; s < kSeeds; ++s) {
    c.seed = 1000 + 7919 * s;
    sum += double(DabsSolver(c).solve(m).best_energy);
  }
  return sum / kSeeds;
}

std::string fmt_mean_energy(double e) {
  return dabs::io::fmt_energy(static_cast<long long>(e));
}

void run() {
  bench::print_banner("Ablation — value of each diversity feature");
  const auto inst =
      pr::make_grid_qap(3, 4, 10, 30, "nug12-like");  // hard landscape
  const pr::QapQubo q = pr::qap_to_qubo(inst);
  const QuboModel& m = q.model;
  bench::note("instance " + inst.name + " -> " + m.describe());

  const auto budget =
      static_cast<std::uint64_t>(600 * bench::scale());

  io::ResultsTable table("Ablation (best energy after " +
                         std::to_string(budget) + " batches; lower wins)");
  table.columns({"configuration", "best energy"});

  auto base = [&](std::uint64_t seed) {
    SolverConfig c = bench::bench_config(seed, 0.1, 1.0);
    c.stop.max_batches = budget;
    return c;
  };

  // Full DABS.
  table.add_row({"DABS (all 5 algos, 8 ops, ring)",
                 fmt_mean_energy(run_with(m, base(1)))});

  // Single-algorithm variants.
  for (const MainSearch s : kAllMainSearches) {
    SolverConfig c = base(2);
    c.algorithms = {s};
    table.add_row({"single algo: " + std::string(to_string(s)),
                   fmt_mean_energy(run_with(m, c))});
  }

  // ABS operation set (mutation-after-crossover only).
  {
    SolverConfig c = base(3);
    c.operations = {GeneticOp::kMutateCrossover};
    table.add_row({"single op: MutateCrossover (ABS ops)",
                   fmt_mean_energy(run_with(m, c))});
  }

  // No Xrossover (remove the inter-pool operation).
  {
    SolverConfig c = base(4);
    c.operations = {GeneticOp::kRandom,     GeneticOp::kBest,
                    GeneticOp::kMutation,   GeneticOp::kCrossover,
                    GeneticOp::kZero,       GeneticOp::kOne,
                    GeneticOp::kIntervalZero};
    table.add_row({"no Xrossover", fmt_mean_energy(run_with(m, c))});
  }

  // Single pool (no islands; Xrossover degenerates to Crossover).
  {
    SolverConfig c = base(5);
    c.devices = 1;
    c.device.blocks = 4;  // same total block count
    table.add_row({"single pool (no islands)",
                   fmt_mean_energy(run_with(m, c))});
  }

  table.print(std::cout);
  bench::note("expected shape: the full configuration is at least as good "
              "as every restriction (per-seed noise aside).");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
