// Micro benchmarks (google-benchmark) for the host-side machinery: packet
// queue transfer, solution-pool insertion, and adaptive selection — the
// paper's host/GPU communication path (§III-C, §IV).
#include <benchmark/benchmark.h>

#include "device/packet_queue.hpp"
#include "evolve/adaptive_selector.hpp"
#include "evolve/genetic_ops.hpp"
#include "evolve/solution_pool.hpp"
#include "rng/xorshift.hpp"

namespace dabs {
namespace {

void BM_PacketQueueRoundTrip(benchmark::State& state) {
  PacketQueue q(64);
  Rng rng(1);
  Packet p;
  p.solution = random_bit_vector(2000, rng);
  for (auto _ : state) {
    (void)q.try_push(p);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_PacketQueueRoundTrip);

void BM_PoolInsert(benchmark::State& state) {
  const std::size_t n = 2000;
  SolutionPool pool(100, n);
  Rng rng(2);
  pool.initialize_random(rng);
  Energy e = -1;
  for (auto _ : state) {
    PoolEntry entry;
    entry.solution = random_bit_vector(n, rng);
    entry.energy = e--;  // always improving: worst-case sorted insert
    entry.algo = MainSearch::kMaxMin;
    entry.op = GeneticOp::kMutation;
    benchmark::DoNotOptimize(pool.insert(std::move(entry)));
  }
}
BENCHMARK(BM_PoolInsert);

void BM_PoolInsertRejected(benchmark::State& state) {
  const std::size_t n = 2000;
  SolutionPool pool(100, n);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    pool.insert({random_bit_vector(n, rng), -1000 - i, MainSearch::kMaxMin,
                 GeneticOp::kMutation});
  }
  PoolEntry worse;
  worse.solution = random_bit_vector(n, rng);
  worse.energy = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.insert(worse));  // O(1) rejection path
  }
}
BENCHMARK(BM_PoolInsertRejected);

void BM_AdaptiveSelection(benchmark::State& state) {
  SolutionPool pool(100, 64);
  Rng rng(4);
  pool.initialize_random(rng);
  AdaptiveSelector sel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.select_algorithm(pool, rng));
    benchmark::DoNotOptimize(sel.select_operation(pool, rng));
  }
}
BENCHMARK(BM_AdaptiveSelection);

void BM_CubeWeightedSelection(benchmark::State& state) {
  SolutionPool pool(100, 2000);
  Rng rng(5);
  pool.initialize_random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.select_cube_weighted(rng));
  }
}
BENCHMARK(BM_CubeWeightedSelection);

}  // namespace
}  // namespace dabs

BENCHMARK_MAIN();
