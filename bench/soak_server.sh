#!/usr/bin/env bash
# Soak test for `dabs_cli serve`: hammers a running server with curl for a
# fixed wall-clock window and reports sustained jobs/s, terminal-state mix,
# and HTTP error counts.  Non-gating — operator tooling, not CI.
#
# Usage: bench/soak_server.sh [BUILD_DIR] [SECONDS] [SHARDS]
#   BUILD_DIR  build tree containing examples/dabs_cli (default: build)
#   SECONDS    soak window (default: 30)
#   SHARDS     worker processes behind the server (default: 1)
set -u

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
duration="${2:-30}"
shards="${3:-1}"
CLI="${build_dir}/examples/dabs_cli"
[ -x "$CLI" ] || { echo "error: $CLI not built" >&2; exit 1; }
command -v curl >/dev/null 2>&1 || { echo "error: curl not found" >&2; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/dabs_soak.XXXXXX")
PORT=$(( 20000 + $$ % 20000 ))
BASE="http://127.0.0.1:$PORT/v1"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill -TERM "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

shard_args=()
[ "$shards" -gt 1 ] && shard_args=(--shards "$shards")
"$CLI" serve --port "$PORT" --jobs 2 --queue-limit 256 "${shard_args[@]}" \
  2> "$WORK/server.err" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.err" >&2; exit 1; }
  sleep 0.05
done

echo "soaking $BASE for ${duration}s (shards=$shards)..." >&2
submitted=0
shed=0
errors=0
seed=0
end=$(( $(date +%s) + duration ))
while [ "$(date +%s)" -lt "$end" ]; do
  seed=$((seed + 1))
  body=$(printf '{"problem": "maxcut", "params": {"n": 32, "m": 120, "seed": %d}, "solver": "sa", "max_batches": 500, "seed": %d}' "$seed" "$seed")
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/jobs" -d "$body")
  case "$code" in
    202) submitted=$((submitted + 1)) ;;
    429) shed=$((shed + 1)); sleep 0.02 ;;  # back off while shed
    *)   errors=$((errors + 1)) ;;
  esac
done

# Let the queue drain, then read the final ledger from /v1/stats.
for _ in $(seq 1 600); do
  stats=$(curl -sf "$BASE/stats")
  case "$stats" in *'"outstanding":0'*) break ;; esac
  sleep 0.1
done
echo "$stats" > "$WORK/stats.json"

# Final scrape: the metrics ledger must agree with itself.  Sums are per
# metric family across every label set (per-shard samples included).
curl -sf "$BASE/metrics" > "$WORK/metrics.prom" \
  || { echo "FAIL: /v1/metrics scrape failed" >&2; exit 1; }
sum_metric() {
  awk -v name="$1" \
    '$0 !~ /^#/ && $1 ~ "^"name"($|\\{)" { s += $NF } END { printf "%.0f\n", s + 0 }' \
    "$WORK/metrics.prom"
}
m_requests=$(sum_metric dabs_http_requests_total)
m_submitted=$(sum_metric dabs_service_jobs_submitted_total)
m_terminal=$(sum_metric dabs_service_jobs_terminal_total)

echo "== soak result (${duration}s window)"
echo "submitted: $submitted  shed(429): $shed  transport-errors: $errors"
echo "sustained: $(( submitted / duration )) jobs/s accepted"
echo "final /v1/stats:"
sed 's/^/  /' "$WORK/stats.json"
echo "final /v1/metrics: http_requests=$m_requests" \
     "service_submitted=$m_submitted service_terminal=$m_terminal"
[ "$errors" -eq 0 ] || { echo "FAIL: transport errors during soak" >&2; exit 1; }
# Invariant 1: the HTTP layer saw at least one request per accepted job.
[ "$m_requests" -ge "$m_submitted" ] || {
  echo "FAIL: http requests ($m_requests) < jobs submitted ($m_submitted)" >&2
  exit 1
}
# Invariant 2: after the drain, every submitted job reached a terminal
# disposition — the counters must balance exactly.
[ "$m_submitted" -eq "$m_terminal" ] || {
  echo "FAIL: submitted ($m_submitted) != terminal sum ($m_terminal)" >&2
  exit 1
}
echo "PASS"
