// Table III reproduction: QAP instances (tai20a / tho30 / nug30 families).
//
// The paper reports: QAP optimum, penalty, QUBO optimum = C(g*) - n*p,
// DABS TTS, ABS TTS + success probability, comparator gaps.  Real QAPLIB
// files can be placed next to the binary and loaded with io::read_qaplib;
// by default the bench uses generator instances from the same families
// (uniform/Taillard-like and grid/Nugent-like; DESIGN.md §2).
#include "baseline/abs_solver.hpp"
#include "baseline/simulated_annealing.hpp"
#include "baseline/subqubo_solver.hpp"
#include "baseline/tabu_search.hpp"
#include "bench_common.hpp"
#include "problems/qap.hpp"

namespace dabs {
namespace {

namespace pr = problems;
using bench::bench_config;

struct Row {
  pr::QapInstance inst;
  Weight penalty;
};

std::vector<Row> instances() {
  if (bench::full_size()) {
    // Paper-size shapes; penalties follow the paper's order of magnitude.
    return {{pr::make_uniform_qap(20, 100, 20, "tai20-like"), 200000},
            {pr::make_uniform_qap(30, 50, 30, "tho30-like"), 30000},
            {pr::make_grid_qap(5, 6, 10, 30, "nug30-like"), 1000}};
  }
  return {{pr::make_uniform_qap(8, 20, 20, "tai8-like"), 0},
          {pr::make_uniform_qap(10, 10, 30, "tho10-like"), 0},
          {pr::make_grid_qap(3, 4, 10, 30, "nug12-like"), 0}};
}

void run() {
  bench::print_banner("Table III — QAP (tai / tho / nug families)");
  io::ResultsTable table("Table III");
  table.columns({"instance", "penalty", "QUBO ref", "DABS best", "DABS TTS",
                 "DABS succ", "ABS best", "ABS succ", "SA gap", "Tabu gap",
                 "subQUBO gap", "feasible"});

  const double time_budget = 4.0 * bench::scale();
  const std::size_t n_trials = bench::trials(5);

  for (Row& row : instances()) {
    const pr::QapQubo q = pr::qap_to_qubo(row.inst, row.penalty);
    bench::note("instance " + row.inst.name + " n=" +
                std::to_string(row.inst.n) + " -> " + q.model.describe() +
                " penalty=" + std::to_string(q.penalty));

    // Reference energy: long DABS run (paper QAP params s=0.1, b=1).
    SolverConfig ref_cfg = bench_config(11, 0.1, 1.0);
    ref_cfg.stop.time_limit_seconds = 2.0 * time_budget;
    const SolveResult ref = DabsSolver(ref_cfg).solve(q.model);
    Energy best_known = ref.best_energy;

    SaParams sa_p;
    sa_p.sweeps = 1500;
    sa_p.restarts = 6;
    sa_p.time_limit_seconds = time_budget;
    const BaselineResult sa = SimulatedAnnealing(sa_p).solve(q.model);
    TabuSearchParams tb_p;
    tb_p.iterations = 200000;
    tb_p.time_limit_seconds = time_budget;
    const BaselineResult tb = TabuSearch(tb_p).solve(q.model);
    // SubQUBO hybrid (the [37] comparator the paper cites on tai20a/tho30).
    SubQuboParams sq_p;
    sq_p.subset_size = 16;
    sq_p.iterations = 100000;
    sq_p.restarts = 4;
    sq_p.time_limit_seconds = time_budget;
    const BaselineResult sq = SubQuboSolver(sq_p).solve(q.model);
    best_known = std::min({best_known, sa.best_energy, tb.best_energy,
                           sq.best_energy});

    const auto dabs_camp = bench::run_campaign(
        q.model, best_known, n_trials, [&](std::size_t t) {
          SolverConfig c = bench_config(300 + t, 0.1, 1.0);
          c.stop.target_energy = best_known;
          c.stop.time_limit_seconds = time_budget;
          return DabsSolver(c);
        });
    const auto abs_camp = bench::run_campaign(
        q.model, best_known, n_trials, [&](std::size_t t) {
          SolverConfig c = bench_config(400 + t, 0.1, 1.0);
          c.stop.target_energy = best_known;
          c.stop.time_limit_seconds = time_budget;
          return AbsSolver(c);
        });

    // Feasibility of the reference solution (one-hot decode).
    SolverConfig check_cfg = bench_config(12, 0.1, 1.0);
    check_cfg.stop.target_energy = best_known;
    check_cfg.stop.time_limit_seconds = 2.0 * time_budget;
    const SolveResult chk = DabsSolver(check_cfg).solve(q.model);
    const bool feasible =
        chk.best_energy == best_known &&
        pr::decode_assignment(chk.best_solution, row.inst.n).has_value();

    table.add_row(
        {row.inst.name, std::to_string(q.penalty),
         io::fmt_energy(best_known), io::fmt_energy(dabs_camp.best_energy),
         dabs_camp.successes ? io::fmt_seconds(dabs_camp.tts.mean()) : "-",
         io::fmt_percent(dabs_camp.success_rate()),
         io::fmt_energy(abs_camp.best_energy),
         io::fmt_percent(abs_camp.success_rate()),
         io::fmt_gap(energy_gap(sa.best_energy, best_known)),
         io::fmt_gap(energy_gap(tb.best_energy, best_known)),
         io::fmt_gap(energy_gap(sq.best_energy, best_known)),
         feasible ? "yes" : "NO"});
  }
  table.print(std::cout);
  bench::note("paper shape: DABS succeeds with TTS far below comparator "
              "budgets; ABS succeeds with lower probability; SA/Tabu end "
              "with positive gaps.");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
