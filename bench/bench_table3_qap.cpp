// Table III reproduction: QAP instances (tai20a / tho30 / nug30 families).
//
// The paper reports: QAP optimum, penalty, QUBO optimum = C(g*) - n*p,
// DABS TTS, ABS TTS + success probability, comparator gaps.  Real QAPLIB
// files can be placed next to the binary and loaded with io::read_qaplib;
// by default the bench uses generator instances from the same families
// (uniform/Taillard-like and grid/Nugent-like; DESIGN.md §2).
#include <algorithm>

#include "baseline/baseline_result.hpp"  // energy_gap
#include "bench_common.hpp"
#include "problems/qap.hpp"

namespace dabs {
namespace {

namespace pr = problems;
using bench::bulk_options;

struct Row {
  pr::QapInstance inst;
  Weight penalty;
};

std::vector<Row> instances() {
  if (bench::full_size()) {
    // Paper-size shapes; penalties follow the paper's order of magnitude.
    return {{pr::make_uniform_qap(20, 100, 20, "tai20-like"), 200000},
            {pr::make_uniform_qap(30, 50, 30, "tho30-like"), 30000},
            {pr::make_grid_qap(5, 6, 10, 30, "nug30-like"), 1000}};
  }
  return {{pr::make_uniform_qap(8, 20, 20, "tai8-like"), 0},
          {pr::make_uniform_qap(10, 10, 30, "tho10-like"), 0},
          {pr::make_grid_qap(3, 4, 10, 30, "nug12-like"), 0}};
}

void run() {
  bench::print_banner("Table III — QAP (tai / tho / nug families)");
  bench::JsonSink sink("table3_qap");
  io::ResultsTable table("Table III");
  table.columns({"instance", "penalty", "QUBO ref", "DABS best", "DABS TTS",
                 "DABS succ", "ABS best", "ABS succ", "SA gap", "Tabu gap",
                 "subQUBO gap", "feasible"});

  const double time_budget = 4.0 * bench::scale();
  const std::size_t n_trials = bench::trials(5);

  for (Row& row : instances()) {
    const pr::QapQubo q = pr::qap_to_qubo(row.inst, row.penalty);
    bench::note("instance " + row.inst.name + " n=" +
                std::to_string(row.inst.n) + " -> " + q.model.describe() +
                " penalty=" + std::to_string(q.penalty));

    // Reference energy: long DABS run (paper QAP params s=0.1, b=1).
    StopCondition ref_stop;
    ref_stop.time_limit_seconds = 2.0 * time_budget;
    const SolveReport ref = bench::solve_on(
        *bench::make_solver("dabs", bulk_options(11, 0.1, 1.0)), q.model,
        ref_stop);
    Energy best_known = ref.best_energy;

    StopCondition cmp_stop;
    cmp_stop.time_limit_seconds = time_budget;
    const SolveReport sa = bench::solve_on(
        *bench::make_solver("sa", SolverOptions{{"sweeps", "1500"},
                                                {"restarts", "6"}}),
        q.model, cmp_stop);
    const SolveReport tb = bench::solve_on(
        *bench::make_solver("tabu", SolverOptions{{"iterations", "200000"}}),
        q.model, cmp_stop);
    // SubQUBO hybrid (the [37] comparator the paper cites on tai20a/tho30).
    const SolveReport sq = bench::solve_on(
        *bench::make_solver("subqubo", SolverOptions{{"subset", "16"},
                                                     {"iterations", "100000"},
                                                     {"restarts", "4"}}),
        q.model, cmp_stop);
    best_known = std::min({best_known, sa.best_energy, tb.best_energy,
                           sq.best_energy});

    const auto dabs_camp = bench::run_registry_campaign(
        q.model, best_known, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver("dabs", bulk_options(300 + t, 0.1, 1.0));
        });
    const auto abs_camp = bench::run_registry_campaign(
        q.model, best_known, time_budget, n_trials, [&](std::size_t t) {
          return bench::make_solver("abs", bulk_options(400 + t, 0.1, 1.0));
        });

    // Feasibility of the reference solution (one-hot decode).
    StopCondition chk_stop;
    chk_stop.target_energy = best_known;
    chk_stop.time_limit_seconds = 2.0 * time_budget;
    const SolveReport chk = bench::solve_on(
        *bench::make_solver("dabs", bulk_options(12, 0.1, 1.0)), q.model,
        chk_stop);
    const bool feasible =
        chk.best_energy == best_known &&
        pr::decode_assignment(chk.best_solution, row.inst.n).has_value();

    table.add_row(
        {row.inst.name, std::to_string(q.penalty),
         io::fmt_energy(best_known), io::fmt_energy(dabs_camp.best_energy),
         dabs_camp.successes ? io::fmt_seconds(dabs_camp.tts.mean()) : "-",
         io::fmt_percent(dabs_camp.success_rate()),
         io::fmt_energy(abs_camp.best_energy),
         io::fmt_percent(abs_camp.success_rate()),
         io::fmt_gap(energy_gap(sa.best_energy, best_known)),
         io::fmt_gap(energy_gap(tb.best_energy, best_known)),
         io::fmt_gap(energy_gap(sq.best_energy, best_known)),
         feasible ? "yes" : "NO"});
    sink.metric("success_rate_dabs_" + row.inst.name,
                dabs_camp.success_rate());
    sink.metric("success_rate_abs_" + row.inst.name, abs_camp.success_rate());
    if (dabs_camp.successes) {
      sink.metric("tts_mean_dabs_" + row.inst.name, dabs_camp.tts.mean());
    }
    sink.row({{"instance", row.inst.name},
              {"penalty", std::to_string(q.penalty)},
              {"ref_energy", std::to_string(best_known)},
              {"dabs_best", std::to_string(dabs_camp.best_energy)},
              {"abs_best", std::to_string(abs_camp.best_energy)},
              {"feasible", feasible ? "yes" : "no"}});
  }
  table.print(std::cout);
  bench::note("paper shape: DABS succeeds with TTS far below comparator "
              "budgets; ABS succeeds with lower probability; SA/Tabu end "
              "with positive gaps.");
}

}  // namespace
}  // namespace dabs

int main() {
  dabs::run();
  return 0;
}
