// Landscape analysis example: measure why the paper's three benchmark
// families need different search algorithms (the No Free Lunch argument,
// §I-B) — ruggedness and local-minima structure differ drastically between
// MaxCut, QAP and QASP models of comparable size.
//
//   $ ./landscape_analysis
//
// All three models come from the unified problem registry — the same specs
// work in `dabs_cli --problem` and batch job lines.
#include <iostream>
#include <memory>

#include "analysis/landscape.hpp"
#include "problems/problem_registry.hpp"

namespace {

void analyze(const std::string& name, const dabs::QuboModel& m,
             std::uint64_t seed) {
  dabs::Rng rng(seed);
  std::cout << "\n== " << name << " — " << m.describe() << " ==\n";

  const auto random_stats = dabs::analysis::random_energy_stats(m, 200, rng);
  std::cout << "random solutions : " << random_stats.to_string() << "\n";

  const auto ac =
      dabs::analysis::random_walk_autocorrelation(m, 4000, 64, rng);
  std::cout << "walk correlation length: " << ac.correlation_length
            << " flips (rho[1]=" << ac.rho[1] << ")\n";

  const auto minima = dabs::analysis::sample_local_minima(m, 100, rng);
  std::cout << "local minima     : " << minima.distinct_minima
            << " distinct in " << minima.restarts
            << " greedy restarts; best " << minima.best
            << " reached by " << int(minima.best_basin_share * 100 + 0.5)
            << "% of starts\n"
            << "minima energies  : " << minima.energies.to_string() << "\n";
}

}  // namespace

int main() {
  auto& problems = dabs::ProblemRegistry::global();

  analyze("MaxCut (G-style sparse, 200 nodes)",
          problems.create("maxcut", {{"n", "200"}, {"m", "2000"}})->encode(),
          11);

  analyze("QAP one-hot (nug-style 3x4, 144 vars)",
          problems
              .create("qap", {{"kind", "grid"}, {"rows", "3"}, {"cols", "4"},
                              {"max", "10"}, {"seed", "2"}})
              ->encode(),
          22);

  analyze("QASP r=16 (Pegasus P3, 144 qubits)",
          problems
              .create("qasp", {{"r", "16"}, {"m", "3"}, {"graph-seed", "3"},
                               {"value-seed", "4"}})
              ->encode(),
          33);

  std::cout << "\nExpected contrast: the QAP landscape shows few, deep, "
               "hard-to-reach minima (one-hot penalty walls), while MaxCut "
               "and QASP are smoother with many shallow minima — the reason "
               "no single search algorithm wins everywhere.\n";
  return 0;
}
