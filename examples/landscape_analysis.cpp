// Landscape analysis example: measure why the paper's three benchmark
// families need different search algorithms (the No Free Lunch argument,
// §I-B) — ruggedness and local-minima structure differ drastically between
// MaxCut, QAP and QASP models of comparable size.
//
//   $ ./landscape_analysis
#include <iostream>

#include "analysis/landscape.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"
#include "problems/qasp.hpp"

namespace {

void analyze(const std::string& name, const dabs::QuboModel& m,
             std::uint64_t seed) {
  dabs::Rng rng(seed);
  std::cout << "\n== " << name << " — " << m.describe() << " ==\n";

  const auto random_stats = dabs::analysis::random_energy_stats(m, 200, rng);
  std::cout << "random solutions : " << random_stats.to_string() << "\n";

  const auto ac =
      dabs::analysis::random_walk_autocorrelation(m, 4000, 64, rng);
  std::cout << "walk correlation length: " << ac.correlation_length
            << " flips (rho[1]=" << ac.rho[1] << ")\n";

  const auto minima = dabs::analysis::sample_local_minima(m, 100, rng);
  std::cout << "local minima     : " << minima.distinct_minima
            << " distinct in " << minima.restarts
            << " greedy restarts; best " << minima.best
            << " reached by " << int(minima.best_basin_share * 100 + 0.5)
            << "% of starts\n"
            << "minima energies  : " << minima.energies.to_string() << "\n";
}

}  // namespace

int main() {
  namespace pr = dabs::problems;

  analyze("MaxCut (G-style sparse, 200 nodes)",
          pr::maxcut_to_qubo(pr::make_random_maxcut(
              200, 2000, pr::EdgeWeights::kPlusMinusOne, 1, "g")),
          11);

  analyze("QAP one-hot (nug-style 3x4, 144 vars)",
          pr::qap_to_qubo(pr::make_grid_qap(3, 4, 10, 2, "nug")).model, 22);

  analyze("QASP r=16 (Pegasus P3, 144 qubits)",
          pr::make_qasp_small(16, 3, 3).qubo, 33);

  std::cout << "\nExpected contrast: the QAP landscape shows few, deep, "
               "hard-to-reach minima (one-hot penalty walls), while MaxCut "
               "and QASP are smoother with many shallow minima — the reason "
               "no single search algorithm wins everywhere.\n";
  return 0;
}
