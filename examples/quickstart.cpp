// Quickstart: build a small QUBO model by hand, run a solver through the
// unified registry API, and print the best solution.
//
//   $ ./quickstart
//
// The model is the paper's running setting in miniature: minimize
// E(X) = sum W_ij x_i x_j + sum W_ii x_i over binary vectors X.
// Every solver in the registry (dabs, abs, sa, tabu, greedy-restart,
// path-relinking, subqubo, exhaustive) runs through the same
// SolveRequest / SolveReport surface shown here.
#include <iostream>

#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "qubo/qubo_builder.hpp"

namespace {

// Progress hooks: on_new_best fires on every improvement, on_tick at most
// once per SolveRequest::tick_seconds.
struct PrintProgress : dabs::ProgressObserver {
  void on_new_best(const dabs::ProgressEvent& event) override {
    std::cout << "  improved to " << event.best_energy << " after "
              << event.work << " batches\n";
  }
};

}  // namespace

int main() {
  // 1. Describe the problem: a 6-variable QUBO with a frustrated loop.
  dabs::QuboBuilder builder(6);
  builder.add_quadratic(0, 1, 2)
      .add_quadratic(1, 2, -3)
      .add_quadratic(2, 3, 4)
      .add_quadratic(3, 4, -2)
      .add_quadratic(4, 5, 1)
      .add_quadratic(5, 0, -1)
      .add_linear(0, -1)
      .add_linear(3, -2);
  const dabs::QuboModel model = builder.build();
  std::cout << "model: " << model.describe() << "\n";

  // 2. Build a solver from the registry.  Options are generic strings, so
  //    the same code path drives any solver name ("sa", "tabu", ...).
  //    Registry-built bulk solvers run synchronously (bit-reproducible)
  //    unless the "threads" option asks for the host/device pipeline.
  const std::unique_ptr<dabs::Solver> solver =
      dabs::SolverRegistry::global().create(
          "dabs", {{"devices", "2"}, {"blocks", "2"}});

  // 3. Describe the run: model + stop condition + seed + progress hooks.
  //    A StopToken in the request could cancel it from another thread.
  PrintProgress progress;
  dabs::SolveRequest request;
  request.model = &model;
  request.stop.max_batches = 200;
  request.seed = 42;
  request.observer = &progress;

  // 4. Solve.
  const dabs::SolveReport report = solver->solve(request);
  std::cout << report.to_string()
            << "best vector : " << report.best_solution.to_string() << "\n";
  return 0;
}
