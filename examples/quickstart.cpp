// Quickstart: build a small QUBO model by hand, run the DABS solver, and
// print the best solution.
//
//   $ ./quickstart
//
// The model is the paper's running setting in miniature: minimize
// E(X) = sum W_ij x_i x_j + sum W_ii x_i over binary vectors X.
#include <iostream>

#include "core/dabs_solver.hpp"
#include "qubo/qubo_builder.hpp"

int main() {
  // 1. Describe the problem: a 6-variable QUBO with a frustrated loop.
  dabs::QuboBuilder builder(6);
  builder.add_quadratic(0, 1, 2)
      .add_quadratic(1, 2, -3)
      .add_quadratic(2, 3, 4)
      .add_quadratic(3, 4, -2)
      .add_quadratic(4, 5, 1)
      .add_quadratic(5, 0, -1)
      .add_linear(0, -1)
      .add_linear(3, -2);
  const dabs::QuboModel model = builder.build();
  std::cout << "model: " << model.describe() << "\n";

  // 2. Configure the solver.  Synchronous mode is single-threaded and
  //    reproducible; switch to kThreaded for the full host/device pipeline.
  dabs::SolverConfig config;
  config.devices = 2;          // two virtual GPUs, two solution pools
  config.device.blocks = 2;    // two batch-search executors per device
  config.mode = dabs::ExecutionMode::kSynchronous;
  config.stop.max_batches = 200;
  config.seed = 42;

  // 3. Solve.
  dabs::DabsSolver solver(config);
  const dabs::SolveResult result = solver.solve(model);

  std::cout << "best energy : " << result.best_energy << "\n"
            << "best vector : " << result.best_solution.to_string() << "\n"
            << "batches     : " << result.batches << "\n"
            << "elapsed     : " << result.elapsed_seconds << "s\n"
            << "stats       : " << result.stats.to_string() << "\n";
  return 0;
}
