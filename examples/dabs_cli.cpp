// Command-line QUBO solver front end: load a model from any supported
// format (QUBO text, Gset MaxCut, QAPLIB), run DABS or a baseline, and
// print the result as text or JSON.
//
//   $ ./dabs_cli --format qubo model.txt --time-limit 5
//   $ ./dabs_cli --format gset G22 --solver abs --json
//   $ ./dabs_cli --format qaplib nug30.dat --devices 4 --s 0.1 --b 1.0
//
// Exit status: 0 on success, 2 on usage errors.
#include <iostream>

#include "baseline/abs_solver.hpp"
#include "baseline/simulated_annealing.hpp"
#include "core/dabs_solver.hpp"
#include "core/parallel_campaign.hpp"
#include "io/gset.hpp"
#include "io/json_writer.hpp"
#include "io/qaplib.hpp"
#include "io/qubo_text.hpp"
#include "io/solution_io.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"
#include "qubo/model_info.hpp"
#include "util/arg_parser.hpp"

namespace {

void usage(const std::string& prog) {
  std::cerr
      << "usage: " << prog << " [options] <model-file>\n"
      << "  --format qubo|gset|qaplib   input format (default qubo)\n"
      << "  --solver dabs|abs|sa        solver (default dabs)\n"
      << "  --time-limit <sec>          wall-clock budget (default 5)\n"
      << "  --max-batches <n>           batch budget (0 = none)\n"
      << "  --target <energy>           stop at this energy\n"
      << "  --devices <n> --blocks <n>  virtual device shape (default 2x2)\n"
      << "  --s <f> --b <f>             search/batch flip factors\n"
      << "  --pool <n>                  pool capacity (default 100)\n"
      << "  --seed <n>                  master seed\n"
      << "  --threads                   threaded mode (default synchronous)\n"
      << "  --save-solution <path>      write the best solution found\n"
      << "  --json                      JSON output\n"
      << "  --describe                  print model statistics and exit\n"
      << "  --campaign <trials>         repeated-trial TTS campaign "
         "(needs --target)\n"
      << "  --campaign-threads <n>      workers for --campaign (default 2)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dabs;
  const ArgParser args(argc, argv);
  try {
    if (args.positional().size() != 1 || args.get_bool("help")) {
      usage(args.program());
      return 2;
    }
    const std::string path = args.positional()[0];
    const std::string format = args.get("format", "qubo");

    QuboModel model;
    if (format == "qubo") {
      model = io::read_qubo_file(path);
    } else if (format == "gset") {
      model = problems::maxcut_to_qubo(io::read_gset_file(path));
    } else if (format == "qaplib") {
      model = problems::qap_to_qubo(io::read_qaplib_file(path)).model;
    } else {
      std::cerr << "unknown format '" << format << "'\n";
      return 2;
    }

    if (args.get_bool("describe")) {
      std::cout << describe_model(analyze_model(model));
      return 0;
    }

    SolverConfig cfg;
    cfg.devices = static_cast<std::size_t>(args.get_int("devices", 2));
    cfg.device.blocks =
        static_cast<std::uint32_t>(args.get_int("blocks", 2));
    cfg.device.batch.search_flip_factor = args.get_double("s", 0.1);
    cfg.device.batch.batch_flip_factor = args.get_double("b", 1.0);
    cfg.pool_capacity = static_cast<std::size_t>(args.get_int("pool", 100));
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.mode = args.get_bool("threads") ? ExecutionMode::kThreaded
                                        : ExecutionMode::kSynchronous;
    cfg.stop.time_limit_seconds = args.get_double("time-limit", 5.0);
    cfg.stop.max_batches =
        static_cast<std::uint64_t>(args.get_int("max-batches", 0));
    if (args.has("target")) {
      cfg.stop.target_energy = args.get_int("target", 0);
    }

    if (args.has("campaign")) {
      const auto trials =
          static_cast<std::size_t>(args.get_int("campaign", 10));
      const auto workers =
          static_cast<std::size_t>(args.get_int("campaign-threads", 2));
      if (!cfg.stop.target_energy) {
        std::cerr << "--campaign requires --target <energy>\n";
        return 2;
      }
      const Energy target = *cfg.stop.target_energy;
      const ParallelCampaign camp(cfg, trials, workers);
      const CampaignResult r = camp.run(model, target);
      std::cout << "campaign: " << r.successes << "/" << r.runs
                << " trials reached " << target << "\n";
      if (r.successes > 0) {
        std::cout << "TTS " << r.tts.to_string() << "\n"
                  << "TTS@99% = "
                  << tts_at_confidence(r.tts.mean(), r.success_rate())
                  << "s\n";
      }
      std::cout << "best energy over campaign: " << r.best_energy << "\n";
      return 0;
    }

    const std::string solver = args.get("solver", "dabs");
    SolveResult result;
    if (solver == "dabs") {
      result = DabsSolver(cfg).solve(model);
    } else if (solver == "abs") {
      result = AbsSolver(cfg).solve(model);
    } else if (solver == "sa") {
      SaParams sa;
      sa.time_limit_seconds = cfg.stop.time_limit_seconds;
      sa.restarts = 1000000;
      sa.seed = cfg.seed;
      const BaselineResult r = SimulatedAnnealing(sa).solve(model);
      result.best_solution = r.best_solution;
      result.best_energy = r.best_energy;
      result.elapsed_seconds = r.elapsed_seconds;
    } else {
      std::cerr << "unknown solver '" << solver << "'\n";
      return 2;
    }

    if (const auto out = args.get("save-solution")) {
      io::write_solution_file(*out, result.best_solution,
                              result.best_energy);
    }

    const bool as_json = args.get_bool("json");
    // All options have been queried by now: anything left is a typo.
    for (const std::string& name : args.unused()) {
      std::cerr << "warning: unknown option --" << name << "\n";
    }

    if (as_json) {
      io::JsonWriter json(std::cout);
      json.begin_object()
          .value("model", model.describe())
          .value("solver", solver)
          .value("best_energy", result.best_energy)
          .value("reached_target", result.reached_target)
          .value("tts_seconds", result.tts_seconds)
          .value("elapsed_seconds", result.elapsed_seconds)
          .value("batches", result.batches)
          .end_object();
      std::cout << "\n";
    } else {
      std::cout << model.describe() << "\n"
                << "best energy : " << result.best_energy << "\n"
                << "elapsed     : " << result.elapsed_seconds << "s\n"
                << "batches     : " << result.batches << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage(args.program());
    return 2;
  }
}
