// Command-line QUBO solver front end on the unified solver + problem
// registries: obtain an instance from any registered problem (generator or
// file loader) or a legacy --format file, run any registered solver, and
// print the unified report as text or JSON.  Problem runs additionally
// decode the best solution into domain terms (cut weight, assignment +
// cost, tour + length, Ising energy) and verify it — the verdict rides in
// the report extras.
//
//   $ ./dabs_cli --list-solvers
//   $ ./dabs_cli --list-problems
//   $ ./dabs_cli --problem g22 --solver tabu --time-limit 5
//   $ ./dabs_cli --problem qap --param kind=grid,rows=3,cols=4 --json
//   $ ./dabs_cli --problem gset:G22 --solver tabu --opt tenure=8
//   $ ./dabs_cli --format qubo model.txt --time-limit 5
//   $ ./dabs_cli model.txt --solver sa --target -1234 --campaign 100
//
// The batch subcommand runs a JSONL job file through the solve service
// (see src/service/batch_runner.hpp for the line schema) and streams one
// report object per line as jobs complete:
//
//   $ ./dabs_cli batch jobs.jsonl --jobs 4 > reports.jsonl
//
// Batch runs are fault tolerant: --journal arms a write-ahead job journal
// (add --resume to skip jobs a previous run already finished), retryable
// failures back off and retry (--attempts), --queue-limit sheds load, and
// SIGINT/SIGTERM cancel outstanding jobs, flush the journal plus every
// report already earned, print the summary, and exit 130.
//
// Exit status: 0 on success, 1 when a batch had failing jobs or malformed
// lines, 2 on usage errors, 130 when a batch was interrupted by a signal.
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>

#include "core/parallel_campaign.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "io/json_writer.hpp"
#include "io/solution_io.hpp"
#include "net/net_util.hpp"
#include "net/shard_router.hpp"
#include "net/solve_server.hpp"
#include "problems/problem_registry.hpp"
#include "qubo/model_info.hpp"
#include "service/batch_runner.hpp"
#include "util/arg_parser.hpp"

namespace {

void usage(const std::string& prog) {
  std::cerr
      << "usage: " << prog << " [options] <model-file>\n"
      << "       " << prog << " --problem <name[:path]> [options]\n"
      << "       " << prog << " batch <jobs.jsonl> [--jobs <n>] "
         "[--journal <path> [--resume]]\n"
      << "       " << prog << " serve [--port <p>] [--shards <n> | "
         "--shard-of <k>/<n>]\n"
      << "  --list-solvers              print the solver registry and exit\n"
      << "  --list-problems             print the problem registry and exit\n"
      << "  --problem <name[:path]>     solve a registered problem instead "
         "of a\n"
      << "                              model file; decodes and verifies "
         "the result\n"
      << "  --param k=v[,k=v...]        problem params (see "
         "--list-problems)\n"
      << "  --format qubo|gset|qaplib   input format (default qubo)\n"
      << "  --solver <name>             any registered solver (default "
         "dabs)\n"
      << "  --opt k=v[,k=v...]          solver-specific options (see "
         "--list-solvers)\n"
      << "  --time-limit <sec>          wall-clock budget (default 5)\n"
      << "  --max-batches <n>           work budget: batches for bulk\n"
      << "                              solvers, flips for baselines (0 = "
         "none)\n"
      << "  --target <energy>           stop at this energy\n"
      << "  --seed <n>                  master seed (default: solver's "
         "own)\n"
      << "  --devices <n> --blocks <n>  bulk solver shape (dabs/abs only)\n"
      << "  --s <f> --b <f>             search/batch flip factors "
         "(dabs/abs)\n"
      << "  --pool <n>                  pool capacity (dabs/abs)\n"
      << "  --threads                   threaded bulk mode (default "
         "synchronous)\n"
      << "  --progress                  print improvements to stderr\n"
      << "  --progress-interval <ms>    also print a heartbeat every <ms>\n"
      << "                              milliseconds (implies --progress; "
         "0 = improvements only)\n"
      << "  --save-solution <path>      write the best solution found\n"
      << "  --json                      JSON output\n"
      << "  --describe                  print model statistics and exit\n"
      << "  --campaign <trials>         repeated-trial TTS campaign "
         "(needs --target)\n"
      << "  --campaign-threads <n>      workers for --campaign (default 2)\n"
      << "batch options (one JSON job object per input line; see README):\n"
      << "  --jobs <n>                  batch worker threads (default 4)\n"
      << "  --cache-mb <n>              model cache budget in MiB "
         "(default 256)\n"
      << "  --time-limit <sec>          default per-job budget when a line "
         "sets no stop\n"
      << "  --journal <path>            write-ahead job journal (fsync'd "
         "JSONL)\n"
      << "  --resume                    skip jobs the journal already shows "
         "done/failed\n"
      << "  --attempts <n>              retry budget for retryable failures "
         "(default 3)\n"
      << "  --queue-limit <n>           shed submits past this queue depth "
         "(default: unbounded)\n"
      << "  --trace <path>              dump per-job trace spans as Chrome "
         "trace-event\n"
      << "                              JSON (open at chrome://tracing)\n"
      << "(SIGINT/SIGTERM cancel outstanding jobs, flush journal + earned "
         "reports,\n"
      << " print the summary, and exit 130)\n"
      << "serve options (HTTP solve API; see README \"HTTP server\"):\n"
      << "  --port <p>                  listen port (0 = ephemeral; default "
         "8080)\n"
      << "  --host <addr>               bind address (default 127.0.0.1)\n"
      << "  --jobs/--cache-mb/--time-limit/--attempts/--queue-limit/\n"
      << "  --journal/--resume/--trace  as for batch, per shard (shard "
         "workers write\n"
      << "                              <path>.shard<k>)\n"
      << "  --shards <n>                fork <n> shard workers behind this "
         "server,\n"
      << "                              routed by consistent hash of the "
         "model key\n"
      << "  --shard-of <k>/<n>          serve shard k of an externally "
         "balanced\n"
      << "                              group (misrouted requests get 421)\n"
      << "(SIGINT/SIGTERM stop the server gracefully; with --journal, "
         "restart with\n"
      << " --resume to re-enqueue jobs that never finished)\n"
      << "observability (all modes):\n"
      << "  DABS_LOG=<level>[,json]     structured stderr logging: debug, "
         "info, warn\n"
      << "                              (default), error, off; \",json\" "
         "switches to\n"
      << "                              JSON-lines output\n"
      << "  GET /v1/metrics             Prometheus metrics (serve mode; "
         "see README)\n";
}

void list_solvers() {
  for (const dabs::SolverInfo& info : dabs::SolverRegistry::global().list()) {
    std::cout << "  " << info.name << "\n      " << info.description << "\n";
  }
}

void list_problems() {
  for (const dabs::ProblemInfo& info :
       dabs::ProblemRegistry::global().list()) {
    std::cout << "  " << info.name << (info.takes_path ? ":<path>" : "")
              << "\n      " << info.description << "\n";
  }
}

/// --progress sink: improvements as they happen, on stderr so --json
/// stdout stays machine-readable.  --progress-interval adds heartbeat
/// lines at the requested cadence (SolveRequest::tick_seconds) so long
/// plateaus still show the run is alive.
class StderrProgress : public dabs::ProgressObserver {
 public:
  void on_new_best(const dabs::ProgressEvent& event) override {
    std::cerr << "[" << event.elapsed_seconds << "s] best "
              << event.best_energy << " (work " << event.work << ")\n";
  }
  void on_tick(const dabs::ProgressEvent& event) override {
    std::cerr << "[" << event.elapsed_seconds << "s] ... best "
              << event.best_energy << " (work " << event.work << ")\n";
  }
};

/// Signal-to-batch bridge: the handler only flips the flag (the one thing
/// that is async-signal-safe here); run_batch polls it and winds down.
std::atomic<bool> g_batch_interrupted{false};

extern "C" void on_batch_signal(int) {
  g_batch_interrupted.store(true, std::memory_order_relaxed);
}

/// `dabs_cli batch <jobs.jsonl>`: stream the JSONL job file through the
/// batch service.  "-" reads jobs from stdin.
int run_batch_command(const dabs::ArgParser& args) {
  if (args.positional().size() != 2) {
    usage(args.program());
    return 2;
  }
  const std::int64_t jobs = args.get_int("jobs", 4);
  const std::int64_t cache_mb = args.get_int("cache-mb", 256);
  const double time_limit = args.get_double("time-limit", 5.0);
  if (jobs < 1 || cache_mb < 0 || time_limit < 0) {
    std::cerr << "--jobs must be >= 1; --cache-mb and --time-limit must "
                 "be >= 0\n";
    return 2;
  }
  const std::int64_t attempts = args.get_int("attempts", 3);
  const std::int64_t queue_limit = args.get_int("queue-limit", 0);
  if (attempts < 1 || attempts > 100 || queue_limit < 0) {
    std::cerr << "--attempts must be in [1, 100]; --queue-limit must be "
                 ">= 0\n";
    return 2;
  }
  dabs::service::BatchOptions opts;
  opts.threads = static_cast<std::size_t>(jobs);
  opts.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  opts.default_time_limit = time_limit;
  opts.journal_path = args.get("journal").value_or("");
  opts.resume = args.get_bool("resume");
  opts.max_attempts = static_cast<std::uint32_t>(attempts);
  opts.max_queue_depth = static_cast<std::size_t>(queue_limit);
  opts.trace_path = args.get("trace").value_or("");
  if (opts.resume && opts.journal_path.empty()) {
    std::cerr << "--resume requires --journal <path>\n";
    return 2;
  }
  for (const std::string& name : args.unused()) {
    std::cerr << "warning: unknown option --" << name << "\n";
  }

  // ^C / SIGTERM wind the batch down instead of killing it mid-write:
  // intake stops, outstanding jobs cancel, the journal and every earned
  // report flush, the summary prints, and the exit code is 130.
  opts.interrupt = &g_batch_interrupted;
  std::signal(SIGINT, on_batch_signal);
  std::signal(SIGTERM, on_batch_signal);

  const std::string& path = args.positional()[1];
  if (path == "-") {
    return dabs::service::run_batch(std::cin, std::cout, std::cerr, opts);
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open job file '" << path << "'\n";
    return 2;
  }
  return dabs::service::run_batch(in, std::cout, std::cerr, opts);
}

/// `dabs_cli serve`: the HTTP solve API over a local JobApi, a forked
/// shard group (--shards), or one slice of an external group (--shard-of).
int run_serve_command(const dabs::ArgParser& args) {
  const std::int64_t port = args.get_int("port", 8080);
  const std::string host = args.get("host").value_or("127.0.0.1");
  const std::int64_t jobs = args.get_int("jobs", 2);
  const std::int64_t cache_mb = args.get_int("cache-mb", 256);
  const double time_limit = args.get_double("time-limit", 5.0);
  const std::int64_t attempts = args.get_int("attempts", 3);
  const std::int64_t queue_limit = args.get_int("queue-limit", 0);
  const std::int64_t shards = args.get_int("shards", 1);
  const auto shard_of = args.get("shard-of");
  if (port < 0 || port > 65535 || jobs < 1 || cache_mb < 0 ||
      time_limit < 0 || attempts < 1 || attempts > 100 || queue_limit < 0 ||
      shards < 1) {
    std::cerr << "serve: option out of range (see --help)\n";
    return 2;
  }
  if (shard_of && shards > 1) {
    std::cerr << "serve: --shards and --shard-of are mutually exclusive\n";
    return 2;
  }

  dabs::net::JobApi::Config api;
  api.threads = static_cast<std::size_t>(jobs);
  api.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  api.max_queue_depth = static_cast<std::size_t>(queue_limit);
  api.default_time_limit = time_limit;
  api.max_attempts = static_cast<std::uint32_t>(attempts);
  api.journal_path = args.get("journal").value_or("");
  api.resume = args.get_bool("resume");
  api.trace_path = args.get("trace").value_or("");
  if (api.resume && api.journal_path.empty()) {
    std::cerr << "--resume requires --journal <path>\n";
    return 2;
  }

  dabs::net::SolveServer::Config config;
  config.http.host = host;
  config.http.port = static_cast<std::uint16_t>(port);

  if (shard_of) {
    // "k/n": this process is shard k of an externally balanced group.
    const std::size_t slash = shard_of->find('/');
    std::size_t k = 0;
    std::size_t n = 0;
    try {
      if (slash == std::string::npos) throw std::invalid_argument("");
      k = std::stoul(shard_of->substr(0, slash));
      n = std::stoul(shard_of->substr(slash + 1));
    } catch (const std::exception&) {
      n = 0;
    }
    if (n < 1 || k >= n) {
      std::cerr << "serve: --shard-of wants <k>/<n> with k < n\n";
      return 2;
    }
    api.shard_idx = k;
    api.shards = n;
    config.shard_of_idx = k;
    config.shard_of_total = n;
  }
  for (const std::string& name : args.unused()) {
    std::cerr << "warning: unknown option --" << name << "\n";
  }

  std::signal(SIGINT, on_batch_signal);
  std::signal(SIGTERM, on_batch_signal);

  // Sharded topology forks the workers FIRST: fork() and threads do not
  // mix, and both the JobApi (service pool, reaper) and the journal come
  // alive per worker, on the worker's side of the fork.
  std::unique_ptr<dabs::net::ShardGroup> group;
  std::unique_ptr<dabs::net::JobBackend> backend;
  if (shards > 1) {
    group = std::make_unique<dabs::net::ShardGroup>(
        api, static_cast<std::size_t>(shards));
    backend = std::make_unique<dabs::net::ShardBackend>(*group);
  } else {
    backend = std::make_unique<dabs::net::JobApi>(api);
  }

  dabs::net::SolveServer server(config, *backend);
  std::cerr << "dabs-serve: listening on " << host << ":" << server.port();
  if (shards > 1) std::cerr << " (" << shards << " shards)";
  if (shard_of) std::cerr << " (shard " << *shard_of << ")";
  std::cerr << "\n";
  server.run(&g_batch_interrupted);
  std::cerr << "dabs-serve: shutting down\n";
  return 0;
}

/// Splits "k=v,k2=v2" --opt payloads into the options map.
void parse_opts(const std::string& spec, dabs::SolverOptions& opts) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("--opt entries must look like key=value");
      }
      opts.set(item.substr(0, eq), item.substr(eq + 1));
    }
    start = end + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dabs;
  // Process-wide: every socket/stdout write path (batch report stream,
  // HTTP server, shard RPC) sees a dead peer as EPIPE, never as a
  // process-killing signal.
  net::ignore_sigpipe();
  const ArgParser args(argc, argv);
  try {
    if (args.get_bool("list-solvers")) {
      list_solvers();
      return 0;
    }
    if (args.get_bool("list-problems")) {
      list_problems();
      return 0;
    }
    // The subcommand shape is exactly `batch <jobs.jsonl>`; a model file
    // literally named "batch" is still reachable as `./batch`.
    if (args.positional().size() == 2 && args.positional()[0] == "batch" &&
        !args.get_bool("help")) {
      return run_batch_command(args);
    }
    if (args.positional().size() == 1 && args.positional()[0] == "batch") {
      std::cerr << "batch needs a job file: " << args.program()
                << " batch <jobs.jsonl> (to solve a model file named "
                   "'batch', use ./batch)\n";
      return 2;
    }
    if (args.positional().size() == 1 && args.positional()[0] == "serve" &&
        !args.get_bool("help")) {
      return run_serve_command(args);
    }
    const bool problem_run = args.has("problem");
    if (args.positional().size() != (problem_run ? 0u : 1u) ||
        args.get_bool("help")) {
      usage(args.program());
      return 2;
    }

    // Instance acquisition: a registered problem (decoded and verified
    // after the solve) or the legacy model-file path (raw energies only —
    // its fixed-seed reports are stable across releases).
    std::unique_ptr<Problem> problem;
    QuboModel model;
    if (problem_run) {
      if (args.has("format")) {
        // Mirrors the batch front end: fold the loader into the spec.
        std::cerr << "--format applies to model files only (use --problem "
                  << args.get("format", "") << ":<path> instead)\n";
        return 2;
      }
      SolverOptions problem_params;
      if (const auto spec = args.get("param")) {
        parse_opts(*spec, problem_params);
      }
      problem = ProblemRegistry::global().create(args.get("problem", ""),
                                                 problem_params);
      model = problem->encode();
    } else {
      if (args.has("param")) {
        std::cerr << "--param requires --problem\n";
        return 2;
      }
      const std::string path = args.positional()[0];
      const std::string format = args.get("format", "qubo");
      if (!service::known_model_format(format)) {
        std::cerr << "unknown format '" << format << "'\n";
        return 2;
      }
      model = service::load_model_file(format, path);
    }

    if (args.get_bool("describe")) {
      if (problem) std::cout << problem->describe() << "\n";
      std::cout << describe_model(analyze_model(model));
      return 0;
    }

    // Solver-specific options: the legacy bulk flags forward when present,
    // --opt covers everything else.  Unknown keys are rejected by the
    // registry with the solver's name in the message.
    const std::string solver_name = args.get("solver", "dabs");
    const bool campaign = args.has("campaign");
    SolverOptions opts;
    for (const char* key : {"devices", "blocks", "s", "b", "pool"}) {
      if (const auto v = args.get(key)) opts.set(key, *v);
    }
    // --threads is the bulk-mode flag; exhaustive's numeric "threads"
    // option (a worker count) is reachable via --opt threads=<n>.
    // Campaigns keep trials synchronous (bit-reproducible statistics,
    // no devices x trials thread oversubscription), as they always have.
    if (args.get_bool("threads") && !campaign &&
        (solver_name == "dabs" || solver_name == "abs")) {
      opts.set("threads", "true");
    }
    if (const auto spec = args.get("opt")) parse_opts(*spec, opts);

    SolveRequest req;
    req.model = &model;
    req.stop.time_limit_seconds = args.get_double("time-limit", 5.0);
    req.stop.max_batches =
        static_cast<std::uint64_t>(args.get_int("max-batches", 0));
    if (args.has("target")) {
      req.stop.target_energy = args.get_int("target", 0);
    }
    if (args.has("seed")) {
      req.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    }
    StderrProgress progress;
    const double progress_interval_ms =
        args.get_double("progress-interval", 0.0);
    if (progress_interval_ms < 0) {
      std::cerr << "--progress-interval must be >= 0\n";
      return 2;
    }
    // An interval without --progress still means "show me progress".
    if (args.get_bool("progress") || progress_interval_ms > 0) {
      req.observer = &progress;
      req.tick_seconds = progress_interval_ms / 1000.0;
    }

    // When a stop condition governs the run, lift the baselines' small
    // default iteration budgets so --time-limit / --target decide when to
    // stop.  An explicit --opt value always wins.  Shared with the batch
    // front end so both surfaces apply one policy.
    service::apply_time_governed_budgets(solver_name, req.stop, opts);

    const bool as_json = args.get_bool("json");
    const auto trials = static_cast<std::size_t>(args.get_int("campaign", 10));
    const auto workers =
        static_cast<std::size_t>(args.get_int("campaign-threads", 2));
    const auto save_path = args.get("save-solution");

    // All options have been queried by now: anything left is a typo.
    for (const std::string& name : args.unused()) {
      std::cerr << "warning: unknown option --" << name << "\n";
    }

    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(solver_name, opts);

    if (campaign) {
      if (!req.stop.target_energy) {
        std::cerr << "--campaign requires --target <energy>\n";
        return 2;
      }
      const Energy target = *req.stop.target_energy;
      SolverConfig base;
      base.seed = req.seed.value_or(base.seed);
      base.stop = req.stop;
      const ParallelCampaign camp(base, trials, workers);
      // `req` rides along as the prototype so --progress (and a future
      // cancellation hook) reach every trial.
      const CampaignResult r = camp.run_solver(model, target, *solver, req);
      if (as_json) {
        io::JsonWriter json(std::cout);
        json.begin_object()
            .value("model", model.describe())
            .value("solver", solver_name)
            .value("target", target)
            .value("trials", std::uint64_t{r.runs})
            .value("successes", std::uint64_t{r.successes})
            .value("success_rate", r.success_rate())
            .value("best_energy", r.best_energy);
        if (r.successes > 0) {
          json.value("tts_mean_seconds", r.tts.mean())
              .value("tts_at_99",
                     tts_at_confidence(r.tts.mean(), r.success_rate()));
        }
        json.end_object();
        std::cout << "\n";
      } else {
        std::cout << "campaign: " << r.successes << "/" << r.runs
                  << " trials reached " << target << "\n";
        if (r.successes > 0) {
          std::cout << "TTS " << r.tts.to_string() << "\n"
                    << "TTS@99% = "
                    << tts_at_confidence(r.tts.mean(), r.success_rate())
                    << "s\n";
        }
        std::cout << "best energy over campaign: " << r.best_energy << "\n";
      }
      return 0;
    }

    SolveReport report = solver->solve(req);

    // Problem runs: decode the best solution into domain terms and verify
    // it against an independent energy re-evaluation; the verdict travels
    // in the report extras ("objective", "feasible", "verified", ...).
    if (problem && report.best_solution.size() == model.size()) {
      const DomainSolution sol = problem->decode(report.best_solution);
      const VerifyResult verdict = problem->verify(
          report.best_solution, model.energy(report.best_solution));
      annotate_extras(*problem, sol, verdict, report.extras);
    }

    if (save_path) {
      io::write_solution_file(*save_path, report.best_solution,
                              report.best_energy);
    }

    if (as_json) {
      io::JsonWriter json(std::cout);
      json.begin_object().value("model", model.describe());
      report.write_json(json, "report");
      json.end_object();
      std::cout << "\n";
    } else {
      std::cout << model.describe() << "\n" << report.to_string();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage(args.program());
    return 2;
  }
}
