// Minor-embedding example (paper §I-A) on the unified problem surface: run
// an arbitrary-topology QUBO on a Chimera-topology "annealer" by clique
// embedding — the mechanism that lets D-Wave machines (and our simulated
// ones) handle dense models.  The registry's "chimera" entry generates a
// random dense logical model (no annealer has its complete topology
// natively) and wraps it in an EmbeddedQuboProblem, which owns the
// embed/unembed pair.
//
//   $ ./embedding_demo [logical-vars] [chimera-m]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/solve_report.hpp"
#include "core/solver_registry.hpp"
#include "problems/problem_registry.hpp"
#include "problems/standard_problems.hpp"

int main(int argc, char** argv) {
  using namespace dabs;
  namespace pr = problems;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const std::size_t m =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : (n + 3) / 4;

  const std::unique_ptr<Problem> problem = ProblemRegistry::global().create(
      "chimera", {{"n", std::to_string(n)}, {"m", std::to_string(m)}});
  const auto& embedded =
      dynamic_cast<const pr::EmbeddedQuboProblem&>(*problem);
  std::cout << "logical model : " << embedded.logical().describe() << "\n"
            << problem->describe() << "\n";

  // Solve the *physical* problem, as an annealer would.
  const QuboModel physical = problem->encode();
  std::cout << "physical model: " << physical.describe() << "\n";

  SolveRequest req;
  req.model = &physical;
  req.stop.max_batches = 1500;
  const SolveReport report =
      SolverRegistry::global()
          .create("dabs", {{"devices", "2"}, {"blocks", "2"}})
          ->solve(req);

  // Decode: majority vote per chain; feasible iff every chain is intact.
  const DomainSolution sol = problem->decode(report.best_solution);
  const auto decoded = sol.extras.find("logical_solution");
  std::cout << "chains intact : "
            << (sol.feasible ? "yes" : "no (majority vote)") << "\n"
            << "decoded vector: "
            << (decoded != sol.extras.end() ? decoded->second : "(large)")
            << "\n"
            << "logical energy: " << sol.objective << "\n";
  const VerifyResult verdict = problem->verify(
      report.best_solution, physical.energy(report.best_solution));
  std::cout << "verified      : " << (verdict.ok ? "ok" : verdict.message)
            << "\n";

  // Ground truth when small enough.
  if (n <= 20) {
    SolveRequest truth_req;
    truth_req.model = &embedded.logical();
    const SolveReport truth =
        SolverRegistry::global().create("exhaustive")->solve(truth_req);
    std::cout << "exact optimum : " << truth.best_energy
              << (truth.best_energy == sol.objective
                      ? "  (embedding solve is optimal)"
                      : "")
              << "\n";
  }
  return 0;
}
