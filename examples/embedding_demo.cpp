// Minor-embedding example (paper §I-A): run an arbitrary-topology QUBO on
// a Chimera-topology "annealer" by clique embedding — the mechanism that
// lets D-Wave machines (and our simulated ones) handle dense models.
//
//   $ ./embedding_demo [logical-vars] [chimera-m]
#include <cstdlib>
#include <iostream>

#include "baseline/exhaustive.hpp"
#include "core/dabs_solver.hpp"
#include "problems/chimera.hpp"
#include "problems/embedding.hpp"
#include "qubo/qubo_builder.hpp"
#include "rng/xorshift.hpp"

int main(int argc, char** argv) {
  namespace pr = dabs::problems;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const std::size_t m =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : (n + 3) / 4;

  // A random dense logical model — no annealer has this topology natively.
  dabs::Rng rng(7);
  dabs::QuboBuilder builder(n);
  for (dabs::VarIndex i = 0; i < n; ++i) {
    builder.add_linear(i, static_cast<dabs::Weight>(rng.next_index(9)) - 4);
    for (dabs::VarIndex j = i + 1; j < n; ++j) {
      builder.add_quadratic(i, j,
                            static_cast<dabs::Weight>(rng.next_index(9)) - 4);
    }
  }
  const dabs::QuboModel logical = builder.build();
  std::cout << "logical model : " << logical.describe() << "\n";

  // Embed into the Chimera annealer topology.
  const pr::ChimeraGraph chimera(m);
  const pr::Embedding emb = pr::chimera_clique_embedding(chimera, n);
  pr::validate_clique_embedding(chimera, emb);
  const dabs::QuboModel physical = pr::embed_qubo(logical, chimera, emb);
  std::cout << "physical model: " << physical.describe() << " on Chimera C"
            << m << " (chains of length " << emb.max_chain_length()
            << ")\n";

  // Solve the *physical* problem, as an annealer would.
  dabs::SolverConfig cfg;
  cfg.devices = 2;
  cfg.device.blocks = 2;
  cfg.mode = dabs::ExecutionMode::kSynchronous;
  cfg.stop.max_batches = 1500;
  const dabs::SolveResult r = dabs::DabsSolver(cfg).solve(physical);

  const bool intact = pr::chains_intact(r.best_solution, emb);
  const dabs::BitVector decoded = pr::unembed(r.best_solution, emb);
  std::cout << "chains intact : " << (intact ? "yes" : "no (majority vote)")
            << "\n"
            << "decoded vector: " << decoded.to_string() << "\n"
            << "logical energy: " << logical.energy(decoded) << "\n";

  // Ground truth when small enough.
  if (n <= 20) {
    const auto truth = dabs::ExhaustiveSolver().solve(logical);
    std::cout << "exact optimum : " << truth.best_energy
              << (truth.best_energy == logical.energy(decoded)
                      ? "  (embedding solve is optimal)"
                      : "")
              << "\n";
  }
  return 0;
}
