// Quantum annealer simulation example (paper §II-C, §VI-C): generate a
// random Ising model on the Pegasus topology at a chosen resolution,
// convert it to QUBO, and search for the ground state with DABS — the
// benchmark the paper uses to "simulate" a D-Wave Advantage.
//
//   $ ./annealer_simulation [resolution] [pegasus_m]
//
// Defaults: resolution 16 on P4 (288 qubits).  P16 (5760 qubits) matches
// the real Advantage scale: ./annealer_simulation 16 16
#include <cstdlib>
#include <iostream>

#include "core/dabs_solver.hpp"
#include "problems/qasp.hpp"
#include "qubo/conversion.hpp"

int main(int argc, char** argv) {
  namespace pr = dabs::problems;

  pr::QaspParams params;
  params.resolution = argc > 1 ? std::atoi(argv[1]) : 16;
  params.pegasus_m =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  {
    // Use ~97.7% of the ideal qubits, mirroring the Advantage 4.1 working
    // graph fraction (5627/5760).
    const pr::PegasusGraph ideal(params.pegasus_m);
    params.working_nodes = ideal.node_count() * 977 / 1000;
  }

  const pr::QaspInstance inst = pr::make_qasp(params);
  std::cout << "QASP r=" << inst.resolution << " on Pegasus P"
            << params.pegasus_m << ": " << inst.nodes << " working qubits, "
            << inst.edge_count << " couplers\n"
            << "QUBO: " << inst.qubo.describe() << "\n";

  dabs::SolverConfig config;
  config.devices = 2;
  config.device.blocks = 2;
  config.device.batch.search_flip_factor = 0.1;  // paper QASP parameters
  config.device.batch.batch_flip_factor = 1.0;
  config.mode = dabs::ExecutionMode::kThreaded;
  config.stop.time_limit_seconds = 5.0;

  const dabs::SolveResult r = dabs::DabsSolver(config).solve(inst.qubo);

  // Report in Ising terms, the way an annealer would.
  const dabs::Energy hamiltonian =
      inst.ising.hamiltonian(dabs::to_spins(r.best_solution));
  std::cout << "best QUBO energy  E(X) = " << r.best_energy << "\n"
            << "best Hamiltonian  H(S) = " << hamiltonian << "  (offset "
            << inst.offset << ")\n"
            << "batches executed: " << r.batches << "\n";
  return hamiltonian == r.best_energy + inst.offset ? 0 : 1;
}
