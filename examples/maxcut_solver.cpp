// MaxCut example (paper §VI-A): solve a Gset-style graph with DABS and
// compare against the simulated-annealing baseline.
//
//   $ ./maxcut_solver [gset-file]
//
// Without an argument a G22-like 2000-node instance is generated; with one,
// a real Gset file (e.g. G22 downloaded from Ye's collection) is loaded.
#include <iostream>

#include "baseline/simulated_annealing.hpp"
#include "core/dabs_solver.hpp"
#include "io/gset.hpp"
#include "problems/maxcut.hpp"

int main(int argc, char** argv) {
  namespace pr = dabs::problems;

  // 1. Obtain the instance.
  pr::MaxCutInstance inst;
  if (argc > 1) {
    inst = dabs::io::read_gset_file(argv[1]);
  } else {
    // Reduced-size stand-in so the example finishes in seconds on a laptop.
    inst = pr::make_random_maxcut(400, 4000, pr::EdgeWeights::kPlusOne, 22,
                                  "G22-mini");
  }
  std::cout << "instance " << inst.name << ": " << inst.n << " nodes, "
            << inst.edges.size() << " edges\n";

  // 2. Reduce to QUBO: E(X) = -cut(X).
  const dabs::QuboModel model = pr::maxcut_to_qubo(inst);

  // 3. DABS with the paper's MaxCut parameters (s = 0.1, b = 10).
  dabs::SolverConfig config;
  config.devices = 2;
  config.device.blocks = 2;
  config.device.batch.search_flip_factor = 0.1;
  config.device.batch.batch_flip_factor = 10.0;
  config.mode = dabs::ExecutionMode::kThreaded;
  config.stop.time_limit_seconds = 5.0;
  const dabs::SolveResult dabs_result = dabs::DabsSolver(config).solve(model);
  std::cout << "DABS: cut " << -dabs_result.best_energy << " in "
            << dabs_result.batches << " batches / "
            << dabs_result.elapsed_seconds << "s\n";

  // 4. SA baseline under the same wall-clock budget.
  dabs::SaParams sa;
  sa.sweeps = 1000;
  sa.restarts = 1000000;
  sa.time_limit_seconds = 5.0;
  const dabs::BaselineResult sa_result =
      dabs::SimulatedAnnealing(sa).solve(model);
  std::cout << "SA  : cut " << -sa_result.best_energy << " in "
            << sa_result.elapsed_seconds << "s\n";

  // 5. Verify the reported cut with the instance itself.
  const dabs::Energy check = inst.cut_value(dabs_result.best_solution);
  std::cout << "verified cut value: " << check
            << (check == -dabs_result.best_energy ? " (consistent)"
                                                  : " (MISMATCH!)")
            << "\n";
  return check == -dabs_result.best_energy ? 0 : 1;
}
