// MaxCut example (paper §VI-A) on the unified problem + solver surface:
// obtain an instance from the problem registry, solve with DABS and the
// simulated-annealing baseline, then decode and verify the cut.
//
//   $ ./maxcut_solver [gset-file]
//
// Without an argument a G22-like (reduced-size) instance is generated;
// with one, a real Gset file (e.g. G22 from Ye's collection) is loaded via
// the "gset:<path>" problem spec.
#include <iostream>
#include <memory>

#include "core/solve_report.hpp"
#include "core/solver_registry.hpp"
#include "problems/problem_registry.hpp"

int main(int argc, char** argv) {
  using namespace dabs;

  // 1. Obtain the instance: one spec string covers files and generators.
  const std::string spec =
      argc > 1 ? "gset:" + std::string(argv[1])
               // Reduced-size G22 stand-in so the example finishes in
               // seconds on a laptop.
               : "maxcut";
  SolverOptions params;
  if (argc <= 1) {
    params = {{"n", "400"}, {"m", "4000"}, {"weights", "p1"}, {"seed", "22"}};
  }
  const std::unique_ptr<Problem> problem =
      ProblemRegistry::global().create(spec, params);
  std::cout << problem->describe() << "\n";

  // 2. Encode: E(X) = -cut(X).
  const QuboModel model = problem->encode();

  // 3. DABS with the paper's MaxCut parameters (s = 0.1, b = 10), then the
  // SA baseline under the same wall-clock budget — both via the registry.
  SolveRequest req;
  req.model = &model;
  req.stop.time_limit_seconds = 5.0;
  const SolveReport dabs_report =
      SolverRegistry::global()
          .create("dabs", {{"devices", "2"},
                           {"blocks", "2"},
                           {"s", "0.1"},
                           {"b", "10"},
                           {"threads", "true"}})
          ->solve(req);
  const DomainSolution dabs_cut = problem->decode(dabs_report.best_solution);
  std::cout << "DABS: cut " << dabs_cut.objective << " in "
            << dabs_report.batches << " batches / "
            << dabs_report.elapsed_seconds << "s\n";

  const SolveReport sa_report =
      SolverRegistry::global()
          .create("sa", {{"sweeps", "1000"}, {"restarts", "1000000"}})
          ->solve(req);
  std::cout << "SA  : cut " << problem->decode(sa_report.best_solution).objective
            << " in " << sa_report.elapsed_seconds << "s\n";

  // 4. Verify the reduction identity E(X) = -cut(X) on the DABS solution.
  const VerifyResult verdict = problem->verify(
      dabs_report.best_solution, model.energy(dabs_report.best_solution));
  std::cout << "verified: " << (verdict.ok ? "ok" : verdict.message) << "\n";
  return verdict.ok ? 0 : 1;
}
