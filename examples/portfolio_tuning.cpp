// Portfolio-tuning example: the library exposes the diversity knobs the
// paper studies — restrict the algorithm portfolio and the genetic
// operation set and watch the adaptive statistics change.
//
//   $ ./portfolio_tuning
//
// Runs the same instance (a hard little QAP) under three configurations and
// prints which algorithms/operations the solver actually exercised —
// a miniature of the paper's Tables V and VI.
#include <iostream>

#include "baseline/abs_solver.hpp"
#include "core/dabs_solver.hpp"
#include "problems/qap.hpp"

namespace {

void report(const std::string& label, const dabs::SolveResult& r) {
  std::cout << "\n--- " << label << " ---\n"
            << "best energy " << r.best_energy << " in " << r.batches
            << " batches, " << r.restarts << " pool restarts\n";
  std::cout << "algorithm usage:";
  for (const dabs::MainSearch s : dabs::kAllMainSearches) {
    std::cout << "  " << dabs::to_string(s) << " "
              << int(r.stats.algo_fraction(s) * 100 + 0.5) << "%";
  }
  std::cout << "\noperation usage :";
  for (std::size_t i = 0; i < dabs::kGeneticOpCount; ++i) {
    const auto op = static_cast<dabs::GeneticOp>(i);
    const double f = r.stats.op_fraction(op);
    if (f > 0) {
      std::cout << "  " << dabs::to_string(op) << " "
                << int(f * 100 + 0.5) << "%";
    }
  }
  dabs::MainSearch fa{};
  dabs::GeneticOp fo{};
  if (r.stats.first_finder(fa, fo)) {
    std::cout << "\nbest solution first found by " << dabs::to_string(fa)
              << " + " << dabs::to_string(fo) << "\n";
  } else {
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  namespace pr = dabs::problems;
  const auto inst = pr::make_grid_qap(3, 3, 10, 5, "nug9-like");
  const pr::QapQubo q = pr::qap_to_qubo(inst);
  std::cout << "instance " << inst.name << " -> " << q.model.describe()
            << "\n";

  dabs::SolverConfig base;
  base.devices = 2;
  base.device.blocks = 2;
  base.mode = dabs::ExecutionMode::kSynchronous;
  base.stop.max_batches = 800;
  base.seed = 11;

  // 1. Full DABS diversity.
  report("full DABS (5 algorithms, 8 operations)",
         dabs::DabsSolver(base).solve(q.model));

  // 2. A hand-picked two-algorithm portfolio.
  {
    dabs::SolverConfig c = base;
    c.algorithms = {dabs::MainSearch::kPositiveMin,
                    dabs::MainSearch::kRandomMin};
    c.operations = {dabs::GeneticOp::kCrossover, dabs::GeneticOp::kZero,
                    dabs::GeneticOp::kBest};
    report("custom portfolio (PositiveMin+RandomMin, 3 ops)",
           dabs::DabsSolver(c).solve(q.model));
  }

  // 3. The ABS baseline (single algorithm, single operation).
  report("ABS baseline (CyclicMin + MutateCrossover)",
         dabs::AbsSolver(base).solve(q.model));
  return 0;
}
