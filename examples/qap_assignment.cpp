// QAP example (paper §II-B, §VI-B): reduce a facility-location problem to
// QUBO by one-hot encoding, solve with DABS, decode and print the layout.
//
//   $ ./qap_assignment [qaplib-file]
//
// Without an argument a Nugent-style 3x4 grid instance is generated (the
// family of nug30); with one, a real QAPLIB .dat file is loaded.
#include <iostream>

#include "core/dabs_solver.hpp"
#include "io/qaplib.hpp"
#include "problems/qap.hpp"

int main(int argc, char** argv) {
  namespace pr = dabs::problems;

  pr::QapInstance inst;
  if (argc > 1) {
    inst = dabs::io::read_qaplib_file(argv[1]);
  } else {
    inst = pr::make_grid_qap(3, 4, 10, 30, "nug12-like");
  }
  std::cout << "instance " << inst.name << ": n = " << inst.n << "\n";

  // Reduce with an automatic penalty; E(X) = C(g) - n*p on feasible X.
  const pr::QapQubo q = pr::qap_to_qubo(inst);
  std::cout << "QUBO: " << q.model.describe() << ", penalty " << q.penalty
            << "\n";

  dabs::SolverConfig config;
  config.devices = 2;
  config.device.blocks = 2;
  config.device.batch.search_flip_factor = 0.1;  // paper QAP parameters
  config.device.batch.batch_flip_factor = 1.0;
  config.mode = dabs::ExecutionMode::kSynchronous;
  config.stop.max_batches = 3000;
  config.seed = 7;

  const dabs::SolveResult r = dabs::DabsSolver(config).solve(q.model);
  std::cout << "best energy " << r.best_energy << " after " << r.batches
            << " batches\n";

  const auto g = pr::decode_assignment(r.best_solution, inst.n);
  if (!g) {
    std::cout << "best solution is not one-hot feasible — increase the "
                 "penalty or the batch budget\n";
    return 1;
  }
  std::cout << "assignment cost C(g) = " << inst.cost(*g)
            << "  (energy + n*penalty = "
            << r.best_energy + dabs::Energy{q.penalty} * dabs::Energy(inst.n)
            << ")\n";
  for (std::size_t i = 0; i < g->size(); ++i) {
    std::cout << "  facility " << i << " -> location " << (*g)[i] << "\n";
  }
  return 0;
}
