// QAP example (paper §II-B, §VI-B) on the unified problem + solver
// surface: one-hot encode a facility-location instance, solve with DABS,
// decode the layout, and verify feasibility + the E(X) = C(g) - n p
// identity.
//
//   $ ./qap_assignment [qaplib-file]
//
// Without an argument a Nugent-style 3x4 grid instance is generated (the
// family of nug30); with one, a real QAPLIB .dat file is loaded via the
// "qaplib:<path>" problem spec.
#include <iostream>
#include <memory>

#include "core/solve_report.hpp"
#include "core/solver_registry.hpp"
#include "problems/problem_registry.hpp"

int main(int argc, char** argv) {
  using namespace dabs;

  const std::string spec =
      argc > 1 ? "qaplib:" + std::string(argv[1]) : "qap";
  SolverOptions params;
  if (argc <= 1) {
    params = {{"kind", "grid"}, {"rows", "3"}, {"cols", "4"},
              {"max", "10"},    {"seed", "30"}};
  }
  const std::unique_ptr<Problem> problem =
      ProblemRegistry::global().create(spec, params);
  std::cout << problem->describe() << "\n";

  const QuboModel model = problem->encode();
  std::cout << "QUBO: " << model.describe() << "\n";

  // DABS with the paper's QAP parameters (s = 0.1, b = 1.0).
  SolveRequest req;
  req.model = &model;
  req.stop.max_batches = 3000;
  req.seed = 7;
  const SolveReport report =
      SolverRegistry::global()
          .create("dabs",
                  {{"devices", "2"}, {"blocks", "2"}, {"s", "0.1"},
                   {"b", "1.0"}})
          ->solve(req);
  std::cout << "best energy " << report.best_energy << " after "
            << report.batches << " batches\n";

  const DomainSolution sol = problem->decode(report.best_solution);
  if (!sol.feasible) {
    std::cout << "best solution is not one-hot feasible — increase the "
                 "penalty or the batch budget\n";
    return 1;
  }
  std::cout << "assignment cost C(g) = " << sol.objective << "\n";
  for (std::size_t i = 0; i < sol.assignment.size(); ++i) {
    std::cout << "  facility " << i << " -> location " << sol.assignment[i]
              << "\n";
  }

  const VerifyResult verdict = problem->verify(
      report.best_solution, model.energy(report.best_solution));
  std::cout << "verified: " << (verdict.ok ? "ok" : verdict.message) << "\n";
  return verdict.ok ? 0 : 1;
}
