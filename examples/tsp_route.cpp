// TSP example (paper §II-B): Traveling Salesperson -> circular-flow QAP ->
// one-hot QUBO -> DABS, decoded back into a tour and checked against brute
// force.
//
//   $ ./tsp_route [n-cities]
#include <cstdlib>
#include <iostream>

#include "core/dabs_solver.hpp"
#include "problems/qap.hpp"
#include "problems/tsp.hpp"

int main(int argc, char** argv) {
  namespace pr = dabs::problems;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 7;

  const pr::TspInstance tsp = pr::make_euclidean_tsp(n, 100, 99, "demo");
  std::cout << "TSP with " << n << " cities\n";

  // Chain of reductions from the paper: TSP -> QAP -> QUBO.
  const pr::QapInstance qap = pr::tsp_to_qap(tsp);
  const pr::QapQubo qubo = pr::qap_to_qubo(qap);
  std::cout << "QAP -> " << qubo.model.describe() << " (penalty "
            << qubo.penalty << ")\n";

  dabs::SolverConfig cfg;
  cfg.devices = 2;
  cfg.device.blocks = 2;
  cfg.mode = dabs::ExecutionMode::kSynchronous;
  cfg.stop.max_batches = 4000;
  cfg.seed = 3;
  if (n <= 9) {
    // With brute force available, stop as soon as the optimum is reached.
    const dabs::Energy opt = pr::tsp_brute_force(tsp);
    cfg.stop.target_energy = qubo.feasible_energy(opt);
    std::cout << "optimal tour length (brute force): " << opt << "\n";
  }

  const dabs::SolveResult r = dabs::DabsSolver(cfg).solve(qubo.model);
  const auto g = pr::decode_assignment(r.best_solution, n);
  if (!g) {
    std::cout << "no feasible tour found within the budget\n";
    return 1;
  }
  // g maps tour position -> city.
  std::cout << "tour:";
  for (const auto city : *g) std::cout << ' ' << city;
  std::cout << "\ntour length: " << tsp.tour_length(*g) << "\n";
  return 0;
}
