// TSP example (paper §II-B) on the unified problem surface: Traveling
// Salesperson -> circular-flow QAP -> one-hot QUBO -> DABS, decoded back
// into a tour, verified, and checked against brute force.  Demonstrates
// constructing a Problem adapter directly (the registry's "tsp" entry
// wraps the same class).
//
//   $ ./tsp_route [n-cities]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/solve_report.hpp"
#include "core/solver_registry.hpp"
#include "problems/standard_problems.hpp"

int main(int argc, char** argv) {
  using namespace dabs;
  namespace pr = problems;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 7;

  // Chain of reductions from the paper, behind one adapter: the decoded
  // QAP assignment *is* the tour (position -> city).
  const pr::TspProblem problem(pr::make_euclidean_tsp(n, 100, 99, "demo"));
  std::cout << problem.describe() << "\n";

  const QuboModel model = problem.encode();
  std::cout << "QAP -> " << model.describe() << " (penalty "
            << problem.penalty() << ")\n";

  SolveRequest req;
  req.model = &model;
  req.stop.max_batches = 4000;
  req.seed = 3;
  if (n <= 9) {
    // With brute force available, stop as soon as the optimum is reached:
    // a tour of length L is a feasible vector at E = L - n * penalty.
    const Energy opt = pr::tsp_brute_force(problem.tsp());
    req.stop.target_energy =
        opt - Energy{problem.penalty()} * Energy(n);
    std::cout << "optimal tour length (brute force): " << opt << "\n";
  }

  const SolveReport report =
      SolverRegistry::global()
          .create("dabs", {{"devices", "2"}, {"blocks", "2"}})
          ->solve(req);

  const DomainSolution sol = problem.decode(report.best_solution);
  if (!sol.feasible) {
    std::cout << "no feasible tour found within the budget\n";
    return 1;
  }
  std::cout << "tour:";
  for (const auto city : sol.assignment) std::cout << ' ' << city;
  std::cout << "\ntour length: " << sol.objective << "\n";

  const VerifyResult verdict = problem.verify(
      report.best_solution, model.energy(report.best_solution));
  std::cout << "verified: " << (verdict.ok ? "ok" : verdict.message) << "\n";
  return verdict.ok ? 0 : 1;
}
