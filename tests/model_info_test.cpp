// Tests for model analysis and the parallel campaign runner.
#include <gtest/gtest.h>

#include "baseline/exhaustive.hpp"
#include "core/parallel_campaign.hpp"
#include "qubo/model_info.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;

TEST(ModelInfo, BasicStatisticsOnHandBuiltModel) {
  QuboBuilder b(5);
  b.add_quadratic(0, 1, 3).add_quadratic(1, 2, -2).add_linear(0, -7);
  // Variables 3, 4 are isolated (no couplings, zero diagonal).
  const QuboModel m = b.build();
  const ModelInfo info = analyze_model(m);
  EXPECT_EQ(info.variables, 5u);
  EXPECT_EQ(info.couplings, 2u);
  EXPECT_EQ(info.min_degree, 0u);
  EXPECT_EQ(info.max_degree, 2u);
  EXPECT_EQ(info.isolated_variables, 2u);
  EXPECT_EQ(info.min_weight, -7);
  EXPECT_EQ(info.max_weight, 3);
  EXPECT_EQ(info.energy_scale, 7 + 3 + 2);
  // Components: {0,1,2}, {3}, {4}.
  EXPECT_EQ(info.components, 3u);
}

TEST(ModelInfo, DensityOfCompleteGraphIsOne) {
  const QuboModel m = random_model(12, 1.0, 1, 77);  // weights ±1, no zeros?
  const ModelInfo info = analyze_model(m);
  // Some couplings may have drawn weight 0 and been dropped; density <= 1.
  EXPECT_LE(info.density, 1.0);
  EXPECT_GT(info.density, 0.5);
  EXPECT_EQ(info.components, 1u);
}

TEST(ModelInfo, DescribeMentionsEveryBlock) {
  const QuboModel m = random_model(10, 0.5, 5, 78);
  const std::string s = describe_model(analyze_model(m));
  EXPECT_NE(s.find("variables"), std::string::npos);
  EXPECT_NE(s.find("couplings"), std::string::npos);
  EXPECT_NE(s.find("degree"), std::string::npos);
  EXPECT_NE(s.find("structure"), std::string::npos);
}

TEST(ModelInfo, SingleVariableModel) {
  QuboBuilder b(1);
  b.add_linear(0, 5);
  const ModelInfo info = analyze_model(b.build());
  EXPECT_EQ(info.variables, 1u);
  EXPECT_EQ(info.couplings, 0u);
  EXPECT_EQ(info.components, 1u);
  EXPECT_EQ(info.isolated_variables, 0u);  // non-zero diagonal counts
}

TEST(ParallelCampaign, AggregatesMatchTrialCount) {
  const QuboModel m = random_model(14, 0.6, 9, 79);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  SolverConfig base;
  base.devices = 2;
  base.device.blocks = 1;
  base.stop.max_batches = 250;
  base.seed = 3;
  const ParallelCampaign camp(base, 8, 4);
  const CampaignResult r = camp.run(m, truth);
  EXPECT_EQ(r.runs, 8u);
  EXPECT_EQ(r.final_energies.size(), 8u);
  EXPECT_EQ(r.best_energy, truth);
  EXPECT_GT(r.successes, 0u);
}

TEST(ParallelCampaign, MatchesSerialCampaignStatistics) {
  // Same seeds + synchronous trials => identical per-trial outcomes, just
  // computed concurrently.
  const QuboModel m = random_model(16, 0.5, 9, 80);
  SolverConfig base;
  base.devices = 2;
  base.device.blocks = 1;
  base.mode = ExecutionMode::kSynchronous;
  base.stop.max_batches = 100;
  base.seed = 11;
  const Energy target = -1;  // something most trials reach

  const CampaignResult serial = Campaign(base, 6).run(m, target);
  const CampaignResult parallel = ParallelCampaign(base, 6, 3).run(m, target);
  // Energies are per-trial deterministic; order is preserved by index.
  EXPECT_EQ(serial.final_energies, parallel.final_energies);
  EXPECT_EQ(serial.successes, parallel.successes);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
}

TEST(ParallelCampaign, SingleThreadDegradesGracefully) {
  const QuboModel m = random_model(10, 0.5, 5, 81);
  SolverConfig base;
  base.devices = 1;
  base.device.blocks = 1;
  base.stop.max_batches = 20;
  const ParallelCampaign camp(base, 2, 0);  // 0 threads -> 1
  const CampaignResult r = camp.run(m, -1);
  EXPECT_EQ(r.runs, 2u);
}

}  // namespace
}  // namespace dabs
