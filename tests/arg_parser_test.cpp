// Unit tests for the command-line argument parser.
#include <gtest/gtest.h>

#include "util/arg_parser.hpp"

namespace dabs {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, ProgramNameAndPositionals) {
  const auto a = parse({"prog", "file1", "file2"});
  EXPECT_EQ(a.program(), "prog");
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, SpaceSeparatedValues) {
  const auto a = parse({"prog", "--name", "value", "pos"});
  EXPECT_EQ(a.get("name", ""), "value");
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"pos"}));
}

TEST(ArgParser, EqualsSeparatedValues) {
  const auto a = parse({"prog", "--limit=3.5", "--label=x=y"});
  EXPECT_DOUBLE_EQ(a.get_double("limit", 0), 3.5);
  EXPECT_EQ(a.get("label", ""), "x=y");  // only the first '=' splits
}

TEST(ArgParser, BooleanFlags) {
  const auto a = parse({"prog", "--verbose", "--json"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_TRUE(a.get_bool("json"));
  EXPECT_FALSE(a.get_bool("absent"));
  EXPECT_TRUE(a.get_bool("absent", true));
}

TEST(ArgParser, FlagFollowedByOption) {
  const auto a = parse({"prog", "--flag", "--name", "v"});
  EXPECT_TRUE(a.get_bool("flag"));
  EXPECT_EQ(a.get("name", ""), "v");
}

TEST(ArgParser, IntParsingAndValidation) {
  const auto a = parse({"prog", "--n", "42", "--bad", "4x2"});
  EXPECT_EQ(a.get_int("n", 0), 42);
  EXPECT_EQ(a.get_int("absent", -7), -7);
  EXPECT_THROW((void)a.get_int("bad", 0), std::invalid_argument);
}

TEST(ArgParser, DoubleParsingAndValidation) {
  const auto a = parse({"prog", "--x", "2.5e-1", "--bad", "zz"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 0), 0.25);
  EXPECT_THROW((void)a.get_double("bad", 0), std::invalid_argument);
}

TEST(ArgParser, BoolValueForms) {
  const auto a = parse({"prog", "--a", "yes", "--b", "0", "--c", "maybe"});
  EXPECT_TRUE(a.get_bool("a"));
  EXPECT_FALSE(a.get_bool("b", true));
  EXPECT_THROW((void)a.get_bool("c"), std::invalid_argument);
}

TEST(ArgParser, UnusedDetectsTypos) {
  const auto a = parse({"prog", "--good", "1", "--typo", "2"});
  (void)a.get_int("good", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParser, HasMarksQueried) {
  const auto a = parse({"prog", "--opt", "1"});
  EXPECT_TRUE(a.has("opt"));
  EXPECT_TRUE(a.unused().empty());
}

// --- error paths ---------------------------------------------------------

TEST(ArgParserErrors, UnknownFlagsReportedSorted) {
  const auto a = parse({"prog", "--zeta", "1", "--alpha", "2", "--n", "3"});
  (void)a.get_int("n", 0);
  // std::map keeps options_ ordered, so unused() is sorted by name.
  EXPECT_EQ(a.unused(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(ArgParserErrors, MissingValueAtEndBecomesFlag) {
  // "--n" with no following token parses as a boolean flag; typed access
  // then rejects the implicit "true" with a readable error.
  const auto a = parse({"prog", "--n"});
  EXPECT_TRUE(a.get_bool("n"));
  EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("n", 0), std::invalid_argument);
}

TEST(ArgParserErrors, MissingValueBeforeAnotherOption) {
  const auto a = parse({"prog", "--n", "--m", "3"});
  EXPECT_TRUE(a.get_bool("n"));
  EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
  EXPECT_EQ(a.get_int("m", 0), 3);
}

TEST(ArgParserErrors, EmptyEqualsValueRejectedByTypedAccessors) {
  const auto a = parse({"prog", "--n="});
  EXPECT_EQ(a.get("n", "fallback"), "");
  EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("n", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_bool("n"), std::invalid_argument);
}

TEST(ArgParserErrors, DuplicateFlagLastOneWins) {
  const auto a = parse({"prog", "--n", "1", "--n=2", "--n", "3"});
  EXPECT_EQ(a.get_int("n", 0), 3);
  EXPECT_TRUE(a.unused().empty());
}

TEST(ArgParserErrors, DuplicateMixedFlagAndValue) {
  // A later bare flag overwrites an earlier value form.
  const auto a = parse({"prog", "--n", "7", "--n"});
  EXPECT_TRUE(a.get_bool("n"));
  EXPECT_THROW((void)a.get_int("n", 0), std::invalid_argument);
}

TEST(ArgParserErrors, NegativeNumberIsAValueNotAFlag) {
  const auto a = parse({"prog", "--n", "-5"});
  EXPECT_EQ(a.get_int("n", 0), -5);
  EXPECT_TRUE(a.positional().empty());
}

TEST(ArgParserErrors, ErrorMessageNamesTheOption) {
  const auto a = parse({"prog", "--count", "abc"});
  try {
    (void)a.get_int("count", 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--count"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
  }
}

}  // namespace
}  // namespace dabs
