// Unit tests for the command-line argument parser.
#include <gtest/gtest.h>

#include "util/arg_parser.hpp"

namespace dabs {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, ProgramNameAndPositionals) {
  const auto a = parse({"prog", "file1", "file2"});
  EXPECT_EQ(a.program(), "prog");
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, SpaceSeparatedValues) {
  const auto a = parse({"prog", "--name", "value", "pos"});
  EXPECT_EQ(a.get("name", ""), "value");
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"pos"}));
}

TEST(ArgParser, EqualsSeparatedValues) {
  const auto a = parse({"prog", "--limit=3.5", "--label=x=y"});
  EXPECT_DOUBLE_EQ(a.get_double("limit", 0), 3.5);
  EXPECT_EQ(a.get("label", ""), "x=y");  // only the first '=' splits
}

TEST(ArgParser, BooleanFlags) {
  const auto a = parse({"prog", "--verbose", "--json"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_TRUE(a.get_bool("json"));
  EXPECT_FALSE(a.get_bool("absent"));
  EXPECT_TRUE(a.get_bool("absent", true));
}

TEST(ArgParser, FlagFollowedByOption) {
  const auto a = parse({"prog", "--flag", "--name", "v"});
  EXPECT_TRUE(a.get_bool("flag"));
  EXPECT_EQ(a.get("name", ""), "v");
}

TEST(ArgParser, IntParsingAndValidation) {
  const auto a = parse({"prog", "--n", "42", "--bad", "4x2"});
  EXPECT_EQ(a.get_int("n", 0), 42);
  EXPECT_EQ(a.get_int("absent", -7), -7);
  EXPECT_THROW((void)a.get_int("bad", 0), std::invalid_argument);
}

TEST(ArgParser, DoubleParsingAndValidation) {
  const auto a = parse({"prog", "--x", "2.5e-1", "--bad", "zz"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 0), 0.25);
  EXPECT_THROW((void)a.get_double("bad", 0), std::invalid_argument);
}

TEST(ArgParser, BoolValueForms) {
  const auto a = parse({"prog", "--a", "yes", "--b", "0", "--c", "maybe"});
  EXPECT_TRUE(a.get_bool("a"));
  EXPECT_FALSE(a.get_bool("b", true));
  EXPECT_THROW((void)a.get_bool("c"), std::invalid_argument);
}

TEST(ArgParser, UnusedDetectsTypos) {
  const auto a = parse({"prog", "--good", "1", "--typo", "2"});
  (void)a.get_int("good", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParser, HasMarksQueried) {
  const auto a = parse({"prog", "--opt", "1"});
  EXPECT_TRUE(a.has("opt"));
  EXPECT_TRUE(a.unused().empty());
}

}  // namespace
}  // namespace dabs
