// Tests for the obs layer beyond metrics: trace collection (Chrome
// trace-event JSON), the job-lifecycle mapping, the structured logger
// (levels, JSON mode, rate limiting), and build info — plus an integration
// pass pulling real timestamps out of a SolverService run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "io/json_reader.hpp"
#include "obs/build_info.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "service/solver_service.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

/// Parses the collector's output and returns the traceEvents array.
io::JsonValue parse_trace(const obs::TraceCollector& collector) {
  std::ostringstream out;
  collector.write_chrome_json(out);
  return io::parse_json(out.str());
}

const io::JsonValue& events_of(const io::JsonValue& root) {
  const io::JsonValue* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  return *events;
}

TEST(TraceCollector, EmptyCollectorIsValidJson) {
  obs::TraceCollector collector;
  EXPECT_TRUE(collector.empty());
  const io::JsonValue root = parse_trace(collector);
  EXPECT_EQ(events_of(root).as_array().size(), 0u);
}

TEST(TraceCollector, SpanBecomesCompleteEventInMicros) {
  obs::TraceCollector collector;
  obs::TraceSpan span;
  span.name = "run:sa";
  span.category = "job";
  span.pid = 1;
  span.tid = 42;
  span.start_seconds = 1.5;
  span.duration_seconds = 0.25;
  span.args = {{"state", "done"}};
  collector.add_span(span);

  const io::JsonValue root = parse_trace(collector);
  const auto& events = events_of(root).as_array();
  ASSERT_EQ(events.size(), 1u);
  const io::JsonValue& e = events[0];
  EXPECT_EQ(e.find("ph")->as_string(), "X");
  EXPECT_EQ(e.find("name")->as_string(), "run:sa");
  EXPECT_EQ(e.find("tid")->as_int(), 42);
  EXPECT_EQ(e.find("ts")->as_int(), 1500000);   // µs
  EXPECT_EQ(e.find("dur")->as_int(), 250000);   // µs
  const io::JsonValue* args = e.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("state")->as_string(), "done");
}

TEST(TraceCollector, InstantBecomesThreadScopedMark) {
  obs::TraceCollector collector;
  obs::TraceInstant instant;
  instant.name = "new_best";
  instant.tid = 7;
  instant.at_seconds = 0.001;
  collector.add_instant(instant);

  const io::JsonValue root = parse_trace(collector);
  const auto& events = events_of(root).as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("ph")->as_string(), "i");
  EXPECT_EQ(events[0].find("s")->as_string(), "t");
  EXPECT_EQ(events[0].find("ts")->as_int(), 1000);
}

TEST(JobTraceMapping, FullLifecycleYieldsQueuedRunAndTicks) {
  obs::JobTrace job;
  job.job_id = 9;
  job.solver = "tabu";
  job.state = "done";
  job.submitted_seconds = 1.0;
  job.started_seconds = 1.5;
  job.finished_seconds = 3.0;
  job.ticks.push_back({"new_best", 0.2, -100.0, 500});
  job.ticks.push_back({"tick", 0.9, -120.0, 2000});

  obs::TraceCollector collector;
  obs::append_job_trace(collector, job);
  const io::JsonValue root = parse_trace(collector);
  const auto& events = events_of(root).as_array();
  // queued span + run span + 2 instants.
  ASSERT_EQ(events.size(), 4u);
  std::size_t spans = 0;
  std::size_t instants = 0;
  for (const io::JsonValue& e : events) {
    EXPECT_EQ(e.find("tid")->as_int(), 9);  // one row per job
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") ++spans;
    if (ph == "i") ++instants;
    if (e.find("name")->as_string() == "queued") {
      EXPECT_EQ(e.find("ts")->as_int(), 1000000);
      EXPECT_EQ(e.find("dur")->as_int(), 500000);
    }
    if (e.find("name")->as_string() == "run:tabu") {
      EXPECT_EQ(e.find("ts")->as_int(), 1500000);
      EXPECT_EQ(e.find("dur")->as_int(), 1500000);
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 2u);
}

TEST(JobTraceMapping, NeverStartedJobGetsOnlyAQueuedSpan) {
  obs::JobTrace job;
  job.job_id = 2;
  job.state = "cancelled";
  job.submitted_seconds = 0.5;
  job.finished_seconds = 0.8;  // cancelled while queued

  obs::TraceCollector collector;
  obs::append_job_trace(collector, job);
  const io::JsonValue root = parse_trace(collector);
  const auto& events = events_of(root).as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("name")->as_string(), "queued");
}

TEST(JobTraceMapping, LiveJobIsSkipped) {
  obs::JobTrace job;
  job.submitted_seconds = 1.0;  // no terminal time yet
  obs::TraceCollector collector;
  obs::append_job_trace(collector, job);
  EXPECT_TRUE(collector.empty());
}

// Integration: real timestamps out of a service run map to ordered spans.
TEST(JobTraceMapping, ServiceRunProducesOrderedTimestamps) {
  service::SolverService svc;
  service::JobSpec spec;
  spec.model = std::make_shared<const QuboModel>(
      testing::random_model(32, 0.3, 9, 11));
  spec.solver = "sa";
  spec.stop.max_batches = 500;
  spec.seed = 3;
  const service::JobId id = svc.submit(std::move(spec));
  const service::JobSnapshot snap = svc.wait(id);
  ASSERT_EQ(snap.state, service::JobState::kDone);
  ASSERT_GE(snap.submitted_seconds, 0.0);
  ASSERT_GE(snap.started_seconds, snap.submitted_seconds);
  ASSERT_GE(snap.finished_seconds, snap.started_seconds);
  // Durations surface in the report extras for /v1/jobs/{id}.
  ASSERT_NE(snap.report.extras.find("total_seconds"),
            snap.report.extras.end());
  ASSERT_NE(snap.report.extras.find("queue_seconds"),
            snap.report.extras.end());
  ASSERT_NE(snap.report.extras.find("run_seconds"),
            snap.report.extras.end());

  const obs::JobTrace trace = service::job_trace(snap);
  EXPECT_EQ(trace.job_id, id);
  EXPECT_EQ(trace.state, "done");
  obs::TraceCollector collector;
  obs::append_job_trace(collector, trace);
  EXPECT_GE(collector.size(), 2u);  // queued + run at minimum
  // And the rendered JSON parses.
  const io::JsonValue root = parse_trace(collector);
  EXPECT_GE(events_of(root).as_array().size(), 2u);
}

/// RAII sink capture so a failing assertion cannot leave the global sink
/// installed.
class SinkCapture {
 public:
  SinkCapture() {
    obs::log_set_sink([this](const std::string& line) {
      std::lock_guard lock(mu_);
      lines_.push_back(line);
    });
  }
  ~SinkCapture() { obs::log_set_sink(nullptr); }

  std::vector<std::string> lines() {
    std::lock_guard lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(Log, LevelFilterSuppressesBelowThreshold) {
  SinkCapture capture;
  obs::log_configure("warn");
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  obs::log(obs::LogLevel::kInfo, "test", "below threshold");
  obs::log(obs::LogLevel::kWarn, "test", "at threshold",
           {{"answer", std::int64_t{42}}});
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("WARN"), std::string::npos);
  EXPECT_NE(lines[0].find("test: at threshold"), std::string::npos);
  EXPECT_NE(lines[0].find("answer=\"42\""), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');
}

TEST(Log, JsonModeEmitsParsableObjects) {
  SinkCapture capture;
  obs::log_configure("info,json");
  obs::log(obs::LogLevel::kWarn, "journal", "append failed",
           {{"error", "disk \"full\""}});
  obs::log_configure("warn");  // restore the default for later tests
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const io::JsonValue root = io::parse_json(lines[0]);
  EXPECT_EQ(root.find("level")->as_string(), "WARN");
  EXPECT_EQ(root.find("component")->as_string(), "journal");
  EXPECT_EQ(root.find("msg")->as_string(), "append failed");
  EXPECT_EQ(root.find("error")->as_string(), "disk \"full\"");
}

TEST(Log, OffSilencesEverything) {
  SinkCapture capture;
  obs::log_configure("off");
  obs::log(obs::LogLevel::kError, "test", "nope");
  obs::log_configure("warn");
  EXPECT_TRUE(capture.lines().empty());
}

TEST(Log, RateLimitGrantsOncePerIntervalAndCountsSuppressed) {
  obs::LogRateLimit gate(3600.0);  // effectively once per test run
  std::uint64_t suppressed = 99;
  EXPECT_TRUE(gate.allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  EXPECT_FALSE(gate.allow(&suppressed));
  EXPECT_FALSE(gate.allow(&suppressed));

  obs::LogRateLimit open_gate(0.0);  // zero interval: every call may log
  EXPECT_TRUE(open_gate.allow());
  EXPECT_TRUE(open_gate.allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
}

TEST(BuildInfo, FieldsAreNonEmpty) {
  const obs::BuildInfo& info = obs::build_info();
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.git.empty());
  EXPECT_FALSE(info.compiler.empty());
  // build_type may be empty on un-typed builds; flags string always has
  // at least the standard flag.
  EXPECT_FALSE(info.flags.empty());
}

TEST(TraceCollector, WriteFileRoundTrips) {
  obs::TraceCollector collector;
  obs::TraceSpan span;
  span.name = "queued";
  span.tid = 1;
  span.duration_seconds = 0.5;
  collector.add_span(span);
  const std::string path =
      ::testing::TempDir() + "/dabs_trace_test_out.json";
  ASSERT_TRUE(collector.write_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const io::JsonValue root = io::parse_json(buffer.str());
  EXPECT_EQ(events_of(root).as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceCollector, WriteFileFailureReturnsFalse) {
  obs::TraceCollector collector;
  obs::TraceSpan span;
  span.name = "x";
  collector.add_span(span);
  SinkCapture capture;  // swallow the warning line
  EXPECT_FALSE(collector.write_file("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace dabs
