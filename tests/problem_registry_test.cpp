// Tests for the unified Problem API and its registry: every generator and
// loader reachable by name, typo rejection, canonical cache keys, and —
// per problem family — encode -> solve -> decode round trips proving the
// decoded domain objective equals the model-energy identity on fixed
// seeds, with verify() catching deliberately infeasible vectors.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>

#include "core/solve_report.hpp"
#include "core/solver_registry.hpp"
#include "io/qubo_text.hpp"
#include "problems/problem_registry.hpp"
#include "problems/standard_problems.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

namespace pr = problems;

SolveReport solve_with(const char* solver, const QuboModel& model,
                       std::uint64_t max_batches,
                       std::optional<Energy> target = std::nullopt,
                       std::uint64_t seed = 20230317) {
  SolveRequest req;
  req.model = &model;
  req.stop.max_batches = max_batches;
  req.stop.target_energy = target;
  req.seed = seed;
  return SolverRegistry::global().create(solver)->solve(req);
}

TEST(ProblemRegistry, ListsAllBuiltinGeneratorsAndLoaders) {
  const auto infos = ProblemRegistry::global().list();
  std::set<std::string> names;
  for (const auto& info : infos) names.insert(info.name);
  for (const char* expected :
       {"k2000", "g22", "g39", "maxcut", "qap", "tsp", "qasp", "chimera",
        "qubo", "gset", "qaplib"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
    EXPECT_TRUE(ProblemRegistry::global().contains(expected)) << expected;
  }
  for (const auto& info : infos) {
    const bool loader = info.name == "qubo" || info.name == "gset" ||
                        info.name == "qaplib";
    EXPECT_EQ(info.takes_path, loader) << info.name;
    EXPECT_EQ(ProblemRegistry::global().is_loader(info.name), loader);
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
  EXPECT_FALSE(ProblemRegistry::global().contains("no-such"));
  EXPECT_FALSE(ProblemRegistry::global().is_loader("maxcut"));
}

TEST(ProblemRegistry, RejectsUnknownNamesAndTypoParams) {
  auto& reg = ProblemRegistry::global();
  EXPECT_THROW((void)reg.create("qapp"), std::invalid_argument);
  EXPECT_THROW((void)reg.create("qap", {{"wat", "1"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.create("maxcut", {{"weights", "huh"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.create("qap", {{"kind", "huh"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.create("maxcut", {{"n", "not-a-number"}}),
               std::invalid_argument);
  // Loaders need a path; generators reject one.
  EXPECT_THROW((void)reg.create("gset"), std::invalid_argument);
  EXPECT_THROW((void)reg.create("k2000:somewhere"), std::invalid_argument);
}

TEST(ProblemRegistry, LoaderDefersTheFileReadToFirstUse) {
  // A well-formed loader spec creates even when the file is missing —
  // the read happens at encode() time, so the batch pipeline classifies
  // an unreadable path as a retryable load failure, not a spec error.
  const auto problem =
      ProblemRegistry::global().create("gset:/no/such/file.txt");
  EXPECT_EQ(problem->family(), "maxcut");
  EXPECT_NE(problem->cache_key().find("/no/such/file.txt"),
            std::string::npos);
  EXPECT_THROW((void)problem->encode(), std::exception);
}

TEST(ProblemRegistry, LoaderPathSchemeMatchesDirectReads) {
  const std::string path = ::testing::TempDir() + "/registry_model.txt";
  const QuboModel direct = testing::random_model(24, 0.4, 5, 77);
  io::write_qubo_file(path, direct);

  // Both spellings — "qubo:<path>" and the path param — load the file.
  const auto via_spec = ProblemRegistry::global().create("qubo:" + path);
  const auto via_param =
      ProblemRegistry::global().create("qubo", {{"path", path}});
  EXPECT_EQ(via_spec->cache_key(), via_param->cache_key());

  const QuboModel loaded = via_spec->encode();
  ASSERT_EQ(loaded.size(), direct.size());
  Rng rng(5);
  for (int k = 0; k < 16; ++k) {
    BitVector x(direct.size());
    for (std::size_t i = 0; i < x.size(); ++i) x.set(i, rng.next_bit());
    EXPECT_EQ(loaded.energy(x), direct.energy(x));
  }
  std::remove(path.c_str());
}

TEST(ProblemRegistry, CanonicalKeysResolveDefaultsDeterministically) {
  auto& reg = ProblemRegistry::global();
  // Equal specs render equal keys; defaults are resolved before keying.
  EXPECT_EQ(reg.create("qap")->cache_key(), reg.create("qap")->cache_key());
  EXPECT_EQ(reg.create("k2000")->cache_key(),
            reg.create("k2000", {{"seed", "2000"}})->cache_key());
  EXPECT_NE(reg.create("k2000")->cache_key(),
            reg.create("k2000", {{"seed", "1"}})->cache_key());
  // The auto QAP penalty keys as its resolved value, so "penalty=0" and
  // the explicit equal penalty dedupe to one instance.
  const auto auto_penalty = reg.create("qap");
  const auto* qap =
      dynamic_cast<const pr::QapProblem*>(auto_penalty.get());
  ASSERT_NE(qap, nullptr);
  const auto explicit_penalty = reg.create(
      "qap", {{"penalty", std::to_string(qap->penalty())}});
  EXPECT_EQ(auto_penalty->cache_key(), explicit_penalty->cache_key());
}

TEST(ProblemRegistry, MaxCutRoundTripEnergyCutIdentity) {
  const auto problem = ProblemRegistry::global().create(
      "maxcut", {{"n", "16"}, {"m", "40"}, {"seed", "161"}});
  EXPECT_EQ(problem->family(), "maxcut");
  const QuboModel model = problem->encode();
  const SolveReport r = solve_with("exhaustive", model, 0);

  const DomainSolution sol = problem->decode(r.best_solution);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.objective_name, "cut");
  // E(X) = -cut(X): the exact optimum's cut is the negated energy.
  EXPECT_EQ(sol.objective, -r.best_energy);

  const VerifyResult ok =
      problem->verify(r.best_solution, model.energy(r.best_solution));
  EXPECT_TRUE(ok.ok);
  EXPECT_TRUE(ok.feasible);
  EXPECT_TRUE(ok.message.empty());
  // A wrong claimed energy breaks the identity.
  const VerifyResult bad = problem->verify(r.best_solution, r.best_energy + 1);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.message.find("identity"), std::string::npos);
}

TEST(ProblemRegistry, QapRoundTripEnergyCostIdentity) {
  const auto problem = ProblemRegistry::global().create(
      "qap", {{"kind", "uniform"}, {"n", "4"}, {"seed", "171"}});
  const auto* qap = dynamic_cast<const pr::QapProblem*>(problem.get());
  ASSERT_NE(qap, nullptr);
  const QuboModel model = problem->encode();
  const SolveReport r = solve_with("exhaustive", model, 0);

  // E(X) = C(g_X) - n p at the (feasible, by the certified penalty)
  // optimum, and the decoded cost matches brute force.
  const DomainSolution sol = problem->decode(r.best_solution);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.objective_name, "assignment_cost");
  EXPECT_EQ(r.best_energy,
            sol.objective - Energy{qap->penalty()} * Energy{4});
  EXPECT_EQ(sol.objective, pr::qap_brute_force(qap->instance()));
  EXPECT_EQ(sol.assignment.size(), 4u);

  EXPECT_TRUE(
      problem->verify(r.best_solution, model.energy(r.best_solution)).ok);

  // Deliberately infeasible vectors are caught.
  BitVector all_ones(16);
  all_ones.fill(true);
  const DomainSolution infeasible = problem->decode(all_ones);
  EXPECT_FALSE(infeasible.feasible);
  const VerifyResult verdict =
      problem->verify(all_ones, model.energy(all_ones));
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.feasible);
  EXPECT_NE(verdict.message.find("one-hot"), std::string::npos);
}

TEST(ProblemRegistry, TspRoundTripEnergyTourLengthIdentity) {
  const auto problem = ProblemRegistry::global().create(
      "tsp", {{"n", "5"}, {"grid", "30"}, {"seed", "7"}});
  const auto* tsp = dynamic_cast<const pr::TspProblem*>(problem.get());
  ASSERT_NE(tsp, nullptr);
  const Energy opt = pr::tsp_brute_force(tsp->tsp());
  const QuboModel model = problem->encode();
  const Energy target = opt - Energy{tsp->penalty()} * Energy{5};

  const SolveReport r = solve_with("dabs", model, 6000, target);
  ASSERT_TRUE(r.reached_target);
  const DomainSolution sol = problem->decode(r.best_solution);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.objective_name, "tour_length");
  EXPECT_EQ(sol.objective, opt);
  EXPECT_EQ(sol.assignment.size(), 5u);
  EXPECT_TRUE(
      problem->verify(r.best_solution, model.energy(r.best_solution)).ok);

  BitVector empty(25);
  EXPECT_FALSE(problem->decode(empty).feasible);
  EXPECT_FALSE(problem->verify(empty, model.energy(empty)).ok);
}

TEST(ProblemRegistry, QaspIsingIdentityOnRandomVectors) {
  const auto problem = ProblemRegistry::global().create(
      "qasp", {{"r", "4"}, {"m", "2"}});
  const auto* qasp = dynamic_cast<const pr::QaspProblem*>(problem.get());
  ASSERT_NE(qasp, nullptr);
  const QuboModel model = problem->encode();
  Rng rng(9);
  for (int k = 0; k < 16; ++k) {
    BitVector x(model.size());
    for (std::size_t i = 0; i < x.size(); ++i) x.set(i, rng.next_bit());
    const DomainSolution sol = problem->decode(x);
    EXPECT_TRUE(sol.feasible);
    EXPECT_EQ(sol.objective_name, "ising_energy");
    // H(S) = E(X) + offset.
    EXPECT_EQ(sol.objective, model.energy(x) + qasp->instance().offset);
    EXPECT_TRUE(problem->verify(x, model.energy(x)).ok);
  }
}

TEST(ProblemRegistry, ChimeraEmbeddedDecodeAndBrokenChains) {
  const auto problem = ProblemRegistry::global().create(
      "chimera", {{"n", "8"}, {"seed", "7"}});
  const auto* embedded =
      dynamic_cast<const pr::EmbeddedQuboProblem*>(problem.get());
  ASSERT_NE(embedded, nullptr);
  const QuboModel physical = problem->encode();

  const SolveReport r = solve_with("dabs", physical, 1500);
  const DomainSolution sol = problem->decode(r.best_solution);
  ASSERT_TRUE(sol.feasible) << "chains broke under the auto chain strength";
  EXPECT_EQ(sol.objective_name, "logical_energy");
  // Intact chains: physical energy == logical energy of the decode.
  EXPECT_EQ(sol.objective, r.best_energy);
  EXPECT_TRUE(
      problem->verify(r.best_solution, physical.energy(r.best_solution)).ok);

  // Breaking one chain qubit must flip the verdict to infeasible.
  BitVector broken = r.best_solution;
  broken.flip(embedded->embedding().chains[0][0]);
  EXPECT_FALSE(problem->decode(broken).feasible);
  const VerifyResult verdict =
      problem->verify(broken, physical.energy(broken));
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.message.find("chain"), std::string::npos);
}

TEST(ProblemRegistry, RawQuboObjectiveIsTheEnergy) {
  const std::string path = ::testing::TempDir() + "/raw_model.txt";
  io::write_qubo_file(path, testing::random_model(16, 0.5, 4, 33));
  const auto problem = ProblemRegistry::global().create("qubo:" + path);
  const QuboModel model = problem->encode();
  const SolveReport r = solve_with("exhaustive", model, 0);
  const DomainSolution sol = problem->decode(r.best_solution);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.objective_name, "energy");
  EXPECT_EQ(sol.objective, r.best_energy);
  EXPECT_TRUE(
      problem->verify(r.best_solution, model.energy(r.best_solution)).ok);
  EXPECT_FALSE(problem->verify(r.best_solution, r.best_energy - 1).ok);
  std::remove(path.c_str());
}

TEST(ProblemRegistry, UnderPenalizedQapEncodeIsRejected) {
  const pr::QapInstance inst = pr::make_uniform_qap(4, 9, 171, "tiny");
  // A magic-constant penalty below the certified bound builds, but
  // verify() refuses to certify anything solved on it.
  const pr::QapProblem weak(inst, 1);
  EXPECT_LT(weak.penalty(), weak.min_safe_penalty());
  const BitVector feasible = pr::encode_assignment({0, 1, 2, 3});
  const VerifyResult verdict =
      weak.verify(feasible, weak.encode().energy(feasible));
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(verdict.feasible);  // the vector itself is one-hot
  EXPECT_NE(verdict.message.find("under-penalized"), std::string::npos);

  // The auto penalty is exactly the exposed bound and verifies clean.
  const pr::QapProblem safe(inst);
  EXPECT_EQ(safe.penalty(), safe.min_safe_penalty());
  EXPECT_EQ(safe.penalty(), pr::min_safe_qap_penalty(inst));
  EXPECT_TRUE(safe.verify(feasible, safe.encode().energy(feasible)).ok);
}

TEST(ProblemRegistry, VerifyWithoutProvidedEnergyReEncodes) {
  // The nullopt path computes E(x) via a fresh encode — exact, if slower.
  const auto problem = ProblemRegistry::global().create(
      "maxcut", {{"n", "12"}, {"m", "20"}, {"seed", "5"}});
  BitVector x(12);
  x.set(3, true);
  x.set(8, true);
  EXPECT_TRUE(problem->verify(x).ok);
}

}  // namespace
}  // namespace dabs
