// Tests for the campaign runner (the tables' measurement protocol) and the
// solution IO format.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/abs_solver.hpp"
#include "baseline/exhaustive.hpp"
#include "core/campaign.hpp"
#include "io/solution_io.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;

SolverConfig campaign_config() {
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.max_batches = 300;
  c.seed = 5;
  return c;
}

TEST(Campaign, CountsSuccessesAgainstTarget) {
  const QuboModel m = random_model(14, 0.6, 9, 8000);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  const Campaign camp(campaign_config(), 6);
  const CampaignResult r = camp.run(m, truth);
  EXPECT_EQ(r.runs, 6u);
  EXPECT_EQ(r.final_energies.size(), 6u);
  EXPECT_EQ(r.successes, r.tts_samples.size());
  EXPECT_GT(r.successes, 0u);  // trivial at this size
  EXPECT_EQ(r.best_energy, truth);
  EXPECT_DOUBLE_EQ(r.success_rate(), double(r.successes) / 6.0);
}

TEST(Campaign, UnreachableTargetYieldsZeroSuccesses) {
  const QuboModel m = random_model(12, 0.6, 9, 8001);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  const Campaign camp(campaign_config(), 3);
  const CampaignResult r = camp.run(m, truth - 1);  // below the optimum
  EXPECT_EQ(r.successes, 0u);
  EXPECT_EQ(r.tts.count(), 0u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.0);
  EXPECT_EQ(r.best_energy, truth);
}

TEST(Campaign, TrialsUseDistinctSeeds) {
  const QuboModel m = random_model(20, 0.5, 9, 8002);
  const Campaign camp(campaign_config(), 4);
  std::vector<std::uint64_t> seeds;
  (void)camp.run_with(m, -1,
                      [&](std::size_t, const SolverConfig& cfg) {
                        seeds.push_back(cfg.seed);
                        return DabsSolver(cfg).solve(m);
                      });
  ASSERT_EQ(seeds.size(), 4u);
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    EXPECT_NE(seeds[i], seeds[i - 1]);
  }
}

TEST(Campaign, WorksWithBaselineSolvers) {
  const QuboModel m = random_model(14, 0.6, 9, 8003);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  const Campaign camp(campaign_config(), 3);
  const CampaignResult r = camp.run_with(
      m, truth, [&m](std::size_t, const SolverConfig& cfg) {
        return AbsSolver(cfg).solve(m);
      });
  EXPECT_EQ(r.runs, 3u);
  EXPECT_LE(r.best_energy, 0);
}

TEST(Campaign, EstablishReferenceRunsToBudget) {
  const QuboModel m = random_model(16, 0.6, 9, 8004);
  const Energy ref = establish_reference(m, campaign_config(), 0.3);
  EXPECT_LT(ref, 0);  // random models this size always dip below zero
  EXPECT_THROW((void)establish_reference(m, campaign_config(), 0.0),
               std::invalid_argument);
}

TEST(SolutionIo, RoundTripThroughStream) {
  Rng rng(1);
  const BitVector x = testing::random_solution(77, rng);
  std::stringstream buf;
  io::write_solution(buf, x, -1234);
  const io::StoredSolution s = io::read_solution(buf);
  EXPECT_EQ(s.solution, x);
  EXPECT_EQ(s.energy, -1234);
}

TEST(SolutionIo, FileRoundTrip) {
  Rng rng(2);
  const BitVector x = testing::random_solution(33, rng);
  const std::string path = ::testing::TempDir() + "/dabs_solution_test.sol";
  io::write_solution_file(path, x, 42);
  const io::StoredSolution s = io::read_solution_file(path);
  EXPECT_EQ(s.solution, x);
  EXPECT_EQ(s.energy, 42);
}

TEST(SolutionIo, RejectsMalformedInput) {
  std::istringstream bad_header("nope 3 1\n010\n");
  EXPECT_THROW((void)io::read_solution(bad_header), std::invalid_argument);
  std::istringstream short_bits("solution 4 0\n010\n");
  EXPECT_THROW((void)io::read_solution(short_bits), std::invalid_argument);
  std::istringstream bad_bits("solution 3 0\n01x\n");
  EXPECT_THROW((void)io::read_solution(bad_bits), std::invalid_argument);
}

}  // namespace
}  // namespace dabs
