// Unit tests for the JSON writer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "io/json_writer.hpp"

namespace dabs {
namespace {

TEST(JsonWriter, SimpleObject) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("name", "dabs")
        .value("n", std::int64_t{2000})
        .value("ok", true)
        .end_object();
    EXPECT_TRUE(j.complete());
  }
  EXPECT_EQ(out.str(), R"({"name":"dabs","n":2000,"ok":true})");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object().begin_array("xs");
    j.element(std::int64_t{1}).element(std::int64_t{2});
    j.end_array().begin_object("meta").value("k", "v").end_object();
    j.end_object();
  }
  EXPECT_EQ(out.str(), R"({"xs":[1,2],"meta":{"k":"v"}})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(io::JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(io::JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, DestructorClosesOpenScopes) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object().begin_array("xs").element(std::int64_t{1});
    // forgot end_array / end_object
  }
  EXPECT_EQ(out.str(), R"({"xs":[1]})");
}

TEST(JsonWriter, RejectsKeylessObjectMember) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.element(std::int64_t{1}), std::invalid_argument);
}

TEST(JsonWriter, RejectsKeyedArrayElement) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_array();
  EXPECT_THROW(j.value("k", std::int64_t{1}), std::invalid_argument);
}

TEST(JsonWriter, RejectsMismatchedScopes) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.end_array(), std::invalid_argument);
}

TEST(JsonWriter, RejectsNonFiniteDoubles) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.value("x", std::nan("")), std::invalid_argument);
}

TEST(JsonWriter, RejectsTwoTopLevelValues) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object().end_object();
  EXPECT_THROW(j.begin_object(), std::invalid_argument);
}

}  // namespace
}  // namespace dabs
