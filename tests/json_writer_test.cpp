// Unit tests for the JSON writer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "io/json_writer.hpp"

namespace dabs {
namespace {

TEST(JsonWriter, SimpleObject) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("name", "dabs")
        .value("n", std::int64_t{2000})
        .value("ok", true)
        .end_object();
    EXPECT_TRUE(j.complete());
  }
  EXPECT_EQ(out.str(), R"({"name":"dabs","n":2000,"ok":true})");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object().begin_array("xs");
    j.element(std::int64_t{1}).element(std::int64_t{2});
    j.end_array().begin_object("meta").value("k", "v").end_object();
    j.end_object();
  }
  EXPECT_EQ(out.str(), R"({"xs":[1,2],"meta":{"k":"v"}})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(io::JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(io::JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, EscapesEveryControlCharacter) {
  // All of 0x00..0x1F must come out escaped; the named short forms for the
  // common ones, \u00XX for the rest.
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = io::JsonWriter::escape(in);
    ASSERT_GE(out.size(), 2u) << "control char " << c << " left unescaped";
    EXPECT_EQ(out[0], '\\') << "control char " << c;
  }
  EXPECT_EQ(io::JsonWriter::escape("\r"), "\\r");
  EXPECT_EQ(io::JsonWriter::escape("\t"), "\\t");
  EXPECT_EQ(io::JsonWriter::escape("\x1f"), "\\u001f");
  EXPECT_EQ(io::JsonWriter::escape("\x7f"), "\x7f");  // DEL needs no escape
}

TEST(JsonWriter, EscapesExtrasStyleKeysAndValues) {
  // Report extras are caller-controlled strings: keys and values with
  // quotes, backslashes, and control chars must produce parseable JSON.
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("path\\with\"quote", "C:\\tmp\n\"x\"")
        .end_object();
  }
  EXPECT_EQ(out.str(),
            R"({"path\\with\"quote":"C:\\tmp\n\"x\""})");
}

TEST(JsonWriter, Uint64RoundTripsFullRange) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("job_id", std::uint64_t{18446744073709551615ULL})
        .begin_array("ids");
    j.element(std::uint64_t{0}).element(std::uint64_t{9007199254740993ULL});
    j.end_array().end_object();
  }
  // Top of the uint64 range must not collapse into a negative int64.
  EXPECT_EQ(out.str(),
            R"({"job_id":18446744073709551615,"ids":[0,9007199254740993]})");
}

TEST(JsonWriter, DestructorClosesOpenScopes) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object().begin_array("xs").element(std::int64_t{1});
    // forgot end_array / end_object
  }
  EXPECT_EQ(out.str(), R"({"xs":[1]})");
}

TEST(JsonWriter, RejectsKeylessObjectMember) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.element(std::int64_t{1}), std::invalid_argument);
}

TEST(JsonWriter, RejectsKeyedArrayElement) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_array();
  EXPECT_THROW(j.value("k", std::int64_t{1}), std::invalid_argument);
}

TEST(JsonWriter, RejectsMismatchedScopes) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.end_array(), std::invalid_argument);
}

TEST(JsonWriter, RejectsNonFiniteDoubles) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.value("x", std::nan("")), std::invalid_argument);
}

TEST(JsonWriter, RejectsTwoTopLevelValues) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object().end_object();
  EXPECT_THROW(j.begin_object(), std::invalid_argument);
}

TEST(JsonWriter, StreamsChunkedEventObjects) {
  // The events endpoint writes one self-contained JSON object per HTTP
  // chunk: a fresh JsonWriter per page over a reused stringstream.  Each
  // chunk must be complete, independently parseable JSON, and the writer
  // must not leak state between pages.
  std::vector<std::string> chunks;
  std::ostringstream out;
  for (int page = 0; page < 3; ++page) {
    out.str("");
    {
      io::JsonWriter json(out);
      json.begin_object()
          .value("job_id", std::uint64_t{42})
          .value("cursor", static_cast<std::uint64_t>(page + 1) * 2)
          .begin_array("events");
      for (int i = 0; i < 2; ++i) {
        json.begin_object()
            .value("kind", i == 0 ? "new_best" : "tick")
            .value("elapsed_seconds", 0.25 * (page * 2 + i))
            .value("best_energy", std::int64_t{-17 - page})
            .value("work", std::uint64_t{1000})
            .end_object();
      }
      json.end_array().end_object();
      EXPECT_TRUE(json.complete());
    }
    chunks.push_back(out.str() + "\n");
  }

  ASSERT_EQ(chunks.size(), 3u);
  for (const std::string& chunk : chunks) {
    EXPECT_EQ(chunk.back(), '\n');  // JSONL framing for line readers
    EXPECT_EQ(chunk.find('\n'), chunk.size() - 1);  // one object per chunk
    EXPECT_EQ(chunk.front(), '{');
  }
  // Pages carry their own cursors — nothing bled across writer instances.
  EXPECT_NE(chunks[0].find("\"cursor\":2"), std::string::npos);
  EXPECT_NE(chunks[2].find("\"cursor\":6"), std::string::npos);
  EXPECT_NE(chunks[2].find("\"best_energy\":-19"), std::string::npos);
}

TEST(JsonWriter, EscapeIsSafeForEventPayloads) {
  // Error details spliced into streamed pages go through escape(); pin the
  // characters that would otherwise break chunk framing or JSON syntax.
  EXPECT_EQ(io::JsonWriter::escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(io::JsonWriter::escape("quote\" back\\"), "quote\\\" back\\\\");
  EXPECT_EQ(io::JsonWriter::escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(io::JsonWriter::escape("plain"), "plain");
}

}  // namespace
}  // namespace dabs
