// Unit tests for the JSON writer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "io/json_writer.hpp"

namespace dabs {
namespace {

TEST(JsonWriter, SimpleObject) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("name", "dabs")
        .value("n", std::int64_t{2000})
        .value("ok", true)
        .end_object();
    EXPECT_TRUE(j.complete());
  }
  EXPECT_EQ(out.str(), R"({"name":"dabs","n":2000,"ok":true})");
}

TEST(JsonWriter, NestedStructures) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object().begin_array("xs");
    j.element(std::int64_t{1}).element(std::int64_t{2});
    j.end_array().begin_object("meta").value("k", "v").end_object();
    j.end_object();
  }
  EXPECT_EQ(out.str(), R"({"xs":[1,2],"meta":{"k":"v"}})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(io::JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(io::JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, EscapesEveryControlCharacter) {
  // All of 0x00..0x1F must come out escaped; the named short forms for the
  // common ones, \u00XX for the rest.
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = io::JsonWriter::escape(in);
    ASSERT_GE(out.size(), 2u) << "control char " << c << " left unescaped";
    EXPECT_EQ(out[0], '\\') << "control char " << c;
  }
  EXPECT_EQ(io::JsonWriter::escape("\r"), "\\r");
  EXPECT_EQ(io::JsonWriter::escape("\t"), "\\t");
  EXPECT_EQ(io::JsonWriter::escape("\x1f"), "\\u001f");
  EXPECT_EQ(io::JsonWriter::escape("\x7f"), "\x7f");  // DEL needs no escape
}

TEST(JsonWriter, EscapesExtrasStyleKeysAndValues) {
  // Report extras are caller-controlled strings: keys and values with
  // quotes, backslashes, and control chars must produce parseable JSON.
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("path\\with\"quote", "C:\\tmp\n\"x\"")
        .end_object();
  }
  EXPECT_EQ(out.str(),
            R"({"path\\with\"quote":"C:\\tmp\n\"x\""})");
}

TEST(JsonWriter, Uint64RoundTripsFullRange) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object()
        .value("job_id", std::uint64_t{18446744073709551615ULL})
        .begin_array("ids");
    j.element(std::uint64_t{0}).element(std::uint64_t{9007199254740993ULL});
    j.end_array().end_object();
  }
  // Top of the uint64 range must not collapse into a negative int64.
  EXPECT_EQ(out.str(),
            R"({"job_id":18446744073709551615,"ids":[0,9007199254740993]})");
}

TEST(JsonWriter, DestructorClosesOpenScopes) {
  std::ostringstream out;
  {
    io::JsonWriter j(out);
    j.begin_object().begin_array("xs").element(std::int64_t{1});
    // forgot end_array / end_object
  }
  EXPECT_EQ(out.str(), R"({"xs":[1]})");
}

TEST(JsonWriter, RejectsKeylessObjectMember) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.element(std::int64_t{1}), std::invalid_argument);
}

TEST(JsonWriter, RejectsKeyedArrayElement) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_array();
  EXPECT_THROW(j.value("k", std::int64_t{1}), std::invalid_argument);
}

TEST(JsonWriter, RejectsMismatchedScopes) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.end_array(), std::invalid_argument);
}

TEST(JsonWriter, RejectsNonFiniteDoubles) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object();
  EXPECT_THROW(j.value("x", std::nan("")), std::invalid_argument);
}

TEST(JsonWriter, RejectsTwoTopLevelValues) {
  std::ostringstream out;
  io::JsonWriter j(out);
  j.begin_object().end_object();
  EXPECT_THROW(j.begin_object(), std::invalid_argument);
}

}  // namespace
}  // namespace dabs
