// Fault-injection harness coverage: activation spec grammar, firing modes,
// exception kinds, hit accounting, and environment-variable activation.
// When the harness is compiled out (-DDABS_FAILPOINTS=OFF) every test
// skips — the hooks are inline no-ops and there is nothing to observe.
#include "util/failpoint.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace dabs::fail {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiled_in()) GTEST_SKIP() << "built with DABS_FAILPOINTS=OFF";
    clear();
  }
  void TearDown() override {
    if (compiled_in()) clear();
  }
};

TEST_F(FailpointTest, UnconfiguredPointIsInert) {
  EXPECT_NO_THROW(point("never.configured"));
  EXPECT_EQ(hits("never.configured"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  configure("p", "always");
  EXPECT_THROW(point("p"), InjectedFault);
  EXPECT_THROW(point("p"), InjectedFault);
  EXPECT_EQ(hits("p"), 2u);
}

TEST_F(FailpointTest, FaultMessageNamesThePoint) {
  configure("p", "always");
  try {
    point("p");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("p"), std::string::npos);
    EXPECT_FALSE(is_retryable_message(e.what()));
  }
}

TEST_F(FailpointTest, NthFiresExactlyOnce) {
  configure("p", "nth:3");
  EXPECT_NO_THROW(point("p"));
  EXPECT_NO_THROW(point("p"));
  EXPECT_THROW(point("p"), InjectedFault);
  EXPECT_NO_THROW(point("p"));
  EXPECT_EQ(hits("p"), 4u);
}

TEST_F(FailpointTest, FirstFailsNThenPasses) {
  // The retry-succeeds scenario: two injected failures, then clean runs.
  configure("p", "first:2");
  EXPECT_THROW(point("p"), InjectedFault);
  EXPECT_THROW(point("p"), InjectedFault);
  EXPECT_NO_THROW(point("p"));
  EXPECT_NO_THROW(point("p"));
}

TEST_F(FailpointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  configure("never", "prob:0.0");
  configure("surely", "prob:1.0");
  for (int i = 0; i < 50; ++i) EXPECT_NO_THROW(point("never"));
  EXPECT_THROW(point("surely"), InjectedFault);
}

TEST_F(FailpointTest, ProbIsDeterministicForAFixedSeed) {
  const auto run = [](const char* name) {
    configure(name, "prob:0.5:12345");
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        point(name);
        pattern += '.';
      } catch (const InjectedFault&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string first = run("a");
  const std::string second = run("b");
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FailpointTest, OffCountsHitsWithoutFiring) {
  configure("p", "off");
  EXPECT_NO_THROW(point("p"));
  EXPECT_NO_THROW(point("p"));
  EXPECT_EQ(hits("p"), 2u);
}

TEST_F(FailpointTest, RetryableKindCarriesTheMarkerPrefix) {
  configure("p", "always,retryable");
  try {
    point("p");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_TRUE(is_retryable_message(e.what()));
  }
}

TEST_F(FailpointTest, OomKindThrowsBadAlloc) {
  configure("p", "always,oom");
  EXPECT_THROW(point("p"), std::bad_alloc);
}

TEST_F(FailpointTest, ReconfigurePreservesHitsClearResetsThem) {
  configure("p", "off");
  point("p");
  point("p");
  configure("p", "nth:3");  // re-arm: the counter keeps running
  EXPECT_THROW(point("p"), InjectedFault);
  EXPECT_EQ(hits("p"), 3u);
  clear();
  EXPECT_EQ(hits("p"), 0u);
  EXPECT_NO_THROW(point("p"));
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_THROW(configure("p", ""), std::invalid_argument);
  EXPECT_THROW(configure("p", "sometimes"), std::invalid_argument);
  EXPECT_THROW(configure("p", "nth:0"), std::invalid_argument);
  EXPECT_THROW(configure("p", "nth:x"), std::invalid_argument);
  EXPECT_THROW(configure("p", "first:"), std::invalid_argument);
  EXPECT_THROW(configure("p", "prob:1.5"), std::invalid_argument);
  EXPECT_THROW(configure("p", "prob:-0.1"), std::invalid_argument);
  EXPECT_THROW(configure("p", "always,kaboom"), std::invalid_argument);
  EXPECT_NO_THROW(point("p"));  // nothing was armed by the rejects
}

TEST_F(FailpointTest, EnvVariableArmsPoints) {
  ::setenv("DABS_FAILPOINTS", "env.a=always;env.b=first:1,oom", 1);
  load_from_env();
  ::unsetenv("DABS_FAILPOINTS");
  EXPECT_THROW(point("env.a"), InjectedFault);
  EXPECT_THROW(point("env.b"), std::bad_alloc);
  EXPECT_NO_THROW(point("env.b"));
}

TEST_F(FailpointTest, MalformedEnvEntriesAreSkippedNotFatal) {
  ::setenv("DABS_FAILPOINTS", "bad spec here;=nope;ok=nth:1;x=wat:9", 1);
  load_from_env();
  ::unsetenv("DABS_FAILPOINTS");
  EXPECT_THROW(point("ok"), InjectedFault);
  EXPECT_NO_THROW(point("x"));
}

TEST_F(FailpointTest, IsRetryableMessageMatchesPrefixOnly) {
  EXPECT_TRUE(is_retryable_message("retryable: disk blip"));
  EXPECT_FALSE(is_retryable_message("error was retryable: maybe"));
  EXPECT_FALSE(is_retryable_message(""));
}

}  // namespace
}  // namespace dabs::fail
