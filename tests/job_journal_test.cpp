// Write-ahead job journal: append/replay round trip and — the point of a
// journal — tolerance of every corruption a crash can leave behind:
// truncated final lines, interleaved garbage, duplicate terminal records,
// and zero-byte files.
#include "service/job_journal.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace dabs::service {
namespace {

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(JobJournalTest, AppendReplayRoundTrip) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  {
    JobJournal journal(path);
    JournalRecord submitted;
    submitted.event = JournalEvent::kSubmitted;
    submitted.fingerprint = "aaaa";
    submitted.line = 1;
    submitted.tag = "hot";
    journal.append(submitted);
    JournalRecord started = submitted;
    started.event = JournalEvent::kStarted;
    journal.append(started);
    JournalRecord done = submitted;
    done.event = JournalEvent::kDone;
    done.attempt = 2;
    journal.append(done);
    JournalRecord other;
    other.event = JournalEvent::kSubmitted;
    other.fingerprint = "bbbb";
    other.line = 2;
    journal.append(other);
    EXPECT_EQ(journal.appended(), 4u);
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 4u);
  EXPECT_EQ(replay.skipped, 0u);
  ASSERT_EQ(replay.last_event.size(), 2u);
  EXPECT_EQ(replay.last_event.at("aaaa"), JournalEvent::kDone);
  EXPECT_EQ(replay.last_event.at("bbbb"), JournalEvent::kSubmitted);
  EXPECT_TRUE(replay.terminal("aaaa"));
  EXPECT_FALSE(replay.terminal("bbbb"));
  EXPECT_FALSE(replay.terminal("never-seen"));
}

TEST(JobJournalTest, ReplayTerminalIsDoneOrFailedOnly) {
  // Cancelled and rejected jobs re-enqueue on --resume; done and failed do
  // not (the contract batch resume is built on).
  EXPECT_TRUE(is_replay_terminal(JournalEvent::kDone));
  EXPECT_TRUE(is_replay_terminal(JournalEvent::kFailed));
  EXPECT_FALSE(is_replay_terminal(JournalEvent::kSubmitted));
  EXPECT_FALSE(is_replay_terminal(JournalEvent::kStarted));
  EXPECT_FALSE(is_replay_terminal(JournalEvent::kCancelled));
  EXPECT_FALSE(is_replay_terminal(JournalEvent::kRejected));
}

TEST(JobJournalTest, AppendsAccumulateAcrossReopens) {
  // A resumed run opens the same journal and keeps appending — O_APPEND,
  // no truncation of the history it is resuming from.
  const std::string path = temp_path("journal_reopen.jsonl");
  {
    JobJournal journal(path);
    JournalRecord r;
    r.fingerprint = "aaaa";
    journal.append(r);
  }
  {
    JobJournal journal(path);
    JournalRecord r;
    r.event = JournalEvent::kDone;
    r.fingerprint = "aaaa";
    journal.append(r);
    EXPECT_EQ(journal.appended(), 1u);  // per-handle count
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 2u);
  EXPECT_TRUE(replay.terminal("aaaa"));
}

TEST(JobJournalTest, TruncatedFinalLineIsSkippedNotFatal) {
  // The torn write a kill -9 mid-append leaves behind: everything before
  // it replays, the torn tail is counted and warned about.
  const std::string path = temp_path("journal_torn.jsonl");
  {
    JobJournal journal(path);
    JournalRecord r;
    r.fingerprint = "aaaa";
    r.event = JournalEvent::kDone;
    journal.append(r);
  }
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"event": "submitted", "fp": "bb)";  // no close, no newline
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 1u);
  EXPECT_EQ(replay.skipped, 1u);
  ASSERT_EQ(replay.warnings.size(), 1u);
  EXPECT_NE(replay.warnings[0].find("line 2"), std::string::npos);
  EXPECT_TRUE(replay.terminal("aaaa"));
  EXPECT_FALSE(replay.terminal("bb"));
}

TEST(JobJournalTest, InterleavedGarbageIsSkippedRecordsSurvive) {
  const std::string path = temp_path("journal_garbage.jsonl");
  {
    std::ofstream out(path);
    out << R"({"event": "submitted", "fp": "aaaa"})" << "\n"
        << "!!! not json at all !!!\n"
        << R"({"this": "parses but is no journal record"})" << "\n"
        << R"({"event": "exploded", "fp": "aaaa"})" << "\n"
        << R"({"event": 7, "fp": "aaaa"})" << "\n"
        << R"({"event": "done", "fp": ""})" << "\n"
        << "\n"  // blank: not corruption, not counted
        << R"({"event": "done", "fp": "aaaa", "attempt": 1})" << "\n";
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 2u);
  EXPECT_EQ(replay.skipped, 5u);
  EXPECT_EQ(replay.warnings.size(), 5u);
  EXPECT_TRUE(replay.terminal("aaaa"));
}

TEST(JobJournalTest, DuplicateTerminalRecordsAreIdempotent) {
  // Crash between the report write and process exit, then a re-run that
  // finishes the job again: two terminal records, one outcome.
  const std::string path = temp_path("journal_dup.jsonl");
  {
    std::ofstream out(path);
    out << R"({"event": "submitted", "fp": "aaaa"})" << "\n"
        << R"({"event": "done", "fp": "aaaa"})" << "\n"
        << R"({"event": "done", "fp": "aaaa"})" << "\n";
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 3u);
  EXPECT_EQ(replay.skipped, 0u);
  EXPECT_EQ(replay.last_event.size(), 1u);
  EXPECT_TRUE(replay.terminal("aaaa"));
}

TEST(JobJournalTest, LastRecordWinsAcrossConflictingEvents) {
  // A failed re-run after a done (operator re-ran with --resume off):
  // the journal is a log, the latest state is the truth.
  const std::string path = temp_path("journal_conflict.jsonl");
  {
    std::ofstream out(path);
    out << R"({"event": "done", "fp": "aaaa"})" << "\n"
        << R"({"event": "submitted", "fp": "aaaa"})" << "\n";
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.last_event.at("aaaa"), JournalEvent::kSubmitted);
  EXPECT_FALSE(replay.terminal("aaaa"));
}

TEST(JobJournalTest, ZeroByteFileReplaysEmpty) {
  const std::string path = temp_path("journal_empty.jsonl");
  { std::ofstream out(path); }  // create, write nothing
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.records, 0u);
  EXPECT_EQ(replay.skipped, 0u);
  EXPECT_TRUE(replay.last_event.empty());
}

TEST(JobJournalTest, MissingFileReplaysEmpty) {
  const JobJournal::Replay replay =
      JobJournal::replay(temp_path("journal_never_written.jsonl"));
  EXPECT_EQ(replay.records, 0u);
  EXPECT_EQ(replay.skipped, 0u);
}

TEST(JobJournalTest, WarningListIsBoundedSkipCountIsNot) {
  const std::string path = temp_path("journal_many_bad.jsonl");
  {
    std::ofstream out(path);
    for (int i = 0; i < 40; ++i) out << "garbage line " << i << "\n";
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.skipped, 40u);
  EXPECT_LT(replay.warnings.size(), 40u);
  EXPECT_GE(replay.warnings.size(), 1u);
}

TEST(JobJournalTest, UnopenablePathThrows) {
  EXPECT_THROW(JobJournal("/nonexistent-dir-for-sure/journal.jsonl"),
               std::runtime_error);
}

TEST(JobJournalTest, RecordsSerializeOptionalFieldsOnlyWhenSet) {
  const std::string path = temp_path("journal_fields.jsonl");
  {
    JobJournal journal(path);
    JournalRecord bare;
    bare.fingerprint = "aaaa";
    journal.append(bare);
    JournalRecord full;
    full.event = JournalEvent::kFailed;
    full.fingerprint = "bbbb";
    full.line = 9;
    full.tag = "t";
    full.attempt = 3;
    full.detail = "boom";
    journal.append(full);
  }
  const std::string text = read_file(path);
  const std::size_t newline = text.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string first = text.substr(0, newline);
  EXPECT_EQ(first.find("\"line\""), std::string::npos);
  EXPECT_EQ(first.find("\"tag\""), std::string::npos);
  EXPECT_EQ(first.find("\"attempt\""), std::string::npos);
  EXPECT_EQ(first.find("\"detail\""), std::string::npos);
  EXPECT_NE(first.find("\"ts\""), std::string::npos);
  const std::string second = text.substr(newline + 1);
  EXPECT_NE(second.find("\"event\":\"failed\""), std::string::npos);
  EXPECT_NE(second.find("\"attempt\":3"), std::string::npos);
  EXPECT_NE(second.find("\"detail\":\"boom\""), std::string::npos);
}

TEST(JobJournalTest, ReplayKeepsLatestSubmittedDetailPerFingerprint) {
  // The HTTP solve server stores the raw request body in the submitted
  // record's detail field; replay must surface the most recent one per
  // fingerprint so `serve --resume` can re-enqueue from it.
  const std::string path = temp_path("journal_submitted_detail.jsonl");
  {
    JobJournal journal(path);
    JournalRecord record;
    record.event = JournalEvent::kSubmitted;
    record.fingerprint = "aaaa";
    record.detail = R"({"problem": "maxcut", "try": 1})";
    journal.append(record);
    // A later submitted record for the same fingerprint (a resume that was
    // itself killed) supersedes the stored body.
    record.detail = R"({"problem": "maxcut", "try": 2})";
    journal.append(record);
    // Detail-less submits (the batch runner's) contribute nothing.
    record.fingerprint = "bbbb";
    record.detail.clear();
    journal.append(record);
    // Non-submitted events never touch the stored bodies.
    record.event = JournalEvent::kDone;
    record.fingerprint = "aaaa";
    record.detail = "disposition text, not a body";
    journal.append(record);
  }
  const JobJournal::Replay replay = JobJournal::replay(path);
  ASSERT_EQ(replay.submitted_detail.size(), 1u);
  EXPECT_EQ(replay.submitted_detail.at("aaaa"),
            R"({"problem": "maxcut", "try": 2})");
  EXPECT_EQ(replay.submitted_detail.count("bbbb"), 0u);
  // The terminal record still wins for state, independent of the body map.
  EXPECT_TRUE(replay.terminal("aaaa"));
}

}  // namespace
}  // namespace dabs::service
