// Dense-vs-CSR backend equivalence: both kernel backends must be bit-exact
// on every observable — energy, delta_all, post-flip incremental deltas,
// scan results, BEST bookkeeping, and whole SolveResults — across sizes
// (including the n % 64 != 0 tail-word cases) and densities.  All
// arithmetic is integral, so "close" is not acceptable: EXPECT_EQ only.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "core/dabs_solver.hpp"
#include "qubo/qubo_builder.hpp"
#include "qubo/search_state.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

class BackendEquivalence
    : public ::testing::TestWithParam<std::tuple<int, double>> {
 protected:
  // Same seed => identical terms; only the backend differs.
  QuboModel csr(std::uint64_t salt = 0) const {
    const auto [n, density] = GetParam();
    return random_model(n, density, 9, 9000 + n + salt, QuboBackend::kCsr);
  }
  QuboModel dense(std::uint64_t salt = 0) const {
    const auto [n, density] = GetParam();
    return random_model(n, density, 9, 9000 + n + salt, QuboBackend::kDense);
  }
};

TEST_P(BackendEquivalence, ForcedBackendsAreHonored) {
  EXPECT_EQ(csr().backend(), QuboBackend::kCsr);
  EXPECT_EQ(dense().backend(), QuboBackend::kDense);
  EXPECT_TRUE(dense().has_dense_rows());
  EXPECT_FALSE(csr().has_dense_rows());
}

TEST_P(BackendEquivalence, DenseRowsMatchCsrWeights) {
  const QuboModel a = csr(), b = dense();
  ASSERT_EQ(a.size(), b.size());
  const auto n = static_cast<VarIndex>(a.size());
  for (VarIndex i = 0; i < n; ++i) {
    const Weight* row = b.dense_row(i);
    for (VarIndex j = 0; j < n; ++j) {
      EXPECT_EQ(row[j], i == j ? 0 : a.weight(i, j)) << i << "," << j;
    }
  }
}

TEST_P(BackendEquivalence, EnergyAndDeltaAllAreBitIdentical) {
  const QuboModel a = csr(), b = dense();
  Rng rng(std::get<0>(GetParam()) * 23 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVector x = random_solution(a.size(), rng);
    EXPECT_EQ(a.energy(x), b.energy(x));
    std::vector<Energy> da, db;
    a.delta_all(x, da);
    b.delta_all(x, db);
    EXPECT_EQ(da, db);
  }
}

TEST_P(BackendEquivalence, RandomWalkKeepsIdenticalState) {
  const QuboModel a = csr(), b = dense();
  SearchState sa(a), sb(b);
  Rng rng(std::get<0>(GetParam()) * 29 + 5);
  const BitVector start = random_solution(a.size(), rng);
  sa.reset_to(start);
  sb.reset_to(start);
  const auto n = a.size();
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<VarIndex>(rng.next_index(n));
    sa.flip(i);
    sb.flip(i);
  }
  EXPECT_EQ(sa.solution(), sb.solution());
  EXPECT_EQ(sa.energy(), sb.energy());
  EXPECT_EQ(sa.best(), sb.best());
  EXPECT_EQ(sa.best_energy(), sb.best_energy());
  for (VarIndex k = 0; k < n; ++k) {
    ASSERT_EQ(sa.delta(k), sb.delta(k)) << "k=" << k;
    ASSERT_EQ(sa.sigmas()[k], sb.sigmas()[k]) << "k=" << k;
  }
}

TEST_P(BackendEquivalence, FlipAndScanEqualsFlipThenScan) {
  // On *both* backends, the fused entry point must be exactly
  // flip(); scan(); — same ScanResult, same deltas, same BEST.
  for (const QuboBackend backend : {QuboBackend::kCsr, QuboBackend::kDense}) {
    const auto [n, density] = GetParam();
    const QuboModel m =
        random_model(n, density, 9, 9100 + n, backend);
    SearchState fused(m), stepped(m);
    Rng rng(n * 31 + 7);
    const BitVector start = random_solution(m.size(), rng);
    fused.reset_to(start);
    stepped.reset_to(start);
    for (int step = 0; step < 60; ++step) {
      const auto i = static_cast<VarIndex>(rng.next_index(m.size()));
      const ScanResult f = fused.flip_and_scan(i);
      stepped.flip(i);
      const ScanResult s = stepped.scan();
      ASSERT_EQ(f.min_delta, s.min_delta);
      ASSERT_EQ(f.max_delta, s.max_delta);
      ASSERT_EQ(f.argmin, s.argmin);
    }
    EXPECT_EQ(fused.solution(), stepped.solution());
    EXPECT_EQ(fused.energy(), stepped.energy());
    EXPECT_EQ(fused.best(), stepped.best());
    EXPECT_EQ(fused.best_energy(), stepped.best_energy());
    for (VarIndex k = 0; k < m.size(); ++k) {
      ASSERT_EQ(fused.delta(k), stepped.delta(k)) << "k=" << k;
    }
  }
}

// Sizes deliberately straddle the bit-vector word boundary (63/64/65/129)
// to cover the n % 64 != 0 tail-word edge case.
INSTANTIATE_TEST_SUITE_P(
    Sweep, BackendEquivalence,
    ::testing::Combine(::testing::Values(2, 33, 63, 64, 65, 100, 129),
                       ::testing::Values(0.1, 0.5, 1.0)));

TEST(BackendSelection, AutoPicksDenseAboveThresholdAndCsrBelow) {
  const QuboModel dense = random_model(40, 1.0, 5, 1);
  EXPECT_EQ(dense.backend(), QuboBackend::kDense);
  EXPECT_NE(dense.describe().find("backend=dense"), std::string::npos);
  const QuboModel sparse = random_model(40, 0.05, 5, 1);
  EXPECT_EQ(sparse.backend(), QuboBackend::kCsr);
  EXPECT_NE(sparse.describe().find("backend=csr"), std::string::npos);
}

TEST(BackendSelection, DenseRequestBeyondMemoryBudgetIsRejected) {
  // n = 8200 puts the n x n matrix just past kDenseMaxBytes (256 MiB at
  // int32 weights caps n at 8192): a forced kDense must be rejected at
  // build() time, before anything is allocated.  kAuto uses the same
  // fits-check and falls back to CSR instead.
  const std::size_t n = 8200;
  ASSERT_GT(n * n * sizeof(Weight), QuboModel::kDenseMaxBytes);
  QuboBuilder b(n);
  b.add_quadratic(0, 1, 1);
  b.set_backend(QuboBackend::kDense);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(BackendSelection, BuilderResetsOverrideAfterBuild) {
  QuboBuilder b(4);
  b.add_quadratic(0, 1, 1).set_backend(QuboBackend::kDense);
  EXPECT_EQ(b.build().backend(), QuboBackend::kDense);
  // build() leaves the builder empty and back on kAuto.
  EXPECT_EQ(b.backend(), QuboBackend::kAuto);
}

TEST(BackendSelection, QuadraticInt32MinIsRejected) {
  // The symmetric-coupling restriction that keeps the branchless dense
  // kernel overflow-free; INT32_MIN diagonals remain legal.
  QuboBuilder b(2);
  b.add_quadratic(0, 1, std::numeric_limits<Weight>::min());
  EXPECT_THROW((void)b.build(), std::invalid_argument);
  QuboBuilder ok(2);
  ok.add_quadratic(0, 1, -std::numeric_limits<Weight>::max());
  ok.add_linear(0, std::numeric_limits<Weight>::min());
  const QuboModel m = ok.build();
  EXPECT_EQ(m.weight(0, 1), -std::numeric_limits<Weight>::max());
  EXPECT_EQ(m.diag(0), std::numeric_limits<Weight>::min());
}

TEST(BackendRegression, SolveResultBitIdenticalAcrossBackendSwitch) {
  // The determinism_test guarantee must survive the backend switch: the
  // same solver config on the same terms produces the same SolveResult
  // whether the kernel walks CSR rows or dense rows.
  const QuboModel a = random_model(64, 0.3, 9, 11004, QuboBackend::kCsr);
  const QuboModel b = random_model(64, 0.3, 9, 11004, QuboBackend::kDense);
  SolverConfig c;
  c.devices = 3;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.max_batches = 120;
  c.seed = 0xD1CED1CE;
  const SolveResult ra = DabsSolver(c).solve(a);
  const SolveResult rb = DabsSolver(c).solve(b);
  EXPECT_EQ(ra.best_energy, rb.best_energy);
  EXPECT_EQ(ra.best_solution, rb.best_solution);
  EXPECT_EQ(ra.batches, rb.batches);
  EXPECT_EQ(ra.restarts, rb.restarts);
  EXPECT_EQ(ra.reached_target, rb.reached_target);
  EXPECT_EQ(ra.stats.algo_executed, rb.stats.algo_executed);
  EXPECT_EQ(ra.stats.op_executed, rb.stats.op_executed);
  EXPECT_EQ(ra.stats.improvements.size(), rb.stats.improvements.size());
}

}  // namespace
}  // namespace dabs
