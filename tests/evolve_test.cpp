// Tests for the diversity engine subsystem: pool diversity measurement,
// island migration, adaptive-selector convergence on a rigged reward
// stream, DiversityEngine determinism/cancellation, and the dabs solver's
// diversity surface (registry options, SolveReport extras).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <thread>

#include "core/dabs_solver.hpp"
#include "core/solver_registry.hpp"
#include "evolve/adaptive_selector.hpp"
#include "evolve/diversity.hpp"
#include "evolve/diversity_engine.hpp"
#include "evolve/island_ring.hpp"
#include "evolve/solution_pool.hpp"
#include "rng/seeder.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

BitVector bits_of(std::size_t n, std::uint64_t pattern) {
  BitVector v(n);
  for (std::size_t i = 0; i < n && i < 64; ++i) v.set(i, (pattern >> i) & 1);
  return v;
}

PoolEntry entry_of(const BitVector& x, Energy e,
                   MainSearch a = MainSearch::kMaxMin,
                   GeneticOp op = GeneticOp::kMutation) {
  return {x, e, a, op};
}

// ---------------------------------------------------------------------------
// PoolDiversity / measure_diversity

TEST(Diversity, EmptyAndSingletonAreZero) {
  const PoolDiversity none = measure_diversity({}, 16);
  EXPECT_EQ(none.entries, 0u);
  EXPECT_EQ(none.min_hamming, 0u);
  EXPECT_EQ(none.mean_hamming, 0.0);
  EXPECT_EQ(none.entropy, 0.0);

  const PoolDiversity one = measure_diversity({bits_of(16, 0xF)}, 16);
  EXPECT_EQ(one.entries, 1u);
  EXPECT_EQ(one.min_hamming, 0u);
  EXPECT_EQ(one.entropy, 0.0);  // every column is constant
}

TEST(Diversity, KnownPairDistances) {
  // 0000 vs 1111 vs 0011 over 4 bits: pairwise distances 4, 2, 2.
  const std::vector<BitVector> s = {bits_of(4, 0x0), bits_of(4, 0xF),
                                    bits_of(4, 0x3)};
  const PoolDiversity d = measure_diversity(s, 4);
  EXPECT_EQ(d.entries, 3u);
  EXPECT_EQ(d.min_hamming, 2u);
  EXPECT_DOUBLE_EQ(d.mean_hamming, (4.0 + 2.0 + 2.0) / 3.0);
  // Every column has one-count 2 of 3 -> identical per-bit entropy.
  EXPECT_NEAR(d.entropy, -(2.0 / 3.0) * std::log2(2.0 / 3.0) -
                             (1.0 / 3.0) * std::log2(1.0 / 3.0),
              1e-12);
}

TEST(Diversity, MaxEntropyAtBalancedColumns) {
  // Complementary pair: every column is a 50/50 split -> entropy 1.
  const PoolDiversity d =
      measure_diversity({bits_of(8, 0x00), bits_of(8, 0xFF)}, 8);
  EXPECT_DOUBLE_EQ(d.entropy, 1.0);
  EXPECT_EQ(d.min_hamming, 8u);
}

TEST(SolutionPool, DiversityIgnoresInfinitySeeds) {
  Rng rng(7);
  SolutionPool pool(8, 16);
  pool.initialize_random(rng);  // all +inf placeholders
  EXPECT_EQ(pool.diversity().entries, 0u);
  pool.insert(entry_of(bits_of(16, 0x00FF), -5));
  pool.insert(entry_of(bits_of(16, 0xFF00), -4));
  const PoolDiversity d = pool.diversity();
  EXPECT_EQ(d.entries, 2u);
  EXPECT_EQ(d.min_hamming, 16u);
}

TEST(SolutionPool, BestEntriesSnapshotsEvaluatedPrefix) {
  Rng rng(9);
  SolutionPool pool(6, 16);
  pool.initialize_random(rng);
  pool.insert(entry_of(bits_of(16, 1), -10));
  pool.insert(entry_of(bits_of(16, 2), -30));
  pool.insert(entry_of(bits_of(16, 3), -20));
  const auto top2 = pool.best_entries(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].energy, -30);
  EXPECT_EQ(top2[1].energy, -20);
  // Asking for more than the evaluated prefix stops at the +inf seeds.
  EXPECT_EQ(pool.best_entries(100).size(), 3u);
}

// ---------------------------------------------------------------------------
// Island migration

TEST(IslandRing, MigrateCopiesBestToNeighborOnly) {
  MersenneSeeder seeder(11);
  IslandRing ring(3, 8, 16, seeder);
  ring.pool(0).insert(entry_of(bits_of(16, 0xA), -50));
  ring.pool(0).insert(entry_of(bits_of(16, 0xB), -40));
  ring.pool(0).insert(entry_of(bits_of(16, 0xC), -30));

  EXPECT_EQ(ring.migrate(0, 2), 2u);
  // Neighbor (pool 1) received exactly the two best.
  EXPECT_EQ(ring.pool(1).best_energy(), -50);
  EXPECT_EQ(ring.pool(1).entry(1).energy, -40);
  // Pool 2 (not the neighbor) untouched: still all +inf seeds.
  EXPECT_EQ(ring.pool(2).diversity().entries, 0u);
  // Source keeps its entries.
  EXPECT_EQ(ring.pool(0).best_energy(), -50);
}

TEST(IslandRing, MigrateRejectsDuplicatesAndRespectsRules) {
  MersenneSeeder seeder(12);
  IslandRing ring(2, 8, 16, seeder);
  ring.pool(0).insert(entry_of(bits_of(16, 0xA), -50));
  EXPECT_EQ(ring.migrate(0, 4), 1u);  // only one evaluated entry to send
  EXPECT_EQ(ring.migrate(0, 4), 0u);  // second pass: duplicate, rejected
}

TEST(IslandRing, MigrateNoOpOnSingleIslandAndWrapsRing) {
  MersenneSeeder seeder(13);
  IslandRing solo(1, 4, 8, seeder);
  solo.pool(0).insert(entry_of(bits_of(8, 1), -5));
  EXPECT_EQ(solo.migrate(0, 3), 0u);

  IslandRing ring(3, 4, 8, seeder);
  ring.pool(2).insert(entry_of(bits_of(8, 2), -7));
  EXPECT_EQ(ring.migrate(2, 1), 1u);  // wraps to pool 0
  EXPECT_EQ(ring.pool(0).best_energy(), -7);
}

TEST(IslandRing, MigrationDeterministicAcrossIslandCounts) {
  // Same seed -> identical migration outcome, for several ring sizes.
  for (const std::size_t islands : {2u, 3u, 5u}) {
    std::vector<Energy> bests[2];
    for (int run = 0; run < 2; ++run) {
      MersenneSeeder seeder(99);
      IslandRing ring(islands, 8, 16, seeder);
      Rng fill(1234);
      for (std::size_t i = 0; i < islands; ++i) {
        for (int k = 0; k < 4; ++k) {
          ring.pool(i).insert(entry_of(random_solution(16, fill),
                                       -Energy(10 * (k + 1) + Energy(i))));
        }
      }
      for (std::size_t i = 0; i < islands; ++i) (void)ring.migrate(i, 2);
      for (std::size_t i = 0; i < islands; ++i) {
        bests[run].push_back(ring.pool(i).best_energy());
      }
    }
    EXPECT_EQ(bests[0], bests[1]) << islands << " islands";
  }
}

// ---------------------------------------------------------------------------
// Adaptive selector on a rigged reward stream

TEST(AdaptiveSelector, ConvergesOnRiggedRewardStream) {
  // Rig the rewards: only kZero results are ever "accepted" into the pool.
  // With 95 % exploitation over pool records, the selector's choices must
  // converge toward the operation that wins.
  SolutionPool pool(50, 32);
  Rng fill(5);
  for (int i = 0; i < 50; ++i) {
    pool.insert(entry_of(random_solution(32, fill), -i, MainSearch::kMaxMin,
                         GeneticOp::kZero));
  }
  AdaptiveSelector sel;  // full diversity, 5 % exploration
  Rng rng(77);
  int zero_picks = 0;
  const int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (sel.select_operation(pool, rng) == GeneticOp::kZero) ++zero_picks;
  }
  // Exploitation always yields kZero; exploration picks it 1/8 of 5 %.
  // Expected ~95.6 %; demand well above any unrigged share.
  EXPECT_GT(zero_picks, kDraws * 9 / 10);
}

TEST(AdaptiveSelector, WinRateTracksPoolComposition) {
  // 80 % of pool records kBest, 20 % kMutation: the exploit path must
  // reproduce roughly that split (win-rate proportional selection).
  SolutionPool pool(50, 32);
  Rng fill(6);
  for (int i = 0; i < 40; ++i) {
    pool.insert(entry_of(random_solution(32, fill), -i, MainSearch::kMaxMin,
                         GeneticOp::kBest));
  }
  for (int i = 40; i < 50; ++i) {
    pool.insert(entry_of(random_solution(32, fill), -i, MainSearch::kMaxMin,
                         GeneticOp::kMutation));
  }
  AdaptiveSelector sel({MainSearch::kMaxMin},
                       {GeneticOp::kBest, GeneticOp::kMutation},
                       /*explore_prob=*/0.0);
  Rng rng(78);
  int best_picks = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (sel.select_operation(pool, rng) == GeneticOp::kBest) ++best_picks;
  }
  EXPECT_NEAR(double(best_picks) / kDraws, 0.8, 0.05);
}

// ---------------------------------------------------------------------------
// DiversityEngine

EngineConfig small_engine_config(std::size_t islands = 2) {
  EngineConfig cfg;
  cfg.islands = islands;
  cfg.pool_capacity = 10;
  return cfg;
}

TEST(DiversityEngine, ValidatesConfig) {
  EXPECT_THROW(
      { EngineConfig c; c.islands = 0; c.validate(); },
      std::invalid_argument);
  EXPECT_THROW(
      {
        EngineConfig c;
        c.migration_interval = 4;
        c.migration_count = 0;
        c.validate();
      },
      std::invalid_argument);
}

TEST(DiversityEngine, NextPacketIsDeterministic) {
  // Two engines built from the same seed must emit identical packet
  // streams when driven by identical RNGs.
  MersenneSeeder s1(42), s2(42);
  DiversityEngine e1(small_engine_config(), 24, s1);
  DiversityEngine e2(small_engine_config(), 24, s2);
  Rng r1(7), r2(7);
  for (int i = 0; i < 64; ++i) {
    const Packet p1 = e1.next_packet(i % 2, r1);
    const Packet p2 = e2.next_packet(i % 2, r2);
    EXPECT_EQ(p1.algo, p2.algo);
    EXPECT_EQ(p1.op, p2.op);
    EXPECT_TRUE(p1.solution == p2.solution);
    EXPECT_EQ(p1.pool_index, p2.pool_index);
  }
  EXPECT_EQ(e1.generated(), 64u);
}

TEST(DiversityEngine, AcceptResultCountsWins) {
  MersenneSeeder seeder(43);
  DiversityEngine engine(small_engine_config(), 16, seeder);
  Packet p;
  p.solution = bits_of(16, 0xAB);
  p.energy = -12;
  p.algo = MainSearch::kMaxMin;
  p.op = GeneticOp::kZero;
  p.pool_index = 1;
  EXPECT_TRUE(engine.accept_result(p));
  EXPECT_FALSE(engine.accept_result(p));  // duplicate rejected, no win
  EXPECT_EQ(engine.accepted(), 1u);
  std::map<std::string, std::string> extras;
  engine.fill_extras(extras);
  EXPECT_EQ(extras.at("win_op_Zero"), "1");
  EXPECT_EQ(extras.at("packets_accepted"), "1");
  EXPECT_EQ(extras.at("islands"), "2");
}

TEST(DiversityEngine, MigrationHonorsIntervalAndCount) {
  EngineConfig cfg = small_engine_config(2);
  cfg.migration_interval = 4;
  cfg.migration_count = 2;
  MersenneSeeder seeder(44);
  DiversityEngine engine(cfg, 16, seeder);
  // Give island 0 evaluated entries worth migrating.
  for (int k = 0; k < 3; ++k) {
    Packet p;
    p.solution = bits_of(16, 0x10 + k);
    p.energy = -10 - k;
    p.pool_index = 0;
    ASSERT_TRUE(engine.accept_result(p));
  }
  Rng rng(5);
  const auto never = [] { return false; };
  // Not due yet: fewer than `interval` packets generated on island 0.
  EXPECT_EQ(engine.maybe_migrate(0, never), 0u);
  for (int i = 0; i < 4; ++i) (void)engine.next_packet(0, rng);
  const std::size_t moved = engine.maybe_migrate(0, never);
  EXPECT_EQ(moved, 2u);  // migration_count best entries
  EXPECT_EQ(engine.migrations(), 2u);
  EXPECT_EQ(engine.ring().pool(1).best_energy(), -12);
  // Immediately after, the interval gates again.
  EXPECT_EQ(engine.maybe_migrate(0, never), 0u);
}

TEST(DiversityEngine, MigrationCancelledMidWay) {
  EngineConfig cfg = small_engine_config(2);
  cfg.migration_interval = 1;
  cfg.migration_count = 3;
  MersenneSeeder seeder(45);
  DiversityEngine engine(cfg, 16, seeder);
  for (int k = 0; k < 3; ++k) {
    Packet p;
    p.solution = bits_of(16, 0x20 + k);
    p.energy = -20 - k;
    p.pool_index = 0;
    ASSERT_TRUE(engine.accept_result(p));
  }
  Rng rng(6);
  (void)engine.next_packet(0, rng);
  // The cancel callback fires after the first entry is transferred.
  int polls = 0;
  const std::size_t moved =
      engine.maybe_migrate(0, [&polls] { return ++polls > 1; });
  EXPECT_EQ(moved, 1u);  // stopped mid-migration, not after the batch
  EXPECT_EQ(engine.migrations(), 1u);
}

TEST(DiversityEngine, CheckRestartOnMergedRing) {
  EngineConfig cfg = small_engine_config(2);
  MersenneSeeder seeder(46);
  DiversityEngine engine(cfg, 16, seeder);
  // Force both pools to the identical best -> merged ring.
  for (std::uint32_t i = 0; i < 2; ++i) {
    Packet p;
    p.solution = bits_of(16, 0x3C);
    p.energy = -99;
    p.pool_index = i;
    ASSERT_TRUE(engine.accept_result(p));
  }
  EXPECT_TRUE(engine.ring().merged());
  EXPECT_TRUE(engine.check_restart());
  EXPECT_EQ(engine.restarts(), 1u);
  EXPECT_FALSE(engine.ring().merged());  // pools re-randomized to +inf
  EXPECT_FALSE(engine.check_restart());  // nothing merged anymore
}

TEST(DiversityEngine, InjectSeedsThePool) {
  MersenneSeeder seeder(47);
  DiversityEngine engine(small_engine_config(), 16, seeder);
  EXPECT_TRUE(engine.inject(bits_of(16, 0x55), -31, 1));
  EXPECT_EQ(engine.ring().pool(1).best_energy(), -31);
  EXPECT_EQ(engine.best_energy(), -31);
}

// ---------------------------------------------------------------------------
// DabsSolver diversity surface (registry construction, extras, cancellation)

TEST(DabsDiversity, RegistryConstructibleWithIslandOptions) {
  const QuboModel m = random_model(40, 0.3, 8, 9001);
  auto solver = SolverRegistry::global().create(
      "dabs", SolverOptions{{"islands", "3"},
                            {"migrate", "8"},
                            {"migrants", "2"},
                            {"blocks", "2"},
                            {"pool", "20"},
                            {"seed", "7"}});
  SolveRequest req;
  req.model = &m;
  req.stop.max_batches = 200;
  const SolveReport rep = solver->solve(req);
  EXPECT_LE(rep.best_energy, 0);
  EXPECT_EQ(rep.extras.at("islands"), "3");
  EXPECT_TRUE(rep.extras.count("pool_entropy"));
  EXPECT_TRUE(rep.extras.count("pool_min_hamming"));
  EXPECT_TRUE(rep.extras.count("pool_mean_hamming"));
  EXPECT_TRUE(rep.extras.count("migrations"));
}

TEST(DabsDiversity, FixedSeedRunsAreIdentical) {
  const QuboModel m = random_model(50, 0.3, 8, 9002);
  const SolverOptions opts{{"islands", "2"}, {"blocks", "2"},
                           {"migrate", "16"}, {"seed", "1234"},
                           {"pool", "30"}};
  SolveReport reps[2];
  for (int run = 0; run < 2; ++run) {
    auto solver = SolverRegistry::global().create("dabs", opts);
    SolveRequest req;
    req.model = &m;
    req.stop.max_batches = 300;
    reps[run] = solver->solve(req);
  }
  EXPECT_EQ(reps[0].best_energy, reps[1].best_energy);
  EXPECT_TRUE(reps[0].best_solution == reps[1].best_solution);
  EXPECT_EQ(reps[0].batches, reps[1].batches);
  EXPECT_EQ(reps[0].extras.at("migrations"), reps[1].extras.at("migrations"));
  EXPECT_EQ(reps[0].extras.at("pool_entropy"),
            reps[1].extras.at("pool_entropy"));
}

TEST(DabsDiversity, CancellationInterruptsThreadedMigratingRun) {
  const QuboModel m = random_model(60, 0.3, 8, 9003);
  SolverConfig cfg;
  cfg.devices = 2;
  cfg.device.blocks = 2;
  cfg.pool_capacity = 20;
  cfg.mode = ExecutionMode::kThreaded;
  cfg.migration_interval = 2;  // migrate aggressively
  cfg.migration_count = 3;
  cfg.stop.time_limit_seconds = 30.0;  // the token must beat this
  DabsSolver solver(cfg);
  SolveRequest req;
  req.model = &m;
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    req.stop_token.request_stop();
    done.store(true);
  });
  const SolveReport rep = solver.solve(req);
  canceller.join();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(rep.cancelled);
  EXPECT_LT(rep.elapsed_seconds, 29.0);
  EXPECT_LT(rep.best_energy, kInfiniteEnergy);  // real solution regardless
}

TEST(DabsDiversity, WarmStartEntersPoolAndBest) {
  const QuboModel m = random_model(30, 0.4, 8, 9004);
  Rng rng(3);
  const BitVector warm = random_solution(30, rng);
  const Energy warm_energy = m.energy(warm);
  SolverConfig cfg;
  cfg.devices = 2;
  cfg.device.blocks = 1;
  cfg.mode = ExecutionMode::kSynchronous;
  cfg.stop.max_batches = 1;
  DabsSolver solver(cfg);
  SolveRequest req;
  req.model = &m;
  req.warm_start = {warm};
  req.stop.max_batches = 1;
  const SolveReport rep = solver.solve(req);
  EXPECT_LE(rep.best_energy, warm_energy);
}

}  // namespace
}  // namespace dabs
