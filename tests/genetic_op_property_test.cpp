// Parameterized property sweep over every genetic operation: the uniform
// contract each op must satisfy regardless of which one the adaptive host
// happens to select.
#include <gtest/gtest.h>

#include "evolve/genetic_ops.hpp"
#include "evolve/solution_pool.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

constexpr std::array<GeneticOp, kGeneticOpCount> kAllOps = {
    GeneticOp::kRandom,       GeneticOp::kBest,
    GeneticOp::kMutation,     GeneticOp::kCrossover,
    GeneticOp::kXrossover,    GeneticOp::kZero,
    GeneticOp::kOne,          GeneticOp::kIntervalZero,
    GeneticOp::kMutateCrossover};

class GeneticOpProperty : public ::testing::TestWithParam<GeneticOp> {
 protected:
  static constexpr std::size_t kN = 192;

  void SetUp() override {
    pool_ = std::make_unique<SolutionPool>(8, kN);
    neighbor_ = std::make_unique<SolutionPool>(8, kN);
    Rng fill(101);
    for (int i = 0; i < 8; ++i) {
      pool_->insert({testing::random_solution(kN, fill), -100 - i,
                     MainSearch::kMaxMin, GeneticOp::kRandom});
      neighbor_->insert({testing::random_solution(kN, fill), -50 - i,
                         MainSearch::kMaxMin, GeneticOp::kRandom});
    }
  }

  std::unique_ptr<SolutionPool> pool_, neighbor_;
};

TEST_P(GeneticOpProperty, OutputHasRequestedLength) {
  Rng rng(1);
  const BitVector t =
      apply_genetic_op(GetParam(), kN, *pool_, neighbor_.get(), rng);
  EXPECT_EQ(t.size(), kN);
}

TEST_P(GeneticOpProperty, DeterministicGivenRngState) {
  Rng a(42), b(42);
  const BitVector ta =
      apply_genetic_op(GetParam(), kN, *pool_, neighbor_.get(), a);
  const BitVector tb =
      apply_genetic_op(GetParam(), kN, *pool_, neighbor_.get(), b);
  EXPECT_EQ(ta, tb);
}

TEST_P(GeneticOpProperty, DoesNotMutateThePools) {
  Rng rng(7);
  const PoolEntry before0 = pool_->entry(0);
  const PoolEntry before7 = pool_->entry(7);
  (void)apply_genetic_op(GetParam(), kN, *pool_, neighbor_.get(), rng);
  EXPECT_EQ(pool_->size(), 8u);
  EXPECT_EQ(pool_->entry(0).solution, before0.solution);
  EXPECT_EQ(pool_->entry(7).solution, before7.solution);
}

TEST_P(GeneticOpProperty, WorksWithSingletonPool) {
  SolutionPool tiny(1, kN);
  Rng fill(9);
  tiny.insert({testing::random_solution(kN, fill), -1, MainSearch::kMaxMin,
               GeneticOp::kRandom});
  Rng rng(11);
  const BitVector t = apply_genetic_op(GetParam(), kN, tiny, nullptr, rng);
  EXPECT_EQ(t.size(), kN);
}

TEST_P(GeneticOpProperty, WorksAtTinyBitWidths) {
  for (const std::size_t n : {1u, 2u, 3u, 63u, 64u, 65u}) {
    SolutionPool small(2, n);
    Rng fill(13);
    small.insert({testing::random_solution(n, fill), -1, MainSearch::kMaxMin,
                  GeneticOp::kRandom});
    small.insert({testing::random_solution(n, fill), -2, MainSearch::kMaxMin,
                  GeneticOp::kRandom});
    Rng rng(17);
    const BitVector t = apply_genetic_op(GetParam(), n, small, &small, rng);
    EXPECT_EQ(t.size(), n) << "n=" << n;
    // Tail bits beyond n stay clear (count() would otherwise overshoot).
    EXPECT_LE(t.count(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, GeneticOpProperty,
                         ::testing::ValuesIn(kAllOps),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace dabs
