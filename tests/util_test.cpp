// Unit tests for util: BitVector, Histogram, SummaryStats, ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "rng/xorshift.hpp"
#include "util/bit_vector.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dabs {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetGetFlip) {
  BitVector v(100);
  v.set(3, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(3));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_EQ(v.count(), 3u);
  EXPECT_FALSE(v.flip(3));
  EXPECT_TRUE(v.flip(5));
  EXPECT_EQ(v.count(), 3u);
  EXPECT_FALSE(v.get(3));
  EXPECT_TRUE(v.get(5));
}

TEST(BitVector, FillAndClearRespectTail) {
  BitVector v(70);  // 6 bits used in the second word
  v.fill(true);
  EXPECT_EQ(v.count(), 70u);
  // Tail bits beyond n must be masked so count/equality stay exact.
  EXPECT_EQ(v.words()[1] >> 6, 0u);
  v.clear();
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, EqualityIgnoresNothing) {
  BitVector a(65), b(65);
  EXPECT_EQ(a, b);
  a.set(64, true);
  EXPECT_NE(a, b);
  b.set(64, true);
  EXPECT_EQ(a, b);
}

TEST(BitVector, HammingDistance) {
  BitVector a(128), b(128);
  EXPECT_EQ(a.hamming_distance(b), 0u);
  a.set(0, true);
  a.set(127, true);
  b.set(127, true);
  b.set(63, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);  // bits 0 and 63 differ
}

TEST(BitVector, HammingDistanceLengthMismatchThrows) {
  BitVector a(10), b(11);
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
}

TEST(BitVector, FirstDifference) {
  BitVector a(100), b(100);
  EXPECT_EQ(a.first_difference(b), 100u);
  b.set(77, true);
  EXPECT_EQ(a.first_difference(b), 77u);
  b.set(5, true);
  EXPECT_EQ(a.first_difference(b), 5u);
}

TEST(BitVector, StringRoundTrip) {
  const std::string s = "0110010111010001";
  const BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count(), 8u);
}

TEST(BitVector, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVector::from_string("01x"), std::invalid_argument);
}

TEST(BitVector, HashDiffersForDifferentContent) {
  BitVector a(256), b(256);
  b.set(200, true);
  EXPECT_NE(a.hash(), b.hash());
  // Length participates in the hash too.
  BitVector c(255);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(BitVector, HashStableAcrossCopies) {
  Rng rng(7);
  BitVector a(301);
  for (std::size_t i = 0; i < a.size(); ++i) a.set(i, rng.next_bit());
  const BitVector b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Histogram, BinsCoverHalfOpenRanges) {
  Histogram h(0.0, 2.0, 0.1);  // paper Fig. 5 style bins
  EXPECT_EQ(h.bin_count(), 20u);
  h.add(0.0);    // [0.0, 0.1)
  h.add(0.099);  // [0.0, 0.1)
  h.add(0.1);    // [0.1, 0.2)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(1.0, 2.0, 0.5);
  h.add(0.5);
  h.add(2.0);  // hi edge belongs to overflow
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinLabelsAreLeftEdges) {
  Histogram h(0.0, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 0.1), std::invalid_argument);
}

TEST(Histogram, TableRendersEveryBin) {
  Histogram h(0.0, 1.0, 0.5);
  h.add(0.1);
  const std::string t = h.to_table();
  EXPECT_NE(t.find("0.0"), std::string::npos);
  EXPECT_NE(t.find("0.5"), std::string::npos);
}

TEST(SummaryStats, MatchesDirectComputation) {
  SummaryStats s;
  const double xs[] = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  // Sample variance: sum((x-4)^2)/4 = (9+4+1+0+36)/4 = 12.5
  EXPECT_NEAR(s.variance(), 12.5, 1e-12);
}

TEST(SummaryStats, EmptyAndSingleSample) {
  SummaryStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, QueueDepthAndActiveCountTrackWork) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.active_count(), 0u);

  // Park both workers so queued tasks are observable.
  std::mutex mu;
  std::condition_variable cv;
  int parked = 0;
  bool release = false;
  const auto blocker = [&] {
    std::unique_lock lock(mu);
    ++parked;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  pool.submit(blocker);
  pool.submit(blocker);
  {
    // Wait until both workers are inside a task: active_count is exact.
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return parked == 2; });
  }
  EXPECT_EQ(pool.active_count(), 2u);
  EXPECT_EQ(pool.queue_depth(), 0u);

  for (int i = 0; i < 5; ++i) {
    pool.submit([] {});
  }
  EXPECT_EQ(pool.queue_depth(), 5u);  // nobody free to pick them up

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.active_count(), 0u);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  // wait_idle covers nested submissions because active_ stays > 0 while the
  // outer task runs.
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace dabs
