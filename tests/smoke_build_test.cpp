// Build-level smoke test: tests/CMakeLists.txt generates one translation
// unit per public header under src/, each of which includes exactly that
// header first (so the header must be self-contained), includes it twice
// (so it must be include-guarded), and registers itself below.  If any
// header stops compiling standalone, this target fails to build; the
// runtime assertion catches generation/wiring drift.
#include <gtest/gtest.h>

#ifndef DABS_SMOKE_EXPECTED_HEADERS
#error "smoke_build_test must be built through tests/CMakeLists.txt"
#endif

int& dabs_smoke_header_count() {
  static int count = 0;
  return count;
}

int dabs_smoke_register_header() { return ++dabs_smoke_header_count(); }

namespace {

TEST(SmokeBuild, EveryPublicHeaderIsSelfContained) {
  EXPECT_EQ(dabs_smoke_header_count(), DABS_SMOKE_EXPECTED_HEADERS)
      << "a generated per-header TU was dropped from the build";
  EXPECT_GE(DABS_SMOKE_EXPECTED_HEADERS, 50)
      << "suspiciously few headers were globbed from src/";
}

}  // namespace
