// Tests for the bulk-parallel replica engine: BulkSearchState must be
// bit-exact against R independent SearchStates fed the same per-replica
// flip sequences — on both backends, at every delta width (int16/32/64),
// with ragged lane counts (R % 64 != 0), and sharded across a ThreadPool —
// plus BulkBatchSearch policy/budget sanity and cancellation under the
// bulk device path.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "search/bulk_batch_search.hpp"
#include "search/bulk_search_state.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace dabs {
namespace {

using testing::naive_energy;
using testing::random_model;
using testing::random_solution;

constexpr std::size_t kLanes = BulkSearchState::kLanesPerBlock;

/// Reference harness: R scalar SearchStates driven in lockstep with one
/// BulkSearchState, comparing all observable state after every operation.
struct Harness {
  BulkSearchState bulk;
  std::vector<std::unique_ptr<SearchState>> refs;
  std::size_t blocks;

  Harness(const QuboModel& m, std::size_t replicas)
      : bulk(m, replicas), blocks(bulk.block_count()) {
    refs.reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
      refs.push_back(std::make_unique<SearchState>(m));
    }
  }

  std::size_t replicas() const { return refs.size(); }

  bool lane(const std::vector<std::uint64_t>& masks, std::size_t pos,
            std::size_t r) const {
    return (masks[pos * blocks + r / kLanes] >> (r % kLanes)) & 1;
  }

  /// Random per-position lane masks for a chunk of `count` positions.
  std::vector<std::uint64_t> random_masks(std::size_t count, Rng& rng) {
    std::vector<std::uint64_t> m(count * blocks);
    for (auto& w : m) w = rng();
    return m;
  }

  /// Distinct random indices.
  std::vector<VarIndex> random_chunk(std::size_t count, Rng& rng) {
    const std::size_t n = bulk.size();
    std::vector<VarIndex> idx;
    while (idx.size() < count) {
      const auto i = static_cast<VarIndex>(rng.next_index(n));
      if (std::find(idx.begin(), idx.end(), i) == idx.end()) {
        idx.push_back(i);
      }
    }
    return idx;
  }

  void apply_flip_chunk(std::span<const VarIndex> idx,
                        const std::vector<std::uint64_t>& masks) {
    bulk.flip_chunk(idx, masks);
    for (std::size_t p = 0; p < idx.size(); ++p) {
      for (std::size_t r = 0; r < replicas(); ++r) {
        if (lane(masks, p, r)) refs[r]->flip(idx[p]);
      }
    }
  }

  void apply_descend_chunk(std::span<const VarIndex> idx,
                           const std::vector<std::uint64_t>& masks,
                           std::vector<std::uint64_t>* applied_out = nullptr) {
    std::vector<std::uint64_t> applied(masks.size(), ~std::uint64_t{0});
    bulk.descend_chunk(idx, masks, applied);
    for (std::size_t p = 0; p < idx.size(); ++p) {
      for (std::size_t r = 0; r < replicas(); ++r) {
        const bool selected = lane(masks, p, r);
        const bool should = selected && refs[r]->delta(idx[p]) < 0;
        if (should) refs[r]->flip(idx[p]);
        ASSERT_EQ(should, lane(applied, p, r))
            << "applied mask mismatch at pos " << p << " replica " << r;
      }
    }
    if (applied_out != nullptr) *applied_out = std::move(applied);
  }

  void apply_scan() {
    std::vector<ScanResult> out(replicas());
    bulk.scan(out);
    for (std::size_t r = 0; r < replicas(); ++r) {
      const ScanResult want = refs[r]->scan();
      ASSERT_EQ(want.min_delta, out[r].min_delta) << "replica " << r;
      ASSERT_EQ(want.max_delta, out[r].max_delta) << "replica " << r;
      ASSERT_EQ(want.argmin, out[r].argmin) << "replica " << r;
    }
  }

  void apply_flip_and_scan(VarIndex i,
                           const std::vector<std::uint64_t>& mask) {
    std::vector<ScanResult> out(replicas());
    bulk.flip_and_scan(i, mask, out);
    for (std::size_t r = 0; r < replicas(); ++r) {
      if (lane(mask, 0, r)) refs[r]->flip(i);
      const ScanResult want = refs[r]->scan();
      ASSERT_EQ(want.min_delta, out[r].min_delta) << "replica " << r;
      ASSERT_EQ(want.argmin, out[r].argmin) << "replica " << r;
    }
  }

  /// Compares every observable per-replica quantity.
  void check_all(const char* where) {
    const std::size_t n = bulk.size();
    for (std::size_t r = 0; r < replicas(); ++r) {
      const SearchState& ref = *refs[r];
      ASSERT_EQ(ref.energy(), bulk.energy(r)) << where << " replica " << r;
      ASSERT_EQ(ref.best_energy(), bulk.best_energy(r))
          << where << " replica " << r;
      ASSERT_EQ(ref.flip_count(), bulk.flip_count(r))
          << where << " replica " << r;
      ASSERT_EQ(ref.solution(), bulk.solution(r)) << where << " replica " << r;
      ASSERT_EQ(ref.best(), bulk.best(r)) << where << " replica " << r;
      ASSERT_EQ(ref.is_local_minimum(), bulk.is_local_minimum(r))
          << where << " replica " << r;
      for (VarIndex k = 0; k < static_cast<VarIndex>(n); ++k) {
        ASSERT_EQ(ref.delta(k), bulk.delta(r, k))
            << where << " replica " << r << " k " << k;
        ASSERT_EQ(ref.solution().get(k), bulk.get(r, k))
            << where << " replica " << r << " k " << k;
      }
    }
  }

  /// A deterministic mixed-op script exercising every bulk operation.
  void run_script(std::uint64_t seed, std::size_t rounds) {
    Rng rng(seed);
    // Diverge the replicas first.
    for (std::size_t r = 0; r < replicas(); ++r) {
      const BitVector x = random_solution(bulk.size(), rng);
      bulk.reset_to(r, x);
      refs[r]->reset_to(x);
    }
    check_all("after reset_to");
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::size_t count = 1 + rng.next_index(BulkSearchState::kMaxChunk);
      const std::vector<VarIndex> idx = random_chunk(count, rng);
      switch (rng.next_index(5)) {
        case 0:
          apply_flip_chunk(idx, random_masks(count, rng));
          break;
        case 1:
          apply_descend_chunk(idx, random_masks(count, rng));
          break;
        case 2:
          apply_scan();
          break;
        case 3:
          apply_flip_and_scan(idx[0], random_masks(1, rng));
          break;
        case 4: {
          const auto r = rng.next_index(replicas());
          bulk.reset_best(r);
          refs[r]->reset_best();
          break;
        }
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    check_all("after script");
  }
};

TEST(BulkSearchState, BitExactAgainstScalarReplicas) {
  // n % 64 != 0 and R values covering one partial block (1, 3), one full
  // block (64), and several blocks with a ragged tail (200).
  for (const QuboBackend backend : {QuboBackend::kDense, QuboBackend::kCsr}) {
    const QuboModel m = random_model(129, 0.3, 9, 42, backend);
    for (const std::size_t replicas : {1u, 3u, 64u, 200u}) {
      SCOPED_TRACE(::testing::Message()
                   << "backend " << static_cast<int>(backend) << " R "
                   << replicas);
      Harness h(m, replicas);
      h.run_script(1000 + replicas, 40);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(BulkSearchState, BitExactOnDenserModel) {
  const QuboModel m = random_model(300, 0.6, 9, 43, QuboBackend::kDense);
  Harness h(m, 70);
  h.run_script(7, 30);
}

TEST(BulkSearchState, Int32DeltaPathIsExact) {
  // Weights up to 1e5 push the worst-case |Delta| bound past int16.
  const QuboModel m = random_model(80, 0.5, 100000, 44, QuboBackend::kDense);
  Harness h(m, 66);
  h.run_script(8, 25);
}

TEST(BulkSearchState, Int64DeltaPathIsExact) {
  // Weights near 2^29 on 16 variables push the bound past int32.
  const QuboModel m =
      random_model(16, 1.0, 1 << 29, 45, QuboBackend::kDense);
  Harness h(m, 10);
  h.run_script(9, 25);
}

TEST(BulkSearchState, ShardedExecutionIsBitIdentical) {
  const QuboModel m = random_model(150, 0.4, 9, 46, QuboBackend::kCsr);
  constexpr std::size_t kReplicas = 200;  // 4 blocks, ragged tail
  BulkSearchState plain(m, kReplicas);
  BulkSearchState sharded(m, kReplicas);
  ThreadPool pool(3);
  sharded.set_thread_pool(&pool);

  Rng rng(47);
  for (std::size_t r = 0; r < kReplicas; ++r) {
    const BitVector x = random_solution(m.size(), rng);
    plain.reset_to(r, x);
    sharded.reset_to(r, x);
  }
  const std::size_t blocks = plain.block_count();
  std::vector<ScanResult> out_a(kReplicas), out_b(kReplicas);
  for (std::size_t round = 0; round < 25; ++round) {
    std::vector<VarIndex> idx;
    std::vector<std::uint64_t> masks;
    const std::size_t count = 1 + rng.next_index(BulkSearchState::kMaxChunk);
    while (idx.size() < count) {
      const auto i = static_cast<VarIndex>(rng.next_index(m.size()));
      if (std::find(idx.begin(), idx.end(), i) == idx.end()) idx.push_back(i);
    }
    for (std::size_t p = 0; p < count * blocks; ++p) masks.push_back(rng());
    if (round % 2 == 0) {
      plain.flip_chunk(idx, masks);
      sharded.flip_chunk(idx, masks);
    } else {
      plain.descend_chunk(idx, masks);
      sharded.descend_chunk(idx, masks);
    }
    plain.scan(out_a);
    sharded.scan(out_b);
    for (std::size_t r = 0; r < kReplicas; ++r) {
      ASSERT_EQ(out_a[r].min_delta, out_b[r].min_delta);
      ASSERT_EQ(out_a[r].argmin, out_b[r].argmin);
      ASSERT_EQ(plain.energy(r), sharded.energy(r));
    }
  }
  for (std::size_t r = 0; r < kReplicas; ++r) {
    ASSERT_EQ(plain.solution(r), sharded.solution(r));
    ASSERT_EQ(plain.best(r), sharded.best(r));
    ASSERT_EQ(plain.best_energy(r), sharded.best_energy(r));
  }
}

TEST(BulkSearchState, RejectsInvalidArguments) {
  const QuboModel m = random_model(20, 0.5, 9, 48);
  EXPECT_THROW(BulkSearchState(m, 0), std::invalid_argument);
  BulkSearchState s(m, 3);
  const std::vector<VarIndex> dup = {1, 1};
  const std::vector<std::uint64_t> masks(2, ~std::uint64_t{0});
  EXPECT_THROW(s.flip_chunk(dup, masks), std::invalid_argument);
  const std::vector<VarIndex> big = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<std::uint64_t> masks9(9, ~std::uint64_t{0});
  EXPECT_THROW(s.flip_chunk(big, masks9), std::invalid_argument);
  EXPECT_THROW(s.energy(3), std::invalid_argument);
}

TEST(BulkBatchSearch, ResultsAreConsistentAndBudgeted) {
  const QuboModel m = random_model(120, 0.4, 9, 49);
  BatchParams p;
  p.search_flip_factor = 0.2;
  p.batch_flip_factor = 1.0;
  constexpr std::size_t kReplicas = 70;
  BulkBatchSearch bulk(m, p, kReplicas, 50);

  Rng rng(51);
  std::vector<BitVector> targets;
  for (std::size_t r = 0; r < 40; ++r) {  // fewer targets than replicas
    targets.push_back(random_solution(m.size(), rng));
  }
  const std::vector<BatchResult> results = bulk.run(targets);
  ASSERT_EQ(results.size(), targets.size());
  const auto budget = static_cast<std::uint64_t>(
      p.batch_flip_factor * static_cast<double>(m.size()));
  for (std::size_t r = 0; r < results.size(); ++r) {
    // Reported energy must match an independent evaluation of the vector.
    EXPECT_EQ(naive_energy(m, results[r].best), results[r].best_energy);
    // The batch starts at the zero vector, so the walk costs
    // popcount(target); everything after is budget-clamped with at most
    // kMaxChunk overshoot per replica.
    std::uint64_t hamming = 0;
    for (std::size_t k = 0; k < m.size(); ++k) {
      hamming += targets[r].get(k) ? 1 : 0;
    }
    EXPECT_GE(results[r].flips, hamming);
    EXPECT_LE(results[r].flips,
              hamming + budget + BulkSearchState::kMaxChunk);
    // The best found cannot be worse than the raw target.
    EXPECT_LE(results[r].best_energy, naive_energy(m, targets[r]));
  }

  // State persists: a second batch keeps accumulating per-replica flips,
  // while replicas outside the new (smaller) target set stay untouched.
  const std::uint64_t after_first = bulk.state().flip_count(0);
  const std::uint64_t untouched = bulk.state().flip_count(30);
  EXPECT_GT(after_first, 0u);
  const std::vector<BatchResult> again =
      bulk.run(std::span<const BitVector>(targets.data(), 8));
  ASSERT_EQ(again.size(), 8u);
  EXPECT_GT(bulk.state().flip_count(0), after_first);
  EXPECT_EQ(bulk.state().flip_count(30), untouched);
}

TEST(BulkBatchSearch, SingleReplicaSingleTargetWorks) {
  const QuboModel m = random_model(60, 0.5, 9, 52);
  BatchParams p;
  BulkBatchSearch bulk(m, p, 1, 53);
  Rng rng(54);
  const BitVector target = random_solution(m.size(), rng);
  const std::vector<BatchResult> r = bulk.run({&target, 1});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(naive_energy(m, r[0].best), r[0].best_energy);
}

TEST(BulkBatchSearch, RejectsBadTargetCounts) {
  const QuboModel m = random_model(30, 0.5, 9, 55);
  BatchParams p;
  BulkBatchSearch bulk(m, p, 4, 56);
  std::vector<BitVector> none;
  EXPECT_THROW(bulk.run(none), std::invalid_argument);
  std::vector<BitVector> five(5, BitVector(30));
  EXPECT_THROW(bulk.run(five), std::invalid_argument);
}

TEST(BulkDevice, CancellationUnderBulkReplicas) {
  // The threaded dabs pipeline with bulk blocks must still unwind within
  // the grace period when the StopToken fires mid-run.
  const QuboModel m = random_model(150, 0.5, 9, 57);
  const std::unique_ptr<Solver> solver = SolverRegistry::global().create(
      "dabs", SolverOptions{{"replicas", "8"}, {"devices", "1"},
                            {"blocks", "2"}});
  SolveRequest req;
  req.model = &m;
  req.stop.time_limit_seconds = 30.0;  // backstop only; token should win
  req.seed = 58;
  StopToken token = req.stop_token;
  std::thread firer([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token.request_stop();
  });
  const SolveReport report = solver->solve(req);
  firer.join();
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(m.energy(report.best_solution), report.best_energy);
}

}  // namespace
}  // namespace dabs
