// Tests for the DABS orchestration: stop conditions, statistics, restricted
// diversity, determinism, and correctness against exhaustive optima.
#include <gtest/gtest.h>

#include "baseline/abs_solver.hpp"
#include "baseline/exhaustive.hpp"
#include "core/dabs_solver.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;

SolverConfig quick_config() {
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.device.batch.search_flip_factor = 0.2;
  c.device.batch.batch_flip_factor = 0.5;
  c.pool_capacity = 10;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.max_batches = 200;
  return c;
}

TEST(SolverConfig, ValidateRejectsUnboundedRuns) {
  // An unbounded stop is legal at configuration time (a SolveRequest may
  // supply the budget later) but a run must be bounded when it starts.
  const QuboModel m = random_model(8, 0.5, 9, 3999);
  SolverConfig c = quick_config();
  c.stop = {};
  DabsSolver solver{c};  // construction is configuration: no throw
  EXPECT_THROW((void)solver.solve(m), std::invalid_argument);
  SolveRequest req;
  req.model = &m;
  EXPECT_THROW((void)solver.solve(req), std::invalid_argument);
  req.stop.max_batches = 10;
  EXPECT_NO_THROW((void)solver.solve(req));
}

TEST(SolverConfig, ValidateRejectsNonsense) {
  SolverConfig c = quick_config();
  c.devices = 0;
  EXPECT_THROW(DabsSolver{c}, std::invalid_argument);
  c = quick_config();
  c.algorithms.clear();
  EXPECT_THROW(DabsSolver{c}, std::invalid_argument);
  c = quick_config();
  c.explore_prob = 1.5;
  EXPECT_THROW(DabsSolver{c}, std::invalid_argument);
}

TEST(DabsSolver, FindsExhaustiveOptimumOnSmallModel) {
  const QuboModel m = random_model(18, 0.5, 9, 4000);
  const BaselineResult truth = ExhaustiveSolver().solve(m);

  SolverConfig c = quick_config();
  c.stop.max_batches = 400;
  c.stop.target_energy = truth.best_energy;
  DabsSolver solver(c);
  const SolveResult r = solver.solve(m);
  EXPECT_TRUE(r.reached_target);
  EXPECT_EQ(r.best_energy, truth.best_energy);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
}

TEST(DabsSolver, MaxBatchesStopsTheRun) {
  const QuboModel m = random_model(30, 0.5, 9, 4001);
  SolverConfig c = quick_config();
  c.stop.max_batches = 50;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_GE(r.batches, 50u);
  EXPECT_LE(r.batches, 50u + c.devices);  // at most one overshoot per pool
  EXPECT_FALSE(r.reached_target);
}

TEST(DabsSolver, TargetEnergyRecordsTts) {
  const QuboModel m = random_model(16, 0.5, 9, 4002);
  SolverConfig c = quick_config();
  c.stop.max_batches = 1000;
  c.stop.target_energy = 0;  // trivially reachable (zero vector energy 0)
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_TRUE(r.reached_target);
  EXPECT_GE(r.tts_seconds, 0.0);
  EXPECT_LE(r.tts_seconds, r.elapsed_seconds + 1e-9);
  EXPECT_LE(r.best_energy, 0);
}

TEST(DabsSolver, TimeLimitStopsTheRun) {
  const QuboModel m = random_model(64, 0.5, 9, 4003);
  SolverConfig c = quick_config();
  c.stop.max_batches = 0;
  c.stop.time_limit_seconds = 0.2;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_GE(r.elapsed_seconds, 0.2);
  EXPECT_LT(r.elapsed_seconds, 5.0);
}

TEST(DabsSolver, StatsCountEveryBatch) {
  const QuboModel m = random_model(24, 0.5, 9, 4004);
  SolverConfig c = quick_config();
  c.stop.max_batches = 60;
  const SolveResult r = DabsSolver(c).solve(m);
  std::uint64_t algo_total = 0, op_total = 0;
  for (const auto v : r.stats.algo_executed) algo_total += v;
  for (const auto v : r.stats.op_executed) op_total += v;
  EXPECT_EQ(algo_total, r.batches);
  EXPECT_EQ(op_total, r.batches);
  EXPECT_EQ(r.stats.batches, r.batches);
}

TEST(DabsSolver, ImprovementTraceIsMonotone) {
  const QuboModel m = random_model(32, 0.5, 9, 4005);
  SolverConfig c = quick_config();
  c.stop.max_batches = 100;
  const SolveResult r = DabsSolver(c).solve(m);
  ASSERT_FALSE(r.stats.improvements.empty());
  for (std::size_t i = 1; i < r.stats.improvements.size(); ++i) {
    EXPECT_LT(r.stats.improvements[i].energy,
              r.stats.improvements[i - 1].energy);
    EXPECT_GE(r.stats.improvements[i].at_seconds,
              r.stats.improvements[i - 1].at_seconds);
  }
  EXPECT_EQ(r.stats.improvements.back().energy, r.best_energy);
}

TEST(DabsSolver, FirstFinderMatchesFinalImprovement) {
  const QuboModel m = random_model(20, 0.5, 9, 4006);
  SolverConfig c = quick_config();
  c.stop.max_batches = 80;
  const SolveResult r = DabsSolver(c).solve(m);
  MainSearch algo{};
  GeneticOp op{};
  ASSERT_TRUE(r.stats.first_finder(algo, op));
  EXPECT_EQ(algo, r.stats.improvements.back().algo);
  EXPECT_EQ(op, r.stats.improvements.back().op);
}

TEST(DabsSolver, RestrictedAlgorithmSetIsHonored) {
  const QuboModel m = random_model(24, 0.5, 9, 4007);
  SolverConfig c = quick_config();
  c.algorithms = {MainSearch::kPositiveMin};
  c.stop.max_batches = 40;
  const SolveResult r = DabsSolver(c).solve(m);
  for (const MainSearch s : kAllMainSearches) {
    if (s == MainSearch::kPositiveMin) {
      EXPECT_EQ(r.stats.algo_executed[std::size_t(s)], r.batches);
    } else {
      EXPECT_EQ(r.stats.algo_executed[std::size_t(s)], 0u);
    }
  }
}

TEST(DabsSolver, SynchronousModeIsDeterministic) {
  const QuboModel m = random_model(28, 0.5, 9, 4008);
  SolverConfig c = quick_config();
  c.stop.max_batches = 60;
  c.seed = 987;
  const SolveResult a = DabsSolver(c).solve(m);
  const SolveResult b = DabsSolver(c).solve(m);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_solution, b.best_solution);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.stats.algo_executed, b.stats.algo_executed);
  EXPECT_EQ(a.stats.op_executed, b.stats.op_executed);
}

TEST(DabsSolver, DifferentSeedsExploreDifferently) {
  const QuboModel m = random_model(28, 0.5, 9, 4009);
  SolverConfig c = quick_config();
  c.stop.max_batches = 60;
  c.seed = 1;
  const SolveResult a = DabsSolver(c).solve(m);
  c.seed = 2;
  const SolveResult b = DabsSolver(c).solve(m);
  EXPECT_TRUE(a.stats.algo_executed != b.stats.algo_executed ||
              a.best_solution != b.best_solution ||
              a.stats.op_executed != b.stats.op_executed);
}

TEST(DabsSolver, ThreadedModeSolvesAndStopsCleanly) {
  const QuboModel m = random_model(40, 0.5, 9, 4010);
  SolverConfig c = quick_config();
  c.mode = ExecutionMode::kThreaded;
  c.stop.max_batches = 100;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_GE(r.batches, 100u);
  EXPECT_NE(r.best_energy, kInfiniteEnergy);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
}

TEST(DabsSolver, ThreadedModeReachesExhaustiveOptimum) {
  const QuboModel m = random_model(14, 0.6, 9, 4011);
  const BaselineResult truth = ExhaustiveSolver().solve(m);
  SolverConfig c = quick_config();
  c.mode = ExecutionMode::kThreaded;
  c.stop.max_batches = 0;
  c.stop.time_limit_seconds = 10.0;
  c.stop.target_energy = truth.best_energy;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_TRUE(r.reached_target);
  EXPECT_EQ(r.best_energy, truth.best_energy);
}

TEST(DabsSolver, SingleDeviceRunWorks) {
  const QuboModel m = random_model(20, 0.5, 9, 4012);
  SolverConfig c = quick_config();
  c.devices = 1;
  c.stop.max_batches = 40;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_NE(r.best_energy, kInfiniteEnergy);
}

TEST(AbsSolver, ConfigRestrictsToCyclicMinAndMutateCrossover) {
  const SolverConfig c = make_abs_config(quick_config());
  ASSERT_EQ(c.algorithms.size(), 1u);
  EXPECT_EQ(c.algorithms[0], MainSearch::kCyclicMin);
  ASSERT_EQ(c.operations.size(), 1u);
  EXPECT_EQ(c.operations[0], GeneticOp::kMutateCrossover);
  EXPECT_EQ(c.explore_prob, 0.0);
  EXPECT_FALSE(c.restart_on_merge);
}

TEST(AbsSolver, RunsAndOnlyUsesItsFeatureSet) {
  const QuboModel m = random_model(24, 0.5, 9, 4013);
  SolverConfig base = quick_config();
  base.stop.max_batches = 40;
  AbsSolver abs(base);
  const SolveResult r = abs.solve(m);
  EXPECT_EQ(r.stats.algo_executed[std::size_t(MainSearch::kCyclicMin)],
            r.batches);
  EXPECT_EQ(r.stats.op_executed[std::size_t(GeneticOp::kMutateCrossover)],
            r.batches);
}

TEST(RunStats, SnapshotIsIndependentCopy) {
  RunStats stats;
  stats.record_batch(MainSearch::kMaxMin, GeneticOp::kZero);
  const RunStatsSnapshot snap = stats.snapshot();
  stats.record_batch(MainSearch::kMaxMin, GeneticOp::kZero);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(stats.snapshot().batches, 2u);
}

TEST(RunStats, FractionsSumToOne) {
  RunStats stats;
  stats.record_batch(MainSearch::kMaxMin, GeneticOp::kZero);
  stats.record_batch(MainSearch::kCyclicMin, GeneticOp::kOne);
  stats.record_batch(MainSearch::kCyclicMin, GeneticOp::kOne);
  const RunStatsSnapshot snap = stats.snapshot();
  double algo_sum = 0, op_sum = 0;
  for (const MainSearch s : kAllMainSearches) algo_sum += snap.algo_fraction(s);
  for (std::size_t i = 0; i < kGeneticOpCount; ++i) {
    op_sum += snap.op_fraction(static_cast<GeneticOp>(i));
  }
  EXPECT_DOUBLE_EQ(algo_sum, 1.0);
  EXPECT_DOUBLE_EQ(op_sum, 1.0);
}

TEST(RunStats, ToStringMentionsAlgorithms) {
  RunStats stats;
  stats.record_batch(MainSearch::kRandomMin, GeneticOp::kBest);
  stats.record_improvement(0.5, -10, MainSearch::kRandomMin,
                           GeneticOp::kBest);
  const std::string s = stats.snapshot().to_string();
  EXPECT_NE(s.find("RandomMin"), std::string::npos);
  EXPECT_NE(s.find("Best"), std::string::npos);
}

}  // namespace
}  // namespace dabs
