// Tests for the GA host machinery: solution pool, genetic operations,
// adaptive selector, island ring.
#include <gtest/gtest.h>

#include <map>

#include "evolve/adaptive_selector.hpp"
#include "evolve/genetic_ops.hpp"
#include "evolve/island_ring.hpp"
#include "evolve/solution_pool.hpp"
#include "rng/seeder.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_solution;

PoolEntry entry_of(const BitVector& x, Energy e,
                   MainSearch a = MainSearch::kMaxMin,
                   GeneticOp op = GeneticOp::kMutation) {
  return {x, e, a, op};
}

BitVector vec_with_value(std::size_t n, std::uint64_t pattern) {
  BitVector v(n);
  for (std::size_t i = 0; i < n && i < 64; ++i) v.set(i, (pattern >> i) & 1);
  return v;
}

TEST(SolutionPool, InsertKeepsAscendingOrder) {
  SolutionPool pool(5, 16);
  pool.insert(entry_of(vec_with_value(16, 1), -10));
  pool.insert(entry_of(vec_with_value(16, 2), -30));
  pool.insert(entry_of(vec_with_value(16, 3), -20));
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.entry(0).energy, -30);
  EXPECT_EQ(pool.entry(1).energy, -20);
  EXPECT_EQ(pool.entry(2).energy, -10);
}

TEST(SolutionPool, RejectsWorseThanWorstWhenFull) {
  SolutionPool pool(2, 16);
  EXPECT_TRUE(pool.insert(entry_of(vec_with_value(16, 1), -5)));
  EXPECT_TRUE(pool.insert(entry_of(vec_with_value(16, 2), -8)));
  EXPECT_FALSE(pool.insert(entry_of(vec_with_value(16, 3), -5)));
  EXPECT_FALSE(pool.insert(entry_of(vec_with_value(16, 4), -1)));
  EXPECT_TRUE(pool.insert(entry_of(vec_with_value(16, 5), -9)));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.best_energy(), -9);
  EXPECT_EQ(pool.worst_energy(), -8);
}

TEST(SolutionPool, RejectsExactDuplicates) {
  SolutionPool pool(5, 16);
  const BitVector x = vec_with_value(16, 0xAB);
  EXPECT_TRUE(pool.insert(entry_of(x, -7)));
  EXPECT_FALSE(pool.insert(entry_of(x, -7)));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SolutionPool, AllowsEqualEnergyDistinctSolutions) {
  SolutionPool pool(5, 16);
  EXPECT_TRUE(pool.insert(entry_of(vec_with_value(16, 1), -7)));
  EXPECT_TRUE(pool.insert(entry_of(vec_with_value(16, 2), -7)));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(SolutionPool, InitializeRandomFillsToCapacityAtInfinity) {
  SolutionPool pool(10, 32);
  Rng rng(1);
  pool.initialize_random(rng);
  EXPECT_EQ(pool.size(), 10u);
  EXPECT_EQ(pool.best_energy(), kInfiniteEnergy);
  EXPECT_EQ(pool.worst_energy(), kInfiniteEnergy);
}

TEST(SolutionPool, AnyRealSolutionBeatsInfinitySeeds) {
  SolutionPool pool(3, 16);
  Rng rng(2);
  pool.initialize_random(rng);
  EXPECT_TRUE(pool.insert(entry_of(vec_with_value(16, 9), 1000)));
  EXPECT_EQ(pool.best_energy(), 1000);
}

TEST(SolutionPool, SelectionsComeFromPool) {
  SolutionPool pool(4, 16);
  pool.insert(entry_of(vec_with_value(16, 1), -1));
  pool.insert(entry_of(vec_with_value(16, 2), -2));
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const PoolEntry e = pool.select_cube_weighted(rng);
    EXPECT_TRUE(e.energy == -1 || e.energy == -2);
    const PoolEntry u = pool.select_uniform(rng);
    EXPECT_TRUE(u.energy == -1 || u.energy == -2);
  }
}

TEST(SolutionPool, CubeSelectionPrefersBest) {
  SolutionPool pool(100, 8);
  for (int i = 0; i < 100; ++i) {
    pool.insert(entry_of(vec_with_value(8, i), -1000 + i));
  }
  Rng rng(4);
  int best_picks = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (pool.select_cube_weighted(rng).energy == -1000) ++best_picks;
  }
  // Cube rule: P(rank 0) = (1/100)^(1/3) ~= 0.215, uniform would give 0.01.
  EXPECT_GT(double(best_picks) / trials, 0.15);
}

TEST(SolutionPool, SelectionSurvivesNearMaxDraws) {
  // Audit regression for the r -> 1 rounding guard in the cube rule: brute
  // force seeds whose very first unit draw is within 1e-6 of 1.0, then
  // check both selectors on the smallest pools.  select_cube_weighted must
  // clamp to the last (worst) rank, never one past the end;
  // select_uniform's next_index is a Lemire reduction that can never reach
  // its bound, so it is safe by construction — exercised here for parity.
  std::vector<std::uint64_t> hot_seeds;
  for (std::uint64_t s = 1; hot_seeds.size() < 5 && s < 50'000'000; ++s) {
    Rng probe(s);
    if (probe.next_unit() > 1.0 - 1e-6) hot_seeds.push_back(s);
  }
  ASSERT_GE(hot_seeds.size(), 1u);
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    SolutionPool pool(m, 8);
    for (std::size_t i = 0; i < m; ++i) {
      pool.insert(entry_of(vec_with_value(8, i + 1),
                           static_cast<Energy>(10 * (i + 1))));
    }
    const Energy worst = pool.worst_energy();
    for (const std::uint64_t seed : hot_seeds) {
      Rng rng(seed);
      // r^3 * m floors to m - 1 for r this close to 1: the worst entry.
      EXPECT_EQ(pool.select_cube_weighted(rng).energy, worst)
          << "m " << m << " seed " << seed;
      Rng rng2(seed);
      const PoolEntry u = pool.select_uniform(rng2);
      EXPECT_GE(u.energy, 10);
      EXPECT_LE(u.energy, static_cast<Energy>(10 * m));
    }
  }
}

TEST(SolutionPool, RestartRefillsWithInfinity) {
  SolutionPool pool(4, 16);
  pool.insert(entry_of(vec_with_value(16, 1), -50));
  Rng rng(5);
  pool.restart(rng);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.best_energy(), kInfiniteEnergy);
}

TEST(SolutionPool, RejectsWrongLengthAndBadRank) {
  SolutionPool pool(2, 16);
  EXPECT_THROW(pool.insert(entry_of(BitVector(15), -1)),
               std::invalid_argument);
  EXPECT_THROW((void)pool.entry(0), std::invalid_argument);
}

TEST(GeneticOps, RandomHasCorrectLengthAndVariety) {
  Rng rng(6);
  const BitVector a = random_bit_vector(257, rng);
  const BitVector b = random_bit_vector(257, rng);
  EXPECT_EQ(a.size(), 257u);
  EXPECT_NE(a, b);
  // Roughly half ones.
  EXPECT_NEAR(double(a.count()) / 257.0, 0.5, 0.15);
}

class GeneticOpFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 256;
  void SetUp() override {
    pool_ = std::make_unique<SolutionPool>(4, kN);
    neighbor_ = std::make_unique<SolutionPool>(4, kN);
    Rng seed_rng(7);
    parent_ = random_solution(kN, seed_rng);
    neighbor_parent_ = random_solution(kN, seed_rng);
    pool_->insert({parent_, -100, MainSearch::kMaxMin, GeneticOp::kRandom});
    neighbor_->insert(
        {neighbor_parent_, -90, MainSearch::kMaxMin, GeneticOp::kRandom});
  }

  std::unique_ptr<SolutionPool> pool_, neighbor_;
  BitVector parent_, neighbor_parent_;
  Rng rng_{8};
};

TEST_F(GeneticOpFixture, BestReturnsRankZeroUnmodified) {
  const BitVector t = apply_genetic_op(GeneticOp::kBest, kN, *pool_,
                                       neighbor_.get(), rng_);
  EXPECT_EQ(t, parent_);
}

TEST_F(GeneticOpFixture, MutationFlipsRoughlyPFraction) {
  const BitVector t = apply_genetic_op(GeneticOp::kMutation, kN, *pool_,
                                       neighbor_.get(), rng_);
  const double frac = double(t.hamming_distance(parent_)) / kN;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.30);  // p = 1/8 nominal
}

TEST_F(GeneticOpFixture, CrossoverBitsComeFromParents) {
  // Single distinct parent in the pool: crossover of parent with itself
  // must reproduce it.
  const BitVector t = apply_genetic_op(GeneticOp::kCrossover, kN, *pool_,
                                       neighbor_.get(), rng_);
  EXPECT_EQ(t, parent_);
}

TEST_F(GeneticOpFixture, XrossoverMixesPoolAndNeighbor) {
  const BitVector t = apply_genetic_op(GeneticOp::kXrossover, kN, *pool_,
                                       neighbor_.get(), rng_);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(t.get(i) == parent_.get(i) ||
                t.get(i) == neighbor_parent_.get(i));
  }
  // It should actually take bits from both sides (overwhelming probability).
  EXPECT_NE(t, parent_);
  EXPECT_NE(t, neighbor_parent_);
}

TEST_F(GeneticOpFixture, XrossoverWithoutNeighborDegradesToCrossover) {
  const BitVector t =
      apply_genetic_op(GeneticOp::kXrossover, kN, *pool_, nullptr, rng_);
  EXPECT_EQ(t, parent_);  // single-parent pool
}

TEST_F(GeneticOpFixture, ZeroOnlyClearsBits) {
  const BitVector t = apply_genetic_op(GeneticOp::kZero, kN, *pool_,
                                       neighbor_.get(), rng_);
  for (std::size_t i = 0; i < kN; ++i) {
    if (t.get(i)) {
      EXPECT_TRUE(parent_.get(i));  // no bit was set
    }
  }
  EXPECT_LT(t.count(), parent_.count());
}

TEST_F(GeneticOpFixture, OneOnlySetsBits) {
  const BitVector t = apply_genetic_op(GeneticOp::kOne, kN, *pool_,
                                       neighbor_.get(), rng_);
  for (std::size_t i = 0; i < kN; ++i) {
    if (!t.get(i)) {
      EXPECT_FALSE(parent_.get(i));  // no bit was cleared
    }
  }
  EXPECT_GT(t.count(), parent_.count());
}

TEST_F(GeneticOpFixture, IntervalZeroClearsACyclicSegment) {
  const BitVector t = apply_genetic_op(GeneticOp::kIntervalZero, kN, *pool_,
                                       neighbor_.get(), rng_);
  // Bits outside the segment are untouched; inside it they are zero.  We
  // can't see the segment directly, but: (a) nothing is ever set,
  // (b) the number of cleared positions is within [32, n/2] of the ones
  // the parent had in some window — weaker check: count decreased or equal
  // and changed bits were all ones in the parent.
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    if (t.get(i) != parent_.get(i)) {
      EXPECT_TRUE(parent_.get(i));
      ++changed;
    }
  }
  EXPECT_LE(changed, kN / 2);
}

TEST_F(GeneticOpFixture, MutateCrossoverProducesValidVector) {
  const BitVector t = apply_genetic_op(GeneticOp::kMutateCrossover, kN,
                                       *pool_, neighbor_.get(), rng_);
  EXPECT_EQ(t.size(), kN);
  // Based on a single parent + mutation: differs from the parent a little.
  const double frac = double(t.hamming_distance(parent_)) / kN;
  EXPECT_LT(frac, 0.3);
}

TEST(GeneticOps, NamesAreStable) {
  EXPECT_EQ(to_string(GeneticOp::kXrossover), "Xrossover");
  EXPECT_EQ(to_string(GeneticOp::kIntervalZero), "IntervalZero");
  EXPECT_EQ(to_string(GeneticOp::kMutateCrossover), "MutateCrossover");
}

TEST(AdaptiveSelector, DefaultsCoverFullDiversity) {
  AdaptiveSelector sel;
  EXPECT_EQ(sel.allowed_algorithms().size(), kMainSearchCount);
  EXPECT_EQ(sel.allowed_operations().size(), kDabsGeneticOpCount);
}

TEST(AdaptiveSelector, ExploitsPoolRecords) {
  // Pool filled exclusively with PositiveMin/Crossover records and
  // exploration off: the selector must always return those.
  SolutionPool pool(8, 16);
  Rng fill(9);
  for (int i = 0; i < 8; ++i) {
    pool.insert({random_solution(16, fill), -i - 1, MainSearch::kPositiveMin,
                 GeneticOp::kCrossover});
  }
  AdaptiveSelector sel(
      std::vector<MainSearch>(kAllMainSearches.begin(),
                              kAllMainSearches.end()),
      std::vector<GeneticOp>(kDabsGeneticOps.begin(), kDabsGeneticOps.end()),
      /*explore_prob=*/0.0);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sel.select_algorithm(pool, rng), MainSearch::kPositiveMin);
    EXPECT_EQ(sel.select_operation(pool, rng), GeneticOp::kCrossover);
  }
}

TEST(AdaptiveSelector, ExplorationUsesAllowedSetOnly) {
  SolutionPool pool(4, 16);
  Rng fill(11);
  pool.initialize_random(fill);
  AdaptiveSelector sel({MainSearch::kCyclicMin},
                       {GeneticOp::kMutateCrossover},
                       /*explore_prob=*/1.0);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sel.select_algorithm(pool, rng), MainSearch::kCyclicMin);
    EXPECT_EQ(sel.select_operation(pool, rng), GeneticOp::kMutateCrossover);
  }
}

TEST(AdaptiveSelector, DisallowedPoolRecordFallsBackToAllowed) {
  SolutionPool pool(4, 16);
  Rng fill(13);
  pool.insert({random_solution(16, fill), -1, MainSearch::kMaxMin,
               GeneticOp::kZero});
  AdaptiveSelector sel({MainSearch::kCyclicMin}, {GeneticOp::kCrossover},
                       /*explore_prob=*/0.0);
  Rng rng(14);
  EXPECT_EQ(sel.select_algorithm(pool, rng), MainSearch::kCyclicMin);
  EXPECT_EQ(sel.select_operation(pool, rng), GeneticOp::kCrossover);
}

TEST(AdaptiveSelector, RejectsEmptySets) {
  EXPECT_THROW(AdaptiveSelector({}, {GeneticOp::kRandom}),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveSelector({MainSearch::kMaxMin}, {}),
               std::invalid_argument);
}

TEST(IslandRing, NeighborIsCyclic) {
  MersenneSeeder seeder(15);
  IslandRing ring(4, 3, 16, seeder);
  EXPECT_EQ(ring.neighbor_index(0), 1u);
  EXPECT_EQ(ring.neighbor_index(3), 0u);
}

TEST(IslandRing, PoolsAreIndependentlyInitialized) {
  MersenneSeeder seeder(16);
  IslandRing ring(2, 5, 32, seeder);
  // Both pools full of +inf random seeds, but different vectors.
  EXPECT_EQ(ring.pool(0).size(), 5u);
  EXPECT_NE(ring.pool(0).entry(0).solution, ring.pool(1).entry(0).solution);
}

TEST(IslandRing, GlobalBestAcrossPools) {
  MersenneSeeder seeder(17);
  IslandRing ring(3, 3, 16, seeder);
  Rng rng(18);
  ring.pool(1).insert({random_solution(16, rng), -42, MainSearch::kMaxMin,
                       GeneticOp::kRandom});
  ring.pool(2).insert({random_solution(16, rng), -17, MainSearch::kMaxMin,
                       GeneticOp::kRandom});
  EXPECT_EQ(ring.global_best_energy(), -42);
}

TEST(IslandRing, MergedDetectsIdenticalBests) {
  MersenneSeeder seeder(19);
  IslandRing ring(3, 2, 16, seeder);
  Rng rng(20);
  const BitVector x = random_solution(16, rng);
  EXPECT_FALSE(ring.merged());  // +inf seeds are never "merged"
  for (std::size_t i = 0; i < 3; ++i) {
    ring.pool(i).insert({x, -5, MainSearch::kMaxMin, GeneticOp::kRandom});
  }
  EXPECT_TRUE(ring.merged());
  // A differing best in one pool breaks the merge.
  BitVector y = x;
  y.flip(0);
  ring.pool(1).insert({y, -9, MainSearch::kMaxMin, GeneticOp::kRandom});
  EXPECT_FALSE(ring.merged());
}

TEST(IslandRing, SinglePoolNeverMerged) {
  MersenneSeeder seeder(21);
  IslandRing ring(1, 2, 16, seeder);
  Rng rng(22);
  ring.pool(0).insert({random_solution(16, rng), -1, MainSearch::kMaxMin,
                       GeneticOp::kRandom});
  EXPECT_FALSE(ring.merged());
}

TEST(IslandRing, RestartAllClearsEveryPool) {
  MersenneSeeder seeder(23);
  IslandRing ring(2, 3, 16, seeder);
  Rng rng(24);
  ring.pool(0).insert({random_solution(16, rng), -8, MainSearch::kMaxMin,
                       GeneticOp::kRandom});
  ring.restart_all(seeder);
  EXPECT_EQ(ring.global_best_energy(), kInfiniteEnergy);
}

}  // namespace
}  // namespace dabs
