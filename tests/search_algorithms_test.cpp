// Tests for the seven search algorithms and the tabu rule (paper §III-A).
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>

#include "qubo/search_state.hpp"
#include "search/cyclicmin.hpp"
#include "search/greedy.hpp"
#include "search/maxmin.hpp"
#include "search/positivemin.hpp"
#include "search/randommin.hpp"
#include "search/registry.hpp"
#include "search/straight.hpp"
#include "search/tabu_list.hpp"
#include "search/two_neighbor.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

TEST(TabuList, DisabledTenureAllowsEverything) {
  TabuList t(10, 0);
  t.record(3, 5);
  EXPECT_TRUE(t.allowed(3, 5));
  EXPECT_TRUE(t.allowed(3, 6));
}

TEST(TabuList, BlocksForExactlyTenureIterations) {
  TabuList t(10, 8);  // the paper's tenure
  t.record(4, 100);
  for (std::uint64_t now = 101; now <= 108; ++now) {
    EXPECT_FALSE(t.allowed(4, now)) << now;
  }
  EXPECT_TRUE(t.allowed(4, 109));
}

TEST(TabuList, FreshBitsAreAllowed) {
  TabuList t(5, 8);
  for (VarIndex i = 0; i < 5; ++i) EXPECT_TRUE(t.allowed(i, 0));
}

TEST(TabuList, ClearForgetsHistory) {
  TabuList t(5, 8);
  t.record(1, 50);
  EXPECT_FALSE(t.allowed(1, 51));
  t.clear();
  EXPECT_TRUE(t.allowed(1, 51));
}

TEST(Greedy, TerminatesAtLocalMinimum) {
  const QuboModel m = random_model(50, 0.3, 9, 1000);
  SearchState s(m);
  Rng rng(1);
  s.reset_to(random_solution(50, rng));
  greedy_descent(s);
  EXPECT_TRUE(s.is_local_minimum());
}

TEST(Greedy, EveryFlipStrictlyImproves) {
  const QuboModel m = random_model(40, 0.5, 9, 1001);
  SearchState s(m);
  Rng rng(2);
  s.reset_to(random_solution(40, rng));
  Energy prev = s.energy();
  while (!s.is_local_minimum()) {
    greedy_descent(s, 1);
    EXPECT_LT(s.energy(), prev);
    prev = s.energy();
  }
}

TEST(Greedy, MaxFlipsRespected) {
  const QuboModel m = random_model(60, 0.5, 9, 1002);
  SearchState s(m);
  Rng rng(3);
  s.reset_to(random_solution(60, rng));
  const std::uint64_t done = greedy_descent(s, 2);
  EXPECT_LE(done, 2u);
}

TEST(Straight, ReachesTargetInHammingDistanceFlips) {
  const QuboModel m = random_model(64, 0.4, 9, 1003);
  SearchState s(m);
  Rng rng(4);
  s.reset_to(random_solution(64, rng));
  const BitVector target = random_solution(64, rng);
  const std::size_t dist = s.solution().hamming_distance(target);
  const std::uint64_t flips = straight_walk(s, target);
  EXPECT_EQ(flips, dist);
  EXPECT_EQ(s.solution(), target);
}

TEST(Straight, NoopWhenAlreadyAtTarget) {
  const QuboModel m = random_model(20, 0.5, 9, 1004);
  SearchState s(m);
  Rng rng(5);
  const BitVector x = random_solution(20, rng);
  s.reset_to(x);
  EXPECT_EQ(straight_walk(s, x), 0u);
  EXPECT_EQ(s.solution(), x);
}

TEST(Straight, BestCoversPathMinimum) {
  // The walk's BEST must be at least as good as every point it visited.
  const QuboModel m = random_model(32, 0.6, 9, 1005);
  SearchState probe(m);
  Rng rng(6);
  const BitVector start = random_solution(32, rng);
  const BitVector target = random_solution(32, rng);
  probe.reset_to(start);
  straight_walk(probe, target);
  EXPECT_LE(probe.best_energy(), m.energy(start));
  EXPECT_LE(probe.best_energy(), m.energy(target));
}

// All iteration-driven algorithms must perform exactly the requested number
// of flips and leave the state internally consistent.
class MainSearchProperty : public ::testing::TestWithParam<MainSearch> {};

TEST_P(MainSearchProperty, PerformsRequestedFlips) {
  const MainSearch id = GetParam();
  const QuboModel m = random_model(48, 0.4, 9, 1006);
  SearchState s(m);
  Rng rng(7);
  s.reset_to(random_solution(48, rng));
  TabuList tabu(48, 8);
  auto algo = make_search_algorithm(id);
  const std::uint64_t before = s.flip_count();
  algo->run(s, rng, &tabu, 100);
  if (id == MainSearch::kTwoNeighbor) {
    EXPECT_EQ(s.flip_count() - before, 2u * 48 - 1);  // fixed ripple
  } else {
    EXPECT_EQ(s.flip_count() - before, 100u);
  }
}

TEST_P(MainSearchProperty, StateStaysConsistent) {
  const MainSearch id = GetParam();
  const QuboModel m = random_model(30, 0.5, 9, 1007);
  SearchState s(m);
  Rng rng(8);
  s.reset_to(random_solution(30, rng));
  auto algo = make_search_algorithm(id);
  algo->run(s, rng, nullptr, 64);
  EXPECT_EQ(s.energy(), m.energy(s.solution()));
  std::vector<Energy> fresh;
  m.delta_all(s.solution(), fresh);
  for (VarIndex k = 0; k < m.size(); ++k) EXPECT_EQ(s.delta(k), fresh[k]);
}

TEST_P(MainSearchProperty, BestNeverWorseThanStart) {
  const MainSearch id = GetParam();
  const QuboModel m = random_model(36, 0.5, 9, 1008);
  SearchState s(m);
  Rng rng(9);
  const BitVector start = random_solution(36, rng);
  s.reset_to(start);
  auto algo = make_search_algorithm(id);
  algo->run(s, rng, nullptr, 80);
  EXPECT_LE(s.best_energy(), m.energy(start));
  EXPECT_EQ(m.energy(s.best()), s.best_energy());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MainSearchProperty,
                         ::testing::ValuesIn(kAllMainSearches),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(TwoNeighbor, CoversAllTwoBitNeighbors) {
  // After the ripple, BEST must be <= the best solution within Hamming
  // distance 2 of the start vector.
  const QuboModel m = random_model(14, 0.6, 9, 1009);
  SearchState s(m);
  Rng rng(10);
  const BitVector start = random_solution(14, rng);
  s.reset_to(start);
  TwoNeighborSearch tn;
  tn.run(s, rng, nullptr, 0);

  Energy best2 = m.energy(start);
  for (VarIndex i = 0; i < 14; ++i) {
    BitVector x1 = start;
    x1.flip(i);
    best2 = std::min(best2, m.energy(x1));
    for (VarIndex j = i + 1; j < 14; ++j) {
      BitVector x2 = x1;
      x2.flip(j);
      best2 = std::min(best2, m.energy(x2));
    }
  }
  EXPECT_LE(s.best_energy(), best2);
}

TEST(TwoNeighbor, EndsOneFlipFromStart) {
  // The ripple ends at ...0001-pattern: exactly bit n-1 flipped.
  const QuboModel m = random_model(10, 0.5, 9, 1010);
  SearchState s(m);
  Rng rng(11);
  const BitVector start = random_solution(10, rng);
  s.reset_to(start);
  TwoNeighborSearch tn;
  tn.run(s, rng, nullptr, 0);
  EXPECT_EQ(s.solution().hamming_distance(start), 1u);
  EXPECT_NE(s.solution().get(9), start.get(9));
}

TEST(CyclicMin, PermanentTabuForcesAllDistinctFlips) {
  const QuboModel m = random_model(12, 0.5, 9, 1012);
  SearchState s(m);
  Rng rng(13);
  const BitVector start = random_solution(12, rng);
  s.reset_to(start);
  TabuList tabu(12, 100000);
  CyclicMinSearch cm(12);
  cm.run(s, rng, &tabu, 12);
  // Every bit flipped exactly once -> Hamming distance n from the start.
  EXPECT_EQ(s.solution().hamming_distance(start), 12u);
}

TEST(CyclicMin, WindowPositionAdvances) {
  const QuboModel m = random_model(20, 0.5, 9, 1013);
  SearchState s(m);
  Rng rng(14);
  s.reset_to(random_solution(20, rng));
  CyclicMinSearch cm(4);
  const std::size_t before = cm.window_position();
  cm.run(s, rng, nullptr, 3);
  EXPECT_NE(cm.window_position(), before);
}

TEST(MaxMin, LateIterationsAreNearlyGreedy) {
  // In the final iteration u = 0, so the threshold collapses to minDelta
  // and the flipped bit must attain it.
  const QuboModel m = random_model(24, 0.5, 9, 1014);
  SearchState s(m);
  Rng rng(15);
  s.reset_to(random_solution(24, rng));
  MaxMinSearch mm;
  // Run exactly one iteration with T = 1: t = T = 1, u = 0, d = minDelta.
  const Energy e_before = s.energy();
  const Energy expected_min = s.scan().min_delta;
  mm.run(s, rng, nullptr, 1);
  EXPECT_EQ(s.energy(), e_before + expected_min);
}

TEST(PositiveMin, FlipsOnlyCandidateBits) {
  // Every flip must have Delta <= posmin (the cheapest strictly positive
  // Delta) at the time of the flip.  Verify via energy bound: a single
  // iteration can never increase E by more than the current posmin.
  const QuboModel m = random_model(28, 0.5, 9, 1015);
  SearchState s(m);
  Rng rng(16);
  s.reset_to(random_solution(28, rng));
  PositiveMinSearch pm;
  for (int it = 0; it < 50; ++it) {
    Energy posmin = std::numeric_limits<Energy>::max();
    for (VarIndex k = 0; k < 28; ++k) {
      const Energy d = s.delta(k);
      if (d > 0 && d < posmin) posmin = d;
    }
    const Energy before = s.energy();
    pm.run(s, rng, nullptr, 1);
    if (posmin != std::numeric_limits<Energy>::max()) {
      EXPECT_LE(s.energy() - before, posmin);
    }
  }
}

TEST(RandomMin, WithFullProbabilityActsGreedy) {
  // min_candidates >= n forces p(t) = 1: every bit is a candidate, so the
  // flip must attain the global minimum Delta.
  const QuboModel m = random_model(26, 0.5, 9, 1016);
  SearchState s(m);
  Rng rng(17);
  s.reset_to(random_solution(26, rng));
  RandomMinSearch rm(26);
  const Energy e = s.energy();
  const Energy mn = s.scan().min_delta;
  rm.run(s, rng, nullptr, 1);
  EXPECT_EQ(s.energy(), e + mn);
}

TEST(Registry, NamesAreUniqueAndStable) {
  std::set<std::string_view> names;
  for (const MainSearch a : kAllMainSearches) {
    names.insert(to_string(a));
  }
  EXPECT_EQ(names.size(), kMainSearchCount);
  EXPECT_EQ(to_string(MainSearch::kCyclicMin), "CyclicMin");
}

TEST(Registry, FactoryProducesEveryAlgorithm) {
  for (const MainSearch a : kAllMainSearches) {
    EXPECT_NE(make_search_algorithm(a), nullptr);
  }
}

}  // namespace
}  // namespace dabs
