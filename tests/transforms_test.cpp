// Tests for model transforms (variable fixing, sub-QUBO extraction), the
// SubQUBO hybrid comparator, parallel exhaustive search, warm starts, the
// TTS confidence formula, and the bit-permuted CyclicMin variant.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baseline/exhaustive.hpp"
#include "baseline/subqubo_solver.hpp"
#include "core/campaign.hpp"
#include "core/dabs_solver.hpp"
#include "qubo/search_state.hpp"
#include "qubo/transforms.hpp"
#include "search/cyclicmin.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

TEST(FixVariable, EnergyIdentityOverAllAssignments) {
  const QuboModel m = random_model(8, 0.7, 9, 10000);
  for (const bool value : {false, true}) {
    for (VarIndex fixed = 0; fixed < 8; ++fixed) {
      const FixedModel fm = fix_variable(m, fixed, value);
      ASSERT_EQ(fm.model.size(), 7u);
      // Every reduced assignment must reproduce the full energy.
      for (std::uint64_t bits = 0; bits < (1u << 7); ++bits) {
        BitVector reduced(7), full(8);
        full.set(fixed, value);
        for (std::size_t s = 0; s < 7; ++s) {
          const bool b = (bits >> s) & 1;
          reduced.set(s, b);
          full.set(fm.mapping[s], b);
        }
        ASSERT_EQ(fm.model.energy(reduced) + fm.offset, m.energy(full))
            << "fixed=" << fixed << " value=" << value;
      }
    }
  }
}

TEST(FixVariable, RejectsDegenerateCases) {
  const QuboModel m = random_model(4, 0.5, 3, 10001);
  EXPECT_THROW((void)fix_variable(m, 4, true), std::invalid_argument);
  QuboBuilder b(1);
  b.add_linear(0, 1);
  const QuboModel one = b.build();
  EXPECT_THROW((void)fix_variable(one, 0, true), std::invalid_argument);
}

TEST(SubQubo, EnergyIdentityForAllSubsetAssignments) {
  const QuboModel m = random_model(12, 0.6, 9, 10002);
  Rng rng(1);
  const BitVector x = random_solution(12, rng);
  const std::vector<VarIndex> subset = {2, 5, 7, 11};
  const SubQubo sub = extract_subqubo(m, x, subset);
  ASSERT_EQ(sub.model.size(), 4u);
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    BitVector y(4);
    for (std::size_t s = 0; s < 4; ++s) y.set(s, (bits >> s) & 1);
    const BitVector full = apply_subsolution(x, sub, y);
    EXPECT_EQ(sub.model.energy(y) + sub.offset, m.energy(full));
  }
}

TEST(SubQubo, FullSubsetReproducesTheModel) {
  const QuboModel m = random_model(6, 0.8, 5, 10003);
  Rng rng(2);
  const BitVector x = random_solution(6, rng);
  std::vector<VarIndex> all(6);
  std::iota(all.begin(), all.end(), 0);
  const SubQubo sub = extract_subqubo(m, x, all);
  EXPECT_EQ(sub.offset, 0);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVector y = random_solution(6, rng);
    EXPECT_EQ(sub.model.energy(y), m.energy(y));
  }
}

TEST(SubQubo, RejectsBadSubsets) {
  const QuboModel m = random_model(5, 0.5, 3, 10004);
  Rng rng(3);
  const BitVector x = random_solution(5, rng);
  EXPECT_THROW((void)extract_subqubo(m, x, {}), std::invalid_argument);
  EXPECT_THROW((void)extract_subqubo(m, x, {1, 1}), std::invalid_argument);
  EXPECT_THROW((void)extract_subqubo(m, x, {7}), std::invalid_argument);
}

TEST(SubQuboSolver, MonotonicallyImprovesToGoodSolutions) {
  const QuboModel m = random_model(30, 0.5, 9, 10005);
  SubQuboParams p;
  p.subset_size = 12;
  p.iterations = 60;
  p.seed = 4;
  const BaselineResult r = SubQuboSolver(p).solve(m);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
  EXPECT_LT(r.best_energy, 0);
}

TEST(SubQuboSolver, FindsOptimumWhenSubsetCoversModel) {
  const QuboModel m = random_model(14, 0.6, 9, 10006);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  SubQuboParams p;
  p.subset_size = 14;  // one exact solve of the whole model
  p.iterations = 2;
  const BaselineResult r = SubQuboSolver(p).solve(m);
  EXPECT_EQ(r.best_energy, truth);
}

TEST(SubQuboSolver, RejectsBadParams) {
  EXPECT_THROW(SubQuboSolver(SubQuboParams{.subset_size = 1}),
               std::invalid_argument);
  EXPECT_THROW(SubQuboSolver(SubQuboParams{.subset_size = 40}),
               std::invalid_argument);
  EXPECT_THROW(SubQuboSolver(SubQuboParams{.iterations = 0}),
               std::invalid_argument);
}

TEST(ParallelExhaustive, MatchesSerialResult) {
  const QuboModel m = random_model(14, 0.6, 9, 10007);
  const BaselineResult serial = ExhaustiveSolver(26, 1).solve(m);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const BaselineResult parallel = ExhaustiveSolver(26, threads).solve(m);
    EXPECT_EQ(parallel.best_energy, serial.best_energy) << threads;
    EXPECT_EQ(m.energy(parallel.best_solution), parallel.best_energy);
  }
}

TEST(ParallelExhaustive, WorkerFlipAccounting) {
  const QuboModel m = random_model(10, 0.6, 5, 10008);
  // 4 workers each enumerate 2^8 states with 2^8 - 1 flips.
  const BaselineResult r = ExhaustiveSolver(26, 4).solve(m);
  EXPECT_EQ(r.flips, 4u * 255u);
}

TEST(ParallelExhaustive, OddThreadCountRoundsDown) {
  const QuboModel m = random_model(8, 0.6, 5, 10009);
  const BaselineResult r = ExhaustiveSolver(26, 3).solve(m);  // -> 2 workers
  EXPECT_EQ(r.best_energy, ExhaustiveSolver().solve(m).best_energy);
}

TEST(WarmStart, SeedsPoolsAndGlobalBest) {
  const QuboModel m = random_model(20, 0.5, 9, 10010);
  // A strong warm start: run greedy offline.
  SearchState s(m);
  Rng rng(5);
  s.reset_to(random_solution(20, rng));
  while (!s.is_local_minimum()) {
    const auto scan = s.scan();
    if (scan.min_delta >= 0) break;
    s.flip(scan.argmin);
  }
  const BitVector warm = s.solution();
  const Energy warm_e = s.energy();

  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.warm_start = {warm};
  c.stop.max_batches = 1;  // almost no search: the result must come from
                           // the warm start if the single batch is worse
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_LE(r.best_energy, warm_e);
}

TEST(WarmStart, TargetReachedImmediatelyByWarmStart) {
  const QuboModel m = random_model(16, 0.6, 9, 10011);
  const BaselineResult truth = ExhaustiveSolver().solve(m);
  SolverConfig c;
  c.devices = 1;
  c.device.blocks = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.warm_start = {truth.best_solution};
  c.stop.target_energy = truth.best_energy;
  c.stop.max_batches = 10;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_TRUE(r.reached_target);
  EXPECT_EQ(r.best_energy, truth.best_energy);
  EXPECT_LT(r.tts_seconds, 0.1);
}

TEST(WarmStart, RejectsWrongLength) {
  const QuboModel m = random_model(10, 0.5, 5, 10012);
  SolverConfig c;
  c.devices = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.warm_start = {BitVector(9)};
  c.stop.max_batches = 5;
  EXPECT_THROW((void)DabsSolver(c).solve(m), std::invalid_argument);
}

TEST(TtsConfidence, MatchesClosedForm) {
  // s = 0.5, t = 1s, p = 0.99: TTS = ln(0.01)/ln(0.5) ~= 6.64 trials.
  EXPECT_NEAR(tts_at_confidence(1.0, 0.5, 0.99),
              std::log(0.01) / std::log(0.5), 1e-9);
  EXPECT_DOUBLE_EQ(tts_at_confidence(2.5, 1.0), 2.5);
  EXPECT_TRUE(std::isinf(tts_at_confidence(1.0, 0.0)));
  EXPECT_THROW((void)tts_at_confidence(1.0, 0.5, 1.5),
               std::invalid_argument);
}

TEST(BitPermutedCyclicMin, RunsAndStaysConsistent) {
  const QuboModel m = random_model(40, 0.5, 9, 10013);
  SearchState s(m);
  Rng rng(6);
  s.reset_to(random_solution(40, rng));
  CyclicMinSearch cm(8, /*bit_permuted=*/true);
  EXPECT_TRUE(cm.bit_permuted());
  cm.run(s, rng, nullptr, 64);
  EXPECT_EQ(s.energy(), m.energy(s.solution()));
  std::vector<Energy> fresh;
  m.delta_all(s.solution(), fresh);
  for (VarIndex k = 0; k < 40; ++k) EXPECT_EQ(s.delta(k), fresh[k]);
}

TEST(BitPermutedCyclicMin, PermutedAndPlainDiverge) {
  const QuboModel m = random_model(30, 0.5, 9, 10014);
  SearchState a(m), b(m);
  Rng rng_seed(7);
  const BitVector start = random_solution(30, rng_seed);
  a.reset_to(start);
  b.reset_to(start);
  Rng ra(9), rb(9);
  CyclicMinSearch plain(4, false), permuted(4, true);
  plain.run(a, ra, nullptr, 20);
  permuted.run(b, rb, nullptr, 20);
  // Identical RNG streams but different bit orders: walks differ (with
  // overwhelming probability on a random model).
  EXPECT_NE(a.solution(), b.solution());
}

}  // namespace
}  // namespace dabs
