// Cooperative-cancellation tests: a StopToken fired from another thread
// must halt DabsSolver (both execution modes) and every baseline mid-run
// within a bounded grace period, with the report flagging the
// cancellation.  This is the threaded path the sanitizer CI job exercises.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "test_helpers.hpp"
#include "util/timer.hpp"

namespace dabs {
namespace {

using testing::random_model;

// Generous: the point is "seconds, not the 30 s budget", even on a loaded
// CI runner.
constexpr double kGraceSeconds = 15.0;

/// Fires `token` after `delay_ms` from a helper thread while `solver` runs
/// an (effectively) unbounded request; returns the report.
SolveReport cancel_mid_run(Solver& solver, const QuboModel& model,
                           int delay_ms) {
  SolveRequest req;
  req.model = &model;
  req.stop.time_limit_seconds = 30.0;  // backstop only; token should win
  req.seed = 17;
  StopToken token = req.stop_token;
  std::thread firer([token, delay_ms] {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    token.request_stop();
  });
  const SolveReport report = solver.solve(req);
  firer.join();
  return report;
}

TEST(Cancellation, TokenHaltsEveryBaselineMidRun) {
  // Big enough that every baseline is still busy when the token fires;
  // params pushed far beyond the wall-clock budget.
  const QuboModel m = random_model(200, 0.5, 9, 12000);
  const std::pair<const char*, SolverOptions> cases[] = {
      {"sa", {{"sweeps", "100000000"}, {"restarts", "100000000"}}},
      {"tabu", {{"iterations", "1000000000"}}},
      {"greedy-restart", {{"restarts", "1000000000"}}},
      {"path-relinking", {{"relinks", "1000000000"}}},
      {"subqubo", {{"iterations", "100000000"}, {"restarts", "100000000"}}},
  };
  for (const auto& [name, options] : cases) {
    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(name, options);
    Stopwatch wall;
    const SolveReport report = cancel_mid_run(*solver, m, 50);
    EXPECT_TRUE(report.cancelled) << name;
    EXPECT_LT(wall.elapsed_seconds(), kGraceSeconds) << name;
    EXPECT_EQ(report.solver, name);
    // A cancelled run still reports its best-so-far consistently.
    EXPECT_EQ(m.energy(report.best_solution), report.best_energy) << name;
  }
}

TEST(Cancellation, TokenHaltsExhaustiveEnumeration) {
  // 2^24 Gray-code steps: far more than 10 ms of enumeration.
  const QuboModel m = random_model(24, 0.5, 9, 12001);
  const std::unique_ptr<Solver> solver =
      SolverRegistry::global().create("exhaustive");
  Stopwatch wall;
  const SolveReport report = cancel_mid_run(*solver, m, 10);
  EXPECT_LT(wall.elapsed_seconds(), kGraceSeconds);
  EXPECT_TRUE(report.cancelled);
  EXPECT_LT(report.flips, (std::uint64_t{1} << 24) - 1);  // partial sweep
  EXPECT_EQ(m.energy(report.best_solution), report.best_energy);
}

TEST(Cancellation, TokenHaltsDabsInBothExecutionModes) {
  const QuboModel m = random_model(200, 0.5, 9, 12002);
  for (const bool threaded : {false, true}) {
    const std::unique_ptr<Solver> solver = SolverRegistry::global().create(
        "dabs", {{"threads", threaded ? "true" : "false"}});
    Stopwatch wall;
    const SolveReport report = cancel_mid_run(*solver, m, 50);
    EXPECT_TRUE(report.cancelled) << "threaded=" << threaded;
    EXPECT_LT(wall.elapsed_seconds(), kGraceSeconds)
        << "threaded=" << threaded;
    EXPECT_EQ(m.energy(report.best_solution), report.best_energy);
  }
}

TEST(Cancellation, PreFiredTokenReturnsImmediately) {
  const QuboModel m = random_model(64, 0.5, 9, 12003);
  for (const char* name :
       {"dabs", "sa", "tabu", "greedy-restart", "path-relinking"}) {
    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(name);
    SolveRequest req;
    req.model = &m;
    req.stop.time_limit_seconds = 30.0;
    req.stop_token.request_stop();
    Stopwatch wall;
    const SolveReport report = solver->solve(req);
    EXPECT_TRUE(report.cancelled) << name;
    EXPECT_LT(wall.elapsed_seconds(), kGraceSeconds) << name;
    if (std::string(name) != "dabs") {
      // Restart-style baselines complete their first descent/sweep, so
      // even a pre-fired token yields a usable solution.
      EXPECT_EQ(report.best_solution.size(), m.size()) << name;
      EXPECT_EQ(m.energy(report.best_solution), report.best_energy) << name;
    }
  }
}

}  // namespace
}  // namespace dabs
