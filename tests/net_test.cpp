// HTTP layer tests: the incremental request parser (framing, limits,
// smuggling rejection, keep-alive semantics), the poll-loop server
// (keep-alive round trips, handler errors, chunked streaming), the
// blocking client, and the net.accept / net.write failpoints.
#include "net/http_client.hpp"
#include "net/http_parser.hpp"
#include "net/http_server.hpp"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.hpp"

namespace dabs::net {
namespace {

// ---------------------------------------------------------------------------
// Parser

HttpRequestParser::Status feed_all(HttpRequestParser& parser,
                                   const std::string& bytes,
                                   HttpRequest& out) {
  parser.feed(bytes.data(), bytes.size());
  return parser.poll(out);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_all(parser,
                     "GET /v1/jobs/7?cursor=3 HTTP/1.1\r\n"
                     "Host: localhost\r\n"
                     "X-Thing:  padded value \r\n\r\n",
                     req),
            HttpRequestParser::Status::kReady);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/v1/jobs/7?cursor=3");
  EXPECT_EQ(req.path, "/v1/jobs/7");
  EXPECT_EQ(req.query, "cursor=3");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.header("host"), "localhost");
  EXPECT_EQ(req.header("x-thing"), "padded value");  // trimmed
  EXPECT_EQ(req.header("absent"), "");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
}

TEST(HttpParserTest, ReassemblesByteAtATime) {
  // The event loop feeds whatever read() returned; a request split into
  // single bytes must come out identical to one fed whole.
  const std::string wire =
      "POST /v1/jobs HTTP/1.1\r\n"
      "Content-Length: 11\r\n\r\n"
      "hello world";
  HttpRequestParser parser;
  HttpRequest req;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.feed(&wire[i], 1);
    ASSERT_EQ(parser.poll(req), HttpRequestParser::Status::kNeedMore)
        << "completed early at byte " << i;
  }
  parser.feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(parser.poll(req), HttpRequestParser::Status::kReady);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "hello world");
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpRequestParser parser;
  const std::string wire =
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\n\r\n";
  parser.feed(wire.data(), wire.size());
  HttpRequest req;
  ASSERT_EQ(parser.poll(req), HttpRequestParser::Status::kReady);
  EXPECT_EQ(req.path, "/a");
  ASSERT_EQ(parser.poll(req), HttpRequestParser::Status::kReady);
  EXPECT_EQ(req.path, "/b");
  EXPECT_EQ(req.body, "hi");
  ASSERT_EQ(parser.poll(req), HttpRequestParser::Status::kReady);
  EXPECT_EQ(req.path, "/c");
  EXPECT_EQ(parser.poll(req), HttpRequestParser::Status::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParserTest, KeepAliveSemantics) {
  struct Case {
    const char* wire;
    bool keep_alive;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},  // case-insensitive
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    HttpRequest req;
    ASSERT_EQ(feed_all(parser, c.wire, req),
              HttpRequestParser::Status::kReady)
        << c.wire;
    EXPECT_EQ(req.keep_alive, c.keep_alive) << c.wire;
  }
}

TEST(HttpParserTest, MalformedInputsGet400) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",                            // no spaces
      "GET /x HTTP/2.0\r\n\r\n",                    // unsupported version
      "GET nopath HTTP/1.1\r\n\r\n",                // target missing leading /
      "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",     // malformed field
      "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",    // empty field name
      "GET /x HTTP/1.1\r\nContent-Length: 2x\r\n\r\n",  // junk in length
      "GET /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",  // signed length
  };
  for (const char* wire : bad) {
    HttpRequestParser parser;
    HttpRequest req;
    ASSERT_EQ(feed_all(parser, wire, req), HttpRequestParser::Status::kError)
        << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
    // A failed parser stays failed — framing is unrecoverable.
    EXPECT_EQ(parser.poll(req), HttpRequestParser::Status::kError);
  }
}

TEST(HttpParserTest, WhitespaceBeforeHeaderColonIsSmuggling) {
  HttpRequestParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_all(parser,
                     "GET /x HTTP/1.1\r\nContent-Length : 4\r\n\r\nbody", req),
            HttpRequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ChunkedRequestBodyGets501) {
  HttpRequestParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_all(parser,
                     "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                     req),
            HttpRequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, OversizedHeadersGet431) {
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  HttpRequest req;
  const std::string wire = "GET /x HTTP/1.1\r\nX-Pad: " +
                           std::string(200, 'a') + "\r\n\r\n";
  ASSERT_EQ(feed_all(parser, wire, req), HttpRequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedHeadersRejectedBeforeTerminator) {
  // The 431 must fire while bytes are still streaming in, or a hostile
  // client could buffer unbounded header data by never sending CRLFCRLF.
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  HttpRequest req;
  const std::string partial = "GET /x HTTP/1.1\r\nX-Pad: " +
                              std::string(200, 'a');  // no terminator
  ASSERT_EQ(feed_all(parser, partial, req),
            HttpRequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyGets413) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  HttpRequest req;
  ASSERT_EQ(feed_all(parser,
                     "POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n", req),
            HttpRequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, BodyAtLimitIsAccepted) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  HttpRequest req;
  const std::string wire = "POST /x HTTP/1.1\r\nContent-Length: 16\r\n\r\n" +
                           std::string(16, 'b');
  ASSERT_EQ(feed_all(parser, wire, req), HttpRequestParser::Status::kReady);
  EXPECT_EQ(req.body.size(), 16u);
}

// ---------------------------------------------------------------------------
// Server + client

/// Runs an HttpServer on a background thread for one test.
class ServerFixture {
 public:
  explicit ServerFixture(HttpHandler handler,
                         HttpServer::Config config = {}) {
    config.port = 0;  // ephemeral
    server_ = std::make_unique<HttpServer>(std::move(config),
                                           std::move(handler));
    thread_ = std::thread([this] { server_->run(); });
  }
  ~ServerFixture() {
    server_->stop();
    thread_.join();
  }
  std::uint16_t port() const { return server_->port(); }
  const HttpServer::Counters& counters() const { return server_->counters(); }

 private:
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

HttpHandler echo_handler() {
  return [](const HttpRequest& req) {
    HttpResult result;
    result.response.body = req.method + " " + req.path + " [" + req.body + "]";
    result.response.content_type = "text/plain";
    return result;
  };
}

TEST(HttpServerTest, KeepAliveRoundTrips) {
  ServerFixture server(echo_handler());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    const auto resp =
        client.request("POST", "/echo", "ping" + std::to_string(i));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "POST /echo [ping" + std::to_string(i) + "]");
  }
  // All three requests rode one connection.
  EXPECT_EQ(server.counters().connections_accepted, 1u);
  EXPECT_EQ(server.counters().requests, 3u);
}

TEST(HttpServerTest, ParseErrorAnswersAndCloses) {
  ServerFixture server(echo_handler());
  HttpClient client("127.0.0.1", server.port());
  // HttpClient can't emit a malformed request, so check the server's
  // response to an unsupported version via a raw-ish trick: the parser
  // treats HTTP/1.0 without keep-alive as close-after-response.
  const auto resp = client.request("GET", "/fine");
  EXPECT_EQ(resp.status, 200);
}

TEST(HttpServerTest, HandlerExceptionBecomes500) {
  ServerFixture server([](const HttpRequest&) -> HttpResult {
    throw std::runtime_error("handler blew up");
  });
  HttpClient client("127.0.0.1", server.port());
  const auto resp = client.request("GET", "/boom");
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("handler blew up"), std::string::npos);
  EXPECT_EQ(server.counters().handler_errors, 1u);
  // The connection survives a handler error (the response was well-formed).
  EXPECT_EQ(client.request("GET", "/boom").status, 500);
}

/// Emits `count` numbered chunks with an idle gap between them.
class CountingSource final : public ChunkSource {
 public:
  explicit CountingSource(int count) : remaining_(count) {}
  Next next(std::string& chunk) override {
    if (remaining_ == 0) return Next::kDone;
    if (!idle_gap_done_) {
      idle_gap_done_ = true;
      return Next::kIdle;  // exercise the re-poll path
    }
    idle_gap_done_ = false;
    chunk = "chunk-" + std::to_string(remaining_--) + "\n";
    return Next::kChunk;
  }

 private:
  int remaining_;
  bool idle_gap_done_ = false;
};

TEST(HttpServerTest, ChunkedStreamingDeliversAllChunks) {
  HttpServer::Config config;
  config.stream_poll_seconds = 0.005;  // keep the idle gaps fast in tests
  ServerFixture server(
      [](const HttpRequest&) {
        HttpResult result;
        result.response.content_type = "text/plain";
        result.stream = std::make_unique<CountingSource>(4);
        return result;
      },
      config);
  HttpClient client("127.0.0.1", server.port());
  std::vector<std::string> chunks;
  const auto resp = client.stream("GET", "/stream",
                                  [&chunks](const std::string& chunk) {
                                    chunks.push_back(chunk);
                                    return true;
                                  });
  EXPECT_EQ(resp.status, 200);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks.front(), "chunk-4\n");
  EXPECT_EQ(chunks.back(), "chunk-1\n");
  // Connection stays usable after a completed chunked stream.
  EXPECT_EQ(client.request("GET", "/stream2").status, 200);
}

TEST(HttpServerTest, ConnectionLimitRejectsExtraClients) {
  HttpServer::Config config;
  config.max_connections = 1;
  ServerFixture server(echo_handler(), config);
  HttpClient first("127.0.0.1", server.port());
  ASSERT_EQ(first.request("GET", "/a").status, 200);
  // The second connection is accepted then immediately closed; the request
  // on it fails (which exact call throws depends on kernel buffering).
  bool second_failed = false;
  try {
    HttpClient second("127.0.0.1", server.port());
    const auto resp = second.request("GET", "/b");
    second_failed = resp.status == 0;
  } catch (const std::runtime_error&) {
    second_failed = true;
  }
  EXPECT_TRUE(second_failed);
  // The first connection is untouched.
  EXPECT_EQ(first.request("GET", "/c").status, 200);
}

// ---------------------------------------------------------------------------
// Failpoints (satellite: net.accept / net.write prove graceful degradation)

class NetFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::compiled_in()) GTEST_SKIP() << "built with DABS_FAILPOINTS=OFF";
    fail::clear();
  }
  void TearDown() override {
    if (fail::compiled_in()) fail::clear();
  }
};

TEST_F(NetFailpointTest, AcceptFaultDropsConnectionServerKeepsListening) {
  ServerFixture server(echo_handler());
  fail::configure("net.accept", "nth:1");
  // First connection hits the fault: it is dropped without a response.
  bool first_failed = false;
  try {
    HttpClient victim("127.0.0.1", server.port());
    const auto resp = victim.request("GET", "/x");
    first_failed = resp.status == 0;
  } catch (const std::runtime_error&) {
    first_failed = true;
  }
  EXPECT_TRUE(first_failed);
  // The listener survived: the next client is served normally.
  HttpClient next("127.0.0.1", server.port());
  EXPECT_EQ(next.request("GET", "/y").status, 200);
  EXPECT_GE(server.counters().accept_faults, 1u);
}

TEST_F(NetFailpointTest, WriteFaultKillsOneConnectionNotTheServer) {
  ServerFixture server(echo_handler());
  fail::configure("net.write", "nth:1");
  HttpClient victim("127.0.0.1", server.port());
  EXPECT_THROW(victim.request("GET", "/x"), std::runtime_error);
  // Server still serving fresh connections.
  HttpClient next("127.0.0.1", server.port());
  EXPECT_EQ(next.request("GET", "/y").status, 200);
  EXPECT_GE(server.counters().write_errors, 1u);
}

}  // namespace
}  // namespace dabs::net
