// PacketQueue close-semantics tests: a producer blocked in push() must
// observe close() and fail without enqueueing, and a consumer must be able
// to distinguish a transiently-empty open queue from a closed-and-drained
// one via the three-way try_pop.  The multi-threaded stress case is the
// one the sanitizer CI jobs (TSan in particular) lean on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "device/packet.hpp"
#include "device/packet_queue.hpp"
#include "util/bit_vector.hpp"

namespace dabs {
namespace {

Packet make_packet(std::uint32_t tag) {
  Packet p;
  p.solution = BitVector(8);
  p.energy = static_cast<Energy>(tag);
  return p;
}

TEST(PacketQueue, BlockedPushObservesClose) {
  PacketQueue q(1);
  ASSERT_TRUE(q.push(make_packet(0)));  // fills the queue

  std::atomic<int> result{-1};
  std::thread producer([&] {
    // Blocks: the queue is full and nobody pops.
    result.store(q.push(make_packet(1)) ? 1 : 0);
  });
  // Let the producer reach the wait; then close — it must wake and fail.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(result.load(), -1);  // still blocked
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // push returned false, packet dropped
  EXPECT_EQ(q.size(), 1u);      // the blocked packet was never enqueued
}

TEST(PacketQueue, TryPopDistinguishesEmptyFromDrained) {
  PacketQueue q(4);
  Packet out;
  // Open and empty: transient — a packet may still arrive.
  EXPECT_EQ(q.try_pop(out), PacketQueue::PopStatus::kEmpty);
  EXPECT_FALSE(q.drained());

  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(q.push(make_packet(i)));
  q.close();

  // Closed but not yet drained: the remainder must still come out.
  EXPECT_FALSE(q.drained());
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(q.try_pop(out), PacketQueue::PopStatus::kItem);
    EXPECT_EQ(out.energy, static_cast<Energy>(i));
  }
  // Closed and drained: terminal — no packet can ever arrive again.
  EXPECT_EQ(q.try_pop(out), PacketQueue::PopStatus::kClosed);
  EXPECT_TRUE(q.drained());
  // And it stays terminal.
  EXPECT_EQ(q.try_pop(out), PacketQueue::PopStatus::kClosed);
}

TEST(PacketQueue, OptionalTryPopStillDrainsAfterClose) {
  PacketQueue q(2);
  ASSERT_TRUE(q.push(make_packet(7)));
  q.close();
  EXPECT_FALSE(q.push(make_packet(8)));  // closed: push fails
  const auto p = q.try_pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->energy, 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(PacketQueue, MultiThreadedCloseRace) {
  // Producers blocked on a full queue + consumers draining via the
  // three-way try_pop + an asynchronous close: every pushed packet is
  // either consumed or cleanly refused, and every consumer terminates on
  // kClosed (no lost wakeups, no use-after-drain).
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr std::uint32_t kPerProducer = 200;
  PacketQueue q(2);  // tiny: forces producers to block
  std::atomic<std::uint64_t> pushed{0}, refused{0}, popped{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        if (q.push(make_packet(i))) {
          pushed.fetch_add(1);
        } else {
          refused.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kConsumers; ++t) {
    threads.emplace_back([&] {
      Packet out;
      for (;;) {
        switch (q.try_pop(out)) {
          case PacketQueue::PopStatus::kItem:
            popped.fetch_add(1);
            break;
          case PacketQueue::PopStatus::kEmpty:
            std::this_thread::yield();
            break;
          case PacketQueue::PopStatus::kClosed:
            return;
        }
      }
    });
  }
  // Let the pipeline run, then slam it shut mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : threads) t.join();
  // Whatever close() left in the queue is still poppable; account for it.
  Packet out;
  while (q.try_pop(out) == PacketQueue::PopStatus::kItem) popped.fetch_add(1);
  EXPECT_EQ(pushed.load(), popped.load());
  EXPECT_EQ(pushed.load() + refused.load(),
            std::uint64_t{kProducers} * kPerProducer);
  EXPECT_TRUE(q.drained());
}

}  // namespace
}  // namespace dabs
