// Tests for the TSP -> QAP -> QUBO reduction chain (paper §II-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/dabs_solver.hpp"
#include "problems/qap.hpp"
#include "problems/tsp.hpp"

namespace dabs {
namespace {

namespace pr = problems;

pr::TspInstance square_tsp() {
  // 4 cities on a unit square (scaled x10): optimal tour = perimeter 40.
  pr::TspInstance inst;
  inst.n = 4;
  inst.name = "square";
  // Order: (0,0), (0,1), (1,1), (1,0).
  const int d[16] = {0, 10, 14, 10,   //
                     10, 0, 10, 14,   //
                     14, 10, 0, 10,   //
                     10, 14, 10, 0};
  inst.dist.assign(d, d + 16);
  return inst;
}

TEST(Tsp, TourLengthClosesTheLoop) {
  const auto inst = square_tsp();
  EXPECT_EQ(inst.tour_length({0, 1, 2, 3}), 40);
  EXPECT_EQ(inst.tour_length({0, 2, 1, 3}), 14 + 10 + 14 + 10);
}

TEST(Tsp, BruteForceFindsPerimeter) {
  const auto inst = square_tsp();
  std::vector<VarIndex> tour;
  EXPECT_EQ(pr::tsp_brute_force(inst, &tour), 40);
  EXPECT_EQ(tour[0], 0u);
  EXPECT_EQ(inst.tour_length(tour), 40);
}

TEST(Tsp, QapCostEqualsTourLengthForAllAssignments) {
  const auto inst = square_tsp();
  const pr::QapInstance qap = pr::tsp_to_qap(inst);
  std::vector<VarIndex> g = {0, 1, 2, 3};
  do {
    // Assignment g: tour position i visits city g(i).
    EXPECT_EQ(qap.cost(g), inst.tour_length(g));
  } while (std::next_permutation(g.begin(), g.end()));
}

TEST(Tsp, QapOptimumEqualsTspOptimum) {
  const auto inst = pr::make_euclidean_tsp(6, 50, 3, "e6");
  const pr::QapInstance qap = pr::tsp_to_qap(inst);
  EXPECT_EQ(pr::qap_brute_force(qap), pr::tsp_brute_force(inst));
}

TEST(Tsp, EuclideanGeneratorIsSymmetricWithTriangleSlack) {
  const auto inst = pr::make_euclidean_tsp(10, 100, 5, "e10");
  for (std::size_t a = 0; a < 10; ++a) {
    EXPECT_EQ(inst.d(a, a), 0);
    for (std::size_t b = 0; b < 10; ++b) {
      EXPECT_EQ(inst.d(a, b), inst.d(b, a));
      EXPECT_GE(inst.d(a, b), 0);
    }
  }
}

TEST(Tsp, EndToEndThroughDabs) {
  const auto inst = pr::make_euclidean_tsp(5, 30, 7, "e5");
  const Energy opt = pr::tsp_brute_force(inst);
  const pr::QapQubo q = pr::qap_to_qubo(pr::tsp_to_qap(inst));

  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.target_energy = q.feasible_energy(opt);
  c.stop.max_batches = 6000;
  const SolveResult r = DabsSolver(c).solve(q.model);
  ASSERT_TRUE(r.reached_target);
  const auto g = pr::decode_assignment(r.best_solution, 5);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(inst.tour_length(*g), opt);
}

TEST(Tsp, RejectsTinyInstances) {
  pr::TspInstance inst;
  inst.n = 2;
  inst.dist = {0, 1, 1, 0};
  EXPECT_THROW((void)pr::tsp_to_qap(inst), std::invalid_argument);
}

}  // namespace
}  // namespace dabs
