// Tests for the Chimera topology and clique minor-embedding.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/exhaustive.hpp"
#include "core/dabs_solver.hpp"
#include "problems/chimera.hpp"
#include "problems/embedding.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

namespace pr = problems;

TEST(Chimera, NodeAndEdgeCountsClosedForm) {
  for (std::size_t m : {1u, 2u, 4u, 8u}) {
    const pr::ChimeraGraph g(m);
    EXPECT_EQ(g.node_count(), 8 * m * m);
    // 16 internal per cell + 4 vertical per column boundary + 4 horizontal.
    const std::size_t expected =
        16 * m * m + 2 * 4 * m * (m - 1);
    EXPECT_EQ(g.edges().size(), expected) << "m=" << m;
  }
}

TEST(Chimera, C16MatchesDWave2000Q) {
  const pr::ChimeraGraph g(16);
  EXPECT_EQ(g.node_count(), 2048u);  // the 2000Q qubit count
}

TEST(Chimera, NoDuplicateEdges) {
  const pr::ChimeraGraph g(3);
  std::set<std::pair<VarIndex, VarIndex>> seen;
  for (auto [a, b] : g.edges()) {
    EXPECT_NE(a, b);
    const auto key = std::minmax(a, b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(Chimera, DegreesMatchStructure) {
  const pr::ChimeraGraph g(3);
  const auto deg = g.degrees();
  // Interior qubit: 4 internal + 2 external = 6; corners have 5.
  EXPECT_EQ(*std::max_element(deg.begin(), deg.end()), 6u);
  EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 5u);
}

TEST(Chimera, AdjacentAgreesWithEdgeList) {
  const pr::ChimeraGraph g(2);
  std::set<std::pair<VarIndex, VarIndex>> edge_set;
  for (auto [a, b] : g.edges()) {
    edge_set.insert(std::minmax(a, b));
  }
  for (VarIndex a = 0; a < g.node_count(); ++a) {
    for (VarIndex b = a + 1; b < g.node_count(); ++b) {
      EXPECT_EQ(g.adjacent(a, b), edge_set.count({a, b}) > 0)
          << a << "," << b;
    }
  }
}

TEST(Chimera, CoordinateRoundTrip) {
  const pr::ChimeraGraph g(4);
  for (VarIndex v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.node_id(g.coord(v)), v);
  }
}

TEST(CliqueEmbedding, ValidForAllSizesUpTo4m) {
  for (std::size_t m : {1u, 2u, 3u}) {
    const pr::ChimeraGraph g(m);
    for (std::size_t k = 1; k <= 4 * m; ++k) {
      const pr::Embedding emb = pr::chimera_clique_embedding(g, k);
      EXPECT_EQ(emb.logical_count(), k);
      EXPECT_NO_THROW(pr::validate_clique_embedding(g, emb))
          << "m=" << m << " k=" << k;
      EXPECT_EQ(emb.max_chain_length(), 2 * m);
    }
    EXPECT_THROW((void)pr::chimera_clique_embedding(g, 4 * m + 1),
                 std::invalid_argument);
  }
}

TEST(CliqueEmbedding, ValidatorCatchesBrokenChains) {
  const pr::ChimeraGraph g(2);
  pr::Embedding emb = pr::chimera_clique_embedding(g, 4);
  // Disconnect a chain by removing its middle qubits.
  pr::Embedding broken = emb;
  auto& chain = broken.chains[0];
  chain.erase(chain.begin() + 1, chain.begin() + 3);
  EXPECT_THROW(pr::validate_clique_embedding(g, broken),
               std::invalid_argument);
  // Overlapping chains.
  pr::Embedding overlap = emb;
  overlap.chains[1][0] = overlap.chains[0][0];
  EXPECT_THROW(pr::validate_clique_embedding(g, overlap),
               std::invalid_argument);
}

TEST(EmbedQubo, ChainConsistentStatesPreserveEnergy) {
  // For any logical X, the physical state that sets every chain to X's
  // value has physical energy == logical energy (penalties vanish).
  const QuboModel logical = testing::random_model(8, 1.0, 5, 42);
  const pr::ChimeraGraph g(2);
  const pr::Embedding emb = pr::chimera_clique_embedding(g, 8);
  const QuboModel physical = pr::embed_qubo(logical, g, emb, 100);

  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVector x = testing::random_solution(8, rng);
    BitVector phys(g.node_count());
    for (std::size_t i = 0; i < 8; ++i) {
      for (const VarIndex v : emb.chains[i]) phys.set(v, x.get(i));
    }
    EXPECT_EQ(physical.energy(phys), logical.energy(x));
    EXPECT_TRUE(pr::chains_intact(phys, emb));
    EXPECT_EQ(pr::unembed(phys, emb), x);
  }
}

TEST(EmbedQubo, BrokenChainPaysPenalty) {
  const QuboModel logical = testing::random_model(4, 1.0, 3, 43);
  const pr::ChimeraGraph g(1);
  const pr::Embedding emb = pr::chimera_clique_embedding(g, 4);
  const Weight strength = 1000;
  const QuboModel physical = pr::embed_qubo(logical, g, emb, strength);

  // All-agree state vs one flipped chain qubit.
  BitVector phys(g.node_count());
  for (const VarIndex v : emb.chains[0]) phys.set(v, true);
  const Energy agree = physical.energy(phys);
  BitVector broken = phys;
  broken.flip(emb.chains[0][0]);
  // Breaking one chain edge costs at least strength minus logical weights.
  EXPECT_GE(physical.energy(broken), agree + strength - 100);
  EXPECT_FALSE(pr::chains_intact(broken, emb));
}

TEST(EmbedQubo, PhysicalOptimumDecodesToLogicalOptimum) {
  // End-to-end: solve the embedded problem, decode, compare with the exact
  // logical optimum.
  const QuboModel logical = testing::random_model(6, 1.0, 4, 44);
  const Energy truth = ExhaustiveSolver().solve(logical).best_energy;

  const pr::ChimeraGraph g(2);
  const pr::Embedding emb = pr::chimera_clique_embedding(g, 6);
  const QuboModel physical = pr::embed_qubo(logical, g, emb);  // auto S

  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.target_energy = truth;  // physical E == logical E when intact
  c.stop.max_batches = 4000;
  const SolveResult r = DabsSolver(c).solve(physical);
  ASSERT_TRUE(r.reached_target)
      << "best " << r.best_energy << " vs truth " << truth;
  const BitVector decoded = pr::unembed(r.best_solution, emb);
  EXPECT_EQ(logical.energy(decoded), truth);
}

TEST(EmbedQubo, AutoChainStrengthIsPositive) {
  const QuboModel logical = testing::random_model(4, 1.0, 7, 45);
  const pr::ChimeraGraph g(1);
  const pr::Embedding emb = pr::chimera_clique_embedding(g, 4);
  // Auto strength must embed without throwing and produce a model whose
  // optimum is chain-consistent (checked via exhaustive on 8 qubits).
  const QuboModel physical = pr::embed_qubo(logical, g, emb, 0);
  const BaselineResult r = ExhaustiveSolver().solve(physical);
  EXPECT_TRUE(pr::chains_intact(r.best_solution, emb));
  EXPECT_EQ(logical.energy(pr::unembed(r.best_solution, emb)),
            r.best_energy);
}

}  // namespace
}  // namespace dabs
