// Property tests for the incremental SearchState: after any flip sequence,
// E(X) and every Delta_k(X) must equal a fresh full recomputation (Eqs.
// 3-5), and BEST must dominate everything the scans have seen.
#include <gtest/gtest.h>

#include <tuple>

#include "qubo/search_state.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::naive_energy;
using testing::random_model;
using testing::random_solution;

void expect_consistent(const SearchState& s) {
  const QuboModel& m = s.model();
  EXPECT_EQ(s.energy(), m.energy(s.solution()));
  std::vector<Energy> fresh;
  m.delta_all(s.solution(), fresh);
  for (VarIndex k = 0; k < m.size(); ++k) {
    ASSERT_EQ(s.delta(k), fresh[k]) << "k=" << k;
  }
}

TEST(SearchState, StartsAtZeroVector) {
  const QuboModel m = random_model(12, 0.5, 5, 1);
  SearchState s(m);
  EXPECT_EQ(s.energy(), 0);
  EXPECT_EQ(s.solution().count(), 0u);
  for (VarIndex k = 0; k < m.size(); ++k) {
    EXPECT_EQ(s.delta(k), m.diag(k));  // Delta_k of the zero vector
  }
  EXPECT_EQ(s.flip_count(), 0u);
}

class SearchStateProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SearchStateProperty, RandomWalkStaysConsistent) {
  const auto [n, density] = GetParam();
  const QuboModel m = random_model(n, density, 9, 400 + n);
  SearchState s(m);
  Rng rng(n * 13 + 7);
  for (int step = 0; step < 200; ++step) {
    s.flip(static_cast<VarIndex>(rng.next_index(n)));
  }
  expect_consistent(s);
  EXPECT_EQ(s.flip_count(), 200u);
}

TEST_P(SearchStateProperty, ResetToArbitraryVector) {
  const auto [n, density] = GetParam();
  const QuboModel m = random_model(n, density, 9, 500 + n);
  SearchState s(m);
  Rng rng(n * 17 + 3);
  s.reset_to(random_solution(n, rng));
  expect_consistent(s);
  EXPECT_EQ(s.flip_count(), 0u);
  // Walk again after the reset.
  for (int step = 0; step < 50; ++step) {
    s.flip(static_cast<VarIndex>(rng.next_index(n)));
  }
  expect_consistent(s);
}

TEST_P(SearchStateProperty, DoubleFlipNegatesDelta) {
  // Eq. 5: Delta_k(f_k(X)) = -Delta_k(X).
  const auto [n, density] = GetParam();
  const QuboModel m = random_model(n, density, 9, 600 + n);
  SearchState s(m);
  Rng rng(n * 19 + 11);
  s.reset_to(random_solution(n, rng));
  for (VarIndex k = 0; k < m.size(); ++k) {
    const Energy before = s.delta(k);
    s.flip(k);
    EXPECT_EQ(s.delta(k), -before);
    s.flip(k);  // restore
    EXPECT_EQ(s.delta(k), before);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SearchStateProperty,
    ::testing::Combine(::testing::Values(2, 5, 16, 33, 64, 100),
                       ::testing::Values(0.1, 0.5, 1.0)));

TEST(SearchState, Eq4CrossUpdate) {
  // Delta_k(f_i(X)) - Delta_k(X) = W_{i,k} sigma(x_i) sigma(x_k), i != k.
  const QuboModel m = random_model(20, 0.7, 9, 77);
  SearchState s(m);
  Rng rng(123);
  s.reset_to(random_solution(20, rng));
  for (int trial = 0; trial < 40; ++trial) {
    const auto i = static_cast<VarIndex>(rng.next_index(20));
    const auto& x = s.solution();
    std::vector<Energy> before(s.deltas().begin(), s.deltas().end());
    std::vector<int> sig(20);
    for (VarIndex k = 0; k < 20; ++k) sig[k] = sigma(x.get(k));
    s.flip(i);
    for (VarIndex k = 0; k < 20; ++k) {
      if (k == i) continue;
      EXPECT_EQ(s.delta(k) - before[k],
                Energy{m.weight(i, k)} * sig[i] * sig[k]);
    }
  }
}

TEST(SearchState, EnergyUpdatesByDelta) {
  const QuboModel m = random_model(15, 0.6, 9, 88);
  SearchState s(m);
  Rng rng(5);
  s.reset_to(random_solution(15, rng));
  for (int trial = 0; trial < 60; ++trial) {
    const auto i = static_cast<VarIndex>(rng.next_index(15));
    const Energy e = s.energy();
    const Energy d = s.delta(i);
    s.flip(i);
    EXPECT_EQ(s.energy(), e + d);
  }
}

TEST(SearchState, ScanFindsTrueMinMax) {
  const QuboModel m = random_model(40, 0.4, 9, 99);
  SearchState s(m);
  Rng rng(6);
  s.reset_to(random_solution(40, rng));
  const ScanResult r = s.scan();
  Energy mn = s.delta(0), mx = s.delta(0);
  for (VarIndex k = 1; k < 40; ++k) {
    mn = std::min(mn, s.delta(k));
    mx = std::max(mx, s.delta(k));
  }
  EXPECT_EQ(r.min_delta, mn);
  EXPECT_EQ(r.max_delta, mx);
  EXPECT_EQ(s.delta(r.argmin), mn);
}

TEST(SearchState, ScanRecordsBestOneBitNeighbor) {
  const QuboModel m = random_model(25, 0.5, 9, 111);
  SearchState s(m);
  Rng rng(7);
  s.reset_to(random_solution(25, rng));
  const Energy e0 = s.energy();
  const ScanResult r = s.scan();
  if (r.min_delta < 0) {
    // BEST must now be the argmin neighbor, without X having moved.
    EXPECT_EQ(s.best_energy(), e0 + r.min_delta);
    EXPECT_EQ(s.energy(), e0);
    EXPECT_EQ(s.best().hamming_distance(s.solution()), 1u);
    EXPECT_EQ(m.energy(s.best()), s.best_energy());
  } else {
    EXPECT_EQ(s.best_energy(), e0);
  }
}

TEST(SearchState, BestTracksVisitedSolutions) {
  const QuboModel m = random_model(30, 0.5, 9, 222);
  SearchState s(m);
  Rng rng(8);
  s.reset_to(random_solution(30, rng));
  Energy lowest_seen = s.energy();
  for (int step = 0; step < 100; ++step) {
    s.flip(static_cast<VarIndex>(rng.next_index(30)));
    lowest_seen = std::min(lowest_seen, s.energy());
  }
  EXPECT_LE(s.best_energy(), lowest_seen);
  EXPECT_EQ(m.energy(s.best()), s.best_energy());
}

TEST(SearchState, ResetBestAnchorsAtCurrent) {
  const QuboModel m = random_model(10, 0.8, 9, 333);
  SearchState s(m);
  Rng rng(9);
  s.reset_to(random_solution(10, rng));
  for (int step = 0; step < 20; ++step) {
    s.flip(static_cast<VarIndex>(rng.next_index(10)));
  }
  s.reset_best();
  EXPECT_EQ(s.best_energy(), s.energy());
  EXPECT_EQ(s.best(), s.solution());
}

TEST(SearchState, IsLocalMinimumMatchesDefinition) {
  const QuboModel m = random_model(18, 0.5, 9, 444);
  SearchState s(m);
  Rng rng(10);
  s.reset_to(random_solution(18, rng));
  // Drive to a local minimum by always flipping the argmin while negative.
  for (;;) {
    const ScanResult r = s.scan();
    if (r.min_delta >= 0) break;
    s.flip(r.argmin);
  }
  EXPECT_TRUE(s.is_local_minimum());
  // Verify against brute force: no 1-bit neighbor is better.
  for (VarIndex k = 0; k < 18; ++k) {
    BitVector fx = s.solution();
    fx.flip(k);
    EXPECT_GE(m.energy(fx), s.energy());
  }
}

TEST(SearchState, ResetReturnsToZeroVector) {
  const QuboModel m = random_model(22, 0.5, 9, 555);
  SearchState s(m);
  Rng rng(11);
  s.reset_to(random_solution(22, rng));
  s.flip(3);
  s.reset();
  EXPECT_EQ(s.energy(), 0);
  EXPECT_EQ(s.solution().count(), 0u);
  EXPECT_EQ(s.flip_count(), 0u);
  expect_consistent(s);
}

}  // namespace
}  // namespace dabs
