// End-to-end integration: the full DABS pipeline (problem reduction ->
// island GA -> virtual devices -> batch searches) must recover exact optima
// on every problem family, and the diversity features must function
// together.
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/abs_solver.hpp"
#include "baseline/exhaustive.hpp"
#include "core/dabs_solver.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"
#include "problems/qasp.hpp"

namespace dabs {
namespace {

namespace pr = problems;

SolverConfig integration_config() {
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.device.batch.search_flip_factor = 0.3;
  c.device.batch.batch_flip_factor = 1.0;
  c.pool_capacity = 20;
  c.mode = ExecutionMode::kSynchronous;
  c.seed = 20230317;
  return c;
}

TEST(Integration, MaxCutFamilyReachesExactOptimum) {
  const auto inst = pr::make_random_maxcut(
      16, 40, pr::EdgeWeights::kPlusMinusOne, 161, "it-mc");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;

  SolverConfig c = integration_config();
  c.stop.target_energy = truth;
  c.stop.max_batches = 2000;
  const SolveResult r = DabsSolver(c).solve(m);
  ASSERT_TRUE(r.reached_target);
  EXPECT_EQ(r.best_energy, truth);
  EXPECT_EQ(inst.cut_value(r.best_solution), -truth);
}

TEST(Integration, QapFamilyReachesExactOptimumAndFeasibility) {
  const auto inst = pr::make_uniform_qap(4, 9, 171, "it-qap");
  const pr::QapQubo q = pr::qap_to_qubo(inst);
  const Energy opt_cost = pr::qap_brute_force(inst);
  const Energy target = q.feasible_energy(opt_cost);

  SolverConfig c = integration_config();
  c.stop.target_energy = target;
  c.stop.max_batches = 4000;
  const SolveResult r = DabsSolver(c).solve(q.model);
  ASSERT_TRUE(r.reached_target) << "best=" << r.best_energy
                                << " target=" << target;
  const auto g = pr::decode_assignment(r.best_solution, inst.n);
  ASSERT_TRUE(g.has_value()) << "optimal QUBO solution must be one-hot";
  EXPECT_EQ(inst.cost(*g), opt_cost);
}

TEST(Integration, QaspFamilyReachesExhaustiveOptimumOnTinyPegasus) {
  // P2 has 48 qubits: too many to enumerate, so instead check against a
  // long SA-equivalent DABS run being stable (self-consistent potential
  // optimum) — and that the Ising/QUBO bookkeeping agrees at the solution.
  const auto inst = pr::make_qasp_small(1, 2, 31);
  SolverConfig c = integration_config();
  c.stop.max_batches = 600;
  const SolveResult r = DabsSolver(c).solve(inst.qubo);
  EXPECT_EQ(inst.qubo.energy(r.best_solution), r.best_energy);
  EXPECT_EQ(inst.ising.hamiltonian(to_spins(r.best_solution)),
            r.best_energy + inst.offset);
  // A second independent run must agree on the optimum (potential-optimum
  // criterion of the paper at test scale).
  SolverConfig c2 = integration_config();
  c2.seed = 999;
  c2.stop.max_batches = 600;
  const SolveResult r2 = DabsSolver(c2).solve(inst.qubo);
  EXPECT_EQ(r.best_energy, r2.best_energy);
}

TEST(Integration, DabsBeatsOrMatchesAbsUnderSameBudget) {
  // The paper's headline claim, at test scale: with the same batch budget,
  // full-diversity DABS never loses to the restricted ABS configuration.
  const auto inst = pr::make_uniform_qap(4, 9, 191, "it-cmp");
  const pr::QapQubo q = pr::qap_to_qubo(inst);

  SolverConfig c = integration_config();
  c.stop.max_batches = 800;
  const SolveResult dabs = DabsSolver(c).solve(q.model);
  const SolveResult abs = AbsSolver(c).solve(q.model);
  EXPECT_LE(dabs.best_energy, abs.best_energy);
}

TEST(Integration, StatsShowDiverseAlgorithmUsage) {
  const auto inst = pr::make_random_maxcut(
      24, 60, pr::EdgeWeights::kPlusMinusOne, 201, "it-div");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  SolverConfig c = integration_config();
  c.stop.max_batches = 500;
  const SolveResult r = DabsSolver(c).solve(m);
  // With 5% exploration over 500 batches every algorithm appears.
  int used = 0;
  for (const auto count : r.stats.algo_executed) used += count > 0;
  EXPECT_GE(used, 4);
  int ops_used = 0;
  for (const auto count : r.stats.op_executed) ops_used += count > 0;
  EXPECT_GE(ops_used, 6);
}

TEST(Integration, XrossoverActuallyExecutes) {
  const auto inst = pr::make_random_maxcut(
      20, 50, pr::EdgeWeights::kPlusOne, 211, "it-xo");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  SolverConfig c = integration_config();
  c.devices = 3;  // a real ring
  c.stop.max_batches = 600;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_GT(r.stats.op_executed[std::size_t(GeneticOp::kXrossover)], 0u);
}

TEST(Integration, ThreadedEndToEndOnQap) {
  const auto inst = pr::make_uniform_qap(3, 9, 221, "it-thr");
  const pr::QapQubo q = pr::qap_to_qubo(inst);
  const Energy target = q.feasible_energy(pr::qap_brute_force(inst));
  SolverConfig c = integration_config();
  c.mode = ExecutionMode::kThreaded;
  c.stop.target_energy = target;
  c.stop.time_limit_seconds = 20.0;
  const SolveResult r = DabsSolver(c).solve(q.model);
  EXPECT_TRUE(r.reached_target);
}

TEST(Integration, TightPoolStillWorks) {
  // Capacity-1 pools exercise the insert/replace edge cases end to end.
  const auto inst = pr::make_random_maxcut(
      16, 40, pr::EdgeWeights::kPlusMinusOne, 231, "it-p1");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  SolverConfig c = integration_config();
  c.pool_capacity = 1;
  c.stop.max_batches = 200;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_NE(r.best_energy, kInfiniteEnergy);
}

}  // namespace
}  // namespace dabs
