// Reproducibility sweep: every main search algorithm, genetic operation,
// and the full synchronous solver must be bit-identical given the same
// seed — the property the virtual-device substrate guarantees and the
// paper's GPU implementation (per-thread Xorshift streams) aims for.
#include <gtest/gtest.h>

#include "core/dabs_solver.hpp"
#include "qubo/search_state.hpp"
#include "search/registry.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

class AlgorithmDeterminism : public ::testing::TestWithParam<MainSearch> {};

TEST_P(AlgorithmDeterminism, IdenticalSeedsIdenticalWalks) {
  const QuboModel m = random_model(36, 0.5, 9, 11000);
  Rng seed_rng(1);
  const BitVector start = random_solution(36, seed_rng);

  SearchState sa(m), sb(m);
  sa.reset_to(start);
  sb.reset_to(start);
  Rng ra(777), rb(777);
  TabuList ta(36, 8), tb(36, 8);
  auto algo_a = make_search_algorithm(GetParam());
  auto algo_b = make_search_algorithm(GetParam());
  algo_a->run(sa, ra, &ta, 120);
  algo_b->run(sb, rb, &tb, 120);
  EXPECT_EQ(sa.solution(), sb.solution());
  EXPECT_EQ(sa.energy(), sb.energy());
  EXPECT_EQ(sa.best(), sb.best());
  EXPECT_EQ(sa.best_energy(), sb.best_energy());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmDeterminism,
                         ::testing::ValuesIn(kAllMainSearches),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

class SolverDeterminism : public ::testing::TestWithParam<MainSearch> {};

TEST_P(SolverDeterminism, SingleAlgorithmConfigIsReproducible) {
  const QuboModel m = random_model(24, 0.5, 9, 11001);
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.algorithms = {GetParam()};
  c.stop.max_batches = 40;
  c.seed = 314159;
  const SolveResult a = DabsSolver(c).solve(m);
  const SolveResult b = DabsSolver(c).solve(m);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_solution, b.best_solution);
  EXPECT_EQ(a.stats.op_executed, b.stats.op_executed);
  EXPECT_EQ(a.stats.improvements.size(), b.stats.improvements.size());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SolverDeterminism,
                         ::testing::ValuesIn(kAllMainSearches),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SolverDeterminismMisc, SynchronousSolveResultBitIdentical64Var) {
  // Full adaptive portfolio (every algorithm, every genetic op) on a
  // 64-variable random model: two synchronous runs with the same seed must
  // agree on every field of SolveResult, not just the best energy.
  const QuboModel m = random_model(64, 0.3, 9, 11004);
  SolverConfig c;
  c.devices = 3;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.max_batches = 120;
  c.seed = 0xD1CED1CE;
  const SolveResult a = DabsSolver(c).solve(m);
  const SolveResult b = DabsSolver(c).solve(m);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_solution, b.best_solution);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.reached_target, b.reached_target);
  EXPECT_EQ(a.stats.algo_executed, b.stats.algo_executed);
  EXPECT_EQ(a.stats.op_executed, b.stats.op_executed);
  EXPECT_EQ(a.stats.improvements.size(), b.stats.improvements.size());
  EXPECT_EQ(m.energy(a.best_solution), a.best_energy);
}

TEST(SolverDeterminismMisc, WarmStartDoesNotBreakReproducibility) {
  const QuboModel m = random_model(20, 0.5, 9, 11002);
  Rng rng(5);
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.warm_start = {random_solution(20, rng), random_solution(20, rng)};
  c.stop.max_batches = 30;
  const SolveResult a = DabsSolver(c).solve(m);
  const SolveResult b = DabsSolver(c).solve(m);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_solution, b.best_solution);
}

TEST(SolverDeterminismMisc, DeviceAndBlockCountChangeTheWalkNotValidity) {
  const QuboModel m = random_model(20, 0.5, 9, 11003);
  for (const std::size_t devices : {1u, 2u, 3u}) {
    for (const std::uint32_t blocks : {1u, 2u}) {
      SolverConfig c;
      c.devices = devices;
      c.device.blocks = blocks;
      c.mode = ExecutionMode::kSynchronous;
      c.stop.max_batches = 30;
      const SolveResult r = DabsSolver(c).solve(m);
      EXPECT_EQ(m.energy(r.best_solution), r.best_energy)
          << devices << "x" << blocks;
    }
  }
}

}  // namespace
}  // namespace dabs
