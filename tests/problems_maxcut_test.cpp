// Tests for the MaxCut reduction and instance generators (paper §II-A).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "baseline/exhaustive.hpp"
#include "problems/maxcut.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

namespace pr = problems;

pr::MaxCutInstance tiny_instance() {
  // Triangle with weights 1, 2, -1 plus a pendant edge.
  pr::MaxCutInstance inst;
  inst.n = 4;
  inst.name = "tiny";
  inst.edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, -1}, {2, 3, 3}};
  return inst;
}

TEST(MaxCut, CutValueCountsCrossingEdges) {
  const auto inst = tiny_instance();
  // Partition {0,2} vs {1,3}: crossing edges (0,1)=1, (1,2)=2, (2,3)=3.
  const BitVector part = BitVector::from_string("0101");
  EXPECT_EQ(inst.cut_value(part), 1 + 2 + 3);
  // All on one side: nothing crosses.
  EXPECT_EQ(inst.cut_value(BitVector(4)), 0);
}

TEST(MaxCut, EnergyEqualsNegativeCutForAllAssignments) {
  const auto inst = tiny_instance();
  const QuboModel m = pr::maxcut_to_qubo(inst);
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    BitVector x(4);
    for (int i = 0; i < 4; ++i) x.set(i, (bits >> i) & 1);
    EXPECT_EQ(m.energy(x), -inst.cut_value(x)) << "bits=" << bits;
  }
}

TEST(MaxCut, RandomInstancePropertyEnergyIsNegativeCut) {
  const auto inst = pr::make_random_maxcut(
      30, 60, pr::EdgeWeights::kPlusMinusOne, 99, "prop");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVector x = testing::random_solution(30, rng);
    EXPECT_EQ(m.energy(x), -inst.cut_value(x));
  }
}

TEST(MaxCut, OptimumMatchesExhaustiveSearch) {
  const auto inst =
      pr::make_random_maxcut(12, 30, pr::EdgeWeights::kPlusMinusOne, 7, "x");
  const QuboModel m = pr::maxcut_to_qubo(inst);
  const BaselineResult r = ExhaustiveSolver().solve(m);
  // Maximum cut by brute force over partitions.
  Energy best_cut = 0;
  for (std::uint64_t bits = 0; bits < (1u << 12); ++bits) {
    BitVector x(12);
    for (int i = 0; i < 12; ++i) x.set(i, (bits >> i) & 1);
    best_cut = std::max(best_cut, inst.cut_value(x));
  }
  EXPECT_EQ(-r.best_energy, best_cut);
}

TEST(MaxCut, GeneratorProducesExactEdgeCount) {
  const auto inst =
      pr::make_random_maxcut(100, 500, pr::EdgeWeights::kPlusOne, 3, "gen");
  EXPECT_EQ(inst.n, 100u);
  EXPECT_EQ(inst.edges.size(), 500u);
  // No duplicates, no self loops, weights all +1.
  std::set<std::pair<VarIndex, VarIndex>> seen;
  for (const auto& e : inst.edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_EQ(e.w, 1);
    EXPECT_TRUE(seen.insert({std::min(e.u, e.v), std::max(e.u, e.v)}).second);
  }
}

TEST(MaxCut, GeneratorIsDeterministicInSeed) {
  const auto a =
      pr::make_random_maxcut(50, 100, pr::EdgeWeights::kPlusMinusOne, 5, "a");
  const auto b =
      pr::make_random_maxcut(50, 100, pr::EdgeWeights::kPlusMinusOne, 5, "b");
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].u, b.edges[i].u);
    EXPECT_EQ(a.edges[i].v, b.edges[i].v);
    EXPECT_EQ(a.edges[i].w, b.edges[i].w);
  }
}

TEST(MaxCut, CompleteGraphHasAllPairs) {
  const auto inst = pr::make_complete_maxcut(20, 1, "K20");
  EXPECT_EQ(inst.edges.size(), 20u * 19 / 2);
  int plus = 0, minus = 0;
  for (const auto& e : inst.edges) {
    EXPECT_TRUE(e.w == 1 || e.w == -1);
    (e.w == 1 ? plus : minus)++;
  }
  EXPECT_GT(plus, 0);
  EXPECT_GT(minus, 0);
}

TEST(MaxCut, PublishedInstanceShapes) {
  const auto k2000 = pr::make_k2000();
  EXPECT_EQ(k2000.n, 2000u);
  EXPECT_EQ(k2000.edges.size(), 2000u * 1999 / 2);
  EXPECT_EQ(k2000.name, "K2000");

  const auto g22 = pr::make_g22_like();
  EXPECT_EQ(g22.n, 2000u);
  EXPECT_EQ(g22.edges.size(), 19990u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(g22.edges[i].w, 1);

  const auto g39 = pr::make_g39_like();
  EXPECT_EQ(g39.n, 2000u);
  EXPECT_EQ(g39.edges.size(), 11778u);
}

TEST(MaxCut, ReductionRejectsBadInstances) {
  pr::MaxCutInstance inst;
  inst.n = 2;
  inst.edges = {{0, 0, 1}};
  EXPECT_THROW((void)pr::maxcut_to_qubo(inst), std::invalid_argument);
  inst.edges = {{0, 5, 1}};
  EXPECT_THROW((void)pr::maxcut_to_qubo(inst), std::invalid_argument);
}

}  // namespace
}  // namespace dabs
