// Tests for the batch search driver (paper §III-B): straight -> alternating
// greedy/main phases under the s and b flip factors.
#include <gtest/gtest.h>

#include "search/batch_search.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

BatchParams quick_params() {
  BatchParams p;
  p.search_flip_factor = 0.2;
  p.batch_flip_factor = 1.0;
  p.tabu_tenure = 8;
  return p;
}

TEST(BatchSearch, MeetsFlipBudget) {
  const QuboModel m = random_model(100, 0.3, 9, 2000);
  BatchSearch bs(m, quick_params(), 1);
  Rng rng(1);
  const BitVector target = random_solution(100, rng);
  const BatchResult r = bs.run(target, MainSearch::kMaxMin);
  // The batch runs until total flips >= b*n (possibly more: it finishes the
  // main/greedy phase in progress).
  EXPECT_GE(r.flips, 100u);
}

TEST(BatchSearch, EndsAtLocalMinimum) {
  // The loop always ends with a Greedy phase, so the walking solution must
  // be a 1-flip local minimum.
  const QuboModel m = random_model(80, 0.4, 9, 2001);
  BatchSearch bs(m, quick_params(), 2);
  Rng rng(2);
  bs.run(random_solution(80, rng), MainSearch::kPositiveMin);
  EXPECT_TRUE(bs.state().is_local_minimum());
}

TEST(BatchSearch, ReportedBestIsConsistent) {
  const QuboModel m = random_model(60, 0.4, 9, 2002);
  BatchSearch bs(m, quick_params(), 3);
  Rng rng(3);
  const BitVector target = random_solution(60, rng);
  const BatchResult r = bs.run(target, MainSearch::kRandomMin);
  EXPECT_EQ(m.energy(r.best), r.best_energy);
  // The best can never be worse than the (greedy-polished) target region;
  // at minimum it must beat the raw target.
  EXPECT_LE(r.best_energy, m.energy(target));
}

TEST(BatchSearch, StatePersistsAcrossBatches) {
  const QuboModel m = random_model(50, 0.5, 9, 2003);
  BatchSearch bs(m, quick_params(), 4);
  Rng rng(4);
  bs.run(random_solution(50, rng), MainSearch::kMaxMin);
  const std::uint64_t after_first = bs.state().flip_count();
  EXPECT_GT(after_first, 0u);
  bs.run(random_solution(50, rng), MainSearch::kCyclicMin);
  EXPECT_GT(bs.state().flip_count(), after_first);  // not reset
}

TEST(BatchSearch, FirstBatchStartsFromZeroVector) {
  // With target = zero vector, the straight phase is a no-op, so the first
  // flips come from greedy: from the zero vector, E can only go down.
  const QuboModel m = random_model(40, 0.5, 9, 2004);
  BatchSearch bs(m, quick_params(), 5);
  const BitVector zero(40);
  const BatchResult r = bs.run(zero, MainSearch::kMaxMin);
  EXPECT_LE(r.best_energy, 0);
}

TEST(BatchSearch, TwoNeighborRunsExactlyOnce) {
  const QuboModel m = random_model(30, 0.5, 9, 2005);
  BatchParams p = quick_params();
  p.batch_flip_factor = 100.0;  // would force many main phases otherwise
  BatchSearch bs(m, p, 6);
  Rng rng(6);
  const BatchResult r = bs.run(random_solution(30, rng),
                               MainSearch::kTwoNeighbor);
  // straight (<= n) + greedy (bounded) + one 2n-1 ripple + greedy: far less
  // than the 100n the budget would demand of a repeating main search.
  EXPECT_LT(r.flips, 100u * 30u / 2);
}

TEST(BatchSearch, DeterministicForSameSeed) {
  const QuboModel m = random_model(45, 0.5, 9, 2006);
  BatchSearch a(m, quick_params(), 77);
  BatchSearch b(m, quick_params(), 77);
  Rng rng(7);
  const BitVector target = random_solution(45, rng);
  const BatchResult ra = a.run(target, MainSearch::kRandomMin);
  const BatchResult rb = b.run(target, MainSearch::kRandomMin);
  EXPECT_EQ(ra.best_energy, rb.best_energy);
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_EQ(ra.flips, rb.flips);
}

TEST(BatchSearch, InstancesAreIndependent) {
  // Running one instance must not perturb another bound to the same model.
  const QuboModel m = random_model(45, 0.5, 9, 2007);
  BatchSearch a(m, quick_params(), 77);
  BatchSearch b(m, quick_params(), 77);
  Rng rng(8);
  const BitVector target = random_solution(45, rng);
  const BatchResult ra1 = a.run(target, MainSearch::kMaxMin);
  // Interleave extra work on b, then replay a's schedule on b.
  const BatchResult rb1 = b.run(target, MainSearch::kMaxMin);
  EXPECT_EQ(ra1.best_energy, rb1.best_energy);
  EXPECT_EQ(a.state().solution(), b.state().solution());
}

TEST(BatchSearch, RejectsBadParams) {
  const QuboModel m = random_model(10, 0.5, 9, 2008);
  BatchParams p;
  p.search_flip_factor = 0.0;
  EXPECT_THROW(BatchSearch(m, p, 1), std::invalid_argument);
  p = {};
  p.batch_flip_factor = -1.0;
  EXPECT_THROW(BatchSearch(m, p, 1), std::invalid_argument);
}

TEST(BatchSearch, SmallBatchFactorStillRunsOneGreedyPhase) {
  const QuboModel m = random_model(25, 0.5, 9, 2009);
  BatchParams p = quick_params();
  p.batch_flip_factor = 1e-9;  // budget of 1 flip
  BatchSearch bs(m, p, 9);
  Rng rng(9);
  bs.run(random_solution(25, rng), MainSearch::kMaxMin);
  EXPECT_TRUE(bs.state().is_local_minimum());
}

/// All-positive weights: the zero vector is the global (and only local)
/// minimum, so greedy phases are cheap and flips are attributable to the
/// main phase exactly.
QuboModel all_positive_model(std::size_t n) {
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) b.add_linear(i, 5);
  for (VarIndex i = 0; i + 1 < static_cast<VarIndex>(n); ++i) {
    b.add_quadratic(i, i + 1, 3);
  }
  return b.build();
}

TEST(BatchSearch, MainPhaseIsClampedToRemainingBudget) {
  // Regression: with budget = 1 flip and target = start, the main phase
  // must be clamped to the single remaining flip instead of running its
  // full s*n stride.  Each main search flips once per iteration, so the
  // batch spends exactly: 0 (walk) + 0 (greedy at the minimum) + 1 (main,
  // clamped) + 1 (terminal greedy undoing it) = 2 flips.  Before the
  // clamp, kMaxMin & co. spent s*n = 5 main flips here, and kTwoNeighbor
  // ignored the budget outright with its 2n-1 ripple.
  const QuboModel m = all_positive_model(25);
  const BitVector zero(25);
  for (const MainSearch algo : kAllMainSearches) {
    BatchParams p = quick_params();  // s = 0.2 -> main stride 5
    p.batch_flip_factor = 1e-9;      // budget = 1 flip
    BatchSearch bs(m, p, 10);
    const BatchResult r = bs.run(zero, algo);
    EXPECT_EQ(r.flips, 2u) << "algo " << static_cast<int>(algo);
    EXPECT_TRUE(bs.state().is_local_minimum())
        << "algo " << static_cast<int>(algo);
    EXPECT_EQ(r.best_energy, 0) << "algo " << static_cast<int>(algo);
  }
}

TEST(BatchSearch, TwoNeighborRippleIsTruncatedByTheBudget) {
  // With a budget below 2n-1 the ripple must stop early instead of
  // spending its full deterministic sweep.
  const QuboModel m = all_positive_model(40);
  const BitVector zero(40);
  BatchParams p = quick_params();
  p.batch_flip_factor = 0.25;  // budget = 10 flips << 2n-1 = 79
  BatchSearch bs(m, p, 11);
  const BatchResult r = bs.run(zero, MainSearch::kTwoNeighbor);
  // walk 0 + greedy 0 + ripple exactly 10 + terminal greedy (<= n).
  EXPECT_GE(r.flips, 10u);
  EXPECT_LT(r.flips, 79u);
  EXPECT_TRUE(bs.state().is_local_minimum());
}

}  // namespace
}  // namespace dabs
