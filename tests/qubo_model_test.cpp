// Unit + property tests for the QUBO model, builder, and Ising conversion.
#include <gtest/gtest.h>

#include <tuple>

#include "qubo/conversion.hpp"
#include "qubo/ising_model.hpp"
#include "qubo/qubo_builder.hpp"
#include "qubo/qubo_model.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::naive_energy;
using testing::random_model;
using testing::random_solution;

TEST(QuboBuilder, AccumulatesDuplicateTerms) {
  QuboBuilder b(3);
  b.add_quadratic(0, 1, 2).add_quadratic(1, 0, 3);  // same edge, both orders
  b.add_linear(2, 5).add_linear(2, -1);
  const QuboModel m = b.build();
  EXPECT_EQ(m.weight(0, 1), 5);
  EXPECT_EQ(m.weight(1, 0), 5);
  EXPECT_EQ(m.diag(2), 4);
  EXPECT_EQ(m.edge_count(), 1u);
}

TEST(QuboBuilder, DropsZeroCouplings) {
  QuboBuilder b(2);
  b.add_quadratic(0, 1, 7).add_quadratic(0, 1, -7);
  const QuboModel m = b.build();
  EXPECT_EQ(m.edge_count(), 0u);
  EXPECT_EQ(m.weight(0, 1), 0);
}

TEST(QuboBuilder, RejectsInvalidIndices) {
  QuboBuilder b(2);
  EXPECT_THROW(b.add_linear(2, 1), std::invalid_argument);
  EXPECT_THROW(b.add_quadratic(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(b.add_quadratic(1, 1, 1), std::invalid_argument);
  EXPECT_THROW(QuboBuilder(0), std::invalid_argument);
}

TEST(QuboModel, CsrIsSymmetric) {
  const QuboModel m = random_model(20, 0.4, 5, 11);
  for (VarIndex i = 0; i < m.size(); ++i) {
    const auto nbrs = m.neighbors(i);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      EXPECT_EQ(m.weight(nbrs[t], i), m.weights(i)[t]);
    }
  }
}

TEST(QuboModel, DegreeAndMaxDegree) {
  QuboBuilder b(4);
  b.add_quadratic(0, 1, 1).add_quadratic(0, 2, 1).add_quadratic(0, 3, 1);
  const QuboModel m = b.build();
  EXPECT_EQ(m.degree(0), 3u);
  EXPECT_EQ(m.degree(1), 1u);
  EXPECT_EQ(m.max_degree(), 3u);
}

TEST(QuboModel, EnergyOfZeroAndOnesVectors) {
  QuboBuilder b(3);
  b.add_linear(0, 1).add_linear(1, 2).add_linear(2, 3);
  b.add_quadratic(0, 1, 10).add_quadratic(1, 2, -4);
  const QuboModel m = b.build();
  BitVector zero(3), ones(3);
  ones.fill(true);
  EXPECT_EQ(m.energy(zero), 0);
  EXPECT_EQ(m.energy(ones), 1 + 2 + 3 + 10 - 4);
}

TEST(QuboModel, EnergyRejectsWrongLength) {
  const QuboModel m = random_model(5, 0.5, 3, 1);
  EXPECT_THROW((void)m.energy(BitVector(4)), std::invalid_argument);
}

// Property sweep: energy() and delta() agree with naive references across
// sizes and densities.
class QuboModelProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(QuboModelProperty, EnergyMatchesNaive) {
  const auto [n, density] = GetParam();
  const QuboModel m = random_model(n, density, 9, 100 + n);
  Rng rng(n * 31 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVector x = random_solution(n, rng);
    EXPECT_EQ(m.energy(x), naive_energy(m, x));
  }
}

TEST_P(QuboModelProperty, DeltaMatchesEnergyDifference) {
  const auto [n, density] = GetParam();
  const QuboModel m = random_model(n, density, 9, 200 + n);
  Rng rng(n * 37 + 5);
  for (int trial = 0; trial < 5; ++trial) {
    BitVector x = random_solution(n, rng);
    const Energy e = m.energy(x);
    for (VarIndex k = 0; k < m.size(); ++k) {
      BitVector fx = x;
      fx.flip(k);
      EXPECT_EQ(m.delta(x, k), m.energy(fx) - e)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST_P(QuboModelProperty, DeltaAllMatchesPerBitDelta) {
  const auto [n, density] = GetParam();
  const QuboModel m = random_model(n, density, 9, 300 + n);
  Rng rng(n * 41 + 3);
  const BitVector x = random_solution(n, rng);
  std::vector<Energy> all;
  m.delta_all(x, all);
  ASSERT_EQ(all.size(), m.size());
  for (VarIndex k = 0; k < m.size(); ++k) {
    EXPECT_EQ(all[k], m.delta(x, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuboModelProperty,
    ::testing::Combine(::testing::Values(2, 3, 8, 17, 40, 64, 65),
                       ::testing::Values(0.1, 0.5, 1.0)));

TEST(QuboModel, FlipBoundDominatesDelta) {
  const QuboModel m = random_model(30, 0.5, 7, 55);
  Rng rng(9);
  const BitVector x = random_solution(30, rng);
  for (VarIndex k = 0; k < m.size(); ++k) {
    EXPECT_LE(std::abs(m.delta(x, k)), m.flip_bound(k));
  }
}

TEST(QuboModel, DescribeMentionsSizeAndDensity) {
  const QuboModel dense = random_model(10, 1.0, 3, 2);
  EXPECT_NE(dense.describe().find("n=10"), std::string::npos);
  EXPECT_NE(dense.describe().find("dense"), std::string::npos);
  const QuboModel sparse = random_model(50, 0.05, 3, 2);
  EXPECT_NE(sparse.describe().find("sparse"), std::string::npos);
}

TEST(IsingModel, HamiltonianDirectEvaluation) {
  IsingModel ising(3);
  ising.add_coupling(0, 1, 2);
  ising.add_coupling(1, 2, -1);
  ising.set_bias(0, 3);
  // S = (+1, -1, +1): H = 2*(+1)(-1) + (-1)(-1)(+1) + 3*(+1) = -2+1+3 = 2.
  EXPECT_EQ(ising.hamiltonian({1, -1, 1}), 2);
}

TEST(IsingModel, RejectsBadSpins) {
  IsingModel ising(2);
  EXPECT_THROW((void)ising.hamiltonian({1, 0}), std::invalid_argument);
  EXPECT_THROW((void)ising.hamiltonian({1}), std::invalid_argument);
  EXPECT_THROW(ising.add_coupling(0, 0, 1), std::invalid_argument);
}

// Ising <-> QUBO equivalence: H(S) = E(X) + offset for every assignment.
class ConversionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConversionProperty, HamiltonianEqualsEnergyPlusOffset) {
  const int n = GetParam();
  Rng rng(n * 7 + 13);
  IsingModel ising(n);
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.next_bernoulli(0.6)) {
        ising.add_coupling(i, j,
                           static_cast<Weight>(rng.next_index(9)) - 4);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    ising.set_bias(i, static_cast<Weight>(rng.next_index(9)) - 4);
  }
  const auto [qubo, offset] = ising_to_qubo(ising);

  // Exhaustive over all 2^n assignments.
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    BitVector x(n);
    std::vector<int> s(n);
    for (int i = 0; i < n; ++i) {
      const bool v = (bits >> i) & 1;
      x.set(i, v);
      s[i] = v ? 1 : -1;
    }
    EXPECT_EQ(ising.hamiltonian(s), qubo.energy(x) + offset);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConversionProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(Conversion, SpinBinaryRoundTrip) {
  Rng rng(3);
  const BitVector x = random_solution(67, rng);
  EXPECT_EQ(to_binary(to_spins(x)), x);
}

TEST(Conversion, SigmaMapping) {
  EXPECT_EQ(sigma(false), -1);
  EXPECT_EQ(sigma(true), 1);
}

}  // namespace
}  // namespace dabs
