// Unit tests for rng: Xorshift64Star, MersenneSeeder, cube-weighted rank.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "rng/seeder.hpp"
#include "rng/xorshift.hpp"

namespace dabs {
namespace {

TEST(Xorshift, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xorshift, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xorshift, ZeroSeedIsRemapped) {
  Rng z(0);
  EXPECT_NE(z.state(), 0u);
  EXPECT_NE(z(), 0u);  // would be stuck at zero otherwise
}

TEST(Xorshift, NextIndexInBounds) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000003ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_index(bound), bound);
    }
  }
}

TEST(Xorshift, NextIndexOfOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_index(1), 0u);
}

TEST(Xorshift, NextIndexCoversRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xorshift, NextUnitInHalfOpenUnitInterval) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xorshift, NextUnitRoughlyUniform) {
  Rng rng(77);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_unit();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xorshift, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Xorshift, BernoulliApproximatesProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bernoulli(0.125);
  EXPECT_NEAR(double(hits) / n, 0.125, 0.01);
}

TEST(Xorshift, NextBitBalanced) {
  Rng rng(21);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.next_bit();
  EXPECT_NEAR(double(ones) / n, 0.5, 0.01);
}

TEST(Seeder, DeterministicFanOut) {
  MersenneSeeder a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_seed(), b.next_seed());
}

TEST(Seeder, SeedsAreDistinct) {
  MersenneSeeder s(7);
  const auto seeds = s.seeds(256);
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
}

TEST(Seeder, NextRngStreamsDiffer) {
  MersenneSeeder s(9);
  Rng a = s.next_rng();
  Rng b = s.next_rng();
  EXPECT_NE(a(), b());
}

TEST(CubeRank, AlwaysInRange) {
  Rng rng(11);
  for (std::size_t m : {1u, 2u, 5u, 100u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(cube_weighted_rank(rng, m), m);
    }
  }
}

TEST(CubeRank, PrefersLowRanks) {
  // floor(r^3 * m): rank 0 has probability (1/m)^{1/3}, far above 1/m.
  Rng rng(13);
  const std::size_t m = 100;
  int zeros = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) zeros += cube_weighted_rank(rng, m) == 0;
  const double p0 = double(zeros) / n;
  EXPECT_NEAR(p0, std::pow(1.0 / m, 1.0 / 3.0), 0.02);  // ~0.215
  EXPECT_GT(p0, 10.0 / m);                              // >> uniform
}

TEST(CubeRank, RejectsEmptyPool) {
  Rng rng(1);
  EXPECT_THROW((void)cube_weighted_rank(rng, 0), std::invalid_argument);
}

TEST(CubeRank, MaxDrawIsClampedIntoRange) {
  // The largest value next_unit() can produce is (2^53 - 1) / 2^53; r^3 * m
  // can round up to exactly m in floating point, which would index one past
  // the end of the pool.  The clamp must pin it (and even an exact 1.0,
  // which only rounding can manufacture) to m - 1.
  const double max_unit =
      static_cast<double>((std::uint64_t{1} << 53) - 1) /
      static_cast<double>(std::uint64_t{1} << 53);
  for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{100}, std::size_t{1} << 40}) {
    EXPECT_EQ(cube_weighted_rank_from_unit(max_unit, m), m - 1) << m;
    EXPECT_EQ(cube_weighted_rank_from_unit(1.0, m), m - 1) << m;
  }
  // Sanity at the other end and in the middle.
  EXPECT_EQ(cube_weighted_rank_from_unit(0.0, 100), 0u);
  EXPECT_EQ(cube_weighted_rank_from_unit(0.5, 100), 12u);  // 0.125 * 100
}

}  // namespace
}  // namespace dabs
