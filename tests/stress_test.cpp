// Concurrency / failure-injection stress tests: queues under contention,
// pools under concurrent mixed access, solver restart behaviour, and
// shutdown edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dabs_solver.hpp"
#include "device/packet_queue.hpp"
#include "evolve/genetic_ops.hpp"
#include "evolve/island_ring.hpp"
#include "evolve/solution_pool.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

TEST(Stress, PacketQueueManyProducersManyConsumers) {
  PacketQueue q(8);
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 200;
  std::atomic<int> consumed{0};
  std::atomic<long long> checksum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      Rng rng(p + 1);
      for (int i = 0; i < kPerProducer; ++i) {
        Packet pkt;
        pkt.solution = random_bit_vector(64, rng);
        pkt.pool_index = static_cast<std::uint32_t>(p);
        pkt.energy = p * kPerProducer + i;
        ASSERT_TRUE(q.push(std::move(pkt)));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto pkt = q.pop()) {
        checksum.fetch_add(pkt->energy);
        consumed.fetch_add(1);
      }
    });
  }
  // Join producers (the first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  long long expected = 0;
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) expected += p * kPerProducer + i;
  }
  EXPECT_EQ(checksum.load(), expected);
}

TEST(Stress, SolutionPoolConcurrentMixedAccess) {
  SolutionPool pool(50, 64);
  {
    Rng rng(1);
    pool.initialize_random(rng);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> inserted{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&pool, &stop, &inserted, w] {
      Rng rng(100 + w);
      Energy e = -1;
      while (!stop.load()) {
        PoolEntry entry;
        entry.solution = random_bit_vector(64, rng);
        entry.energy = e - static_cast<Energy>(rng.next_index(1000));
        if (pool.insert(std::move(entry))) inserted.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&pool, &stop, r] {
      Rng rng(200 + r);
      while (!stop.load()) {
        (void)pool.select_cube_weighted(rng);
        (void)pool.select_uniform(rng);
        (void)pool.best_energy();
        (void)pool.worst_energy();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop = true;
  for (auto& t : threads) t.join();

  EXPECT_GT(inserted.load(), 0);
  EXPECT_EQ(pool.size(), 50u);
  // The pool must still be sorted.
  Energy prev = pool.entry(0).energy;
  for (std::size_t i = 1; i < pool.size(); ++i) {
    const Energy e = pool.entry(i).energy;
    EXPECT_LE(prev, e);
    prev = e;
  }
}

TEST(Stress, ThreadedSolverRepeatedStartStop) {
  // Start/stop cycles must never deadlock or leak threads.
  const QuboModel m = random_model(24, 0.5, 9, 9000);
  for (int round = 0; round < 5; ++round) {
    SolverConfig c;
    c.devices = 2;
    c.device.blocks = 2;
    c.mode = ExecutionMode::kThreaded;
    c.stop.max_batches = 20;
    c.seed = 77 + round;
    const SolveResult r = DabsSolver(c).solve(m);
    EXPECT_GE(r.batches, 20u);
  }
}

TEST(Stress, RestartOnMergeFiresForSinglePointPools) {
  // Pool capacity 1 with two devices merges as soon as both pools hold the
  // same best solution — which a long run on a tiny model guarantees.
  const QuboModel m = random_model(8, 1.0, 3, 9001);
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 1;
  c.pool_capacity = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.merge_check_interval = 4;
  c.stop.max_batches = 3000;
  c.seed = 5;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_GT(r.restarts, 0u) << "merged ring should have restarted";
}

TEST(Stress, RestartDisabledNeverRestarts) {
  const QuboModel m = random_model(8, 1.0, 3, 9002);
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 1;
  c.pool_capacity = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.merge_check_interval = 4;
  c.restart_on_merge = false;
  c.stop.max_batches = 1000;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_EQ(r.restarts, 0u);
}

TEST(Stress, RestartPreservesGlobalBest) {
  // The global best must survive pool restarts (it lives outside pools).
  const QuboModel m = random_model(10, 1.0, 5, 9003);
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 1;
  c.pool_capacity = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.merge_check_interval = 4;
  c.stop.max_batches = 3000;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
  ASSERT_FALSE(r.stats.improvements.empty());
  // The trace's final energy equals the result (no post-restart regression).
  EXPECT_EQ(r.stats.improvements.back().energy, r.best_energy);
}

TEST(Stress, ZeroWeightModelIsHandled) {
  // Degenerate flat landscape: every vector has energy 0.
  const QuboModel m = QuboBuilder(16).build();
  SolverConfig c;
  c.devices = 1;
  c.device.blocks = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.max_batches = 30;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_EQ(r.best_energy, 0);
}

TEST(Stress, OneVariableModel) {
  QuboBuilder b(1);
  b.add_linear(0, -5);
  const QuboModel m = b.build();
  SolverConfig c;
  c.devices = 1;
  c.device.blocks = 1;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.target_energy = -5;
  c.stop.max_batches = 50;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_TRUE(r.reached_target);
  EXPECT_TRUE(r.best_solution.get(0));
}

TEST(Stress, LargeSparseModelSmokeRun) {
  // QASP-scale sparse model through the full pipeline, bounded batches.
  const QuboModel m = random_model(2000, 0.004, 4, 9004);
  SolverConfig c;
  c.devices = 2;
  c.device.blocks = 2;
  c.mode = ExecutionMode::kSynchronous;
  c.stop.max_batches = 8;
  const SolveResult r = DabsSolver(c).solve(m);
  EXPECT_LE(r.best_energy, 0);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
}

}  // namespace
}  // namespace dabs
