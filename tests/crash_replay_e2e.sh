#!/usr/bin/env bash
# Crash-replay integration test for `dabs_cli batch --journal --resume`.
#
#   1. Run a reference batch (no journal) to learn the expected fingerprint
#      set.
#   2. Start the same batch with a journal and SIGKILL it mid-flight — the
#      hardest crash there is: no handlers, no flushing, no goodbyes.
#   3. Re-run with --resume until the batch completes.
#   4. The union of report fingerprints across the crashed run and the
#      resumed runs must equal the reference set — nothing lost, nothing
#      duplicated.
#
# Usage: crash_replay_e2e.sh <path-to-dabs_cli>
set -u

CLI=${1:?usage: crash_replay_e2e.sh <path-to-dabs_cli>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/dabs_crash_replay.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# Problem-generator jobs: hermetic (no model files), long enough that a
# mid-flight kill lands while work is genuinely outstanding.  Distinct
# seeds make every fingerprint unique — no "#N" suffixes to reason about.
JOBS="$WORK/jobs.jsonl"
for i in $(seq 0 11); do
  printf '{"problem": "maxcut", "params": {"n": 24, "m": 60, "seed": %d}, "solver": "sa", "max_batches": 60000, "seed": %d, "tag": "cr%d"}\n' \
    "$((500 + i))" "$i" "$i" >> "$JOBS"
done

fingerprints() {
  # One report object per line; every report carries its fingerprint.
  sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p' "$@" | sort
}

# --- 1. reference: uninterrupted run --------------------------------------
"$CLI" batch "$JOBS" --jobs 2 > "$WORK/reference.jsonl" 2> "$WORK/reference.err" \
  || fail "reference run exited $? ($(cat "$WORK/reference.err"))"
fingerprints "$WORK/reference.jsonl" > "$WORK/expected.txt"
[ "$(wc -l < "$WORK/expected.txt")" -eq 12 ] || fail "reference run produced $(wc -l < "$WORK/expected.txt") fingerprints, wanted 12"

# --- 2. journaled run, SIGKILLed mid-flight -------------------------------
JOURNAL="$WORK/journal.jsonl"
"$CLI" batch "$JOBS" --jobs 2 --journal "$JOURNAL" > "$WORK/run1.jsonl" 2> "$WORK/run1.err" &
VICTIM=$!
# Kill once the journal shows real progress (at least one job started) so
# the crash lands mid-batch, not before or after the interesting window.
for _ in $(seq 1 200); do
  if [ -f "$JOURNAL" ] && grep -q '"event":"started"' "$JOURNAL"; then
    break
  fi
  if ! kill -0 "$VICTIM" 2>/dev/null; then
    break  # finished before we could kill it: resume is then a no-op
  fi
  sleep 0.05
done
kill -9 "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
[ -f "$JOURNAL" ] || fail "journaled run never created the journal"

# --- 3. resume -------------------------------------------------------------
# Exit 0 from a --resume pass means every job that was not already terminal
# in the journal ran to completion, so one clean pass finishes the set.
"$CLI" batch "$JOBS" --jobs 2 --journal "$JOURNAL" --resume \
  > "$WORK/resume1.jsonl" 2> "$WORK/resume1.err" \
  || fail "resume exited $? ($(cat "$WORK/resume1.err"))"

# --- 4. union check: nothing lost, nothing duplicated ----------------------
# Only count completed reports — the torn run1 tail may hold a partial line.
grep -h '"status":"done"' "$WORK"/run1.jsonl "$WORK"/resume*.jsonl \
  | sed -n 's/.*"fingerprint":"\([^"]*\)".*/\1/p' | sort > "$WORK/actual_all.txt"
sort -u "$WORK/actual_all.txt" > "$WORK/actual_unique.txt"

diff "$WORK/expected.txt" "$WORK/actual_unique.txt" >&2 \
  || fail "resumed fingerprint set differs from the uninterrupted reference"
cmp -s "$WORK/actual_all.txt" "$WORK/actual_unique.txt" \
  || fail "some job was reported done more than once across the runs"

echo "PASS: 12/12 fingerprints recovered across crash + resume"
