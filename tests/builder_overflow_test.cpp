// Overflow-hardening tests for QuboBuilder and RunStats JSON output.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/run_stats.hpp"
#include "io/json_writer.hpp"
#include "qubo/qubo_builder.hpp"

namespace dabs {
namespace {

constexpr Weight kMaxW = std::numeric_limits<Weight>::max();

TEST(BuilderOverflow, LinearAccumulationOverflowIsRejected) {
  QuboBuilder b(2);
  b.add_linear(0, kMaxW).add_linear(0, 1);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(BuilderOverflow, QuadraticAccumulationOverflowIsRejected) {
  QuboBuilder b(2);
  b.add_quadratic(0, 1, kMaxW).add_quadratic(0, 1, kMaxW);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(BuilderOverflow, CancellingTermsAreFine) {
  // Intermediate sums may exceed int32 as long as the final value fits.
  QuboBuilder b(2);
  b.add_linear(0, kMaxW).add_linear(0, kMaxW).add_linear(0, -kMaxW);
  b.add_quadratic(0, 1, kMaxW).add_quadratic(0, 1, -kMaxW)
      .add_quadratic(0, 1, 5);
  const QuboModel m = b.build();
  EXPECT_EQ(m.diag(0), kMaxW);
  EXPECT_EQ(m.weight(0, 1), 5);
}

TEST(BuilderOverflow, ExactBoundaryValuesSurvive) {
  QuboBuilder b(2);
  b.add_linear(0, kMaxW);
  b.add_linear(1, std::numeric_limits<Weight>::min());
  const QuboModel m = b.build();
  EXPECT_EQ(m.diag(0), kMaxW);
  EXPECT_EQ(m.diag(1), std::numeric_limits<Weight>::min());
}

TEST(RunStatsJson, EmitsWellFormedObject) {
  RunStats stats;
  stats.record_batch(MainSearch::kCyclicMin, GeneticOp::kXrossover);
  stats.record_batch(MainSearch::kCyclicMin, GeneticOp::kBest);
  stats.record_improvement(0.25, -42, MainSearch::kCyclicMin,
                           GeneticOp::kXrossover);
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    stats.snapshot().write_json(json);
    EXPECT_TRUE(json.complete());
  }
  const std::string s = out.str();
  EXPECT_NE(s.find("\"batches\":2"), std::string::npos);
  EXPECT_NE(s.find("\"CyclicMin\":2"), std::string::npos);
  EXPECT_NE(s.find("\"Xrossover\":1"), std::string::npos);
  EXPECT_NE(s.find("\"energy\":-42"), std::string::npos);
}

TEST(RunStatsJson, NestsUnderAKeyInsideAnObject) {
  RunStats stats;
  stats.record_batch(MainSearch::kMaxMin, GeneticOp::kZero);
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("run", std::int64_t{1});
    stats.snapshot().write_json(json, "stats");
    json.end_object();
  }
  EXPECT_NE(out.str().find("\"stats\":{"), std::string::npos);
}

}  // namespace
}  // namespace dabs
