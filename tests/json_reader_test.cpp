// Unit tests for the minimal JSON parser backing the JSONL batch front end.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "io/json_reader.hpp"

namespace dabs {
namespace {

using io::JsonValue;
using io::parse_json;

TEST(JsonReader, ScalarValues) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonReader, IntegersKeepExactView) {
  // Full int64 range survives; the double view coexists.
  const JsonValue v = parse_json("-9223372036854775808");
  EXPECT_EQ(v.as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_json("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_json("100").as_double(), 100.0);
}

TEST(JsonReader, NonIntegralNumberRejectsIntView) {
  EXPECT_THROW(parse_json("1.5").as_int(), std::invalid_argument);
  EXPECT_THROW(parse_json("1e300").as_int(), std::invalid_argument);
  // Integral but beyond int64: still parses, double view only.
  EXPECT_THROW(parse_json("92233720368547758080").as_int(),
               std::invalid_argument);
  EXPECT_GT(parse_json("92233720368547758080").as_double(), 9.2e18);
}

TEST(JsonReader, ObjectsAndArrays) {
  const JsonValue v = parse_json(
      R"({"solver": "tabu", "opts": {"tenure": 8}, "seeds": [1, 2, 3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("solver")->as_string(), "tabu");
  EXPECT_EQ(v.find("opts")->find("tenure")->as_int(), 8);
  ASSERT_EQ(v.find("seeds")->as_array().size(), 3u);
  EXPECT_EQ(v.find("seeds")->as_array()[2].as_int(), 3);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(parse_json("[]").as_array().size(), 0u);
  EXPECT_EQ(parse_json("{}").as_object().size(), 0u);
}

TEST(JsonReader, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonReader, WhitespaceTolerant) {
  EXPECT_EQ(parse_json(" \t\r\n { \"k\" : 1 } \n").find("k")->as_int(), 1);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("{}{}"), std::invalid_argument);  // trailing
  EXPECT_THROW(parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1 2]"), std::invalid_argument);
  EXPECT_THROW(parse_json("nul"), std::invalid_argument);
  EXPECT_THROW(parse_json("01x"), std::invalid_argument);
  EXPECT_THROW(parse_json("1."), std::invalid_argument);
  // RFC 8259: no leading zeros ("0" itself and "0.5" stay valid).
  EXPECT_THROW(parse_json("01"), std::invalid_argument);
  EXPECT_THROW(parse_json("-007"), std::invalid_argument);
  EXPECT_EQ(parse_json("0").as_int(), 0);
  EXPECT_EQ(parse_json("-0").as_int(), 0);
  EXPECT_DOUBLE_EQ(parse_json("0.5").as_double(), 0.5);
  EXPECT_THROW(parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_json("\"bad\\q\""), std::invalid_argument);
  EXPECT_THROW(parse_json("\"\\ud83dx\""), std::invalid_argument);
  EXPECT_THROW(parse_json(std::string(1, '\x01')), std::invalid_argument);
}

TEST(JsonReader, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a":1,"a":2})"), std::invalid_argument);
}

TEST(JsonReader, RejectsRunawayNesting) {
  const std::string deep(100, '[');
  EXPECT_THROW(parse_json(deep), std::invalid_argument);
}

TEST(JsonReader, KindMismatchNamesKinds) {
  try {
    parse_json("[1]").as_string();
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
  }
}

TEST(JsonReader, ErrorsCarryByteOffset) {
  try {
    parse_json("{\"a\": nope}");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonReader, EveryPrefixOfAValidDocumentIsRejected) {
  // What a network reader sees when a peer hangs up mid-message: the
  // document split at an arbitrary byte.  Every strict prefix must throw
  // (never return a half-parsed value) and the parser must not crash.
  const std::string doc =
      R"({"problem": "maxcut", "params": {"n": 24, "seed": -3},)"
      R"( "limits": [0.5, 1e3, true, null], "tag": "a\"bé"})";
  ASSERT_NO_THROW(parse_json(doc));
  for (std::size_t cut = 0; cut < doc.size(); ++cut) {
    EXPECT_THROW(parse_json(doc.substr(0, cut)), std::invalid_argument)
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(JsonReader, DocumentsEndingMidTokenSayWhere) {
  // Truncations that land inside a token report "unexpected end of input"
  // (the error path the HTTP server's 400s surface to clients).
  const char* truncated[] = {
      "{\"key\"",            // object missing colon and value
      "{\"key\":",           // value never starts
      "[1, 2,",              // array missing element
      "\"mid-str",           // string missing close quote
      "\"esc\\",             // string ends inside an escape
      "\"u\\u00",            // string ends inside a \u escape
      "tru",                 // literal cut short
      "-",                   // number cut after sign
      "1e",                  // number cut inside exponent
  };
  for (const char* doc : truncated) {
    try {
      parse_json(doc);
      ADD_FAILURE() << "parsed truncated document: " << doc;
    } catch (const std::invalid_argument& e) {
      // Must be diagnosed as premature end (or the malformed token the cut
      // produced), never an out-of-range crash.
      EXPECT_FALSE(std::string(e.what()).empty()) << doc;
    }
  }
  try {
    parse_json("{\"key\": ");
    ADD_FAILURE() << "parsed document with missing value";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unexpected end of input"),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonReader, SplitInputMustBeReassembledBeforeParsing) {
  // parse_json is whole-document: feeding the halves of a split message
  // separately throws on both, while their concatenation parses.  (This
  // pins the contract the HTTP body path relies on: buffer until
  // Content-Length bytes arrived, then parse once.)
  const std::string doc = R"({"a": [1, 2, 3], "b": "text"})";
  for (const std::size_t cut : {5u, 12u, 20u}) {
    const std::string head = doc.substr(0, cut);
    const std::string tail = doc.substr(cut);
    EXPECT_THROW(parse_json(head), std::invalid_argument);
    EXPECT_THROW(parse_json(tail), std::invalid_argument);
    EXPECT_EQ(parse_json(head + tail).find("b")->as_string(), "text");
  }
}

}  // namespace
}  // namespace dabs
