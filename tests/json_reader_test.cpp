// Unit tests for the minimal JSON parser backing the JSONL batch front end.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "io/json_reader.hpp"

namespace dabs {
namespace {

using io::JsonValue;
using io::parse_json;

TEST(JsonReader, ScalarValues) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonReader, IntegersKeepExactView) {
  // Full int64 range survives; the double view coexists.
  const JsonValue v = parse_json("-9223372036854775808");
  EXPECT_EQ(v.as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse_json("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse_json("100").as_double(), 100.0);
}

TEST(JsonReader, NonIntegralNumberRejectsIntView) {
  EXPECT_THROW(parse_json("1.5").as_int(), std::invalid_argument);
  EXPECT_THROW(parse_json("1e300").as_int(), std::invalid_argument);
  // Integral but beyond int64: still parses, double view only.
  EXPECT_THROW(parse_json("92233720368547758080").as_int(),
               std::invalid_argument);
  EXPECT_GT(parse_json("92233720368547758080").as_double(), 9.2e18);
}

TEST(JsonReader, ObjectsAndArrays) {
  const JsonValue v = parse_json(
      R"({"solver": "tabu", "opts": {"tenure": 8}, "seeds": [1, 2, 3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("solver")->as_string(), "tabu");
  EXPECT_EQ(v.find("opts")->find("tenure")->as_int(), 8);
  ASSERT_EQ(v.find("seeds")->as_array().size(), 3u);
  EXPECT_EQ(v.find("seeds")->as_array()[2].as_int(), 3);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(parse_json("[]").as_array().size(), 0u);
  EXPECT_EQ(parse_json("{}").as_object().size(), 0u);
}

TEST(JsonReader, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonReader, WhitespaceTolerant) {
  EXPECT_EQ(parse_json(" \t\r\n { \"k\" : 1 } \n").find("k")->as_int(), 1);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("{}{}"), std::invalid_argument);  // trailing
  EXPECT_THROW(parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1 2]"), std::invalid_argument);
  EXPECT_THROW(parse_json("nul"), std::invalid_argument);
  EXPECT_THROW(parse_json("01x"), std::invalid_argument);
  EXPECT_THROW(parse_json("1."), std::invalid_argument);
  // RFC 8259: no leading zeros ("0" itself and "0.5" stay valid).
  EXPECT_THROW(parse_json("01"), std::invalid_argument);
  EXPECT_THROW(parse_json("-007"), std::invalid_argument);
  EXPECT_EQ(parse_json("0").as_int(), 0);
  EXPECT_EQ(parse_json("-0").as_int(), 0);
  EXPECT_DOUBLE_EQ(parse_json("0.5").as_double(), 0.5);
  EXPECT_THROW(parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_json("\"bad\\q\""), std::invalid_argument);
  EXPECT_THROW(parse_json("\"\\ud83dx\""), std::invalid_argument);
  EXPECT_THROW(parse_json(std::string(1, '\x01')), std::invalid_argument);
}

TEST(JsonReader, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a":1,"a":2})"), std::invalid_argument);
}

TEST(JsonReader, RejectsRunawayNesting) {
  const std::string deep(100, '[');
  EXPECT_THROW(parse_json(deep), std::invalid_argument);
}

TEST(JsonReader, KindMismatchNamesKinds) {
  try {
    parse_json("[1]").as_string();
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
  }
}

TEST(JsonReader, ErrorsCarryByteOffset) {
  try {
    parse_json("{\"a\": nope}");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

}  // namespace
}  // namespace dabs
