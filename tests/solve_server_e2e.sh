#!/usr/bin/env bash
# End-to-end test for `dabs_cli serve`: drives the HTTP API with curl
# (submit / status / events stream / cancel), SIGKILLs the server
# mid-flight, restarts it with --resume, and asserts the journal shows
# every accepted job reaching `done` exactly once — no job lost, none
# duplicated.
#
# The cancel test runs AFTER the crash/resume invariant check on purpose:
# a cancelled job is deliberately non-terminal for resume (it re-enqueues,
# see job_journal.hpp), so mixing one into the kill window would make the
# "exactly one done per fingerprint" assertion meaningless.
#
# Usage: solve_server_e2e.sh <path-to-dabs_cli>
set -u

CLI=${1:?usage: solve_server_e2e.sh <path-to-dabs_cli>}
command -v curl >/dev/null 2>&1 || { echo "SKIP: curl not available" >&2; exit 77; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/dabs_solve_server.XXXXXX")
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  [ -f "$WORK/server.err" ] && sed 's/^/  server: /' "$WORK/server.err" >&2
  exit 1
}

PORT=$(( 20000 + $$ % 20000 ))
BASE="http://127.0.0.1:$PORT/v1"
JOURNAL="$WORK/journal.jsonl"

job_body() {  # job_body <seed> <max_batches>
  printf '{"problem": "maxcut", "params": {"n": 24, "m": 60, "seed": %d}, "solver": "sa", "max_batches": %d, "seed": %d, "tag": "e2e%d"}' \
    "$1" "$2" "$1" "$1"
}

start_server() {  # start_server [extra args...]
  "$CLI" serve --port "$PORT" --jobs 2 --journal "$JOURNAL" "$@" \
    2>> "$WORK/server.err" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.05
  done
  fail "server never answered /healthz"
}

wait_state() {  # wait_state <id> <state>
  for _ in $(seq 1 400); do
    case "$(curl -sf "$BASE/jobs/$1")" in *"\"state\":\"$2\""*) return 0 ;; esac
    sleep 0.05
  done
  fail "job $1 never reached state $2: $(curl -sf "$BASE/jobs/$1")"
}

# --- 1. basic lifecycle over HTTP ------------------------------------------
start_server

curl -sf "$BASE/solvers"  | grep -q '"sa"'   || fail "/v1/solvers missing sa"
curl -sf "$BASE/problems" | grep -q 'maxcut' || fail "/v1/problems missing maxcut"

# A quick job: submit, poll to done, check the report and the event stream.
QUICK=$(curl -sf -X POST "$BASE/jobs" -d "$(job_body 1 20000)") \
  || fail "submit rejected"
QUICK_ID=$(printf '%s' "$QUICK" | sed -n 's/.*"job_id":\([0-9]*\).*/\1/p')
[ -n "$QUICK_ID" ] || fail "submit response had no job_id: $QUICK"
wait_state "$QUICK_ID" done
curl -sf "$BASE/jobs/$QUICK_ID" | grep -q '"verified":"true"' \
  || fail "done report missing verify extras"
curl -sf "$BASE/jobs/$QUICK_ID/events" | grep -q '"kind":"new_best"' \
  || fail "event stream had no new_best event"

# Error mapping stays HTTP-shaped.
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/jobs/99999")" = 404 ] \
  || fail "unknown id was not a 404"
[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/jobs" -d '{bad')" = 400 ] \
  || fail "malformed body was not a 400"

# --- 2. SIGKILL mid-flight --------------------------------------------------
# Load up in-flight work, then kill -9: no handlers, no flushing.
for seed in 10 11 12 13 14 15; do
  curl -sf -X POST "$BASE/jobs" -d "$(job_body "$seed" 60000)" >/dev/null \
    || fail "bulk submit $seed rejected"
done
grep -q '"event":"started"' "$JOURNAL" 2>/dev/null || sleep 0.3
kill -9 "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

# Accepted set = fingerprints of complete submitted records (a kill -9 can
# tear the final journal line; replay ignores torn lines, so must we).
grep '}$' "$JOURNAL" | sed -n 's/.*"event":"submitted".*"fp":"\([^"]*\)".*/\1/p' \
  | sort -u > "$WORK/accepted_fps.txt"
ACCEPTED=$(wc -l < "$WORK/accepted_fps.txt")
[ "$ACCEPTED" -eq 7 ] || fail "journal holds $ACCEPTED accepted jobs, wanted 7"

# --- 3. restart with --resume ----------------------------------------------
start_server --resume

for _ in $(seq 1 600); do
  DONE=$(grep '}$' "$JOURNAL" | grep -c '"event":"done"')
  [ "$DONE" -ge "$ACCEPTED" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "resumed server died"
  sleep 0.1
done

# --- 4. journal invariants: nothing lost, nothing duplicated ----------------
grep '}$' "$JOURNAL" | sed -n 's/.*"event":"done".*"fp":"\([^"]*\)".*/\1/p' \
  | sort > "$WORK/done_all.txt"
sort -u "$WORK/done_all.txt" > "$WORK/done_unique.txt"

diff "$WORK/accepted_fps.txt" "$WORK/done_unique.txt" >&2 \
  || fail "accepted and done fingerprint sets differ (job lost or invented)"
cmp -s "$WORK/done_all.txt" "$WORK/done_unique.txt" \
  || fail "some job was marked done more than once across the runs"

curl -sf "$BASE/stats" | grep -q '"resumed":' || fail "/v1/stats missing resumed"

# --- 5. cancel on the live resumed server ----------------------------------
SLOW=$(curl -sf -X POST "$BASE/jobs" -d "$(job_body 2 4000000000)") \
  || fail "slow submit rejected"
SLOW_ID=$(printf '%s' "$SLOW" | sed -n 's/.*"job_id":\([0-9]*\).*/\1/p')
curl -sf -X DELETE "$BASE/jobs/$SLOW_ID" >/dev/null || fail "cancel rejected"
wait_state "$SLOW_ID" cancelled

kill -TERM "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

echo "PASS: $ACCEPTED jobs accepted over HTTP, each done exactly once across kill -9 + --resume"
