// Tests for the virtual-device substrate: packets, queues, devices, groups.
#include <gtest/gtest.h>

#include <thread>

#include "device/device_group.hpp"
#include "device/packet.hpp"
#include "device/packet_queue.hpp"
#include "device/virtual_device.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;
using testing::random_solution;

Packet make_test_packet(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Packet p;
  p.solution = random_solution(n, rng);
  p.algo = MainSearch::kMaxMin;
  p.op = GeneticOp::kMutation;
  return p;
}

TEST(Packet, VoidEnergyUntilDeviceFillsIt) {
  const Packet p = make_test_packet(16, 1);
  EXPECT_FALSE(p.has_energy());
}

TEST(Packet, DescribeRendersTableOneStyle) {
  Packet p = make_test_packet(16, 2);
  const std::string host_to_dev = describe(p);
  EXPECT_NE(host_to_dev.find("void"), std::string::npos);
  EXPECT_NE(host_to_dev.find("MaxMin"), std::string::npos);
  EXPECT_NE(host_to_dev.find("Mutation"), std::string::npos);
  p.energy = -1340;
  EXPECT_NE(describe(p).find("-1340"), std::string::npos);
}

TEST(PacketQueue, FifoOrder) {
  PacketQueue q(4);
  for (int i = 0; i < 3; ++i) {
    Packet p = make_test_packet(8, i);
    p.pool_index = i;
    ASSERT_TRUE(q.push(std::move(p)));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto p = q.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->pool_index, i);
  }
}

TEST(PacketQueue, TryPushFailsWhenFull) {
  PacketQueue q(1);
  EXPECT_TRUE(q.try_push(make_test_packet(8, 1)));
  EXPECT_FALSE(q.try_push(make_test_packet(8, 2)));
  (void)q.try_pop();
  EXPECT_TRUE(q.try_push(make_test_packet(8, 3)));
}

TEST(PacketQueue, TryPopOnEmptyReturnsNullopt) {
  PacketQueue q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(PacketQueue, CloseDrainsThenEnds) {
  PacketQueue q(4);
  ASSERT_TRUE(q.push(make_test_packet(8, 1)));
  q.close();
  EXPECT_FALSE(q.push(make_test_packet(8, 2)));  // rejected after close
  EXPECT_TRUE(q.pop().has_value());              // drains the remainder
  EXPECT_FALSE(q.pop().has_value());             // then signals end
}

TEST(PacketQueue, CloseReleasesBlockedPopper) {
  PacketQueue q(2);
  std::thread waiter([&q] {
    const auto p = q.pop();  // blocks until close
    EXPECT_FALSE(p.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  waiter.join();
}

TEST(PacketQueue, CloseReleasesBlockedPusher) {
  PacketQueue q(1);
  ASSERT_TRUE(q.push(make_test_packet(8, 1)));
  std::thread pusher([&q] {
    EXPECT_FALSE(q.push(make_test_packet(8, 2)));  // blocked, then rejected
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  pusher.join();
}

TEST(PacketQueue, RejectsZeroCapacity) {
  EXPECT_THROW(PacketQueue(0), std::invalid_argument);
}

DeviceConfig quick_device_config() {
  DeviceConfig c;
  c.blocks = 2;
  c.queue_capacity = 4;
  c.batch.search_flip_factor = 0.2;
  c.batch.batch_flip_factor = 0.5;
  return c;
}

TEST(VirtualDevice, ExecuteFillsEnergyAndPreservesMetadata) {
  const QuboModel m = random_model(40, 0.4, 9, 3000);
  MersenneSeeder seeder(1);
  VirtualDevice dev(m, quick_device_config(), seeder);
  Packet p = make_test_packet(40, 3);
  p.pool_index = 7;
  const Packet out = dev.execute(p, 0);
  EXPECT_TRUE(out.has_energy());
  EXPECT_EQ(m.energy(out.solution), out.energy);
  EXPECT_EQ(out.algo, p.algo);
  EXPECT_EQ(out.op, p.op);
  EXPECT_EQ(out.pool_index, 7u);
}

TEST(VirtualDevice, SynchronousProcessingRoundRobins) {
  const QuboModel m = random_model(30, 0.4, 9, 3001);
  MersenneSeeder seeder(2);
  VirtualDevice dev(m, quick_device_config(), seeder);
  EXPECT_FALSE(dev.process_next());  // empty inbox
  ASSERT_TRUE(dev.inbox().try_push(make_test_packet(30, 4)));
  ASSERT_TRUE(dev.inbox().try_push(make_test_packet(30, 5)));
  EXPECT_TRUE(dev.process_next());
  EXPECT_TRUE(dev.process_next());
  EXPECT_EQ(dev.batches_executed(), 2u);
  EXPECT_EQ(dev.outbox().size(), 2u);
}

TEST(VirtualDevice, ThreadedModeProcessesAllPackets) {
  const QuboModel m = random_model(30, 0.4, 9, 3002);
  MersenneSeeder seeder(3);
  VirtualDevice dev(m, quick_device_config(), seeder);
  ThreadPool pool(dev.block_count());
  dev.start(pool);
  const int kPackets = 12;
  int results = 0;
  std::thread producer([&dev] {
    for (int i = 0; i < kPackets; ++i) {
      dev.inbox().push(make_test_packet(30, 100 + i));
    }
  });
  for (int i = 0; i < kPackets; ++i) {
    const auto p = dev.outbox().pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(m.energy(p->solution), p->energy);
    ++results;
  }
  producer.join();
  dev.stop();
  EXPECT_EQ(results, kPackets);
  EXPECT_EQ(dev.batches_executed(), static_cast<std::uint64_t>(kPackets));
}

TEST(VirtualDevice, BulkBlocksAnswerEveryPacket) {
  // replicas > 1: each block gathers several inbox packets per pass and
  // must still answer every single one with a consistent result packet.
  const QuboModel m = random_model(40, 0.4, 9, 3010);
  MersenneSeeder seeder(31);
  DeviceConfig cfg;
  cfg.blocks = 2;
  cfg.replicas = 8;
  cfg.queue_capacity = 4;  // bumped to >= replicas internally
  VirtualDevice dev(m, cfg, seeder);
  EXPECT_EQ(dev.replicas_per_block(), 8u);
  EXPECT_GE(dev.inbox().capacity(), 8u);
  ThreadPool pool(dev.block_count());
  dev.start(pool);
  const int kPackets = 40;
  std::thread producer([&dev] {
    for (int i = 0; i < kPackets; ++i) {
      dev.inbox().push(make_test_packet(40, 200 + i));
    }
  });
  for (int i = 0; i < kPackets; ++i) {
    const auto p = dev.outbox().pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(m.energy(p->solution), p->energy);
    EXPECT_EQ(p->algo, MainSearch::kMaxMin);  // metadata preserved
  }
  producer.join();
  dev.stop();
  EXPECT_EQ(dev.batches_executed(), static_cast<std::uint64_t>(kPackets));
}

TEST(VirtualDevice, BulkBlocksRejectSynchronousEntryPoints) {
  const QuboModel m = random_model(20, 0.5, 9, 3011);
  MersenneSeeder seeder(32);
  DeviceConfig cfg;
  cfg.replicas = 4;
  VirtualDevice dev(m, cfg, seeder);
  EXPECT_THROW((void)dev.process_next(), std::invalid_argument);
  EXPECT_THROW((void)dev.execute(make_test_packet(20, 1), 0),
               std::invalid_argument);
}

TEST(VirtualDevice, StopWithoutStartIsSafe) {
  const QuboModel m = random_model(10, 0.5, 9, 3003);
  MersenneSeeder seeder(4);
  VirtualDevice dev(m, quick_device_config(), seeder);
  dev.stop();
  SUCCEED();
}

TEST(VirtualDevice, StopUnblocksIdleWorkers) {
  const QuboModel m = random_model(10, 0.5, 9, 3004);
  MersenneSeeder seeder(5);
  auto dev = std::make_unique<VirtualDevice>(m, quick_device_config(), seeder);
  ThreadPool pool(dev->block_count());
  dev->start(pool);
  dev->stop();  // workers blocked in pop() must exit
  SUCCEED();
}

TEST(DeviceGroup, CreatesRequestedDevices) {
  const QuboModel m = random_model(20, 0.5, 9, 3005);
  MersenneSeeder seeder(6);
  DeviceGroup group(m, 3, quick_device_config(), seeder);
  EXPECT_EQ(group.device_count(), 3u);
  EXPECT_EQ(group.total_batches(), 0u);
}

TEST(DeviceGroup, TotalBatchesAggregates) {
  const QuboModel m = random_model(20, 0.5, 9, 3006);
  MersenneSeeder seeder(7);
  DeviceGroup group(m, 2, quick_device_config(), seeder);
  (void)group.device(0).execute(make_test_packet(20, 1), 0);
  (void)group.device(1).execute(make_test_packet(20, 2), 0);
  (void)group.device(1).execute(make_test_packet(20, 3), 1);
  EXPECT_EQ(group.total_batches(), 3u);
}

TEST(DeviceGroup, StartStopAllIsClean) {
  const QuboModel m = random_model(16, 0.5, 9, 3007);
  MersenneSeeder seeder(8);
  DeviceGroup group(m, 2, quick_device_config(), seeder);
  group.start_all();
  group.stop_all();
  SUCCEED();
}

}  // namespace
}  // namespace dabs
