// Tests for the batch solve service: scheduling, waiting, cancellation,
// event logs, fault tolerance (retry/backoff, deadlines, admission
// control, journal + resume, interrupts), and the JSONL batch front end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/json_reader.hpp"
#include "io/qubo_text.hpp"
#include "service/batch_runner.hpp"
#include "service/job_journal.hpp"
#include "service/solver_service.hpp"
#include "test_helpers.hpp"
#include "util/failpoint.hpp"

namespace dabs {
namespace {

using service::BatchJob;
using service::JobId;
using service::JobSnapshot;
using service::JobSpec;
using service::JobState;
using service::SolverService;

/// Partial Config without tripping -Wmissing-field-initializers.
SolverService::Config service_config(unsigned threads,
                                     std::size_t max_events_per_job = 64) {
  SolverService::Config config;
  config.threads = threads;
  config.max_events_per_job = max_events_per_job;
  return config;
}

std::shared_ptr<const QuboModel> shared_model(std::uint64_t seed,
                                              std::size_t n = 48) {
  return std::make_shared<const QuboModel>(
      testing::random_model(n, 0.3, 9, seed));
}

/// Work-budget-only spec: deterministic stop, no wall clock involved.
JobSpec budget_spec(std::shared_ptr<const QuboModel> model,
                    const std::string& solver, std::uint64_t budget,
                    std::uint64_t seed) {
  JobSpec spec;
  spec.model = std::move(model);
  spec.solver = solver;
  spec.stop.max_batches = budget;
  spec.seed = seed;
  return spec;
}

TEST(SolverService, RunsOneJobToCompletion) {
  SolverService svc;
  const JobId id = svc.submit(budget_spec(shared_model(1), "sa", 2000, 7));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_EQ(snap.report.solver, "sa");
  EXPECT_EQ(snap.report.best_solution.size(), 48u);
  EXPECT_LT(snap.report.best_energy, kInfiniteEnergy);
  EXPECT_FALSE(snap.report.cancelled);
  // Service provenance lands in the extras.
  EXPECT_EQ(snap.report.extras.at("job_id"), std::to_string(id));
  EXPECT_EQ(svc.outstanding(), 0u);
}

// Acceptance: a fixed-seed job through the service is bit-identical to the
// same SolveRequest run directly on a registry solver.
TEST(SolverService, ServiceRunMatchesDirectRunBitExactly) {
  const auto model = shared_model(3);
  for (const char* name : {"sa", "tabu", "greedy-restart"}) {
    SolverOptions options;
    const auto solver = SolverRegistry::global().create(name, options);
    SolveRequest req;
    req.model = model.get();
    req.stop.max_batches = 3000;
    req.seed = 12345;
    const SolveReport direct = solver->solve(req);

    SolverService svc;
    const JobId id = svc.submit(budget_spec(model, name, 3000, 12345));
    const SolveReport via_service = svc.wait(id).report;

    EXPECT_EQ(via_service.best_solution, direct.best_solution) << name;
    EXPECT_EQ(via_service.best_energy, direct.best_energy) << name;
    EXPECT_EQ(via_service.flips, direct.flips) << name;
    EXPECT_EQ(via_service.batches, direct.batches) << name;
    EXPECT_EQ(via_service.restarts, direct.restarts) << name;
    EXPECT_EQ(via_service.cancelled, direct.cancelled) << name;
  }
}

TEST(SolverService, SubmitValidatesSpec) {
  SolverService svc;
  JobSpec no_model;
  no_model.solver = "sa";
  EXPECT_THROW(svc.submit(std::move(no_model)), std::invalid_argument);

  EXPECT_THROW(svc.submit(budget_spec(shared_model(1), "nope", 10, 1)),
               std::invalid_argument);

  JobSpec bad_options = budget_spec(shared_model(1), "sa", 10, 1);
  bad_options.options.set("typo-key", "1");
  EXPECT_THROW(svc.submit(std::move(bad_options)), std::invalid_argument);

  EXPECT_THROW(svc.state(999), std::out_of_range);
  EXPECT_THROW(svc.snapshot(999), std::out_of_range);
  EXPECT_FALSE(svc.cancel(999));
}

TEST(SolverService, HigherPriorityRunsFirst) {
  SolverService svc(service_config(1));
  const auto model = shared_model(5);

  // Blocker keeps the single worker busy (or holds the queue head) while
  // the two probe jobs line up behind it.
  JobSpec blocker = budget_spec(model, "sa", 0, 1);
  blocker.stop.max_batches = 0;
  blocker.stop.time_limit_seconds = 30.0;  // cancelled below
  blocker.options.set("restarts", "1000000000");
  const JobId blocker_id = svc.submit(std::move(blocker));

  JobSpec low = budget_spec(model, "sa", 200, 2);
  low.priority = 0;
  const JobId low_id = svc.submit(std::move(low));

  JobSpec high = budget_spec(model, "sa", 200, 3);
  high.priority = 5;
  const JobId high_id = svc.submit(std::move(high));

  EXPECT_TRUE(svc.cancel(blocker_id));
  svc.wait_all();

  // Whatever the blocker did, the high-priority probe must have been
  // popped (and therefore finished) before the low-priority one.
  std::vector<JobId> order;
  while (const std::optional<JobId> id = svc.wait_any_finished()) {
    order.push_back(*id);
  }
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&order](JobId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(high_id), pos(low_id));
  EXPECT_EQ(svc.wait_any_finished(), std::nullopt);
}

TEST(SolverService, ExtremePrioritiesScheduleAndCancelCleanly) {
  // INT_MIN priority is reachable from JSONL input; ordering and the
  // queued-cancel erase path must handle the full int range without UB
  // (this runs under UBSan in CI).
  SolverService svc(service_config(1));
  const auto model = shared_model(8);
  JobSpec lowest = budget_spec(model, "sa", 100, 1);
  lowest.priority = std::numeric_limits<int>::min();
  JobSpec highest = budget_spec(model, "sa", 100, 2);
  highest.priority = std::numeric_limits<int>::max();
  const JobId low_id = svc.submit(std::move(lowest));
  const JobId high_id = svc.submit(std::move(highest));
  EXPECT_TRUE(svc.cancel(low_id) || svc.state(low_id) != JobState::kQueued);
  svc.wait_all();
  EXPECT_EQ(svc.wait(high_id).state, JobState::kDone);
  EXPECT_TRUE(is_terminal(svc.state(low_id)));
}

// Satellite acceptance: N queued jobs, cancel half mid-flight, the rest
// complete and every report stays well-formed (run under ASan+UBSan in CI).
TEST(SolverService, CancellationUnderLoad) {
  constexpr std::size_t kJobs = 16;
  const auto model = shared_model(9);
  SolverService svc(service_config(2));

  std::vector<JobId> cancel_ids;
  std::vector<JobId> run_ids;
  for (std::size_t i = 0; i < kJobs; ++i) {
    if (i % 2 == 0) {
      // Unbounded-ish: only the StopToken can end these quickly.
      JobSpec spec = budget_spec(model, "tabu", 0, i);
      spec.stop.time_limit_seconds = 30.0;
      spec.options.set("iterations", "1000000000000");
      cancel_ids.push_back(svc.submit(std::move(spec)));
    } else {
      run_ids.push_back(
          svc.submit(budget_spec(model, i % 4 == 1 ? "sa" : "greedy-restart",
                                 1500, i)));
    }
  }

  for (const JobId id : cancel_ids) EXPECT_TRUE(svc.cancel(id));
  svc.wait_all();

  for (const JobId id : cancel_ids) {
    const JobSnapshot snap = svc.snapshot(id);
    EXPECT_EQ(snap.state, JobState::kCancelled) << "job " << id;
    EXPECT_TRUE(snap.report.cancelled);
  }
  for (const JobId id : run_ids) {
    const JobSnapshot snap = svc.snapshot(id);
    EXPECT_EQ(snap.state, JobState::kDone) << "job " << id;
    EXPECT_EQ(snap.report.best_solution.size(), model->size());
    EXPECT_LT(snap.report.best_energy, kInfiniteEnergy);
    EXPECT_FALSE(snap.report.cancelled);
  }

  // The completion stream delivers each job exactly once.
  std::set<JobId> seen;
  while (const std::optional<JobId> id = svc.wait_any_finished()) {
    EXPECT_TRUE(seen.insert(*id).second);
  }
  EXPECT_EQ(seen.size(), kJobs);
}

TEST(SolverService, DestructorCancelsOutstandingJobs) {
  const auto model = shared_model(2);
  std::vector<JobId> ids;
  {
    SolverService svc(service_config(1));
    for (int i = 0; i < 4; ++i) {
      JobSpec spec = budget_spec(model, "sa", 0, i);
      spec.stop.time_limit_seconds = 30.0;
      spec.options.set("restarts", "1000000000");
      ids.push_back(svc.submit(std::move(spec)));
    }
    // Destructor must fire every token and join without hanging.
  }
  SUCCEED();
}

TEST(SolverService, EventLogIsBoundedAndChronological) {
  SolverService svc(service_config(1, 4));
  JobSpec spec = budget_spec(shared_model(4), "greedy-restart", 4000, 11);
  spec.tick_seconds = 1e-4;
  spec.tag = "evented";
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);

  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_LE(snap.events.size(), 4u);
  EXPECT_FALSE(snap.events.empty());  // greedy descent always improves once
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LE(snap.events[i - 1].elapsed_seconds,
              snap.events[i].elapsed_seconds);
  }
  EXPECT_EQ(snap.report.extras.at("tag"), "evented");
}

TEST(SolverService, ReleaseDropsTerminalJobsAndTheirClaims) {
  SolverService svc;
  const JobId done_id = svc.submit(budget_spec(shared_model(1), "sa", 300, 1));
  (void)svc.wait(done_id);

  EXPECT_FALSE(svc.release(999));  // unknown
  EXPECT_TRUE(svc.release(done_id));
  EXPECT_FALSE(svc.release(done_id));  // already gone
  EXPECT_THROW(svc.state(done_id), std::out_of_range);
  EXPECT_THROW(svc.snapshot(done_id), std::out_of_range);
  // The released job's completion-stream claim went with it.
  EXPECT_EQ(svc.try_any_finished(), std::nullopt);
  EXPECT_EQ(svc.wait_any_finished(), std::nullopt);

  // A claimed-then-released job behaves the same way.
  const JobId second = svc.submit(budget_spec(shared_model(1), "sa", 300, 2));
  (void)svc.wait(second);
  ASSERT_EQ(svc.wait_any_finished(), second);
  EXPECT_TRUE(svc.release(second));
  EXPECT_EQ(svc.wait_any_finished(), std::nullopt);
}

TEST(SolverService, ReleaseRefusesRunningJobs) {
  SolverService svc(service_config(1));
  JobSpec spec = budget_spec(shared_model(2), "sa", 0, 1);
  spec.stop.time_limit_seconds = 30.0;
  spec.options.set("restarts", "1000000000");
  const JobId id = svc.submit(std::move(spec));
  EXPECT_FALSE(svc.release(id));  // queued or running: not releasable
  EXPECT_TRUE(svc.cancel(id));
  (void)svc.wait(id);
  EXPECT_TRUE(svc.release(id));
}

TEST(SolverService, SpecExtrasMergeIntoReport) {
  SolverService svc;
  JobSpec spec = budget_spec(shared_model(6), "sa", 500, 3);
  spec.extras["origin"] = "unit-test";
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.report.extras.at("origin"), "unit-test");
}

TEST(SolverService, PoolMetricsSettleAtZero) {
  SolverService svc;
  for (int i = 0; i < 6; ++i) {
    (void)svc.submit(budget_spec(shared_model(1), "sa", 300, i));
  }
  svc.wait_all();
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_EQ(svc.active_count(), 0u);
  EXPECT_EQ(svc.outstanding(), 0u);
  // The six equal models interned by the caller would have shared one
  // cache entry; here they bypassed the cache, so it stays empty.
  EXPECT_EQ(svc.cache().stats().entries, 0u);
}

// ---- Waiting contracts ---------------------------------------------------

TEST(SolverService, WaitForTimesOutThenDelivers) {
  SolverService svc(service_config(1));
  JobSpec spec = budget_spec(shared_model(2), "sa", 0, 1);
  spec.stop.time_limit_seconds = 30.0;
  spec.options.set("restarts", "1000000000");
  const JobId id = svc.submit(std::move(spec));

  // Far from terminal: the timed wait must give up, not block.
  EXPECT_EQ(svc.wait_for(id, 0.02), std::nullopt);
  EXPECT_EQ(svc.wait_until(id, std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(20)),
            std::nullopt);
  EXPECT_FALSE(is_terminal(svc.state(id)));

  EXPECT_TRUE(svc.cancel(id));
  const std::optional<JobSnapshot> snap = svc.wait_for(id, 30.0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  // Already-terminal waits return immediately.
  EXPECT_TRUE(svc.wait_for(id, 0.0).has_value());
}

TEST(SolverService, WaitOnNeverSubmittedIdThrows) {
  // Contract: an id the service never issued is out_of_range on every wait
  // flavor, not a hang and not a default snapshot.
  SolverService svc;
  EXPECT_THROW(svc.wait(424242), std::out_of_range);
  EXPECT_THROW(svc.wait_for(424242, 0.01), std::out_of_range);
  EXPECT_THROW(
      svc.wait_until(424242, std::chrono::steady_clock::now()),
      std::out_of_range);
  // wait_any_finished_for with nothing submitted: times out, no throw.
  EXPECT_EQ(svc.wait_any_finished_for(0.01), std::nullopt);
}

TEST(SolverService, WaitAllRacesReleaseWithoutDeadlock) {
  // Contract: wait_all() must terminate even while another thread strips
  // finished jobs out from under it with release().
  SolverService svc(service_config(2));
  const auto model = shared_model(7);
  constexpr int kJobs = 12;
  for (int i = 0; i < kJobs; ++i) {
    (void)svc.submit(budget_spec(model, "sa", 400, i));
  }
  std::thread releaser([&svc] {
    int claimed = 0;
    while (claimed < kJobs) {
      if (const std::optional<JobId> id = svc.wait_any_finished()) {
        EXPECT_TRUE(svc.release(*id));
        ++claimed;
      } else {
        break;  // all remaining claims already delivered and released
      }
    }
  });
  svc.wait_all();
  releaser.join();
  EXPECT_EQ(svc.outstanding(), 0u);
  // And a wait() on a released id reports out_of_range, not stale state.
  EXPECT_THROW(svc.wait(1), std::out_of_range);
}

// ---- Retry / backoff -----------------------------------------------------

TEST(SolverService, RetryBackoffDoublesCapsAndJitters) {
  // Deterministic for a fixed (salt, failures); monotone doubling under
  // the cap; jitter stays within [0.5, 1.0]x of the nominal value.
  const double first = service::retry_backoff(0.1, 10.0, 1, 42);
  EXPECT_EQ(first, service::retry_backoff(0.1, 10.0, 1, 42));
  EXPECT_GE(first, 0.05);
  EXPECT_LE(first, 0.1);
  const double fourth = service::retry_backoff(0.1, 10.0, 4, 42);
  EXPECT_GE(fourth, 0.4);   // 0.1 * 2^3 * 0.5
  EXPECT_LE(fourth, 0.8);
  const double capped = service::retry_backoff(0.1, 0.3, 10, 42);
  EXPECT_LE(capped, 0.3);
  EXPECT_GE(capped, 0.15);
  // Distinct salts decorrelate distinct jobs' schedules.
  EXPECT_NE(service::retry_backoff(0.1, 10.0, 3, 1),
            service::retry_backoff(0.1, 10.0, 3, 2));
}

/// Clears failpoint state on scope exit so a failing assertion cannot leak
/// an armed point into the next test.
struct FailpointGuard {
  ~FailpointGuard() { fail::clear(); }
};

TEST(SolverService, RetryableFaultRecoversWithinAttemptBudget) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("service.worker", "first:2,oom");  // fail, fail, pass
  SolverService svc;
  JobSpec spec = budget_spec(shared_model(3), "sa", 300, 5);
  spec.max_attempts = 3;
  spec.retry_backoff_seconds = 0.01;
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_EQ(snap.report.extras.at("attempts"), "3");
  EXPECT_EQ(snap.report.extras.at("disposition"), "retried");
  EXPECT_EQ(fail::hits("service.worker"), 3u);
}

TEST(SolverService, RetryExhaustionFails) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("service.worker", "always,retryable");
  SolverService svc;
  JobSpec spec = budget_spec(shared_model(3), "sa", 300, 5);
  spec.max_attempts = 2;
  spec.retry_backoff_seconds = 0.01;
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.state, JobState::kFailed);
  EXPECT_TRUE(fail::is_retryable_message(snap.error));
  EXPECT_EQ(snap.report.extras.at("attempts"), "2");
  EXPECT_EQ(snap.report.extras.at("disposition"), "failed");
}

TEST(SolverService, NonRetryableFaultFailsOnFirstAttempt) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("service.worker", "always");  // plain fault: no retry
  SolverService svc;
  JobSpec spec = budget_spec(shared_model(3), "sa", 300, 5);
  spec.max_attempts = 5;
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.state, JobState::kFailed);
  EXPECT_EQ(snap.report.extras.at("attempts"), "1");
  EXPECT_EQ(fail::hits("service.worker"), 1u);
}

TEST(SolverService, QueuePushFailpointSurfacesAtSubmit) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("service.queue_push", "nth:2");
  SolverService svc;
  const JobId ok = svc.submit(budget_spec(shared_model(3), "sa", 200, 1));
  EXPECT_THROW(svc.submit(budget_spec(shared_model(3), "sa", 200, 2)),
               fail::InjectedFault);
  EXPECT_EQ(svc.wait(ok).state, JobState::kDone);
  EXPECT_EQ(svc.outstanding(), 0u);  // the failed submit left no ghost job
}

TEST(SolverService, CancelInterruptsRetryBackoff) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("service.worker", "always,retryable");
  SolverService svc;
  JobSpec spec = budget_spec(shared_model(3), "sa", 300, 5);
  spec.max_attempts = 100;
  spec.retry_backoff_seconds = 30.0;  // only cancellation can end this soon
  spec.retry_backoff_max_seconds = 30.0;
  const JobId id = svc.submit(std::move(spec));
  // Give the first attempt time to fail and enter its backoff sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(svc.cancel(id));
  const std::optional<JobSnapshot> snap = svc.wait_for(id, 10.0);
  ASSERT_TRUE(snap.has_value()) << "cancel did not interrupt the backoff";
  EXPECT_EQ(snap->state, JobState::kCancelled);
}

// ---- Deadlines -----------------------------------------------------------

TEST(SolverService, DeadlineCancelsRunningJob) {
  SolverService svc(service_config(1));
  JobSpec spec = budget_spec(shared_model(2), "tabu", 0, 1);
  spec.stop.time_limit_seconds = 30.0;
  spec.options.set("iterations", "1000000000000");
  spec.deadline_seconds = 0.15;
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.state, JobState::kCancelled);
  EXPECT_TRUE(snap.report.cancelled);
  EXPECT_EQ(snap.report.extras.at("deadline_exceeded"), "true");
  EXPECT_EQ(snap.report.extras.at("disposition"), "deadline");
}

TEST(SolverService, DeadlineRetiresQueuedJob) {
  SolverService svc(service_config(1));
  const auto model = shared_model(2);
  // The blocker owns the single worker; the probe's deadline expires while
  // it is still queued, so the watchdog retires it without it ever running.
  JobSpec blocker = budget_spec(model, "sa", 0, 1);
  blocker.stop.time_limit_seconds = 30.0;
  blocker.options.set("restarts", "1000000000");
  const JobId blocker_id = svc.submit(std::move(blocker));
  JobSpec probe = budget_spec(model, "sa", 200, 2);
  probe.deadline_seconds = 0.1;
  const JobId probe_id = svc.submit(std::move(probe));

  const JobSnapshot snap = svc.wait(probe_id);
  EXPECT_EQ(snap.state, JobState::kCancelled);
  EXPECT_EQ(snap.report.extras.at("deadline_exceeded"), "true");
  EXPECT_TRUE(snap.report.best_solution.empty());  // never ran

  EXPECT_TRUE(svc.cancel(blocker_id));
  svc.wait_all();
}

TEST(SolverService, DeadlineDoesNotTouchJobsThatFinishInTime) {
  SolverService svc;
  JobSpec spec = budget_spec(shared_model(2), "sa", 200, 1);
  spec.deadline_seconds = 30.0;
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  EXPECT_EQ(snap.state, JobState::kDone);
  EXPECT_EQ(snap.report.extras.count("deadline_exceeded"), 0u);
}

// ---- Admission control ---------------------------------------------------

TEST(SolverService, AdmissionControlShedsOverCapacitySubmits) {
  SolverService::Config config;
  config.threads = 1;
  config.max_queue_depth = 1;
  SolverService svc(std::move(config));
  const auto model = shared_model(2);

  JobSpec blocker = budget_spec(model, "sa", 0, 1);
  blocker.stop.time_limit_seconds = 30.0;
  blocker.options.set("restarts", "1000000000");
  const JobId blocker_id = svc.submit(std::move(blocker));
  // Wait until the worker owns the blocker so the queue is observably
  // empty — makes the admission decisions below deterministic.
  while (svc.state(blocker_id) == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const JobId queued_id = svc.submit(budget_spec(model, "sa", 200, 2));
  EXPECT_EQ(svc.state(queued_id), JobState::kQueued);
  const JobId shed_id = svc.submit(budget_spec(model, "sa", 200, 3));
  // Shed immediately: terminal at submit, with the reason recorded.
  const JobSnapshot shed = svc.snapshot(shed_id);
  EXPECT_EQ(shed.state, JobState::kRejected);
  EXPECT_NE(shed.error.find("queue"), std::string::npos);
  EXPECT_EQ(shed.report.extras.at("disposition"), "rejected");

  EXPECT_TRUE(svc.cancel(blocker_id));
  svc.wait_all();
  // The rejected job flows through the completion stream exactly once.
  std::set<JobId> finished;
  while (const std::optional<JobId> id = svc.wait_any_finished()) {
    EXPECT_TRUE(finished.insert(*id).second);
  }
  EXPECT_EQ(finished.count(shed_id), 1u);
  EXPECT_EQ(svc.wait(queued_id).state, JobState::kDone);
}

// ---- JSONL front end -----------------------------------------------------

TEST(BatchRunner, ParsesFullJobLine) {
  const BatchJob job = service::parse_batch_job(
      R"({"model": "m.txt", "format": "qubo", "solver": "tabu",
          "options": {"tenure": 8, "seed": "9"}, "time_limit": 1.5,
          "max_batches": 100, "target": -42, "seed": 7, "priority": 2,
          "tag": "hot", "tick": 0.25})");
  EXPECT_EQ(job.model_path, "m.txt");
  EXPECT_EQ(job.format, "qubo");
  EXPECT_EQ(job.spec.solver, "tabu");
  EXPECT_EQ(job.spec.options.get("tenure", ""), "8");
  EXPECT_EQ(job.spec.options.get("seed", ""), "9");
  EXPECT_DOUBLE_EQ(job.spec.stop.time_limit_seconds, 1.5);
  EXPECT_EQ(job.spec.stop.max_batches, 100u);
  ASSERT_TRUE(job.spec.stop.target_energy.has_value());
  EXPECT_EQ(*job.spec.stop.target_energy, -42);
  ASSERT_TRUE(job.spec.seed.has_value());
  EXPECT_EQ(*job.spec.seed, 7u);
  EXPECT_EQ(job.spec.priority, 2);
  EXPECT_EQ(job.spec.tag, "hot");
  EXPECT_DOUBLE_EQ(job.spec.tick_seconds, 0.25);
}

TEST(BatchRunner, ParsesProblemJobLine) {
  const BatchJob job = service::parse_batch_job(
      R"({"problem": "qap", "params": {"kind": "uniform", "n": 4, "seed": 7},
          "solver": "sa", "max_batches": 50})");
  EXPECT_EQ(job.problem, "qap");
  EXPECT_TRUE(job.model_path.empty());
  EXPECT_EQ(job.params.get("kind", ""), "uniform");
  EXPECT_EQ(job.params.get("n", ""), "4");
  EXPECT_EQ(job.params.get("seed", ""), "7");
  EXPECT_EQ(job.spec.solver, "sa");
  EXPECT_EQ(job.spec.stop.max_batches, 50u);
}

TEST(BatchRunner, RejectsBadJobLines) {
  EXPECT_THROW(service::parse_batch_job("[]"), std::invalid_argument);
  EXPECT_THROW(service::parse_batch_job("{}"), std::invalid_argument);
  EXPECT_THROW(service::parse_batch_job(R"({"model": ""})"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_batch_job(R"({"model": "m", "wat": 1})"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_batch_job(R"({"model": "m", "seed": -1})"),
               std::invalid_argument);
  EXPECT_THROW(
      service::parse_batch_job(R"({"model": "m", "time_limit": -2})"),
      std::invalid_argument);
  EXPECT_THROW(
      service::parse_batch_job(R"({"model": "m", "priority": 4294967296})"),
      std::invalid_argument);
  EXPECT_THROW(service::parse_batch_job(R"({"model": "m", "format": "x"})"),
               std::invalid_argument);
  EXPECT_THROW(
      service::parse_batch_job(R"({"model": "m", "options": {"k": []}})"),
      std::invalid_argument);
  // The model/problem split: exactly one, with its matching companions.
  EXPECT_THROW(service::parse_batch_job(R"({"problem": ""})"),
               std::invalid_argument);
  EXPECT_THROW(
      service::parse_batch_job(R"({"model": "m", "problem": "qap"})"),
      std::invalid_argument);
  EXPECT_THROW(
      service::parse_batch_job(R"({"problem": "qap", "format": "qubo"})"),
      std::invalid_argument);
  EXPECT_THROW(
      service::parse_batch_job(R"({"model": "m", "params": {"n": 4}})"),
      std::invalid_argument);
}

TEST(BatchRunner, TimeGovernedBudgetsLiftBaselineDefaults) {
  StopCondition stop;
  stop.time_limit_seconds = 1.0;
  SolverOptions opts;
  service::apply_time_governed_budgets("sa", stop, opts);
  EXPECT_EQ(opts.get("restarts", ""), "1000000000");

  // Explicit values win.
  SolverOptions explicit_opts;
  explicit_opts.set("restarts", "5");
  service::apply_time_governed_budgets("sa", stop, explicit_opts);
  EXPECT_EQ(explicit_opts.get("restarts", ""), "5");

  // Unbounded runs keep the solver's own defaults.
  SolverOptions untouched;
  service::apply_time_governed_budgets("sa", StopCondition{}, untouched);
  EXPECT_FALSE(untouched.has("restarts"));

  // A target alone is not a bound: lifting on it would turn a
  // terminating run into an unbounded one.
  StopCondition target_only;
  target_only.target_energy = -999999;
  SolverOptions target_opts;
  service::apply_time_governed_budgets("sa", target_only, target_opts);
  EXPECT_FALSE(target_opts.has("restarts"));

  // A work budget counts as a bound.
  StopCondition work_only;
  work_only.max_batches = 100;
  SolverOptions work_opts;
  service::apply_time_governed_budgets("sa", work_only, work_opts);
  EXPECT_TRUE(work_opts.has("restarts"));
}

TEST(BatchRunner, EndToEndStreamsOneReportPerLine) {
  const std::string dir = ::testing::TempDir();
  const std::string path_a = dir + "/batch_a.txt";
  const std::string path_b = dir + "/batch_b.txt";
  const std::string path_c = dir + "/batch_c.txt";  // same content as a
  io::write_qubo_file(path_a, testing::random_model(24, 0.4, 5, 21));
  io::write_qubo_file(path_b, testing::random_model(24, 0.4, 5, 22));
  io::write_qubo_file(path_c, testing::random_model(24, 0.4, 5, 21));

  std::ostringstream jobs;
  jobs << "# header comment, then a blank line\n\n";
  const char* solvers[] = {"sa", "tabu", "greedy-restart"};
  for (int k = 0; k < 9; ++k) {
    const std::string& path = (k % 3 == 0) ? path_a : (k % 3 == 1 ? path_b
                                                                  : path_c);
    jobs << R"({"model": ")" << path << R"(", "solver": ")" << solvers[k % 3]
         << R"(", "max_batches": 400, "seed": )" << k << R"(, "tag": "j)" << k
         << "\"}\n";
  }
  // Target-only job: unreachable target, no explicit budget — must be
  // bounded by default_time_limit instead of hanging the batch.
  jobs << R"({"model": ")" << path_a
       << R"(", "solver": "sa", "target": -999999999, "seed": 99})" << "\n";
  jobs << "this is not json\n";
  jobs << R"({"model": ")" << path_a << R"(", "solver": "no-such"})" << "\n";
  jobs << R"({"model": ")" << dir << R"(/missing.txt"})" << "\n";

  std::istringstream in(jobs.str());
  std::ostringstream out;
  std::ostringstream err;
  service::BatchOptions options;
  options.threads = 4;
  options.default_time_limit = 0.2;
  const int exit_code = service::run_batch(in, out, err, options);
  EXPECT_EQ(exit_code, 1);  // the three bad lines

  std::istringstream lines(out.str());
  std::string line;
  int done = 0;
  int invalid = 0;
  int failed = 0;
  int cache_hits = 0;
  std::set<std::uint64_t> job_ids;
  while (std::getline(lines, line)) {
    const io::JsonValue v = io::parse_json(line);  // every line parses
    const std::string status = v.find("status")->as_string();
    if (status == "done") {
      ++done;
      EXPECT_TRUE(job_ids.insert(static_cast<std::uint64_t>(
                                     v.find("job_id")->as_int()))
                      .second);
      const io::JsonValue* report = v.find("report");
      ASSERT_NE(report, nullptr);
      EXPECT_LT(report->find("best_energy")->as_double(), 1e18);
      const io::JsonValue* extras = report->find("extras");
      ASSERT_NE(extras, nullptr);
      if (extras->find("model_cache")->as_string() == "hit") ++cache_hits;
    } else if (status == "failed") {
      ++failed;  // the unreadable model file: environment, not schema
      EXPECT_NE(v.find("error"), nullptr);
    } else {
      ++invalid;
      EXPECT_EQ(status, "invalid");
      EXPECT_NE(v.find("error"), nullptr);
    }
  }
  EXPECT_EQ(done, 10);    // includes the target-only job, time-bounded
  EXPECT_EQ(invalid, 2);  // non-JSON line, unknown solver
  EXPECT_EQ(failed, 1);   // missing model file
  // Repeated paths hit by key; path_c additionally dedupes by content
  // against path_a, so at most two distinct models were parsed.
  EXPECT_GE(cache_hits, 6);
  EXPECT_NE(err.str().find("model cache"), std::string::npos);
}

TEST(BatchRunner, ProblemJobsDecodeVerifyAndShareCache) {
  // Two identical problem specs (cache key dedupe), one MaxCut job, one
  // unknown problem, one typo'd param; the legacy "format" path rides in
  // the same batch.
  std::ostringstream jobs;
  jobs << R"({"problem": "qap", "params": {"kind": "uniform", "n": 4,)"
       << R"( "seed": 171}, "solver": "sa", "max_batches": 30000,)"
       << R"( "seed": 1, "tag": "qap-a"})" << "\n"
       << R"({"problem": "qap", "params": {"kind": "uniform", "n": 4,)"
       << R"( "seed": 171}, "solver": "tabu", "max_batches": 20000,)"
       << R"( "seed": 2, "tag": "qap-b"})" << "\n"
       << R"({"problem": "maxcut", "params": {"n": 24, "m": 60},)"
       << R"( "solver": "greedy-restart", "max_batches": 20000, "seed": 3})"
       << "\n"
       << R"({"problem": "no-such-problem"})" << "\n"
       << R"({"problem": "qap", "params": {"wat": 1}})" << "\n"
       << R"({"problem": "gset:/no/such/file.txt"})" << "\n";

  std::istringstream in(jobs.str());
  std::ostringstream out;
  std::ostringstream err;
  service::BatchOptions options;
  options.threads = 2;
  const int exit_code = service::run_batch(in, out, err, options);
  EXPECT_EQ(exit_code, 1);  // the two invalid problem lines

  std::istringstream lines(out.str());
  std::string line;
  int done = 0;
  int invalid = 0;
  int load_failed = 0;
  int cache_hits = 0;
  int verified = 0;
  while (std::getline(lines, line)) {
    const io::JsonValue v = io::parse_json(line);
    const std::string status = v.find("status")->as_string();
    if (status == "failed") {
      // The unreadable gset file: environment, not schema — retryable
      // even though it arrived as a problem spec.
      ++load_failed;
      continue;
    }
    if (status != "done") {
      ++invalid;
      EXPECT_EQ(status, "invalid");
      continue;
    }
    ++done;
    const io::JsonValue* extras = v.find("report")->find("extras");
    ASSERT_NE(extras, nullptr);
    // Satellite contract: problem-keyed jobs stream their decoded domain
    // objective and feasibility verdict.
    ASSERT_NE(extras->find("objective"), nullptr);
    ASSERT_NE(extras->find("feasible"), nullptr);
    EXPECT_EQ(extras->find("feasible")->as_string(), "true");
    if (extras->find("verified")->as_string() == "true") ++verified;
    if (extras->find("model_cache")->as_string() == "hit") ++cache_hits;
    const std::string objective_name =
        extras->find("objective_name")->as_string();
    if (objective_name == "assignment_cost") {
      // Both QAP jobs solved the 4-facility instance to its optimum (the
      // budget dwarfs the 16-variable space): fixed decoded cost 440.
      EXPECT_EQ(extras->find("objective")->as_string(), "440");
      EXPECT_EQ(extras->find("assignment")->as_string(), "2 1 3 0");
    } else {
      EXPECT_EQ(objective_name, "cut");
    }
  }
  EXPECT_EQ(done, 3);
  EXPECT_EQ(invalid, 2);
  EXPECT_EQ(load_failed, 1);
  EXPECT_EQ(verified, 3);
  EXPECT_EQ(cache_hits, 1);  // the duplicated qap spec shares one model
}

// ---- Batch fault tolerance -----------------------------------------------

namespace {

/// Problem-keyed jobs (no files on disk) keep these tests hermetic.
std::string small_batch_jobs(int count) {
  std::ostringstream jobs;
  for (int i = 0; i < count; ++i) {
    jobs << R"({"problem": "maxcut", "params": {"n": 16, "m": 40, "seed": )"
         << 100 + i << R"(}, "solver": "sa", "max_batches": 200, "seed": )"
         << i << R"(, "tag": "ft)" << i << "\"}\n";
  }
  return jobs.str();
}

std::string fresh_journal_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

}  // namespace

TEST(BatchRunner, FingerprintsAreStableAndOrderInsensitive) {
  const BatchJob a = service::parse_batch_job(
      R"({"problem": "maxcut", "params": {"n": 16, "m": 40}, "seed": 1,
          "solver": "sa", "max_batches": 100})");
  const BatchJob b = service::parse_batch_job(
      R"({"max_batches": 100, "solver": "sa", "seed": 1,
          "params": {"m": 40, "n": 16}, "problem": "maxcut"})");
  EXPECT_EQ(service::job_fingerprint(a), service::job_fingerprint(b));
  EXPECT_EQ(service::job_fingerprint(a).size(), 16u);

  // Any identity field flips the digest.
  BatchJob c = service::parse_batch_job(
      R"({"problem": "maxcut", "params": {"n": 16, "m": 40}, "seed": 2,
          "solver": "sa", "max_batches": 100})");
  EXPECT_NE(service::job_fingerprint(a), service::job_fingerprint(c));
}

TEST(BatchRunner, JournalRecordsLifecycleAndResumeSkipsFinishedJobs) {
  const std::string journal = fresh_journal_path("batch_resume.jsonl");
  const std::string jobs = small_batch_jobs(4);

  service::BatchOptions options;
  options.threads = 2;
  options.journal_path = journal;
  {
    std::istringstream in(jobs);
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(service::run_batch(in, out, err, options), 0);
    std::istringstream lines(out.str());
    std::string line;
    int reports = 0;
    while (std::getline(lines, line)) {
      ++reports;
      const io::JsonValue v = io::parse_json(line);
      EXPECT_EQ(v.find("status")->as_string(), "done");
      ASSERT_NE(v.find("fingerprint"), nullptr);
    }
    EXPECT_EQ(reports, 4);
    EXPECT_NE(err.str().find("journal: "), std::string::npos);
  }
  // The journal saw every transition and every job ended terminal.
  const service::JobJournal::Replay replay =
      service::JobJournal::replay(journal);
  EXPECT_EQ(replay.skipped, 0u);
  EXPECT_EQ(replay.last_event.size(), 4u);
  for (const auto& [fp, event] : replay.last_event) {
    EXPECT_EQ(event, service::JournalEvent::kDone) << fp;
  }

  // Resume against the same jobs file: everything already terminal, so
  // nothing re-runs and nothing is emitted twice.
  options.resume = true;
  std::istringstream in(jobs);
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(service::run_batch(in, out, err, options), 0);
  EXPECT_EQ(out.str(), "");
  EXPECT_NE(err.str().find("resumed: 4 already terminal"),
            std::string::npos);
}

TEST(BatchRunner, ResumeRerunsJobsWithoutTerminalRecords) {
  // A journal that shows two submitted jobs but only one finished — the
  // shape a kill -9 mid-batch leaves.  Resume re-runs exactly the other.
  const std::string journal = fresh_journal_path("batch_partial.jsonl");
  const std::string jobs = small_batch_jobs(2);

  // First pass: learn both fingerprints by running the full batch.
  service::BatchOptions options;
  options.threads = 2;
  options.journal_path = journal;
  std::vector<std::string> fingerprints;
  {
    std::istringstream in(jobs);
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(service::run_batch(in, out, err, options), 0);
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      fingerprints.push_back(
          io::parse_json(line).find("fingerprint")->as_string());
    }
  }
  ASSERT_EQ(fingerprints.size(), 2u);

  // Forge the crash journal: job 0 finished, job 1 only started.
  std::remove(journal.c_str());
  {
    service::JobJournal forge(journal);
    service::JournalRecord r;
    r.fingerprint = fingerprints[0];
    forge.append(r);
    r.event = service::JournalEvent::kDone;
    forge.append(r);
    r.event = service::JournalEvent::kSubmitted;
    r.fingerprint = fingerprints[1];
    forge.append(r);
    r.event = service::JournalEvent::kStarted;
    forge.append(r);
  }

  options.resume = true;
  std::istringstream in(jobs);
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(service::run_batch(in, out, err, options), 0);
  std::istringstream lines(out.str());
  std::string line;
  int reports = 0;
  while (std::getline(lines, line)) {
    ++reports;
    EXPECT_EQ(io::parse_json(line).find("fingerprint")->as_string(),
              fingerprints[1]);
  }
  EXPECT_EQ(reports, 1);
}

TEST(BatchRunner, JournalAppendFailureDegradesGracefully) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("journal.append", "always");
  service::BatchOptions options;
  options.threads = 2;
  options.journal_path = fresh_journal_path("batch_degraded.jsonl");
  std::istringstream in(small_batch_jobs(2));
  std::ostringstream out;
  std::ostringstream err;
  // Durability is gone but the batch itself still completes cleanly.
  EXPECT_EQ(service::run_batch(in, out, err, options), 0);
  std::istringstream lines(out.str());
  std::string line;
  int done = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(io::parse_json(line).find("status")->as_string(), "done");
    ++done;
  }
  EXPECT_EQ(done, 2);
  EXPECT_NE(err.str().find("journal append failed"), std::string::npos);
  EXPECT_NE(err.str().find("0 records"), std::string::npos);
}

TEST(BatchRunner, ModelLoadRetriesThroughInjectedFaults) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("batch.model_load", "first:2,retryable");
  service::BatchOptions options;
  options.threads = 1;
  options.retry_backoff_seconds = 0.01;
  std::istringstream in(small_batch_jobs(1));
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(service::run_batch(in, out, err, options), 0);
  const io::JsonValue v = io::parse_json(out.str());
  EXPECT_EQ(v.find("status")->as_string(), "done");
  EXPECT_EQ(fail::hits("batch.model_load"), 3u);
  EXPECT_NE(err.str().find("retries: 2 attempted, 1 recovered"),
            std::string::npos);
}

TEST(BatchRunner, ModelLoadRetryExhaustionFailsTheLine) {
  if (!fail::compiled_in()) GTEST_SKIP() << "DABS_FAILPOINTS=OFF";
  FailpointGuard guard;
  fail::configure("batch.model_load", "always,oom");
  service::BatchOptions options;
  options.threads = 1;
  options.max_attempts = 2;
  options.retry_backoff_seconds = 0.01;
  std::istringstream in(small_batch_jobs(1));
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(service::run_batch(in, out, err, options), 1);
  const io::JsonValue v = io::parse_json(out.str());
  EXPECT_EQ(v.find("status")->as_string(), "failed");
  EXPECT_EQ(v.find("attempts")->as_int(), 2);
  EXPECT_EQ(fail::hits("batch.model_load"), 2u);
}

TEST(BatchRunner, DeadlineJobLineCancelsViaWatchdog) {
  std::ostringstream jobs;
  jobs << R"({"problem": "maxcut", "params": {"n": 16, "m": 40},)"
       << R"( "solver": "tabu", "time_limit": 30, "deadline": 0.15})"
       << "\n";
  std::istringstream in(jobs.str());
  std::ostringstream out;
  std::ostringstream err;
  service::BatchOptions options;
  options.threads = 1;
  EXPECT_EQ(service::run_batch(in, out, err, options), 1);
  const io::JsonValue v = io::parse_json(out.str());
  EXPECT_EQ(v.find("status")->as_string(), "cancelled");
  const io::JsonValue* extras = v.find("report")->find("extras");
  ASSERT_NE(extras, nullptr);
  EXPECT_EQ(extras->find("deadline_exceeded")->as_string(), "true");
}

TEST(BatchRunner, QueueLimitShedsAndReportsRejections) {
  // One slow job owns the single worker; with the queue capped at one,
  // at least two of the three followers must be shed.
  std::ostringstream jobs;
  jobs << R"({"problem": "maxcut", "params": {"n": 16, "m": 40},)"
       << R"( "solver": "sa", "time_limit": 0.4, "tag": "slow"})" << "\n"
       << small_batch_jobs(3);
  std::istringstream in(jobs.str());
  std::ostringstream out;
  std::ostringstream err;
  service::BatchOptions options;
  options.threads = 1;
  options.max_queue_depth = 1;
  EXPECT_EQ(service::run_batch(in, out, err, options), 1);
  std::istringstream lines(out.str());
  std::string line;
  int done = 0;
  int rejected = 0;
  while (std::getline(lines, line)) {
    const io::JsonValue v = io::parse_json(line);
    const std::string status = v.find("status")->as_string();
    if (status == "rejected") {
      ++rejected;
      EXPECT_NE(v.find("error"), nullptr);
    } else {
      EXPECT_EQ(status, "done");
      ++done;
    }
  }
  EXPECT_EQ(done + rejected, 4);
  EXPECT_GE(rejected, 2);
  EXPECT_NE(err.str().find(std::to_string(rejected) + " rejected"),
            std::string::npos);
}

TEST(BatchRunner, InterruptFlagStopsIntakeCancelsAndReturns130) {
  // Long jobs, interrupt raised shortly after the batch starts: every
  // submitted job still gets exactly one (cancelled) report line and the
  // exit code is 130, the shell convention for killed-by-SIGINT.
  std::ostringstream jobs;
  for (int i = 0; i < 3; ++i) {
    jobs << R"({"problem": "maxcut", "params": {"n": 16, "m": 40},)"
         << R"( "solver": "tabu", "time_limit": 30, "seed": )" << i << "}\n";
  }
  std::atomic<bool> interrupt{false};
  std::thread trigger([&interrupt] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    interrupt.store(true);
  });
  std::istringstream in(jobs.str());
  std::ostringstream out;
  std::ostringstream err;
  service::BatchOptions options;
  options.threads = 2;
  options.interrupt = &interrupt;
  const int exit_code = service::run_batch(in, out, err, options);
  trigger.join();
  EXPECT_EQ(exit_code, 130);
  std::istringstream lines(out.str());
  std::string line;
  int cancelled = 0;
  while (std::getline(lines, line)) {
    const io::JsonValue v = io::parse_json(line);
    if (v.find("status")->as_string() == "cancelled") ++cancelled;
  }
  EXPECT_GE(cancelled, 1);
  EXPECT_NE(err.str().find("interrupted"), std::string::npos);
}

TEST(BatchRunner, PreRaisedInterruptRunsNothing) {
  std::atomic<bool> interrupt{true};
  std::istringstream in(small_batch_jobs(3));
  std::ostringstream out;
  std::ostringstream err;
  service::BatchOptions options;
  options.interrupt = &interrupt;
  EXPECT_EQ(service::run_batch(in, out, err, options), 130);
  EXPECT_EQ(out.str(), "");
}

// ---------------------------------------------------------------------------
// ServiceStats: the one-call consistent snapshot /v1/stats reads.

TEST(SolverService, StatsSnapshotStartsAtZero) {
  SolverService svc(service_config(1));
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.retained, 0u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.done, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
  EXPECT_EQ(stats.cache.bytes, 0u);
}

TEST(SolverService, StatsSnapshotTracksLifecycleConsistently) {
  SolverService svc(service_config(1));
  const auto model = shared_model(9);
  const JobId a = svc.submit(budget_spec(model, "sa", 500, 1));
  const JobId b = svc.submit(budget_spec(model, "sa", 500, 2));
  (void)svc.wait(a);
  (void)svc.wait(b);

  service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.done, 2u);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.retained, 2u);  // terminal but not yet release()d
  // The snapshot is internally consistent: every submit is accounted for
  // exactly once across the terminal counters and the in-flight gauges.
  EXPECT_EQ(stats.submitted,
            stats.done + stats.failed + stats.cancelled + stats.rejected +
                stats.outstanding);

  svc.release(a);
  stats = svc.stats();
  EXPECT_EQ(stats.retained, 1u);
  EXPECT_EQ(stats.done, 2u);  // lifetime counter unaffected by release
}

TEST(SolverService, StatsSnapshotCountsRejectedAndCancelled) {
  SolverService::Config config = service_config(1);
  config.max_queue_depth = 1;
  SolverService svc(config);
  const auto model = shared_model(10);

  JobSpec blocker = budget_spec(model, "sa", 0, 1);  // runs until cancelled
  const JobId blocker_id = svc.submit(std::move(blocker));
  // Fill the one queue slot, then shed.
  std::vector<JobId> queued;
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    const JobId id = svc.submit(budget_spec(model, "sa", 100, 10 + i));
    if (svc.snapshot(id).state == JobState::kRejected) {
      ++rejected;
    } else {
      queued.push_back(id);
    }
  }
  EXPECT_GE(rejected, 1);

  EXPECT_TRUE(svc.cancel(blocker_id));
  (void)svc.wait(blocker_id);
  for (const JobId id : queued) (void)svc.wait(id);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.submitted,
            stats.done + stats.failed + stats.cancelled + stats.rejected +
                stats.outstanding);
}

// ---------------------------------------------------------------------------
// events_since: the incremental event reads behind the streaming endpoint.

TEST(SolverService, EventsSinceAdvancesCursorWithoutRereads) {
  SolverService svc(service_config(1));
  JobSpec spec = budget_spec(shared_model(4), "greedy-restart", 4000, 11);
  spec.tick_seconds = 1e-4;
  const JobId id = svc.submit(std::move(spec));
  (void)svc.wait(id);

  std::uint64_t cursor = 0;
  const service::JobEventBatch first = svc.events_since(id, cursor);
  EXPECT_EQ(first.state, JobState::kDone);
  EXPECT_FALSE(first.gap);
  ASSERT_FALSE(first.events.empty());
  EXPECT_EQ(cursor, first.events.size());

  // Nothing new after the job is terminal: the cursor holds, no rereads.
  std::uint64_t cursor2 = cursor;
  const service::JobEventBatch second = svc.events_since(id, cursor2);
  EXPECT_TRUE(second.events.empty());
  EXPECT_EQ(cursor2, cursor);
  EXPECT_EQ(second.state, JobState::kDone);

  // Split reads see the same events as one big read.
  std::uint64_t split_cursor = 0;
  const service::JobEventBatch page1 = svc.events_since(id, split_cursor);
  EXPECT_EQ(page1.events.size(), first.events.size());
  EXPECT_EQ(page1.events.front().best_energy,
            first.events.front().best_energy);
}

TEST(SolverService, EventsSinceReportsGapAfterRingDrop) {
  // Ring of 4: a chatty job overflows it, so a cursor parked at 0 finds
  // its events gone and must be told (gap), resuming at the oldest kept.
  SolverService svc(service_config(1, 4));
  JobSpec spec = budget_spec(shared_model(4), "greedy-restart", 20000, 11);
  spec.tick_seconds = 1e-5;  // plenty of tick events
  const JobId id = svc.submit(std::move(spec));
  const JobSnapshot snap = svc.wait(id);
  ASSERT_GT(snap.events_dropped, 0u) << "job was not chatty enough";

  std::uint64_t cursor = 0;
  const service::JobEventBatch batch = svc.events_since(id, cursor);
  EXPECT_TRUE(batch.gap);
  EXPECT_EQ(batch.events.size(), 4u);  // the retained ring
  EXPECT_EQ(cursor, snap.events_dropped + 4u);  // past everything produced

  // A cursor inside the retained window is honored without a gap.
  std::uint64_t tail_cursor = snap.events_dropped + 2;
  const service::JobEventBatch tail = svc.events_since(id, tail_cursor);
  EXPECT_FALSE(tail.gap);
  EXPECT_EQ(tail.events.size(), 2u);
  EXPECT_EQ(tail_cursor, cursor);

  // A cursor past the end clamps instead of reading garbage.
  std::uint64_t over_cursor = cursor + 50;
  const service::JobEventBatch over = svc.events_since(id, over_cursor);
  EXPECT_TRUE(over.events.empty());
  EXPECT_EQ(over_cursor, cursor);
}

TEST(SolverService, EventsSinceUnknownJobThrows) {
  SolverService svc(service_config(1));
  std::uint64_t cursor = 0;
  EXPECT_THROW(svc.events_since(JobId{777}, cursor), std::out_of_range);
}

}  // namespace
}  // namespace dabs
