// Solve-API tests: JobApi lifecycle (submit/status/events/cancel/stats,
// duplicate fingerprints, shedding, journal resume, global-id encoding),
// the consistent-hash ring, the forked shard group + router, the shard.rpc
// failpoint, and the HTTP surface end-to-end through SolveServer.
#include "net/solve_server.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/json_reader.hpp"
#include "net/http_client.hpp"
#include "net/job_api.hpp"
#include "net/shard_router.hpp"
#include "service/job_journal.hpp"
#include "util/failpoint.hpp"

namespace dabs::net {
namespace {

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string small_job(int seed, double time_limit = 0.05,
                      const char* tag = "") {
  std::string body = R"({"problem": "maxcut", "params": {"n": 16, "m": 40, )"
                     R"("seed": )" + std::to_string(seed) +
                     R"(}, "solver": "sa", "time_limit": )" +
                     std::to_string(time_limit);
  if (*tag != '\0') body += R"(, "tag": ")" + std::string(tag) + "\"";
  return body + "}";
}

io::JsonValue parse(const std::string& body) { return io::parse_json(body); }

std::uint64_t job_id_of(const ApiReply& reply) {
  return static_cast<std::uint64_t>(
      parse(reply.body).find("job_id")->as_int());
}

std::string state_of(const std::string& body) {
  return parse(body).find("state")->as_string();
}

/// Polls `backend.status(id)` until the job is terminal (10s deadline).
ApiReply wait_terminal(JobBackend& backend, std::uint64_t id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    ApiReply reply = backend.status(id);
    if (reply.status == 200) {
      const std::string state = state_of(reply.body);
      if (state != "queued" && state != "running" && state != "cancelling") {
        return reply;
      }
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " never reached a terminal state: "
                    << reply.body;
      return reply;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

JobApi::Config fast_config() {
  JobApi::Config config;
  config.threads = 2;
  config.default_time_limit = 0.05;
  return config;
}

// ---------------------------------------------------------------------------
// JobApi

TEST(JobApiTest, SubmitRunsToDoneWithAnnotatedReport) {
  JobApi api(fast_config());
  const ApiReply accepted = api.submit(small_job(1, 0.05, "t1"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const auto submitted = parse(accepted.body);
  // A worker may grab the job before the reply is built, so either
  // pre-terminal state is fine here.
  const std::string state = submitted.find("state")->as_string();
  EXPECT_TRUE(state == "queued" || state == "running") << state;
  EXPECT_EQ(submitted.find("fingerprint")->as_string().size(), 16u);

  const std::uint64_t id = job_id_of(accepted);
  const ApiReply done = wait_terminal(api, id);
  ASSERT_EQ(done.status, 200);
  const auto status = parse(done.body);
  EXPECT_EQ(status.find("state")->as_string(), "done");
  EXPECT_EQ(status.find("tag")->as_string(), "t1");
  const io::JsonValue* report = status.find("report");
  ASSERT_NE(report, nullptr);
  const io::JsonValue* extras = report->find("extras");
  ASSERT_NE(extras, nullptr);
  // The decode/verify annotation pass ran (same fields the batch runner
  // streams for a finished job).
  EXPECT_EQ(extras->find("feasible")->as_string(), "true");
  EXPECT_EQ(extras->find("verified")->as_string(), "true");
  EXPECT_NE(extras->find("objective"), nullptr);
}

TEST(JobApiTest, BadRequestsGet400) {
  JobApi api(fast_config());
  EXPECT_EQ(api.submit("{not json").status, 400);
  EXPECT_EQ(api.submit(R"({"params": {}})").status, 400);  // no problem/model
  EXPECT_EQ(api.submit(R"({"problem": "no-such-problem"})").status, 400);
  // The body carries the batch runner's validation message.
  const ApiReply reply = api.submit(R"({"problem": "no-such-problem"})");
  EXPECT_NE(parse(reply.body).find("error"), nullptr);
}

TEST(JobApiTest, UnknownIdsGet404) {
  JobApi api(fast_config());
  EXPECT_EQ(api.status(12345).status, 404);
  EXPECT_EQ(api.cancel(12345).status, 404);
  std::uint64_t cursor = 0;
  bool done = false;
  std::size_t count = 0;
  EXPECT_EQ(api.events(12345, &cursor, &done, &count).status, 404);
}

TEST(JobApiTest, DuplicateSubmissionsGetNumberedFingerprints) {
  JobApi api(fast_config());
  const ApiReply first = api.submit(small_job(7));
  const ApiReply second = api.submit(small_job(7));
  ASSERT_EQ(first.status, 202);
  ASSERT_EQ(second.status, 202);
  const std::string fp1 = parse(first.body).find("fingerprint")->as_string();
  const std::string fp2 = parse(second.body).find("fingerprint")->as_string();
  EXPECT_EQ(fp2, fp1 + "#2");
}

TEST(JobApiTest, QueueDepthLimitSheds429) {
  JobApi::Config config;
  config.threads = 1;
  config.max_queue_depth = 1;
  JobApi api(config);
  // Long enough to hold the worker + the one queue slot while we overflow.
  int shed = 0;
  std::vector<std::uint64_t> accepted_ids;
  for (int i = 0; i < 6; ++i) {
    const ApiReply reply = api.submit(small_job(100 + i, 0.3));
    if (reply.status == 429) {
      ++shed;
      EXPECT_NE(parse(reply.body).find("error"), nullptr);
    } else {
      ASSERT_EQ(reply.status, 202) << reply.body;
      accepted_ids.push_back(job_id_of(reply));
    }
  }
  EXPECT_GE(shed, 1);
  for (const std::uint64_t id : accepted_ids) wait_terminal(api, id);
}

TEST(JobApiTest, CancelLifecycle) {
  JobApi api(fast_config());
  const ApiReply accepted = api.submit(small_job(3, 5.0));
  ASSERT_EQ(accepted.status, 202);
  const std::uint64_t id = job_id_of(accepted);
  const ApiReply cancel = api.cancel(id);
  ASSERT_EQ(cancel.status, 202) << cancel.body;
  const ApiReply final_status = wait_terminal(api, id);
  EXPECT_EQ(state_of(final_status.body), "cancelled");
  // Cancelling a terminal job conflicts.
  EXPECT_EQ(api.cancel(id).status, 409);
}

TEST(JobApiTest, EventsPageWithCursor) {
  JobApi api(fast_config());
  const ApiReply accepted = api.submit(small_job(5, 0.1));
  ASSERT_EQ(accepted.status, 202);
  const std::uint64_t id = job_id_of(accepted);
  wait_terminal(api, id);

  std::uint64_t cursor = 0;
  bool done = false;
  std::size_t count = 0;
  const ApiReply page = api.events(id, &cursor, &done, &count);
  ASSERT_EQ(page.status, 200) << page.body;
  EXPECT_TRUE(done);
  EXPECT_GE(count, 1u);  // at least one new_best on a fresh instance
  EXPECT_EQ(cursor, count);  // cursor advanced past the returned events
  const auto body = parse(page.body);
  const auto& events = body.find("events")->as_array();
  ASSERT_EQ(events.size(), count);
  EXPECT_EQ(events.front().find("kind")->as_string(), "new_best");
  EXPECT_NE(events.front().find("best_energy"), nullptr);

  // Re-polling from the advanced cursor returns an empty, still-done page.
  std::uint64_t cursor2 = cursor;
  bool done2 = false;
  std::size_t count2 = 99;
  ASSERT_EQ(api.events(id, &cursor2, &done2, &count2).status, 200);
  EXPECT_TRUE(done2);
  EXPECT_EQ(count2, 0u);
  EXPECT_EQ(cursor2, cursor);
}

TEST(JobApiTest, StatsSnapshotCountsLifecycle) {
  JobApi api(fast_config());
  const ApiReply accepted = api.submit(small_job(11));
  ASSERT_EQ(accepted.status, 202);
  wait_terminal(api, job_id_of(accepted));
  const ApiReply stats = api.stats();
  ASSERT_EQ(stats.status, 200);
  const auto body = parse(stats.body);
  EXPECT_EQ(body.find("submitted")->as_int(), 1);
  EXPECT_EQ(body.find("done")->as_int(), 1);
  EXPECT_EQ(body.find("outstanding")->as_int(), 0);
  EXPECT_EQ(body.find("finished_retained")->as_int(), 1);
  const io::JsonValue* cache = body.find("model_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("misses")->as_int(), 1);
}

TEST(JobApiTest, ResumeResubmitsNonTerminalJobsUnderOriginalFingerprint) {
  const std::string path = temp_path("job_api_resume.jsonl");
  // Simulate a server that accepted three jobs and was SIGKILLed after one
  // finished: the journal holds the raw bodies, one terminal record.
  const std::string body_a = small_job(21, 0.05, "resumed-a");
  const std::string body_b = small_job(22, 0.05, "resumed-b");
  const std::string fp_a =
      service::job_fingerprint(service::parse_batch_job(body_a));
  const std::string fp_b =
      service::job_fingerprint(service::parse_batch_job(body_b));
  {
    service::JobJournal journal(path);
    service::JournalRecord record;
    record.event = service::JournalEvent::kSubmitted;
    record.fingerprint = fp_a;
    record.detail = body_a;
    journal.append(record);
    record.fingerprint = fp_a + "#2";
    journal.append(record);
    record.fingerprint = fp_b;
    record.detail = body_b;
    journal.append(record);
    record.event = service::JournalEvent::kDone;
    record.detail.clear();
    journal.append(record);
  }

  JobApi::Config config = fast_config();
  config.journal_path = path;
  config.resume = true;
  JobApi api(config);
  EXPECT_EQ(api.resumed(), 2u);  // fp_a + fp_a#2; fp_b was terminal

  // The resumed jobs run to completion and journal their terminal records
  // under the ORIGINAL fingerprints (numbering survives the restart).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const auto replay = service::JobJournal::replay(path);
    if (replay.terminal(fp_a) && replay.terminal(fp_a + "#2")) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "resumed jobs never reached terminal journal records";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // A fresh duplicate of the same job line continues the numbering past
  // the replayed occurrences instead of colliding with them.
  const ApiReply again = api.submit(body_a);
  ASSERT_EQ(again.status, 202);
  const std::string fp = parse(again.body).find("fingerprint")->as_string();
  EXPECT_EQ(fp, fp_a + "#3");
}

TEST(JobApiTest, GlobalIdEncodingForShardWorkers) {
  JobApi::Config config = fast_config();
  config.shard_idx = 1;
  config.shards = 3;
  JobApi api(config);
  const ApiReply a = api.submit(small_job(31));
  const ApiReply b = api.submit(small_job(32));
  ASSERT_EQ(a.status, 202);
  ASSERT_EQ(b.status, 202);
  const std::uint64_t id_a = job_id_of(a);
  const std::uint64_t id_b = job_id_of(b);
  EXPECT_EQ(id_a % 3, 1u);
  EXPECT_EQ(id_b % 3, 1u);
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(wait_terminal(api, id_a).status, 200);
  // Ids congruent to another shard are not this worker's.
  EXPECT_EQ(api.status(id_a + 1).status, 404);
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRingTest, DeterministicAcrossInstances) {
  const HashRing a(4);
  const HashRing b(4);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

TEST(HashRingTest, SpreadsKeysAcrossAllShards) {
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const HashRing ring(shards);
    std::vector<int> counts(shards, 0);
    const int keys = 4000;
    for (int i = 0; i < keys; ++i) {
      const std::size_t owner =
          ring.owner("maxcut\x1fn=24\x1fseed=" + std::to_string(i));
      ASSERT_LT(owner, shards);
      ++counts[owner];
    }
    for (std::size_t s = 0; s < shards; ++s) {
      // Every shard owns a meaningful share (vnodes smooth the ring; the
      // bound is loose enough to be timing/seed independent).
      EXPECT_GT(counts[s], keys / static_cast<int>(shards) / 4)
          << "shard " << s << "/" << shards << " starved";
    }
  }
}

TEST(HashRingTest, GrowingTheRingMovesOnlyAFractionOfKeys) {
  const HashRing before(3);
  const HashRing after(4);
  const int keys = 2000;
  int moved = 0;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "stable-key-" + std::to_string(i);
    if (before.owner(key) != after.owner(key)) ++moved;
  }
  // Consistent hashing: adding a 4th shard should move roughly 1/4 of the
  // keys, not rehash the world.
  EXPECT_LT(moved, keys / 2);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, RoutingKeyCoversSpecNotResolvedModel) {
  service::BatchJob a;
  a.problem = "maxcut";
  a.params.set("n", "24");
  a.params.set("seed", "1");
  service::BatchJob b = a;
  b.params.set("seed", "2");
  EXPECT_NE(routing_key(a), routing_key(b));
  EXPECT_EQ(routing_key(a), routing_key(a));

  service::BatchJob file_job;
  file_job.model_path = "/data/q.qubo";
  file_job.format = "qubo";
  EXPECT_EQ(routing_key(file_job), "qubo#/data/q.qubo");
}

// ---------------------------------------------------------------------------
// Shard group (forked workers) + router

TEST(ShardGroupTest, RoutesJobsAndComposesGlobalIds) {
  JobApi::Config config = fast_config();
  ShardGroup group(config, 2);
  ShardBackend backend(group);

  std::set<std::uint64_t> shards_used;
  std::vector<std::uint64_t> ids;
  for (int seed = 0; seed < 6; ++seed) {
    const ApiReply reply = backend.submit(small_job(seed));
    ASSERT_EQ(reply.status, 202) << reply.body;
    const std::uint64_t id = job_id_of(reply);
    ids.push_back(id);
    shards_used.insert(id % 2);
  }
  // With the mixed ring, 6 distinct specs land on both shards.
  EXPECT_EQ(shards_used.size(), 2u);

  for (const std::uint64_t id : ids) {
    const ApiReply done = wait_terminal(backend, id);
    ASSERT_EQ(done.status, 200);
    EXPECT_EQ(state_of(done.body), "done");
  }

  // Fan-out stats: one entry per worker.
  const ApiReply stats = backend.stats();
  ASSERT_EQ(stats.status, 200);
  const auto body = parse(stats.body);
  EXPECT_EQ(body.find("shards")->as_int(), 2);
  const auto& workers = body.find("workers")->as_array();
  ASSERT_EQ(workers.size(), 2u);
  std::int64_t total_done = 0;
  for (const auto& worker : workers) {
    total_done += worker.find("done")->as_int();
  }
  EXPECT_EQ(total_done, 6);

  // Identical job specs always route to the same worker.
  const ApiReply dup1 = backend.submit(small_job(0));
  const ApiReply dup2 = backend.submit(small_job(0));
  ASSERT_EQ(dup1.status, 202);
  ASSERT_EQ(dup2.status, 202);
  EXPECT_EQ(job_id_of(dup1) % 2, job_id_of(dup2) % 2);
  EXPECT_EQ(job_id_of(dup1) % 2, ids[0] % 2);
  wait_terminal(backend, job_id_of(dup1));
  wait_terminal(backend, job_id_of(dup2));

  // Events ride the RPC too.
  std::uint64_t cursor = 0;
  bool done_flag = false;
  std::size_t count = 0;
  const ApiReply page = backend.events(ids[0], &cursor, &done_flag, &count);
  ASSERT_EQ(page.status, 200) << page.body;
  EXPECT_TRUE(done_flag);
  EXPECT_GE(count, 1u);

  EXPECT_EQ(backend.status(9999).status, 404);
  EXPECT_EQ(backend.submit("{bad json").status, 400);
}

class ShardFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::compiled_in()) GTEST_SKIP() << "built with DABS_FAILPOINTS=OFF";
    fail::clear();
  }
  void TearDown() override {
    if (fail::compiled_in()) fail::clear();
  }
};

TEST_F(ShardFailpointTest, RpcFaultIs503ThenNextCallRecovers) {
  JobApi::Config config = fast_config();
  ShardGroup group(config, 1);
  ShardBackend backend(group);

  fail::configure("shard.rpc", "nth:1");
  const ApiReply faulted = backend.submit(small_job(41));
  EXPECT_EQ(faulted.status, 503) << faulted.body;
  EXPECT_NE(parse(faulted.body).find("error")->as_string().find("shard"),
            std::string::npos);

  // The fault fired before any bytes hit the pipe, so the frame stream is
  // still in sync: the very next call goes through.
  const ApiReply ok = backend.submit(small_job(41));
  ASSERT_EQ(ok.status, 202) << ok.body;
  wait_terminal(backend, job_id_of(ok));
}

// ---------------------------------------------------------------------------
// SolveServer over HTTP

/// SolveServer + JobApi + run() thread, for driving with HttpClient.
class ServerUnderTest {
 public:
  explicit ServerUnderTest(JobApi::Config api_config = fast_config(),
                           SolveServer::Config config = {})
      : api_(std::move(api_config)) {
    config.http.port = 0;
    config.http.stream_poll_seconds = 0.005;
    server_ = std::make_unique<SolveServer>(config, api_);
    thread_ = std::thread([this] { server_->run(); });
  }
  ~ServerUnderTest() {
    server_->stop();
    thread_.join();
  }
  std::uint16_t port() const { return server_->port(); }

 private:
  JobApi api_;
  std::unique_ptr<SolveServer> server_;
  std::thread thread_;
};

TEST(SolveServerTest, EndToEndJobLifecycle) {
  ServerUnderTest server;
  HttpClient client("127.0.0.1", server.port());

  const auto health = client.request("GET", "/v1/healthz");
  EXPECT_EQ(health.status, 200);
  const auto health_body = parse(health.body);
  EXPECT_EQ(health_body.find("status")->as_string(), "ok");
  EXPECT_GE(health_body.find("uptime_seconds")->as_double(), 0.0);
  EXPECT_GT(health_body.find("pid")->as_int(), 0);
  EXPECT_EQ(health_body.find("shards")->as_int(), 1);
  const io::JsonValue* build = health_body.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->find("version")->as_string().empty());
  EXPECT_FALSE(build->find("compiler")->as_string().empty());

  const auto solvers = client.request("GET", "/v1/solvers");
  EXPECT_EQ(solvers.status, 200);
  EXPECT_NE(solvers.body.find("\"sa\""), std::string::npos);
  const auto problems = client.request("GET", "/v1/problems");
  EXPECT_EQ(problems.status, 200);
  EXPECT_NE(problems.body.find("maxcut"), std::string::npos);

  const auto accepted =
      client.request("POST", "/v1/jobs", small_job(51, 0.1, "http"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::uint64_t id = static_cast<std::uint64_t>(
      parse(accepted.body).find("job_id")->as_int());

  // Poll status over HTTP until terminal.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::string state;
  for (;;) {
    const auto status =
        client.request("GET", "/v1/jobs/" + std::to_string(id));
    ASSERT_EQ(status.status, 200) << status.body;
    state = state_of(status.body);
    if (state != "queued" && state != "running") break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(state, "done");

  // The event stream of a finished job: one JSONL body, cursor complete.
  std::string streamed;
  const auto events = client.stream(
      "GET", "/v1/jobs/" + std::to_string(id) + "/events",
      [&streamed](const std::string& chunk) {
        streamed += chunk;
        return true;
      });
  EXPECT_EQ(events.status, 200);
  ASSERT_FALSE(streamed.empty());
  const auto first_page = parse(streamed.substr(0, streamed.find('\n')));
  EXPECT_EQ(first_page.find("state")->as_string(), "done");
  EXPECT_GE(first_page.find("events")->as_array().size(), 1u);

  // Cancel after done conflicts; stats reflect the lifecycle.
  EXPECT_EQ(
      client.request("DELETE", "/v1/jobs/" + std::to_string(id)).status, 409);
  const auto stats = client.request("GET", "/v1/stats");
  ASSERT_EQ(stats.status, 200);
  const auto stats_body = parse(stats.body);
  EXPECT_GE(stats_body.find("http")->find("requests")->as_int(), 5);
  EXPECT_EQ(stats_body.find("service")->find("done")->as_int(), 1);
}

TEST(SolveServerTest, StreamingEventsWhileJobRuns) {
  ServerUnderTest server;
  HttpClient client("127.0.0.1", server.port());
  const auto accepted =
      client.request("POST", "/v1/jobs", small_job(52, 0.4));
  ASSERT_EQ(accepted.status, 202);
  const std::string id =
      std::to_string(parse(accepted.body).find("job_id")->as_int());

  // Stream from a second connection while the job is still solving: the
  // chunked stream must span pages and terminate once the job is done.
  HttpClient streamer("127.0.0.1", server.port());
  std::vector<std::string> pages;
  const auto resp = streamer.stream("GET", "/v1/jobs/" + id + "/events",
                                    [&pages](const std::string& chunk) {
                                      pages.push_back(chunk);
                                      return true;
                                    });
  EXPECT_EQ(resp.status, 200);
  ASSERT_GE(pages.size(), 1u);
  bool saw_terminal = false;
  for (const std::string& page : pages) {
    const auto parsed = parse(page);
    if (parsed.find("state")->as_string() == "done") saw_terminal = true;
  }
  EXPECT_TRUE(saw_terminal);
}

TEST(SolveServerTest, ErrorStatusMapping) {
  ServerUnderTest server;
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.request("POST", "/v1/jobs", "{oops").status, 400);
  EXPECT_EQ(client.request("GET", "/v1/jobs/999").status, 404);
  EXPECT_EQ(client.request("GET", "/v1/jobs/not-a-number").status, 400);
  EXPECT_EQ(client.request("DELETE", "/v1/jobs/999").status, 404);
  EXPECT_EQ(client.request("GET", "/no/such/route").status, 404);
  EXPECT_EQ(client.request("POST", "/v1/healthz").status, 405);
  EXPECT_EQ(client.request("PUT", "/v1/jobs/3").status, 405);
}

// ---------------------------------------------------------------------------
// /v1/metrics

/// Tiny Prometheus text-exposition checker: every comment line is a
/// well-formed HELP/TYPE, every sample line is `name[{labels}] value` with
/// a valid identifier and a parsable number.  Returns the sample names.
std::set<std::string> check_prometheus_text(const std::string& text) {
  std::set<std::string> names;
  std::istringstream in(text);
  std::string line;
  const auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) return false;
    }
    return !(name[0] >= '0' && name[0] <= '9');
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash;
      std::string what;
      std::string name;
      meta >> hash >> what >> name;
      EXPECT_TRUE(what == "HELP" || what == "TYPE") << line;
      EXPECT_TRUE(valid_name(name)) << line;
      if (what == "TYPE") {
        std::string kind;
        meta >> kind;
        EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                    kind == "histogram")
            << line;
      }
      continue;
    }
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      // Labels must close right before the value and quote every value.
      EXPECT_EQ(name.back(), '}') << line;
      const std::string labels = name.substr(brace + 1,
                                             name.size() - brace - 2);
      std::size_t quotes = 0;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == '"' && (i == 0 || labels[i - 1] != '\\')) ++quotes;
      }
      EXPECT_EQ(quotes % 2, 0u) << line;
      name = name.substr(0, brace);
    }
    EXPECT_TRUE(valid_name(name)) << line;
    char* end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0' && end != value.c_str())
        << line;
    names.insert(name);
  }
  return names;
}

TEST(SolveServerTest, MetricsEndpointServesPrometheusText) {
  ServerUnderTest server;
  HttpClient client("127.0.0.1", server.port());

  const auto accepted =
      client.request("POST", "/v1/jobs", small_job(61, 0.05));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  const std::uint64_t id = static_cast<std::uint64_t>(
      parse(accepted.body).find("job_id")->as_int());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const auto status =
        client.request("GET", "/v1/jobs/" + std::to_string(id));
    ASSERT_EQ(status.status, 200);
    const std::string state = state_of(status.body);
    if (state != "queued" && state != "running") break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const auto scrape = client.request("GET", "/v1/metrics");
  ASSERT_EQ(scrape.status, 200);
  const std::set<std::string> names = check_prometheus_text(scrape.body);
  // Every instrumented family shows up in one scrape: http, service,
  // cache, and the solver progress counters.
  EXPECT_TRUE(names.count("dabs_http_requests_total")) << scrape.body;
  EXPECT_TRUE(names.count("dabs_service_jobs_submitted_total"));
  EXPECT_TRUE(names.count("dabs_service_jobs_terminal_total"));
  EXPECT_TRUE(names.count("dabs_service_queue_depth"));
  EXPECT_TRUE(names.count("dabs_service_job_seconds_bucket"));
  EXPECT_TRUE(names.count("dabs_model_cache_misses_total"));
  EXPECT_EQ(client.request("POST", "/v1/metrics").status, 405);
}

TEST(ShardGroupTest, MetricsAggregateAcrossShardsWithLabels) {
  JobApi::Config config = fast_config();
  ShardGroup group(config, 2);
  ShardBackend backend(group);

  // Spread a few jobs over both workers, then wait them out.
  std::vector<std::uint64_t> ids;
  for (int seed = 0; seed < 6; ++seed) {
    const ApiReply reply = backend.submit(small_job(seed, 0.05));
    ASSERT_EQ(reply.status, 202) << reply.body;
    ids.push_back(job_id_of(reply));
  }
  for (const std::uint64_t id : ids) wait_terminal(backend, id);

  const ApiReply scrape = backend.metrics();
  ASSERT_EQ(scrape.status, 200);
  const std::set<std::string> names = check_prometheus_text(scrape.body);
  EXPECT_TRUE(names.count("dabs_service_jobs_submitted_total"));
  // Worker registries arrive labelled per shard; the front end's own
  // registry (RPC metrics) is labelled shard="front".
  EXPECT_NE(scrape.body.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(scrape.body.find("shard=\"1\""), std::string::npos);
  EXPECT_NE(scrape.body.find(
                "dabs_shard_rpc_frames_total{shard=\"front\"}"),
            std::string::npos)
      << scrape.body;
  EXPECT_TRUE(names.count("dabs_shard_submits_total"));

  // The submitted totals across both shards must add up to what we sent —
  // modulo the fork baseline: each worker's registry was copied from this
  // process at fork time, and the front-end's own (unchanging) sample IS
  // that baseline, so shard_sum == 2 * front_baseline + jobs_sent.
  std::uint64_t shard_sum = 0;
  std::uint64_t front_baseline = 0;
  std::istringstream in(scrape.body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("dabs_service_jobs_submitted_total{", 0) == 0) {
      const std::uint64_t v =
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      if (line.find("shard=\"front\"") != std::string::npos) {
        front_baseline += v;
      } else {
        shard_sum += v;
      }
    }
  }
  EXPECT_EQ(shard_sum, 2 * front_baseline + ids.size());
}

TEST(SolveServerTest, ShardOfModeRejectsForeignKeysAndIds) {
  // A --shard-of 0/2 server behind an external LB: requests belonging to
  // shard 1 come back 421 with the owner, so the LB (or client) can redo
  // the request against the right server.
  SolveServer::Config config;
  config.shard_of_idx = 0;
  config.shard_of_total = 2;
  ServerUnderTest server(fast_config(), config);
  HttpClient client("127.0.0.1", server.port());

  const HashRing ring(2);
  int owned = 0;
  int foreign = 0;
  for (int seed = 0; seed < 8; ++seed) {
    const std::string body = small_job(seed);
    const auto reply = client.request("POST", "/v1/jobs", body);
    service::BatchJob job = service::parse_batch_job(body);
    if (ring.owner(routing_key(job)) == 0) {
      EXPECT_EQ(reply.status, 202) << reply.body;
      ++owned;
    } else {
      EXPECT_EQ(reply.status, 421) << reply.body;
      EXPECT_EQ(parse(reply.body).find("shard")->as_int(), 1);
      ++foreign;
    }
  }
  EXPECT_GT(owned, 0);
  EXPECT_GT(foreign, 0);

  // Id-keyed routes: odd global ids belong to shard 1.
  EXPECT_EQ(client.request("GET", "/v1/jobs/3").status, 421);
  EXPECT_EQ(client.request("DELETE", "/v1/jobs/7").status, 421);
  // Even ids are this shard's (404 here: never submitted).
  EXPECT_EQ(client.request("GET", "/v1/jobs/4").status, 404);
}

}  // namespace
}  // namespace dabs::net
