// Unit tests for the content-addressed, byte-bounded model cache.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "qubo/qubo_builder.hpp"
#include "service/model_cache.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using service::ModelCache;

QuboModel small_model(std::uint64_t seed) {
  return testing::random_model(32, 0.3, 9, seed);
}

TEST(ModelCache, ContentHashAgreesWithEquality) {
  const QuboModel a = small_model(1);
  const QuboModel b = small_model(1);  // same build recipe -> same content
  const QuboModel c = small_model(2);
  EXPECT_TRUE(ModelCache::same_content(a, b));
  EXPECT_EQ(ModelCache::content_hash(a), ModelCache::content_hash(b));
  EXPECT_FALSE(ModelCache::same_content(a, c));
  EXPECT_NE(ModelCache::content_hash(a), ModelCache::content_hash(c));
}

TEST(ModelCache, BackendParticipatesInIdentity) {
  const QuboModel csr = testing::random_model(16, 0.9, 5, 3, QuboBackend::kCsr);
  const QuboModel dense =
      testing::random_model(16, 0.9, 5, 3, QuboBackend::kDense);
  EXPECT_FALSE(ModelCache::same_content(csr, dense));
  EXPECT_NE(ModelCache::content_hash(csr), ModelCache::content_hash(dense));
}

TEST(ModelCache, ApproximateBytesCoversArrays) {
  const QuboModel m = small_model(1);
  const std::size_t bytes = ModelCache::approximate_bytes(m);
  // At least the CSR payload: columns + values + diagonal.
  EXPECT_GE(bytes, 2 * m.edge_count() * (sizeof(VarIndex) + sizeof(Weight)) +
                       m.size() * sizeof(Weight));
}

TEST(ModelCache, InternDedupesEqualContent) {
  ModelCache cache;
  bool hit = true;
  const auto first = cache.intern(small_model(1), &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.intern(small_model(1), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // one shared instance

  const auto other = cache.intern(small_model(2), &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(first.get(), other.get());

  const ModelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ModelCache, GetOrLoadAliasesKeysAndSkipsLoader) {
  ModelCache cache;
  int loads = 0;
  const auto loader = [&loads] {
    ++loads;
    return small_model(1);
  };

  bool hit = true;
  const auto a = cache.get_or_load("path1", loader, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(loads, 1);

  // Repeat key: no parse at all.
  const auto b = cache.get_or_load("path1", loader, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(a.get(), b.get());

  // Different key, equal content: loader runs once more, storage shared.
  const auto c = cache.get_or_load("path2", loader, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(loads, 2);
  EXPECT_EQ(a.get(), c.get());
  EXPECT_EQ(cache.stats().entries, 1u);

  // The alias learned in the previous call also skips the loader now.
  (void)cache.get_or_load("path2", loader, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(loads, 2);
}

TEST(ModelCache, EvictsLeastRecentlyUsedByBytes) {
  const QuboModel probe = small_model(1);
  const std::size_t one = ModelCache::approximate_bytes(probe);
  // Room for roughly two entries of this size.
  ModelCache cache(2 * one + one / 2);

  bool hit = false;
  (void)cache.intern(small_model(1), &hit);
  (void)cache.intern(small_model(2), &hit);
  EXPECT_EQ(cache.stats().entries, 2u);

  // Touch model 1 so model 2 is the LRU victim when 3 arrives.
  (void)cache.intern(small_model(1), &hit);
  EXPECT_TRUE(hit);
  (void)cache.intern(small_model(3), &hit);
  EXPECT_FALSE(hit);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, cache.max_bytes());

  (void)cache.intern(small_model(1), &hit);
  EXPECT_TRUE(hit);  // survived (recently used)
  (void)cache.intern(small_model(2), &hit);
  EXPECT_FALSE(hit);  // was evicted
}

TEST(ModelCache, EvictionDropsKeyAliases) {
  const std::size_t one = ModelCache::approximate_bytes(small_model(1));
  ModelCache cache(one + one / 2);  // one resident entry at a time
  int loads = 0;
  const auto load1 = [&loads] {
    ++loads;
    return small_model(1);
  };
  const auto load2 = [&loads] {
    ++loads;
    return small_model(2);
  };

  bool hit = false;
  (void)cache.get_or_load("p1", load1, &hit);
  (void)cache.get_or_load("p2", load2, &hit);  // evicts p1's entry
  EXPECT_EQ(cache.stats().entries, 1u);
  (void)cache.get_or_load("p1", load1, &hit);  // must reload, not dangle
  EXPECT_FALSE(hit);
  EXPECT_EQ(loads, 3);
}

TEST(ModelCache, OversizedModelIsReturnedUncached) {
  ModelCache cache(16);  // smaller than any real model
  bool hit = true;
  const auto m = cache.intern(small_model(1), &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->size(), 32u);
  const ModelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ModelCache, EvictionNeverDropsLiveReferences) {
  const std::size_t one = ModelCache::approximate_bytes(small_model(1));
  ModelCache cache(one + one / 2);
  const auto keep = cache.intern(small_model(1));
  (void)cache.intern(small_model(2));  // evicts entry 1 from the cache
  // The cache dropped its reference; ours still works.
  EXPECT_EQ(keep->size(), 32u);
  EXPECT_EQ(keep->energy(BitVector(32)), 0);
}

TEST(ModelCache, ClearEmptiesButKeepsCounters) {
  ModelCache cache;
  (void)cache.intern(small_model(1));
  (void)cache.intern(small_model(1));
  cache.clear();
  const ModelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  bool hit = true;
  (void)cache.intern(small_model(1), &hit);
  EXPECT_FALSE(hit);
}

TEST(ModelCache, ConcurrentInternsCollapseToOneEntry) {
  ModelCache cache;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &hits] {
      for (int i = 0; i < kPerThread; ++i) {
        bool hit = false;
        const auto m = cache.intern(small_model(7), &hit);
        ASSERT_NE(m, nullptr);
        if (hit) hits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const ModelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads * kPerThread - 1u);
  EXPECT_EQ(hits.load(), kThreads * kPerThread - 1);
}

}  // namespace
}  // namespace dabs
