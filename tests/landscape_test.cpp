// Tests for the landscape analysis estimators.
#include <gtest/gtest.h>

#include "analysis/landscape.hpp"
#include "problems/qap.hpp"
#include "qubo/qubo_builder.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

TEST(Landscape, RandomEnergyStatsCentersOnExpectation) {
  // Model with only diagonal weight w on every variable: E = w * popcount,
  // expectation w*n/2 over uniform random vectors.
  const int n = 64, w = 2;
  QuboBuilder b(n);
  for (VarIndex i = 0; i < n; ++i) b.add_linear(i, w);
  const QuboModel m = b.build();
  Rng rng(1);
  const SummaryStats s = analysis::random_energy_stats(m, 3000, rng);
  EXPECT_NEAR(s.mean(), w * n / 2.0, 3.0);
  EXPECT_EQ(s.count(), 3000u);
}

TEST(Landscape, AutocorrelationStartsAtOneAndDecays) {
  const QuboModel m = testing::random_model(60, 0.5, 9, 7);
  Rng rng(2);
  const auto ac = analysis::random_walk_autocorrelation(m, 8000, 32, rng);
  ASSERT_EQ(ac.rho.size(), 33u);
  EXPECT_DOUBLE_EQ(ac.rho[0], 1.0);
  // One flip changes few terms: lag-1 correlation must stay high.
  EXPECT_GT(ac.rho[1], 0.5);
  // Far lags decorrelate.
  EXPECT_LT(ac.rho[32], ac.rho[1]);
  EXPECT_GE(ac.correlation_length, 1u);
  EXPECT_LE(ac.correlation_length, 32u);
}

TEST(Landscape, FlatLandscapeHasMaximalCorrelationLength) {
  // All-zero model: the walk never changes energy.
  const QuboModel m = QuboBuilder(16).build();
  Rng rng(3);
  const auto ac = analysis::random_walk_autocorrelation(m, 500, 8, rng);
  EXPECT_EQ(ac.correlation_length, 8u);
}

TEST(Landscape, LocalMinimaSampleOnConvexModel) {
  // Positive diagonal only: the unique local minimum is the zero vector.
  QuboBuilder b(20);
  for (VarIndex i = 0; i < 20; ++i) b.add_linear(i, 3);
  const QuboModel m = b.build();
  Rng rng(4);
  const auto s = analysis::sample_local_minima(m, 50, rng);
  EXPECT_EQ(s.distinct_minima, 1u);
  EXPECT_EQ(s.best, 0);
  EXPECT_DOUBLE_EQ(s.best_basin_share, 1.0);
  EXPECT_DOUBLE_EQ(s.energies.mean(), 0.0);
}

TEST(Landscape, QapLandscapeIsMoreFragmentedThanConvex) {
  const auto qap =
      problems::qap_to_qubo(problems::make_grid_qap(2, 3, 10, 5, "g"));
  Rng rng(5);
  const auto s = analysis::sample_local_minima(qap.model, 60, rng);
  EXPECT_GT(s.distinct_minima, 5u);  // many isolated minima (paper §II-B)
  EXPECT_EQ(s.restarts, 60u);
}

TEST(Landscape, ParameterValidation) {
  const QuboModel m = testing::random_model(10, 0.5, 3, 6);
  Rng rng(6);
  EXPECT_THROW((void)analysis::random_energy_stats(m, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)analysis::random_walk_autocorrelation(m, 10, 10, rng),
               std::invalid_argument);
  EXPECT_THROW((void)analysis::sample_local_minima(m, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace dabs
