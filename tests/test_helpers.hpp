// Shared helpers for the test suite: random model generators and naive
// reference implementations used to cross-check the incremental machinery.
#pragma once

#include <vector>

#include "qubo/qubo_builder.hpp"
#include "qubo/qubo_model.hpp"
#include "rng/xorshift.hpp"
#include "util/bit_vector.hpp"

namespace dabs::testing {

/// Random QUBO: every pair is an edge with probability `density`; weights
/// uniform in [-max_w, max_w] (zeros dropped by the builder), diagonals in
/// the same range.  `backend` forces the kernel backend (kAuto = pick by
/// density, the production default).
inline QuboModel random_model(std::size_t n, double density, int max_w,
                              std::uint64_t seed,
                              QuboBackend backend = QuboBackend::kAuto) {
  Rng rng(seed);
  QuboBuilder b(n);
  b.set_backend(backend);
  auto w = [&]() {
    return static_cast<Weight>(
        static_cast<long long>(rng.next_index(2 * max_w + 1)) - max_w);
  };
  for (VarIndex i = 0; i < n; ++i) b.add_linear(i, w());
  for (VarIndex i = 0; i + 1 < n; ++i) {
    for (VarIndex j = i + 1; j < n; ++j) {
      if (rng.next_unit() < density) b.add_quadratic(i, j, w());
    }
  }
  return b.build();
}

/// Naive O(n^2) evaluation of Eq. 2 straight off the weight accessor;
/// deliberately independent of QuboModel::energy's CSR loop.
inline Energy naive_energy(const QuboModel& m, const BitVector& x) {
  Energy e = 0;
  const auto n = static_cast<VarIndex>(m.size());
  for (VarIndex i = 0; i < n; ++i) {
    if (!x.get(i)) continue;
    e += m.diag(i);
    for (VarIndex j = i + 1; j < n; ++j) {
      if (x.get(j)) e += m.weight(i, j);
    }
  }
  return e;
}

/// Random solution vector from `rng`.
inline BitVector random_solution(std::size_t n, Rng& rng) {
  BitVector x(n);
  for (std::size_t i = 0; i < n; ++i) x.set(i, rng.next_bit());
  return x;
}

}  // namespace dabs::testing
