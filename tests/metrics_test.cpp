// Unit tests for obs metrics: counters/gauges, histogram bucket semantics
// and quantile extraction, registry get-or-create rules, Prometheus
// rendering, snapshot JSON round trips, and shard-label merging.  The
// concurrent tests are TSan targets: every update path is relaxed atomics
// and totals must still be exact.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dabs::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, BucketBoundariesAreLessOrEqual) {
  // Prometheus `le` semantics: an observation equal to a bound lands IN
  // that bound's bucket, not the next one.
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // -> le=1
  h.observe(1.0);   // -> le=1 (boundary)
  h.observe(1.5);   // -> le=2
  h.observe(2.0);   // -> le=2 (boundary)
  h.observe(5.0);   // -> le=5 (boundary)
  h.observe(7.0);   // -> +Inf
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0, 4.0});
  // 100 observations uniformly in (0, 1]: everything is in the first
  // bucket, so the median interpolates to roughly the bucket midpoint.
  for (int i = 1; i <= 100; ++i) h.observe(i / 100.0);
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
}

TEST(Histogram, P99LandsInTheTailBucket) {
  Histogram h({0.01, 0.1, 1.0, 10.0});
  for (int i = 0; i < 90; ++i) h.observe(0.005);  // le=0.01
  for (int i = 0; i < 10; ++i) h.observe(5.0);    // le=10
  // Rank 99 of 100 is past the 90 fast observations: the p99 must escape
  // the fast bucket and land in (1, 10], while the median stays fast.
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, 1.0);
  EXPECT_LE(p99, 10.0);
  EXPECT_LE(h.quantile(0.5), 0.01);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty({1.0});
  EXPECT_EQ(empty.quantile(0.99), 0.0);

  // Everything in +Inf: the quantile degrades to the highest finite bound.
  Histogram inf_only({1.0, 3.0});
  inf_only.observe(100.0);
  EXPECT_DOUBLE_EQ(inf_only.quantile(0.99), 3.0);
}

TEST(Histogram, ExponentialBounds) {
  const std::vector<double> bounds =
      Histogram::exponential_bounds(0.001, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
  // The default latency ladder is ascending and non-trivial.
  const std::vector<double>& lat = Histogram::default_latency_bounds();
  ASSERT_GT(lat.size(), 4u);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_LT(lat[i - 1], lat[i]);
}

TEST(Histogram, ConcurrentObservationsAreExact) {
  Histogram h({1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(0.5);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * 0.5);
  EXPECT_EQ(h.bucket_counts()[0],
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Registry, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("dabs_test_total", "help");
  Counter& b = reg.counter("dabs_test_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& labelled =
      reg.counter("dabs_test_total", "help", {{"class", "2xx"}});
  EXPECT_NE(&a, &labelled);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("dabs_test_total", "help");
  EXPECT_THROW(reg.gauge("dabs_test_total", "help"), std::logic_error);
  reg.histogram("dabs_test_seconds", "help", {1.0});
  EXPECT_THROW(reg.histogram("dabs_test_seconds", "help", {2.0}),
               std::logic_error);
}

TEST(Registry, InvalidNamesThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("9starts_with_digit", "help"),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("has space", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok_name", "help", {{"bad key", "v"}}),
               std::invalid_argument);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Registration races too: get-or-create from every thread must
      // resolve to one instance.
      Counter& c = reg.counter("dabs_race_total", "help");
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.counter("dabs_race_total", "help").value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Render, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("dabs_reqs_total", "Requests.", {{"class", "2xx"}}).inc(3);
  reg.gauge("dabs_depth", "Queue depth.").set(7);
  Histogram& h = reg.histogram("dabs_lat_seconds", "Latency.", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(2.0);

  std::ostringstream out;
  render_prometheus(reg.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP dabs_reqs_total Requests."), std::string::npos);
  EXPECT_NE(text.find("# TYPE dabs_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("dabs_reqs_total{class=\"2xx\"} 3"), std::string::npos);
  EXPECT_NE(text.find("dabs_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dabs_lat_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: le="1" includes le="0.1".
  EXPECT_NE(text.find("dabs_lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dabs_lat_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dabs_lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("dabs_lat_seconds_count 3"), std::string::npos);
}

TEST(Render, EscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("dabs_esc_total", "h", {{"path", "a\"b\\c\nd"}}).inc();
  std::ostringstream out;
  render_prometheus(reg.snapshot(), out);
  EXPECT_NE(out.str().find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(Snapshot, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("dabs_jobs_total", "Jobs.", {{"disposition", "done"}}).inc(5);
  reg.gauge("dabs_active", "Active.").set(-2);
  Histogram& h = reg.histogram("dabs_wait_seconds", "Wait.", {0.5, 5.0});
  h.observe(0.1);
  h.observe(10.0);

  std::ostringstream out;
  write_snapshot_json(reg.snapshot(), out);
  const MetricsSnapshot parsed = parse_snapshot_json(out.str());

  // The round-tripped snapshot renders byte-identically.
  std::ostringstream before;
  std::ostringstream after;
  render_prometheus(reg.snapshot(), before);
  render_prometheus(parsed, after);
  EXPECT_EQ(before.str(), after.str());
}

TEST(Snapshot, ParseRejectsGarbage) {
  EXPECT_THROW(parse_snapshot_json("not json"), std::invalid_argument);
  EXPECT_THROW(parse_snapshot_json("{\"families\": 3}"),
               std::invalid_argument);
}

TEST(Snapshot, MergeAddsShardLabels) {
  MetricsRegistry shard0;
  MetricsRegistry shard1;
  shard0.counter("dabs_jobs_total", "Jobs.").inc(2);
  shard1.counter("dabs_jobs_total", "Jobs.").inc(3);
  shard1.counter("dabs_only_on_one_total", "One.").inc(1);

  MetricsSnapshot s0 = shard0.snapshot();
  MetricsSnapshot s1 = shard1.snapshot();
  add_label(s0, "shard", "0");
  add_label(s1, "shard", "1");
  const MetricsSnapshot merged = merge_snapshots({s0, s1});

  std::ostringstream out;
  render_prometheus(merged, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("dabs_jobs_total{shard=\"0\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dabs_jobs_total{shard=\"1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("dabs_only_on_one_total{shard=\"1\"} 1"),
            std::string::npos);
  // One HELP/TYPE block per family even after the merge.
  std::size_t help_count = 0;
  for (std::size_t pos = text.find("# HELP dabs_jobs_total");
       pos != std::string::npos;
       pos = text.find("# HELP dabs_jobs_total", pos + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
}

TEST(Snapshot, AddLabelSkipsExistingKey) {
  MetricsRegistry reg;
  reg.counter("dabs_labelled_total", "h", {{"shard", "front"}}).inc();
  MetricsSnapshot snap = reg.snapshot();
  add_label(snap, "shard", "9");
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].samples.size(), 1u);
  ASSERT_EQ(snap[0].samples[0].labels.size(), 1u);
  EXPECT_EQ(snap[0].samples[0].labels[0].second, "front");
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace dabs::obs
