// Tests for the QAP one-hot reduction (paper §II-B): the E(X) = C(g) - n*p
// identity on feasible vectors, penalty behaviour on infeasible ones, and
// the generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baseline/exhaustive.hpp"
#include "problems/qap.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

namespace pr = problems;

pr::QapInstance tiny_qap() {
  // n = 3, symmetric flows, line distances.
  pr::QapInstance inst;
  inst.n = 3;
  inst.name = "tiny3";
  inst.flow = {0, 5, 2,   //
               5, 0, 3,   //
               2, 3, 0};
  inst.dist = {0, 1, 2,   //
               1, 0, 1,   //
               2, 1, 0};
  return inst;
}

TEST(Qap, CostOrderedDoubleSum) {
  const auto inst = tiny_qap();
  // Identity assignment: C = sum_{i != j} l(i,j) d(i,j)
  //   = 2*(5*1 + 2*2 + 3*1) = 24.
  EXPECT_EQ(inst.cost({0, 1, 2}), 24);
  // g = (1, 0, 2): facilities at locations 1,0,2.
  // pairs (0,1): l=5,d(1,0)=1 twice -> 10; (0,2): l=2,d(1,2)=1 twice -> 4;
  // (1,2): l=3,d(0,2)=2 twice -> 12; total 26.
  EXPECT_EQ(inst.cost({1, 0, 2}), 26);
}

TEST(Qap, FeasibleEnergyIdentityOverAllPermutations) {
  const auto inst = tiny_qap();
  const pr::QapQubo q = pr::qap_to_qubo(inst, 1000);
  std::vector<VarIndex> g = {0, 1, 2};
  do {
    const BitVector x = pr::encode_assignment(g);
    EXPECT_EQ(q.model.energy(x), inst.cost(g) - 3 * 1000);
  } while (std::next_permutation(g.begin(), g.end()));
}

TEST(Qap, FeasibleEnergyIdentityOnRandomInstances) {
  for (int n : {2, 4, 5}) {
    const auto inst = pr::make_uniform_qap(n, 9, 100 + n);
    const pr::QapQubo q = pr::qap_to_qubo(inst, 5000);
    std::vector<VarIndex> g(n);
    std::iota(g.begin(), g.end(), 0);
    do {
      const BitVector x = pr::encode_assignment(g);
      EXPECT_EQ(q.model.energy(x), inst.cost(g) - Energy{5000} * n);
    } while (std::next_permutation(g.begin(), g.end()));
  }
}

TEST(Qap, InfeasibleVectorsCostMoreThanFeasibleOnes) {
  // With the default (auto) penalty, the QUBO optimum must be feasible, so
  // every infeasible vector sits strictly above E = C(g*) - n*p.
  const auto inst = tiny_qap();
  const pr::QapQubo q = pr::qap_to_qubo(inst);  // auto penalty
  const Energy opt_cost = pr::qap_brute_force(inst);
  const Energy opt_energy = q.feasible_energy(opt_cost);

  const BaselineResult r = ExhaustiveSolver(9).solve(q.model);
  EXPECT_EQ(r.best_energy, opt_energy);
  const auto g = pr::decode_assignment(r.best_solution, 3);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(inst.cost(*g), opt_cost);
}

TEST(Qap, PaperPenaltyBoundOnInfeasible) {
  // Paper: if X is not feasible, E(X) >= -(n-1) p (for dominant penalty).
  const auto inst = tiny_qap();
  const Weight p = pr::default_qap_penalty(inst);
  const pr::QapQubo q = pr::qap_to_qubo(inst, p);
  const std::size_t N = 9;
  for (std::uint64_t bits = 0; bits < (1u << N); ++bits) {
    BitVector x(N);
    for (std::size_t i = 0; i < N; ++i) x.set(i, (bits >> i) & 1);
    if (!pr::decode_assignment(x, 3).has_value()) {
      EXPECT_GE(q.model.energy(x), -Energy{p} * 2) << "bits=" << bits;
    }
  }
}

TEST(Qap, EncodeDecodeRoundTrip) {
  const std::vector<VarIndex> g = {3, 1, 4, 0, 2};
  const BitVector x = pr::encode_assignment(g);
  EXPECT_EQ(x.count(), 5u);
  const auto back = pr::decode_assignment(x, 5);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(Qap, DecodeRejectsInfeasible) {
  // Two ones in a row.
  BitVector x(4);
  x.set(0, true);
  x.set(1, true);
  EXPECT_FALSE(pr::decode_assignment(x, 2).has_value());
  // Column reused.
  BitVector y(4);
  y.set(0, true);  // facility 0 -> location 0
  y.set(2, true);  // facility 1 -> location 0
  EXPECT_FALSE(pr::decode_assignment(y, 2).has_value());
  // Empty row.
  BitVector z(4);
  z.set(1, true);
  EXPECT_FALSE(pr::decode_assignment(z, 2).has_value());
}

TEST(Qap, BruteForceMatchesManualTiny) {
  const auto inst = tiny_qap();
  std::vector<VarIndex> best_g;
  const Energy best = pr::qap_brute_force(inst, &best_g);
  // Enumerate by hand through cost() for all 6 permutations.
  std::vector<VarIndex> g = {0, 1, 2};
  Energy expect = kInfiniteEnergy;
  do {
    expect = std::min(expect, inst.cost(g));
  } while (std::next_permutation(g.begin(), g.end()));
  EXPECT_EQ(best, expect);
  EXPECT_EQ(inst.cost(best_g), best);
}

TEST(Qap, UniformGeneratorShape) {
  const auto inst = pr::make_uniform_qap(8, 50, 11, "tai-like");
  EXPECT_EQ(inst.n, 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(inst.l(i, i), 0);
    EXPECT_EQ(inst.d(i, i), 0);
    for (std::size_t j = 0; j < 8; ++j) {
      if (i == j) continue;
      EXPECT_GE(inst.l(i, j), 1);
      EXPECT_LE(inst.l(i, j), 50);
      EXPECT_GE(inst.d(i, j), 1);
      EXPECT_LE(inst.d(i, j), 50);
    }
  }
}

TEST(Qap, GridGeneratorManhattanDistances) {
  const auto inst = pr::make_grid_qap(2, 3, 10, 12, "nug-like");
  EXPECT_EQ(inst.n, 6u);
  // Locations: 0 1 2 / 3 4 5.  d(0,5) = |0-1| + |0-2| = 3.
  EXPECT_EQ(inst.d(0, 5), 3);
  EXPECT_EQ(inst.d(1, 4), 1);
  // Symmetric flows.
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      EXPECT_EQ(inst.l(a, b), inst.l(b, a));
      EXPECT_EQ(inst.d(a, b), inst.d(b, a));
    }
  }
}

TEST(Qap, QuboHasExpectedVariableCount) {
  const auto inst = pr::make_uniform_qap(5, 9, 13);
  const pr::QapQubo q = pr::qap_to_qubo(inst, 1000);
  EXPECT_EQ(q.model.size(), 25u);
  EXPECT_EQ(q.n, 5u);
  EXPECT_EQ(q.penalty, 1000);
  // Diagonal all -p.
  for (VarIndex v = 0; v < 25; ++v) EXPECT_EQ(q.model.diag(v), -1000);
}

TEST(Qap, DefaultPenaltyIsTheCertifiedBound) {
  // The automatic penalty is computed, not a magic constant: the min of
  // the two certificates — C(identity) + 1 (with non-negative entries the
  // feasible optimum C(g*) - n p then undercuts every infeasible vector's
  // documented floor of -(n-1) p) and the sign-agnostic interaction-
  // dominance bound 2 max|l| max|d| n + 1.
  const auto inst = pr::make_uniform_qap(6, 20, 14);
  const Weight p = pr::default_qap_penalty(inst);
  EXPECT_EQ(p, pr::min_safe_qap_penalty(inst));
  std::vector<VarIndex> id(inst.n);
  std::iota(id.begin(), id.end(), 0);
  int max_l = 0, max_d = 0;
  for (int v : inst.flow) max_l = std::max(max_l, std::abs(v));
  for (int v : inst.dist) max_d = std::max(max_d, std::abs(v));
  EXPECT_EQ(Energy{p}, std::min(inst.cost(id) + 1,
                                Energy{2} * max_l * max_d * 6 + 1));
  EXPECT_LE(Energy{p}, inst.cost(id) + 1);
}

TEST(Qap, MinSafePenaltyUsesDominanceAloneOnNegativeEntries) {
  auto inst = tiny_qap();
  inst.flow[1] = -5;  // negative entry voids the interaction floor
  inst.flow[3] = -5;
  const Weight p = pr::min_safe_qap_penalty(inst);
  int max_l = 0, max_d = 0;
  for (int v : inst.flow) max_l = std::max(max_l, std::abs(v));
  for (int v : inst.dist) max_d = std::max(max_d, std::abs(v));
  EXPECT_EQ(p, 2 * max_l * max_d * 3 + 1);
}

}  // namespace
}  // namespace dabs
