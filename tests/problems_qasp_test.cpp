// Tests for the Pegasus topology generator and QASP instances (paper §II-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "problems/pegasus.hpp"
#include "problems/qasp.hpp"
#include "qubo/conversion.hpp"
#include "rng/xorshift.hpp"

namespace dabs {
namespace {

namespace pr = problems;

TEST(Pegasus, NodeCountClosedForm) {
  for (std::size_t m : {2u, 3u, 4u, 6u}) {
    const pr::PegasusGraph g(m);
    EXPECT_EQ(g.node_count(), 24 * m * (m - 1)) << "m=" << m;
  }
}

TEST(Pegasus, P16MatchesAdvantageScale) {
  const pr::PegasusGraph g(16);
  EXPECT_EQ(g.node_count(), 5760u);  // the Advantage qubit count
  // The ideal coupler count is fixed by the topology; pin it down so any
  // generator change is caught (external 5376 + odd 2880 + internal).
  const std::size_t external = 2 * 16 * 12 * 14;
  const std::size_t odd = 2 * 16 * 6 * 15;
  EXPECT_GT(g.edges().size(), external + odd);
}

TEST(Pegasus, NoSelfLoopsOrDuplicates) {
  const pr::PegasusGraph g(4);
  std::set<std::pair<VarIndex, VarIndex>> seen;
  for (auto [a, b] : g.edges()) {
    EXPECT_NE(a, b);
    EXPECT_LT(a, g.node_count());
    EXPECT_LT(b, g.node_count());
    auto key = std::minmax(a, b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
}

TEST(Pegasus, DegreeIsAtMostFifteen) {
  const pr::PegasusGraph g(6);
  const auto deg = g.degrees();
  EXPECT_LE(*std::max_element(deg.begin(), deg.end()), 15u);
}

TEST(Pegasus, BulkQubitsReachDegreeFifteen) {
  const pr::PegasusGraph g(6);
  const auto deg = g.degrees();
  const std::size_t at15 =
      std::count(deg.begin(), deg.end(), std::uint32_t{15});
  // Most interior qubits have full degree 12 internal + 2 external + 1 odd.
  EXPECT_GT(at15, g.node_count() / 3);
}

TEST(Pegasus, EveryQubitHasExactlyOneOddCoupler) {
  const pr::PegasusGraph g(4);
  std::vector<int> odd_count(g.node_count(), 0);
  for (auto [a, b] : g.edges()) {
    const auto ca = g.coord(a);
    const auto cb = g.coord(b);
    if (ca.u == cb.u && ca.w == cb.w && ca.z == cb.z &&
        (ca.k >> 1) == (cb.k >> 1)) {
      ++odd_count[a];
      ++odd_count[b];
    }
  }
  for (const int c : odd_count) EXPECT_EQ(c, 1);
}

TEST(Pegasus, CoordinateRoundTrip) {
  const pr::PegasusGraph g(5);
  for (VarIndex v = 0; v < g.node_count(); v += 7) {
    EXPECT_EQ(g.node_id(g.coord(v)), v);
  }
}

TEST(Pegasus, InternalCouplersConnectOppositeOrientations) {
  const pr::PegasusGraph g(4);
  for (auto [a, b] : g.edges()) {
    const auto ca = g.coord(a);
    const auto cb = g.coord(b);
    if (ca.u != cb.u) {
      // Internal coupler: one vertical, one horizontal — nothing further to
      // assert structurally here beyond orientation.
      continue;
    }
    // Same orientation: must be external (k equal, z adjacent) or odd
    // (same z, k pair).
    const bool external =
        ca.w == cb.w && ca.k == cb.k &&
        (ca.z + 1 == cb.z || cb.z + 1 == ca.z);
    const bool odd = ca.w == cb.w && ca.z == cb.z && (ca.k ^ 1) == cb.k;
    EXPECT_TRUE(external || odd);
  }
}

TEST(Pegasus, RejectsTooSmall) {
  EXPECT_THROW(pr::PegasusGraph(1), std::invalid_argument);
}

TEST(PegasusFaults, DeletesDownToTargetNodeCount) {
  const pr::PegasusGraph g(4);
  const auto wg = pr::apply_faults(g, g.node_count() - 10, 99);
  EXPECT_EQ(wg.node_count, g.node_count() - 10);
  EXPECT_EQ(wg.keep.size(), wg.node_count);
  EXPECT_LT(wg.edges.size(), g.edges().size());
  for (auto [a, b] : wg.edges) {
    EXPECT_LT(a, wg.node_count);
    EXPECT_LT(b, wg.node_count);
  }
}

TEST(PegasusFaults, InducedSubgraphPreservesSurvivingEdges) {
  const pr::PegasusGraph g(3);
  const auto wg = pr::apply_faults(g, g.node_count(), 1);  // no faults
  EXPECT_EQ(wg.edges.size(), g.edges().size());
}

TEST(PegasusFaults, DeterministicInSeed) {
  const pr::PegasusGraph g(3);
  const auto a = pr::apply_faults(g, 100, 5);
  const auto b = pr::apply_faults(g, 100, 5);
  EXPECT_EQ(a.keep, b.keep);
  EXPECT_EQ(a.edges, b.edges);
  const auto c = pr::apply_faults(g, 100, 6);
  EXPECT_NE(a.keep, c.keep);
}

TEST(Qasp, ValuesRespectResolutionRanges) {
  for (int r : {1, 4, 16}) {
    const auto inst = pr::make_qasp_small(r, 3, 7);
    for (const IsingEdge& e : inst.ising.edges()) {
      EXPECT_NE(e.coupling, 0);
      EXPECT_GE(e.coupling, -r);
      EXPECT_LE(e.coupling, r);
    }
    for (VarIndex i = 0; i < inst.ising.size(); ++i) {
      EXPECT_NE(inst.ising.bias(i), 0);
      EXPECT_GE(inst.ising.bias(i), -4 * r);
      EXPECT_LE(inst.ising.bias(i), 4 * r);
    }
  }
}

TEST(Qasp, AllValuesAppearAtResolutionTwo) {
  // With r = 2 each J must take all of {-2,-1,1,2} somewhere.
  const auto inst = pr::make_qasp_small(2, 4, 11);
  std::set<Weight> j_values;
  for (const IsingEdge& e : inst.ising.edges()) j_values.insert(e.coupling);
  EXPECT_EQ(j_values, (std::set<Weight>{-2, -1, 1, 2}));
}

TEST(Qasp, QuboEquivalentToIsing) {
  const auto inst = pr::make_qasp_small(2, 2, 13);
  // Spot-check H(S) = E(X) + offset on random assignments.
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector x(inst.qubo.size());
    for (std::size_t i = 0; i < x.size(); ++i) x.set(i, rng.next_bit());
    EXPECT_EQ(inst.ising.hamiltonian(to_spins(x)),
              inst.qubo.energy(x) + inst.offset);
  }
}

TEST(Qasp, GraphStatisticsFlowThrough) {
  const auto inst = pr::make_qasp_small(1, 3, 17);
  const pr::PegasusGraph g(3);
  EXPECT_EQ(inst.nodes, g.node_count());
  EXPECT_EQ(inst.edge_count, g.edges().size());
  EXPECT_EQ(inst.qubo.size(), g.node_count());
  EXPECT_EQ(inst.qubo.edge_count(), g.edges().size());
}

TEST(Qasp, FaultyWorkingGraphTarget) {
  pr::QaspParams p;
  p.resolution = 1;
  p.pegasus_m = 4;
  p.working_nodes = 200;
  const auto inst = pr::make_qasp(p);
  EXPECT_EQ(inst.nodes, 200u);
  EXPECT_EQ(inst.qubo.size(), 200u);
}

TEST(Qasp, DifferentResolutionsShareTopology) {
  pr::QaspParams a, b;
  a.pegasus_m = b.pegasus_m = 3;
  a.working_nodes = b.working_nodes = 120;
  a.graph_seed = b.graph_seed = 3;
  a.resolution = 1;
  b.resolution = 16;
  const auto ia = pr::make_qasp(a);
  const auto ib = pr::make_qasp(b);
  ASSERT_EQ(ia.ising.edges().size(), ib.ising.edges().size());
  for (std::size_t e = 0; e < ia.ising.edges().size(); ++e) {
    EXPECT_EQ(ia.ising.edges()[e].i, ib.ising.edges()[e].i);
    EXPECT_EQ(ia.ising.edges()[e].j, ib.ising.edges()[e].j);
  }
}

}  // namespace
}  // namespace dabs
