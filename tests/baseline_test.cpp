// Tests for the comparator solvers: exhaustive ground truth, SA, tabu
// search, greedy restart, path relinking.
#include <gtest/gtest.h>

#include "baseline/exhaustive.hpp"
#include "baseline/greedy_restart.hpp"
#include "baseline/path_relinking.hpp"
#include "baseline/simulated_annealing.hpp"
#include "baseline/tabu_search.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::naive_energy;
using testing::random_model;

// Brute-force reference completely independent of the library internals.
Energy dumb_optimum(const QuboModel& m) {
  const std::size_t n = m.size();
  Energy best = kInfiniteEnergy;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    BitVector x(n);
    for (std::size_t i = 0; i < n; ++i) x.set(i, (bits >> i) & 1);
    best = std::min(best, naive_energy(m, x));
  }
  return best;
}

TEST(Exhaustive, MatchesDumbEnumeration) {
  for (int n : {1, 2, 3, 7, 12}) {
    const QuboModel m = random_model(n, 0.6, 9, 5000 + n);
    const BaselineResult r = ExhaustiveSolver().solve(m);
    EXPECT_EQ(r.best_energy, dumb_optimum(m)) << "n=" << n;
    EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
    EXPECT_EQ(r.flips, (std::uint64_t{1} << n) - 1);
  }
}

TEST(Exhaustive, RefusesOversizedModels) {
  const QuboModel m = random_model(30, 0.1, 3, 5050);
  EXPECT_THROW((void)ExhaustiveSolver(26).solve(m), std::invalid_argument);
}

TEST(SimulatedAnnealing, FindsOptimumOnSmallModel) {
  const QuboModel m = random_model(16, 0.6, 9, 5100);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  SaParams p;
  p.sweeps = 300;
  p.restarts = 5;
  p.seed = 3;
  const BaselineResult r = SimulatedAnnealing(p).solve(m);
  EXPECT_EQ(r.best_energy, truth);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
}

TEST(SimulatedAnnealing, MoreSweepsNeverHurtOnAverage) {
  // Not a strict guarantee per-seed, so compare best-of-5 seeds.
  const QuboModel m = random_model(60, 0.3, 9, 5101);
  Energy quick_best = kInfiniteEnergy, long_best = kInfiniteEnergy;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SaParams quick{.sweeps = 10, .seed = seed};
    SaParams slow{.sweeps = 500, .seed = seed};
    quick_best =
        std::min(quick_best, SimulatedAnnealing(quick).solve(m).best_energy);
    long_best =
        std::min(long_best, SimulatedAnnealing(slow).solve(m).best_energy);
  }
  EXPECT_LE(long_best, quick_best);
}

TEST(SimulatedAnnealing, TimeLimitShortensRun) {
  const QuboModel m = random_model(200, 0.5, 9, 5102);
  SaParams p;
  p.sweeps = 100000;
  p.restarts = 100;
  p.time_limit_seconds = 0.1;
  const BaselineResult r = SimulatedAnnealing(p).solve(m);
  EXPECT_LT(r.elapsed_seconds, 5.0);
}

TEST(SimulatedAnnealing, RejectsBadParams) {
  EXPECT_THROW(SimulatedAnnealing(SaParams{.sweeps = 0}),
               std::invalid_argument);
  EXPECT_THROW(SimulatedAnnealing(SaParams{.t_final = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(SimulatedAnnealing(SaParams{.restarts = 0}),
               std::invalid_argument);
}

TEST(TabuSearchBaseline, FindsOptimumOnSmallModel) {
  const QuboModel m = random_model(14, 0.6, 9, 5200);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  TabuSearchParams p;
  p.iterations = 5000;
  p.seed = 5;
  const BaselineResult r = TabuSearch(p).solve(m);
  EXPECT_EQ(r.best_energy, truth);
}

TEST(TabuSearchBaseline, ResultEnergyIsConsistent) {
  const QuboModel m = random_model(50, 0.4, 9, 5201);
  const BaselineResult r = TabuSearch({.iterations = 2000}).solve(m);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
}

TEST(GreedyRestartBaseline, FindsOptimumWithManyRestarts) {
  const QuboModel m = random_model(12, 0.6, 9, 5300);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  const BaselineResult r = GreedyRestart({.restarts = 500}).solve(m);
  EXPECT_EQ(r.best_energy, truth);
}

TEST(GreedyRestartBaseline, BestIsAlwaysALocalMinimumEnergy) {
  const QuboModel m = random_model(40, 0.4, 9, 5301);
  const BaselineResult r = GreedyRestart({.restarts = 10}).solve(m);
  // Verify 1-flip local minimality of the reported solution.
  for (VarIndex k = 0; k < m.size(); ++k) {
    EXPECT_GE(m.delta(r.best_solution, k), 0);
  }
}

TEST(PathRelinkingBaseline, FindsOptimumOnSmallModel) {
  const QuboModel m = random_model(14, 0.6, 9, 5400);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  PathRelinkingParams p;
  p.elite_size = 8;
  p.relinks = 200;
  const BaselineResult r = PathRelinking(p).solve(m);
  EXPECT_EQ(r.best_energy, truth);
}

TEST(PathRelinkingBaseline, AtLeastAsGoodAsItsEliteSeeds) {
  const QuboModel m = random_model(40, 0.4, 9, 5401);
  PathRelinkingParams pr_params;
  pr_params.elite_size = 10;
  pr_params.relinks = 50;
  pr_params.seed = 7;
  const BaselineResult pr = PathRelinking(pr_params).solve(m);
  const BaselineResult gr =
      GreedyRestart({.restarts = 10, .seed = 7}).solve(m);
  EXPECT_LE(pr.best_energy, gr.best_energy);
}

TEST(EnergyGap, MatchesPaperConvention) {
  // Paper: Gurobi found -33241 vs potential optimum -33337 -> 0.287 % gap.
  EXPECT_NEAR(energy_gap(-33241, -33337), 0.00287, 0.0001);
  EXPECT_DOUBLE_EQ(energy_gap(-100, -100), 0.0);
  EXPECT_DOUBLE_EQ(energy_gap(0, 0), 0.0);
}

}  // namespace
}  // namespace dabs
