// Tests for the unified solving surface: the SolverRegistry round-trip
// (every registered name constructs and solves through Solver::solve with
// sane report fields), option handling, observer callbacks, warm starts,
// and the campaign runners driving BaselineResult-era solvers through the
// identical TTS protocol used for DABS.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/exhaustive.hpp"
#include "core/campaign.hpp"
#include "core/parallel_campaign.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_registry.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

using testing::random_model;

const std::vector<std::string> kAllSolvers = {
    "dabs", "abs", "sa", "tabu", "greedy-restart",
    "path-relinking", "subqubo", "exhaustive"};

TEST(SolverRegistry, ListsAllEightSolvers) {
  const std::vector<SolverInfo> infos = SolverRegistry::global().list();
  std::vector<std::string> names;
  for (const SolverInfo& info : infos) {
    names.push_back(info.name);
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
  for (const std::string& expected : kAllSolvers) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing solver: " << expected;
    EXPECT_TRUE(SolverRegistry::global().contains(expected));
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistry, RoundTripEveryRegisteredSolver) {
  const QuboModel m = random_model(12, 0.6, 9, 6000);
  for (const std::string& name : kAllSolvers) {
    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);

    SolveRequest req;
    req.model = &m;
    req.stop.time_limit_seconds = 10.0;
    req.stop.max_batches = 60;
    req.seed = 7;
    const SolveReport r = solver->solve(req);

    EXPECT_EQ(r.solver, name);
    EXPECT_EQ(r.best_solution.size(), m.size()) << name;
    EXPECT_EQ(m.energy(r.best_solution), r.best_energy) << name;
    EXPECT_GE(r.elapsed_seconds, 0.0) << name;
    EXPECT_LT(r.elapsed_seconds, 10.0) << name;
    EXPECT_FALSE(r.cancelled) << name;
    EXPECT_FALSE(r.reached_target) << name;  // no target was set
    EXPECT_GT(r.flips + r.batches, 0u) << name;
  }
}

TEST(SolverRegistry, UnknownNameAndOptionsThrow) {
  EXPECT_THROW((void)SolverRegistry::global().create("no-such-solver"),
               std::invalid_argument);
  EXPECT_THROW((void)SolverRegistry::global().create(
                   "tabu", {{"tenrue", "8"}}),  // misspelled key
               std::invalid_argument);
  EXPECT_THROW((void)SolverRegistry::global().create(
                   "tabu", {{"tenure", "eight"}}),  // malformed value
               std::invalid_argument);
  EXPECT_THROW((void)SolverRegistry::global().create(
                   "dabs", {{"threads", "maybe"}}),
               std::invalid_argument);
}

TEST(SolverRegistry, WorkBudgetBoundsExhaustiveEnumeration) {
  // 2^20 Gray-code steps, but a work budget of 20k: the run must stop
  // within one 8192-step polling stride of the budget, not enumerate all.
  const QuboModel m = random_model(20, 0.5, 9, 6007);
  const std::unique_ptr<Solver> solver =
      SolverRegistry::global().create("exhaustive");
  SolveRequest req;
  req.model = &m;
  req.stop.max_batches = 20000;
  const SolveReport r = solver->solve(req);
  EXPECT_LT(r.flips, 20000u + 8192u);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
}

TEST(SolverRegistry, OptionsReachTheSolver) {
  const QuboModel m = random_model(10, 0.6, 9, 6001);
  // An exhaustive solver capped below the model size must refuse it.
  const std::unique_ptr<Solver> capped =
      SolverRegistry::global().create("exhaustive", {{"max-bits", "8"}});
  SolveRequest req;
  req.model = &m;
  EXPECT_THROW((void)capped->solve(req), std::invalid_argument);
}

TEST(SolverRegistry, ReplicasOptionRunsTheBulkEngine) {
  // replicas=R flows through to the bulk device path (implying threaded
  // mode) and still produces a consistent bounded run.
  const QuboModel m = random_model(60, 0.5, 9, 6005);
  const std::unique_ptr<Solver> solver = SolverRegistry::global().create(
      "dabs", {{"replicas", "8"}, {"devices", "1"}, {"blocks", "2"},
               {"seed", "9"}});
  SolveRequest req;
  req.model = &m;
  req.stop.max_batches = 200;
  req.stop.time_limit_seconds = 30.0;
  const SolveReport r = solver->solve(req);
  EXPECT_EQ(m.energy(r.best_solution), r.best_energy);
  EXPECT_GT(r.batches, 0u);
  // replicas > 1 with threads explicitly off must be rejected.
  EXPECT_THROW((void)SolverRegistry::global()
                   .create("dabs", {{"replicas", "8"}, {"threads", "false"}})
                   ->solve(req),
               std::invalid_argument);
}

TEST(SolverRegistry, TargetStopsBaselinesAndRecordsTts) {
  const QuboModel m = random_model(14, 0.6, 9, 6002);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  for (const char* name : {"sa", "tabu", "greedy-restart"}) {
    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(name);
    SolveRequest req;
    req.model = &m;
    req.stop.time_limit_seconds = 30.0;
    req.stop.target_energy = truth;
    req.seed = 11;
    const SolveReport r = solver->solve(req);
    EXPECT_TRUE(r.reached_target) << name;
    EXPECT_EQ(r.best_energy, truth) << name;
    EXPECT_GE(r.tts_seconds, 0.0) << name;
    EXPECT_LE(r.tts_seconds, r.elapsed_seconds + 1e-9) << name;
  }
}

TEST(SolverRegistry, WarmStartSeedsEverySolverWithTheOptimum) {
  const QuboModel m = random_model(12, 0.6, 9, 6003);
  const BaselineResult truth = ExhaustiveSolver().solve(m);
  for (const std::string& name : kAllSolvers) {
    if (name == "exhaustive") continue;  // exact: ignores warm starts
    const std::unique_ptr<Solver> solver =
        SolverRegistry::global().create(name);
    SolveRequest req;
    req.model = &m;
    req.stop.time_limit_seconds = 10.0;
    req.stop.max_batches = 5;  // almost no search: the warm start must carry
    req.warm_start = {truth.best_solution};
    req.seed = 3;
    const SolveReport r = solver->solve(req);
    EXPECT_EQ(r.best_energy, truth.best_energy) << name;
  }
}

TEST(SolverRegistry, ObserverSeesImprovementsAndRequestIsDeterministic) {
  const QuboModel m = random_model(24, 0.5, 9, 6004);

  struct Recorder : ProgressObserver {
    std::vector<Energy> bests;
    void on_new_best(const ProgressEvent& event) override {
      bests.push_back(event.best_energy);
    }
  } recorder;

  const std::unique_ptr<Solver> solver = SolverRegistry::global().create("sa");
  SolveRequest req;
  req.model = &m;
  req.stop.time_limit_seconds = 10.0;
  req.stop.max_batches = 4000;
  req.seed = 9;
  req.observer = &recorder;
  const SolveReport a = solver->solve(req);
  ASSERT_FALSE(recorder.bests.empty());
  // Strictly improving sequence, ending at the reported best.
  for (std::size_t i = 1; i < recorder.bests.size(); ++i) {
    EXPECT_LT(recorder.bests[i], recorder.bests[i - 1]);
  }
  EXPECT_EQ(recorder.bests.back(), a.best_energy);

  req.observer = nullptr;
  const SolveReport b = solver->solve(req);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_solution, b.best_solution);
  EXPECT_EQ(a.flips, b.flips);
}

SolverConfig campaign_base() {
  SolverConfig c;
  c.stop.time_limit_seconds = 10.0;
  c.stop.max_batches = 50000;  // flips for baselines
  c.seed = 5;
  return c;
}

TEST(CampaignOnInterface, BaselineEraSolverRunsTheIdenticalProtocol) {
  const QuboModel m = random_model(14, 0.6, 9, 6005);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  const Campaign camp(campaign_base(), 4);
  const std::unique_ptr<Solver> tabu = SolverRegistry::global().create("tabu");
  const CampaignResult r = camp.run_solver(m, truth, *tabu);
  EXPECT_EQ(r.runs, 4u);
  EXPECT_EQ(r.final_energies.size(), 4u);
  EXPECT_GT(r.successes, 0u);  // trivial at this size
  EXPECT_EQ(r.successes, r.tts_samples.size());
  EXPECT_EQ(r.best_energy, truth);
  // Trials got distinct derived seeds — the same schedule run() uses.
  const SolveRequest t0 = camp.make_trial_request(m, truth, 0);
  const SolveRequest t1 = camp.make_trial_request(m, truth, 1);
  ASSERT_TRUE(t0.seed && t1.seed);
  EXPECT_NE(*t0.seed, *t1.seed);
  EXPECT_EQ(t0.stop.target_energy, truth);
}

TEST(CampaignOnInterface, ParallelCampaignDistributesAnySolver) {
  const QuboModel m = random_model(14, 0.6, 9, 6006);
  const Energy truth = ExhaustiveSolver().solve(m).best_energy;
  const ParallelCampaign camp(campaign_base(), 6, 3);
  const std::unique_ptr<Solver> sa =
      SolverRegistry::global().create("sa", {{"restarts", "8"}});
  const CampaignResult r = camp.run_solver(m, truth, *sa);
  EXPECT_EQ(r.runs, 6u);
  EXPECT_GT(r.successes, 0u);
  EXPECT_EQ(r.best_energy, truth);
}

}  // namespace
}  // namespace dabs
