// Tests for the IO module: Gset, QAPLIB, QUBO text formats, results table.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/gset.hpp"
#include "io/qaplib.hpp"
#include "io/qubo_text.hpp"
#include "io/results_writer.hpp"
#include "problems/maxcut.hpp"
#include "problems/qap.hpp"
#include "test_helpers.hpp"

namespace dabs {
namespace {

TEST(GsetIo, ParsesOneBasedIndices) {
  std::istringstream in("3 2\n1 2 5\n2 3 -1\n");
  const auto inst = io::read_gset(in, "test");
  EXPECT_EQ(inst.n, 3u);
  ASSERT_EQ(inst.edges.size(), 2u);
  EXPECT_EQ(inst.edges[0].u, 0u);
  EXPECT_EQ(inst.edges[0].v, 1u);
  EXPECT_EQ(inst.edges[0].w, 5);
  EXPECT_EQ(inst.edges[1].w, -1);
}

TEST(GsetIo, RoundTripPreservesInstance) {
  const auto inst = problems::make_random_maxcut(
      40, 100, problems::EdgeWeights::kPlusMinusOne, 4, "rt");
  std::stringstream buf;
  io::write_gset(buf, inst);
  const auto back = io::read_gset(buf, "rt");
  ASSERT_EQ(back.n, inst.n);
  ASSERT_EQ(back.edges.size(), inst.edges.size());
  for (std::size_t i = 0; i < inst.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].u, inst.edges[i].u);
    EXPECT_EQ(back.edges[i].v, inst.edges[i].v);
    EXPECT_EQ(back.edges[i].w, inst.edges[i].w);
  }
}

TEST(GsetIo, RejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW((void)io::read_gset(empty), std::invalid_argument);
  std::istringstream truncated("3 2\n1 2 5\n");
  EXPECT_THROW((void)io::read_gset(truncated), std::invalid_argument);
  std::istringstream selfloop("3 1\n2 2 1\n");
  EXPECT_THROW((void)io::read_gset(selfloop), std::invalid_argument);
  std::istringstream outofrange("3 1\n1 4 1\n");
  EXPECT_THROW((void)io::read_gset(outofrange), std::invalid_argument);
}

TEST(GsetIo, FileRoundTrip) {
  const auto inst = problems::make_random_maxcut(
      10, 20, problems::EdgeWeights::kPlusOne, 5, "file");
  const std::string path = ::testing::TempDir() + "/dabs_gset_test.txt";
  io::write_gset_file(path, inst);
  const auto back = io::read_gset_file(path);
  EXPECT_EQ(back.n, inst.n);
  EXPECT_EQ(back.edges.size(), inst.edges.size());
  EXPECT_EQ(back.name, "dabs_gset_test.txt");
}

TEST(QaplibIo, ParsesFlowThenDistance) {
  std::istringstream in(
      "2\n"
      "0 3\n3 0\n"
      "0 7\n7 0\n");
  const auto inst = io::read_qaplib(in, "t2");
  EXPECT_EQ(inst.n, 2u);
  EXPECT_EQ(inst.l(0, 1), 3);
  EXPECT_EQ(inst.d(0, 1), 7);
}

TEST(QaplibIo, RoundTripPreservesInstance) {
  const auto inst = problems::make_uniform_qap(6, 20, 8, "rt");
  std::stringstream buf;
  io::write_qaplib(buf, inst);
  const auto back = io::read_qaplib(buf, "rt");
  EXPECT_EQ(back.n, inst.n);
  EXPECT_EQ(back.flow, inst.flow);
  EXPECT_EQ(back.dist, inst.dist);
}

TEST(QaplibIo, RejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW((void)io::read_qaplib(empty), std::invalid_argument);
  std::istringstream truncated("3\n1 2 3\n");
  EXPECT_THROW((void)io::read_qaplib(truncated), std::invalid_argument);
}

TEST(QuboTextIo, RoundTripPreservesModel) {
  const QuboModel m = testing::random_model(30, 0.3, 9, 600);
  std::stringstream buf;
  io::write_qubo(buf, m);
  const QuboModel back = io::read_qubo(buf);
  ASSERT_EQ(back.size(), m.size());
  ASSERT_EQ(back.edge_count(), m.edge_count());
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const BitVector x = testing::random_solution(30, rng);
    EXPECT_EQ(back.energy(x), m.energy(x));
  }
}

TEST(QuboTextIo, SupportsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "qubo 3 1\n"
      "\n"
      "d 0 -4   # diagonal\n"
      "q 0 2 7\n");
  const QuboModel m = io::read_qubo(in);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.diag(0), -4);
  EXPECT_EQ(m.weight(0, 2), 7);
}

TEST(QuboTextIo, RejectsMalformedInput) {
  std::istringstream noheader("d 0 1\n");
  EXPECT_THROW((void)io::read_qubo(noheader), std::invalid_argument);
  std::istringstream badcount("qubo 3 2\nq 0 1 1\n");
  EXPECT_THROW((void)io::read_qubo(badcount), std::invalid_argument);
  std::istringstream badtag("qubo 2 0\nz 0 1\n");
  EXPECT_THROW((void)io::read_qubo(badtag), std::invalid_argument);
}

TEST(ResultsTable, PrintsAlignedColumnsAndTitle) {
  io::ResultsTable t("Table II");
  t.columns({"solver", "energy", "tts"});
  t.add_row({"DABS", "-33,337", "0.694s"});
  t.add_row({"Gurobi", "-33,241", "3600s"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("Table II"), std::string::npos);
  EXPECT_NE(s.find("DABS"), std::string::npos);
  EXPECT_NE(s.find("-33,241"), std::string::npos);
}

TEST(ResultsTable, RejectsMismatchedRowWidth) {
  io::ResultsTable t("x");
  t.columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(ResultsTable, WritesTsv) {
  io::ResultsTable t("x");
  t.columns({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/dabs_results_test.tsv";
  t.write_tsv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a\tb");
  std::getline(in, line);
  EXPECT_EQ(line, "1\t2");
}

TEST(Formatting, EnergyGroupsThousands) {
  EXPECT_EQ(io::fmt_energy(-33337), "-33,337");
  EXPECT_EQ(io::fmt_energy(0), "0");
  EXPECT_EQ(io::fmt_energy(1234567), "1,234,567");
  EXPECT_EQ(io::fmt_energy(-12), "-12");
}

TEST(Formatting, SecondsAndPercent) {
  EXPECT_EQ(io::fmt_seconds(0.694), "0.694s");
  EXPECT_EQ(io::fmt_percent(0.992), "99.2%");
  EXPECT_EQ(io::fmt_percent(0.005, 1), "0.5%");
}

}  // namespace
}  // namespace dabs
