#include "evolve/solution_pool.hpp"

#include <algorithm>

#include "evolve/genetic_ops.hpp"
#include "rng/seeder.hpp"
#include "util/assert.hpp"

namespace dabs {

SolutionPool::SolutionPool(std::size_t capacity, std::size_t n)
    : capacity_(capacity), n_(n) {
  DABS_CHECK(capacity > 0, "pool capacity must be positive");
  DABS_CHECK(n > 0, "pool solutions need at least one bit");
  entries_.reserve(capacity);
}

void SolutionPool::initialize_random(Rng& rng) {
  std::lock_guard lock(mu_);
  entries_.clear();
  for (std::size_t i = 0; i < capacity_; ++i) {
    PoolEntry e;
    e.solution = random_bit_vector(n_, rng);
    e.energy = kInfiniteEnergy;
    e.algo = static_cast<MainSearch>(rng.next_index(kMainSearchCount));
    e.op = kDabsGeneticOps[rng.next_index(kDabsGeneticOpCount)];
    entries_.push_back(std::move(e));
  }
}

bool SolutionPool::is_duplicate_locked(const PoolEntry& e) const {
  // Entries are sorted by energy, so any duplicate has equal energy and sits
  // in the contiguous equal-energy range.
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), e.energy,
      [](const PoolEntry& a, Energy v) { return a.energy < v; });
  for (; lo != entries_.end() && lo->energy == e.energy; ++lo) {
    if (lo->solution == e.solution) return true;
  }
  return false;
}

bool SolutionPool::insert(PoolEntry entry) {
  DABS_CHECK(entry.solution.size() == n_, "solution length mismatch");
  std::lock_guard lock(mu_);
  const bool full = entries_.size() >= capacity_;
  if (full && !entries_.empty() && entry.energy >= entries_.back().energy) {
    return false;  // not better than the worst
  }
  if (is_duplicate_locked(entry)) return false;
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry.energy,
      [](Energy v, const PoolEntry& a) { return v < a.energy; });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
  return true;
}

std::size_t SolutionPool::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

PoolEntry SolutionPool::entry(std::size_t rank) const {
  std::lock_guard lock(mu_);
  DABS_CHECK(rank < entries_.size(), "pool rank out of range");
  return entries_[rank];
}

Energy SolutionPool::best_energy() const {
  std::lock_guard lock(mu_);
  return entries_.empty() ? kInfiniteEnergy : entries_.front().energy;
}

Energy SolutionPool::worst_energy() const {
  std::lock_guard lock(mu_);
  return entries_.empty() ? kInfiniteEnergy : entries_.back().energy;
}

PoolEntry SolutionPool::select_cube_weighted(Rng& rng) const {
  std::lock_guard lock(mu_);
  DABS_CHECK(!entries_.empty(), "selection from an empty pool");
  return entries_[cube_weighted_rank(rng, entries_.size())];
}

PoolEntry SolutionPool::select_uniform(Rng& rng) const {
  std::lock_guard lock(mu_);
  DABS_CHECK(!entries_.empty(), "selection from an empty pool");
  return entries_[rng.next_index(entries_.size())];
}

std::vector<BitVector> SolutionPool::evaluated_solutions() const {
  std::lock_guard lock(mu_);
  std::vector<BitVector> out;
  out.reserve(entries_.size());
  for (const PoolEntry& e : entries_) {
    if (e.energy != kInfiniteEnergy) out.push_back(e.solution);
  }
  return out;
}

std::vector<PoolEntry> SolutionPool::best_entries(std::size_t count) const {
  std::lock_guard lock(mu_);
  std::vector<PoolEntry> out;
  out.reserve(std::min(count, entries_.size()));
  for (const PoolEntry& e : entries_) {
    if (out.size() >= count) break;
    if (e.energy == kInfiniteEnergy) break;  // sorted: only +inf seeds follow
    out.push_back(e);
  }
  return out;
}

PoolDiversity SolutionPool::diversity() const {
  return measure_diversity(evaluated_solutions(), n_);
}

void SolutionPool::restart(Rng& rng) {
  {
    std::lock_guard lock(mu_);
    entries_.clear();
  }
  initialize_random(rng);
}

}  // namespace dabs
