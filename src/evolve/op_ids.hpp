// Identifiers for the genetic operations (paper §IV-A).  Split from the
// operation implementations so headers that only *name* operations (pool,
// packets, run statistics) stay lightweight.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dabs {

enum class GeneticOp : std::uint8_t {
  kRandom = 0,
  kBest,
  kMutation,
  kCrossover,
  kXrossover,
  kZero,
  kOne,
  kIntervalZero,
  // ABS baseline only ("mutation after crossover"); excluded from DABS's
  // adaptive choice set.
  kMutateCrossover,
};

/// Operations DABS selects among (the paper's eight).
inline constexpr std::size_t kDabsGeneticOpCount = 8;
/// All operations including the ABS composite.
inline constexpr std::size_t kGeneticOpCount = 9;

inline constexpr std::array<GeneticOp, kDabsGeneticOpCount> kDabsGeneticOps = {
    GeneticOp::kRandom,    GeneticOp::kBest,      GeneticOp::kMutation,
    GeneticOp::kCrossover, GeneticOp::kXrossover, GeneticOp::kZero,
    GeneticOp::kOne,       GeneticOp::kIntervalZero};

std::string_view to_string(GeneticOp op);

}  // namespace dabs
