// The diversity engine: the GA core of DABS (paper §IV) packaged as one
// subsystem.  It owns the island ring of solution pools, the adaptive
// 95 %/5 % algorithm/operation selector, the run statistics, and the
// (optional, beyond-paper) island migration — everything between "a device
// returned a packet" and "here is the next target to search from".
//
// The engine is deliberately solver-agnostic: DabsSolver drives it through
// next_packet / accept_result, but the same surface serves the synchronous
// round-robin loop, the threaded host pool, and tests that exercise the GA
// in isolation.  Thread model: next_packet(i, ...) and maybe_migrate(i, ...)
// are called only by island i's host thread; accept_result / inject /
// check_restart / all observers may be called from any thread.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/run_stats.hpp"
#include "device/packet.hpp"
#include "evolve/adaptive_selector.hpp"
#include "evolve/diversity.hpp"
#include "evolve/genetic_ops.hpp"
#include "evolve/island_ring.hpp"
#include "rng/seeder.hpp"

namespace dabs {

struct EngineConfig {
  /// One island (pool + host generation stream) per device.
  std::size_t islands = 2;
  std::size_t pool_capacity = 100;

  /// Adaptive-selection diversity (paper defaults: 5 algorithms, 8 ops).
  std::vector<MainSearch> algorithms{kAllMainSearches.begin(),
                                     kAllMainSearches.end()};
  std::vector<GeneticOp> operations{kDabsGeneticOps.begin(),
                                    kDabsGeneticOps.end()};
  double explore_prob = 0.05;
  GeneticOpParams op_params;

  /// Restart every pool when the ring has merged (paper §IV-B).
  bool restart_on_merge = true;

  /// Ring migration cadence in generated packets per island; 0 disables
  /// (the paper's configuration — mixing happens through Xrossover only).
  std::uint64_t migration_interval = 0;
  /// Best entries copied to the ring neighbor per migration event.
  std::size_t migration_count = 1;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

class DiversityEngine {
 public:
  /// `seeder` supplies one RNG per pool for initialization plus the
  /// engine's private restart seed; the caller's seeder advances by
  /// islands + 1 draws, keeping whole-run determinism in one place.
  DiversityEngine(EngineConfig cfg, std::size_t bits, MersenneSeeder& seeder);

  std::size_t islands() const noexcept { return ring_.pool_count(); }
  std::size_t bits() const noexcept { return bits_; }
  const EngineConfig& config() const noexcept { return cfg_; }

  IslandRing& ring() noexcept { return ring_; }
  const IslandRing& ring() const noexcept { return ring_; }

  /// Generates the next target packet for island `island`: adaptive
  /// algorithm/operation selection, genetic operation application (with the
  /// ring neighbor as Xrossover partner), batch accounting.
  Packet next_packet(std::size_t island, Rng& rng);

  /// Inserts a device result into its island's pool.  Returns true when the
  /// pool accepted it (a "win" for the producing algorithm/operation).
  bool accept_result(const Packet& p);

  /// Seeds island `island` with an externally evaluated solution (warm
  /// starts, replay).  Returns true when the pool accepted it.
  bool inject(const BitVector& solution, Energy energy, std::size_t island);

  /// Ring migration for island `island` when its generation counter has
  /// crossed the configured interval.  `cancelled` is polled between
  /// individual entry transfers so a stop request interrupts mid-migration.
  /// Returns the number of entries the neighbor accepted (0 when migration
  /// is off, not yet due, or cancelled immediately).
  std::size_t maybe_migrate(std::size_t island,
                            const std::function<bool()>& cancelled);

  /// Restarts every pool if the ring has merged (and restart_on_merge).
  /// Serialized internally; call from one island's housekeeping slot.
  bool check_restart();

  Energy best_energy() const { return ring_.global_best_energy(); }

  /// Records a global-best improvement for Table VI attribution.
  void note_improvement(double at_seconds, Energy energy, MainSearch algo,
                        GeneticOp op);

  RunStatsSnapshot stats() const { return stats_.snapshot(); }

  /// Diversity across the evaluated entries of *all* pools.
  PoolDiversity diversity() const;

  std::uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }
  std::uint64_t generated() const noexcept {
    return generated_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t accepted() const noexcept {
    return accepted_total_.load(std::memory_order_relaxed);
  }

  /// Pool-diversity and win-rate summary for SolveReport::extras
  /// (pool_min_hamming, pool_entropy, win_op_<Name>, ...) and the matching
  /// end-of-run dabs_evolve_* histogram observations.
  void fill_extras(std::map<std::string, std::string>& extras) const;

 private:
  EngineConfig cfg_;
  std::size_t bits_;
  IslandRing ring_;
  AdaptiveSelector selector_;
  RunStats stats_;

  std::mutex restart_mu_;  // guards restart_seeder_
  MersenneSeeder restart_seeder_;

  // Written only by island i's host thread; summed for reporting.
  std::vector<std::uint64_t> generated_;
  std::vector<std::uint64_t> last_migration_;

  std::atomic<std::uint64_t> generated_total_{0};
  std::atomic<std::uint64_t> accepted_total_{0};
  std::atomic<std::uint64_t> migrations_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::array<std::atomic<std::uint64_t>, kGeneticOpCount> op_wins_{};
  std::array<std::atomic<std::uint64_t>, kMainSearchCount> algo_wins_{};
};

}  // namespace dabs
