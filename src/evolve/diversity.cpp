#include "evolve/diversity.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace dabs {

std::string PoolDiversity::to_string() const {
  std::ostringstream os;
  os << "entries=" << entries << " min_hamming=" << min_hamming
     << " mean_hamming=" << mean_hamming << " entropy=" << entropy;
  return os.str();
}

PoolDiversity measure_diversity(const std::vector<BitVector>& solutions,
                                std::size_t bits) {
  PoolDiversity d;
  d.entries = solutions.size();
  if (solutions.empty() || bits == 0) return d;
  for (const BitVector& s : solutions) {
    DABS_CHECK(s.size() == bits, "diversity: solution length mismatch");
  }

  if (solutions.size() >= 2) {
    std::size_t min_h = std::numeric_limits<std::size_t>::max();
    double sum_h = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < solutions.size(); ++i) {
      for (std::size_t j = i + 1; j < solutions.size(); ++j) {
        const std::size_t h = solutions[i].hamming_distance(solutions[j]);
        if (h < min_h) min_h = h;
        sum_h += double(h);
        ++pairs;
      }
    }
    d.min_hamming = min_h;
    d.mean_hamming = sum_h / double(pairs);
  }

  // Per-bit entropy: column-wise one-counts via word-parallel accumulation.
  std::vector<std::size_t> ones(bits, 0);
  for (const BitVector& s : solutions) {
    for (std::size_t i = 0; i < bits; ++i) ones[i] += s.get(i) ? 1 : 0;
  }
  const double m = double(solutions.size());
  double entropy_sum = 0.0;
  for (std::size_t i = 0; i < bits; ++i) {
    const double p = double(ones[i]) / m;
    if (p > 0.0 && p < 1.0) {
      entropy_sum += -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
    }
  }
  d.entropy = entropy_sum / double(bits);
  return d;
}

}  // namespace dabs
