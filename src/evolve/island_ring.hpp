// Island model (paper §IV-B): one solution pool per device arranged on a
// ring.  The paper's DABS performs no explicit migration; inter-pool mixing
// happens only through the Xrossover operation, which crosses a solution
// from pool i with one from its ring neighbor pool (i+1) mod P.  On top of
// that baseline behaviour the ring optionally supports classic island-model
// migration (migrate()): copying the best evaluated entries of a pool into
// its ring neighbor, driven by the DiversityEngine's migration interval.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "evolve/solution_pool.hpp"
#include "rng/seeder.hpp"

namespace dabs {

class IslandRing {
 public:
  /// `pools` pools of `capacity` entries over `n`-bit solutions, each
  /// initialized full of random +infinity-energy entries from `seeder`.
  IslandRing(std::size_t pools, std::size_t capacity, std::size_t n,
             MersenneSeeder& seeder);

  std::size_t pool_count() const noexcept { return pools_.size(); }

  SolutionPool& pool(std::size_t i) { return *pools_[i]; }
  const SolutionPool& pool(std::size_t i) const { return *pools_[i]; }

  std::size_t neighbor_index(std::size_t i) const {
    return (i + 1) % pools_.size();
  }
  SolutionPool& neighbor(std::size_t i) { return *pools_[neighbor_index(i)]; }
  const SolutionPool& neighbor(std::size_t i) const {
    return *pools_[neighbor_index(i)];
  }

  /// Copies the best `count` *evaluated* entries of pool `from` into its
  /// ring neighbor (from+1) mod P.  Duplicates and entries worse than the
  /// neighbor's worst are rejected by the pool's ordinary insert rules.
  /// Returns the number of entries the neighbor accepted.  No-op (returns
  /// 0) on a single-pool ring.
  std::size_t migrate(std::size_t from, std::size_t count);

  /// Lowest energy across all pools.
  Energy global_best_energy() const;

  /// True when every pool's best solution is identical — the "merged ring"
  /// condition after which the paper restarts from random pools.
  bool merged() const;

  /// Re-randomizes every pool (the restart).
  void restart_all(MersenneSeeder& seeder);

 private:
  std::vector<std::unique_ptr<SolutionPool>> pools_;
};

}  // namespace dabs
