// Diversity measurement over sets of solution vectors — the quantities the
// paper credits for DABS's TTS wins, surfaced as data instead of folklore:
//
//   min / mean pairwise Hamming distance  — how spread out a pool is; a
//       collapsing min distance is the early warning for a merged ring;
//   per-bit Shannon entropy               — fraction of decision freedom
//       left in the pool (1.0 = every bit still undecided, 0.0 = all
//       entries identical).
//
// Measurement is O(m^2 * n/64) words for m solutions of n bits — cheap for
// the paper's 100-entry pools and only ever run at observer-tick / end-of-
// run boundaries, never inside the flip kernels.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/bit_vector.hpp"

namespace dabs {

struct PoolDiversity {
  /// Solutions measured (pools exclude their +infinity random seeds).
  std::size_t entries = 0;
  /// Minimum pairwise Hamming distance; 0 when fewer than two entries.
  std::size_t min_hamming = 0;
  /// Mean pairwise Hamming distance; 0 when fewer than two entries.
  double mean_hamming = 0.0;
  /// Mean per-bit Shannon entropy in [0, 1]; 0 when empty.
  double entropy = 0.0;

  std::string to_string() const;
};

/// Measures min/mean pairwise Hamming distance and mean per-bit entropy of
/// `solutions` (all of length `bits`).  Handles 0 and 1 entries gracefully.
PoolDiversity measure_diversity(const std::vector<BitVector>& solutions,
                                std::size_t bits);

}  // namespace dabs
