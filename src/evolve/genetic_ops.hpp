// The eight genetic operations of the DABS host (paper §IV-A), plus the
// composite "mutation after crossover" operation that the ABS baseline [16]
// uses exclusively.
//
// Each operation produces a *target solution vector* from (at most two)
// solutions selected from a pool with the cube-weighted rank rule
// floor(r^3 * m), which prefers better-ranked entries.
#pragma once

#include "evolve/op_ids.hpp"
#include "evolve/solution_pool.hpp"
#include "rng/xorshift.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct GeneticOpParams {
  double mutation_prob = 0.125;     // per-bit flip probability (paper: 1/8)
  double zero_prob = 0.125;         // per-bit zeroing probability
  double one_prob = 0.125;          // per-bit one-setting probability
  std::uint32_t interval_min = 32;  // IntervalZero segment length lower bound
};

/// Applies `op` to produce a target vector of length n.
///
/// `pool` supplies parent solutions; `neighbor` is the next pool on the
/// island ring and is only consulted by Xrossover (when null, Xrossover
/// degrades to an ordinary Crossover within `pool`).
BitVector apply_genetic_op(GeneticOp op, std::size_t n,
                           const SolutionPool& pool,
                           const SolutionPool* neighbor, Rng& rng,
                           const GeneticOpParams& params = {});

/// Uniformly random n-bit vector (the Random operation; also used to seed
/// pools).
BitVector random_bit_vector(std::size_t n, Rng& rng);

}  // namespace dabs
