#include "evolve/genetic_ops.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dabs {

std::string_view to_string(GeneticOp op) {
  switch (op) {
    case GeneticOp::kRandom:
      return "Random";
    case GeneticOp::kBest:
      return "Best";
    case GeneticOp::kMutation:
      return "Mutation";
    case GeneticOp::kCrossover:
      return "Crossover";
    case GeneticOp::kXrossover:
      return "Xrossover";
    case GeneticOp::kZero:
      return "Zero";
    case GeneticOp::kOne:
      return "One";
    case GeneticOp::kIntervalZero:
      return "IntervalZero";
    case GeneticOp::kMutateCrossover:
      return "MutateCrossover";
  }
  return "?";
}

BitVector random_bit_vector(std::size_t n, Rng& rng) {
  BitVector v(n);
  for (std::size_t w = 0; w < v.word_count(); ++w) v.words()[w] = rng();
  // Re-normalize the tail: simplest is to rewrite the final partial word.
  for (std::size_t i = (n / 64) * 64; i < n; ++i) v.set(i, rng.next_bit());
  if (n % 64 != 0) {
    // Clear bits beyond n in the last word.
    const std::uint64_t keep = (std::uint64_t{1} << (n % 64)) - 1;
    v.words()[v.word_count() - 1] &= keep;
  }
  return v;
}

namespace {

BitVector mutate(BitVector v, double p, Rng& rng) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (rng.next_bernoulli(p)) v.flip(i);
  }
  return v;
}

BitVector uniform_mix(const BitVector& a, const BitVector& b, Rng& rng) {
  DABS_ASSERT(a.size() == b.size());
  BitVector v(a.size());
  // Word-wise mix: a random mask chooses each bit's parent.
  for (std::size_t w = 0; w < v.word_count(); ++w) {
    const std::uint64_t mask = rng();
    v.words()[w] = (a.words()[w] & mask) | (b.words()[w] & ~mask);
  }
  return v;
}

BitVector overwrite_random_bits(BitVector v, double p, bool value, Rng& rng) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (rng.next_bernoulli(p)) v.set(i, value);
  }
  return v;
}

BitVector interval_zero(BitVector v, std::uint32_t min_len, Rng& rng) {
  const std::size_t n = v.size();
  const std::size_t lo = std::min<std::size_t>(min_len, std::max<std::size_t>(1, n / 2));
  const std::size_t hi = std::max<std::size_t>(lo, n / 2);
  const std::size_t len = lo + rng.next_index(hi - lo + 1);
  const std::size_t start = rng.next_index(n);
  for (std::size_t o = 0; o < len; ++o) v.set((start + o) % n, false);
  return v;
}

}  // namespace

BitVector apply_genetic_op(GeneticOp op, std::size_t n,
                           const SolutionPool& pool,
                           const SolutionPool* neighbor, Rng& rng,
                           const GeneticOpParams& params) {
  switch (op) {
    case GeneticOp::kRandom:
      return random_bit_vector(n, rng);
    case GeneticOp::kBest:
      return pool.entry(0).solution;
    case GeneticOp::kMutation:
      return mutate(pool.select_cube_weighted(rng).solution,
                    params.mutation_prob, rng);
    case GeneticOp::kCrossover:
      return uniform_mix(pool.select_cube_weighted(rng).solution,
                         pool.select_cube_weighted(rng).solution, rng);
    case GeneticOp::kXrossover: {
      const SolutionPool& other = neighbor ? *neighbor : pool;
      return uniform_mix(pool.select_cube_weighted(rng).solution,
                         other.select_cube_weighted(rng).solution, rng);
    }
    case GeneticOp::kZero:
      return overwrite_random_bits(pool.select_cube_weighted(rng).solution,
                                   params.zero_prob, false, rng);
    case GeneticOp::kOne:
      return overwrite_random_bits(pool.select_cube_weighted(rng).solution,
                                   params.one_prob, true, rng);
    case GeneticOp::kIntervalZero:
      return interval_zero(pool.select_cube_weighted(rng).solution,
                           params.interval_min, rng);
    case GeneticOp::kMutateCrossover:
      return mutate(uniform_mix(pool.select_cube_weighted(rng).solution,
                                pool.select_cube_weighted(rng).solution, rng),
                    params.mutation_prob, rng);
  }
  DABS_CHECK(false, "unknown GeneticOp id");
  return BitVector(n);
}

}  // namespace dabs
