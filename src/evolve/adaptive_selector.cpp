#include "evolve/adaptive_selector.hpp"

#include <algorithm>

#include "evolve/genetic_ops.hpp"
#include "util/assert.hpp"

namespace dabs {

AdaptiveSelector::AdaptiveSelector()
    : AdaptiveSelector(
          std::vector<MainSearch>(kAllMainSearches.begin(),
                                  kAllMainSearches.end()),
          std::vector<GeneticOp>(kDabsGeneticOps.begin(),
                                 kDabsGeneticOps.end())) {}

AdaptiveSelector::AdaptiveSelector(std::vector<MainSearch> algos,
                                   std::vector<GeneticOp> ops,
                                   double explore_prob)
    : algos_(std::move(algos)), ops_(std::move(ops)),
      explore_prob_(explore_prob) {
  DABS_CHECK(!algos_.empty(), "selector needs at least one algorithm");
  DABS_CHECK(!ops_.empty(), "selector needs at least one operation");
  DABS_CHECK(explore_prob_ >= 0.0 && explore_prob_ <= 1.0,
             "explore probability must be in [0,1]");
}

bool AdaptiveSelector::algo_allowed(MainSearch s) const {
  return std::find(algos_.begin(), algos_.end(), s) != algos_.end();
}

bool AdaptiveSelector::op_allowed(GeneticOp op) const {
  return std::find(ops_.begin(), ops_.end(), op) != ops_.end();
}

MainSearch AdaptiveSelector::select_algorithm(const SolutionPool& pool,
                                              Rng& rng) const {
  if (pool.size() > 0 && !rng.next_bernoulli(explore_prob_)) {
    const MainSearch s = pool.select_uniform(rng).algo;
    if (algo_allowed(s)) return s;
    // A record outside the allowed set (e.g. after reconfiguration) falls
    // through to exploration.
  }
  return algos_[rng.next_index(algos_.size())];
}

GeneticOp AdaptiveSelector::select_operation(const SolutionPool& pool,
                                             Rng& rng) const {
  if (pool.size() > 0 && !rng.next_bernoulli(explore_prob_)) {
    const GeneticOp op = pool.select_uniform(rng).op;
    if (op_allowed(op)) return op;
  }
  return ops_[rng.next_index(ops_.size())];
}

}  // namespace dabs
