// Solution pool (paper Fig. 2 and §IV): a capacity-bounded, energy-sorted
// store of packets received from a device.  Each entry records, alongside
// the solution vector and its energy, *which* main search algorithm and
// genetic operation produced it — the records that drive the adaptive
// 95 %/5 % selection rule.
//
// Pools are shared between their owning host thread and neighbor host
// threads performing Xrossover, so every public operation is internally
// synchronized and selection results are returned by value.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "evolve/diversity.hpp"
#include "evolve/op_ids.hpp"
#include "qubo/types.hpp"
#include "rng/xorshift.hpp"
#include "search/registry.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct PoolEntry {
  BitVector solution;
  Energy energy = kInfiniteEnergy;
  MainSearch algo = MainSearch::kMaxMin;
  GeneticOp op = GeneticOp::kRandom;
};

class SolutionPool {
 public:
  /// An empty pool holding up to `capacity` entries of `n`-bit solutions.
  SolutionPool(std::size_t capacity, std::size_t n);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t bits() const noexcept { return n_; }

  /// Fills the pool to capacity with random vectors at +infinity energy and
  /// uniformly random algorithm/operation records (paper §IV-A start-up).
  void initialize_random(Rng& rng);

  /// Inserts if the entry beats the worst entry (or the pool has space) and
  /// is not a duplicate.  Returns true when inserted.
  bool insert(PoolEntry entry);

  std::size_t size() const;
  /// Entry at `rank` (0 = lowest energy).  Returned by value: the pool may
  /// mutate concurrently.
  PoolEntry entry(std::size_t rank) const;
  Energy best_energy() const;
  Energy worst_energy() const;

  /// Cube-weighted parent selection: rank = floor(r^3 * size).
  PoolEntry select_cube_weighted(Rng& rng) const;

  /// Uniformly random entry (used by the 95 % adaptive rule).
  PoolEntry select_uniform(Rng& rng) const;

  /// Empties and re-randomizes (the paper's restart after pool merge).
  void restart(Rng& rng);

  /// Copies of the solution vectors of every *evaluated* entry (the random
  /// +infinity seeds are excluded — they carry no search information).
  std::vector<BitVector> evaluated_solutions() const;

  /// Up to `count` best *evaluated* entries, taken under one lock (an
  /// atomic snapshot — safe against concurrent restarts).
  std::vector<PoolEntry> best_entries(std::size_t count) const;

  /// Min/mean pairwise Hamming distance and per-bit entropy over the
  /// evaluated entries.  Snapshot semantics: the pool may mutate after.
  PoolDiversity diversity() const;

 private:
  bool is_duplicate_locked(const PoolEntry& e) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t n_;
  std::vector<PoolEntry> entries_;  // sorted ascending by energy
};

}  // namespace dabs
