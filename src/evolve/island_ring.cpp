#include "evolve/island_ring.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dabs {

IslandRing::IslandRing(std::size_t pools, std::size_t capacity, std::size_t n,
                       MersenneSeeder& seeder) {
  DABS_CHECK(pools > 0, "island ring needs at least one pool");
  pools_.reserve(pools);
  for (std::size_t i = 0; i < pools; ++i) {
    auto p = std::make_unique<SolutionPool>(capacity, n);
    Rng rng = seeder.next_rng();
    p->initialize_random(rng);
    pools_.push_back(std::move(p));
  }
}

std::size_t IslandRing::migrate(std::size_t from, std::size_t count) {
  DABS_CHECK(from < pools_.size(), "migration source out of range");
  if (pools_.size() < 2 || count == 0) return 0;
  SolutionPool& dst = neighbor(from);
  std::size_t accepted = 0;
  // One locked snapshot of the source: safe against concurrent restarts, and
  // only evaluated (finite-energy) entries travel.
  for (PoolEntry& e : pools_[from]->best_entries(count)) {
    if (dst.insert(std::move(e))) ++accepted;
  }
  return accepted;
}

Energy IslandRing::global_best_energy() const {
  Energy best = kInfiniteEnergy;
  for (const auto& p : pools_) best = std::min(best, p->best_energy());
  return best;
}

bool IslandRing::merged() const {
  if (pools_.size() < 2) return false;
  if (pools_[0]->size() == 0) return false;
  const PoolEntry first = pools_[0]->entry(0);
  if (first.energy == kInfiniteEnergy) return false;
  for (std::size_t i = 1; i < pools_.size(); ++i) {
    if (pools_[i]->size() == 0) return false;
    const PoolEntry e = pools_[i]->entry(0);
    if (e.energy != first.energy || !(e.solution == first.solution)) {
      return false;
    }
  }
  return true;
}

void IslandRing::restart_all(MersenneSeeder& seeder) {
  for (auto& p : pools_) {
    Rng rng = seeder.next_rng();
    p->restart(rng);
  }
}

}  // namespace dabs
