// Adaptive selection of main search algorithm and genetic operation
// (paper §IV-A):
//
//   with probability  epsilon (default 5 %): pick uniformly from the allowed
//                                            set (exploration);
//   with probability 1-epsilon (default 95 %): pick a uniformly random pool
//                                            row and reuse the algorithm /
//                                            operation recorded there
//                                            (exploitation — operations that
//                                            produced good solutions occupy
//                                            more rows).
//
// The allowed sets are configurable so the ABS baseline (CyclicMin +
// MutateCrossover only) and the ablation benches can restrict diversity.
#pragma once

#include <vector>

#include "evolve/op_ids.hpp"
#include "evolve/solution_pool.hpp"
#include "rng/xorshift.hpp"
#include "search/registry.hpp"

namespace dabs {

class AdaptiveSelector {
 public:
  /// Full DABS diversity: all five algorithms, all eight operations.
  AdaptiveSelector();

  AdaptiveSelector(std::vector<MainSearch> algos, std::vector<GeneticOp> ops,
                   double explore_prob = 0.05);

  MainSearch select_algorithm(const SolutionPool& pool, Rng& rng) const;
  GeneticOp select_operation(const SolutionPool& pool, Rng& rng) const;

  const std::vector<MainSearch>& allowed_algorithms() const noexcept {
    return algos_;
  }
  const std::vector<GeneticOp>& allowed_operations() const noexcept {
    return ops_;
  }
  double explore_prob() const noexcept { return explore_prob_; }

 private:
  bool algo_allowed(MainSearch s) const;
  bool op_allowed(GeneticOp op) const;

  std::vector<MainSearch> algos_;
  std::vector<GeneticOp> ops_;
  double explore_prob_;
};

}  // namespace dabs
