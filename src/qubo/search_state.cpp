#include "qubo/search_state.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace dabs {

SearchState::SearchState(const QuboModel& model)
    : model_(&model),
      x_(model.size()),
      delta_(model.size()),
      sigma_(model.size(), std::int8_t{-1}),
      best_(model.size()),
      scratch_(model.size()) {
  reset();
}

void SearchState::reset() {
  x_.clear();
  energy_ = 0;
  const auto n = static_cast<VarIndex>(size());
  for (VarIndex k = 0; k < n; ++k) delta_[k] = model_->diag(k);
  std::fill(sigma_.begin(), sigma_.end(), std::int8_t{-1});
  flips_ = 0;
  reset_best();
}

void SearchState::reset_to(const BitVector& x) {
  DABS_CHECK(x.size() == size(), "solution length mismatch");
  x_ = x;
  energy_ = model_->energy(x_);
  model_->delta_all(x_, delta_);
  for (std::size_t k = 0; k < sigma_.size(); ++k) {
    sigma_[k] = static_cast<std::int8_t>(sigma(x_.get(k)));
  }
  flips_ = 0;
  reset_best();
}

void SearchState::reset_best() {
  best_ = x_;
  best_energy_ = energy_;
}

void SearchState::maybe_record_visited() {
  if (energy_ < best_energy_) {
    best_ = x_;
    best_energy_ = energy_;
  }
}

void SearchState::record_best_neighbor(VarIndex arg, Energy e) {
  scratch_ = x_;  // word copy into the preallocated buffer — no allocation
  scratch_.flip(arg);
  std::swap(best_, scratch_);
  best_energy_ = e;
}

void SearchState::dense_update_block(const Weight* __restrict row,
                                     std::int32_t si, std::size_t b0,
                                     std::size_t b1) {
  // Eq. 4, branchless over the contiguous row: Delta_k += W_{i,k} *
  // sigma(x_i) * sigma(x_k).  The sign product is applied as an xor-negate
  // (m == 0 keeps w, m == -1 yields -w) because the baseline x86-64 target
  // has no vector 64-bit multiply — this form auto-vectorizes under plain
  // SSE2.  Safe because the builder rejects INT32_MIN couplings.  row[i]
  // is 0, so Delta_i is left for Eq. 5.
  Energy* __restrict d = delta_.data();
  const std::int8_t* __restrict sg = sigma_.data();
  if (si >= 0) {
    for (std::size_t k = b0; k < b1; ++k) {
      const std::int32_t m = std::int32_t{sg[k]} >> 7;  // sg<0 ? -1 : 0
      d[k] += Energy{(row[k] ^ m) - m};
    }
  } else {
    for (std::size_t k = b0; k < b1; ++k) {
      const std::int32_t m = ~(std::int32_t{sg[k]} >> 7);  // sg<0 ? 0 : -1
      d[k] += Energy{(row[k] ^ m) - m};
    }
  }
}

void SearchState::reduce_block(std::size_t b0, std::size_t b1, Energy& mn,
                               Energy& mx) const {
  const Energy* __restrict d = delta_.data();
  Energy lo = d[b0], hi = d[b0];
  for (std::size_t k = b0 + 1; k < b1; ++k) {
    lo = d[k] < lo ? d[k] : lo;
    hi = d[k] > hi ? d[k] : hi;
  }
  mn = lo;
  mx = hi;
}

void SearchState::finish_flip(VarIndex i, std::int32_t si) {
  energy_ += delta_[i];
  delta_[i] = -delta_[i];  // Eq. 5
  sigma_[i] = static_cast<std::int8_t>(-si);
  x_.flip(i);
  ++flips_;
  maybe_record_visited();
}

void SearchState::flip(VarIndex i) {
  DABS_ASSERT(i < size());
  const std::int32_t si = sigma_[i];  // sigma of the *old* value of bit i
  if (model_->has_dense_rows()) {
    dense_update_block(model_->dense_row(i), si, 0, size());
  } else {
    const auto nbrs = model_->neighbors(i);
    const auto w = model_->weights(i);
    const std::int8_t* sg = sigma_.data();
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      const VarIndex k = nbrs[t];
      // Eq. 4: Delta_k(f_i(X)) = Delta_k(X) + W_{i,k} sigma(x_i) sigma(x_k).
      delta_[k] += Energy{w[t]} * (si * std::int32_t{sg[k]});
    }
  }
  finish_flip(i, si);
}

ScanResult SearchState::finish_scan(Energy mn, Energy mx,
                                    std::size_t mn_block) {
  // The first-occurrence argmin lives in the first block that attained mn.
  const std::size_t b1 = std::min(size(), mn_block + kScanBlock);
  VarIndex arg = 0;
  for (std::size_t k = mn_block; k < b1; ++k) {
    if (delta_[k] == mn) {
      arg = static_cast<VarIndex>(k);
      break;
    }
  }
  if (energy_ + mn < best_energy_) record_best_neighbor(arg, energy_ + mn);
  return {mn, mx, arg};
}

ScanResult SearchState::scan() {
  const std::size_t n = size();
  DABS_ASSERT(n > 0);
  Energy mn = std::numeric_limits<Energy>::max();
  Energy mx = std::numeric_limits<Energy>::min();
  std::size_t mn_block = 0;
  for (std::size_t b0 = 0; b0 < n; b0 += kScanBlock) {
    const std::size_t b1 = std::min(n, b0 + kScanBlock);
    Energy bmn, bmx;
    reduce_block(b0, b1, bmn, bmx);
    if (bmn < mn) {
      mn = bmn;
      mn_block = b0;
    }
    mx = bmx > mx ? bmx : mx;
  }
  return finish_scan(mn, mx, mn_block);
}

ScanResult SearchState::flip_and_scan(VarIndex i) {
  if (!model_->has_dense_rows()) {
    // Sparse flips touch O(deg) scattered deltas; nothing to fuse.
    flip(i);
    return scan();
  }
  DABS_ASSERT(i < size());
  const std::size_t n = size();
  const std::int32_t si = sigma_[i];
  const Weight* row = model_->dense_row(i);
  // Eq. 5 and the X/E/BEST bookkeeping come first: row[i] == 0 means the
  // blocked Eq. 4 sweep below never touches Delta_i, so the reduction sees
  // every delta in its final state while it is still cache-hot.
  finish_flip(i, si);
  Energy mn = std::numeric_limits<Energy>::max();
  Energy mx = std::numeric_limits<Energy>::min();
  std::size_t mn_block = 0;
  for (std::size_t b0 = 0; b0 < n; b0 += kScanBlock) {
    const std::size_t b1 = std::min(n, b0 + kScanBlock);
    dense_update_block(row, si, b0, b1);
    Energy bmn, bmx;
    reduce_block(b0, b1, bmn, bmx);
    if (bmn < mn) {
      mn = bmn;
      mn_block = b0;
    }
    mx = bmx > mx ? bmx : mx;
  }
  return finish_scan(mn, mx, mn_block);
}

bool SearchState::is_local_minimum() const {
  for (const Energy d : delta_) {
    if (d < 0) return false;
  }
  return true;
}

}  // namespace dabs
