#include "qubo/search_state.hpp"

#include "util/assert.hpp"

namespace dabs {

SearchState::SearchState(const QuboModel& model)
    : model_(&model), x_(model.size()), delta_(model.size()), best_(model.size()) {
  reset();
}

void SearchState::reset() {
  x_.clear();
  energy_ = 0;
  const auto n = static_cast<VarIndex>(size());
  for (VarIndex k = 0; k < n; ++k) delta_[k] = model_->diag(k);
  flips_ = 0;
  reset_best();
}

void SearchState::reset_to(const BitVector& x) {
  DABS_CHECK(x.size() == size(), "solution length mismatch");
  x_ = x;
  energy_ = model_->energy(x_);
  model_->delta_all(x_, delta_);
  flips_ = 0;
  reset_best();
}

void SearchState::reset_best() {
  best_ = x_;
  best_energy_ = energy_;
}

void SearchState::maybe_record_visited() {
  if (energy_ < best_energy_) {
    best_ = x_;
    best_energy_ = energy_;
  }
}

void SearchState::flip(VarIndex i) {
  DABS_ASSERT(i < size());
  const int si = sigma(x_.get(i));  // sigma of the *old* value of bit i
  const auto nbrs = model_->neighbors(i);
  const auto w = model_->weights(i);
  for (std::size_t t = 0; t < nbrs.size(); ++t) {
    const VarIndex k = nbrs[t];
    // Eq. 4: Delta_k(f_i(X)) = Delta_k(X) + W_{i,k} sigma(x_i) sigma(x_k).
    delta_[k] += Energy{w[t]} * si * sigma(x_.get(k));
  }
  energy_ += delta_[i];
  delta_[i] = -delta_[i];  // Eq. 5
  x_.flip(i);
  ++flips_;
  maybe_record_visited();
}

ScanResult SearchState::scan() {
  const auto n = static_cast<VarIndex>(size());
  DABS_ASSERT(n > 0);
  Energy mn = delta_[0], mx = delta_[0];
  VarIndex arg = 0;
  for (VarIndex k = 1; k < n; ++k) {
    const Energy d = delta_[k];
    if (d < mn) {
      mn = d;
      arg = k;
    }
    if (d > mx) mx = d;
  }
  if (energy_ + mn < best_energy_) {
    best_ = x_;
    best_.flip(arg);
    best_energy_ = energy_ + mn;
  }
  return {mn, mx, arg};
}

bool SearchState::is_local_minimum() const {
  for (const Energy d : delta_) {
    if (d < 0) return false;
  }
  return true;
}

}  // namespace dabs
