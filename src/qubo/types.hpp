// Shared scalar types for QUBO/Ising arithmetic.
//
// Weights are 32-bit integers (every benchmark in the paper uses integral
// coefficients: ±1 MaxCut weights, flow x distance QAP products, resolution-r
// Ising values scaled by 4).  Energies are 64-bit to keep sums of up to ~10^7
// weighted terms exact.
#pragma once

#include <cstdint>
#include <limits>

namespace dabs {

using Weight = std::int32_t;
using Energy = std::int64_t;
using VarIndex = std::uint32_t;

/// Sentinel energy for "no solution yet" pool slots (the paper initializes
/// pools with random vectors at +infinity energy).
inline constexpr Energy kInfiniteEnergy = std::numeric_limits<Energy>::max();

/// sigma(x) = 2x - 1 maps binary 0/1 to spin -1/+1 (paper §III).
inline constexpr int sigma(bool x) noexcept { return x ? 1 : -1; }

/// Storage backend for the coupling matrix walked by the flip kernel.
/// kAuto picks kDense when the edge density crosses a threshold and the
/// row-major matrix fits a sane memory budget, kCsr otherwise; both
/// backends are bit-exact (integer arithmetic, no reassociation).
enum class QuboBackend : std::uint8_t { kAuto, kCsr, kDense };

inline constexpr const char* to_string(QuboBackend b) noexcept {
  switch (b) {
    case QuboBackend::kAuto:
      return "auto";
    case QuboBackend::kCsr:
      return "csr";
    case QuboBackend::kDense:
      return "dense";
  }
  return "?";
}

}  // namespace dabs
