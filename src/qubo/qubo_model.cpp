#include "qubo/qubo_model.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace dabs {

Weight QuboModel::weight(VarIndex i, VarIndex j) const {
  DABS_CHECK(i < size() && j < size(), "variable index out of range");
  if (i == j) return diag_[i];
  const auto nbrs = neighbors(i);
  const auto w = weights(i);
  for (std::size_t t = 0; t < nbrs.size(); ++t) {
    if (nbrs[t] == j) return w[t];
  }
  return 0;
}

Energy QuboModel::energy(const BitVector& x) const {
  DABS_CHECK(x.size() == size(), "solution length mismatch");
  Energy e = 0;
  const auto n = static_cast<VarIndex>(size());
#ifdef DABS_HAVE_OPENMP
#pragma omp parallel for reduction(+ : e) schedule(static)
#endif
  for (VarIndex i = 0; i < n; ++i) {
    if (!x.get(i)) continue;
    Energy row = diag_[i];
    const auto nbrs = neighbors(i);
    const auto w = weights(i);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      // Count each edge once: only accumulate (i, j>i) pairs.
      if (nbrs[t] > i && x.get(nbrs[t])) row += w[t];
    }
    e += row;
  }
  return e;
}

Energy QuboModel::delta(const BitVector& x, VarIndex k) const {
  DABS_CHECK(x.size() == size(), "solution length mismatch");
  DABS_CHECK(k < size(), "variable index out of range");
  // Eq. 3 folded: Delta_k(X) = -sigma(x_k) * (sum_{j != k} W_{j,k} x_j + W_{k,k}).
  Energy s = 0;
  const auto nbrs = neighbors(k);
  const auto w = weights(k);
  for (std::size_t t = 0; t < nbrs.size(); ++t) {
    if (x.get(nbrs[t])) s += w[t];
  }
  return -sigma(x.get(k)) * (s + Energy{diag_[k]});
}

void QuboModel::delta_all(const BitVector& x, std::vector<Energy>& out) const {
  DABS_CHECK(x.size() == size(), "solution length mismatch");
  const auto n = static_cast<VarIndex>(size());
  out.resize(n);
#ifdef DABS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (VarIndex k = 0; k < n; ++k) {
    out[k] = delta(x, k);
  }
}

Energy QuboModel::flip_bound(VarIndex i) const {
  Energy b = std::abs(Energy{diag_[i]});
  for (const Weight w : weights(i)) b += std::abs(Energy{w});
  return b;
}

std::string QuboModel::describe() const {
  std::ostringstream os;
  const std::size_t n = size();
  const std::size_t m = edge_count();
  os << "QUBO n=" << n << " edges=" << m;
  if (n >= 2) {
    // Same threshold the kAuto backend selection uses, so the label and
    // the backend= suffix can never contradict each other.
    os << (density() >= kDenseDensityThreshold ? " dense" : " sparse");
  }
  os << " backend=" << to_string(backend_);
  return os.str();
}

}  // namespace dabs
