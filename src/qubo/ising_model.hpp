// Ising model H(S) = sum_{(i,j) in E} J_{i,j} s_i s_j + sum_i h_i s_i with
// spins s_i in {-1, +1} (paper Eq. 1).  Kept as a simple edge list: the
// solver always works on the equivalent QUBO model (see conversion.hpp);
// the Ising form exists for problem generation (QASP) and verification.
#pragma once

#include <cstddef>
#include <vector>

#include "qubo/types.hpp"

namespace dabs {

struct IsingEdge {
  VarIndex i, j;
  Weight coupling;  // J_{i,j}
};

class IsingModel {
 public:
  explicit IsingModel(std::size_t n) : bias_(n, 0) {}

  std::size_t size() const noexcept { return bias_.size(); }

  void add_coupling(VarIndex i, VarIndex j, Weight j_ij);
  void set_bias(VarIndex i, Weight h_i);

  Weight bias(VarIndex i) const { return bias_[i]; }
  const std::vector<IsingEdge>& edges() const noexcept { return edges_; }

  /// Direct O(n + |E|) Hamiltonian evaluation; spins[i] must be -1 or +1.
  Energy hamiltonian(const std::vector<int>& spins) const;

 private:
  std::vector<Weight> bias_;
  std::vector<IsingEdge> edges_;
};

}  // namespace dabs
