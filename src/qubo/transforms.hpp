// Model transformations: variable fixing and sub-QUBO extraction.
//
// Sub-QUBO extraction is the substrate of the hybrid method the paper
// compares against on QAP (Atobe, Tawada, Togawa [37]): choose a subset S
// of variables, clamp the rest at their current values, and solve the
// induced |S|-variable QUBO exactly.  The induced model satisfies
//
//   E_full(X with S-bits replaced by Y) = E_sub(Y) + offset
//
// for every assignment Y of the subset, so improving the sub-problem
// strictly improves the full solution.
#pragma once

#include <vector>

#include "qubo/qubo_model.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct FixedModel {
  QuboModel model;     // over the remaining variables, in `mapping` order
  Energy offset;       // E_full = E_reduced + offset (for the fixed bits)
  std::vector<VarIndex> mapping;  // reduced index -> original index
};

/// Fixes variable `i` to `value` and eliminates it: the coupling row folds
/// into neighbors' linear terms (when value = 1) and the diagonal into the
/// offset.
FixedModel fix_variable(const QuboModel& model, VarIndex i, bool value);

struct SubQubo {
  QuboModel model;                // over `subset` variables, subset order
  Energy offset;                  // E_full(X|Y) = E_sub(Y) + offset
  std::vector<VarIndex> subset;   // sub index -> original index
};

/// Builds the sub-QUBO over `subset` with all other variables clamped at
/// their values in `x`.  `subset` must contain distinct, valid indices.
SubQubo extract_subqubo(const QuboModel& model, const BitVector& x,
                        const std::vector<VarIndex>& subset);

/// Writes the subset assignment `y` (indexed like `sub.subset`) back into
/// a copy of `x`.
BitVector apply_subsolution(const BitVector& x, const SubQubo& sub,
                            const BitVector& y);

}  // namespace dabs
