#include "qubo/model_info.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "util/assert.hpp"

namespace dabs {

ModelInfo analyze_model(const QuboModel& model) {
  const auto n = static_cast<VarIndex>(model.size());
  DABS_CHECK(n > 0, "cannot analyze an empty model");
  ModelInfo info;
  info.variables = n;
  info.couplings = model.edge_count();
  info.density =
      n >= 2 ? double(info.couplings) / (double(n) * double(n - 1) / 2.0)
             : 0.0;

  info.min_degree = model.degree(0);
  info.max_degree = model.degree(0);
  std::size_t degree_sum = 0;
  bool first_weight = true;
  auto consider = [&](Weight w) {
    if (first_weight) {
      info.min_weight = info.max_weight = w;
      first_weight = false;
    } else {
      info.min_weight = std::min(info.min_weight, w);
      info.max_weight = std::max(info.max_weight, w);
    }
  };

  for (VarIndex i = 0; i < n; ++i) {
    const std::size_t d = model.degree(i);
    degree_sum += d;
    info.min_degree = std::min(info.min_degree, d);
    info.max_degree = std::max(info.max_degree, d);
    if (d == 0 && model.diag(i) == 0) ++info.isolated_variables;

    if (model.diag(i) != 0) consider(model.diag(i));
    info.energy_scale += std::abs(Energy{model.diag(i)});

    const auto nbrs = model.neighbors(i);
    const auto w = model.weights(i);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      consider(w[t]);
      if (nbrs[t] > i) info.energy_scale += std::abs(Energy{w[t]});
    }
  }
  info.mean_degree = double(degree_sum) / double(n);

  // Connected components over the coupling graph.
  std::vector<bool> visited(n, false);
  for (VarIndex s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ++info.components;
    std::queue<VarIndex> q;
    q.push(s);
    visited[s] = true;
    while (!q.empty()) {
      const VarIndex v = q.front();
      q.pop();
      for (const VarIndex u : model.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          q.push(u);
        }
      }
    }
  }
  return info;
}

std::string describe_model(const ModelInfo& info) {
  std::ostringstream os;
  os << "variables : " << info.variables << "\n"
     << "couplings : " << info.couplings << " (density " << info.density
     << ")\n"
     << "degree    : min " << info.min_degree << " mean "
     << info.mean_degree << " max " << info.max_degree << "\n"
     << "weights   : [" << info.min_weight << ", " << info.max_weight
     << "], total |w| = " << info.energy_scale << "\n"
     << "structure : " << info.components << " component(s), "
     << info.isolated_variables << " isolated variable(s)\n";
  return os.str();
}

}  // namespace dabs
