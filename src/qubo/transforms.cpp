#include "qubo/transforms.hpp"

#include <algorithm>

#include "qubo/qubo_builder.hpp"
#include "util/assert.hpp"

namespace dabs {

FixedModel fix_variable(const QuboModel& model, VarIndex i, bool value) {
  const std::size_t n = model.size();
  DABS_CHECK(i < n, "variable index out of range");
  DABS_CHECK(n >= 2, "cannot fix the last remaining variable");

  FixedModel out;
  out.mapping.reserve(n - 1);
  std::vector<VarIndex> to_reduced(n, 0);
  for (VarIndex v = 0; v < n; ++v) {
    if (v == i) continue;
    to_reduced[v] = static_cast<VarIndex>(out.mapping.size());
    out.mapping.push_back(v);
  }

  QuboBuilder b(n - 1);
  out.offset = 0;
  for (VarIndex v = 0; v < n; ++v) {
    if (v == i) continue;
    b.add_linear(to_reduced[v], model.diag(v));
  }
  if (value) out.offset += model.diag(i);

  for (VarIndex v = 0; v < n; ++v) {
    const auto nbrs = model.neighbors(v);
    const auto w = model.weights(v);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      const VarIndex u = nbrs[t];
      if (u < v) continue;  // each edge once
      if (v == i || u == i) {
        // Coupling with the fixed bit: W * x_fixed * x_other.
        if (value) {
          const VarIndex other = (v == i) ? u : v;
          b.add_linear(to_reduced[other], w[t]);
        }
      } else {
        b.add_quadratic(to_reduced[v], to_reduced[u], w[t]);
      }
    }
  }
  out.model = b.build();
  return out;
}

SubQubo extract_subqubo(const QuboModel& model, const BitVector& x,
                        const std::vector<VarIndex>& subset) {
  const std::size_t n = model.size();
  DABS_CHECK(x.size() == n, "solution length mismatch");
  DABS_CHECK(!subset.empty(), "subset must be non-empty");

  std::vector<VarIndex> to_sub(n, static_cast<VarIndex>(n));
  for (std::size_t s = 0; s < subset.size(); ++s) {
    DABS_CHECK(subset[s] < n, "subset index out of range");
    DABS_CHECK(to_sub[subset[s]] == n, "duplicate subset index");
    to_sub[subset[s]] = static_cast<VarIndex>(s);
  }

  SubQubo out;
  out.subset = subset;

  QuboBuilder b(subset.size());
  // Linear terms: original diagonal plus couplings to clamped-one bits.
  for (std::size_t s = 0; s < subset.size(); ++s) {
    const VarIndex v = subset[s];
    Energy linear = model.diag(v);
    const auto nbrs = model.neighbors(v);
    const auto w = model.weights(v);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      const VarIndex u = nbrs[t];
      if (to_sub[u] == n && x.get(u)) linear += w[t];
    }
    DABS_CHECK(std::abs(linear) <= std::numeric_limits<Weight>::max(),
               "folded linear weight overflows int32");
    b.add_linear(static_cast<VarIndex>(s), static_cast<Weight>(linear));
  }
  // Quadratic terms among subset members.
  for (std::size_t s = 0; s < subset.size(); ++s) {
    const VarIndex v = subset[s];
    const auto nbrs = model.neighbors(v);
    const auto w = model.weights(v);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      const VarIndex u = nbrs[t];
      if (to_sub[u] == n || u <= v) continue;
      b.add_quadratic(static_cast<VarIndex>(s), to_sub[u], w[t]);
    }
  }
  out.model = b.build();

  // Offset: energy of the clamped part alone = E_full with subset zeroed.
  BitVector clamped = x;
  for (const VarIndex v : subset) clamped.set(v, false);
  out.offset = model.energy(clamped);
  return out;
}

BitVector apply_subsolution(const BitVector& x, const SubQubo& sub,
                            const BitVector& y) {
  DABS_CHECK(y.size() == sub.subset.size(), "subset solution length mismatch");
  BitVector out = x;
  for (std::size_t s = 0; s < sub.subset.size(); ++s) {
    out.set(sub.subset[s], y.get(s));
  }
  return out;
}

}  // namespace dabs
