#include "qubo/qubo_builder.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace dabs {

namespace {

Weight checked_narrow(Energy w, const char* what, Weight lo) {
  DABS_CHECK(w >= lo && w <= std::numeric_limits<Weight>::max(),
             std::string("accumulated ") + what +
                 " coefficient overflows the int32 weight range");
  return static_cast<Weight>(w);
}

// Couplings are restricted to the *symmetric* range [-INT32_MAX, INT32_MAX]
// so the dense flip kernel may negate a weight branchlessly without risking
// int32 overflow on INT32_MIN.  Diagonals never enter that kernel (they
// reach Delta through Eqs. 3/5 in 64-bit) and keep the full int32 range.
constexpr Weight kQuadraticLo = -std::numeric_limits<Weight>::max();
constexpr Weight kLinearLo = std::numeric_limits<Weight>::min();

}  // namespace

QuboBuilder::QuboBuilder(std::size_t n) : diag_(n, 0) {
  DABS_CHECK(n > 0, "QUBO model needs at least one variable");
}

QuboBuilder& QuboBuilder::add_linear(VarIndex i, Weight w) {
  DABS_CHECK(i < size(), "variable index out of range");
  diag_[i] += w;
  return *this;
}

QuboBuilder& QuboBuilder::add_quadratic(VarIndex i, VarIndex j, Weight w) {
  DABS_CHECK(i < size() && j < size(), "variable index out of range");
  DABS_CHECK(i != j, "use add_linear for diagonal terms");
  if (i > j) std::swap(i, j);
  entries_.push_back({i, j, w});
  return *this;
}

QuboModel QuboBuilder::build() {
  // Coalesce duplicate (i, j) terms (64-bit accumulation).
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.i != b.i ? a.i < b.i : a.j < b.j;
            });
  std::vector<Entry> edges;
  edges.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (!edges.empty() && edges.back().i == e.i && edges.back().j == e.j) {
      edges.back().w += e.w;
    } else {
      edges.push_back(e);
    }
  }
  std::erase_if(edges, [](const Entry& e) { return e.w == 0; });

  QuboModel m;
  const std::size_t n = diag_.size();
  m.diag_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.diag_[i] = checked_narrow(diag_[i], "linear", kLinearLo);
  }

  // Build symmetric CSR: each edge contributes to both endpoint rows.
  std::vector<std::size_t> deg(n, 0);
  for (const Entry& e : edges) {
    ++deg[e.i];
    ++deg[e.j];
  }
  m.row_ptr_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    m.row_ptr_[i + 1] = m.row_ptr_[i] + deg[i];
  }
  m.col_.resize(2 * edges.size());
  m.val_.resize(2 * edges.size());

  std::vector<std::size_t> cursor(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
  for (const Entry& e : edges) {
    const Weight w = checked_narrow(e.w, "quadratic", kQuadraticLo);
    m.col_[cursor[e.i]] = e.j;
    m.val_[cursor[e.i]++] = w;
    m.col_[cursor[e.j]] = e.i;
    m.val_[cursor[e.j]++] = w;
  }
  m.max_degree_ = deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());

  // Resolve the kernel backend and, when dense, materialize the row-major
  // matrix the flip kernel streams (diagonal slots stay zero; the diagonal
  // lives in diag_ and enters Delta via Eq. 5, not the row walk).
  // Overflow-safe test for n * n * sizeof(Weight) <= kDenseMaxBytes.
  const bool fits = n <= QuboModel::kDenseMaxBytes / sizeof(Weight) / n;
  QuboBackend resolved = backend_;
  if (resolved == QuboBackend::kAuto) {
    resolved = (fits && m.density() >= QuboModel::kDenseDensityThreshold)
                   ? QuboBackend::kDense
                   : QuboBackend::kCsr;
  }
  DABS_CHECK(resolved != QuboBackend::kDense || fits,
             "dense backend requested but the n x n matrix exceeds "
             "QuboModel::kDenseMaxBytes");
  m.backend_ = resolved;
  if (resolved == QuboBackend::kDense) {
    m.dense_.assign(n * n, 0);
    for (const Entry& e : edges) {
      const Weight w = static_cast<Weight>(e.w);  // narrowing checked above
      m.dense_[std::size_t{e.i} * n + e.j] = w;
      m.dense_[std::size_t{e.j} * n + e.i] = w;
    }
  }

  entries_.clear();
  diag_.clear();
  backend_ = QuboBackend::kAuto;
  return m;
}

}  // namespace dabs
