// Mutable accumulator for QUBO models.  Problem reductions add linear and
// quadratic terms in any order (duplicates accumulate); build() validates,
// coalesces, and freezes into the CSR QuboModel.
#pragma once

#include <cstddef>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"

namespace dabs {

class QuboBuilder {
 public:
  explicit QuboBuilder(std::size_t n);

  std::size_t size() const noexcept { return diag_.size(); }

  /// Adds w to the linear coefficient W_{i,i}.  Accumulation happens in
  /// 64-bit; overflow of the final int32 coefficient is rejected at
  /// build() time.
  QuboBuilder& add_linear(VarIndex i, Weight w);

  /// Adds w to the quadratic coefficient W_{i,j} (i != j; order irrelevant).
  QuboBuilder& add_quadratic(VarIndex i, VarIndex j, Weight w);

  /// Number of raw (non-coalesced) quadratic terms added so far.
  std::size_t term_count() const noexcept { return entries_.size(); }

  /// Coalesces duplicates, drops zero couplings, and produces the model.
  /// Throws std::invalid_argument when any accumulated coefficient
  /// overflows the int32 weight range.  The builder is left empty
  /// afterwards.
  QuboModel build();

 private:
  struct Entry {
    VarIndex i, j;  // normalized i < j
    Energy w;       // 64-bit accumulation
  };

  std::vector<Energy> diag_;
  std::vector<Entry> entries_;
};

}  // namespace dabs
