// Mutable accumulator for QUBO models.  Problem reductions add linear and
// quadratic terms in any order (duplicates accumulate); build() validates,
// coalesces, and freezes into the CSR QuboModel.
#pragma once

#include <cstddef>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"

namespace dabs {

class QuboBuilder {
 public:
  explicit QuboBuilder(std::size_t n);

  std::size_t size() const noexcept { return diag_.size(); }

  /// Adds w to the linear coefficient W_{i,i}.  Accumulation happens in
  /// 64-bit; overflow of the final int32 coefficient is rejected at
  /// build() time.
  QuboBuilder& add_linear(VarIndex i, Weight w);

  /// Adds w to the quadratic coefficient W_{i,j} (i != j; order irrelevant).
  /// The accumulated coupling must land in the symmetric range
  /// [-INT32_MAX, INT32_MAX]; INT32_MIN is rejected at build() time so the
  /// dense flip kernel can negate weights branchlessly.
  QuboBuilder& add_quadratic(VarIndex i, VarIndex j, Weight w);

  /// Number of raw (non-coalesced) quadratic terms added so far.
  std::size_t term_count() const noexcept { return entries_.size(); }

  /// Overrides the kernel backend of the built model.  kAuto (default)
  /// selects kDense when the coalesced edge density reaches
  /// QuboModel::kDenseDensityThreshold and the row-major matrix fits
  /// QuboModel::kDenseMaxBytes; kCsr / kDense force the choice (kDense is
  /// rejected at build() time when the matrix would not fit the budget).
  /// Like the accumulated terms, the override is consumed by build(),
  /// which resets it to kAuto.
  QuboBuilder& set_backend(QuboBackend backend) noexcept {
    backend_ = backend;
    return *this;
  }
  QuboBackend backend() const noexcept { return backend_; }

  /// Coalesces duplicates, drops zero couplings, and produces the model.
  /// Throws std::invalid_argument when any accumulated coefficient
  /// overflows the int32 weight range.  The builder is left empty
  /// afterwards.
  QuboModel build();

 private:
  struct Entry {
    VarIndex i, j;  // normalized i < j
    Energy w;       // 64-bit accumulation
  };

  std::vector<Energy> diag_;
  std::vector<Entry> entries_;
  QuboBackend backend_ = QuboBackend::kAuto;
};

}  // namespace dabs
