#include "qubo/conversion.hpp"

#include "qubo/qubo_builder.hpp"
#include "util/assert.hpp"

namespace dabs {

IsingToQuboResult ising_to_qubo(const IsingModel& ising) {
  QuboBuilder b(ising.size());
  Energy offset = 0;
  for (const IsingEdge& e : ising.edges()) {
    b.add_quadratic(e.i, e.j, static_cast<Weight>(4 * e.coupling));
    b.add_linear(e.i, static_cast<Weight>(-2 * e.coupling));
    b.add_linear(e.j, static_cast<Weight>(-2 * e.coupling));
    offset += e.coupling;
  }
  for (VarIndex i = 0; i < ising.size(); ++i) {
    b.add_linear(i, static_cast<Weight>(2 * ising.bias(i)));
    offset -= ising.bias(i);
  }
  return {b.build(), offset};
}

std::vector<int> to_spins(const BitVector& x) {
  std::vector<int> s(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) s[i] = sigma(x.get(i));
  return s;
}

BitVector to_binary(const std::vector<int>& spins) {
  BitVector x(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    DABS_CHECK(spins[i] == -1 || spins[i] == 1, "spins must be -1 or +1");
    x.set(i, spins[i] == 1);
  }
  return x;
}

}  // namespace dabs
