// Ising <-> QUBO conversion (paper §I-A).
//
// With s = 2x - 1:
//   J s_i s_j = 4J x_i x_j - 2J x_i - 2J x_j + J
//   h s_i     = 2h x_i - h
// so H(S) = E(X) + offset with offset = sum(J) - sum(h), i.e.
// E(X) = H(S) - offset.  An optimal spin vector and the corresponding
// binary vector therefore coincide, which is what the tests pin down.
#pragma once

#include <vector>

#include "qubo/ising_model.hpp"
#include "qubo/qubo_model.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct IsingToQuboResult {
  QuboModel model;
  /// H(S) = E(X) + offset for corresponding S and X.
  Energy offset;
};

/// Builds the QUBO model equivalent to `ising` (same topology).
IsingToQuboResult ising_to_qubo(const IsingModel& ising);

/// Binary vector -> spin vector (x=0 -> s=-1, x=1 -> s=+1).
std::vector<int> to_spins(const BitVector& x);

/// Spin vector -> binary vector.
BitVector to_binary(const std::vector<int>& spins);

}  // namespace dabs
