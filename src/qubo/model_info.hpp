// Model inspection / linting: structural statistics and difficulty
// indicators used by the CLI front end (--describe) and by bench logs.
#pragma once

#include <cstdint>
#include <string>

#include "qubo/qubo_model.hpp"

namespace dabs {

struct ModelInfo {
  std::size_t variables = 0;
  std::size_t couplings = 0;
  double density = 0.0;          // couplings / C(n,2)
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  Weight min_weight = 0;         // over couplings and diagonal, signed
  Weight max_weight = 0;
  std::size_t isolated_variables = 0;  // degree 0 and zero diagonal
  std::size_t components = 0;          // connected components
  /// Largest |E| reachable in magnitude: sum of |w| over all terms.
  Energy energy_scale = 0;
};

/// Computes the statistics in one pass plus a BFS for components.
ModelInfo analyze_model(const QuboModel& model);

/// Multi-line human-readable report.
std::string describe_model(const ModelInfo& info);

}  // namespace dabs
