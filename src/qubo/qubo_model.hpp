// Immutable QUBO model W = (W_{i,j}) over n binary variables:
//
//   E(X) = sum_{(i,j) in E, i<j} W_{i,j} x_i x_j + sum_i W_{i,i} x_i   (Eq. 2)
//
// Storage is CSR over the full symmetric adjacency (each off-diagonal edge
// appears in both endpoint rows) plus a separate diagonal array.  The CSR
// rows are exactly what the incremental update (Eq. 4) walks after a flip,
// so a flip costs O(deg(i)); dense models like K2000 simply have rows of
// length n-1.
//
// Dense instances additionally carry a row-major n x n weight matrix
// (diagonal slots zero) so the flip kernel can stream a contiguous row
// instead of chasing CSR columns; see QuboBackend in types.hpp.  The CSR
// arrays are always present — IO, model analysis, and sparse queries keep
// using them — so the dense matrix is a kernel-side acceleration structure,
// not a replacement representation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

class QuboBuilder;

class QuboModel {
 public:
  QuboModel() = default;

  /// Number of binary variables.
  std::size_t size() const noexcept { return diag_.size(); }

  /// Number of off-diagonal couplings (each undirected edge counted once).
  std::size_t edge_count() const noexcept { return col_.size() / 2; }

  /// Linear (diagonal) weight W_{i,i}.
  Weight diag(VarIndex i) const { return diag_[i]; }

  /// Neighbor column indices of variable i.
  std::span<const VarIndex> neighbors(VarIndex i) const {
    return {col_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  /// Coupling weights aligned with neighbors(i).
  std::span<const Weight> weights(VarIndex i) const {
    return {val_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }

  std::size_t degree(VarIndex i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }
  std::size_t max_degree() const noexcept { return max_degree_; }

  /// Coupling weight W_{i,j} (O(deg) lookup; 0 when not adjacent).
  Weight weight(VarIndex i, VarIndex j) const;

  /// Active kernel backend (kCsr or kDense, never kAuto).
  QuboBackend backend() const noexcept { return backend_; }
  bool has_dense_rows() const noexcept {
    return backend_ == QuboBackend::kDense;
  }
  /// Contiguous row i of the dense matrix: n weights, W_{i,j} at slot j,
  /// zero on the diagonal.  Only valid when has_dense_rows().
  const Weight* dense_row(VarIndex i) const noexcept {
    return dense_.data() + std::size_t{i} * size();
  }

  /// Edge density relative to the complete graph (0 for n < 2).
  double density() const noexcept {
    const std::size_t n = size();
    return n >= 2 ? double(edge_count()) / (double(n) * double(n - 1) / 2.0)
                  : 0.0;
  }

  /// kAuto resolution policy: dense when density() >= this ...
  static constexpr double kDenseDensityThreshold = 0.4;
  /// ... and the n x n matrix stays within this budget (256 MiB).
  static constexpr std::size_t kDenseMaxBytes = std::size_t{256} << 20;

  /// Full O(n + nnz) evaluation of Eq. 2.  Used for verification and for
  /// one-off energy queries; the search kernels never call this per flip.
  Energy energy(const BitVector& x) const;

  /// Delta_k(X) = E(f_k(X)) - E(X) for one k, from scratch (Eq. 3).
  Energy delta(const BitVector& x, VarIndex k) const;

  /// All Delta_k(X) from scratch; used to (re)initialize SearchState.
  void delta_all(const BitVector& x, std::vector<Energy>& out) const;

  /// Largest possible |E| change of a single flip: bound used by tests.
  Energy flip_bound(VarIndex i) const;

  /// One-line description, e.g. "QUBO n=2000 edges=1999000 dense
  /// backend=dense".
  std::string describe() const;

 private:
  friend class QuboBuilder;

  std::vector<Weight> diag_;
  std::vector<std::size_t> row_ptr_;  // size n+1
  std::vector<VarIndex> col_;         // size 2*edges
  std::vector<Weight> val_;           // size 2*edges
  std::vector<Weight> dense_;         // size n*n when backend_ == kDense
  std::size_t max_degree_ = 0;
  QuboBackend backend_ = QuboBackend::kCsr;
};

}  // namespace dabs
