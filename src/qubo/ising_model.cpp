#include "qubo/ising_model.hpp"

#include "util/assert.hpp"

namespace dabs {

void IsingModel::add_coupling(VarIndex i, VarIndex j, Weight j_ij) {
  DABS_CHECK(i < size() && j < size(), "spin index out of range");
  DABS_CHECK(i != j, "self-coupling is a bias; use set_bias");
  edges_.push_back({i, j, j_ij});
}

void IsingModel::set_bias(VarIndex i, Weight h_i) {
  DABS_CHECK(i < size(), "spin index out of range");
  bias_[i] = h_i;
}

Energy IsingModel::hamiltonian(const std::vector<int>& spins) const {
  DABS_CHECK(spins.size() == size(), "spin vector length mismatch");
  for (const int s : spins) {
    DABS_CHECK(s == -1 || s == 1, "spins must be -1 or +1");
  }
  Energy h = 0;
  for (const IsingEdge& e : edges_) {
    h += Energy{e.coupling} * spins[e.i] * spins[e.j];
  }
  for (std::size_t i = 0; i < size(); ++i) {
    h += Energy{bias_[i]} * spins[i];
  }
  return h;
}

}  // namespace dabs
