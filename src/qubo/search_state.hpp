// Incremental search state (paper §III-A).
//
// Maintains, for a current solution X:
//   - E(X)                       updated in O(1) per flip,
//   - Delta_k(X) for every k     updated in O(deg(i)) per flip of bit i
//                                via Eq. (4) (neighbors) and Eq. (5) (i itself),
//   - BEST / E(BEST)             the best 1-bit neighbor f_j(X) seen by any
//                                Step-1 scan (plus every visited X), which is
//                                what a batch search ultimately reports.
//
// Kernel engine: alongside the packed x_ the state caches sigma_ (int8 ±1,
// kept in sync with x_), so both flip kernels are branchless
// delta_[k] += w * si * sigma_[k] loops the compiler can auto-vectorize —
// a contiguous row stream on the dense backend, a CSR gather on the sparse
// one.  scan() is the CPU equivalent of the paper's GPU Step 1: a blocked
// min/argmin/max reduction over Delta that opportunistically improves BEST.
// flip_and_scan() fuses Step 3 of one iteration with Step 1 of the next,
// block by block on the dense backend so each Delta block is reduced while
// still cache-hot.  All arithmetic is exact int64, so every backend and
// kernel variant is bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct ScanResult {
  Energy min_delta;
  Energy max_delta;
  VarIndex argmin;
};

class SearchState {
 public:
  /// Binds to a model; starts at the zero vector (E=0, Delta_k = W_{k,k}).
  explicit SearchState(const QuboModel& model);

  const QuboModel& model() const noexcept { return *model_; }
  std::size_t size() const noexcept { return delta_.size(); }

  /// Resets to the zero vector in O(n) without touching the matrix
  /// (the paper's batch-search starting point).
  void reset();

  /// Resets to an arbitrary vector; O(n + nnz) full recompute.
  void reset_to(const BitVector& x);

  const BitVector& solution() const noexcept { return x_; }
  Energy energy() const noexcept { return energy_; }
  Energy delta(VarIndex k) const { return delta_[k]; }
  std::span<const Energy> deltas() const noexcept { return delta_; }

  /// Cached spins sigma(x_k) as int8 ±1, always in sync with solution().
  std::span<const std::int8_t> sigmas() const noexcept { return sigma_; }

  /// Flips bit i: X <- f_i(X), updating E and every Delta_k incrementally.
  /// Also folds the *visited* X into BEST (an O(1) check).
  void flip(VarIndex i);

  /// Fused Step 3 + Step 1: flip(i) followed by scan(), except the dense
  /// backend interleaves the Delta update and the reduction block by block
  /// so the deltas are reduced while still in cache.  Exactly equivalent to
  /// `flip(i); return scan();`.
  ScanResult flip_and_scan(VarIndex i);

  /// Total flips since construction or the last reset.
  std::uint64_t flip_count() const noexcept { return flips_; }

  /// Step 1: one pass over Delta computing min/argmin/max and updating
  /// BEST with the best 1-bit neighbor if it improves.
  ScanResult scan();

  /// BEST bookkeeping.
  const BitVector& best() const noexcept { return best_; }
  Energy best_energy() const noexcept { return best_energy_; }
  /// Re-anchors BEST at the current X (start of a fresh batch search).
  void reset_best();

  /// True when every Delta_k >= 0, i.e. X is a 1-flip local minimum.
  bool is_local_minimum() const;

 private:
  /// Reduction block width: big enough to amortize the per-block argmin
  /// bookkeeping, small enough that a fused dense block (weights + deltas)
  /// stays resident in L1/L2.
  static constexpr std::size_t kScanBlock = 1024;

  void maybe_record_visited();
  /// Records BEST <- f_{arg}(X) with energy e through the scratch buffer
  /// (word copy + swap; no per-improvement allocation).
  void record_best_neighbor(VarIndex arg, Energy e);
  /// Eq. 4 over one dense block [b0, b1) of Delta (row streamed, branchless).
  void dense_update_block(const Weight* row, std::int32_t si, std::size_t b0,
                          std::size_t b1);
  /// Branchless min/max over one block; returns {block_min, block_max}.
  void reduce_block(std::size_t b0, std::size_t b1, Energy& mn,
                    Energy& mx) const;
  /// Shared tail of flip()/flip_and_scan(): Eq. 5 and the x/sigma updates.
  void finish_flip(VarIndex i, std::int32_t si);
  /// Locates the first argmin in [b0, b1) and applies the BEST update.
  ScanResult finish_scan(Energy mn, Energy mx, std::size_t mn_block);

  const QuboModel* model_;
  BitVector x_;
  Energy energy_ = 0;
  std::vector<Energy> delta_;
  std::vector<std::int8_t> sigma_;  // sigma_[k] == sigma(x_.get(k))
  std::uint64_t flips_ = 0;

  BitVector best_;
  BitVector scratch_;  // reusable buffer for BEST updates
  Energy best_energy_ = 0;
};

}  // namespace dabs
