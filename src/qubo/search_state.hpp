// Incremental search state (paper §III-A).
//
// Maintains, for a current solution X:
//   - E(X)                       updated in O(1) per flip,
//   - Delta_k(X) for every k     updated in O(deg(i)) per flip of bit i
//                                via Eq. (4) (neighbors) and Eq. (5) (i itself),
//   - BEST / E(BEST)             the best 1-bit neighbor f_j(X) seen by any
//                                Step-1 scan (plus every visited X), which is
//                                what a batch search ultimately reports.
//
// The scan() helper is the CPU equivalent of the paper's GPU Step 1: one
// pass over all Delta_k that yields min/argmin/max and opportunistically
// improves BEST.  Search algorithms fuse their bit-selection pass with this
// scan wherever possible so an iteration costs a single O(n) sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct ScanResult {
  Energy min_delta;
  Energy max_delta;
  VarIndex argmin;
};

class SearchState {
 public:
  /// Binds to a model; starts at the zero vector (E=0, Delta_k = W_{k,k}).
  explicit SearchState(const QuboModel& model);

  const QuboModel& model() const noexcept { return *model_; }
  std::size_t size() const noexcept { return delta_.size(); }

  /// Resets to the zero vector in O(n) without touching the matrix
  /// (the paper's batch-search starting point).
  void reset();

  /// Resets to an arbitrary vector; O(n + nnz) full recompute.
  void reset_to(const BitVector& x);

  const BitVector& solution() const noexcept { return x_; }
  Energy energy() const noexcept { return energy_; }
  Energy delta(VarIndex k) const { return delta_[k]; }
  std::span<const Energy> deltas() const noexcept { return delta_; }

  /// Flips bit i: X <- f_i(X), updating E and every Delta_k incrementally.
  /// Also folds the *visited* X into BEST (an O(1) check).
  void flip(VarIndex i);

  /// Total flips since construction or the last reset.
  std::uint64_t flip_count() const noexcept { return flips_; }

  /// Step 1: one pass over Delta computing min/argmin/max and updating
  /// BEST with the best 1-bit neighbor if it improves.
  ScanResult scan();

  /// BEST bookkeeping.
  const BitVector& best() const noexcept { return best_; }
  Energy best_energy() const noexcept { return best_energy_; }
  /// Re-anchors BEST at the current X (start of a fresh batch search).
  void reset_best();

  /// True when every Delta_k >= 0, i.e. X is a 1-flip local minimum.
  bool is_local_minimum() const;

 private:
  void maybe_record_visited();

  const QuboModel* model_;
  BitVector x_;
  Energy energy_ = 0;
  std::vector<Energy> delta_;
  std::uint64_t flips_ = 0;

  BitVector best_;
  Energy best_energy_ = 0;
};

}  // namespace dabs
