// Unified result type returned by every Solver — the single report the
// CLI, campaigns, and any future server layer consume.  Subsumes both the
// bulk-solver SolveResult (batches, restarts, adaptive stats) and the
// baseline BaselineResult (flips): a solver fills the work counters that
// apply and leaves the rest zero.  Anything solver-specific beyond that
// travels in `extras`, a small string key/value map emitted verbatim into
// the JSON report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs::io {
class JsonWriter;
}  // namespace dabs::io

namespace dabs {

struct SolveResult;
struct BaselineResult;
class StopContext;

struct SolveReport {
  /// Registry name of the solver that produced this report.
  std::string solver;

  BitVector best_solution;
  Energy best_energy = kInfiniteEnergy;

  /// Target-energy protocol (the paper's TTS measurement).
  bool reached_target = false;
  /// Seconds from start until the target energy was first attained
  /// (meaningful only when reached_target).
  double tts_seconds = 0.0;
  double elapsed_seconds = 0.0;

  /// Work counters; a solver fills the ones that apply.  Bulk solvers
  /// count batches (and restarts of the merged island ring), baselines
  /// count single-bit flips.
  std::uint64_t flips = 0;
  std::uint64_t batches = 0;
  std::uint32_t restarts = 0;

  /// True when the run ended because the request's StopToken fired.
  bool cancelled = false;

  /// Per-solver extras for the JSON report (e.g. "first_finder_algo" for
  /// dabs, "sweeps" for sa).  Ordered map: deterministic output.
  std::map<std::string, std::string> extras;

  /// Emits the report as one JSON object into an already-open writer
  /// position (top level or after a key inside an object).
  void write_json(io::JsonWriter& json, const std::string& key = "") const;

  /// Multi-line human rendering (the CLI's text output).
  std::string to_string() const;
};

/// Conversions from the era-specific result structs.  `ctx` supplies the
/// stop/progress protocol outcome (cancellation, reached-target, TTS).
SolveReport make_report(std::string_view solver, const SolveResult& result);
SolveReport make_report(std::string_view solver, BaselineResult result,
                        const StopContext& ctx);

}  // namespace dabs
