// Repeated-trial campaign runner — the measurement protocol behind the
// paper's tables: run N independent solver executions against a target
// energy, recording time-to-solution statistics and the success
// probability within the per-trial budget (paper §VI: "the TTS does not
// count the execution time of a trial if it fails to find the potential
// optimal solution within the time limit").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dabs_solver.hpp"
#include "core/solver.hpp"
#include "qubo/qubo_model.hpp"
#include "util/stats.hpp"

namespace dabs {

struct CampaignResult {
  Energy best_energy = kInfiniteEnergy;  // best across all trials
  std::size_t runs = 0;
  std::size_t successes = 0;             // trials that reached the target
  SummaryStats tts;                      // over successful trials only
  std::vector<double> tts_samples;       // per-success TTS (histograms)
  std::vector<Energy> final_energies;    // per-trial best (Fig. 6 style)

  double success_rate() const {
    return runs ? double(successes) / double(runs) : 0.0;
  }
};

class Campaign {
 public:
  /// `base` carries the per-trial budget (time limit / max batches); the
  /// target and per-trial seeds are filled in by run().
  Campaign(SolverConfig base, std::size_t n_trials)
      : base_(std::move(base)), trials_(n_trials) {}

  /// Runs the campaign with DABS solvers.
  CampaignResult run(const QuboModel& model, Energy target) const;

  /// Runs with an arbitrary solver factory (e.g. AbsSolver) so baselines
  /// use the identical protocol.  The factory receives the trial index and
  /// the pre-seeded config.
  CampaignResult run_with(
      const QuboModel& model, Energy target,
      const std::function<SolveResult(std::size_t, const SolverConfig&)>&
          solve_trial) const;

  /// Runs any registry solver through the identical protocol: trial t gets
  /// the same derived seed and per-trial budget (the base config's stop
  /// condition) as run() would hand a DabsSolver, with the target energy
  /// installed, via the unified Solver interface.  `proto` contributes the
  /// run-scoped hooks shared by every trial — stop token, observer, tick
  /// period — while its model/seed/stop fields are overridden by the
  /// protocol.
  CampaignResult run_solver(const QuboModel& model, Energy target,
                            Solver& solver,
                            const SolveRequest& proto = {}) const;

  /// The SolveRequest trial t of this campaign would issue — exposed so
  /// parallel runners and tests reproduce the exact protocol.
  SolveRequest make_trial_request(const QuboModel& model, Energy target,
                                  std::size_t trial,
                                  const SolveRequest& proto = {}) const;

 private:
  SolverConfig base_;
  std::size_t trials_;
};

/// Folds one trial outcome into the aggregate (shared by the campaign
/// runners so every solver is scored by the identical rules).
void accumulate_trial(CampaignResult& out, Energy target, Energy best_energy,
                      bool reached_target, double tts_seconds);

/// Establishes a "potentially optimal" reference (paper §I-B, condition 1):
/// the best energy found by one long exploration run with `budget_seconds`.
/// Callers typically min() this with comparator results.
Energy establish_reference(const QuboModel& model, const SolverConfig& base,
                           double budget_seconds);

/// Standard annealing-literature time-to-solution at confidence p:
///
///   TTS(p) = t_trial * ln(1 - p) / ln(1 - s)
///
/// where s is the per-trial success probability and t_trial the per-trial
/// time.  Returns t_trial when s >= 1 (one run suffices) and +infinity
/// when s <= 0.
double tts_at_confidence(double trial_seconds, double success_rate,
                         double confidence = 0.99);

}  // namespace dabs
