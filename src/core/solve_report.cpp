#include "core/solve_report.hpp"

#include <sstream>

#include "baseline/baseline_result.hpp"
#include "core/dabs_solver.hpp"
#include "core/solver.hpp"
#include "io/json_writer.hpp"

namespace dabs {

void SolveReport::write_json(io::JsonWriter& json,
                             const std::string& key) const {
  json.begin_object(key)
      .value("solver", solver)
      .value("best_energy", best_energy)
      .value("reached_target", reached_target)
      .value("tts_seconds", tts_seconds)
      .value("elapsed_seconds", elapsed_seconds)
      .value("flips", flips)
      .value("batches", batches)
      .value("restarts", restarts)
      .value("cancelled", cancelled);
  json.begin_object("extras");
  for (const auto& [k, v] : extras) json.value(k, v);
  json.end_object();
  json.end_object();
}

std::string SolveReport::to_string() const {
  std::ostringstream os;
  os << "solver      : " << solver << "\n"
     << "best energy : " << best_energy << "\n"
     << "elapsed     : " << elapsed_seconds << "s\n";
  if (reached_target) os << "TTS         : " << tts_seconds << "s\n";
  if (batches != 0) os << "batches     : " << batches << "\n";
  if (flips != 0) os << "flips       : " << flips << "\n";
  if (restarts != 0) os << "restarts    : " << restarts << "\n";
  if (cancelled) os << "cancelled   : yes\n";
  for (const auto& [k, v] : extras) os << k << " = " << v << "\n";
  return os.str();
}

SolveReport make_report(std::string_view solver, const SolveResult& result) {
  SolveReport rep;
  rep.solver = std::string(solver);
  rep.best_solution = result.best_solution;
  rep.best_energy = result.best_energy;
  rep.reached_target = result.reached_target;
  rep.tts_seconds = result.tts_seconds;
  rep.elapsed_seconds = result.elapsed_seconds;
  rep.batches = result.batches;
  rep.restarts = result.restarts;
  rep.cancelled = result.cancelled;
  // Solver-provided extras first (diversity, win rates); the generic
  // attribution keys below only fill gaps and never overwrite them.
  rep.extras = result.extras;
  MainSearch algo;
  GeneticOp op;
  if (result.stats.first_finder(algo, op)) {
    rep.extras.emplace("first_finder_algo", to_string(algo));
    rep.extras.emplace("first_finder_op", to_string(op));
  }
  rep.extras.emplace("improvements",
                     std::to_string(result.stats.improvements.size()));
  return rep;
}

SolveReport make_report(std::string_view solver, BaselineResult result,
                        const StopContext& ctx) {
  SolveReport rep;
  rep.solver = std::string(solver);
  rep.best_solution = std::move(result.best_solution);
  rep.best_energy = result.best_energy;
  rep.flips = result.flips;
  rep.elapsed_seconds = result.elapsed_seconds;
  rep.cancelled = ctx.cancelled();
  rep.reached_target = ctx.reached_target();
  rep.tts_seconds = ctx.tts_seconds();
  // Belt-and-braces: a solver that only discovered its best at merge time
  // (e.g. exhaustive workers) still reports the target correctly.
  const auto& target = ctx.condition().target_energy;
  if (!rep.reached_target && target && rep.best_energy <= *target) {
    rep.reached_target = true;
    rep.tts_seconds = rep.elapsed_seconds;
  }
  return rep;
}

}  // namespace dabs
