// DabsSolver — the full Diverse Adaptive Bulk Search framework (paper §V):
//
//   host                                 devices
//   ----                                 -------
//   pool 0  <- host thread 0 ->  virtual device 0 (block executors)
//   pool 1  <- host thread 1 ->  virtual device 1
//   ...                                   ...
//
// The GA side (pools, adaptive selection, island ring, migration) lives in
// the DiversityEngine (src/evolve); the solver is the driver that wires the
// engine to the virtual-device substrate and the unified stop/progress
// protocol.  Each host thread repeatedly (a) drains its device's outbox,
// handing result packets to the engine and updating the global best, and
// (b) asks the engine for the next target packet and pushes it to the
// device inbox.
//
// Termination runs through one shared StopContext (target energy, wall
// clock, batch budget, cooperative cancellation); host threads serialize
// their driving-thread calls on it under a mutex.  When every pool's best
// has merged to the same solution the engine restarts the ring from random
// pools (paper §IV-B).
//
// ExecutionMode::kSynchronous runs the identical logic single-threaded and
// bit-reproducibly (used by tests and deterministic ablations).
#pragma once

#include <map>
#include <string>

#include "core/run_stats.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_config.hpp"
#include "qubo/qubo_model.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct SolveResult {
  BitVector best_solution;
  Energy best_energy = kInfiniteEnergy;
  bool reached_target = false;
  /// Seconds from start until the target energy was first attained
  /// (meaningful only when reached_target).
  double tts_seconds = 0.0;
  double elapsed_seconds = 0.0;
  std::uint64_t batches = 0;
  std::uint32_t restarts = 0;
  /// Pool entries migrated between ring neighbors (0 unless the config
  /// enables migration).
  std::uint64_t migrations = 0;
  /// True when the run ended because a SolveRequest stop token fired.
  bool cancelled = false;
  RunStatsSnapshot stats;
  /// Diversity-engine summary (pool entropy / Hamming spread, per-operator
  /// win counts, ...), merged verbatim into SolveReport::extras.
  std::map<std::string, std::string> extras;
};

class DabsSolver : public Solver {
 public:
  explicit DabsSolver(SolverConfig config = {});

  const SolverConfig& config() const noexcept { return config_; }

  /// Runs the framework on `model` until a stop condition fires.
  /// Re-entrant: each call builds fresh pools/devices.  The config's stop
  /// condition must be bounded.
  SolveResult solve(const QuboModel& model);

  /// Unified-interface entry: the request's stop condition / seed /
  /// warm-start override the config's when set, and the stop token and
  /// observer are honored by both execution modes.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "dabs"; }

 private:
  SolverConfig config_;
};

}  // namespace dabs
