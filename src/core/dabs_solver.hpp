// DabsSolver — the full Diverse Adaptive Bulk Search framework (paper §V):
//
//   host                                 devices
//   ----                                 -------
//   pool 0  <- host thread 0 ->  virtual device 0 (block executors)
//   pool 1  <- host thread 1 ->  virtual device 1
//   ...                                   ...
//
// Each host thread repeatedly (a) drains its device's outbox, inserting
// result packets into its pool and updating the global best, and (b)
// generates new target packets: the adaptive selector chooses a main search
// algorithm and a genetic operation (95 % from pool records / 5 % uniform),
// the operation builds a target vector (Xrossover consulting the ring
// neighbor pool), and the packet is pushed to the device inbox.
//
// Termination: target energy reached, wall-clock limit, or batch budget.
// When every pool's best has merged to the same solution the ring restarts
// from random pools (paper §IV-B).
//
// ExecutionMode::kSynchronous runs the identical logic single-threaded and
// bit-reproducibly (used by tests and deterministic ablations).
#pragma once

#include <atomic>
#include <mutex>

#include "core/run_stats.hpp"
#include "core/solve_report.hpp"
#include "core/solver.hpp"
#include "core/solver_config.hpp"
#include "qubo/qubo_model.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct SolveResult {
  BitVector best_solution;
  Energy best_energy = kInfiniteEnergy;
  bool reached_target = false;
  /// Seconds from start until the target energy was first attained
  /// (meaningful only when reached_target).
  double tts_seconds = 0.0;
  double elapsed_seconds = 0.0;
  std::uint64_t batches = 0;
  std::uint32_t restarts = 0;
  /// True when the run ended because a SolveRequest stop token fired.
  bool cancelled = false;
  RunStatsSnapshot stats;
};

class DabsSolver : public Solver {
 public:
  explicit DabsSolver(SolverConfig config = {});

  const SolverConfig& config() const noexcept { return config_; }

  /// Runs the framework on `model` until a stop condition fires.
  /// Re-entrant: each call builds fresh pools/devices.  The config's stop
  /// condition must be bounded.
  SolveResult solve(const QuboModel& model);

  /// Unified-interface entry: the request's stop condition / seed /
  /// warm-start override the config's when set, and the stop token and
  /// observer are honored by both execution modes.
  SolveReport solve(const SolveRequest& request) override;

  std::string_view name() const noexcept override { return "dabs"; }

 private:
  SolverConfig config_;
};

}  // namespace dabs
