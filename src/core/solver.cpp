#include "core/solver.hpp"

#include "util/assert.hpp"

namespace dabs {

StopContext::StopContext(StopCondition stop, StopToken token,
                         ProgressObserver* observer, double tick_seconds)
    : stop_(stop), token_(std::move(token)), observer_(observer),
      tick_seconds_(tick_seconds) {}

StopContext StopContext::for_request(const SolveRequest& request,
                                     double fallback_time_limit) {
  StopCondition stop = request.stop;
  if (stop.unbounded() && fallback_time_limit > 0.0) {
    stop.time_limit_seconds = fallback_time_limit;
  }
  return StopContext(stop, request.stop_token, request.observer,
                     request.tick_seconds);
}

bool StopContext::should_stop() {
  if (stopped_) return true;
  if (token_.stop_requested()) {
    cancelled_ = true;
    stopped_ = true;
    return true;
  }
  const double now = clock_.elapsed_seconds();
  if (observer_ && tick_seconds_ > 0.0 && now - last_tick_ >= tick_seconds_) {
    last_tick_ = now;
    observer_->on_tick({now, best_energy_, work_});
  }
  if (reached_target_ ||
      (stop_.time_limit_seconds > 0.0 && now >= stop_.time_limit_seconds) ||
      (stop_.max_batches != 0 && work_ >= stop_.max_batches)) {
    stopped_ = true;
    return true;
  }
  return false;
}

bool StopContext::expired() const {
  if (token_.stop_requested()) return true;
  return stop_.time_limit_seconds > 0.0 &&
         clock_.elapsed_seconds() >= stop_.time_limit_seconds;
}

void StopContext::note_best(Energy energy) {
  if (energy >= best_energy_) return;
  best_energy_ = energy;
  const double now = clock_.elapsed_seconds();
  if (!reached_target_ && stop_.target_energy &&
      energy <= *stop_.target_energy) {
    reached_target_ = true;
    tts_seconds_ = now;
  }
  if (observer_) observer_->on_new_best({now, energy, work_});
}

const QuboModel& request_model(const SolveRequest& request) {
  DABS_CHECK(request.model != nullptr, "SolveRequest carries no model");
  for (const BitVector& x : request.warm_start) {
    DABS_CHECK(x.size() == request.model->size(),
               "warm-start solution length mismatch");
  }
  return *request.model;
}

}  // namespace dabs
