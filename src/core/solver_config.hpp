// Configuration for a DABS run.  Defaults mirror the paper's experimental
// setup where a CPU-scale equivalent exists: 100-packet pools, tabu tenure
// 8, 5 % exploration, search/batch flip factors s = 0.1 and b = 1.0.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "device/virtual_device.hpp"
#include "evolve/genetic_ops.hpp"
#include "qubo/types.hpp"
#include "search/registry.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

enum class ExecutionMode : std::uint8_t {
  /// Host thread per pool + device block threads (the paper's architecture).
  kThreaded,
  /// Single-threaded, bit-reproducible round-robin loop (tests, ablations).
  kSynchronous,
};

struct StopCondition {
  /// Stop as soon as the global best energy is <= target.
  std::optional<Energy> target_energy;
  /// Wall-clock limit in seconds (0 = unlimited).
  double time_limit_seconds = 0.0;
  /// Work budget in the solver's natural unit (0 = unlimited): batch
  /// searches across all devices for the bulk solvers, single-bit flips
  /// for the flip-at-a-time baselines.
  std::uint64_t max_batches = 0;

  bool unbounded() const noexcept {
    return !target_energy && time_limit_seconds <= 0.0 && max_batches == 0;
  }
};

struct SolverConfig {
  std::size_t devices = 2;   // the paper uses 8 GPUs
  DeviceConfig device;       // blocks per device, queue depth, s/b/tabu
  std::size_t pool_capacity = 100;
  std::uint64_t seed = 0x5eed5eed;
  ExecutionMode mode = ExecutionMode::kThreaded;

  /// Adaptive-selection diversity.  Defaults: all 5 algorithms, all 8 ops.
  std::vector<MainSearch> algorithms{kAllMainSearches.begin(),
                                     kAllMainSearches.end()};
  std::vector<GeneticOp> operations{kDabsGeneticOps.begin(),
                                    kDabsGeneticOps.end()};
  double explore_prob = 0.05;
  GeneticOpParams op_params;

  /// Warm-start solutions inserted into the pools (round-robin) before the
  /// run begins; energies are computed by the solver.  The paper uses the
  /// inverse direction (DABS solutions warm-starting Gurobi) to validate
  /// potential optimality — this closes the loop for resuming DABS runs.
  std::vector<BitVector> warm_start;

  /// Restart all pools when the island ring has merged (paper §IV-B).
  bool restart_on_merge = true;
  /// How often (in generated batches per pool) merge is checked.
  std::uint64_t merge_check_interval = 64;

  /// Ring migration cadence in generated batches per pool; 0 (the paper's
  /// configuration) disables migration — pools then mix only through the
  /// Xrossover operation.
  std::uint64_t migration_interval = 0;
  /// Best pool entries copied to the ring neighbor per migration event.
  std::size_t migration_count = 1;

  StopCondition stop;

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

}  // namespace dabs
