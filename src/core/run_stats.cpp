#include "core/run_stats.hpp"

#include <sstream>

#include "evolve/genetic_ops.hpp"

namespace dabs {

double RunStatsSnapshot::algo_fraction(MainSearch s) const {
  if (batches == 0) return 0.0;
  return double(algo_executed[static_cast<std::size_t>(s)]) / double(batches);
}

double RunStatsSnapshot::op_fraction(GeneticOp op) const {
  if (batches == 0) return 0.0;
  return double(op_executed[static_cast<std::size_t>(op)]) / double(batches);
}

bool RunStatsSnapshot::first_finder(MainSearch& algo_out,
                                    GeneticOp& op_out) const {
  if (improvements.empty()) return false;
  algo_out = improvements.back().algo;
  op_out = improvements.back().op;
  return true;
}

std::string RunStatsSnapshot::to_string() const {
  std::ostringstream os;
  os << "batches=" << batches << "\n  algorithms:";
  for (const MainSearch s : kAllMainSearches) {
    os << ' ' << dabs::to_string(s) << '='
       << algo_executed[static_cast<std::size_t>(s)];
  }
  os << "\n  operations:";
  for (std::size_t i = 0; i < kGeneticOpCount; ++i) {
    os << ' ' << dabs::to_string(static_cast<GeneticOp>(i)) << '='
       << op_executed[i];
  }
  os << "\n  improvements=" << improvements.size();
  if (!improvements.empty()) {
    os << " final=" << improvements.back().energy << " by "
       << dabs::to_string(improvements.back().algo) << '/'
       << dabs::to_string(improvements.back().op);
  }
  return os.str();
}

void RunStatsSnapshot::write_json(io::JsonWriter& json,
                                  const std::string& key) const {
  json.begin_object(key);
  json.value("batches", batches);
  json.begin_object("algorithms");
  for (const MainSearch s : kAllMainSearches) {
    json.value(std::string(dabs::to_string(s)),
               algo_executed[static_cast<std::size_t>(s)]);
  }
  json.end_object();
  json.begin_object("operations");
  for (std::size_t i = 0; i < kGeneticOpCount; ++i) {
    json.value(std::string(dabs::to_string(static_cast<GeneticOp>(i))),
               op_executed[i]);
  }
  json.end_object();
  json.begin_array("improvements");
  for (const ImprovementEvent& e : improvements) {
    json.begin_object()
        .value("t", e.at_seconds)
        .value("energy", e.energy)
        .value("algorithm", std::string(dabs::to_string(e.algo)))
        .value("operation", std::string(dabs::to_string(e.op)))
        .end_object();
  }
  json.end_array();
  json.end_object();
}

void RunStats::record_batch(MainSearch algo, GeneticOp op) {
  std::lock_guard lock(mu_);
  ++data_.algo_executed[static_cast<std::size_t>(algo)];
  ++data_.op_executed[static_cast<std::size_t>(op)];
  ++data_.batches;
}

void RunStats::record_improvement(double at_seconds, Energy energy,
                                  MainSearch algo, GeneticOp op) {
  std::lock_guard lock(mu_);
  data_.improvements.push_back({at_seconds, energy, algo, op});
}

RunStatsSnapshot RunStats::snapshot() const {
  std::lock_guard lock(mu_);
  return data_;
}

}  // namespace dabs
