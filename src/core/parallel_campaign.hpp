// Parallel campaign: distributes a campaign's independent trials over a
// thread pool.  Each trial runs a *synchronous-mode* solver on its own
// thread, so trials are bit-reproducible individually and merely complete
// in nondeterministic order; the aggregate statistics are order-invariant.
//
// On a multicore host this recovers most of the paper's throughput story
// for repeated-execution campaigns (Figs. 5/7: 1,000 executions).
#pragma once

#include "core/campaign.hpp"
#include "util/thread_pool.hpp"

namespace dabs {

class ParallelCampaign {
 public:
  /// `threads` worker threads; each trial forces synchronous mode.
  ParallelCampaign(SolverConfig base, std::size_t n_trials,
                   std::size_t threads);

  CampaignResult run(const QuboModel& model, Energy target) const;

  /// Distributes the same per-trial protocol over any Solver.  Relies on
  /// the interface contract that solve() is safe to call concurrently on
  /// one instance; for bulk solvers pass a synchronous-mode configuration
  /// to keep individual trials bit-reproducible.  `proto` contributes the
  /// shared stop token / observer / tick period (see
  /// Campaign::run_solver); an observer here must be thread-safe, since
  /// concurrent trials call it.
  CampaignResult run_solver(const QuboModel& model, Energy target,
                            Solver& solver,
                            const SolveRequest& proto = {}) const;

 private:
  SolverConfig base_;
  std::size_t trials_;
  std::size_t threads_;
};

}  // namespace dabs
