// Run statistics collected by the DABS host:
//
//   - per-algorithm / per-operation execution counts  -> Table V
//   - the algorithm/operation that first reached the final best solution
//     (updated on every global-best improvement)       -> Table VI
//   - the improvement trace (time, energy) and TTS.
//
// All mutators are internally synchronized: host pool threads record
// concurrently in threaded mode.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "evolve/op_ids.hpp"
#include "io/json_writer.hpp"
#include "qubo/types.hpp"
#include "search/registry.hpp"

namespace dabs {

struct ImprovementEvent {
  double at_seconds;
  Energy energy;
  MainSearch algo;
  GeneticOp op;
};

/// Immutable copy of the counters, taken at end of run.
struct RunStatsSnapshot {
  std::array<std::uint64_t, kMainSearchCount> algo_executed{};
  std::array<std::uint64_t, kGeneticOpCount> op_executed{};
  std::vector<ImprovementEvent> improvements;
  std::uint64_t batches = 0;

  /// Fraction of batches run with each algorithm / operation (Table V rows).
  double algo_fraction(MainSearch s) const;
  double op_fraction(GeneticOp op) const;

  /// Last improvement = the record that first attained the final best
  /// (Table VI attribution).  Returns false when nothing improved.
  bool first_finder(MainSearch& algo_out, GeneticOp& op_out) const;

  std::string to_string() const;

  /// Emits the snapshot as a JSON object (batches, frequency maps,
  /// improvement trace) into an already-open writer scope position.
  void write_json(io::JsonWriter& json, const std::string& key = "") const;
};

class RunStats {
 public:
  /// Records that one batch with (algo, op) was dispatched/executed.
  void record_batch(MainSearch algo, GeneticOp op);

  /// Records a global-best improvement produced by (algo, op).
  void record_improvement(double at_seconds, Energy energy, MainSearch algo,
                          GeneticOp op);

  RunStatsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  RunStatsSnapshot data_;
};

}  // namespace dabs
