#include "core/campaign.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace dabs {

void accumulate_trial(CampaignResult& out, Energy target, Energy best_energy,
                      bool reached_target, double tts_seconds) {
  ++out.runs;
  out.final_energies.push_back(best_energy);
  if (best_energy < out.best_energy) out.best_energy = best_energy;
  if (reached_target && best_energy <= target) {
    ++out.successes;
    out.tts.add(tts_seconds);
    out.tts_samples.push_back(tts_seconds);
  }
}

CampaignResult Campaign::run(const QuboModel& model, Energy target) const {
  return run_with(model, target,
                  [&model](std::size_t, const SolverConfig& cfg) {
                    return DabsSolver(cfg).solve(model);
                  });
}

CampaignResult Campaign::run_with(
    const QuboModel& model, Energy target,
    const std::function<SolveResult(std::size_t, const SolverConfig&)>&
        solve_trial) const {
  DABS_CHECK(trials_ > 0, "campaign needs at least one trial");
  CampaignResult out;
  for (std::size_t t = 0; t < trials_; ++t) {
    SolverConfig cfg = base_;
    cfg.seed = base_.seed + 0x9e3779b97f4a7c15ull * (t + 1);
    cfg.stop.target_energy = target;
    const SolveResult r = solve_trial(t, cfg);
    accumulate_trial(out, target, r.best_energy, r.reached_target,
                     r.tts_seconds);
  }
  (void)model;
  return out;
}

SolveRequest Campaign::make_trial_request(const QuboModel& model,
                                          Energy target, std::size_t trial,
                                          const SolveRequest& proto) const {
  SolveRequest req = proto;  // keeps stop_token / observer / tick_seconds
  req.model = &model;
  req.seed = base_.seed + 0x9e3779b97f4a7c15ull * (trial + 1);
  req.stop = base_.stop;
  req.stop.target_energy = target;
  req.warm_start = base_.warm_start;
  return req;
}

CampaignResult Campaign::run_solver(const QuboModel& model, Energy target,
                                    Solver& solver,
                                    const SolveRequest& proto) const {
  DABS_CHECK(trials_ > 0, "campaign needs at least one trial");
  CampaignResult out;
  for (std::size_t t = 0; t < trials_; ++t) {
    const SolveReport r =
        solver.solve(make_trial_request(model, target, t, proto));
    accumulate_trial(out, target, r.best_energy, r.reached_target,
                     r.tts_seconds);
  }
  return out;
}

Energy establish_reference(const QuboModel& model, const SolverConfig& base,
                           double budget_seconds) {
  DABS_CHECK(budget_seconds > 0, "reference budget must be positive");
  SolverConfig cfg = base;
  cfg.stop = {};
  cfg.stop.time_limit_seconds = budget_seconds;
  return DabsSolver(cfg).solve(model).best_energy;
}

double tts_at_confidence(double trial_seconds, double success_rate,
                         double confidence) {
  DABS_CHECK(trial_seconds >= 0, "trial time must be non-negative");
  DABS_CHECK(confidence > 0 && confidence < 1,
             "confidence must be in (0, 1)");
  if (success_rate >= 1.0) return trial_seconds;
  if (success_rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return trial_seconds * std::log(1.0 - confidence) /
         std::log(1.0 - success_rate);
}

}  // namespace dabs
