#include "core/solver_registry.hpp"

#include <charconv>
#include <sstream>

#include "baseline/abs_solver.hpp"
#include "baseline/exhaustive.hpp"
#include "baseline/greedy_restart.hpp"
#include "baseline/path_relinking.hpp"
#include "baseline/simulated_annealing.hpp"
#include "baseline/subqubo_solver.hpp"
#include "baseline/tabu_search.hpp"
#include "core/dabs_solver.hpp"
#include "util/assert.hpp"

namespace dabs {

namespace {

[[noreturn]] void bad_option(const std::string& key, const std::string& value,
                             const char* expected) {
  std::ostringstream os;
  os << "solver option '" << key << "': cannot parse '" << value << "' as "
     << expected;
  throw std::invalid_argument(os.str());
}

}  // namespace

std::string SolverOptions::get(const std::string& key,
                               const std::string& fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t SolverOptions::get_u64(const std::string& key,
                                     std::uint64_t fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::uint64_t out = 0;
  const char* first = it->second.data();
  const char* last = first + it->second.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) {
    bad_option(key, it->second, "an unsigned integer");
  }
  return out;
}

double SolverOptions::get_double(const std::string& key,
                                 double fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(it->second, &pos);
    if (pos != it->second.size()) bad_option(key, it->second, "a number");
    return out;
  } catch (const std::invalid_argument&) {
    bad_option(key, it->second, "a number");
  } catch (const std::out_of_range&) {
    bad_option(key, it->second, "a number in range");
  }
}

bool SolverOptions::get_bool(const std::string& key, bool fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  bad_option(key, v, "a boolean (true/false)");
}

std::vector<std::string> SolverOptions::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    const auto it = queried_.find(key);
    if (it == queried_.end() || !it->second) out.push_back(key);
  }
  return out;
}

void SolverRegistry::add(std::string name, std::string description,
                         Factory factory) {
  DABS_CHECK(!name.empty(), "solver name must not be empty");
  DABS_CHECK(factory != nullptr, "solver factory must not be null");
  std::lock_guard lock(mu_);
  const bool inserted =
      entries_
          .emplace(std::move(name),
                   Entry{std::move(description), std::move(factory)})
          .second;
  DABS_CHECK(inserted, "duplicate solver registration");
}

bool SolverRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return entries_.count(name) != 0;
}

std::unique_ptr<Solver> SolverRegistry::create(
    const std::string& name, const SolverOptions& options) const {
  Factory factory;
  {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::ostringstream os;
      os << "unknown solver '" << name << "'; registered:";
      for (const auto& [n, e] : entries_) {
        (void)e;
        os << ' ' << n;
      }
      throw std::invalid_argument(os.str());
    }
    factory = it->second.factory;
  }
  std::unique_ptr<Solver> solver = factory(options);
  const std::vector<std::string> unknown = options.unused();
  if (!unknown.empty()) {
    std::ostringstream os;
    os << "solver '" << name << "' does not take option";
    os << (unknown.size() > 1 ? "s" : "");
    for (const std::string& k : unknown) os << " '" << k << "'";
    throw std::invalid_argument(os.str());
  }
  return solver;
}

std::vector<SolverInfo> SolverRegistry::list() const {
  std::lock_guard lock(mu_);
  std::vector<SolverInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.description});
  }
  return out;  // std::map iteration is already name-sorted
}

namespace {

/// Shared option decoding for the two bulk solvers (dabs, abs).
SolverConfig bulk_config(const SolverOptions& o) {
  SolverConfig cfg;
  cfg.devices = o.get_u64("devices", cfg.devices);
  // "islands" is the diversity-engine-facing alias: one island (pool +
  // host generation stream) per device, so the two knobs are one number.
  cfg.devices = o.get_u64("islands", cfg.devices);
  cfg.device.blocks = static_cast<std::uint32_t>(
      o.get_u64("blocks", cfg.device.blocks));
  cfg.device.replicas = static_cast<std::uint32_t>(
      o.get_u64("replicas", cfg.device.replicas));
  cfg.device.batch.search_flip_factor =
      o.get_double("s", cfg.device.batch.search_flip_factor);
  cfg.device.batch.batch_flip_factor =
      o.get_double("b", cfg.device.batch.batch_flip_factor);
  cfg.pool_capacity = o.get_u64("pool", cfg.pool_capacity);
  cfg.seed = o.get_u64("seed", cfg.seed);
  cfg.explore_prob = o.get_double("explore", cfg.explore_prob);
  cfg.migration_interval = o.get_u64("migrate", cfg.migration_interval);
  cfg.migration_count = o.get_u64("migrants", cfg.migration_count);
  // Synchronous (bit-reproducible) by default; opt into the threaded
  // host/device pipeline explicitly.  Bulk blocks (replicas > 1) gather
  // packets concurrently, so they imply threaded mode.
  cfg.mode = o.get_bool("threads", cfg.device.replicas > 1)
                 ? ExecutionMode::kThreaded
                 : ExecutionMode::kSynchronous;
  return cfg;
}

void register_builtin_solvers(SolverRegistry& reg) {
  reg.add("dabs",
          "Diverse Adaptive Bulk Search (the paper's solver) "
          "[devices/islands, blocks, replicas, pool, s, b, explore, "
          "migrate, migrants, seed, threads]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            return std::make_unique<DabsSolver>(bulk_config(o));
          });
  reg.add("abs",
          "Adaptive Bulk Search predecessor: CyclicMin + mutate-crossover, "
          "no diversity [devices/islands, blocks, replicas, pool, s, b, "
          "explore, migrate, migrants, seed, threads]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            return std::make_unique<AbsSolver>(bulk_config(o));
          });
  reg.add("sa",
          "Simulated annealing, geometric schedule "
          "[sweeps, t-initial, t-final, restarts, seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            SaParams p;
            p.sweeps = o.get_u64("sweeps", p.sweeps);
            p.t_initial = o.get_double("t-initial", p.t_initial);
            p.t_final = o.get_double("t-final", p.t_final);
            p.restarts = o.get_u64("restarts", p.restarts);
            p.seed = o.get_u64("seed", p.seed);
            return std::make_unique<SimulatedAnnealing>(p);
          });
  reg.add("tabu",
          "Best-improvement tabu search with aspiration "
          "[iterations, tenure, seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            TabuSearchParams p;
            p.iterations = o.get_u64("iterations", p.iterations);
            p.tenure =
                static_cast<std::uint32_t>(o.get_u64("tenure", p.tenure));
            p.seed = o.get_u64("seed", p.seed);
            return std::make_unique<TabuSearch>(p);
          });
  reg.add("greedy-restart",
          "Multistart greedy descent [restarts, seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            GreedyRestartParams p;
            p.restarts = o.get_u64("restarts", p.restarts);
            p.seed = o.get_u64("seed", p.seed);
            return std::make_unique<GreedyRestart>(p);
          });
  reg.add("path-relinking",
          "Greedy multistart + elite path relinking "
          "[elite, relinks, seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            PathRelinkingParams p;
            p.elite_size = o.get_u64("elite", p.elite_size);
            p.relinks = o.get_u64("relinks", p.relinks);
            p.seed = o.get_u64("seed", p.seed);
            return std::make_unique<PathRelinking>(p);
          });
  reg.add("subqubo",
          "SubQUBO hybrid: clamp + exact sub-solve + accept "
          "[subset, iterations, restarts, seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            SubQuboParams p;
            p.subset_size = static_cast<std::uint32_t>(
                o.get_u64("subset", p.subset_size));
            p.iterations = o.get_u64("iterations", p.iterations);
            p.restarts = o.get_u64("restarts", p.restarts);
            p.seed = o.get_u64("seed", p.seed);
            return std::make_unique<SubQuboSolver>(p);
          });
  reg.add("exhaustive",
          "Exact Gray-code enumeration (n <= max-bits) "
          "[max-bits, threads]",
          [](const SolverOptions& o) -> std::unique_ptr<Solver> {
            const std::size_t max_bits = o.get_u64("max-bits", 26);
            const auto threads =
                static_cast<std::uint32_t>(o.get_u64("threads", 1));
            return std::make_unique<ExhaustiveSolver>(max_bits, threads);
          });
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* reg = [] {
    auto* r = new SolverRegistry();
    register_builtin_solvers(*r);
    return r;
  }();
  return *reg;
}

}  // namespace dabs
