// Name -> factory registry for every Solver in the repo, mirroring the
// search-algorithm registry in search/registry.hpp one level up the stack.
// Factories build a solver from generic string options so front ends (CLI,
// config files, future RPC surfaces) need no per-solver types:
//
//   auto solver = SolverRegistry::global().create("tabu", {{"tenure", "8"}});
//   SolveRequest req;
//   req.model = &model;
//   req.stop.time_limit_seconds = 5.0;
//   SolveReport report = solver->solve(req);
//
// The global registry ships with the paper's eight solvers: dabs, abs, sa,
// tabu, greedy-restart, path-relinking, subqubo, exhaustive.
#pragma once

#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/solver.hpp"

namespace dabs {

/// String key/value options handed to a solver factory.  Typed getters
/// convert with readable errors; reads are tracked so the registry can
/// reject misspelled keys after the factory ran.
class SolverOptions {
 public:
  SolverOptions() = default;
  SolverOptions(
      std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// Typed getters; `fallback` when the key is absent.  Throw
  /// std::invalid_argument on malformed values.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys that were set but never read by a factory — typo detection.
  std::vector<std::string> unused() const;

  const std::map<std::string, std::string>& values() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

struct SolverInfo {
  std::string name;
  std::string description;
};

class SolverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Solver>(const SolverOptions&)>;

  SolverRegistry() = default;
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// Registers a factory; throws std::invalid_argument on duplicates.
  void add(std::string name, std::string description, Factory factory);

  bool contains(const std::string& name) const;

  /// Builds the named solver.  Throws std::invalid_argument for unknown
  /// names and for option keys the factory did not recognize.
  std::unique_ptr<Solver> create(const std::string& name,
                                 const SolverOptions& options = {}) const;

  /// All registered solvers, sorted by name.
  std::vector<SolverInfo> list() const;

  /// The process-wide registry, pre-populated with the eight built-ins.
  static SolverRegistry& global();

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace dabs
