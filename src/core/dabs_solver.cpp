#include "core/dabs_solver.hpp"

#include <thread>
#include <vector>

#include "device/device_group.hpp"
#include "ga/adaptive_selector.hpp"
#include "ga/genetic_ops.hpp"
#include "ga/island_ring.hpp"
#include "rng/seeder.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace dabs {

namespace {

/// State shared by the host pool threads for one solve() call.
struct RunContext {
  const SolverConfig& cfg;
  const QuboModel& model;
  IslandRing& ring;
  AdaptiveSelector selector;
  Stopwatch clock;
  RunStats stats;

  /// Run-scoped cancellation / progress hooks (null on the legacy path).
  const StopToken* token = nullptr;
  ProgressObserver* observer = nullptr;
  double tick_seconds = 0.0;

  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::atomic<std::uint64_t> generated{0};
  std::atomic<std::uint32_t> restarts{0};

  std::mutex best_mu;
  BitVector best;
  Energy best_energy = kInfiniteEnergy;
  bool reached_target = false;
  double tts_seconds = 0.0;

  std::mutex tick_mu;
  double last_tick = 0.0;

  RunContext(const SolverConfig& c, const QuboModel& m, IslandRing& r)
      : cfg(c), model(m), ring(r),
        selector(c.algorithms, c.operations, c.explore_prob),
        best(m.size()) {}

  /// Inserts a device result into its pool and updates the global best.
  void handle_result(const Packet& p) {
    ring.pool(p.pool_index)
        .insert({p.solution, p.energy, p.algo, p.op});
    bool improved = false;
    ProgressEvent event;
    {
      std::lock_guard lock(best_mu);
      if (p.energy < best_energy) {
        best_energy = p.energy;
        best = p.solution;
        stats.record_improvement(clock.elapsed_seconds(), p.energy, p.algo,
                                 p.op);
        improved = true;
        event = {clock.elapsed_seconds(), p.energy,
                 generated.load(std::memory_order_relaxed)};
        if (cfg.stop.target_energy && p.energy <= *cfg.stop.target_energy &&
            !reached_target) {
          reached_target = true;
          tts_seconds = clock.elapsed_seconds();
          stop.store(true, std::memory_order_release);
        }
      }
    }
    // Outside best_mu: a slow observer must not stall the other host
    // threads (or deadlock by re-entering the solver surface).
    if (improved && observer) observer->on_new_best(event);
  }

  /// Builds the next host->device packet for pool `i`.
  Packet make_packet(std::uint32_t i, Rng& rng) {
    const SolutionPool& pool = ring.pool(i);
    const SolutionPool* nbr =
        ring.pool_count() > 1 ? &ring.neighbor(i) : nullptr;
    Packet p;
    p.algo = selector.select_algorithm(pool, rng);
    p.op = selector.select_operation(pool, rng);
    p.solution =
        apply_genetic_op(p.op, model.size(), pool, nbr, rng, cfg.op_params);
    p.pool_index = i;
    stats.record_batch(p.algo, p.op);
    generated.fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  /// Wall-clock / batch-budget / stop-token checks (target checks live in
  /// handle_result).  Returns true when the run should end.
  bool budget_exhausted() {
    if (token && token->stop_requested()) {
      cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    maybe_tick();
    if (cfg.stop.time_limit_seconds > 0.0 &&
        clock.elapsed_seconds() >= cfg.stop.time_limit_seconds) {
      return true;
    }
    if (cfg.stop.max_batches != 0 &&
        generated.load(std::memory_order_relaxed) >= cfg.stop.max_batches) {
      return true;
    }
    return false;
  }

  /// Fires ProgressObserver::on_tick at most once per tick_seconds across
  /// all host threads.  last_tick is claimed under tick_mu, then the
  /// callback runs lock-free (same rationale as handle_result).
  void maybe_tick() {
    if (!observer || tick_seconds <= 0.0) return;
    double now;
    {
      std::lock_guard tick_lock(tick_mu);
      now = clock.elapsed_seconds();
      if (now - last_tick < tick_seconds) return;
      last_tick = now;
    }
    Energy e;
    {
      std::lock_guard best_lock(best_mu);
      e = best_energy;
    }
    observer->on_tick({now, e, generated.load(std::memory_order_relaxed)});
  }

  /// Restarts all pools when the ring has merged (paper §IV-B).
  void maybe_restart(Rng& rng) {
    if (!cfg.restart_on_merge) return;
    if (!ring.merged()) return;
    for (std::size_t i = 0; i < ring.pool_count(); ++i) {
      ring.pool(i).restart(rng);
    }
    restarts.fetch_add(1, std::memory_order_relaxed);
  }
};

void host_pool_thread(RunContext& ctx, DeviceGroup& group, std::uint32_t i,
                      std::uint64_t seed) {
  Rng rng(seed);
  VirtualDevice& dev = group.device(i);
  std::uint64_t since_merge_check = 0;
  while (!ctx.stop.load(std::memory_order_acquire)) {
    // (a) Retire finished batches.
    while (auto p = dev.outbox().try_pop()) ctx.handle_result(*p);
    if (ctx.budget_exhausted()) {
      ctx.stop.store(true, std::memory_order_release);
      break;
    }
    // (b) Feed the device.
    Packet pkt = ctx.make_packet(i, rng);
    while (!ctx.stop.load(std::memory_order_acquire)) {
      if (dev.inbox().try_push(pkt)) break;
      // Inbox full: retire results while waiting so the pipeline drains.
      if (auto p = dev.outbox().try_pop()) {
        ctx.handle_result(*p);
      } else {
        std::this_thread::yield();
      }
      if (ctx.budget_exhausted()) {
        ctx.stop.store(true, std::memory_order_release);
        break;
      }
    }
    // (c) Pool-0 housekeeping: merged-ring restart.
    if (i == 0 && ++since_merge_check >= ctx.cfg.merge_check_interval) {
      since_merge_check = 0;
      ctx.maybe_restart(rng);
    }
  }
}

void run_threaded(RunContext& ctx, DeviceGroup& group,
                  MersenneSeeder& seeder) {
  group.start_all();
  std::vector<std::thread> hosts;
  hosts.reserve(group.device_count());
  const auto seeds = seeder.seeds(group.device_count());
  for (std::uint32_t i = 0; i < group.device_count(); ++i) {
    hosts.emplace_back(host_pool_thread, std::ref(ctx), std::ref(group), i,
                       seeds[i]);
  }
  for (auto& t : hosts) t.join();
  group.stop_all();
}

void run_synchronous(RunContext& ctx, DeviceGroup& group,
                     MersenneSeeder& seeder) {
  const std::size_t devices = group.device_count();
  std::vector<Rng> rngs;
  rngs.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) rngs.push_back(seeder.next_rng());
  std::vector<std::size_t> rr(devices, 0);

  std::uint64_t round = 0;
  while (!ctx.stop.load(std::memory_order_relaxed)) {
    if (ctx.budget_exhausted()) break;
    const auto i = static_cast<std::uint32_t>(round % devices);
    Packet pkt = ctx.make_packet(i, rngs[i]);
    VirtualDevice& dev = group.device(i);
    const Packet out = dev.execute(pkt, rr[i]);
    rr[i] = (rr[i] + 1) % dev.block_count();
    ctx.handle_result(out);
    ++round;
    if (round % (ctx.cfg.merge_check_interval * devices) == 0) {
      ctx.maybe_restart(rngs[0]);
    }
  }
}

/// One full framework run.  `token`/`observer` are null on the legacy
/// SolveResult path; the added checks are branch-only, so synchronous runs
/// stay bit-identical with or without them.
SolveResult run_dabs(const SolverConfig& cfg, const QuboModel& model,
                     const StopToken* token, ProgressObserver* observer,
                     double tick_seconds) {
  DABS_CHECK(model.size() > 0, "cannot solve an empty model");
  DABS_CHECK(!cfg.stop.unbounded(),
             "refusing an unbounded run: set a target energy, time limit, "
             "work budget, or cancel via a bounded request");
  MersenneSeeder seeder(cfg.seed);
  IslandRing ring(cfg.devices, cfg.pool_capacity, model.size(), seeder);
  DeviceGroup group(model, cfg.devices, cfg.device, seeder);
  RunContext ctx(cfg, model, ring);
  ctx.token = token;
  ctx.observer = observer;
  ctx.tick_seconds = tick_seconds;

  // Seed the pools (and the global best) with any warm-start solutions.
  for (std::size_t i = 0; i < cfg.warm_start.size(); ++i) {
    const BitVector& x = cfg.warm_start[i];
    DABS_CHECK(x.size() == model.size(),
               "warm-start solution length mismatch");
    Packet p;
    p.solution = x;
    p.energy = model.energy(x);
    p.algo = cfg.algorithms[i % cfg.algorithms.size()];
    p.op = cfg.operations[i % cfg.operations.size()];
    p.pool_index = static_cast<std::uint32_t>(i % cfg.devices);
    ctx.handle_result(p);
  }

  // A run cancelled before the first device result must still report a
  // real (solution, energy) pair, so fold one evaluated initial pool
  // entry into the global best exactly like a warm start.
  if (ctx.best_energy == kInfiniteEnergy) {
    const PoolEntry first = ring.pool(0).entry(0);
    Packet p;
    p.solution = first.solution;
    p.energy = model.energy(p.solution);
    p.algo = first.algo;
    p.op = first.op;
    p.pool_index = 0;
    ctx.handle_result(p);
  }

  if (cfg.mode == ExecutionMode::kThreaded) {
    run_threaded(ctx, group, seeder);
  } else {
    run_synchronous(ctx, group, seeder);
  }

  SolveResult r;
  r.best_solution = ctx.best;
  r.best_energy = ctx.best_energy;
  r.reached_target = ctx.reached_target;
  r.tts_seconds = ctx.tts_seconds;
  r.elapsed_seconds = ctx.clock.elapsed_seconds();
  r.batches = ctx.generated.load();
  r.restarts = ctx.restarts.load();
  r.cancelled = ctx.cancelled.load();
  r.stats = ctx.stats.snapshot();
  return r;
}

}  // namespace

DabsSolver::DabsSolver(SolverConfig config) : config_(std::move(config)) {
  config_.validate();
}

SolveResult DabsSolver::solve(const QuboModel& model) {
  return run_dabs(config_, model, nullptr, nullptr, 0.0);
}

SolveReport DabsSolver::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  SolverConfig cfg = config_;
  if (!request.stop.unbounded()) cfg.stop = request.stop;
  if (request.seed) cfg.seed = *request.seed;
  if (!request.warm_start.empty()) cfg.warm_start = request.warm_start;
  const SolveResult r = run_dabs(cfg, model, &request.stop_token,
                                 request.observer, request.tick_seconds);
  return make_report(name(), r);
}

}  // namespace dabs
