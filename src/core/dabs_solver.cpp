#include "core/dabs_solver.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "device/device_group.hpp"
#include "evolve/diversity_engine.hpp"
#include "rng/seeder.hpp"
#include "util/assert.hpp"

namespace dabs {

namespace {

/// Seconds a host thread blocks on its outbox when the device inbox is
/// full — long enough to sleep instead of spin, short enough that stop
/// requests are honored within one device batch.
constexpr double kOutboxWaitSeconds = 0.005;

EngineConfig engine_config(const SolverConfig& cfg) {
  EngineConfig e;
  e.islands = cfg.devices;
  e.pool_capacity = cfg.pool_capacity;
  e.algorithms = cfg.algorithms;
  e.operations = cfg.operations;
  e.explore_prob = cfg.explore_prob;
  e.op_params = cfg.op_params;
  e.restart_on_merge = cfg.restart_on_merge;
  e.migration_interval = cfg.migration_interval;
  e.migration_count = cfg.migration_count;
  return e;
}

/// State shared by the host pool threads for one solve() call.  The
/// StopContext's driving-thread surface (should_stop / add_work /
/// note_best) is serialized under `mu` so every host thread can act as the
/// driver; worker-safe polls go through expired() / the `stop` latch.
struct HostContext {
  DiversityEngine& engine;
  StopContext& ctx;
  std::mutex mu;  // guards ctx and the best (solution, energy) pair

  std::atomic<bool> stop{false};

  BitVector best;
  Energy best_energy = kInfiniteEnergy;
  std::uint64_t merge_check_interval = 64;

  HostContext(DiversityEngine& e, StopContext& c, std::size_t bits,
              std::uint64_t merge_interval)
      : engine(e), ctx(c), best(bits), merge_check_interval(merge_interval) {}

  /// Worker-safe stop poll for inner loops (migration entries, inbox
  /// back-pressure waits): the latch plus the thread-safe StopContext
  /// subset, no callbacks.
  bool stopping() {
    if (stop.load(std::memory_order_acquire)) return true;
    if (ctx.expired()) {
      stop.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Full driving-thread check: budget, wall clock, token, target, ticks.
  bool check_stop() {
    if (stop.load(std::memory_order_acquire)) return true;
    std::lock_guard lock(mu);
    if (ctx.should_stop()) stop.store(true, std::memory_order_release);
    return stop.load(std::memory_order_relaxed);
  }

  /// Hands a device result to the engine and updates the global best.
  /// note_best() latches the target / TTS and fires on_new_best — the
  /// observer contract (fast, thread-safe) keeps the lock hold short.
  void on_result(const Packet& p) {
    engine.accept_result(p);
    std::lock_guard lock(mu);
    if (p.energy < best_energy) {
      best_energy = p.energy;
      best = p.solution;
      engine.note_improvement(ctx.elapsed_seconds(), p.energy, p.algo, p.op);
      ctx.note_best(p.energy);
      if (ctx.reached_target()) stop.store(true, std::memory_order_release);
    }
  }

  /// Builds the next host->device packet for island `i` and charges one
  /// work unit against the batch budget.
  Packet make_packet(std::uint32_t i, Rng& rng) {
    Packet p = engine.next_packet(i, rng);
    std::lock_guard lock(mu);
    ctx.add_work(1);
    return p;
  }
};

void host_pool_thread(HostContext& hc, DeviceGroup& group, std::uint32_t i,
                      std::uint64_t seed) {
  Rng rng(seed);
  VirtualDevice& dev = group.device(i);
  const auto cancelled = [&hc] { return hc.stopping(); };
  std::uint64_t since_merge_check = 0;
  Packet res;
  while (!hc.stop.load(std::memory_order_acquire)) {
    // (a) Retire finished batches.  kClosed means the device already shut
    // down (another thread is tearing the run down) — nothing more to do.
    for (;;) {
      const auto st = dev.outbox().try_pop(res);
      if (st == PacketQueue::PopStatus::kClosed) return;
      if (st != PacketQueue::PopStatus::kItem) break;
      hc.on_result(res);
    }
    if (hc.check_stop()) break;
    // (b) Feed the device.
    Packet pkt = hc.make_packet(i, rng);
    while (!hc.stop.load(std::memory_order_acquire)) {
      if (dev.inbox().try_push(pkt)) break;
      // Inbox full: block on the outbox (bounded wait, no spinning) so the
      // pipeline drains while we hold the un-submitted packet.
      switch (dev.outbox().pop_wait(res, kOutboxWaitSeconds)) {
        case PacketQueue::PopStatus::kItem:
          hc.on_result(res);
          break;
        case PacketQueue::PopStatus::kClosed:
          return;
        case PacketQueue::PopStatus::kEmpty:
          break;
      }
      if (hc.check_stop()) break;
    }
    // (c) Housekeeping: ring migration for this island, merged-ring
    // restart checked by island 0 only.
    hc.engine.maybe_migrate(i, cancelled);
    if (i == 0 && ++since_merge_check >= hc.merge_check_interval) {
      since_merge_check = 0;
      hc.engine.check_restart();
    }
  }
}

void run_threaded(HostContext& hc, DeviceGroup& group,
                  MersenneSeeder& seeder) {
  group.start_all();
  std::vector<std::thread> hosts;
  hosts.reserve(group.device_count());
  const auto seeds = seeder.seeds(group.device_count());
  for (std::uint32_t i = 0; i < group.device_count(); ++i) {
    hosts.emplace_back(host_pool_thread, std::ref(hc), std::ref(group), i,
                       seeds[i]);
  }
  for (auto& t : hosts) t.join();
  group.stop_all();
}

void run_synchronous(HostContext& hc, DeviceGroup& group,
                     MersenneSeeder& seeder) {
  const std::size_t devices = group.device_count();
  std::vector<Rng> rngs;
  rngs.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) rngs.push_back(seeder.next_rng());
  std::vector<std::size_t> rr(devices, 0);
  const auto cancelled = [&hc] { return hc.stopping(); };

  std::uint64_t round = 0;
  while (!hc.check_stop()) {
    const auto i = static_cast<std::uint32_t>(round % devices);
    Packet pkt = hc.make_packet(i, rngs[i]);
    VirtualDevice& dev = group.device(i);
    const Packet out = dev.execute(pkt, rr[i]);
    rr[i] = (rr[i] + 1) % dev.block_count();
    hc.on_result(out);
    hc.engine.maybe_migrate(i, cancelled);
    ++round;
    if (round % (hc.merge_check_interval * devices) == 0) {
      hc.engine.check_restart();
    }
  }
}

/// One full framework run driven through the unified stop/progress
/// protocol; both execution modes share the HostContext surface, so
/// synchronous runs stay bit-identical with or without token/observer.
SolveResult run_dabs(const SolverConfig& cfg, const QuboModel& model,
                     StopContext& ctx) {
  DABS_CHECK(model.size() > 0, "cannot solve an empty model");
  DABS_CHECK(!cfg.stop.unbounded(),
             "refusing an unbounded run: set a target energy, time limit, "
             "work budget, or cancel via a bounded request");
  MersenneSeeder seeder(cfg.seed);
  DiversityEngine engine(engine_config(cfg), model.size(), seeder);
  DeviceGroup group(model, cfg.devices, cfg.device, seeder);
  HostContext hc(engine, ctx, model.size(), cfg.merge_check_interval);

  // Seed the pools (and the global best) with any warm-start solutions.
  for (std::size_t i = 0; i < cfg.warm_start.size(); ++i) {
    const BitVector& x = cfg.warm_start[i];
    DABS_CHECK(x.size() == model.size(),
               "warm-start solution length mismatch");
    Packet p;
    p.solution = x;
    p.energy = model.energy(x);
    p.algo = cfg.algorithms[i % cfg.algorithms.size()];
    p.op = cfg.operations[i % cfg.operations.size()];
    p.pool_index = static_cast<std::uint32_t>(i % cfg.devices);
    hc.on_result(p);
  }

  // A run cancelled before the first device result must still report a
  // real (solution, energy) pair, so fold one evaluated initial pool
  // entry into the global best exactly like a warm start.
  if (hc.best_energy == kInfiniteEnergy) {
    const PoolEntry first = engine.ring().pool(0).entry(0);
    Packet p;
    p.solution = first.solution;
    p.energy = model.energy(p.solution);
    p.algo = first.algo;
    p.op = first.op;
    p.pool_index = 0;
    hc.on_result(p);
  }

  if (cfg.mode == ExecutionMode::kThreaded) {
    run_threaded(hc, group, seeder);
  } else {
    run_synchronous(hc, group, seeder);
  }

  SolveResult r;
  r.best_solution = hc.best;
  r.best_energy = hc.best_energy;
  r.reached_target = ctx.reached_target();
  r.tts_seconds = ctx.tts_seconds();
  r.elapsed_seconds = ctx.elapsed_seconds();
  r.batches = ctx.work();
  r.restarts = static_cast<std::uint32_t>(engine.restarts());
  r.migrations = engine.migrations();
  r.cancelled = ctx.cancelled();
  r.stats = engine.stats();
  engine.fill_extras(r.extras);
  return r;
}

}  // namespace

DabsSolver::DabsSolver(SolverConfig config) : config_(std::move(config)) {
  config_.validate();
}

SolveResult DabsSolver::solve(const QuboModel& model) {
  StopContext ctx(config_.stop);
  return run_dabs(config_, model, ctx);
}

SolveReport DabsSolver::solve(const SolveRequest& request) {
  const QuboModel& model = request_model(request);
  SolverConfig cfg = config_;
  if (!request.stop.unbounded()) cfg.stop = request.stop;
  if (request.seed) cfg.seed = *request.seed;
  if (!request.warm_start.empty()) cfg.warm_start = request.warm_start;
  StopContext ctx(cfg.stop, request.stop_token, request.observer,
                  request.tick_seconds);
  const SolveResult r = run_dabs(cfg, model, ctx);
  return make_report(name(), r);
}

}  // namespace dabs
