// The unified solving surface (the load-bearing API for every layer built
// on top of the solvers: campaigns, servers, batching, multi-backend).
//
//   SolveRequest  — what to solve and when to stop: model + StopCondition +
//                   seed + warm-start vectors + cancellation + progress.
//   Solver        — the polymorphic interface all eight solvers implement
//                   (dabs, abs, sa, tabu, greedy-restart, path-relinking,
//                   subqubo, exhaustive; see core/solver_registry.hpp).
//   StopToken     — cooperative cancellation shared across threads.
//   StopContext   — the one shared stop/progress protocol: every solver
//                   polls it at a consistent per-iteration granularity
//                   instead of hand-rolling its own time-limit loop.
//
// Thread-safety contract: Solver implementations keep all per-run state
// local to solve(), so one instance may serve concurrent solve() calls
// (ParallelCampaign relies on this).  Observer callbacks may arrive from
// any host thread of a threaded solver — keep them fast and thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/solver_config.hpp"
#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"
#include "util/bit_vector.hpp"
#include "util/timer.hpp"

namespace dabs {

struct SolveReport;

/// Cooperative cancellation channel.  Copies share one flag, so a token
/// embedded in a SolveRequest can be fired from any other thread; solvers
/// poll it once per iteration and unwind within one iteration's work.
class StopToken {
 public:
  StopToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() const noexcept {
    flag_->store(true, std::memory_order_release);
  }
  bool stop_requested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Snapshot handed to observer callbacks.  `work` counts the solver's
/// natural unit: batches for the bulk solvers, flips for the baselines.
struct ProgressEvent {
  double elapsed_seconds = 0.0;
  Energy best_energy = kInfiniteEnergy;
  std::uint64_t work = 0;
};

/// Progress hooks.  Default-implemented so observers override only what
/// they need.  on_new_best fires on every global-best improvement;
/// on_tick fires at most once per SolveRequest::tick_seconds.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;
  virtual void on_new_best(const ProgressEvent& event) { (void)event; }
  virtual void on_tick(const ProgressEvent& event) { (void)event; }
};

/// One solve() invocation, fully specified.  The request owns everything
/// run-scoped; the Solver instance owns only its configuration.
struct SolveRequest {
  /// Model to solve.  Must be non-null and outlive the call.
  const QuboModel* model = nullptr;

  /// Stop conditions (target energy / wall clock / work budget).  When
  /// every field is unset, the solver falls back to the budget in its own
  /// configuration; the run must be bounded one way or the other.
  StopCondition stop;

  /// Master seed for the run; unset = the solver's configured seed.
  std::optional<std::uint64_t> seed;

  /// Solutions to start from (best effort: bulk solvers seed their pools,
  /// restart-style baselines use them as initial points).  Lengths must
  /// match the model.
  std::vector<BitVector> warm_start;

  /// Fire from another thread to cancel the run cooperatively.
  StopToken stop_token;

  /// Optional progress hooks; must outlive the call.
  ProgressObserver* observer = nullptr;
  /// Minimum seconds between on_tick callbacks (0 = no ticks).
  double tick_seconds = 0.0;
};

/// The interface every solver implements.  `solve` is re-entrant and safe
/// to call concurrently on one instance.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name ("dabs", "sa", ...); stable across releases.
  virtual std::string_view name() const noexcept = 0;

  /// Runs until a stop condition, the token, or the solver's own budget
  /// fires; never throws on cancellation (the report says what happened).
  virtual SolveReport solve(const SolveRequest& request) = 0;
};

/// The one shared stop/progress helper.  A solver's driving thread creates
/// one per run and:
///
///   - polls should_stop() once per outer iteration (sweep, restart,
///     tabu step, batch) — this is the repo-wide wall-clock granularity;
///   - reports work units via add_work() (counted against
///     StopCondition::max_batches);
///   - reports improvements via note_best(), which latches the target /
///     TTS and fires ProgressObserver::on_new_best.
///
/// Worker threads that must not fire callbacks poll the const, thread-safe
/// subset expired() instead (token + wall clock only).
class StopContext {
 public:
  explicit StopContext(StopCondition stop, StopToken token = {},
                       ProgressObserver* observer = nullptr,
                       double tick_seconds = 0.0);

  /// Builds the context for a request, substituting `fallback_time_limit`
  /// (a solver's own configured limit; 0 = none) when the request carries
  /// no stop condition at all.
  static StopContext for_request(const SolveRequest& request,
                                 double fallback_time_limit = 0.0);

  /// True when the run should end: token fired, wall clock or work budget
  /// exhausted, or the target energy was reached.  Also fires periodic
  /// on_tick callbacks.  Driving thread only.
  bool should_stop();

  /// Thread-safe subset of should_stop() for worker threads: token and
  /// wall clock only, no callbacks, no state updates.
  bool expired() const;

  /// Adds solver work units (flips or batches).
  void add_work(std::uint64_t units) noexcept { work_ += units; }

  /// Records a (possibly) improved best energy; cheap no-op when `energy`
  /// does not improve.  Latches reached-target / TTS, fires on_new_best.
  void note_best(Energy energy);

  std::uint64_t work() const noexcept { return work_; }
  Energy best_energy() const noexcept { return best_energy_; }
  bool cancelled() const noexcept { return cancelled_; }
  bool reached_target() const noexcept { return reached_target_; }
  /// Seconds from start to first reaching the target (valid only when
  /// reached_target()).
  double tts_seconds() const noexcept { return tts_seconds_; }
  double elapsed_seconds() const { return clock_.elapsed_seconds(); }
  const StopCondition& condition() const noexcept { return stop_; }

 private:
  StopCondition stop_;
  StopToken token_;
  ProgressObserver* observer_;
  double tick_seconds_;
  Stopwatch clock_;
  std::uint64_t work_ = 0;
  Energy best_energy_ = kInfiniteEnergy;
  bool reached_target_ = false;
  double tts_seconds_ = 0.0;
  bool cancelled_ = false;
  bool stopped_ = false;
  double last_tick_ = 0.0;
};

/// Validates and dereferences `request.model` (throws std::invalid_argument
/// on a null model or a warm-start length mismatch).
const QuboModel& request_model(const SolveRequest& request);

}  // namespace dabs
