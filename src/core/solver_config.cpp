#include "core/solver_config.hpp"

#include "util/assert.hpp"

namespace dabs {

void SolverConfig::validate() const {
  DABS_CHECK(devices > 0, "at least one device is required");
  DABS_CHECK(device.blocks > 0, "at least one block per device is required");
  DABS_CHECK(device.replicas > 0,
             "at least one replica per block is required");
  DABS_CHECK(device.replicas == 1 || mode == ExecutionMode::kThreaded,
             "replicas > 1 requires threaded execution mode");
  DABS_CHECK(pool_capacity > 0, "pool capacity must be positive");
  DABS_CHECK(!algorithms.empty(), "at least one main search algorithm");
  DABS_CHECK(!operations.empty(), "at least one genetic operation");
  DABS_CHECK(explore_prob >= 0.0 && explore_prob <= 1.0,
             "explore probability must be in [0,1]");
  DABS_CHECK(device.batch.search_flip_factor > 0.0,
             "search flip factor must be positive");
  DABS_CHECK(device.batch.batch_flip_factor > 0.0,
             "batch flip factor must be positive");
  DABS_CHECK(migration_interval == 0 || migration_count > 0,
             "migration enabled but migration_count is zero");
  // Note: an unbounded `stop` is legal at configuration time — the
  // effective stop condition may arrive later via a SolveRequest.  Solvers
  // re-check boundedness when a run actually starts.
}

}  // namespace dabs
