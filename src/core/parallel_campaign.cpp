#include "core/parallel_campaign.hpp"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace dabs {

ParallelCampaign::ParallelCampaign(SolverConfig base, std::size_t n_trials,
                                   std::size_t threads)
    : base_(std::move(base)), trials_(n_trials),
      threads_(std::max<std::size_t>(1, threads)) {
  DABS_CHECK(trials_ > 0, "campaign needs at least one trial");
  base_.mode = ExecutionMode::kSynchronous;
}

CampaignResult ParallelCampaign::run(const QuboModel& model,
                                     Energy target) const {
  CampaignResult out;
  out.final_energies.resize(trials_, kInfiniteEnergy);
  std::vector<SolveResult> results(trials_);

  ThreadPool pool(threads_);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(trials_);
  for (std::size_t t = 0; t < trials_; ++t) {
    tasks.push_back([this, &model, &results, target, t] {
      SolverConfig cfg = base_;
      cfg.seed = base_.seed + 0x9e3779b97f4a7c15ull * (t + 1);
      cfg.stop.target_energy = target;
      // Adjacent results[t] slots share cache lines, so each trial must
      // write its slot exactly once, at task end, with all solver working
      // state thread-local.  The named local keeps that single-write
      // property explicit (it is not a behavior change — a temporary
      // already guaranteed it).
      SolveResult local = DabsSolver(cfg).solve(model);
      results[t] = std::move(local);
    });
  }
  pool.submit_batch(std::move(tasks));
  pool.wait_idle();

  for (std::size_t t = 0; t < trials_; ++t) {
    const SolveResult& r = results[t];
    ++out.runs;
    out.final_energies[t] = r.best_energy;
    if (r.best_energy < out.best_energy) out.best_energy = r.best_energy;
    if (r.reached_target && r.best_energy <= target) {
      ++out.successes;
      out.tts.add(r.tts_seconds);
      out.tts_samples.push_back(r.tts_seconds);
    }
  }
  return out;
}

CampaignResult ParallelCampaign::run_solver(const QuboModel& model,
                                            Energy target, Solver& solver,
                                            const SolveRequest& proto) const {
  const Campaign protocol(base_, trials_);
  std::vector<SolveReport> reports(trials_);

  ThreadPool pool(threads_);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(trials_);
  for (std::size_t t = 0; t < trials_; ++t) {
    tasks.push_back([&protocol, &model, &reports, &solver, &proto, target,
                     t] {
      // Same single-write-per-slot discipline as run(): the request and
      // all solver state are thread-local; only reports[t] is shared.
      SolveReport local =
          solver.solve(protocol.make_trial_request(model, target, t, proto));
      reports[t] = std::move(local);
    });
  }
  pool.submit_batch(std::move(tasks));
  pool.wait_idle();

  CampaignResult out;
  for (const SolveReport& r : reports) {
    accumulate_trial(out, target, r.best_energy, r.reached_target,
                     r.tts_seconds);
  }
  return out;
}

}  // namespace dabs
