#include "core/parallel_campaign.hpp"

#include <algorithm>
#include <mutex>

#include "util/assert.hpp"

namespace dabs {

ParallelCampaign::ParallelCampaign(SolverConfig base, std::size_t n_trials,
                                   std::size_t threads)
    : base_(std::move(base)), trials_(n_trials),
      threads_(std::max<std::size_t>(1, threads)) {
  DABS_CHECK(trials_ > 0, "campaign needs at least one trial");
  base_.mode = ExecutionMode::kSynchronous;
}

CampaignResult ParallelCampaign::run(const QuboModel& model,
                                     Energy target) const {
  CampaignResult out;
  out.final_energies.resize(trials_, kInfiniteEnergy);
  std::vector<SolveResult> results(trials_);

  ThreadPool pool(threads_);
  for (std::size_t t = 0; t < trials_; ++t) {
    pool.submit([this, &model, &results, target, t] {
      SolverConfig cfg = base_;
      cfg.seed = base_.seed + 0x9e3779b97f4a7c15ull * (t + 1);
      cfg.stop.target_energy = target;
      results[t] = DabsSolver(cfg).solve(model);
    });
  }
  pool.wait_idle();

  for (std::size_t t = 0; t < trials_; ++t) {
    const SolveResult& r = results[t];
    ++out.runs;
    out.final_energies[t] = r.best_energy;
    if (r.best_energy < out.best_energy) out.best_energy = r.best_energy;
    if (r.reached_target && r.best_energy <= target) {
      ++out.successes;
      out.tts.add(r.tts_seconds);
      out.tts_samples.push_back(r.tts_seconds);
    }
  }
  return out;
}

}  // namespace dabs
