// Island model (paper §IV-B): one solution pool per device arranged on a
// ring.  DABS performs no migration; inter-pool mixing happens only through
// the Xrossover operation, which crosses a solution from pool i with one
// from its ring neighbor pool (i+1) mod P.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ga/solution_pool.hpp"
#include "rng/seeder.hpp"

namespace dabs {

class IslandRing {
 public:
  /// `pools` pools of `capacity` entries over `n`-bit solutions, each
  /// initialized full of random +infinity-energy entries from `seeder`.
  IslandRing(std::size_t pools, std::size_t capacity, std::size_t n,
             MersenneSeeder& seeder);

  std::size_t pool_count() const noexcept { return pools_.size(); }

  SolutionPool& pool(std::size_t i) { return *pools_[i]; }
  const SolutionPool& pool(std::size_t i) const { return *pools_[i]; }

  std::size_t neighbor_index(std::size_t i) const {
    return (i + 1) % pools_.size();
  }
  SolutionPool& neighbor(std::size_t i) { return *pools_[neighbor_index(i)]; }
  const SolutionPool& neighbor(std::size_t i) const {
    return *pools_[neighbor_index(i)];
  }

  /// Lowest energy across all pools.
  Energy global_best_energy() const;

  /// True when every pool's best solution is identical — the "merged ring"
  /// condition after which the paper restarts from random pools.
  bool merged() const;

  /// Re-randomizes every pool (the restart).
  void restart_all(MersenneSeeder& seeder);

 private:
  std::vector<std::unique_ptr<SolutionPool>> pools_;
};

}  // namespace dabs
