#include "problems/pegasus.hpp"

#include <algorithm>
#include <numeric>

#include "rng/xorshift.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

namespace {

// Track offsets of the standard Pegasus layout (dwave-networkx defaults).
constexpr int kS0[12] = {2, 2, 2, 2, 10, 10, 10, 10, 6, 6, 6, 6};
constexpr int kS1[12] = {6, 6, 6, 6, 2, 2, 2, 2, 10, 10, 10, 10};

}  // namespace

PegasusGraph::PegasusGraph(std::size_t m) : m_(m) {
  DABS_CHECK(m >= 2, "Pegasus requires m >= 2");
  nodes_ = 24 * m * (m - 1);

  const auto zmax = m - 1;  // z in [0, m-1)
  auto id = [&](unsigned u, std::size_t w, unsigned k, std::size_t z) {
    return static_cast<VarIndex>(((u * m_ + w) * 12 + k) * zmax + z);
  };

  // External couplers: consecutive z along a track.
  for (unsigned u = 0; u < 2; ++u) {
    for (std::size_t w = 0; w < m; ++w) {
      for (unsigned k = 0; k < 12; ++k) {
        for (std::size_t z = 0; z + 1 < zmax; ++z) {
          edges_.emplace_back(id(u, w, k, z), id(u, w, k, z + 1));
        }
      }
    }
  }
  // Odd couplers: track pairs (2j, 2j+1).
  for (unsigned u = 0; u < 2; ++u) {
    for (std::size_t w = 0; w < m; ++w) {
      for (unsigned k = 0; k < 12; k += 2) {
        for (std::size_t z = 0; z < zmax; ++z) {
          edges_.emplace_back(id(u, w, k, z), id(u, w, k + 1, z));
        }
      }
    }
  }
  // Internal couplers by geometric crossing.  For vertical (0, w, k, z):
  // column X = 12w + k, rows [12z + S0[k], +11].  Each of the 12 row values
  // Y identifies one horizontal track (w' = Y/12, k' = Y%12); the crossing
  // horizontal's z' must satisfy 12z' + S1[k'] <= X <= 12z' + S1[k'] + 11.
  for (std::size_t w = 0; w < m; ++w) {
    for (unsigned k = 0; k < 12; ++k) {
      for (std::size_t z = 0; z < zmax; ++z) {
        const long long x = static_cast<long long>(12 * w + k);
        const long long ylo = static_cast<long long>(12 * z) + kS0[k];
        for (long long y = ylo; y < ylo + 12; ++y) {
          const auto wp = static_cast<std::size_t>(y / 12);
          const auto kp = static_cast<unsigned>(y % 12);
          if (wp >= m) continue;
          const long long zp12 = x - kS1[kp];
          if (zp12 < 0) continue;
          const auto zp = static_cast<std::size_t>(zp12 / 12);
          if (zp >= zmax) continue;
          edges_.emplace_back(id(0, w, k, z), id(1, wp, kp, zp));
        }
      }
    }
  }
}

VarIndex PegasusGraph::node_id(const PegasusCoord& c) const {
  const auto zmax = m_ - 1;
  DABS_CHECK(c.u < 2 && c.w < m_ && c.k < 12 && c.z < zmax,
             "Pegasus coordinate out of range");
  return static_cast<VarIndex>(((c.u * m_ + c.w) * 12 + c.k) * zmax + c.z);
}

PegasusCoord PegasusGraph::coord(VarIndex v) const {
  const auto zmax = m_ - 1;
  DABS_CHECK(v < node_count(), "node id out of range");
  PegasusCoord c;
  c.z = static_cast<std::uint16_t>(v % zmax);
  v = static_cast<VarIndex>(v / zmax);
  c.k = static_cast<std::uint8_t>(v % 12);
  v = static_cast<VarIndex>(v / 12);
  c.w = static_cast<std::uint16_t>(v % m_);
  c.u = static_cast<std::uint8_t>(v / m_);
  return c;
}

std::vector<std::uint32_t> PegasusGraph::degrees() const {
  std::vector<std::uint32_t> deg(node_count(), 0);
  for (const auto& [a, b] : edges_) {
    ++deg[a];
    ++deg[b];
  }
  return deg;
}

WorkingGraph apply_faults(const PegasusGraph& g, std::size_t target_nodes,
                          std::uint64_t seed) {
  DABS_CHECK(target_nodes >= 1 && target_nodes <= g.node_count(),
             "target node count out of range");
  // Fisher-Yates selection of the surviving nodes.
  std::vector<VarIndex> ids(g.node_count());
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  for (std::size_t i = ids.size() - 1; i > 0; --i) {
    const std::size_t j = rng.next_index(i + 1);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(target_nodes);
  std::sort(ids.begin(), ids.end());

  std::vector<VarIndex> relabel(g.node_count(),
                                static_cast<VarIndex>(g.node_count()));
  for (std::size_t i = 0; i < ids.size(); ++i) relabel[ids[i]] = static_cast<VarIndex>(i);

  WorkingGraph out;
  out.node_count = target_nodes;
  out.keep = ids;
  out.edges.reserve(g.edges().size());
  const auto dead = static_cast<VarIndex>(g.node_count());
  for (const auto& [a, b] : g.edges()) {
    if (relabel[a] != dead && relabel[b] != dead) {
      out.edges.emplace_back(relabel[a], relabel[b]);
    }
  }
  return out;
}

}  // namespace dabs::problems
