// Quantum Annealer Simulation Problem (paper §II-C, §VI-C): a random Ising
// model at resolution r on the (faulty) Pegasus working graph, converted to
// the equivalent QUBO model.
//
// At resolution r every interaction J_{i,j} is a uniformly random *non-zero*
// integer in [-r, r] and every bias h_i a uniformly random non-zero integer
// in [-4r, 4r] — the integer rescaling of D-Wave's J in [-1,1], h in [-4,4]
// ranges described in the paper.
//
// The real Advantage 4.1 working graph has 5,627 of P16's 5,760 qubits; our
// fault model deletes the same number of random qubits.  (The paper also
// quotes 40,279 edges; an induced subgraph after 133 random deletions
// necessarily has fewer — see EXPERIMENTS.md for the bookkeeping.)
#pragma once

#include <cstdint>

#include "problems/pegasus.hpp"
#include "qubo/conversion.hpp"
#include "qubo/ising_model.hpp"
#include "qubo/qubo_model.hpp"

namespace dabs::problems {

struct QaspInstance {
  IsingModel ising;
  QuboModel qubo;
  Energy offset;  // H(S) = E(X) + offset
  int resolution;
  std::size_t nodes;
  std::size_t edge_count;
};

struct QaspParams {
  int resolution = 1;            // r: 1, 16, 256 in the paper
  std::size_t pegasus_m = 16;    // P16 = the Advantage topology
  std::size_t working_nodes = 5627;  // Advantage 4.1 working-qubit count
  std::uint64_t graph_seed = 41;     // fault pattern
  std::uint64_t value_seed = 42;     // J/h values
};

/// Generates a QASP instance (Ising + converted QUBO).
QaspInstance make_qasp(const QaspParams& params = {});

/// Small-scale variant for tests: same construction on P(m), no faults
/// unless working_nodes < node count.
QaspInstance make_qasp_small(int resolution, std::size_t pegasus_m,
                             std::uint64_t seed);

}  // namespace dabs::problems
