#include "problems/qap.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "qubo/qubo_builder.hpp"
#include "rng/xorshift.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

Energy QapInstance::cost(const std::vector<VarIndex>& g) const {
  DABS_CHECK(g.size() == n, "assignment length mismatch");
  Energy c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t i2 = 0; i2 < n; ++i2) {
      if (i == i2) continue;
      c += Energy{l(i, i2)} * Energy{d(g[i], g[i2])};
    }
  }
  return c;
}

Weight min_safe_qap_penalty(const QapInstance& inst) {
  const std::size_t n = inst.n;
  DABS_CHECK(n >= 2, "QAP needs at least two facilities");
  bool nonnegative = true;
  for (const int v : inst.flow) nonnegative = nonnegative && v >= 0;
  for (const int v : inst.dist) nonnegative = nonnegative && v >= 0;

  // Dominance certificate (any sign): one assignment bit interacts with at
  // most n-1 others at 2 max|l| max|d| each, so above this bound breaking
  // one-hot feasibility never pays.
  int max_l = 0, max_d = 0;
  for (const int v : inst.flow) max_l = std::max(max_l, std::abs(v));
  for (const int v : inst.dist) max_d = std::max(max_d, std::abs(v));
  long long bound = 2LL * max_l * max_d * static_cast<long long>(n) + 1;

  if (nonnegative) {
    // Tighter certificate when every interaction term is >= 0: the penalty
    // structure alone gives the documented infeasible floor
    // E(X) >= -(n-1) p, so the optimum stays (strictly) feasible for any
    // p above some feasible assignment's cost.  The identity assignment is
    // the cheapest to evaluate; either certificate suffices, take the min.
    std::vector<VarIndex> id(n);
    std::iota(id.begin(), id.end(), 0);
    bound = std::min(bound, static_cast<long long>(inst.cost(id)) + 1);
  }
  bound = std::max(bound, 1LL);
  DABS_CHECK(bound <= std::numeric_limits<Weight>::max() / 4,
             "instance magnitudes too large for an int32 penalty");
  return static_cast<Weight>(bound);
}

Weight default_qap_penalty(const QapInstance& inst) {
  return min_safe_qap_penalty(inst);
}

QapQubo qap_to_qubo(const QapInstance& inst, Weight penalty) {
  const std::size_t n = inst.n;
  DABS_CHECK(n >= 2, "QAP needs at least two facilities");
  if (penalty == 0) penalty = default_qap_penalty(inst);
  DABS_CHECK(penalty > 0, "penalty must be positive");

  const auto N = n * n;
  QuboBuilder b(N);
  auto var = [n](std::size_t i, std::size_t j) {
    return static_cast<VarIndex>(i * n + j);
  };

  // Diagonal: -p per variable.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b.add_linear(var(i, j), static_cast<Weight>(-penalty));
    }
  }
  // Same-row pairs (one facility, two locations): +p.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t j2 = j + 1; j2 < n; ++j2) {
        b.add_quadratic(var(i, j), var(i, j2), penalty);
      }
    }
  }
  // i != i' pairs: +p when same column, symmetrized l*d cross terms else.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t i2 = i + 1; i2 < n; ++i2) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t j2 = 0; j2 < n; ++j2) {
          if (j == j2) {
            b.add_quadratic(var(i, j), var(i2, j), penalty);
          } else {
            const long long w = static_cast<long long>(inst.l(i, i2)) *
                                    inst.d(j, j2) +
                                static_cast<long long>(inst.l(i2, i)) *
                                    inst.d(j2, j);
            if (w != 0) {
              DABS_CHECK(std::abs(w) <= std::numeric_limits<Weight>::max() / 2,
                         "flow*distance product overflows int32");
              b.add_quadratic(var(i, j), var(i2, j2),
                              static_cast<Weight>(w));
            }
          }
        }
      }
    }
  }
  return {b.build(), penalty, n};
}

std::optional<std::vector<VarIndex>> decode_assignment(const BitVector& x,
                                                       std::size_t n) {
  DABS_CHECK(x.size() == n * n, "one-hot vector length mismatch");
  std::vector<VarIndex> g(n, static_cast<VarIndex>(n));
  std::vector<bool> location_used(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t ones = 0, loc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (x.get(i * n + j)) {
        ++ones;
        loc = j;
      }
    }
    if (ones != 1) return std::nullopt;          // row violated
    if (location_used[loc]) return std::nullopt;  // column violated
    location_used[loc] = true;
    g[i] = static_cast<VarIndex>(loc);
  }
  return g;
}

BitVector encode_assignment(const std::vector<VarIndex>& g) {
  const std::size_t n = g.size();
  BitVector x(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    DABS_CHECK(g[i] < n, "location index out of range");
    x.set(i * n + g[i], true);
  }
  return x;
}

Energy qap_brute_force(const QapInstance& inst,
                       std::vector<VarIndex>* best_g) {
  DABS_CHECK(inst.n <= 10, "brute force limited to n <= 10");
  std::vector<VarIndex> g(inst.n);
  std::iota(g.begin(), g.end(), 0);
  Energy best = kInfiniteEnergy;
  do {
    const Energy c = inst.cost(g);
    if (c < best) {
      best = c;
      if (best_g) *best_g = g;
    }
  } while (std::next_permutation(g.begin(), g.end()));
  return best;
}

QapInstance make_uniform_qap(std::size_t n, int max_value, std::uint64_t seed,
                             std::string name) {
  DABS_CHECK(n >= 2 && max_value >= 1, "invalid generator parameters");
  Rng rng(seed);
  QapInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.flow.assign(n * n, 0);
  inst.dist.assign(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      inst.flow[i * n + j] = 1 + static_cast<int>(rng.next_index(max_value));
      inst.dist[i * n + j] = 1 + static_cast<int>(rng.next_index(max_value));
    }
  }
  return inst;
}

QapInstance make_grid_qap(std::size_t rows, std::size_t cols, int max_flow,
                          std::uint64_t seed, std::string name) {
  DABS_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
  DABS_CHECK(max_flow >= 1, "invalid max flow");
  const std::size_t n = rows * cols;
  Rng rng(seed);
  QapInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.flow.assign(n * n, 0);
  inst.dist.assign(n * n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b2 = 0; b2 < n; ++b2) {
      if (a == b2) continue;
      const auto ra = a / cols, ca = a % cols;
      const auto rb = b2 / cols, cb = b2 % cols;
      inst.dist[a * n + b2] =
          static_cast<int>((ra > rb ? ra - rb : rb - ra) +
                           (ca > cb ? ca - cb : cb - ca));
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b2 = a + 1; b2 < n; ++b2) {
      const int f = static_cast<int>(rng.next_index(max_flow + 1));
      inst.flow[a * n + b2] = f;
      inst.flow[b2 * n + a] = f;
    }
  }
  return inst;
}

}  // namespace dabs::problems
