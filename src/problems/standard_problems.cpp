#include "problems/standard_problems.hpp"

#include <sstream>
#include <utility>

#include "qubo/conversion.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

namespace {

std::string identity_mismatch(const char* identity, Energy actual,
                              Energy expected) {
  std::ostringstream os;
  os << "energy<->objective identity " << identity << " violated: E(X) = "
     << actual << ", expected " << expected;
  return os.str();
}

}  // namespace

// ---- MaxCut --------------------------------------------------------------

MaxCutProblem::MaxCutProblem(MaxCutInstance inst, QuboBackend backend,
                             std::string key)
    : ProblemBase("maxcut", inst.name, std::move(key)),
      inst_(std::move(inst)),
      backend_(backend) {}

QuboModel MaxCutProblem::encode() const {
  return maxcut_to_qubo(inst_, backend_);
}

DomainSolution MaxCutProblem::decode(const BitVector& x) const {
  DomainSolution sol;
  sol.feasible = true;  // every bit vector is a partition
  sol.objective = inst_.cut_value(x);
  sol.objective_name = "cut";
  return sol;
}

VerifyResult MaxCutProblem::verify(
    const BitVector& x, std::optional<Energy> model_energy) const {
  VerifyResult v;
  v.feasible = true;
  const Energy e = model_energy_of(x, model_energy);
  const Energy cut = inst_.cut_value(x);
  if (e != -cut) {
    v.message = identity_mismatch("E(X) = -cut(X)", e, -cut);
    return v;
  }
  v.ok = true;
  return v;
}

std::string MaxCutProblem::describe() const {
  std::ostringstream os;
  os << "MaxCut " << name() << ": " << inst_.n << " nodes, "
     << inst_.edges.size() << " edges";
  return os.str();
}

// ---- QAP -----------------------------------------------------------------

QapProblem::QapProblem(QapInstance inst, Weight penalty, std::string key)
    : QapProblem("qap", std::move(inst), penalty, std::move(key)) {}

QapProblem::QapProblem(std::string family, QapInstance inst, Weight penalty,
                       std::string key)
    : ProblemBase(std::move(family), inst.name, std::move(key)),
      inst_(std::move(inst)),
      min_safe_(min_safe_qap_penalty(inst_)) {
  penalty_ = penalty == 0 ? min_safe_ : penalty;
  DABS_CHECK(penalty_ > 0, "penalty must be positive");
}

QuboModel QapProblem::encode() const {
  return qap_to_qubo(inst_, penalty_).model;
}

DomainSolution QapProblem::decode(const BitVector& x) const {
  DomainSolution sol;
  sol.objective_name = "assignment_cost";
  const auto g = decode_assignment(x, inst_.n);
  if (!g) return sol;  // a row or column without exactly one 1
  sol.feasible = true;
  sol.objective = inst_.cost(*g);
  sol.assignment = *g;
  return sol;
}

VerifyResult QapProblem::verify(const BitVector& x,
                                std::optional<Energy> model_energy) const {
  VerifyResult v;
  const DomainSolution sol = decode(x);
  v.feasible = sol.feasible;
  if (penalty_ < min_safe_) {
    std::ostringstream os;
    os << "under-penalized encode: penalty " << penalty_
       << " is below the certified bound " << min_safe_
       << " (infeasible vectors may undercut the feasible optimum)";
    v.message = os.str();
    return v;
  }
  if (!v.feasible) {
    v.message =
        "solution is not one-hot feasible (a row or column without exactly "
        "one 1)";
    return v;
  }
  const Energy e = model_energy_of(x, model_energy);
  const Energy expected =
      sol.objective - Energy{penalty_} * Energy(inst_.n);
  if (e != expected) {
    v.message = identity_mismatch("E(X) = C(g_X) - n p", e, expected);
    return v;
  }
  v.ok = true;
  return v;
}

std::string QapProblem::describe() const {
  std::ostringstream os;
  os << "QAP " << name() << ": n = " << inst_.n << " (" << inst_.n * inst_.n
     << " one-hot variables), penalty " << penalty_ << " (certified >= "
     << min_safe_ << ")";
  return os.str();
}

// ---- TSP -----------------------------------------------------------------

TspProblem::TspProblem(TspInstance inst, Weight penalty, std::string key)
    : QapProblem("tsp", tsp_to_qap(inst), penalty, std::move(key)),
      tsp_(std::move(inst)) {}

DomainSolution TspProblem::decode(const BitVector& x) const {
  // The QAP assignment maps tour position -> city; its ordered cost under
  // the circular flow is exactly the closed tour length.
  DomainSolution sol = QapProblem::decode(x);
  sol.objective_name = "tour_length";
  if (sol.feasible) sol.objective = tsp_.tour_length(sol.assignment);
  return sol;
}

std::string TspProblem::describe() const {
  std::ostringstream os;
  os << "TSP " << tsp_.name << ": " << tsp_.n
     << " cities via circular-flow QAP, penalty " << penalty();
  return os.str();
}

// ---- QASP ----------------------------------------------------------------

namespace {

std::string qasp_name(const QaspParams& p) {
  std::ostringstream os;
  os << 'P' << p.pegasus_m << "-r" << p.resolution;
  return os.str();
}

}  // namespace

QaspProblem::QaspProblem(QaspParams params, std::string key)
    : ProblemBase("qasp", qasp_name(params), std::move(key)),
      inst_(make_qasp(params)) {}

QuboModel QaspProblem::encode() const { return inst_.qubo; }

DomainSolution QaspProblem::decode(const BitVector& x) const {
  DomainSolution sol;
  sol.feasible = true;  // every spin vector is a valid Ising state
  sol.objective = inst_.ising.hamiltonian(to_spins(x));
  sol.objective_name = "ising_energy";
  return sol;
}

VerifyResult QaspProblem::verify(const BitVector& x,
                                 std::optional<Energy> model_energy) const {
  VerifyResult v;
  v.feasible = true;
  const Energy e = model_energy_of(x, model_energy);
  const Energy h = inst_.ising.hamiltonian(to_spins(x));
  if (h != e + inst_.offset) {
    v.message = identity_mismatch("H(S) = E(X) + offset", e, h - inst_.offset);
    return v;
  }
  v.ok = true;
  return v;
}

std::string QaspProblem::describe() const {
  std::ostringstream os;
  os << "QASP r=" << inst_.resolution << " on " << inst_.nodes
     << " Pegasus qubits, " << inst_.edge_count << " couplers";
  return os.str();
}

// ---- Clique-embedded QUBO ------------------------------------------------

EmbeddedQuboProblem::EmbeddedQuboProblem(QuboModel logical,
                                         std::size_t chimera_m,
                                         Weight chain_strength,
                                         std::string name, std::string key)
    : ProblemBase("chimera", std::move(name), std::move(key)),
      logical_(std::move(logical)),
      graph_(chimera_m),
      embedding_(chimera_clique_embedding(graph_, logical_.size())),
      chain_strength_(chain_strength) {
  validate_clique_embedding(graph_, embedding_);
}

QuboModel EmbeddedQuboProblem::encode() const {
  return embed_qubo(logical_, graph_, embedding_, chain_strength_);
}

DomainSolution EmbeddedQuboProblem::decode(const BitVector& x) const {
  DomainSolution sol;
  const BitVector logical_x = unembed(x, embedding_);
  sol.feasible = chains_intact(x, embedding_);
  sol.objective = logical_.energy(logical_x);
  sol.objective_name = "logical_energy";
  sol.extras["chains_intact"] = sol.feasible ? "true" : "false";
  if (logical_x.size() <= 64) {
    sol.extras["logical_solution"] = logical_x.to_string();
  }
  return sol;
}

VerifyResult EmbeddedQuboProblem::verify(
    const BitVector& x, std::optional<Energy> model_energy) const {
  VerifyResult v;
  v.feasible = chains_intact(x, embedding_);
  if (!v.feasible) {
    v.message =
        "at least one chain is broken (majority-vote decode is a heuristic "
        "repair, not a certificate)";
    return v;
  }
  // Unanimous chains: penalties vanish, the split linear weights re-sum,
  // and each logical edge sits on exactly one physical coupler — so the
  // physical energy equals the logical energy of the decoded vector.
  const Energy e = model_energy_of(x, model_energy);
  const Energy logical_e = logical_.energy(unembed(x, embedding_));
  if (e != logical_e) {
    v.message =
        identity_mismatch("E_physical(X) = E_logical(decode(X))", e,
                          logical_e);
    return v;
  }
  v.ok = true;
  return v;
}

std::string EmbeddedQuboProblem::describe() const {
  std::ostringstream os;
  os << "Embedded " << name() << ": " << logical_.size()
     << " logical vars on Chimera C" << graph_.m() << " ("
     << graph_.node_count() << " qubits, chains of length "
     << embedding_.max_chain_length() << ")";
  return os.str();
}

// ---- Raw QUBO ------------------------------------------------------------

RawQuboProblem::RawQuboProblem(QuboModel model, std::string name,
                               std::string key)
    : ProblemBase("qubo", std::move(name), std::move(key)),
      model_(std::move(model)) {}

QuboModel RawQuboProblem::encode() const { return model_; }

DomainSolution RawQuboProblem::decode(const BitVector& x) const {
  DomainSolution sol;
  sol.feasible = true;
  sol.objective = model_.energy(x);
  sol.objective_name = "energy";
  return sol;
}

VerifyResult RawQuboProblem::verify(
    const BitVector& x, std::optional<Energy> model_energy) const {
  VerifyResult v;
  v.feasible = true;
  const Energy e = model_energy_of(x, model_energy);
  const Energy own = model_.energy(x);
  if (e != own) {
    v.message = identity_mismatch("E(X) = E(X)", e, own);
    return v;
  }
  v.ok = true;
  return v;
}

std::string RawQuboProblem::describe() const {
  return "Raw " + model_.describe() + " (" + name() + ")";
}

}  // namespace dabs::problems
