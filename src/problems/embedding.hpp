// Minor embedding of dense QUBO models into annealer topologies (paper
// §I-A: "a 177-node complete graph can be embedded into a Pegasus graph;
// hence D-Wave Advantage can be used to perform quantum annealing for
// 177-spin Ising models with any graph topology").
//
// This module implements the classic *clique embedding* into Chimera C(m):
// logical variable i = (c, k) with c = i/4, k = i%4 is represented by the
// chain
//
//   vertical strip  : (y, c, 0, k) for y in [0, m)
//   horizontal strip: (c, x, 1, k) for x in [0, m)
//
// joined by the internal coupler at cell (c, c).  Chains of two logical
// variables i = (c,k), j = (c',k') always cross at cell (c', c) with an
// internal coupler, so any K_{4m} fits into C(m) with chains of length 2m.
//
// embed_qubo lowers a logical model onto the physical graph: linear terms
// are split across the chain, each quadratic term is placed on one physical
// coupler between the two chains, and every chain edge receives the
// penalty  S * (x_a + x_b - 2 x_a x_b)  which is 0 when the chain agrees
// and +S per broken edge.  unembed() recovers logical values by majority
// vote over each chain.
#pragma once

#include <vector>

#include "problems/chimera.hpp"
#include "qubo/qubo_model.hpp"
#include "util/bit_vector.hpp"

namespace dabs::problems {

struct Embedding {
  /// chains[i] = physical qubits representing logical variable i.
  std::vector<std::vector<VarIndex>> chains;
  std::size_t physical_nodes = 0;

  std::size_t logical_count() const noexcept { return chains.size(); }
  std::size_t max_chain_length() const;
};

/// Clique embedding of `logical_vars` (<= 4m) variables into C(m).
Embedding chimera_clique_embedding(const ChimeraGraph& g,
                                   std::size_t logical_vars);

/// Validates an embedding against a physical edge set: chains non-empty,
/// disjoint, internally connected, and every logical pair (that needs a
/// coupler in a complete graph) joined by at least one physical edge.
/// Throws std::invalid_argument describing the first violation.
void validate_clique_embedding(const ChimeraGraph& g, const Embedding& emb);

/// Lowers `logical` onto the physical topology.  `chain_strength` 0 picks
/// an automatic value: 1 + the largest total logical weight any variable
/// participates in (so breaking a chain never pays).
QuboModel embed_qubo(const QuboModel& logical, const ChimeraGraph& g,
                     const Embedding& emb, Weight chain_strength = 0);

/// Majority-vote decode of a physical solution back to logical variables.
BitVector unembed(const BitVector& physical, const Embedding& emb);

/// True when every chain is unanimous in `physical`.
bool chains_intact(const BitVector& physical, const Embedding& emb);

}  // namespace dabs::problems
