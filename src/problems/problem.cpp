#include "problems/problem.hpp"

#include <sstream>
#include <utility>

namespace dabs {

ProblemBase::ProblemBase(std::string family, std::string name,
                         std::string key)
    : family_(std::move(family)),
      name_(std::move(name)),
      key_(std::move(key)) {
  if (key_.empty()) key_ = family_ + "(" + name_ + ")";
}

Energy ProblemBase::model_energy_of(
    const BitVector& x, const std::optional<Energy>& provided) const {
  return provided ? *provided : encode().energy(x);
}

void annotate_extras(const Problem& problem, const DomainSolution& solution,
                     const VerifyResult& verdict,
                     std::map<std::string, std::string>& extras) {
  extras["problem"] = problem.cache_key();
  extras["objective_name"] = solution.objective_name;
  extras["feasible"] = solution.feasible ? "true" : "false";
  if (solution.feasible) {
    extras["objective"] = std::to_string(solution.objective);
  }
  extras["verified"] = verdict.ok ? "true" : "false";
  if (!verdict.ok) extras["verify_message"] = verdict.message;
  // Small permutations ride along readably; large ones belong in a
  // --save-solution file, not a report line.
  if (!solution.assignment.empty() && solution.assignment.size() <= 64) {
    std::ostringstream os;
    for (std::size_t i = 0; i < solution.assignment.size(); ++i) {
      if (i) os << ' ';
      os << solution.assignment[i];
    }
    extras["assignment"] = os.str();
  }
  for (const auto& [k, v] : solution.extras) extras[k] = v;
}

}  // namespace dabs
