// The unified problem surface — the mirror image of core/solver.hpp for the
// *instance* side of a solve.  Every domain workload the paper evaluates
// (MaxCut §II-A/§VI-A, QAP and TSP-as-QAP §II-B, QASP §II-C, minor-embedded
// models §I-A, plus raw QUBO files) presents one interface:
//
//   encode()   — instance -> QuboModel, reusing the existing reductions
//                (maxcut_to_qubo, qap_to_qubo, ising_to_qubo, embed_qubo).
//   decode()   — solution bits -> a DomainSolution carrying the *domain*
//                objective (cut weight, assignment cost + layout, tour order
//                + length, Ising energy) instead of the bare QUBO energy.
//   verify()   — feasibility (one-hot rows/columns, intact chains) plus the
//                energy<->objective identity of the reduction (e.g.
//                E(X) = -cut(X), E(X) = C(g_X) - n p) and, for penalty
//                encodes, that the penalty is certified safe.
//   describe() — one-line human description.
//
// Concrete adapters live in problems/standard_problems.hpp; the name ->
// factory registry that fronts generators and file loaders alike is in
// problems/problem_registry.hpp (the Solver/SolverRegistry split, mirrored).
//
// Problems are immutable after construction; every method is const and safe
// to call concurrently.  encode() builds a fresh model each call — callers
// that need the model repeatedly keep their own copy (the CLI) or intern it
// in a service::ModelCache under cache_key() (the batch front end), so one
// instance is never stored twice.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

/// A solution decoded back into domain terms.
struct DomainSolution {
  /// Domain constraints hold (always true for unconstrained families like
  /// MaxCut; one-hot rows/columns for QAP/TSP; intact chains for embeds).
  bool feasible = false;

  /// The domain objective, valid when feasible: cut weight for MaxCut,
  /// assignment cost for QAP, tour length for TSP, Ising Hamiltonian for
  /// QASP, logical energy for embedded models, the QUBO energy itself for
  /// raw models.
  Energy objective = 0;

  /// What `objective` measures ("cut", "assignment_cost", "tour_length",
  /// "ising_energy", "logical_energy", "energy").
  std::string objective_name;

  /// Permutation-shaped decodes: the QAP assignment (facility -> location)
  /// or the TSP tour (position -> city).  Empty when not applicable or
  /// infeasible.
  std::vector<VarIndex> assignment;

  /// Extra decoded detail, merged verbatim into SolveReport::extras by the
  /// front ends (e.g. "chains_intact" for embedded models).
  std::map<std::string, std::string> extras;
};

/// Outcome of Problem::verify().
struct VerifyResult {
  /// Everything holds: feasibility, the energy<->objective identity, and a
  /// certified-safe penalty for penalty encodes.
  bool ok = false;
  /// Domain constraints hold (the batch/CLI "feasible" field).
  bool feasible = false;
  /// First violation, empty when ok.
  std::string message;
};

/// The interface every domain workload implements — the problem-side twin
/// of Solver.  See the file comment for the method contracts.
class Problem {
 public:
  virtual ~Problem() = default;

  /// Domain family ("maxcut", "qap", "tsp", "qasp", "chimera", "qubo").
  /// Several registry entries may share one family: k2000, g22, and
  /// gset-loaded instances are all "maxcut".
  virtual std::string_view family() const noexcept = 0;

  /// Instance name (e.g. "K2000", a file stem, a generator label).
  virtual const std::string& name() const noexcept = 0;

  /// Canonical "family(param=value,...)" key: two problems with equal keys
  /// are the same instance.  The batch front end keys its ModelCache on
  /// this so duplicated job specs share one stored model.
  virtual const std::string& cache_key() const noexcept = 0;

  /// Builds the QUBO encode of the instance.  A fresh model each call;
  /// callers own (and may intern) the result.
  virtual QuboModel encode() const = 0;

  /// Decodes solution bits of the encoded model back into domain terms.
  virtual DomainSolution decode(const BitVector& x) const = 0;

  /// Verifies `x`: feasibility plus the energy<->objective identity.
  /// `model_energy` is E(x) under the encoded model — pass it when a model
  /// is already at hand (an independent re-evaluation, not the solver's
  /// claim); with nullopt the problem re-encodes to compute it, which is
  /// exact but expensive for large instances.
  virtual VerifyResult verify(
      const BitVector& x,
      std::optional<Energy> model_energy = std::nullopt) const = 0;

  /// One-line human description of the instance.
  virtual std::string describe() const = 0;
};

/// Shared adapter base: stores the identity triple and the verify-through-
/// encode fallback all concrete problems use.
class ProblemBase : public Problem {
 public:
  std::string_view family() const noexcept override { return family_; }
  const std::string& name() const noexcept override { return name_; }
  const std::string& cache_key() const noexcept override { return key_; }

 protected:
  /// `key` empty derives "family(name)" — fine for programmatic use; the
  /// registry factories pass fully parameterized canonical keys.
  ProblemBase(std::string family, std::string name, std::string key);

  /// E(x) under the encode: the caller-provided value when present, a
  /// fresh encode otherwise.
  Energy model_energy_of(const BitVector& x,
                         const std::optional<Energy>& provided) const;

 private:
  std::string family_;
  std::string name_;
  std::string key_;
};

/// Folds a decode + verify outcome into report extras — the one output
/// schema the CLI and the batch front end share: "problem", "objective",
/// "objective_name", "feasible", "verified" (+ "verify_message" on
/// failure), "assignment" for small permutations, and the solution's own
/// extras.
void annotate_extras(const Problem& problem, const DomainSolution& solution,
                     const VerifyResult& verdict,
                     std::map<std::string, std::string>& extras);

}  // namespace dabs
