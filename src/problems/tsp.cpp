#include "problems/tsp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/xorshift.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

Energy TspInstance::tour_length(const std::vector<VarIndex>& tour) const {
  DABS_CHECK(tour.size() == n, "tour length mismatch");
  Energy len = 0;
  for (std::size_t i = 0; i < n; ++i) {
    len += d(tour[i], tour[(i + 1) % n]);
  }
  return len;
}

QapInstance tsp_to_qap(const TspInstance& inst) {
  DABS_CHECK(inst.n >= 3, "TSP needs at least three cities");
  QapInstance qap;
  qap.n = inst.n;
  qap.name = inst.name + "-qap";
  qap.flow.assign(inst.n * inst.n, 0);
  qap.dist = inst.dist;
  // Circular flow: facility i (tour position i) ships one unit to
  // position i+1.  Ordered cost sum then telescopes into the tour length.
  for (std::size_t i = 0; i < inst.n; ++i) {
    qap.flow[i * inst.n + (i + 1) % inst.n] = 1;
  }
  return qap;
}

TspInstance make_euclidean_tsp(std::size_t n, int grid, std::uint64_t seed,
                               std::string name) {
  DABS_CHECK(n >= 3 && grid >= 2, "invalid generator parameters");
  Rng rng(seed);
  std::vector<std::pair<int, int>> pts(n);
  for (auto& p : pts) {
    p = {static_cast<int>(rng.next_index(grid)),
         static_cast<int>(rng.next_index(grid))};
  }
  TspInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.dist.assign(n * n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const double dx = pts[a].first - pts[b].first;
      const double dy = pts[a].second - pts[b].second;
      inst.dist[a * n + b] =
          static_cast<int>(std::lround(std::sqrt(dx * dx + dy * dy) * 10));
    }
  }
  return inst;
}

Energy tsp_brute_force(const TspInstance& inst,
                       std::vector<VarIndex>* best_tour) {
  DABS_CHECK(inst.n <= 11, "brute force limited to n <= 11");
  std::vector<VarIndex> rest(inst.n - 1);
  std::iota(rest.begin(), rest.end(), 1);
  Energy best = kInfiniteEnergy;
  std::vector<VarIndex> tour(inst.n);
  tour[0] = 0;
  do {
    std::copy(rest.begin(), rest.end(), tour.begin() + 1);
    const Energy len = inst.tour_length(tour);
    if (len < best) {
      best = len;
      if (best_tour) *best_tour = tour;
    }
  } while (std::next_permutation(rest.begin(), rest.end()));
  return best;
}

}  // namespace dabs::problems
