#include "problems/maxcut.hpp"

#include <unordered_set>

#include "qubo/qubo_builder.hpp"
#include "rng/xorshift.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

Energy MaxCutInstance::cut_value(const BitVector& partition) const {
  DABS_CHECK(partition.size() == n, "partition length mismatch");
  Energy cut = 0;
  for (const WeightedEdge& e : edges) {
    if (partition.get(e.u) != partition.get(e.v)) cut += e.w;
  }
  return cut;
}

QuboModel maxcut_to_qubo(const MaxCutInstance& inst, QuboBackend backend) {
  DABS_CHECK(inst.n > 0, "instance has no nodes");
  QuboBuilder b(inst.n);
  b.set_backend(backend);
  for (const WeightedEdge& e : inst.edges) {
    DABS_CHECK(e.u < inst.n && e.v < inst.n, "edge endpoint out of range");
    DABS_CHECK(e.u != e.v, "self-loops are not allowed in MaxCut");
    b.add_quadratic(e.u, e.v, static_cast<Weight>(2 * e.w));
    b.add_linear(e.u, static_cast<Weight>(-e.w));
    b.add_linear(e.v, static_cast<Weight>(-e.w));
  }
  return b.build();
}

namespace {

Weight draw_weight(EdgeWeights weights, Rng& rng) {
  switch (weights) {
    case EdgeWeights::kPlusOne:
      return 1;
    case EdgeWeights::kPlusMinusOne:
      return rng.next_bit() ? 1 : -1;
  }
  return 1;
}

}  // namespace

MaxCutInstance make_random_maxcut(std::size_t n, std::size_t m,
                                  EdgeWeights weights, std::uint64_t seed,
                                  std::string name) {
  DABS_CHECK(n >= 2, "need at least two nodes");
  DABS_CHECK(m <= n * (n - 1) / 2, "more edges than the complete graph");
  Rng rng(seed);
  MaxCutInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.edges.reserve(m);
  std::unordered_set<std::uint64_t> used;
  used.reserve(m * 2);
  while (inst.edges.size() < m) {
    auto u = static_cast<VarIndex>(rng.next_index(n));
    auto v = static_cast<VarIndex>(rng.next_index(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (std::uint64_t{u} << 32) | v;
    if (!used.insert(key).second) continue;
    inst.edges.push_back({u, v, draw_weight(weights, rng)});
  }
  return inst;
}

MaxCutInstance make_complete_maxcut(std::size_t n, std::uint64_t seed,
                                    std::string name) {
  DABS_CHECK(n >= 2, "need at least two nodes");
  Rng rng(seed);
  MaxCutInstance inst;
  inst.n = n;
  inst.name = std::move(name);
  inst.edges.reserve(n * (n - 1) / 2);
  for (VarIndex u = 0; u + 1 < n; ++u) {
    for (VarIndex v = u + 1; v < n; ++v) {
      inst.edges.push_back({u, v, rng.next_bit() ? Weight{1} : Weight{-1}});
    }
  }
  return inst;
}

MaxCutInstance make_k2000(std::uint64_t seed) {
  return make_complete_maxcut(2000, seed, "K2000");
}

MaxCutInstance make_g22_like(std::uint64_t seed) {
  return make_random_maxcut(2000, 19990, EdgeWeights::kPlusOne, seed, "G22");
}

MaxCutInstance make_g39_like(std::uint64_t seed) {
  return make_random_maxcut(2000, 11778, EdgeWeights::kPlusMinusOne, seed,
                            "G39");
}

}  // namespace dabs::problems
