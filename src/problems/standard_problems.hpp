// Concrete Problem adapters for every domain workload in the repo, each
// wrapping an existing instance type + reduction (see problem.hpp for the
// interface contract).  The registry builds these from string params; they
// are also constructible directly for programmatic use (the examples do).
#pragma once

#include <cstdint>
#include <string>

#include "problems/chimera.hpp"
#include "problems/embedding.hpp"
#include "problems/maxcut.hpp"
#include "problems/problem.hpp"
#include "problems/qap.hpp"
#include "problems/qasp.hpp"
#include "problems/tsp.hpp"

namespace dabs::problems {

/// MaxCut: E(X) = -cut(X); every bit vector is a feasible partition.
class MaxCutProblem : public ProblemBase {
 public:
  explicit MaxCutProblem(MaxCutInstance inst,
                         QuboBackend backend = QuboBackend::kAuto,
                         std::string key = "");

  QuboModel encode() const override;
  DomainSolution decode(const BitVector& x) const override;
  VerifyResult verify(const BitVector& x,
                      std::optional<Energy> model_energy) const override;
  std::string describe() const override;

  const MaxCutInstance& instance() const noexcept { return inst_; }

 private:
  MaxCutInstance inst_;
  QuboBackend backend_;
};

/// QAP one-hot encode: E(X) = C(g_X) - n p on feasible X.  verify()
/// additionally rejects encodes whose penalty is below the certified
/// min_safe_qap_penalty bound (an under-penalized encode can bury the
/// feasible optimum under infeasible vectors).
class QapProblem : public ProblemBase {
 public:
  /// `penalty` 0 selects min_safe_qap_penalty(inst).
  explicit QapProblem(QapInstance inst, Weight penalty = 0,
                      std::string key = "");

  QuboModel encode() const override;
  DomainSolution decode(const BitVector& x) const override;
  VerifyResult verify(const BitVector& x,
                      std::optional<Energy> model_energy) const override;
  std::string describe() const override;

  const QapInstance& instance() const noexcept { return inst_; }
  Weight penalty() const noexcept { return penalty_; }
  Weight min_safe_penalty() const noexcept { return min_safe_; }

 protected:
  QapProblem(std::string family, QapInstance inst, Weight penalty,
             std::string key);

 private:
  QapInstance inst_;
  Weight penalty_;
  Weight min_safe_;
};

/// TSP through the circular-flow QAP (paper §II-B): the decoded assignment
/// *is* the tour (position -> city) and C(g) its closed length.
class TspProblem : public QapProblem {
 public:
  explicit TspProblem(TspInstance inst, Weight penalty = 0,
                      std::string key = "");

  DomainSolution decode(const BitVector& x) const override;
  std::string describe() const override;

  const TspInstance& tsp() const noexcept { return tsp_; }

 private:
  TspInstance tsp_;
};

/// QASP (paper §II-C): a random Ising model on the Pegasus working graph;
/// the objective is the Hamiltonian H(S) = E(X) + offset.
class QaspProblem : public ProblemBase {
 public:
  explicit QaspProblem(QaspParams params, std::string key = "");

  QuboModel encode() const override;
  DomainSolution decode(const BitVector& x) const override;
  VerifyResult verify(const BitVector& x,
                      std::optional<Energy> model_energy) const override;
  std::string describe() const override;

  const QaspInstance& instance() const noexcept { return inst_; }

 private:
  QaspInstance inst_;
};

/// An arbitrary-topology logical model clique-embedded into Chimera C(m)
/// (paper §I-A): the solver works the physical model; decode majority-votes
/// each chain back to the logical vector.  Feasible = every chain intact,
/// and then E_physical(X) = E_logical(decode(X)) exactly (chain penalties
/// vanish on unanimous chains).
class EmbeddedQuboProblem : public ProblemBase {
 public:
  EmbeddedQuboProblem(QuboModel logical, std::size_t chimera_m,
                      Weight chain_strength = 0, std::string name = "embedded",
                      std::string key = "");

  QuboModel encode() const override;
  DomainSolution decode(const BitVector& x) const override;
  VerifyResult verify(const BitVector& x,
                      std::optional<Energy> model_energy) const override;
  std::string describe() const override;

  const QuboModel& logical() const noexcept { return logical_; }
  const Embedding& embedding() const noexcept { return embedding_; }

 private:
  QuboModel logical_;
  ChimeraGraph graph_;
  Embedding embedding_;
  Weight chain_strength_;
};

/// A raw QUBO model as its own problem: the domain objective is the energy
/// itself, so the service/CLI surfaces work uniformly on plain files.
class RawQuboProblem : public ProblemBase {
 public:
  explicit RawQuboProblem(QuboModel model, std::string name = "qubo",
                          std::string key = "");

  QuboModel encode() const override;
  DomainSolution decode(const BitVector& x) const override;
  VerifyResult verify(const BitVector& x,
                      std::optional<Energy> model_energy) const override;
  std::string describe() const override;

 private:
  QuboModel model_;
};

}  // namespace dabs::problems
