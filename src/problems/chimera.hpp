// Chimera C(m) topology — the D-Wave 2000Q quantum network (paper §I-A):
// an m x m grid of K_{4,4} unit cells.  Qubits are addressed (y, x, u, k)
// with row y, column x, orientation u (0 = vertical side of the cell,
// 1 = horizontal side), and index k in [0, 4); C(m) has 8 m^2 qubits.
//
// Couplers:
//   internal: (y, x, 0, k) ~ (y, x, 1, k')  for all k, k'   (the K_{4,4})
//   external: (y, x, 0, k) ~ (y+1, x, 0, k)                 (vertical)
//             (y, x, 1, k) ~ (y, x+1, 1, k)                 (horizontal)
//
// C(16) is the 2048-qubit D-Wave 2000Q graph.
#pragma once

#include <cstdint>
#include <vector>

#include "qubo/types.hpp"

namespace dabs::problems {

struct ChimeraCoord {
  std::uint16_t y, x;
  std::uint8_t u, k;
};

class ChimeraGraph {
 public:
  explicit ChimeraGraph(std::size_t m);

  std::size_t m() const noexcept { return m_; }
  std::size_t node_count() const noexcept { return 8 * m_ * m_; }
  const std::vector<std::pair<VarIndex, VarIndex>>& edges() const noexcept {
    return edges_;
  }

  VarIndex node_id(const ChimeraCoord& c) const;
  ChimeraCoord coord(VarIndex id) const;

  /// True when a coupler exists between the two qubits.
  bool adjacent(VarIndex a, VarIndex b) const;

  std::vector<std::uint32_t> degrees() const;

 private:
  std::size_t m_;
  std::vector<std::pair<VarIndex, VarIndex>> edges_;
};

}  // namespace dabs::problems
