#include "problems/problem_registry.hpp"

#include <mutex>
#include <sstream>
#include <utility>

#include "io/gset.hpp"
#include "io/qaplib.hpp"
#include "io/qubo_text.hpp"
#include "problems/pegasus.hpp"
#include "problems/standard_problems.hpp"
#include "qubo/qubo_builder.hpp"
#include "rng/xorshift.hpp"
#include "util/assert.hpp"

namespace dabs {

void ProblemRegistry::add_entry(std::string name, std::string description,
                                bool takes_path, Factory factory) {
  DABS_CHECK(!name.empty(), "problem name must not be empty");
  DABS_CHECK(factory != nullptr, "problem factory must not be null");
  DABS_CHECK(name.find(':') == std::string::npos,
             "problem names must not contain ':'");
  std::lock_guard lock(mu_);
  const bool inserted =
      entries_
          .emplace(std::move(name), Entry{std::move(description), takes_path,
                                          std::move(factory)})
          .second;
  DABS_CHECK(inserted, "duplicate problem registration");
}

void ProblemRegistry::add(std::string name, std::string description,
                          Factory factory) {
  add_entry(std::move(name), std::move(description), false,
            std::move(factory));
}

void ProblemRegistry::add_loader(std::string name, std::string description,
                                 Factory factory) {
  add_entry(std::move(name), std::move(description), true,
            std::move(factory));
}

bool ProblemRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return entries_.count(name) != 0;
}

bool ProblemRegistry::is_loader(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.takes_path;
}

std::unique_ptr<Problem> ProblemRegistry::create(
    const std::string& spec, const SolverOptions& options) const {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  Factory factory;
  {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::ostringstream os;
      os << "unknown problem '" << name << "'; registered:";
      for (const auto& [n, e] : entries_) {
        (void)e;
        os << ' ' << n;
      }
      throw std::invalid_argument(os.str());
    }
    factory = it->second.factory;
  }
  SolverOptions with_path = options;
  if (colon != std::string::npos) {
    with_path.set("path", spec.substr(colon + 1));
  }
  std::unique_ptr<Problem> problem = factory(with_path);
  const std::vector<std::string> unknown = with_path.unused();
  if (!unknown.empty()) {
    std::ostringstream os;
    os << "problem '" << name << "' does not take param";
    os << (unknown.size() > 1 ? "s" : "");
    for (const std::string& k : unknown) os << " '" << k << "'";
    throw std::invalid_argument(os.str());
  }
  return problem;
}

std::vector<ProblemInfo> ProblemRegistry::list() const {
  std::lock_guard lock(mu_);
  std::vector<ProblemInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.description, entry.takes_path});
  }
  return out;  // std::map iteration is already name-sorted
}

namespace {

namespace pr = problems;

/// Canonical "family(k=v,...)" keys: every factory resolves its defaults
/// first, so equal specs always render equal keys (ModelCache dedupe).
class KeyBuilder {
 public:
  explicit KeyBuilder(const char* family) { os_ << family << '('; }

  template <typename T>
  KeyBuilder& param(const char* k, const T& v) {
    if (!first_) os_ << ',';
    first_ = false;
    os_ << k << '=' << v;
    return *this;
  }

  std::string str() {
    os_ << ')';
    return os_.str();
  }

 private:
  std::ostringstream os_;
  bool first_ = true;
};

/// File-loader wrapper: params are validated eagerly (create() still
/// rejects bad specs), but the file read is deferred to first use — so an
/// unreadable path surfaces where the model is loaded (a retryable
/// "failed" in the batch pipeline), not as a spec error; a cache-hit job
/// touches the disk only at its first decode/verify call.
class DeferredLoaderProblem : public Problem {
 public:
  DeferredLoaderProblem(std::string family, std::string name,
                        std::string key,
                        std::function<std::unique_ptr<Problem>()> make)
      : family_(std::move(family)),
        name_(std::move(name)),
        key_(std::move(key)),
        make_(std::move(make)) {}

  std::string_view family() const noexcept override { return family_; }
  const std::string& name() const noexcept override { return name_; }
  const std::string& cache_key() const noexcept override { return key_; }
  QuboModel encode() const override { return inner().encode(); }
  DomainSolution decode(const BitVector& x) const override {
    return inner().decode(x);
  }
  VerifyResult verify(const BitVector& x,
                      std::optional<Energy> model_energy) const override {
    return inner().verify(x, model_energy);
  }
  std::string describe() const override { return inner().describe(); }

 private:
  /// Materializes once; a throwing load (missing file) is retried on the
  /// next call (std::call_once does not latch on exceptions).
  const Problem& inner() const {
    std::call_once(once_, [this] { inner_ = make_(); });
    return *inner_;
  }

  std::string family_;
  std::string name_;
  std::string key_;
  std::function<std::unique_ptr<Problem>()> make_;
  mutable std::once_flag once_;
  mutable std::unique_ptr<Problem> inner_;
};

std::string require_path(const char* family, const SolverOptions& o) {
  const std::string path = o.get("path", "");
  if (path.empty()) {
    throw std::invalid_argument(std::string("loader '") + family +
                                "' needs a file: use \"" + family +
                                ":<path>\" or the path=<file> param");
  }
  return path;
}

/// File stem ("dir/G22.txt" -> "G22") for loader instance names.
std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  std::size_t end = path.find_last_of('.');
  if (end == std::string::npos || end <= start) end = path.size();
  return path.substr(start, end - start);
}

/// The random dense logical model of the embedding example: no annealer
/// has its (complete) topology natively, so it must be embedded.
QuboModel random_dense_logical(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  QuboBuilder builder(n);
  for (VarIndex i = 0; i < n; ++i) {
    builder.add_linear(i, static_cast<Weight>(rng.next_index(9)) - 4);
    for (VarIndex j = i + 1; j < n; ++j) {
      builder.add_quadratic(i, j,
                            static_cast<Weight>(rng.next_index(9)) - 4);
    }
  }
  return builder.build();
}

void register_builtin_problems(ProblemRegistry& reg) {
  // -- MaxCut generators (paper §VI-A benchmark graphs) --------------------
  reg.add("k2000",
          "K2000-equivalent MaxCut: 2000-node complete graph, +-1 weights "
          "[seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::uint64_t seed = o.get_u64("seed", 2000);
            return std::make_unique<pr::MaxCutProblem>(
                pr::make_k2000(seed), QuboBackend::kAuto,
                KeyBuilder("k2000").param("seed", seed).str());
          });
  reg.add("g22",
          "G22-equivalent MaxCut: 2000 nodes, 19990 edges, +1 weights "
          "[seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::uint64_t seed = o.get_u64("seed", 22);
            return std::make_unique<pr::MaxCutProblem>(
                pr::make_g22_like(seed), QuboBackend::kAuto,
                KeyBuilder("g22").param("seed", seed).str());
          });
  reg.add("g39",
          "G39-equivalent MaxCut: 2000 nodes, 11778 edges, +-1 weights "
          "[seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::uint64_t seed = o.get_u64("seed", 39);
            return std::make_unique<pr::MaxCutProblem>(
                pr::make_g39_like(seed), QuboBackend::kAuto,
                KeyBuilder("g39").param("seed", seed).str());
          });
  reg.add("maxcut",
          "Random MaxCut graph [n, m, weights=pm1|p1, seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::uint64_t n = o.get_u64("n", 200);
            const std::uint64_t m = o.get_u64("m", 2000);
            const std::string weights = o.get("weights", "pm1");
            const std::uint64_t seed = o.get_u64("seed", 1);
            pr::EdgeWeights w;
            if (weights == "pm1") {
              w = pr::EdgeWeights::kPlusMinusOne;
            } else if (weights == "p1") {
              w = pr::EdgeWeights::kPlusOne;
            } else {
              throw std::invalid_argument(
                  "problem param 'weights' must be pm1 or p1");
            }
            return std::make_unique<pr::MaxCutProblem>(
                pr::make_random_maxcut(n, m, w, seed, "maxcut"),
                QuboBackend::kAuto, KeyBuilder("maxcut")
                                        .param("n", n)
                                        .param("m", m)
                                        .param("weights", weights)
                                        .param("seed", seed)
                                        .str());
          });

  // -- QAP / TSP generators (paper §II-B) ----------------------------------
  reg.add("qap",
          "Synthetic QAP: kind=uniform (Taillard-style: n, max) or "
          "kind=grid (Nugent-style: rows, cols, max) [kind, n, rows, cols, "
          "max, seed, penalty]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::string kind = o.get("kind", "uniform");
            const std::uint64_t seed = o.get_u64("seed", 1);
            const auto penalty =
                static_cast<Weight>(o.get_u64("penalty", 0));
            KeyBuilder key("qap");
            key.param("kind", kind);
            pr::QapInstance inst;
            if (kind == "uniform") {
              const std::uint64_t n = o.get_u64("n", 8);
              const auto max = static_cast<int>(o.get_u64("max", 9));
              inst = pr::make_uniform_qap(n, max, seed, "uniform");
              key.param("n", n).param("max", max);
            } else if (kind == "grid") {
              const std::uint64_t rows = o.get_u64("rows", 3);
              const std::uint64_t cols = o.get_u64("cols", 4);
              const auto max = static_cast<int>(o.get_u64("max", 10));
              inst = pr::make_grid_qap(rows, cols, max, seed, "grid");
              key.param("rows", rows).param("cols", cols).param("max", max);
            } else {
              throw std::invalid_argument(
                  "problem param 'kind' must be uniform or grid");
            }
            // Key the *resolved* penalty so "penalty=0" (auto) and an
            // explicit equal value name the same instance.
            const Weight resolved =
                penalty == 0 ? pr::min_safe_qap_penalty(inst) : penalty;
            key.param("seed", seed).param("penalty", resolved);
            return std::make_unique<pr::QapProblem>(std::move(inst), penalty,
                                                    key.str());
          });
  reg.add("tsp",
          "Random Euclidean TSP solved as a circular-flow QAP [n, grid, "
          "seed, penalty]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::uint64_t n = o.get_u64("n", 10);
            const auto grid = static_cast<int>(o.get_u64("grid", 100));
            const std::uint64_t seed = o.get_u64("seed", 1);
            const auto penalty =
                static_cast<Weight>(o.get_u64("penalty", 0));
            pr::TspInstance inst =
                pr::make_euclidean_tsp(n, grid, seed, "euclid");
            const Weight resolved =
                penalty == 0 ? pr::min_safe_qap_penalty(pr::tsp_to_qap(inst))
                             : penalty;
            return std::make_unique<pr::TspProblem>(
                std::move(inst), penalty, KeyBuilder("tsp")
                                              .param("n", n)
                                              .param("grid", grid)
                                              .param("seed", seed)
                                              .param("penalty", resolved)
                                              .str());
          });

  // -- Annealer-shaped generators (paper §I-A, §II-C) ----------------------
  reg.add("qasp",
          "Quantum Annealer Simulation Problem: random Ising on Pegasus "
          "P(m) at resolution r [r, m, nodes, graph-seed, value-seed]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            pr::QaspParams p;
            p.resolution = static_cast<int>(o.get_u64("r", 16));
            p.pegasus_m = o.get_u64("m", 3);
            p.graph_seed = o.get_u64("graph-seed", 41);
            p.value_seed = o.get_u64("value-seed", 42);
            // 0 = the full ideal graph (no faults); the paper's Advantage
            // 4.1 working graph is m=16, nodes=5627.
            p.working_nodes = o.get_u64("nodes", 0);
            if (p.working_nodes == 0) {
              p.working_nodes = pr::PegasusGraph(p.pegasus_m).node_count();
            }
            return std::make_unique<pr::QaspProblem>(
                p, KeyBuilder("qasp")
                       .param("r", p.resolution)
                       .param("m", p.pegasus_m)
                       .param("nodes", p.working_nodes)
                       .param("graph-seed", p.graph_seed)
                       .param("value-seed", p.value_seed)
                       .str());
          });
  reg.add("chimera",
          "Random dense logical QUBO clique-embedded into Chimera C(m) "
          "[n, m, seed, chain]",
          [](const SolverOptions& o) -> std::unique_ptr<Problem> {
            const std::uint64_t n = o.get_u64("n", 8);
            const std::uint64_t m = o.get_u64("m", (n + 3) / 4);
            const std::uint64_t seed = o.get_u64("seed", 7);
            const auto chain = static_cast<Weight>(o.get_u64("chain", 0));
            return std::make_unique<pr::EmbeddedQuboProblem>(
                random_dense_logical(n, seed), m, chain, "chimera",
                KeyBuilder("chimera")
                    .param("n", n)
                    .param("m", m)
                    .param("seed", seed)
                    .param("chain", chain)
                    .str());
          });

  // -- File loaders (the legacy model formats) -----------------------------
  reg.add_loader(
      "qubo", "QUBO text file (io/qubo_text.hpp) [path]",
      [](const SolverOptions& o) -> std::unique_ptr<Problem> {
        const std::string path = require_path("qubo", o);
        return std::make_unique<DeferredLoaderProblem>(
            "qubo", path_stem(path),
            KeyBuilder("qubo").param("path", path).str(),
            [path]() -> std::unique_ptr<Problem> {
              return std::make_unique<pr::RawQuboProblem>(
                  io::read_qubo_file(path), path_stem(path));
            });
      });
  reg.add_loader(
      "gset", "Gset MaxCut file (io/gset.hpp) [path]",
      [](const SolverOptions& o) -> std::unique_ptr<Problem> {
        const std::string path = require_path("gset", o);
        return std::make_unique<DeferredLoaderProblem>(
            "maxcut", path_stem(path),
            KeyBuilder("gset").param("path", path).str(),
            [path]() -> std::unique_ptr<Problem> {
              return std::make_unique<pr::MaxCutProblem>(
                  io::read_gset_file(path));
            });
      });
  reg.add_loader(
      "qaplib", "QAPLIB .dat file (io/qaplib.hpp) [path, penalty]",
      [](const SolverOptions& o) -> std::unique_ptr<Problem> {
        const std::string path = require_path("qaplib", o);
        const auto penalty = static_cast<Weight>(o.get_u64("penalty", 0));
        // Keyed as given ("auto" when 0): resolving the bound here would
        // need the file; equal-content encodes still collapse at the
        // cache's content-interning layer.
        KeyBuilder key("qaplib");
        key.param("path", path);
        if (penalty == 0) {
          key.param("penalty", "auto");
        } else {
          key.param("penalty", penalty);
        }
        return std::make_unique<DeferredLoaderProblem>(
            "qap", path_stem(path), key.str(),
            [path, penalty]() -> std::unique_ptr<Problem> {
              return std::make_unique<pr::QapProblem>(
                  io::read_qaplib_file(path), penalty);
            });
      });
}

}  // namespace

ProblemRegistry& ProblemRegistry::global() {
  static ProblemRegistry* reg = [] {
    auto* r = new ProblemRegistry();
    register_builtin_problems(*r);
    return r;
  }();
  return *reg;
}

}  // namespace dabs
