#include "problems/qasp.hpp"

#include "rng/xorshift.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

namespace {

/// Uniform non-zero integer in [-bound, bound].
Weight random_nonzero(Rng& rng, int bound) {
  // 2*bound possible values: {-bound..-1, 1..bound}.
  const auto v = static_cast<int>(rng.next_index(2 * bound));
  return static_cast<Weight>(v < bound ? v - bound : v - bound + 1);
}

QaspInstance build(const WorkingGraph& graph, int resolution,
                   std::uint64_t value_seed) {
  DABS_CHECK(resolution >= 1, "resolution must be >= 1");
  Rng rng(value_seed);
  IsingModel ising(graph.node_count);
  for (const auto& [a, b] : graph.edges) {
    ising.add_coupling(a, b, random_nonzero(rng, resolution));
  }
  for (VarIndex i = 0; i < graph.node_count; ++i) {
    ising.set_bias(i, random_nonzero(rng, 4 * resolution));
  }
  auto converted = ising_to_qubo(ising);
  QaspInstance inst{std::move(ising), std::move(converted.model),
                    converted.offset, resolution, graph.node_count,
                    graph.edges.size()};
  return inst;
}

}  // namespace

QaspInstance make_qasp(const QaspParams& params) {
  const PegasusGraph pegasus(params.pegasus_m);
  DABS_CHECK(params.working_nodes <= pegasus.node_count(),
             "working node target exceeds the ideal graph");
  const WorkingGraph graph =
      apply_faults(pegasus, params.working_nodes, params.graph_seed);
  return build(graph, params.resolution, params.value_seed);
}

QaspInstance make_qasp_small(int resolution, std::size_t pegasus_m,
                             std::uint64_t seed) {
  QaspParams p;
  p.resolution = resolution;
  p.pegasus_m = pegasus_m;
  p.graph_seed = seed;
  p.value_seed = seed + 1;
  const PegasusGraph pegasus(pegasus_m);
  p.working_nodes = pegasus.node_count();  // no faults
  return make_qasp(p);
}

}  // namespace dabs::problems
