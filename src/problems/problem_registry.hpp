// Name -> factory registry for every Problem in the repo, mirroring the
// solver registry in core/solver_registry.hpp on the instance side.
// Factories build a problem from the same generic string options solvers
// use (SolverOptions: typed getters + typo rejection), so front ends need
// no per-domain types:
//
//   auto p = ProblemRegistry::global().create("qap", {{"kind", "grid"}});
//   QuboModel model = p->encode();
//   ... solve ...
//   DomainSolution sol = p->decode(report.best_solution);
//
// One naming scheme covers generators and file loaders alike:
//
//   "<problem>"         a generator family ("k2000", "g22", "g39",
//                       "maxcut", "qap", "tsp", "qasp", "chimera")
//   "<problem>:<path>"  a file loader ("qubo", "gset", "qaplib"); the path
//                       may also be passed as the "path" option.
//
// Every created problem carries a canonical cache_key() assembled from its
// resolved parameters, so equal specs dedupe in a service::ModelCache.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/solver_registry.hpp"
#include "problems/problem.hpp"

namespace dabs {

struct ProblemInfo {
  std::string name;
  std::string description;
  /// True for file-backed loaders (create() requires a path).
  bool takes_path = false;
};

class ProblemRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Problem>(const SolverOptions&)>;

  ProblemRegistry() = default;
  ProblemRegistry(const ProblemRegistry&) = delete;
  ProblemRegistry& operator=(const ProblemRegistry&) = delete;

  /// Registers a generator factory; throws std::invalid_argument on
  /// duplicates.
  void add(std::string name, std::string description, Factory factory);

  /// Registers a file-loader factory: the factory reads the "path" option
  /// (filled in from the "name:<path>" spec form).
  void add_loader(std::string name, std::string description, Factory factory);

  bool contains(const std::string& name) const;

  /// True when `name` is a registered file loader — exactly the legacy
  /// model-format names ("qubo", "gset", "qaplib").
  bool is_loader(const std::string& name) const;

  /// Builds the problem for `spec` = "<name>" or "<name>:<path>" (the path
  /// becomes the "path" option).  Throws std::invalid_argument for unknown
  /// names and for option keys the factory did not recognize.
  std::unique_ptr<Problem> create(const std::string& spec,
                                  const SolverOptions& options = {}) const;

  /// All registered problems, sorted by name.
  std::vector<ProblemInfo> list() const;

  /// The process-wide registry, pre-populated with the built-in generators
  /// and loaders.
  static ProblemRegistry& global();

 private:
  struct Entry {
    std::string description;
    bool takes_path = false;
    Factory factory;
  };

  void add_entry(std::string name, std::string description, bool takes_path,
                 Factory factory);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace dabs
