// Quadratic Assignment Problem -> QUBO reduction (paper §II-B) and
// QAPLIB-family instance generators.
//
// One-hot encoding: N = n^2 variables x_<i,j> with <i,j> = i*n + j and
// x_<i,j> = 1 iff facility i is placed at location j.  QUBO weights:
//
//   W_{<i,j>,<i',j'>} = l(i,i') d(j,j') + l(i',i) d(j',j)   i != i', j != j'
//                     = -p                                   i == i', j == j'
//                     = +p                                   same row or col
//
// (the cross term is symmetrized because the QAPLIB cost is the ordered
// double sum C(g) = sum_{i != i'} l(i,i') d(g(i), g(i'))).  For a feasible
// one-hot X:  E(X) = C(g_X) - n p ; every infeasible X has E(X) >= -(n-1)p
// for a sufficiently large penalty p.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs::problems {

struct QapInstance {
  std::size_t n = 0;
  std::vector<int> flow;  // n*n row-major: flow[i*n + i'] = l(i, i')
  std::vector<int> dist;  // n*n row-major: dist[j*n + j'] = d(j, j')
  std::string name;

  int l(std::size_t i, std::size_t i2) const { return flow[i * n + i2]; }
  int d(std::size_t j, std::size_t j2) const { return dist[j * n + j2]; }

  /// Ordered-double-sum assignment cost (QAPLIB convention):
  /// C(g) = sum_{i != i'} l(i,i') * d(g(i), g(i')).
  Energy cost(const std::vector<VarIndex>& g) const;
};

struct QapQubo {
  QuboModel model;
  Weight penalty;
  std::size_t n;  // original QAP size (model has n^2 variables)

  /// QUBO energy of an optimal/feasible assignment: cost - n * penalty.
  Energy feasible_energy(Energy qap_cost) const {
    return qap_cost - Energy{penalty} * Energy(n);
  }
};

/// Builds the QUBO; penalty 0 selects min_safe_qap_penalty(inst).
QapQubo qap_to_qubo(const QapInstance& inst, Weight penalty = 0);

/// Smallest penalty certified safe via the documented infeasible-floor
/// bound.  With non-negative flows and distances every interaction term of
/// the encode is >= 0, so the one-hot penalty structure alone guarantees
/// E(X) >= -(n-1) p for every infeasible X and any p > 0; the QUBO optimum
/// is then feasible iff  C(g*) - n p < -(n-1) p,  i.e.  p > C(g*).  Any
/// concrete assignment's cost upper-bounds C(g*), so the identity
/// assignment certifies p = C(id) + 1.  Instances with negative entries
/// (not produced by the generators, but loadable) fall back to the
/// interaction-dominance bound 2 max|l| max|d| n + 1.
Weight min_safe_qap_penalty(const QapInstance& inst);

/// The automatic penalty used by qap_to_qubo(penalty = 0):
/// min_safe_qap_penalty(inst).  Problem::verify() rejects encodes built
/// with a smaller caller-supplied value as under-penalized.
Weight default_qap_penalty(const QapInstance& inst);

/// Decodes a one-hot vector into an assignment; nullopt when infeasible
/// (a row or column without exactly one 1).
std::optional<std::vector<VarIndex>> decode_assignment(const BitVector& x,
                                                       std::size_t n);

/// Encodes an assignment g as the one-hot vector.
BitVector encode_assignment(const std::vector<VarIndex>& g);

/// Exact optimum by permutation enumeration (n <= 10).
Energy qap_brute_force(const QapInstance& inst,
                       std::vector<VarIndex>* best_g = nullptr);

/// Taillard-style instance: i.i.d. uniform integer flows and distances in
/// [1, max_value], zero diagonal, asymmetric.
QapInstance make_uniform_qap(std::size_t n, int max_value, std::uint64_t seed,
                             std::string name = "uniform");

/// Nugent-style instance: locations on a rows x cols grid with Manhattan
/// distances; random symmetric flows in [0, max_flow].
QapInstance make_grid_qap(std::size_t rows, std::size_t cols, int max_flow,
                          std::uint64_t seed, std::string name = "grid");

}  // namespace dabs::problems
