// Pegasus P(m) topology generator — the D-Wave Advantage quantum network
// (Boothby et al., "Next-generation topology of D-Wave quantum
// processors"), needed to construct QASP benchmark instances (paper §II-C).
//
// Qubits are addressed (u, w, k, z) with orientation u in {0,1}, perpendic-
// ular offset w in [0, m), track k in [0, 12), parallel offset z in
// [0, m-1); P(m) has 24 m (m-1) qubits.  Couplers:
//
//   external:  (u, w, k, z) ~ (u, w, k, z+1)
//   odd:       (u, w, 2j, z) ~ (u, w, 2j+1, z)
//   internal:  a vertical qubit (0, w, k, z) occupies grid column
//              X = 12 w + k spanning rows [12 z + S0[k], +11]; a horizontal
//              qubit (1, w', k', z') occupies row Y = 12 w' + k' spanning
//              columns [12 z' + S1[k'], +11]; they are coupled iff the two
//              segments geometrically cross.
//
// Interior qubits have degree 15 (12 internal + 2 external + 1 odd).
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "qubo/types.hpp"

namespace dabs::problems {

struct PegasusCoord {
  std::uint8_t u;  // 0 = vertical, 1 = horizontal
  std::uint16_t w;
  std::uint8_t k;
  std::uint16_t z;
};

class PegasusGraph {
 public:
  /// Builds ideal P(m); m >= 2.
  explicit PegasusGraph(std::size_t m);

  std::size_t m() const noexcept { return m_; }
  std::size_t node_count() const noexcept { return nodes_; }
  const std::vector<std::pair<VarIndex, VarIndex>>& edges() const noexcept {
    return edges_;
  }

  /// Linear id of a coordinate and back.
  VarIndex node_id(const PegasusCoord& c) const;
  PegasusCoord coord(VarIndex id) const;

  /// Degree of each node (computed from the edge list).
  std::vector<std::uint32_t> degrees() const;

 private:
  std::size_t m_;
  std::size_t nodes_;
  std::vector<std::pair<VarIndex, VarIndex>> edges_;
};

/// A working graph after fault deletion: `keep[i]` is the original id of
/// relabeled node i, edges use the new labels.
struct WorkingGraph {
  std::size_t node_count = 0;
  std::vector<std::pair<VarIndex, VarIndex>> edges;
  std::vector<VarIndex> keep;
};

/// Deletes random nodes down to `target_nodes` (deterministic in `seed`)
/// and returns the induced, relabeled subgraph — the analogue of a QPU
/// working graph with faulty qubits removed.
WorkingGraph apply_faults(const PegasusGraph& g, std::size_t target_nodes,
                          std::uint64_t seed);

}  // namespace dabs::problems
