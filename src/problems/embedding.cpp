#include "problems/embedding.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "qubo/qubo_builder.hpp"
#include "util/assert.hpp"

namespace dabs::problems {

std::size_t Embedding::max_chain_length() const {
  std::size_t mx = 0;
  for (const auto& c : chains) mx = std::max(mx, c.size());
  return mx;
}

Embedding chimera_clique_embedding(const ChimeraGraph& g,
                                   std::size_t logical_vars) {
  const std::size_t m = g.m();
  DABS_CHECK(logical_vars >= 1 && logical_vars <= 4 * m,
             "clique embedding into C(m) supports at most 4m variables");
  Embedding emb;
  emb.physical_nodes = g.node_count();
  emb.chains.resize(logical_vars);
  for (std::size_t i = 0; i < logical_vars; ++i) {
    const auto c = static_cast<std::uint16_t>(i / 4);
    const auto k = static_cast<std::uint8_t>(i % 4);
    auto& chain = emb.chains[i];
    chain.reserve(2 * m);
    for (std::uint16_t y = 0; y < m; ++y) {
      chain.push_back(g.node_id({y, c, 0, k}));  // vertical strip, column c
    }
    for (std::uint16_t x = 0; x < m; ++x) {
      chain.push_back(g.node_id({c, x, 1, k}));  // horizontal strip, row c
    }
  }
  return emb;
}

namespace {

/// Chain connectivity check by BFS over the physical adjacency restricted
/// to the chain.
bool chain_connected(const ChimeraGraph& g,
                     const std::vector<VarIndex>& chain) {
  if (chain.empty()) return false;
  std::set<VarIndex> members(chain.begin(), chain.end());
  std::set<VarIndex> visited;
  std::queue<VarIndex> frontier;
  frontier.push(chain[0]);
  visited.insert(chain[0]);
  while (!frontier.empty()) {
    const VarIndex v = frontier.front();
    frontier.pop();
    for (const VarIndex w : members) {
      if (!visited.count(w) && g.adjacent(v, w)) {
        visited.insert(w);
        frontier.push(w);
      }
    }
  }
  return visited.size() == members.size();
}

}  // namespace

void validate_clique_embedding(const ChimeraGraph& g, const Embedding& emb) {
  std::set<VarIndex> used;
  for (std::size_t i = 0; i < emb.chains.size(); ++i) {
    const auto& chain = emb.chains[i];
    DABS_CHECK(!chain.empty(),
               "chain " + std::to_string(i) + " is empty");
    for (const VarIndex v : chain) {
      DABS_CHECK(v < g.node_count(), "chain qubit out of range");
      DABS_CHECK(used.insert(v).second,
                 "qubit " + std::to_string(v) + " used by two chains");
    }
    DABS_CHECK(chain_connected(g, chain),
               "chain " + std::to_string(i) + " is disconnected");
  }
  // Every logical pair must share at least one physical coupler.
  for (std::size_t i = 0; i < emb.chains.size(); ++i) {
    for (std::size_t j = i + 1; j < emb.chains.size(); ++j) {
      bool coupled = false;
      for (const VarIndex a : emb.chains[i]) {
        for (const VarIndex b : emb.chains[j]) {
          if (g.adjacent(a, b)) {
            coupled = true;
            break;
          }
        }
        if (coupled) break;
      }
      DABS_CHECK(coupled, "chains " + std::to_string(i) + " and " +
                              std::to_string(j) + " share no coupler");
    }
  }
}

QuboModel embed_qubo(const QuboModel& logical, const ChimeraGraph& g,
                     const Embedding& emb, Weight chain_strength) {
  const std::size_t n = logical.size();
  DABS_CHECK(n == emb.logical_count(),
             "embedding size does not match the logical model");

  if (chain_strength == 0) {
    // Breaking one chain edge can at best remove the variable's total
    // incident weight from the energy; exceed that.
    Energy worst = 0;
    for (VarIndex i = 0; i < n; ++i) {
      worst = std::max(worst, logical.flip_bound(i));
    }
    DABS_CHECK(worst + 1 <= std::numeric_limits<Weight>::max() / 2,
               "automatic chain strength overflows int32");
    chain_strength = static_cast<Weight>(worst + 1);
  }

  QuboBuilder b(g.node_count());

  // Linear terms: split across the chain (remainder on the first qubit).
  for (VarIndex i = 0; i < n; ++i) {
    const Weight w = logical.diag(i);
    if (w == 0) continue;
    const auto& chain = emb.chains[i];
    const auto len = static_cast<Weight>(chain.size());
    const Weight share = static_cast<Weight>(w / len);
    const Weight rem = static_cast<Weight>(w - share * len);
    for (std::size_t t = 0; t < chain.size(); ++t) {
      Weight piece = share;
      if (t == 0) piece = static_cast<Weight>(piece + rem);
      if (piece != 0) b.add_linear(chain[t], piece);
    }
  }

  // Quadratic terms: full weight on the first physical coupler found
  // between the two chains.
  for (VarIndex i = 0; i < n; ++i) {
    const auto nbrs = logical.neighbors(i);
    const auto w = logical.weights(i);
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      const VarIndex j = nbrs[t];
      if (j < i) continue;  // each logical edge once
      bool placed = false;
      for (const VarIndex a : emb.chains[i]) {
        for (const VarIndex bq : emb.chains[j]) {
          if (g.adjacent(a, bq)) {
            b.add_quadratic(a, bq, w[t]);
            placed = true;
            break;
          }
        }
        if (placed) break;
      }
      DABS_CHECK(placed, "no physical coupler for a logical edge");
    }
  }

  // Chain penalties on every physical edge inside a chain:
  // S * (x_a + x_b - 2 x_a x_b).
  for (const auto& chain : emb.chains) {
    for (std::size_t a = 0; a < chain.size(); ++a) {
      for (std::size_t c = a + 1; c < chain.size(); ++c) {
        if (!g.adjacent(chain[a], chain[c])) continue;
        b.add_quadratic(chain[a], chain[c],
                        static_cast<Weight>(-2 * chain_strength));
        b.add_linear(chain[a], chain_strength);
        b.add_linear(chain[c], chain_strength);
      }
    }
  }
  return b.build();
}

BitVector unembed(const BitVector& physical, const Embedding& emb) {
  BitVector logical(emb.logical_count());
  for (std::size_t i = 0; i < emb.chains.size(); ++i) {
    std::size_t ones = 0;
    for (const VarIndex v : emb.chains[i]) ones += physical.get(v);
    logical.set(i, 2 * ones > emb.chains[i].size());
  }
  return logical;
}

bool chains_intact(const BitVector& physical, const Embedding& emb) {
  for (const auto& chain : emb.chains) {
    const bool v0 = physical.get(chain[0]);
    for (const VarIndex v : chain) {
      if (physical.get(v) != v0) return false;
    }
  }
  return true;
}

}  // namespace dabs::problems
