#include "problems/chimera.hpp"

#include "util/assert.hpp"

namespace dabs::problems {

ChimeraGraph::ChimeraGraph(std::size_t m) : m_(m) {
  DABS_CHECK(m >= 1, "Chimera requires m >= 1");
  auto id = [&](std::size_t y, std::size_t x, unsigned u, unsigned k) {
    return static_cast<VarIndex>(((y * m_ + x) * 2 + u) * 4 + k);
  };
  // Internal K4,4 couplers.
  for (std::size_t y = 0; y < m; ++y) {
    for (std::size_t x = 0; x < m; ++x) {
      for (unsigned k = 0; k < 4; ++k) {
        for (unsigned k2 = 0; k2 < 4; ++k2) {
          edges_.emplace_back(id(y, x, 0, k), id(y, x, 1, k2));
        }
      }
    }
  }
  // External vertical couplers (u = 0 qubits span rows).
  for (std::size_t y = 0; y + 1 < m; ++y) {
    for (std::size_t x = 0; x < m; ++x) {
      for (unsigned k = 0; k < 4; ++k) {
        edges_.emplace_back(id(y, x, 0, k), id(y + 1, x, 0, k));
      }
    }
  }
  // External horizontal couplers (u = 1 qubits span columns).
  for (std::size_t y = 0; y < m; ++y) {
    for (std::size_t x = 0; x + 1 < m; ++x) {
      for (unsigned k = 0; k < 4; ++k) {
        edges_.emplace_back(id(y, x, 1, k), id(y, x + 1, 1, k));
      }
    }
  }
}

VarIndex ChimeraGraph::node_id(const ChimeraCoord& c) const {
  DABS_CHECK(c.y < m_ && c.x < m_ && c.u < 2 && c.k < 4,
             "Chimera coordinate out of range");
  return static_cast<VarIndex>(((c.y * m_ + c.x) * 2 + c.u) * 4 + c.k);
}

ChimeraCoord ChimeraGraph::coord(VarIndex v) const {
  DABS_CHECK(v < node_count(), "node id out of range");
  ChimeraCoord c;
  c.k = static_cast<std::uint8_t>(v % 4);
  v /= 4;
  c.u = static_cast<std::uint8_t>(v % 2);
  v /= 2;
  c.x = static_cast<std::uint16_t>(v % m_);
  c.y = static_cast<std::uint16_t>(v / m_);
  return c;
}

bool ChimeraGraph::adjacent(VarIndex a, VarIndex b) const {
  const ChimeraCoord ca = coord(a), cb = coord(b);
  if (ca.y == cb.y && ca.x == cb.x) {
    return ca.u != cb.u;  // internal K4,4
  }
  if (ca.u != cb.u) return false;
  if (ca.k != cb.k) return false;
  if (ca.u == 0) {
    return ca.x == cb.x && (ca.y + 1 == cb.y || cb.y + 1 == ca.y);
  }
  return ca.y == cb.y && (ca.x + 1 == cb.x || cb.x + 1 == ca.x);
}

std::vector<std::uint32_t> ChimeraGraph::degrees() const {
  std::vector<std::uint32_t> deg(node_count(), 0);
  for (const auto& [a, b] : edges_) {
    ++deg[a];
    ++deg[b];
  }
  return deg;
}

}  // namespace dabs::problems
