// Traveling Salesperson -> QAP -> QUBO (paper §II-B: "the TSP can be solved
// by a QAP algorithm by setting a circular logistic flow of the
// facilities").
//
// Cities become QAP *locations*; tour positions become *facilities* with a
// circular flow l(i, (i+1) mod n) = 1.  Then the QAP cost of assignment g
// is exactly the length of the tour that visits city g(0), g(1), ...,
// g(n-1) and returns to g(0).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "problems/qap.hpp"
#include "qubo/types.hpp"

namespace dabs::problems {

struct TspInstance {
  std::size_t n = 0;
  std::vector<int> dist;  // n*n row-major city distances
  std::string name;

  int d(std::size_t a, std::size_t b) const { return dist[n * a + b]; }

  /// Length of the closed tour visiting tour[0] -> tour[1] -> ... -> tour[0].
  Energy tour_length(const std::vector<VarIndex>& tour) const;
};

/// The circular-flow QAP whose assignments are tours.
QapInstance tsp_to_qap(const TspInstance& inst);

/// Random Euclidean instance: cities uniform on a `grid` x `grid` square,
/// rounded Euclidean distances (symmetric).
TspInstance make_euclidean_tsp(std::size_t n, int grid, std::uint64_t seed,
                               std::string name = "euclid");

/// Exact optimum by enumerating tours with city 0 fixed first (n <= 11).
Energy tsp_brute_force(const TspInstance& inst,
                       std::vector<VarIndex>* best_tour = nullptr);

}  // namespace dabs::problems
