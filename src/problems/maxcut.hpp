// MaxCut -> QUBO reduction and benchmark instance generators (paper §II-A,
// §VI-A).
//
// Reduction: each edge (u, v, w) contributes w * (2 x_u x_v - x_u - x_v),
// which evaluates to -w when the edge is cut and 0 otherwise, so
// E(X) = -cut(X) for every X and minimizing energy maximizes the cut.
//
// Instances: generators reproducing the published constructions of the
// three benchmark graphs (K2000 and Gset G22/G39) by node/edge count and
// weight distribution; the real files can be loaded via io/gset.hpp when
// available.  See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "qubo/types.hpp"
#include "util/bit_vector.hpp"

namespace dabs::problems {

struct WeightedEdge {
  VarIndex u, v;
  Weight w;
};

struct MaxCutInstance {
  std::size_t n = 0;
  std::vector<WeightedEdge> edges;
  std::string name;

  /// Total weight of edges crossing the partition (x_u != x_v).
  Energy cut_value(const BitVector& partition) const;
};

/// Builds the QUBO model with E(X) = -cut(X).  `backend` forces the kernel
/// backend (kAuto picks dense for complete graphs like K2000).
QuboModel maxcut_to_qubo(const MaxCutInstance& inst,
                         QuboBackend backend = QuboBackend::kAuto);

/// Weight distribution for random instances.
enum class EdgeWeights : std::uint8_t {
  kPlusOne,     // all +1 (G22 style)
  kPlusMinusOne // uniform ±1 (K2000 / G39 style)
};

/// Random graph with exactly `m` distinct edges over `n` nodes.
MaxCutInstance make_random_maxcut(std::size_t n, std::size_t m,
                                  EdgeWeights weights, std::uint64_t seed,
                                  std::string name = "random");

/// Complete graph with i.i.d. ±1 weights.
MaxCutInstance make_complete_maxcut(std::size_t n, std::uint64_t seed,
                                    std::string name = "complete");

/// K2000 equivalent: 2000-node complete graph, ±1 weights [33].
MaxCutInstance make_k2000(std::uint64_t seed = 2000);

/// G22 equivalent: 2000 nodes, 19990 edges, +1 weights.
MaxCutInstance make_g22_like(std::uint64_t seed = 22);

/// G39 equivalent: 2000 nodes, 11778 edges, ±1 weights.
MaxCutInstance make_g39_like(std::uint64_t seed = 39);

}  // namespace dabs::problems
