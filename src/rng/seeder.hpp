// Host-side seed fan-out (paper §V): the host generates random seeds with
// the Mersenne Twister and hands one 64-bit seed to every device thread.
// MersenneSeeder reproduces that arrangement; a master seed makes an entire
// multi-device run reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "rng/xorshift.hpp"

namespace dabs {

class MersenneSeeder {
 public:
  explicit MersenneSeeder(std::uint64_t master_seed) : mt_(master_seed) {}

  /// Next 64-bit device seed.
  std::uint64_t next_seed() { return mt_(); }

  /// A ready-to-use device generator.
  Rng next_rng() { return Rng(next_seed()); }

  /// `count` seeds at once (e.g. one per CUDA-block-equivalent executor).
  std::vector<std::uint64_t> seeds(std::size_t count) {
    std::vector<std::uint64_t> out(count);
    for (auto& s : out) s = next_seed();
    return out;
  }

 private:
  std::mt19937_64 mt_;
};

/// Cube-weighted pool rank from the paper (§IV-A): draw r uniform in [0,1)
/// and return floor(r^3 * m), which picks low (better) ranks with higher
/// probability; rank 0 is chosen with probability m^{-1/3}.
std::size_t cube_weighted_rank(Rng& rng, std::size_t m);

/// Deterministic core of cube_weighted_rank, exposed so the r -> 1 rounding
/// guard is directly testable: for any r in [0, 1] (including exactly 1.0,
/// which next_unit() cannot produce but floating rounding can approach)
/// the result is clamped to m - 1.  Requires m > 0.
std::size_t cube_weighted_rank_from_unit(double r, std::size_t m);

}  // namespace dabs
