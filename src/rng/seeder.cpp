#include "rng/seeder.hpp"

#include "util/assert.hpp"

namespace dabs {

std::size_t cube_weighted_rank(Rng& rng, std::size_t m) {
  DABS_CHECK(m > 0, "cube_weighted_rank requires a non-empty pool");
  const double r = rng.next_unit();
  auto rank = static_cast<std::size_t>(r * r * r * double(m));
  // Guard against floating rounding at r -> 1.
  return rank < m ? rank : m - 1;
}

}  // namespace dabs
