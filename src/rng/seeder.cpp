#include "rng/seeder.hpp"

#include "util/assert.hpp"

namespace dabs {

std::size_t cube_weighted_rank_from_unit(double r, std::size_t m) {
  DABS_CHECK(m > 0, "cube_weighted_rank requires a non-empty pool");
  auto rank = static_cast<std::size_t>(r * r * r * double(m));
  // Guard against floating rounding at r -> 1: r^3 * m can round up to
  // exactly m (e.g. r = (2^53 - 1) / 2^53 with large m), which would index
  // one past the end of the pool.
  return rank < m ? rank : m - 1;
}

std::size_t cube_weighted_rank(Rng& rng, std::size_t m) {
  return cube_weighted_rank_from_unit(rng.next_unit(), m);
}

}  // namespace dabs
