// Per-thread random number generation as described in the paper (§V):
// the host seeds every device thread with a 64-bit value produced by a
// Mersenne Twister, and each device thread then runs Xorshift to draw
// numbers cheaply.
//
// Xorshift64Star satisfies the C++ UniformRandomBitGenerator concept so it
// can also feed <random> distributions where convenient, but the search
// kernels use the branch-light helpers below (next_index, next_unit, ...)
// to avoid distribution overhead in the flip loop.
#pragma once

#include <cstdint>

namespace dabs {

class Xorshift64Star {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; a zero seed is remapped to a fixed odd constant
  /// because the all-zero state is a fixed point of the xorshift map.
  explicit Xorshift64Star(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) {
    state_ = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  /// Uses the 128-bit multiply trick (Lemire) — no modulo in the hot loop.
  std::uint64_t next_index(std::uint64_t bound) noexcept {
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_unit() noexcept {
    return double((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bernoulli(double p) noexcept { return next_unit() < p; }

  /// Uniform random bit.
  bool next_bit() noexcept { return ((*this)() >> 63) & 1u; }

  std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

/// Default generator type used across the library.
using Rng = Xorshift64Star;

}  // namespace dabs
