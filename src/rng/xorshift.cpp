#include "rng/xorshift.hpp"

// Header-only implementation; this translation unit exists so the module has
// a home in the library and to catch ODR/type errors early in the build.
namespace dabs {
static_assert(Xorshift64Star::min() < Xorshift64Star::max());
}  // namespace dabs
