#include "net/http_parser.hpp"

#include <algorithm>
#include <cctype>

namespace dabs::net {

namespace {

const std::string kEmpty;

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t first = 0;
  std::size_t last = s.size();
  while (first < last && (s[first] == ' ' || s[first] == '\t')) ++first;
  while (last > first && (s[last - 1] == ' ' || s[last - 1] == '\t')) --last;
  return s.substr(first, last - first);
}

/// Strict non-negative decimal parse for Content-Length (leading junk,
/// signs, and overflow all rejected — a smuggling-shaped header must not
/// silently truncate).
bool parse_content_length(const std::string& text, std::size_t* out) {
  if (text.empty() || text.size() > 12) return false;  // 4 TiB is past any bound
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const std::string& HttpRequest::header(
    const std::string& lowercase_name) const {
  const auto it = headers.find(lowercase_name);
  return it == headers.end() ? kEmpty : it->second;
}

HttpRequestParser::HttpRequestParser(Limits limits) : limits_(limits) {}

void HttpRequestParser::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

HttpRequestParser::Status HttpRequestParser::fail(int status,
                                                  std::string message) {
  failed_ = true;
  error_status_ = status;
  error_ = std::move(message);
  return Status::kError;
}

HttpRequestParser::Status HttpRequestParser::poll(HttpRequest& out) {
  if (failed_) return Status::kError;

  // Head = request line + headers, terminated by a blank line.
  const std::size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return fail(431, "request header exceeds " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    }
    return Status::kNeedMore;
  }
  if (head_end > limits_.max_header_bytes) {
    return fail(431, "request header exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");
  }

  HttpRequest req;

  // Request line: METHOD SP request-target SP HTTP-version.
  const std::size_t line_end = buffer_.find("\r\n");
  const std::string line = buffer_.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return fail(400, "malformed request line");
  }
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
    return fail(400, "malformed request line");
  }
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version '" + req.version + "'");
  }
  const std::size_t qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  req.query =
      qmark == std::string::npos ? "" : req.target.substr(qmark + 1);

  // Header fields.
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    const std::size_t eol = buffer_.find("\r\n", pos);
    const std::string field = buffer_.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      return fail(400, "malformed header field");
    }
    // Whitespace before the colon is a smuggling vector (RFC 9112 §5.1).
    if (field[colon - 1] == ' ' || field[colon - 1] == '\t') {
      return fail(400, "whitespace before header colon");
    }
    req.headers[lowercase(field.substr(0, colon))] =
        trim(field.substr(colon + 1));
  }

  // Body framing: Content-Length only.
  if (req.headers.count("transfer-encoding") != 0) {
    return fail(501, "chunked request bodies are not supported "
                     "(send Content-Length)");
  }
  std::size_t content_length = 0;
  const auto cl = req.headers.find("content-length");
  if (cl != req.headers.end() &&
      !parse_content_length(cl->second, &content_length)) {
    return fail(400, "malformed Content-Length");
  }
  if (content_length > limits_.max_body_bytes) {
    return fail(413, "request body exceeds " +
                         std::to_string(limits_.max_body_bytes) + " bytes");
  }

  const std::size_t body_start = head_end + 4;
  if (buffer_.size() - body_start < content_length) {
    return Status::kNeedMore;  // body still arriving
  }

  // Keep-alive: HTTP/1.1 defaults on, HTTP/1.0 off; Connection overrides.
  const std::string connection = lowercase(req.header("connection"));
  if (req.version == "HTTP/1.0") {
    req.keep_alive = connection == "keep-alive";
  } else {
    req.keep_alive = connection != "close";
  }

  req.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  out = std::move(req);
  return Status::kReady;
}

}  // namespace dabs::net
