// Incremental HTTP/1.1 request parser for the embedded solve server.
//
// Feed raw socket bytes in as they arrive; poll() yields one complete
// request at a time (pipelined requests queue in the buffer and come out
// on subsequent polls).  Scope is exactly what the solve API needs:
//
//   - request line + headers + optional Content-Length body
//   - keep-alive semantics (HTTP/1.1 default-on, HTTP/1.0 default-off,
//     "Connection: close/keep-alive" overrides)
//   - bounded header and body sizes (oversize input is an error with the
//     right status code, never unbounded buffering)
//
// Chunked *request* bodies are rejected with 501 — every client this
// server is built for (curl, the repo's HttpClient, load balancers) sends
// Content-Length.  Chunked responses are the server's side and live in
// http_server.cpp.
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace dabs::net {

struct HttpRequest {
  std::string method;  // uppercase as received ("GET", "POST", ...)
  std::string target;  // raw request-target ("/v1/jobs/7?x=1")
  std::string path;    // target up to '?' ("/v1/jobs/7")
  std::string query;   // after '?', possibly empty
  std::string version;  // "HTTP/1.1"
  /// Header fields, names lowercased (values verbatim, surrounding
  /// whitespace trimmed).  Duplicate names keep the last value — fine for
  /// everything this API reads.
  std::map<std::string, std::string> headers;
  std::string body;
  /// Whether the connection should stay open after the response.
  bool keep_alive = true;

  /// Case-insensitive header lookup (name given lowercase); "" if absent.
  const std::string& header(const std::string& lowercase_name) const;
};

class HttpRequestParser {
 public:
  struct Limits {
    std::size_t max_header_bytes = std::size_t{16} << 10;
    std::size_t max_body_bytes = std::size_t{4} << 20;
  };

  enum class Status {
    kNeedMore,  // no complete request buffered yet
    kReady,     // `out` holds one complete request
    kError,     // protocol violation; see error_status()/error()
  };

  HttpRequestParser() : HttpRequestParser(Limits{}) {}
  explicit HttpRequestParser(Limits limits);

  /// Appends raw bytes from the socket.
  void feed(const char* data, std::size_t size);

  /// Tries to extract the next complete request.  After kReady the
  /// parser has consumed that request's bytes and is ready for the next
  /// (pipelining).  After kError the connection is unrecoverable — the
  /// byte stream's framing is lost; respond and close.
  Status poll(HttpRequest& out);

  /// For kError: the HTTP status to answer with (400, 413, 431, 501).
  int error_status() const noexcept { return error_status_; }
  const std::string& error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  Status fail(int status, std::string message);

  Limits limits_;
  std::string buffer_;
  int error_status_ = 0;
  std::string error_;
  bool failed_ = false;
};

}  // namespace dabs::net
