// Dependency-free embedded HTTP/1.1 server: a single-threaded poll(2)
// event loop over non-blocking sockets, the incremental request parser
// from http_parser.hpp, keep-alive + pipelining, bounded connection /
// header / body limits, and chunked streaming responses (the job-events
// endpoint).  poll is used rather than epoll so the loop is portable
// POSIX; at the connection counts a solve server sees (hundreds, not
// hundreds of thousands) the O(n) scan is nowhere near the profile.
//
// Threading model: everything — accept, parse, the handler, writes — runs
// on the thread that called run().  Handlers must therefore be fast or
// hand back a ChunkSource and stream incrementally; the solve API fits
// because submit/status/cancel are queue operations (the actual solving
// happens on the SolverService worker pool) and the one long-lived
// endpoint (events) streams through a ChunkSource.  stop() is the only
// member safe to call from other threads (self-pipe wakeup).
//
// Failpoints (DABS_FAILPOINTS, see util/failpoint.hpp): "net.accept" fires
// inside the accept loop (the new connection is dropped, the server keeps
// listening), "net.write" fires in the response write path (that
// connection closes as if the peer vanished; everything else lives on).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/http_parser.hpp"
#include "net/net_util.hpp"

namespace dabs::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers emitted verbatim (name -> value).  Content-Length,
  /// Transfer-Encoding, and Connection are managed by the server.
  std::map<std::string, std::string> headers;
};

/// Incremental body producer for chunked streaming responses.  next() is
/// called from the event loop and MUST NOT block: return kChunk with data
/// when some is ready, kIdle to be polled again after the configured
/// stream interval, kDone to finish the stream.
class ChunkSource {
 public:
  enum class Next { kChunk, kIdle, kDone };
  virtual ~ChunkSource() = default;
  virtual Next next(std::string& chunk) = 0;
};

/// What a handler returns: a complete response, optionally followed by a
/// chunked stream (when `stream` is set, `response.body` must be empty
/// and the body is produced by the source).
struct HttpResult {
  HttpResponse response;
  std::unique_ptr<ChunkSource> stream;
};

using HttpHandler = std::function<HttpResult(const HttpRequest&)>;

class HttpServer {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; see port()
    std::size_t max_connections = 256;
    std::size_t max_header_bytes = std::size_t{16} << 10;
    std::size_t max_body_bytes = std::size_t{4} << 20;
    /// Connections idle past this (nothing read, nothing pending) close.
    double idle_timeout_seconds = 60.0;
    /// Cadence at which idle ChunkSources are re-polled.
    double stream_poll_seconds = 0.05;
  };

  /// Event-loop-local counters (written only by the run() thread; read
  /// them from a handler — /v1/stats does — or after run() returns).
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  // over max_connections
    std::uint64_t accept_faults = 0;         // net.accept failpoint / errors
    std::uint64_t requests = 0;
    std::uint64_t handler_errors = 0;  // handler threw (client got a 500)
    std::uint64_t write_errors = 0;    // connection died mid-response
  };

  /// Binds and listens immediately (throws std::runtime_error on
  /// bind/listen failure) so the caller knows the port before run().
  HttpServer(Config config, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actual bound port (resolves ephemeral port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Serves until stop() is called or `stop` (optional) becomes true.
  /// Call from exactly one thread.
  void run(const std::atomic<bool>* stop = nullptr);

  /// Thread-safe: wakes the loop and makes run() return after the current
  /// iteration.  Idempotent.
  void stop();

  const Counters& counters() const noexcept { return counters_; }

 private:
  struct Connection;

  void accept_ready();
  /// Reads, parses, dispatches; returns false when the connection died.
  bool service_input(Connection& conn);
  void dispatch(Connection& conn, const HttpRequest& request);
  void queue_response(Connection& conn, const HttpResponse& response,
                      bool chunked, bool keep_alive);
  /// Writes buffered output and pumps the stream; returns false when the
  /// connection died (write error / injected net.write fault).
  bool flush_output(Connection& conn);
  bool pump_stream(Connection& conn);

  Config config_;
  HttpHandler handler_;
  UniqueFd listener_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::map<int, std::unique_ptr<Connection>> connections_;
  Counters counters_;
};

/// Reason-phrase for the status codes this server emits ("OK", "Bad
/// Request", ...); "Unknown" for anything unmapped.
const char* http_status_text(int status) noexcept;

}  // namespace dabs::net
