// SolveServer: the HTTP/1.1 solve API, mounted over any JobBackend (a
// local JobApi or a ShardBackend).  Endpoints:
//
//   POST   /v1/jobs             submit one batch-schema job object
//   GET    /v1/jobs/{id}        state + SolveReport (decode/verify extras)
//   GET    /v1/jobs/{id}/events chunked stream of event-log pages
//   DELETE /v1/jobs/{id}        cancel
//   GET    /v1/solvers          solver registry listing
//   GET    /v1/problems         problem registry listing
//   GET    /v1/healthz          liveness + uptime, pid, shard topology,
//                               build info
//   GET    /v1/stats            backend stats + HTTP counters
//   GET    /v1/metrics          Prometheus text exposition (sharded
//                               topologies aggregate every worker's
//                               registry with per-shard labels)
//
// Status mapping: 400 schema/parse (the batch runner's validation
// messages), 404 unknown id, 409 cancel of a terminal job, 413/431 size
// limits, 421 a key/id this --shard-of server does not own, 429 admission
// shed, 500 handler error, 503 shard RPC failure.
//
// The events endpoint streams chunked transfer encoding: one JSON object
// per chunk (an event page with a cursor), polled from the backend at the
// server's stream cadence until the job is terminal and drained.  A
// cursor query parameter (?cursor=N) resumes a dropped stream.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "net/http_server.hpp"
#include "net/job_api.hpp"
#include "net/shard_router.hpp"
#include "util/timer.hpp"

namespace dabs::net {

class SolveServer {
 public:
  struct Config {
    HttpServer::Config http;
    /// Set when this process serves one shard of an externally
    /// load-balanced group (`--shard-of k/N`): requests for keys or ids
    /// another shard owns come back 421 with the owner in the body.
    /// Leave unset for the single-server and internally-sharded
    /// topologies (their routing happens before/inside the backend).
    std::optional<std::size_t> shard_of_idx;
    std::size_t shard_of_total = 1;
  };

  /// Binds immediately (see HttpServer); `backend` must outlive this.
  SolveServer(Config config, JobBackend& backend);

  std::uint16_t port() const noexcept { return http_.port(); }
  void run(const std::atomic<bool>* stop = nullptr) { http_.run(stop); }
  void stop() { http_.stop(); }
  const HttpServer::Counters& http_counters() const noexcept {
    return http_.counters();
  }

 private:
  HttpResult route(const HttpRequest& request);
  HttpResult handle_jobs_path(const HttpRequest& request);
  HttpResult stats_result();
  HttpResult healthz_result();

  Config config_;
  JobBackend& backend_;
  /// Server lifetime, for /v1/healthz uptime_seconds.
  Stopwatch uptime_;
  /// Only used in --shard-of mode, for submit-key ownership checks.
  HashRing ring_;
  HttpServer http_;  // declared last: its handler captures `this`
};

}  // namespace dabs::net
