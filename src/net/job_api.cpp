#include "net/job_api.hpp"

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/json_writer.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "problems/problem.hpp"
#include "problems/problem_registry.hpp"

namespace dabs::net {

namespace {

obs::Counter& journal_error_counter() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "dabs_journal_append_errors_total",
      "Journal appends that failed (the server keeps serving without "
      "durability).");
  return counter;
}

std::string error_body(const std::string& message) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("error", message).end_object();
  }
  return out.str();
}

const char* event_kind_name(service::JobEvent::Kind kind) {
  return kind == service::JobEvent::Kind::kNewBest ? "new_best" : "tick";
}

/// Splits "<16 hex>#N" into its base and occurrence (1 when unsuffixed).
void split_fingerprint(const std::string& fp, std::string* base,
                       std::uint64_t* occurrence) {
  const std::size_t hash = fp.find('#');
  if (hash == std::string::npos) {
    *base = fp;
    *occurrence = 1;
    return;
  }
  *base = fp.substr(0, hash);
  *occurrence = std::strtoull(fp.c_str() + hash + 1, nullptr, 10);
  if (*occurrence == 0) *occurrence = 1;
}

}  // namespace

std::string routing_key(const service::BatchJob& job) {
  if (job.problem.empty()) {
    return job.format + "#" + job.model_path;
  }
  std::string key = job.problem;
  for (const auto& [k, v] : job.params.values()) {
    key += '\x1f' + k + '=' + v;
  }
  return key;
}

JobApi::JobApi(Config config)
    : config_(std::move(config)),
      service_([this] {
        service::SolverService::Config sc;
        sc.threads = config_.threads;
        sc.cache_bytes = config_.cache_bytes;
        sc.max_queue_depth = config_.max_queue_depth;
        sc.max_events_per_job = config_.max_events_per_job;
        sc.on_started = [this](service::JobId, const service::JobSpec& spec) {
          const auto it = spec.extras.find("fingerprint");
          if (it == spec.extras.end()) return;
          service::JournalRecord record;
          record.event = service::JournalEvent::kStarted;
          record.fingerprint = it->second;
          record.tag = spec.tag;
          journal_append(record);
        };
        return sc;
      }()) {
  service::JobJournal::Replay replay;
  if (!config_.journal_path.empty()) {
    if (config_.resume) {
      replay = service::JobJournal::replay(config_.journal_path);
    }
    journal_ = std::make_unique<service::JobJournal>(config_.journal_path);
  } else if (config_.resume) {
    throw std::invalid_argument("resume requires a journal path");
  }

  if (config_.resume) {
    // Occurrence numbering must continue where the crashed run left off —
    // a fresh submit of a body already journaled as "abc" must become
    // "abc#2", and a re-submission must keep its original fingerprint, or
    // the journal would say "submitted" after "done" for the wrong job.
    for (const auto& [fp, event] : replay.last_event) {
      std::string base;
      std::uint64_t occurrence = 0;
      split_fingerprint(fp, &base, &occurrence);
      std::uint64_t& seen = fingerprint_occurrences_[base];
      if (occurrence > seen) seen = occurrence;
    }
    for (const auto& [fp, event] : replay.last_event) {
      if (service::is_replay_terminal(event)) continue;
      const auto body = replay.submitted_detail.find(fp);
      if (body == replay.submitted_detail.end()) continue;  // unrecoverable
      const ApiReply reply = submit_internal(body->second, fp);
      if (reply.status == 202) ++resumed_;
    }
  }

  reaper_ = std::thread([this] { reaper_loop(); });
}

JobApi::~JobApi() {
  stop_reaper_.store(true, std::memory_order_relaxed);
  if (reaper_.joinable()) reaper_.join();
  if (!config_.trace_path.empty() && !trace_.empty()) {
    trace_.write_file(config_.trace_path);
  }
  // The service dtor cancels and joins workers; the on_started hook can
  // still fire until then, so journal_ must outlive it (member order).
}

void JobApi::journal_append(const service::JournalRecord& record) {
  if (!journal_) return;
  try {
    journal_->append(record);
  } catch (const std::exception& e) {
    // Keep serving without durability; /v1/stats surfaces the count.
    journal_errors_.fetch_add(1, std::memory_order_relaxed);
    journal_error_counter().inc();
    static obs::LogRateLimit gate(5.0);
    std::uint64_t suppressed = 0;
    if (gate.allow(&suppressed)) {
      obs::log(obs::LogLevel::kWarn, "journal", "append failed",
               {{"error", e.what()}, {"suppressed", suppressed}});
    }
  }
}

ApiReply JobApi::submit(const std::string& body) {
  return submit_internal(body, "");
}

ApiReply JobApi::submit_internal(const std::string& body,
                                 const std::string& forced_fingerprint) {
  service::BatchJob job;
  try {
    job = service::parse_batch_job(body);
  } catch (const std::exception& e) {
    return {400, error_body(e.what())};
  }

  std::lock_guard lock(mu_);

  std::string fingerprint = forced_fingerprint;
  if (fingerprint.empty()) {
    fingerprint = service::job_fingerprint(job);
    const std::uint64_t occurrence =
        ++fingerprint_occurrences_[fingerprint];
    if (occurrence > 1) fingerprint += "#" + std::to_string(occurrence);
  }

  // Write-ahead with the raw request in `detail`: a server killed after
  // this point can reconstruct and re-enqueue the job on --resume.
  {
    service::JournalRecord record;
    record.event = service::JournalEvent::kSubmitted;
    record.fingerprint = fingerprint;
    record.tag = job.spec.tag;
    record.detail = body;
    journal_append(record);
  }
  const auto journal_failed = [&](const std::string& detail) {
    service::JournalRecord record;
    record.event = service::JournalEvent::kFailed;
    record.fingerprint = fingerprint;
    record.tag = job.spec.tag;
    record.detail = detail;
    journal_append(record);
  };

  // Resolve the model exactly like the batch runner: problem jobs through
  // the registry (bad spec = caller's 400), every model through the
  // service's cache under the same keys.
  std::shared_ptr<const Problem> problem;
  std::string cache_key;
  if (!job.problem.empty()) {
    try {
      problem = ProblemRegistry::global().create(job.problem, job.params);
    } catch (const std::exception& e) {
      journal_failed(std::string("invalid: ") + e.what());
      return {400, error_body(e.what())};
    }
    cache_key = "problem#" + problem->cache_key();
  } else {
    cache_key = job.format + "#" + job.model_path;
  }
  bool cache_hit = false;
  std::shared_ptr<const QuboModel> model;
  try {
    model = service_.cache().get_or_load(
        cache_key,
        [&job, &problem] {
          return problem ? problem->encode()
                         : service::load_model_file(job.format,
                                                    job.model_path);
        },
        &cache_hit);
  } catch (const std::exception& e) {
    // Unreadable file / failed generator: the environment's fault, not
    // the request's.  No retry loop here — an HTTP client re-POSTs.
    journal_failed(e.what());
    return {500, error_body(e.what())};
  }

  job.spec.model = model;
  if (job.spec.stop.time_limit_seconds <= 0 &&
      job.spec.stop.max_batches == 0) {
    job.spec.stop.time_limit_seconds = config_.default_time_limit;
  }
  service::apply_time_governed_budgets(job.spec.solver, job.spec.stop,
                                       job.spec.options);
  if (!job.explicit_attempts) job.spec.max_attempts = config_.max_attempts;
  job.spec.extras["model"] = model->describe();
  job.spec.extras["model_cache"] = cache_hit ? "hit" : "miss";
  job.spec.extras["fingerprint"] = fingerprint;

  service::JobId local = 0;
  try {
    local = service_.submit(std::move(job.spec));
  } catch (const std::exception& e) {
    journal_failed(std::string("invalid: ") + e.what());
    return {400, error_body(e.what())};  // unknown solver / bad options
  }
  pending_.emplace(local, Pending{problem, model, fingerprint});

  const std::uint64_t global = to_global(local);
  const service::JobState state = service_.state(local);
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("job_id", global)
        .value("fingerprint", fingerprint)
        .value("state", service::to_string(state));
    if (state == service::JobState::kRejected) {
      json.value("error", service_.snapshot(local).error);
    }
    json.end_object();
  }
  // A shed job is terminal already; the reaper journals its record.
  return {state == service::JobState::kRejected ? 429 : 202, out.str()};
}

std::string JobApi::render_status(std::uint64_t global_id,
                                  const service::JobSnapshot& snap,
                                  const std::string& fingerprint) const {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("job_id", global_id)
        .value("state", service::to_string(snap.state));
    if (!fingerprint.empty()) json.value("fingerprint", fingerprint);
    if (!snap.tag.empty()) json.value("tag", snap.tag);
    if (snap.state == service::JobState::kFailed ||
        snap.state == service::JobState::kRejected) {
      json.value("error", snap.error);
    } else if (snap.state != service::JobState::kQueued) {
      snap.report.write_json(json, "report");
    }
    json.value("events_dropped", snap.events_dropped);
    json.end_object();
  }
  return out.str();
}

ApiReply JobApi::status(std::uint64_t id) {
  if (config_.shards > 1 && id % config_.shards != config_.shard_idx) {
    return {404, error_body("job " + std::to_string(id) +
                            " is owned by shard " +
                            std::to_string(id % config_.shards))};
  }
  const service::JobId local = id / config_.shards;
  std::lock_guard lock(mu_);
  const auto done = finished_.find(local);
  if (done != finished_.end()) {
    return {200, render_status(id, done->second.snap,
                               done->second.fingerprint)};
  }
  try {
    const service::JobSnapshot snap = service_.snapshot(local);
    const auto pend = pending_.find(local);
    return {200, render_status(
                     id, snap,
                     pend == pending_.end() ? "" : pend->second.fingerprint)};
  } catch (const std::out_of_range&) {
    return {404, error_body("unknown job id " + std::to_string(id))};
  }
}

ApiReply JobApi::events(std::uint64_t id, std::uint64_t* cursor, bool* done,
                        std::size_t* count) {
  *done = false;
  *count = 0;
  if (config_.shards > 1 && id % config_.shards != config_.shard_idx) {
    return {404, error_body("job " + std::to_string(id) +
                            " is owned by shard " +
                            std::to_string(id % config_.shards))};
  }
  const service::JobId local = id / config_.shards;

  std::lock_guard lock(mu_);
  service::JobEventBatch batch;
  const auto finished = finished_.find(local);
  if (finished != finished_.end()) {
    // Serve from the retained final snapshot (the service record is
    // already released).  Same sequence numbering as events_since().
    const service::JobSnapshot& snap = finished->second.snap;
    batch.state = snap.state;
    const std::uint64_t first = snap.events_dropped;
    const std::uint64_t total = first + snap.events.size();
    if (*cursor < first) {
      batch.gap = true;
      *cursor = first;
    }
    if (*cursor > total) *cursor = total;
    for (std::uint64_t seq = *cursor; seq < total; ++seq) {
      batch.events.push_back(snap.events[seq - first]);
    }
    *cursor = total;
  } else {
    try {
      batch = service_.events_since(local, *cursor);
    } catch (const std::out_of_range&) {
      return {404, error_body("unknown job id " + std::to_string(id))};
    }
  }
  *done = service::is_terminal(batch.state);
  *count = batch.events.size();

  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("job_id", id)
        .value("state", service::to_string(batch.state))
        .value("cursor", *cursor);
    if (batch.gap) json.value("gap", true);
    json.begin_array("events");
    for (const service::JobEvent& event : batch.events) {
      json.begin_object()
          .value("kind", event_kind_name(event.kind))
          .value("elapsed_seconds", event.elapsed_seconds)
          .value("best_energy", static_cast<std::int64_t>(event.best_energy))
          .value("work", event.work)
          .end_object();
    }
    json.end_array().end_object();
  }
  return {200, out.str()};
}

ApiReply JobApi::cancel(std::uint64_t id) {
  if (config_.shards > 1 && id % config_.shards != config_.shard_idx) {
    return {404, error_body("job " + std::to_string(id) +
                            " is owned by shard " +
                            std::to_string(id % config_.shards))};
  }
  const service::JobId local = id / config_.shards;
  std::lock_guard lock(mu_);
  if (finished_.count(local) != 0) {
    return {409, error_body("job " + std::to_string(id) +
                            " is already terminal")};
  }
  try {
    if (service_.cancel(local)) {
      std::ostringstream out;
      {
        io::JsonWriter json(out);
        json.begin_object()
            .value("job_id", id)
            .value("cancelling", true)
            .end_object();
      }
      return {202, out.str()};
    }
    // Known id, already terminal (reaper has not collected it yet).
    service_.state(local);  // throws when the id was never submitted
    return {409, error_body("job " + std::to_string(id) +
                            " is already terminal")};
  } catch (const std::out_of_range&) {
    return {404, error_body("unknown job id " + std::to_string(id))};
  }
}

ApiReply JobApi::stats() {
  const service::ServiceStats s = service_.stats();
  std::lock_guard lock(mu_);
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("shard", static_cast<std::uint64_t>(config_.shard_idx))
        .value("shards", static_cast<std::uint64_t>(config_.shards))
        .value("queue_depth", static_cast<std::uint64_t>(s.queue_depth))
        .value("active", static_cast<std::uint64_t>(s.active))
        .value("outstanding", static_cast<std::uint64_t>(s.outstanding))
        .value("retained", static_cast<std::uint64_t>(s.retained))
        .value("submitted", s.submitted)
        .value("done", s.done)
        .value("failed", s.failed)
        .value("cancelled", s.cancelled)
        .value("rejected", s.rejected)
        .value("finished_retained",
               static_cast<std::uint64_t>(finished_.size()))
        .value("resumed", static_cast<std::uint64_t>(resumed_))
        .value("journal_errors", journal_errors_);
    json.begin_object("model_cache")
        .value("hits", s.cache.hits)
        .value("misses", s.cache.misses)
        .value("evictions", s.cache.evictions)
        .value("entries", static_cast<std::uint64_t>(s.cache.entries))
        .value("bytes", static_cast<std::uint64_t>(s.cache.bytes))
        .end_object();
    json.end_object();
  }
  return {200, out.str()};
}

ApiReply JobApi::metrics() {
  std::ostringstream out;
  obs::render_prometheus(obs::MetricsRegistry::global().snapshot(), out);
  return {200, out.str()};
}

std::string JobApi::metrics_snapshot_json() {
  std::ostringstream out;
  obs::write_snapshot_json(obs::MetricsRegistry::global().snapshot(), out);
  return out.str();
}

void JobApi::reaper_loop() {
  while (true) {
    const bool stopping = stop_reaper_.load(std::memory_order_relaxed);
    std::optional<service::JobId> id = service_.try_any_finished();
    if (!id) {
      if (stopping) break;
      // Block briefly off-lock; returns (and claims) early when a job
      // finishes, so the claim must be consumed, not discarded.
      id = service_.wait_any_finished_for(0.05);
      if (!id) continue;
    }
    const service::JobId local = *id;
    std::lock_guard lock(mu_);
    service::JobSnapshot snap;
    try {
      snap = service_.snapshot(local);
    } catch (const std::out_of_range&) {
      continue;  // released elsewhere; nothing to retain
    }
    const auto pend = pending_.find(local);
    std::string fingerprint;
    if (pend != pending_.end()) {
      fingerprint = pend->second.fingerprint;
      // Decode/verify exactly as the batch runner does for problem jobs:
      // re-evaluate the energy against the cached model rather than
      // trusting the solver, and never let a verification error take the
      // report down with it.
      if (pend->second.problem &&
          snap.report.best_solution.size() == pend->second.model->size()) {
        try {
          const DomainSolution sol =
              pend->second.problem->decode(snap.report.best_solution);
          const VerifyResult verdict = pend->second.problem->verify(
              snap.report.best_solution,
              pend->second.model->energy(snap.report.best_solution));
          annotate_extras(*pend->second.problem, sol, verdict,
                          snap.report.extras);
        } catch (const std::exception& e) {
          snap.report.extras["problem"] = pend->second.problem->cache_key();
          snap.report.extras["verified"] = "false";
          snap.report.extras["verify_message"] = e.what();
        }
      }
      pending_.erase(pend);
    }

    // Terminal journal record, then retention: the snapshot stays
    // queryable after the service record is released.
    if (!fingerprint.empty()) {
      service::JournalRecord record;
      record.fingerprint = fingerprint;
      record.tag = snap.tag;
      switch (snap.state) {
        case service::JobState::kDone:
          record.event = service::JournalEvent::kDone;
          break;
        case service::JobState::kFailed:
          record.event = service::JournalEvent::kFailed;
          record.detail = snap.error;
          break;
        case service::JobState::kRejected:
          record.event = service::JournalEvent::kRejected;
          record.detail = snap.error;
          break;
        default:
          record.event = service::JournalEvent::kCancelled;
          record.detail =
              snap.report.extras.count("deadline_exceeded") != 0
                  ? "deadline"
                  : "cancelled";
          break;
      }
      journal_append(record);
    }
    service_.release(local);
    if (!config_.trace_path.empty()) {
      obs::JobTrace trace = service::job_trace(snap);
      trace.job_id = to_global(local);
      obs::append_job_trace(trace_, trace);
    }
    finished_[local] = Finished{std::move(snap), std::move(fingerprint)};
    finish_order_.push_back(local);
    while (finish_order_.size() > config_.retention_jobs) {
      finished_.erase(finish_order_.front());
      finish_order_.pop_front();
    }
  }
}

}  // namespace dabs::net
