#include "net/solve_server.hpp"

#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/solver_registry.hpp"
#include "io/json_writer.hpp"
#include "obs/build_info.hpp"
#include "problems/problem_registry.hpp"

namespace dabs::net {

namespace {

std::string error_body(const std::string& message) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("error", message).end_object();
  }
  return out.str();
}

HttpResult reply(int status, std::string body) {
  HttpResult result;
  result.response.status = status;
  result.response.body = std::move(body);
  return result;
}

HttpResult from_api(const ApiReply& api) {
  return reply(api.status, api.body);
}

/// "cursor=N" out of the query string; 0 when absent/garbled.
std::uint64_t cursor_from_query(const std::string& query) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.rfind("cursor=", 0) == 0) {
      return std::strtoull(pair.c_str() + 7, nullptr, 10);
    }
  }
  return 0;
}

/// Streams event pages as chunks until the backend reports the job
/// terminal and drained.  Pages with no events are skipped (kIdle) so an
/// idle stream costs poll cycles, not bytes.
class EventStream final : public ChunkSource {
 public:
  EventStream(JobBackend& backend, std::uint64_t id, std::uint64_t cursor)
      : backend_(backend), id_(id), cursor_(cursor) {}

  Next next(std::string& chunk) override {
    if (finished_) return Next::kDone;
    bool done = false;
    std::size_t count = 0;
    const ApiReply page = backend_.events(id_, &cursor_, &done, &count);
    if (page.status != 200) {
      // The job vanished (retention eviction) or the shard went away;
      // the error object is the stream's last line.
      finished_ = true;
      chunk = page.body + "\n";
      return Next::kChunk;
    }
    if (done) finished_ = true;
    if (count == 0 && !done) return Next::kIdle;
    chunk = page.body + "\n";
    return Next::kChunk;
  }

 private:
  JobBackend& backend_;
  const std::uint64_t id_;
  std::uint64_t cursor_;
  bool finished_ = false;
};

}  // namespace

SolveServer::SolveServer(Config config, JobBackend& backend)
    : config_(std::move(config)),
      backend_(backend),
      ring_(config_.shard_of_total == 0 ? 1 : config_.shard_of_total),
      http_(config_.http,
            [this](const HttpRequest& request) { return route(request); }) {}

HttpResult SolveServer::route(const HttpRequest& request) {
  if (request.path == "/v1/healthz") {
    if (request.method != "GET") return reply(405, error_body("GET only"));
    return healthz_result();
  }
  if (request.path == "/v1/stats") {
    if (request.method != "GET") return reply(405, error_body("GET only"));
    return stats_result();
  }
  if (request.path == "/v1/metrics") {
    if (request.method != "GET") return reply(405, error_body("GET only"));
    HttpResult result = from_api(backend_.metrics());
    if (result.response.status == 200) {
      result.response.content_type =
          "text/plain; version=0.0.4; charset=utf-8";
    }
    return result;
  }
  if (request.path == "/v1/solvers") {
    if (request.method != "GET") return reply(405, error_body("GET only"));
    std::ostringstream out;
    {
      io::JsonWriter json(out);
      json.begin_object().begin_array("solvers");
      for (const SolverInfo& info : SolverRegistry::global().list()) {
        json.begin_object()
            .value("name", info.name)
            .value("description", info.description)
            .end_object();
      }
      json.end_array().end_object();
    }
    return reply(200, out.str());
  }
  if (request.path == "/v1/problems") {
    if (request.method != "GET") return reply(405, error_body("GET only"));
    std::ostringstream out;
    {
      io::JsonWriter json(out);
      json.begin_object().begin_array("problems");
      for (const ProblemInfo& info : ProblemRegistry::global().list()) {
        json.begin_object()
            .value("name", info.name)
            .value("description", info.description)
            .value("takes_path", info.takes_path)
            .end_object();
      }
      json.end_array().end_object();
    }
    return reply(200, out.str());
  }
  if (request.path == "/v1/jobs" || request.path.rfind("/v1/jobs/", 0) == 0) {
    return handle_jobs_path(request);
  }
  return reply(404, error_body("no route for '" + request.path + "'"));
}

HttpResult SolveServer::handle_jobs_path(const HttpRequest& request) {
  if (request.path == "/v1/jobs") {
    if (request.method != "POST") {
      return reply(405, error_body("POST a job object to /v1/jobs"));
    }
    if (config_.shard_of_idx) {
      // External-LB sharding: this process owns one slice of the ring.
      // A misrouted submission is the balancer's bug; point at the owner.
      service::BatchJob job;
      try {
        job = service::parse_batch_job(request.body);
      } catch (const std::exception& e) {
        return reply(400, error_body(e.what()));
      }
      const std::size_t owner = ring_.owner(routing_key(job));
      if (owner != *config_.shard_of_idx) {
        std::ostringstream out;
        {
          io::JsonWriter json(out);
          json.begin_object()
              .value("error", "key is owned by shard " +
                                  std::to_string(owner) + " of " +
                                  std::to_string(config_.shard_of_total))
              .value("shard", static_cast<std::uint64_t>(owner))
              .end_object();
        }
        return reply(421, out.str());
      }
    }
    return from_api(backend_.submit(request.body));
  }

  // "/v1/jobs/{id}" or "/v1/jobs/{id}/events".
  const std::string rest = request.path.substr(sizeof("/v1/jobs/") - 1);
  const std::size_t slash = rest.find('/');
  const std::string id_text = rest.substr(0, slash);
  const std::string tail =
      slash == std::string::npos ? "" : rest.substr(slash);
  if (id_text.empty() ||
      id_text.find_first_not_of("0123456789") != std::string::npos) {
    return reply(400, error_body("malformed job id '" + id_text + "'"));
  }
  const std::uint64_t id = std::strtoull(id_text.c_str(), nullptr, 10);

  if (config_.shard_of_idx && config_.shard_of_total > 1 &&
      id % config_.shard_of_total != *config_.shard_of_idx) {
    std::ostringstream out;
    {
      io::JsonWriter json(out);
      json.begin_object()
          .value("error", "job " + id_text + " is owned by shard " +
                              std::to_string(id % config_.shard_of_total))
          .value("shard",
                 static_cast<std::uint64_t>(id % config_.shard_of_total))
          .end_object();
    }
    return reply(421, out.str());
  }

  if (tail.empty()) {
    if (request.method == "GET") return from_api(backend_.status(id));
    if (request.method == "DELETE") return from_api(backend_.cancel(id));
    return reply(405, error_body("GET or DELETE a job"));
  }
  if (tail == "/events") {
    if (request.method != "GET") return reply(405, error_body("GET only"));
    std::uint64_t cursor = cursor_from_query(request.query);
    bool done = false;
    std::size_t count = 0;
    // First page inline: a 404/503 stays a plain response (no stream is
    // started), and the client always gets an immediate state line.
    const ApiReply first = backend_.events(id, &cursor, &done, &count);
    if (first.status != 200) return from_api(first);
    HttpResult result;
    result.response.status = 200;
    result.response.content_type = "application/jsonl";
    if (done) {
      result.response.body = first.body + "\n";
      return result;
    }
    result.response.body.clear();
    auto stream = std::make_unique<EventStream>(backend_, id, cursor);
    // The first page becomes the first chunk by prepending it.
    class FirstThen final : public ChunkSource {
     public:
      FirstThen(std::string first, std::unique_ptr<ChunkSource> rest)
          : first_(std::move(first)), rest_(std::move(rest)) {}
      Next next(std::string& chunk) override {
        if (!first_.empty()) {
          chunk = std::move(first_);
          first_.clear();
          return Next::kChunk;
        }
        return rest_->next(chunk);
      }

     private:
      std::string first_;
      std::unique_ptr<ChunkSource> rest_;
    };
    result.stream =
        std::make_unique<FirstThen>(first.body + "\n", std::move(stream));
    return result;
  }
  return reply(404, error_body("no route for '" + request.path + "'"));
}

HttpResult SolveServer::healthz_result() {
  const obs::BuildInfo& build = obs::build_info();
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("status", "ok")
        .value("uptime_seconds", uptime_.elapsed_seconds())
        .value("pid", static_cast<std::int64_t>(::getpid()))
        .value("shards", static_cast<std::uint64_t>(backend_.shards()));
    if (config_.shard_of_idx) {
      json.value("shard_of_idx",
                 static_cast<std::uint64_t>(*config_.shard_of_idx))
          .value("shard_of_total",
                 static_cast<std::uint64_t>(config_.shard_of_total));
    }
    json.begin_object("build")
        .value("version", build.version)
        .value("git", build.git)
        .value("compiler", build.compiler)
        .value("build_type", build.build_type)
        .value("flags", build.flags)
        .end_object();
    json.end_object();
  }
  return reply(200, out.str());
}

HttpResult SolveServer::stats_result() {
  const ApiReply backend = backend_.stats();
  const HttpServer::Counters& c = http_.counters();
  std::ostringstream http_json;
  {
    io::JsonWriter json(http_json);
    json.begin_object()
        .value("connections_accepted", c.connections_accepted)
        .value("connections_rejected", c.connections_rejected)
        .value("accept_faults", c.accept_faults)
        .value("requests", c.requests)
        .value("handler_errors", c.handler_errors)
        .value("write_errors", c.write_errors)
        .end_object();
  }
  // Both parts are rendered JSON objects; splice rather than re-parse.
  return reply(200, "{\"http\": " + http_json.str() +
                        ", \"service\": " + backend.body + "}");
}

}  // namespace dabs::net
