#include "net/shard_router.hpp"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <stdexcept>

#include "io/json_reader.hpp"
#include "io/json_writer.hpp"
#include "net/shard_rpc.hpp"
#include "obs/log.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace dabs::net {

namespace {

/// Front-end-side shard RPC metrics (the forked workers never touch
/// these — their registries are separate address spaces).
struct RpcMetrics {
  obs::Counter* frames = nullptr;
  obs::Counter* errors = nullptr;
  obs::Histogram* seconds = nullptr;
};

RpcMetrics& rpc_metrics() {
  static RpcMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    RpcMetrics m;
    m.frames = &reg.counter("dabs_shard_rpc_frames_total",
                            "Shard RPC round trips attempted by the front "
                            "end.");
    m.errors = &reg.counter("dabs_shard_rpc_errors_total",
                            "Shard RPC round trips that failed (transport "
                            "fault, torn frame, or injected failpoint).");
    m.seconds = &reg.histogram("dabs_shard_rpc_seconds",
                               "Shard RPC round-trip latency in seconds.",
                               obs::Histogram::default_latency_bounds());
    return m;
  }();
  return metrics;
}

void note_rpc_failure(std::size_t shard, const char* stage) {
  rpc_metrics().errors->inc();
  static obs::LogRateLimit gate(5.0);
  std::uint64_t suppressed = 0;
  if (gate.allow(&suppressed)) {
    obs::log(obs::LogLevel::kWarn, "shard", "rpc failed",
             {{"shard", static_cast<std::uint64_t>(shard)},
              {"stage", stage},
              {"suppressed", suppressed}});
  }
}

// FNV-1a alone places short, similar strings unevenly around the ring (its
// high bits barely avalanche, and ring ordering is dominated by high bits),
// so the hash is pushed through a 64-bit finalizer before use.
std::uint64_t ring_hash(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::string error_body(const std::string& message) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("error", message).end_object();
  }
  return out.str();
}

}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t vnodes_per_shard)
    : shards_(shards == 0 ? 1 : shards) {
  ring_.reserve(shards_ * vnodes_per_shard);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t v = 0; v < vnodes_per_shard; ++v) {
      ring_.emplace_back(ring_hash("shard:" + std::to_string(s) +
                                   ":vnode:" + std::to_string(v)),
                         static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::owner(const std::string& key) const {
  const std::uint64_t h = ring_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& point,
         std::uint64_t hash) { return point.first < hash; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
  return it->second;
}

ShardGroup::ShardGroup(const JobApi::Config& base, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("shard group needs at least one shard");
  }
  shards_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error("socketpair: " + errno_string());
    }
    UniqueFd parent_end(sv[0]);
    UniqueFd child_end(sv[1]);
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("fork: " + errno_string());
    }
    if (pid == 0) {
      // Child: drop every parent-side fd (including earlier siblings' —
      // a stray duplicate would block their EOF shutdown), then become
      // the worker.  _exit skips parent-state destructors.
      parent_end.reset();
      for (Shard& earlier : shards_) earlier.fd.reset();
      JobApi::Config config = base;
      config.shard_idx = k;
      config.shards = shards;
      if (!config.journal_path.empty()) {
        config.journal_path += ".shard" + std::to_string(k);
      }
      if (!config.trace_path.empty()) {
        config.trace_path += ".shard" + std::to_string(k);
      }
      int code = 1;
      try {
        code = shard_worker_main(child_end.get(), config);
      } catch (...) {
      }
      ::_exit(code);
    }
    Shard shard;
    shard.fd = std::move(parent_end);
    shard.pid = pid;
    shard.mu = std::make_unique<std::mutex>();
    shards_.push_back(std::move(shard));
  }
}

ShardGroup::~ShardGroup() {
  for (Shard& shard : shards_) shard.fd.reset();  // EOF: workers exit
  for (Shard& shard : shards_) {
    if (shard.pid > 0) {
      int status = 0;
      while (::waitpid(shard.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }
}

ApiReply ShardGroup::call(std::size_t shard, const std::string& frame,
                          std::uint64_t* cursor, bool* done,
                          std::size_t* count) {
  if (shard >= shards_.size()) {
    return {500, error_body("shard index out of range")};
  }
  Shard& target = shards_[shard];
  std::lock_guard lock(*target.mu);
  rpc_metrics().frames->inc();
  const Stopwatch rtt;
  try {
    // Injected RPC fault (DABS_FAILPOINTS="shard.rpc=..."): fires before
    // any bytes are written, so the frame stream stays in sync and the
    // next call goes through — a 503-then-recover, not a wedged pipe.
    fail::point("shard.rpc");
  } catch (const std::exception& e) {
    note_rpc_failure(shard, "failpoint");
    return {503, error_body(std::string("shard rpc fault: ") + e.what())};
  }
  if (!target.fd.valid() || !write_frame(target.fd.get(), frame)) {
    note_rpc_failure(shard, "write");
    return {503, error_body("shard " + std::to_string(shard) +
                            " is unreachable (write): " + errno_string())};
  }
  std::string response;
  if (read_frame(target.fd.get(), &response) != 1) {
    note_rpc_failure(shard, "read");
    return {503, error_body("shard " + std::to_string(shard) +
                            " is unreachable (read)")};
  }
  rpc_metrics().seconds->observe(rtt.elapsed_seconds());
  try {
    const io::JsonValue root = io::parse_json(response);
    ApiReply reply;
    const io::JsonValue* status = root.find("status");
    const io::JsonValue* body = root.find("body");
    if (status == nullptr || body == nullptr) {
      throw std::invalid_argument("response missing status/body");
    }
    reply.status = static_cast<int>(status->as_int());
    reply.body = body->as_string();
    if (cursor != nullptr) {
      const io::JsonValue* c = root.find("cursor");
      if (c != nullptr) *cursor = static_cast<std::uint64_t>(c->as_int());
    }
    if (done != nullptr) {
      const io::JsonValue* d = root.find("done");
      if (d != nullptr) *done = d->as_bool();
    }
    if (count != nullptr) {
      const io::JsonValue* n = root.find("count");
      if (n != nullptr) *count = static_cast<std::size_t>(n->as_int());
    }
    return reply;
  } catch (const std::exception& e) {
    note_rpc_failure(shard, "decode");
    return {503, error_body("shard " + std::to_string(shard) +
                            " sent an unreadable response: " + e.what())};
  }
}

ApiReply ShardGroup::call_submit(std::size_t shard, const std::string& body) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("op", "submit").value("body", body).end_object();
  }
  return call(shard, out.str(), nullptr, nullptr, nullptr);
}

ApiReply ShardGroup::call_id(std::size_t shard, const char* op,
                             std::uint64_t id) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("op", op).value("id", id).end_object();
  }
  return call(shard, out.str(), nullptr, nullptr, nullptr);
}

ApiReply ShardGroup::call_events(std::size_t shard, std::uint64_t id,
                                 std::uint64_t* cursor, bool* done,
                                 std::size_t* count) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("op", "events")
        .value("id", id)
        .value("cursor", *cursor)
        .end_object();
  }
  return call(shard, out.str(), cursor, done, count);
}

ApiReply ShardGroup::call_stats(std::size_t shard) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("op", "stats").end_object();
  }
  return call(shard, out.str(), nullptr, nullptr, nullptr);
}

ApiReply ShardGroup::call_metrics(std::size_t shard) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object().value("op", "metrics").end_object();
  }
  return call(shard, out.str(), nullptr, nullptr, nullptr);
}

ShardBackend::ShardBackend(ShardGroup& group)
    : group_(group), ring_(group.shards()) {
  auto& reg = obs::MetricsRegistry::global();
  submit_counters_.reserve(group_.shards());
  for (std::size_t k = 0; k < group_.shards(); ++k) {
    submit_counters_.push_back(
        &reg.counter("dabs_shard_submits_total",
                     "Submissions routed to each shard by the front end.",
                     {{"shard", std::to_string(k)}}));
  }
}

ApiReply ShardBackend::submit(const std::string& body) {
  service::BatchJob job;
  try {
    job = service::parse_batch_job(body);
  } catch (const std::exception& e) {
    return {400, error_body(e.what())};  // reject before spending an RPC
  }
  const std::size_t owner = ring_.owner(routing_key(job));
  submit_counters_[owner]->inc();
  return group_.call_submit(owner, body);
}

ApiReply ShardBackend::status(std::uint64_t id) {
  return group_.call_id(id % group_.shards(), "status", id);
}

ApiReply ShardBackend::cancel(std::uint64_t id) {
  return group_.call_id(id % group_.shards(), "cancel", id);
}

ApiReply ShardBackend::events(std::uint64_t id, std::uint64_t* cursor,
                              bool* done, std::size_t* count) {
  *done = false;
  *count = 0;
  return group_.call_events(id % group_.shards(), id, cursor, done, count);
}

ApiReply ShardBackend::stats() {
  // Fan out and aggregate: one entry per worker, raw as each worker sent
  // it (every entry is a valid JSON object, including 503 error bodies).
  std::string merged = "{\"shards\": " + std::to_string(group_.shards()) +
                       ", \"workers\": [";
  for (std::size_t k = 0; k < group_.shards(); ++k) {
    if (k != 0) merged += ", ";
    merged += group_.call_stats(k).body;
  }
  merged += "]}";
  return {200, merged};
}

ApiReply ShardBackend::metrics() {
  // Merge every worker's registry snapshot under shard="k" labels, plus
  // the front-end process's own registry (HTTP + RPC metrics) under
  // shard="front".  A worker whose RPC fails is skipped — the scrape
  // still succeeds with the shards that answered (and the failure shows
  // up in dabs_shard_rpc_errors_total).
  std::vector<obs::MetricsSnapshot> parts;
  parts.reserve(group_.shards() + 1);
  for (std::size_t k = 0; k < group_.shards(); ++k) {
    const ApiReply reply = group_.call_metrics(k);
    if (reply.status != 200) continue;
    try {
      obs::MetricsSnapshot snap = obs::parse_snapshot_json(reply.body);
      obs::add_label(snap, "shard", std::to_string(k));
      parts.push_back(std::move(snap));
    } catch (const std::exception& e) {
      static obs::LogRateLimit gate(5.0);
      std::uint64_t suppressed = 0;
      if (gate.allow(&suppressed)) {
        obs::log(obs::LogLevel::kWarn, "shard",
                 "unreadable metrics snapshot",
                 {{"shard", static_cast<std::uint64_t>(k)},
                  {"error", e.what()},
                  {"suppressed", suppressed}});
      }
    }
  }
  obs::MetricsSnapshot front = obs::MetricsRegistry::global().snapshot();
  obs::add_label(front, "shard", "front");
  parts.push_back(std::move(front));

  std::ostringstream out;
  obs::render_prometheus(obs::merge_snapshots(parts), out);
  return {200, out.str()};
}

}  // namespace dabs::net
