// Minimal blocking HTTP/1.1 client for the repo's own tooling: unit tests,
// bench_micro_service, and the soak script drive the embedded server with
// it (no libcurl dependency).  Keep-alive aware, Content-Length and
// chunked response bodies, nothing else — this is a test harness, not a
// general client.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/net_util.hpp"

namespace dabs::net {

class HttpClient {
 public:
  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;  // names lowercased
    std::string body;
  };

  /// Connects immediately; throws std::runtime_error on failure.
  HttpClient(const std::string& host, std::uint16_t port);

  /// One request/response round trip on the persistent connection.
  /// Throws std::runtime_error when the connection broke mid-exchange.
  Response request(const std::string& method, const std::string& target,
                   const std::string& body = "",
                   const std::string& content_type = "application/json");

  /// Like request(), but delivers a chunked response incrementally:
  /// on_chunk is called per decoded chunk; return false to abandon the
  /// stream (the connection is closed — chunked framing cannot be
  /// resynchronized mid-stream).  Non-chunked responses arrive as one
  /// callback.  The returned Response carries status/headers, empty body.
  Response stream(const std::string& method, const std::string& target,
                  const std::function<bool(const std::string&)>& on_chunk);

  bool connected() const noexcept { return fd_.valid(); }

 private:
  Response round_trip(const std::string& method, const std::string& target,
                      const std::string& body,
                      const std::string& content_type,
                      const std::function<bool(const std::string&)>* on_chunk);
  /// Reads until `token` is present in buffer_; throws on EOF/error.
  std::size_t read_until(const std::string& token);
  void need(std::size_t bytes);

  std::string host_;
  std::uint16_t port_;
  UniqueFd fd_;
  std::string buffer_;  // bytes read past the previous response
};

}  // namespace dabs::net
