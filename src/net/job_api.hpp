// The solve-API backend behind SolveServer's HTTP routes.  Two
// implementations exist: JobApi (this file) runs jobs on an in-process
// SolverService, and ShardBackend (shard_router.hpp) forwards the same
// operations to forked worker processes over the shard RPC.  Splitting
// the HTTP routing from the job handling keeps the endpoints byte-for-
// byte identical across the one-process and sharded topologies.
//
// Request/report JSON is the JSONL batch schema (batch_runner.hpp): a
// POST /v1/jobs body is exactly one batch job line, and a finished job's
// report carries the same decode/verify extras the batch runner streams.
//
// Job ids are global across a shard group: a worker owning shard k of N
// publishes `local_id * N + k`, so any id maps back to its shard with a
// modulo — the front end never rewrites response bodies.
//
// Durability mirrors the batch runner: with a journal armed, every accept
// writes a `submitted` record whose detail field holds the raw request
// body, and the reaper writes the terminal record when the job finishes.
// `resume()`-style recovery happens in the constructor: fingerprints whose
// last journal record is non-terminal are re-submitted from that stored
// body under their original fingerprint.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "service/batch_runner.hpp"
#include "service/job_journal.hpp"
#include "service/solver_service.hpp"

namespace dabs::net {

/// HTTP-ish outcome of one backend operation: a status code plus a JSON
/// object body.  Backends never throw for request-level problems — bad
/// input is a 4xx reply, broken environment a 5xx.
struct ApiReply {
  int status = 200;
  std::string body;
};

/// The operation surface SolveServer routes onto.  `id` parameters are
/// global job ids (see the header comment).
class JobBackend {
 public:
  virtual ~JobBackend() = default;

  /// POST /v1/jobs: body is one batch-schema job object.
  /// 202 accepted / 400 schema / 429 shed / 5xx environment.
  virtual ApiReply submit(const std::string& body) = 0;

  /// GET /v1/jobs/{id}: state + report (terminal jobs include the
  /// decode/verify extras).  404 unknown.
  virtual ApiReply status(std::uint64_t id) = 0;

  /// One page of the job's event log from *cursor, advancing it.  Sets
  /// *count to the number of events in the page and *done when the job is
  /// terminal and the log is drained (the stream may end).
  virtual ApiReply events(std::uint64_t id, std::uint64_t* cursor,
                          bool* done, std::size_t* count) = 0;

  /// DELETE /v1/jobs/{id}: 202 cancelling, 409 already terminal, 404.
  virtual ApiReply cancel(std::uint64_t id) = 0;

  /// GET /v1/stats: service gauges/counters + cache stats as JSON.
  virtual ApiReply stats() = 0;

  /// GET /v1/metrics: Prometheus text exposition of the process-wide
  /// metrics registry.  The sharded backend aggregates every worker's
  /// registry into one exposition with per-shard labels.
  virtual ApiReply metrics() = 0;

  /// Shard topology behind this backend (1 = unsharded), for /v1/healthz.
  virtual std::size_t shards() const { return 1; }
};

/// The shard-routing key of a parsed job: the problem spec + params (or
/// "<format>#<path>" for file jobs).  Deliberately the *spec*, not the
/// canonical resolved model key — routing must not require running a
/// generator — and stable across processes so every front end and worker
/// agrees on ownership.
std::string routing_key(const service::BatchJob& job);

/// In-process JobBackend: SolverService + ModelCache + optional journal,
/// plus a reaper thread that journals terminal records, runs the
/// decode/verify annotation once per finished job, and bounds retention.
///
/// Thread-safety: all five operations and the reaper serialize on one
/// internal mutex (operations are queue-sized, not solve-sized — the
/// solving itself happens on the service's worker pool).
class JobApi final : public JobBackend {
 public:
  struct Config {
    std::size_t threads = 2;
    std::size_t cache_bytes = service::ModelCache::kDefaultMaxBytes;
    /// Admission bound forwarded to SolverService (0 = unbounded);
    /// over-capacity submits come back 429.
    std::size_t max_queue_depth = 0;
    /// Applied when a job sets neither time_limit nor max_batches.
    double default_time_limit = 5.0;
    std::size_t max_events_per_job = 256;
    /// Default solve() attempts for retryable failures.
    std::uint32_t max_attempts = 3;
    /// Journal path (empty = no journal, no resume).
    std::string journal_path;
    /// Replay the journal and re-submit non-terminal jobs from their
    /// stored request bodies.  Requires journal_path.
    bool resume = false;
    /// Finished jobs kept queryable after the reaper releases them from
    /// the service (oldest evicted beyond this many).
    std::size_t retention_jobs = 1024;
    /// Global-id encoding (defaults: the unsharded topology).
    std::size_t shard_idx = 0;
    std::size_t shards = 1;
    /// When non-empty, every job the reaper collects is recorded as trace
    /// spans and dumped as Chrome trace-event JSON here at shutdown
    /// (`dabs_cli serve --trace`).  Shard workers write
    /// "<path>.shard<k>" like the journal.
    std::string trace_path;
  };

  explicit JobApi(Config config);
  ~JobApi() override;

  JobApi(const JobApi&) = delete;
  JobApi& operator=(const JobApi&) = delete;

  ApiReply submit(const std::string& body) override;
  ApiReply status(std::uint64_t id) override;
  ApiReply events(std::uint64_t id, std::uint64_t* cursor, bool* done,
                  std::size_t* count) override;
  ApiReply cancel(std::uint64_t id) override;
  ApiReply stats() override;
  ApiReply metrics() override;
  std::size_t shards() const override { return config_.shards; }

  /// This process's registry as a JSON snapshot — the payload of the
  /// shard "metrics" RPC, which the parent merges under per-shard labels.
  static std::string metrics_snapshot_json();

  /// Jobs re-submitted from the journal by the constructor (--resume).
  std::size_t resumed() const noexcept { return resumed_; }
  /// Journal-append failures so far (the API keeps serving without
  /// durability; /v1/stats surfaces the count).
  std::uint64_t journal_errors() const noexcept {
    return journal_errors_.load(std::memory_order_relaxed);
  }

 private:
  /// What status/events need after the service record is released, and
  /// what the decode/verify pass needs while the job is in flight.
  struct Pending {
    std::shared_ptr<const dabs::Problem> problem;
    std::shared_ptr<const dabs::QuboModel> model;
    std::string fingerprint;
  };

  ApiReply submit_internal(const std::string& body,
                           const std::string& forced_fingerprint);
  void reaper_loop();
  void journal_append(const service::JournalRecord& record);
  /// Renders one job's status JSON from a snapshot (global id).
  std::string render_status(std::uint64_t global_id,
                            const service::JobSnapshot& snap,
                            const std::string& fingerprint) const;

  std::uint64_t to_global(service::JobId local) const {
    return local * config_.shards + config_.shard_idx;
  }

  const Config config_;
  std::unique_ptr<service::JobJournal> journal_;
  service::SolverService service_;

  mutable std::mutex mu_;
  /// In-flight jobs by local id; moved to finished_ by the reaper.
  std::map<service::JobId, Pending> pending_;
  /// Terminal jobs after release: the annotated final snapshot, retained
  /// for status/events until evicted (finish order).
  struct Finished {
    service::JobSnapshot snap;
    std::string fingerprint;
  };
  std::map<service::JobId, Finished> finished_;
  std::deque<service::JobId> finish_order_;
  /// "#N" disambiguation for duplicate submissions, seeded from the
  /// journal on resume so numbering continues across restarts.
  std::map<std::string, std::uint64_t> fingerprint_occurrences_;
  /// Atomic, not mu_-guarded: journal_append runs both under mu_ (submit)
  /// and without it (the service's on_started hook on worker threads).
  std::atomic<std::uint64_t> journal_errors_{0};
  std::size_t resumed_ = 0;
  /// Populated by the reaper when Config::trace_path is set; dumped by the
  /// destructor.
  obs::TraceCollector trace_;

  std::atomic<bool> stop_reaper_{false};
  std::thread reaper_;
};

}  // namespace dabs::net
