#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "io/json_writer.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace dabs::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Global HTTP metrics (every server instance in the process accumulates
/// into the same counters; the open-connections gauge tracks the event
/// loop that updated last — one server per process in production).
struct HttpMetrics {
  obs::Counter* requests_1xx = nullptr;
  obs::Counter* requests_2xx = nullptr;
  obs::Counter* requests_3xx = nullptr;
  obs::Counter* requests_4xx = nullptr;
  obs::Counter* requests_5xx = nullptr;
  obs::Counter* connections = nullptr;
  obs::Counter* connections_rejected = nullptr;
  obs::Counter* accept_faults = nullptr;
  obs::Counter* bytes_read = nullptr;
  obs::Counter* bytes_written = nullptr;
  obs::Gauge* open_connections = nullptr;

  obs::Counter* by_status(int status) const noexcept {
    switch (status / 100) {
      case 1: return requests_1xx;
      case 2: return requests_2xx;
      case 3: return requests_3xx;
      case 4: return requests_4xx;
      default: return requests_5xx;
    }
  }
};

HttpMetrics& http_metrics() {
  static HttpMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::global();
    HttpMetrics m;
    const char* requests_help = "HTTP responses sent, by status class.";
    m.requests_1xx = &reg.counter("dabs_http_requests_total", requests_help,
                                  {{"class", "1xx"}});
    m.requests_2xx = &reg.counter("dabs_http_requests_total", requests_help,
                                  {{"class", "2xx"}});
    m.requests_3xx = &reg.counter("dabs_http_requests_total", requests_help,
                                  {{"class", "3xx"}});
    m.requests_4xx = &reg.counter("dabs_http_requests_total", requests_help,
                                  {{"class", "4xx"}});
    m.requests_5xx = &reg.counter("dabs_http_requests_total", requests_help,
                                  {{"class", "5xx"}});
    m.connections = &reg.counter("dabs_http_connections_total",
                                 "Connections accepted.");
    m.connections_rejected =
        &reg.counter("dabs_http_connections_rejected_total",
                     "Connections shed at the max_connections bound.");
    m.accept_faults = &reg.counter("dabs_http_accept_faults_total",
                                   "Transient accept(2) failures.");
    m.bytes_read = &reg.counter("dabs_http_bytes_read_total",
                                "Request bytes read off sockets.");
    m.bytes_written = &reg.counter("dabs_http_bytes_written_total",
                                   "Response bytes written to sockets.");
    m.open_connections = &reg.gauge("dabs_http_open_connections",
                                    "Connections currently open.");
    return m;
  }();
  return metrics;
}

/// Stop pulling stream chunks once this much output is buffered; the
/// socket drains it first (bounds per-connection memory against a slow
/// reader).
constexpr std::size_t kOutputHighWater = std::size_t{64} << 10;

std::string format_chunk(const std::string& data) {
  char size_line[32];
  std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
  std::string out(size_line);
  out += data;
  out += "\r\n";
  return out;
}

}  // namespace

const char* http_status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 421: return "Misdirected Request";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Per-connection state.  `out` accumulates fully formatted response
/// bytes; `out_off` marks how much of it the socket already took.
struct HttpServer::Connection {
  explicit Connection(int fd, HttpRequestParser::Limits limits)
      : fd(fd), parser(limits), last_active(Clock::now()) {}

  UniqueFd fd;
  HttpRequestParser parser;
  std::string out;
  std::size_t out_off = 0;
  std::unique_ptr<ChunkSource> stream;
  /// Whether to keep the connection after the in-flight response.
  bool keep_alive = true;
  /// Protocol framing is lost (parse error) — close once out drains.
  bool close_after_write = false;
  /// Peer sent EOF; serve what is buffered, then close.
  bool read_closed = false;
  Clock::time_point last_active;

  bool has_pending_output() const noexcept {
    return out_off < out.size() || stream != nullptr;
  }
};

HttpServer::HttpServer(Config config, HttpHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  listener_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listener_.valid()) {
    throw std::runtime_error("socket(): " + errno_string());
  }
  const int one = 1;
  ::setsockopt(listener_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("unusable listen address '" + config_.host +
                             "' (IPv4 dotted quad expected)");
  }
  if (::bind(listener_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw std::runtime_error("bind(" + config_.host + ":" +
                             std::to_string(config_.port) +
                             "): " + errno_string());
  }
  if (::listen(listener_.get(), 128) != 0) {
    throw std::runtime_error("listen(): " + errno_string());
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listener_.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    throw std::runtime_error("getsockname(): " + errno_string());
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listener_.get());

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("pipe(): " + errno_string());
  }
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());
}

HttpServer::~HttpServer() = default;

void HttpServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 'x';
  (void)!::write(wake_write_.get(), &byte, 1);
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      ++counters_.accept_faults;  // transient (EMFILE, ECONNABORTED, ...)
      http_metrics().accept_faults->inc();
      return;
    }
    // Injected accept fault: the connection is dropped on the floor and
    // the server keeps listening — the failure mode of a transient
    // fd-table / conntrack error.
    try {
      fail::point("net.accept");
    } catch (const std::exception&) {
      ++counters_.accept_faults;
      http_metrics().accept_faults->inc();
      ::close(fd);
      continue;
    }
    if (connections_.size() >= config_.max_connections) {
      ++counters_.connections_rejected;
      http_metrics().connections_rejected->inc();
      ::close(fd);  // shedding: no spare resources to even write a 503
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++counters_.connections_accepted;
    http_metrics().connections->inc();
    connections_.emplace(
        fd, std::make_unique<Connection>(
                fd, HttpRequestParser::Limits{config_.max_header_bytes,
                                              config_.max_body_bytes}));
    http_metrics().open_connections->set(
        static_cast<std::int64_t>(connections_.size()));
  }
}

void HttpServer::queue_response(Connection& conn,
                                const HttpResponse& response, bool chunked,
                                bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     http_status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  for (const auto& [name, value] : response.headers) {
    head += name + ": " + value + "\r\n";
  }
  if (chunked) {
    head += "Transfer-Encoding: chunked\r\n";
  } else {
    head += "Content-Length: " + std::to_string(response.body.size()) +
            "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  http_metrics().by_status(response.status)->inc();
  conn.out += head;
  if (!chunked) conn.out += response.body;
  conn.keep_alive = keep_alive;
}

void HttpServer::dispatch(Connection& conn, const HttpRequest& request) {
  ++counters_.requests;
  HttpResult result;
  try {
    result = handler_(request);
  } catch (const std::exception& e) {
    ++counters_.handler_errors;
    result.stream.reset();
    result.response =
        HttpResponse{500, "application/json",
                     "{\"error\": \"" + io::JsonWriter::escape(e.what()) +
                         "\"}",
                     {}};
  }
  const bool chunked = result.stream != nullptr;
  queue_response(conn, result.response, chunked,
                 request.keep_alive && !conn.close_after_write);
  if (chunked) conn.stream = std::move(result.stream);
}

bool HttpServer::pump_stream(Connection& conn) {
  while (conn.stream && conn.out.size() - conn.out_off < kOutputHighWater) {
    std::string chunk;
    const ChunkSource::Next next = conn.stream->next(chunk);
    if (next == ChunkSource::Next::kChunk) {
      if (!chunk.empty()) conn.out += format_chunk(chunk);
      continue;
    }
    if (next == ChunkSource::Next::kDone) {
      conn.out += "0\r\n\r\n";
      conn.stream.reset();
      return true;
    }
    return false;  // kIdle: poll again after stream_poll_seconds
  }
  return false;
}

bool HttpServer::flush_output(Connection& conn) {
  for (;;) {
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.stream) {
        pump_stream(conn);
        if (conn.out.empty()) return true;  // stream idle right now
        continue;  // new chunks buffered: fall through to the write
      }
      return true;
    }
    // Injected write fault: this connection behaves as if the peer
    // vanished mid-response; the server itself keeps serving.
    try {
      fail::point("net.write");
    } catch (const std::exception&) {
      ++counters_.write_errors;
      return false;
    }
    const long n = write_some(conn.fd.get(), conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n < 0) {
      ++counters_.write_errors;  // EPIPE / ECONNRESET: peer went away
      return false;
    }
    if (n == 0) return true;  // would block: wait for POLLOUT
    conn.out_off += static_cast<std::size_t>(n);
    http_metrics().bytes_written->inc(static_cast<std::uint64_t>(n));
    conn.last_active = Clock::now();
  }
}

bool HttpServer::service_input(Connection& conn) {
  char buf[16 << 10];
  for (;;) {
    const long n = read_some(conn.fd.get(), buf, sizeof buf);
    if (n > 0) {
      conn.parser.feed(buf, static_cast<std::size_t>(n));
      http_metrics().bytes_read->inc(static_cast<std::uint64_t>(n));
      conn.last_active = Clock::now();
      continue;
    }
    if (n == 0) {
      // Peer shut its write side (or closed).  Keep the connection only
      // if a response is still owed; otherwise it is done.
      conn.read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // hard read error
  }

  // Parse and answer every fully buffered request, but hold further
  // pipelined requests while a stream is in flight — responses must leave
  // in order.
  while (!conn.stream && !conn.close_after_write) {
    HttpRequest request;
    const HttpRequestParser::Status status = conn.parser.poll(request);
    if (status == HttpRequestParser::Status::kNeedMore) break;
    if (status == HttpRequestParser::Status::kError) {
      // Framing is gone: answer with the parser's status and close.
      conn.close_after_write = true;
      HttpResponse response;
      response.status = conn.parser.error_status();
      response.body = "{\"error\": \"" +
                      io::JsonWriter::escape(conn.parser.error()) + "\"}";
      queue_response(conn, response, false, false);
      break;
    }
    dispatch(conn, request);
  }
  if (!flush_output(conn)) return false;
  if (conn.read_closed && !conn.has_pending_output()) return false;
  if (conn.close_after_write && !conn.has_pending_output()) return false;
  return true;
}

void HttpServer::run(const std::atomic<bool>* stop) {
  const auto should_stop = [this, stop] {
    return stop_requested_.load(std::memory_order_acquire) ||
           (stop != nullptr && stop->load(std::memory_order_relaxed));
  };
  std::vector<pollfd> fds;
  std::vector<int> fd_order;  // connection fd per pollfd past the fixed two
  while (!should_stop()) {
    fds.clear();
    fd_order.clear();
    fds.push_back({listener_.get(), POLLIN, 0});
    fds.push_back({wake_read_.get(), POLLIN, 0});
    bool any_stream = false;
    for (const auto& [fd, conn] : connections_) {
      short events = 0;
      if (!conn->read_closed) events |= POLLIN;
      if (conn->out_off < conn->out.size()) events |= POLLOUT;
      if (conn->stream) any_stream = true;
      fds.push_back({fd, events, 0});
      fd_order.push_back(fd);
    }
    // Streams are re-polled on a timer (their sources are non-blocking
    // and may have nothing new); otherwise wake at ~1 Hz to enforce idle
    // timeouts and notice the external stop flag.
    const int timeout_ms =
        any_stream
            ? std::max(1, static_cast<int>(config_.stream_poll_seconds * 1e3))
            : 1000;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed: give up
    if (should_stop()) break;

    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_.get(), drain, sizeof drain) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    const Clock::time_point now = Clock::now();
    const auto idle_cutoff =
        now - std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config_.idle_timeout_seconds));
    for (std::size_t i = 0; i < fd_order.size(); ++i) {
      const auto it = connections_.find(fd_order[i]);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      const short revents = fds[i + 2].revents;
      bool alive = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        alive = false;
      } else if ((revents & POLLIN) != 0) {
        alive = service_input(conn);
      } else if ((revents & POLLOUT) != 0 || conn.stream) {
        // Writable, or a stream due for a poll tick.
        alive = flush_output(conn);
        if (alive && (conn.read_closed || conn.close_after_write) &&
            !conn.has_pending_output()) {
          alive = false;
        }
      } else if (conn.last_active < idle_cutoff &&
                 !conn.has_pending_output()) {
        alive = false;  // idle timeout
      }
      if (!alive) connections_.erase(it);
    }
    http_metrics().open_connections->set(
        static_cast<std::int64_t>(connections_.size()));
  }
  connections_.clear();
  http_metrics().open_connections->set(0);
}

}  // namespace dabs::net
