#include "net/net_util.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace dabs::net {

void UniqueFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want == flags) return true;
  return ::fcntl(fd, F_SETFL, want) == 0;
}

namespace {

/// send() when the fd is a socket (for MSG_NOSIGNAL), write() otherwise
/// (pipes, regular files — send would fail with ENOTSOCK).
long write_once(int fd, const void* data, std::size_t size) {
  long n = ::send(fd, data, size, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) {
    n = ::write(fd, data, size);
  }
  return n;
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const long n = write_once(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE, ECONNRESET, ... — caller reads errno
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

long write_some(int fd, const void* data, std::size_t size) {
  for (;;) {
    const long n = write_once(fd, data, size);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long read_some(int fd, void* data, std::size_t size) {
  for (;;) {
    const long n = ::read(fd, data, size);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;  // EAGAIN distinguishable via errno
  }
}

bool read_exact(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const long n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

std::string errno_string() {
  char buf[128] = {};
  // GNU strerror_r may return a static string instead of filling buf.
#if defined(_GNU_SOURCE) || defined(__GLIBC__)
  return std::string(strerror_r(errno, buf, sizeof buf));
#else
  strerror_r(errno, buf, sizeof buf);
  return std::string(buf);
#endif
}

}  // namespace dabs::net
