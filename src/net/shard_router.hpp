// Horizontal sharding for the solve server: N forked worker processes,
// each owning a private SolverService + ModelCache (a JobApi), fronted by
// consistent-hash routing so every model spec key lands on the same
// worker every time — that worker's cache stays hot, and no lock is
// shared across shards.
//
// ShardGroup forks its workers at construction.  fork() and threads do
// not mix, so construct the group BEFORE anything that spawns threads
// (the CLI builds it before the HTTP server and before any JobApi; the
// bench builds it before its client threads).
//
// Topology notes:
//   - Job ids are globally unique by construction (worker k of N issues
//     local*N+k), so the front end routes id-keyed requests with a modulo
//     and never rewrites a response body.
//   - Submissions route on routing_key() — the job's *spec*, not the
//     resolved model — hashed onto a 64-vnode-per-shard ring.  The ring is
//     deterministic for a fixed N across processes, which is what lets
//     `dabs_cli serve --shard-of k/N` run the same placement behind an
//     external load balancer.
//   - The failpoint "shard.rpc" (DABS_FAILPOINTS) fires in the front
//     end's call path before any bytes hit the wire: the caller gets a
//     503 and the pipe stays in sync, so the next request succeeds.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "net/job_api.hpp"
#include "net/net_util.hpp"
#include "obs/metrics.hpp"

namespace dabs::net {

/// Consistent-hash ring over `shards` shards: deterministic (FNV-1a plus a
/// fixed 64-bit finalizer over printable vnode labels, no process-local
/// salt), so every process that builds HashRing(N) agrees on placement.
class HashRing {
 public:
  explicit HashRing(std::size_t shards, std::size_t vnodes_per_shard = 64);

  /// The shard owning `key`: first ring point clockwise of hash(key).
  std::size_t owner(const std::string& key) const;

  std::size_t shards() const noexcept { return shards_; }

 private:
  std::size_t shards_;
  /// (point hash, shard) sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/// N forked shard workers plus the parent-side RPC endpoints.  Calls to
/// one shard serialize on that shard's mutex (the frame protocol has no
/// multiplexing); different shards proceed in parallel.
class ShardGroup {
 public:
  /// Forks `shards` workers immediately.  `base` is each worker's JobApi
  /// config; shard_idx/shards are overridden per worker and a non-empty
  /// journal_path gets a ".shard<k>" suffix so each worker journals (and
  /// resumes) its own slice.  Throws std::runtime_error when a
  /// socketpair/fork fails (workers already forked are shut down).
  ShardGroup(const JobApi::Config& base, std::size_t shards);
  /// Closes the pipes (workers exit on EOF) and reaps every child.
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::size_t shards() const noexcept { return shards_.size(); }

  ApiReply call_submit(std::size_t shard, const std::string& body);
  /// op is "status" or "cancel".
  ApiReply call_id(std::size_t shard, const char* op, std::uint64_t id);
  ApiReply call_events(std::size_t shard, std::uint64_t id,
                       std::uint64_t* cursor, bool* done, std::size_t* count);
  ApiReply call_stats(std::size_t shard);
  /// The worker's registry as a snapshot-JSON body (see JobApi::
  /// metrics_snapshot_json); transport failures come back as 503.
  ApiReply call_metrics(std::size_t shard);

 private:
  struct Shard {
    UniqueFd fd;
    pid_t pid = -1;
    std::unique_ptr<std::mutex> mu;
  };

  /// One framed round trip; 503 ApiReply on any transport failure or an
  /// injected "shard.rpc" fault.  The events out-params are filled only
  /// when non-null and present in the response.
  ApiReply call(std::size_t shard, const std::string& frame,
                std::uint64_t* cursor, bool* done, std::size_t* count);

  std::vector<Shard> shards_;
};

/// JobBackend over a ShardGroup: submissions consistent-hash to a worker,
/// id-keyed operations route by id modulo, stats fans out to every shard.
class ShardBackend final : public JobBackend {
 public:
  explicit ShardBackend(ShardGroup& group);

  ApiReply submit(const std::string& body) override;
  ApiReply status(std::uint64_t id) override;
  ApiReply events(std::uint64_t id, std::uint64_t* cursor, bool* done,
                  std::size_t* count) override;
  ApiReply cancel(std::uint64_t id) override;
  ApiReply stats() override;
  /// One Prometheus exposition covering every worker's registry (labelled
  /// shard="k") plus this front-end process's own (shard="front").
  ApiReply metrics() override;
  std::size_t shards() const override { return group_.shards(); }

  const HashRing& ring() const noexcept { return ring_; }

 private:
  ShardGroup& group_;
  HashRing ring_;
  /// dabs_shard_submits_total{shard="k"}: routing decisions per worker.
  std::vector<obs::Counter*> submit_counters_;
};

}  // namespace dabs::net
