// Shard RPC wire protocol: uint32 (host-order; both ends are one machine,
// a fork apart) length-prefixed JSON frames over a socketpair.  The front
// end sends one request object per frame and the worker answers with one
// response object per frame, strictly in order — the transport carries no
// ids or multiplexing, the router serializes per-shard calls instead.
//
// Request:  {"op": "submit"|"status"|"events"|"cancel"|"stats"|"ping",
//            "body": "<raw POST body>"        (submit)
//            "id": <global job id>,           (status/events/cancel)
//            "cursor": <event cursor>}        (events)
// Response: {"status": <http status>, "body": "<JSON reply body>",
//            "cursor": N, "done": bool, "count": N}   (events extras)
//
// shard_worker_main() is the child process's entire life after fork():
// build a JobApi for the owned shard, answer frames until the parent's
// end closes (EOF = clean shutdown), exit.
#pragma once

#include <cstddef>
#include <string>

#include "net/job_api.hpp"

namespace dabs::net {

/// Writes one length-prefixed frame to a blocking fd.  Returns false on a
/// hard write error (errno holds it).
bool write_frame(int fd, const std::string& payload);

/// Reads one frame.  Returns 1 on success, 0 on clean EOF at a frame
/// boundary, -1 on error / torn frame / a length above `max_bytes`.
int read_frame(int fd, std::string* payload,
               std::size_t max_bytes = std::size_t{64} << 20);

/// Serves JobBackend operations over `fd` until EOF, then returns the
/// process exit code.  Constructs the JobApi itself (after the fork, so
/// the service's threads belong to the child).  SIGINT/SIGTERM are
/// ignored — the parent shuts workers down by closing the pipe.
int shard_worker_main(int fd, const JobApi::Config& config);

}  // namespace dabs::net
