#include "net/shard_rpc.hpp"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <sstream>

#include "io/json_reader.hpp"
#include "io/json_writer.hpp"
#include "net/net_util.hpp"

namespace dabs::net {

bool write_frame(int fd, const std::string& payload) {
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  if (!write_all(fd, &length, sizeof length)) return false;
  return write_all(fd, payload.data(), payload.size());
}

int read_frame(int fd, std::string* payload, std::size_t max_bytes) {
  std::uint32_t length = 0;
  // The first byte distinguishes clean shutdown (EOF at a frame boundary)
  // from a torn frame, so read the prefix byte-by-byte-tolerantly.
  std::size_t got = 0;
  auto* raw = reinterpret_cast<unsigned char*>(&length);
  while (got < sizeof length) {
    const ssize_t n = ::read(fd, raw + got, sizeof length - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;  // boundary EOF vs torn prefix
    got += static_cast<std::size_t>(n);
  }
  if (length > max_bytes) return -1;
  payload->resize(length);
  if (length != 0 && !read_exact(fd, payload->data(), length)) return -1;
  return 1;
}

namespace {

void respond(int fd, int status, const std::string& body,
             const std::uint64_t* cursor = nullptr,
             const bool* done = nullptr, const std::size_t* count = nullptr) {
  std::ostringstream out;
  {
    io::JsonWriter json(out);
    json.begin_object()
        .value("status", static_cast<std::int64_t>(status))
        .value("body", body);
    if (cursor != nullptr) json.value("cursor", *cursor);
    if (done != nullptr) json.value("done", *done);
    if (count != nullptr) {
      json.value("count", static_cast<std::uint64_t>(*count));
    }
    json.end_object();
  }
  write_frame(fd, out.str());  // a dead parent ends the loop on next read
}

}  // namespace

int shard_worker_main(int fd, const JobApi::Config& config) {
  // The parent owns lifecycle: terminal signals to the process group must
  // not race the EOF-based shutdown (and SIGPIPE is already ignored).
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGTERM, SIG_IGN);

  JobApi api(config);
  std::string frame;
  for (;;) {
    const int r = read_frame(fd, &frame);
    if (r == 0) return 0;   // parent closed: clean shutdown
    if (r < 0) return 1;    // torn frame / transport error
    int status = 400;
    std::string body;
    std::uint64_t cursor = 0;
    bool done = false;
    std::size_t count = 0;
    bool is_events = false;
    try {
      const io::JsonValue request = io::parse_json(frame);
      const io::JsonValue* op = request.find("op");
      const std::string name =
          op != nullptr && op->is_string() ? op->as_string() : "";
      const auto job_id = [&request]() -> std::uint64_t {
        const io::JsonValue* id = request.find("id");
        if (id == nullptr) throw std::invalid_argument("missing 'id'");
        return static_cast<std::uint64_t>(id->as_int());
      };
      if (name == "ping") {
        status = 200;
        body = "{\"ok\": true}";
      } else if (name == "submit") {
        const io::JsonValue* req_body = request.find("body");
        if (req_body == nullptr || !req_body->is_string()) {
          throw std::invalid_argument("submit frame carries no 'body'");
        }
        const ApiReply reply = api.submit(req_body->as_string());
        status = reply.status;
        body = reply.body;
      } else if (name == "status") {
        const ApiReply reply = api.status(job_id());
        status = reply.status;
        body = reply.body;
      } else if (name == "cancel") {
        const ApiReply reply = api.cancel(job_id());
        status = reply.status;
        body = reply.body;
      } else if (name == "stats") {
        const ApiReply reply = api.stats();
        status = reply.status;
        body = reply.body;
      } else if (name == "metrics") {
        // The raw registry snapshot, not rendered text: the parent merges
        // every worker's snapshot under per-shard labels before rendering.
        status = 200;
        body = JobApi::metrics_snapshot_json();
      } else if (name == "events") {
        is_events = true;
        const io::JsonValue* c = request.find("cursor");
        if (c != nullptr) cursor = static_cast<std::uint64_t>(c->as_int());
        const ApiReply reply = api.events(job_id(), &cursor, &done, &count);
        status = reply.status;
        body = reply.body;
      } else {
        throw std::invalid_argument("unknown rpc op '" + name + "'");
      }
    } catch (const std::exception& e) {
      status = 400;
      std::ostringstream err;
      {
        io::JsonWriter json(err);
        json.begin_object().value("error", e.what()).end_object();
      }
      body = err.str();
    }
    if (is_events) {
      respond(fd, status, body, &cursor, &done, &count);
    } else {
      respond(fd, status, body);
    }
  }
}

}  // namespace dabs::net
