#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <stdexcept>

namespace dabs::net {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

HttpClient::HttpClient(const std::string& host, std::uint16_t port)
    : host_(host), port_(port) {
  fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) throw std::runtime_error("socket(): " + errno_string());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("unusable host '" + host + "'");
  }
  if (::connect(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw std::runtime_error("connect(" + host + ":" + std::to_string(port) +
                             "): " + errno_string());
  }
  const int one = 1;
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::size_t HttpClient::read_until(const std::string& token) {
  for (;;) {
    const std::size_t pos = buffer_.find(token);
    if (pos != std::string::npos) return pos;
    char buf[8 << 10];
    const long n = read_some(fd_.get(), buf, sizeof buf);
    if (n < 0 && errno == EAGAIN) continue;  // fd is blocking; paranoia
    if (n <= 0) {
      fd_.reset();
      throw std::runtime_error("connection closed mid-response");
    }
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

void HttpClient::need(std::size_t bytes) {
  while (buffer_.size() < bytes) {
    char buf[8 << 10];
    const long n = read_some(fd_.get(), buf, sizeof buf);
    if (n < 0 && errno == EAGAIN) continue;
    if (n <= 0) {
      fd_.reset();
      throw std::runtime_error("connection closed mid-response");
    }
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

HttpClient::Response HttpClient::request(const std::string& method,
                                         const std::string& target,
                                         const std::string& body,
                                         const std::string& content_type) {
  return round_trip(method, target, body, content_type, nullptr);
}

HttpClient::Response HttpClient::stream(
    const std::string& method, const std::string& target,
    const std::function<bool(const std::string&)>& on_chunk) {
  return round_trip(method, target, "", "application/json", &on_chunk);
}

HttpClient::Response HttpClient::round_trip(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type,
    const std::function<bool(const std::string&)>* on_chunk) {
  if (!fd_.valid()) throw std::runtime_error("client is disconnected");

  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    req += "Content-Type: " + content_type + "\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n";
  req += body;
  if (!write_all(fd_.get(), req.data(), req.size())) {
    fd_.reset();
    throw std::runtime_error("request write failed: " + errno_string());
  }

  // Head.
  const std::size_t head_end = read_until("\r\n\r\n");
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  Response response;
  const std::size_t line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) {
    throw std::runtime_error("malformed status line '" + status_line + "'");
  }
  response.status = std::stoi(status_line.substr(sp1 + 1));
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string field = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos) continue;
    std::string value = field.substr(colon + 1);
    const std::size_t first = value.find_first_not_of(" \t");
    value = first == std::string::npos ? "" : value.substr(first);
    response.headers[lowercase(field.substr(0, colon))] = value;
  }

  const bool close_after =
      lowercase(response.headers["connection"]) == "close";

  if (lowercase(response.headers["transfer-encoding"]) == "chunked") {
    // Decode chunks until the zero-size terminator.
    for (;;) {
      const std::size_t size_end = read_until("\r\n");
      const std::string size_line = buffer_.substr(0, size_end);
      buffer_.erase(0, size_end + 2);
      const std::size_t size = std::stoul(size_line, nullptr, 16);
      if (size == 0) {
        const std::size_t trailer_end = read_until("\r\n");
        buffer_.erase(0, trailer_end + 2);
        break;
      }
      need(size + 2);
      const std::string chunk = buffer_.substr(0, size);
      buffer_.erase(0, size + 2);  // chunk + CRLF
      if (on_chunk != nullptr) {
        if (!(*on_chunk)(chunk)) {
          fd_.reset();  // abandoning mid-stream loses framing
          return response;
        }
      } else {
        response.body += chunk;
      }
    }
  } else {
    const auto cl = response.headers.find("content-length");
    const std::size_t size =
        cl == response.headers.end() ? 0 : std::stoul(cl->second);
    need(size);
    response.body = buffer_.substr(0, size);
    buffer_.erase(0, size);
    if (on_chunk != nullptr && !response.body.empty()) {
      (void)(*on_chunk)(response.body);
      response.body.clear();
    }
  }

  if (close_after) fd_.reset();
  return response;
}

}  // namespace dabs::net
