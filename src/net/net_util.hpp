// Small POSIX socket helpers shared by the HTTP server, the blocking test
// client, and the shard RPC transport: RAII fd ownership and read/write
// wrappers that survive the failure modes a naive loop silently mishandles
// — partial writes, EINTR, and EPIPE on a peer that hung up (the process
// ignores SIGPIPE; broken pipes surface as errors here, never as signals).
#pragma once

#include <cstddef>
#include <string>

namespace dabs::net {

/// Owning file descriptor: closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// O_NONBLOCK on/off; returns false (with errno set) on failure.
bool set_nonblocking(int fd, bool nonblocking = true);

/// Writes the whole buffer to a *blocking* fd, retrying partial writes and
/// EINTR; sends with MSG_NOSIGNAL on sockets so a dead peer yields EPIPE
/// instead of a signal.  Returns false on any hard error (errno holds it).
bool write_all(int fd, const void* data, std::size_t size);

/// One non-blocking write attempt (MSG_NOSIGNAL, EINTR retried).  Returns
/// bytes written (possibly 0 on EAGAIN/EWOULDBLOCK), or -1 on a hard error.
long write_some(int fd, const void* data, std::size_t size);

/// One non-blocking read attempt (EINTR retried).  Returns bytes read,
/// 0 for EOF, -1 with errno == EAGAIN when nothing is ready, -1 otherwise
/// on a hard error.
long read_some(int fd, void* data, std::size_t size);

/// Blocking read of exactly `size` bytes (EINTR retried).  Returns false
/// on EOF or error before the buffer filled.
bool read_exact(int fd, void* data, std::size_t size);

/// Ignores SIGPIPE process-wide so every socket/stdout write path reports
/// a dead peer as EPIPE from write() instead of killing the process.
/// Idempotent; call early in main().
void ignore_sigpipe();

/// strerror(errno) as a std::string (thread-safe).
std::string errno_string();

}  // namespace dabs::net
