// Energy-landscape analysis utilities.  The paper motivates DABS's
// diversity with the No Free Lunch Theorem — different QUBO families have
// differently shaped landscapes (e.g. QAP's n! isolated local minima,
// §II-B).  These estimators make that structure measurable:
//
//   - random-sample statistics (baseline energy scale),
//   - random-walk autocorrelation (ruggedness / correlation length),
//   - local-minima sampling (count of distinct basins, depth distribution).
//
// Used by the landscape_analysis example and the ablation discussion in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "qubo/qubo_model.hpp"
#include "rng/xorshift.hpp"
#include "util/stats.hpp"

namespace dabs::analysis {

/// Mean/std/min/max of E(X) over `samples` uniform random vectors.
SummaryStats random_energy_stats(const QuboModel& model, std::size_t samples,
                                 Rng& rng);

struct AutocorrelationResult {
  /// rho[k] = corr(E(X_t), E(X_{t+k})) along a random 1-flip walk.
  std::vector<double> rho;
  /// Correlation length: first lag where rho drops below 1/e, or rho.size()
  /// when it never does (smooth landscape).
  std::size_t correlation_length;
};

/// Random-walk autocorrelation up to `max_lag` over a walk of `steps` flips.
AutocorrelationResult random_walk_autocorrelation(const QuboModel& model,
                                                  std::size_t steps,
                                                  std::size_t max_lag,
                                                  Rng& rng);

struct LocalMinimaSample {
  std::size_t restarts = 0;
  std::size_t distinct_minima = 0;
  Energy best = 0;
  SummaryStats energies;  // over the minima found (with multiplicity)
  /// Fraction of restarts that ended in the best minimum found — a simple
  /// basin-size proxy.
  double best_basin_share = 0.0;
};

/// Greedy descent from `restarts` random starts.
LocalMinimaSample sample_local_minima(const QuboModel& model,
                                      std::size_t restarts, Rng& rng);

}  // namespace dabs::analysis
