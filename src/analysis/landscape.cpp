#include "analysis/landscape.hpp"

#include <cmath>
#include <unordered_map>

#include "evolve/genetic_ops.hpp"
#include "qubo/search_state.hpp"
#include "search/greedy.hpp"
#include "util/assert.hpp"

namespace dabs::analysis {

SummaryStats random_energy_stats(const QuboModel& model, std::size_t samples,
                                 Rng& rng) {
  DABS_CHECK(samples > 0, "need at least one sample");
  SummaryStats stats;
  for (std::size_t s = 0; s < samples; ++s) {
    stats.add(double(model.energy(random_bit_vector(model.size(), rng))));
  }
  return stats;
}

AutocorrelationResult random_walk_autocorrelation(const QuboModel& model,
                                                  std::size_t steps,
                                                  std::size_t max_lag,
                                                  Rng& rng) {
  DABS_CHECK(steps > max_lag && max_lag >= 1,
             "walk must be longer than the maximum lag");
  SearchState state(model);
  state.reset_to(random_bit_vector(model.size(), rng));
  std::vector<double> e;
  e.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    state.flip(static_cast<VarIndex>(rng.next_index(model.size())));
    e.push_back(double(state.energy()));
  }
  // Mean/variance of the series.
  double mean = 0;
  for (const double v : e) mean += v;
  mean /= double(e.size());
  double var = 0;
  for (const double v : e) var += (v - mean) * (v - mean);
  var /= double(e.size());

  AutocorrelationResult out;
  out.rho.resize(max_lag + 1, 1.0);
  if (var <= 0) {  // flat landscape
    out.correlation_length = max_lag;
    return out;
  }
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double c = 0;
    for (std::size_t t = 0; t + k < e.size(); ++t) {
      c += (e[t] - mean) * (e[t + k] - mean);
    }
    c /= double(e.size() - k);
    out.rho[k] = c / var;
  }
  out.correlation_length = max_lag;
  const double threshold = std::exp(-1.0);
  for (std::size_t k = 1; k <= max_lag; ++k) {
    if (out.rho[k] < threshold) {
      out.correlation_length = k;
      break;
    }
  }
  return out;
}

LocalMinimaSample sample_local_minima(const QuboModel& model,
                                      std::size_t restarts, Rng& rng) {
  DABS_CHECK(restarts > 0, "need at least one restart");
  LocalMinimaSample out;
  out.restarts = restarts;
  out.best = kInfiniteEnergy;
  SearchState state(model);
  std::unordered_map<std::uint64_t, std::size_t> minima;  // hash -> count
  std::unordered_map<std::uint64_t, Energy> energies;
  for (std::size_t r = 0; r < restarts; ++r) {
    state.reset_to(random_bit_vector(model.size(), rng));
    greedy_descent(state);
    const Energy e = state.energy();
    out.energies.add(double(e));
    const std::uint64_t h = state.solution().hash();
    ++minima[h];
    energies[h] = e;
    if (e < out.best) out.best = e;
  }
  out.distinct_minima = minima.size();
  std::size_t best_hits = 0;
  for (const auto& [h, count] : minima) {
    if (energies[h] == out.best) best_hits += count;
  }
  out.best_basin_share = double(best_hits) / double(restarts);
  return out;
}

}  // namespace dabs::analysis
