#include "device/packet.hpp"

#include <sstream>

#include "evolve/op_ids.hpp"

namespace dabs {

std::string describe(const Packet& p, std::size_t max_bits) {
  std::ostringstream os;
  const std::size_t n = p.solution.size();
  for (std::size_t i = 0; i < std::min(n, max_bits); ++i) {
    os << (p.solution.get(i) ? '1' : '0');
    if ((i & 3) == 3 && i + 1 < std::min(n, max_bits)) os << ' ';
  }
  if (n > max_bits) os << "...";
  os << " | ";
  if (p.has_energy())
    os << p.energy;
  else
    os << "void";
  os << " | " << to_string(p.algo) << " | " << to_string(p.op);
  return os.str();
}

}  // namespace dabs
