// Host <-> device packet (paper §III-C, Table I).
//
// Host -> device: `solution` is the target vector, `energy` is void (the
// host never computes energies), `algo` selects the main search to run,
// `op` records which genetic operation generated the target.
//
// Device -> host: `solution`/`energy` are overwritten with the batch
// search's best result; `algo`/`op` pass through untouched so the host can
// attribute the result when inserting it into a solution pool.
#pragma once

#include <cstdint>

#include "evolve/op_ids.hpp"
#include "qubo/types.hpp"
#include "search/registry.hpp"
#include "util/bit_vector.hpp"

namespace dabs {

struct Packet {
  BitVector solution;
  Energy energy = kInfiniteEnergy;  // kInfiniteEnergy == "void"
  MainSearch algo = MainSearch::kMaxMin;
  GeneticOp op = GeneticOp::kRandom;
  /// Pool that generated this packet; results return to the same pool.
  std::uint32_t pool_index = 0;

  bool has_energy() const noexcept { return energy != kInfiniteEnergy; }
};

/// One-line rendering like the rows of the paper's Table I.
std::string describe(const Packet& p, std::size_t max_bits = 32);

}  // namespace dabs
