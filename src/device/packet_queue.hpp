// Bounded, closable multi-producer/multi-consumer packet queue — the
// host<->device transfer channel of the virtual GPU substrate.  A bounded
// inbox gives the same back-pressure a real GPU pipeline has: the host
// generates new target packets only as fast as device blocks retire them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "device/packet.hpp"

namespace dabs {

class PacketQueue {
 public:
  explicit PacketQueue(std::size_t capacity);

  /// Blocks while full; returns false (dropping the packet) once closed.
  bool push(Packet p);

  /// Non-blocking push; returns false when full or closed.
  bool try_push(Packet p);

  /// Blocks while empty; returns nullopt once closed *and* drained.
  std::optional<Packet> pop();

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<Packet> try_pop();

  /// Wakes all waiters; subsequent pushes fail, pops drain the remainder.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<Packet> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dabs
