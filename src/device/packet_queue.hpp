// Bounded, closable multi-producer/multi-consumer packet queue — the
// host<->device transfer channel of the virtual GPU substrate.  A bounded
// inbox gives the same back-pressure a real GPU pipeline has: the host
// generates new target packets only as fast as device blocks retire them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "device/packet.hpp"

namespace dabs {

class PacketQueue {
 public:
  /// Outcome of a non-blocking pop.  A transiently-empty open queue
  /// (kEmpty — retry later) is distinguishable from a closed-and-drained
  /// one (kClosed — no packet will ever arrive again).
  enum class PopStatus { kItem, kEmpty, kClosed };

  explicit PacketQueue(std::size_t capacity);

  /// Blocks while full; returns false (dropping the packet) once closed.
  /// A producer already blocked inside push() observes close() and
  /// returns false without enqueueing.
  bool push(Packet p);

  /// Non-blocking push; returns false when full or closed.
  bool try_push(Packet p);

  /// Blocks while empty; returns nullopt once closed *and* drained.
  std::optional<Packet> pop();

  /// Non-blocking pop; nullopt when currently empty — indistinguishable
  /// from closed-and-drained.  Prefer try_pop(Packet&) in drain loops.
  std::optional<Packet> try_pop();

  /// Non-blocking pop with a three-way status.  kClosed is returned only
  /// when the queue is closed *and* fully drained, so a consumer loop can
  /// terminate exactly when no further packet can ever arrive.
  PopStatus try_pop(Packet& out);

  /// Blocking pop with a timeout: waits up to `seconds` for a packet.
  /// kEmpty means the wait timed out on an open queue (retry after doing
  /// other work); kClosed means closed *and* drained.  Replaces
  /// sleep/yield polling loops in consumers that must also watch other
  /// state (stop flags, inbox capacity) while waiting.
  PopStatus pop_wait(Packet& out, double seconds);

  /// True once closed *and* empty: no packet can ever be popped again.
  bool drained() const;

  /// Wakes all waiters; subsequent pushes fail, pops drain the remainder.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<Packet> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dabs
