// Device group: the "eight NVIDIA A100s" of the paper as a collection of
// virtual devices, each paired 1:1 with a host solution pool.  The group
// owns the ThreadPool its devices' block consumers run on: start_all()
// lazily builds one worker per block across all devices (the process-wide
// "SM array"), stop_all() retires the consumers and tears the pool down.
// Synchronous-mode runs never call start_all() and never pay for a pool.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "device/virtual_device.hpp"
#include "util/thread_pool.hpp"

namespace dabs {

class DeviceGroup {
 public:
  DeviceGroup(const QuboModel& model, std::size_t devices,
              const DeviceConfig& config, MersenneSeeder& seeder);
  ~DeviceGroup();

  std::size_t device_count() const noexcept { return devices_.size(); }
  VirtualDevice& device(std::size_t i) { return *devices_[i]; }
  const VirtualDevice& device(std::size_t i) const { return *devices_[i]; }

  /// Creates the block-consumer ThreadPool (one worker per block across
  /// all devices) on first call and starts every device on it.
  void start_all();
  /// Stops every device and destroys the pool.  Idempotent.
  void stop_all();

  /// The consumer pool; null until start_all() (synchronous runs).
  ThreadPool* pool() noexcept { return pool_.get(); }

  std::uint64_t total_batches() const;

 private:
  std::vector<std::unique_ptr<VirtualDevice>> devices_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dabs
