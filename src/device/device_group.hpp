// Device group: the "eight NVIDIA A100s" of the paper as a collection of
// virtual devices, each paired 1:1 with a host solution pool.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "device/virtual_device.hpp"

namespace dabs {

class DeviceGroup {
 public:
  DeviceGroup(const QuboModel& model, std::size_t devices,
              const DeviceConfig& config, MersenneSeeder& seeder);

  std::size_t device_count() const noexcept { return devices_.size(); }
  VirtualDevice& device(std::size_t i) { return *devices_[i]; }
  const VirtualDevice& device(std::size_t i) const { return *devices_[i]; }

  void start_all();
  void stop_all();

  std::uint64_t total_batches() const;

 private:
  std::vector<std::unique_ptr<VirtualDevice>> devices_;
};

}  // namespace dabs
