// Virtual device: the CPU stand-in for one GPU (see DESIGN.md §2).
//
// A real DABS device is a GPU on which many CUDA blocks independently run
// batch searches on packets received from the host.  The virtual device
// reproduces that architecture 1:1 in host code:
//
//   - `blocks` BlockExecutors, each owning a persistent BatchSearch
//     (solution state, tabu list, RNG stream) exactly like a resident CUDA
//     block owns its registers,
//   - a bounded inbox of host->device packets and an outbox of results,
//   - in threaded mode each block is a long-running consumer task on a
//     shared ThreadPool (the DeviceGroup sizes the pool so every block
//     gets a dedicated worker — the pool is the "SM array");
//   - in synchronous mode `process_next()` executes one packet inline on a
//     round-robin block, giving bit-reproducible runs for tests.
//
// With `replicas > 1` each block instead owns a BulkBatchSearch that runs up
// to `replicas` batch searches per kernel pass (the paper's bulk execution,
// where one SM interleaves many block-resident searches).  A bulk block
// gathers as many inbox packets as are immediately available (blocking for
// the first) and answers each with its own result packet, so the host-side
// protocol is unchanged.  Bulk blocks exist in threaded mode only.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "device/packet.hpp"
#include "device/packet_queue.hpp"
#include "qubo/qubo_model.hpp"
#include "rng/seeder.hpp"
#include "search/batch_search.hpp"
#include "search/bulk_batch_search.hpp"
#include "util/thread_pool.hpp"

namespace dabs {

struct DeviceConfig {
  std::uint32_t blocks = 4;        // CUDA-block-equivalents per device
  std::uint32_t replicas = 1;      // batch searches per block; > 1 runs the
                                   // bulk replica engine (threaded mode only)
  std::size_t queue_capacity = 8;  // inbox/outbox depth (back-pressure)
  BatchParams batch;               // s, b, tabu tenure
};

class VirtualDevice {
 public:
  /// Builds the device and seeds one RNG stream per block from `seeder`.
  VirtualDevice(const QuboModel& model, const DeviceConfig& config,
                MersenneSeeder& seeder);
  ~VirtualDevice();

  VirtualDevice(const VirtualDevice&) = delete;
  VirtualDevice& operator=(const VirtualDevice&) = delete;

  /// Submits one long-running consumer task per block to `pool`.  The
  /// caller must size the pool with at least block_count() free workers —
  /// a consumer occupies its worker until stop().  Idempotent.
  void start(ThreadPool& pool);

  /// Closes both queues and waits for every block task to retire.
  /// In-flight results are dropped: stop() is called only once the solver
  /// has terminated.  Safe even for tasks still queued in the pool — they
  /// observe the closed inbox and exit immediately.
  void stop();

  PacketQueue& inbox() noexcept { return inbox_; }
  PacketQueue& outbox() noexcept { return outbox_; }

  /// Synchronous mode: pops one inbox packet (non-blocking) and executes it
  /// on the next round-robin block.  Returns false when the inbox is empty.
  /// Scalar blocks only (replicas == 1).
  bool process_next();

  /// Executes `p` inline on block `block` and returns the result packet.
  /// Scalar blocks only (replicas == 1).
  Packet execute(const Packet& p, std::size_t block);

  std::uint32_t block_count() const noexcept {
    return static_cast<std::uint32_t>(blocks_.empty() ? bulk_blocks_.size()
                                                      : blocks_.size());
  }
  std::uint32_t replicas_per_block() const noexcept { return replicas_; }
  std::uint64_t batches_executed() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  void block_loop(std::size_t block);
  void bulk_block_loop(std::size_t block);

  PacketQueue inbox_;
  PacketQueue outbox_;
  std::uint32_t replicas_ = 1;
  // Exactly one of the two block vectors is populated (replicas == 1 vs > 1).
  std::vector<std::unique_ptr<BatchSearch>> blocks_;
  std::vector<std::unique_ptr<BulkBatchSearch>> bulk_blocks_;
  std::size_t rr_next_ = 0;  // synchronous-mode round-robin cursor
  std::atomic<std::uint64_t> batches_{0};
  bool started_ = false;

  // Pool-task accounting: stop() blocks until every submitted consumer
  // task has retired (ran to queue closure or observed it before running).
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::size_t pending_blocks_ = 0;
};

}  // namespace dabs
