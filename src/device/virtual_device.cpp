#include "device/virtual_device.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dabs {

VirtualDevice::VirtualDevice(const QuboModel& model,
                             const DeviceConfig& config,
                             MersenneSeeder& seeder)
    // A bulk block can retire `replicas` packets per pass, so the queues
    // must hold at least that many for the gather to ever fill a pass.
    : inbox_(std::max<std::size_t>(config.queue_capacity, config.replicas)),
      outbox_(std::max<std::size_t>(config.queue_capacity, config.replicas)),
      replicas_(config.replicas) {
  DABS_CHECK(config.blocks > 0, "device needs at least one block");
  DABS_CHECK(config.replicas > 0, "device needs at least one replica");
  if (config.replicas > 1) {
    bulk_blocks_.reserve(config.blocks);
    for (std::uint32_t b = 0; b < config.blocks; ++b) {
      bulk_blocks_.push_back(std::make_unique<BulkBatchSearch>(
          model, config.batch, config.replicas, seeder.next_seed()));
    }
  } else {
    blocks_.reserve(config.blocks);
    for (std::uint32_t b = 0; b < config.blocks; ++b) {
      blocks_.push_back(std::make_unique<BatchSearch>(model, config.batch,
                                                      seeder.next_seed()));
    }
  }
}

VirtualDevice::~VirtualDevice() { stop(); }

void VirtualDevice::start(ThreadPool& pool) {
  if (started_) return;
  started_ = true;
  const std::size_t count = block_count();
  {
    std::lock_guard lock(pending_mu_);
    pending_blocks_ = count;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    tasks.push_back([this, b] {
      block_loop(b);
      std::lock_guard lock(pending_mu_);
      --pending_blocks_;
      pending_cv_.notify_all();
    });
  }
  pool.submit_batch(std::move(tasks));
}

void VirtualDevice::stop() {
  // Close both queues before waiting: a block mid-push into a full outbox
  // must be released (its push fails harmlessly) or the wait would
  // deadlock.  A task still queued in the pool sees the closed inbox and
  // retires immediately.
  inbox_.close();
  outbox_.close();
  if (!started_) return;
  std::unique_lock lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_blocks_ == 0; });
  started_ = false;
}

Packet VirtualDevice::execute(const Packet& p, std::size_t block) {
  DABS_CHECK(bulk_blocks_.empty(),
             "execute() requires scalar blocks (replicas == 1)");
  DABS_CHECK(block < blocks_.size(), "block index out of range");
  const BatchResult r = blocks_[block]->run(p.solution, p.algo);
  batches_.fetch_add(1, std::memory_order_relaxed);
  Packet out = p;
  out.solution = r.best;
  out.energy = r.best_energy;
  return out;
}

bool VirtualDevice::process_next() {
  DABS_CHECK(bulk_blocks_.empty(),
             "process_next() requires scalar blocks (replicas == 1)");
  auto p = inbox_.try_pop();
  if (!p) return false;
  const std::size_t block = rr_next_;
  rr_next_ = (rr_next_ + 1) % blocks_.size();
  // Synchronous mode uses try_push-then-push so a full outbox is an error
  // surfaced to the caller rather than a silent deadlock.
  const Packet out = execute(*p, block);
  DABS_CHECK(outbox_.try_push(out),
             "synchronous outbox full: drain results before process_next");
  return true;
}

void VirtualDevice::block_loop(std::size_t block) {
  if (!bulk_blocks_.empty()) {
    bulk_block_loop(block);
    return;
  }
  for (;;) {
    auto p = inbox_.pop();
    if (!p) return;  // inbox closed and drained
    outbox_.push(execute(*p, block));
  }
}

void VirtualDevice::bulk_block_loop(std::size_t block) {
  BulkBatchSearch& bulk = *bulk_blocks_[block];
  const std::size_t replicas = bulk.replica_count();
  std::vector<Packet> sources;
  std::vector<BitVector> targets;
  for (;;) {
    sources.clear();
    targets.clear();
    // Block for one packet, then gather whatever else is immediately
    // available (up to the replica count) into the same bulk pass.
    auto p = inbox_.pop();
    if (!p) return;  // inbox closed and drained
    sources.push_back(std::move(*p));
    while (sources.size() < replicas) {
      Packet extra;
      if (inbox_.try_pop(extra) != PacketQueue::PopStatus::kItem) break;
      sources.push_back(std::move(extra));
    }
    targets.reserve(sources.size());
    for (const Packet& s : sources) targets.push_back(s.solution);
    std::vector<BatchResult> results = bulk.run(targets);
    batches_.fetch_add(results.size(), std::memory_order_relaxed);
    for (std::size_t i = 0; i < results.size(); ++i) {
      Packet out = sources[i];
      out.solution = std::move(results[i].best);
      out.energy = results[i].best_energy;
      if (!outbox_.push(std::move(out))) return;  // closed mid-shutdown
    }
  }
}

}  // namespace dabs
