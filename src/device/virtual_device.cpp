#include "device/virtual_device.hpp"

#include "util/assert.hpp"

namespace dabs {

VirtualDevice::VirtualDevice(const QuboModel& model,
                             const DeviceConfig& config,
                             MersenneSeeder& seeder)
    : inbox_(config.queue_capacity), outbox_(config.queue_capacity) {
  DABS_CHECK(config.blocks > 0, "device needs at least one block");
  blocks_.reserve(config.blocks);
  for (std::uint32_t b = 0; b < config.blocks; ++b) {
    blocks_.push_back(
        std::make_unique<BatchSearch>(model, config.batch, seeder.next_seed()));
  }
}

VirtualDevice::~VirtualDevice() { stop(); }

void VirtualDevice::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(blocks_.size());
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    threads_.emplace_back([this, b] { block_loop(b); });
  }
}

void VirtualDevice::stop() {
  if (!started_) {
    outbox_.close();
    inbox_.close();
    return;
  }
  // Close both queues before joining: a block mid-push into a full outbox
  // must be released (its push fails harmlessly) or join would deadlock.
  inbox_.close();
  outbox_.close();
  for (auto& t : threads_) t.join();
  threads_.clear();
  started_ = false;
}

Packet VirtualDevice::execute(const Packet& p, std::size_t block) {
  DABS_CHECK(block < blocks_.size(), "block index out of range");
  const BatchResult r = blocks_[block]->run(p.solution, p.algo);
  batches_.fetch_add(1, std::memory_order_relaxed);
  Packet out = p;
  out.solution = r.best;
  out.energy = r.best_energy;
  return out;
}

bool VirtualDevice::process_next() {
  auto p = inbox_.try_pop();
  if (!p) return false;
  const std::size_t block = rr_next_;
  rr_next_ = (rr_next_ + 1) % blocks_.size();
  // Synchronous mode uses try_push-then-push so a full outbox is an error
  // surfaced to the caller rather than a silent deadlock.
  const Packet out = execute(*p, block);
  DABS_CHECK(outbox_.try_push(out),
             "synchronous outbox full: drain results before process_next");
  return true;
}

void VirtualDevice::block_loop(std::size_t block) {
  for (;;) {
    auto p = inbox_.pop();
    if (!p) return;  // inbox closed and drained
    outbox_.push(execute(*p, block));
  }
}

}  // namespace dabs
