#include "device/packet_queue.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace dabs {

PacketQueue::PacketQueue(std::size_t capacity) : capacity_(capacity) {
  DABS_CHECK(capacity > 0, "queue capacity must be positive");
}

bool PacketQueue::push(Packet p) {
  std::unique_lock lock(mu_);
  cv_push_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(p));
  cv_pop_.notify_one();
  return true;
}

bool PacketQueue::try_push(Packet p) {
  std::lock_guard lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(p));
  cv_pop_.notify_one();
  return true;
}

std::optional<Packet> PacketQueue::pop() {
  std::unique_lock lock(mu_);
  cv_pop_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Packet p = std::move(items_.front());
  items_.pop_front();
  cv_push_.notify_one();
  return p;
}

std::optional<Packet> PacketQueue::try_pop() {
  Packet p;
  return try_pop(p) == PopStatus::kItem ? std::optional<Packet>(std::move(p))
                                        : std::nullopt;
}

PacketQueue::PopStatus PacketQueue::try_pop(Packet& out) {
  std::lock_guard lock(mu_);
  if (items_.empty()) {
    return closed_ ? PopStatus::kClosed : PopStatus::kEmpty;
  }
  out = std::move(items_.front());
  items_.pop_front();
  cv_push_.notify_one();
  return PopStatus::kItem;
}

PacketQueue::PopStatus PacketQueue::pop_wait(Packet& out, double seconds) {
  std::unique_lock lock(mu_);
  cv_pop_.wait_for(lock, std::chrono::duration<double>(seconds),
                   [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) {
    return closed_ ? PopStatus::kClosed : PopStatus::kEmpty;
  }
  out = std::move(items_.front());
  items_.pop_front();
  cv_push_.notify_one();
  return PopStatus::kItem;
}

bool PacketQueue::drained() const {
  std::lock_guard lock(mu_);
  return closed_ && items_.empty();
}

void PacketQueue::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  cv_push_.notify_all();
  cv_pop_.notify_all();
}

bool PacketQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t PacketQueue::size() const {
  std::lock_guard lock(mu_);
  return items_.size();
}

}  // namespace dabs
