#include "device/device_group.hpp"

#include "util/assert.hpp"

namespace dabs {

DeviceGroup::DeviceGroup(const QuboModel& model, std::size_t devices,
                         const DeviceConfig& config, MersenneSeeder& seeder) {
  DABS_CHECK(devices > 0, "device group needs at least one device");
  devices_.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    devices_.push_back(std::make_unique<VirtualDevice>(model, config, seeder));
  }
}

void DeviceGroup::start_all() {
  for (auto& d : devices_) d->start();
}

void DeviceGroup::stop_all() {
  for (auto& d : devices_) d->stop();
}

std::uint64_t DeviceGroup::total_batches() const {
  std::uint64_t total = 0;
  for (const auto& d : devices_) total += d->batches_executed();
  return total;
}

}  // namespace dabs
