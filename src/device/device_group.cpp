#include "device/device_group.hpp"

#include "util/assert.hpp"

namespace dabs {

DeviceGroup::DeviceGroup(const QuboModel& model, std::size_t devices,
                         const DeviceConfig& config, MersenneSeeder& seeder) {
  DABS_CHECK(devices > 0, "device group needs at least one device");
  devices_.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    devices_.push_back(std::make_unique<VirtualDevice>(model, config, seeder));
  }
}

DeviceGroup::~DeviceGroup() {
  // Devices must retire their pool tasks before the pool itself is torn
  // down (member destruction alone would destroy pool_ first).
  stop_all();
}

void DeviceGroup::start_all() {
  if (!pool_) {
    std::size_t workers = 0;
    for (const auto& d : devices_) workers += d->block_count();
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  for (auto& d : devices_) d->start(*pool_);
}

void DeviceGroup::stop_all() {
  for (auto& d : devices_) d->stop();
  pool_.reset();
}

std::uint64_t DeviceGroup::total_batches() const {
  std::uint64_t total = 0;
  for (const auto& d : devices_) total += d->batches_executed();
  return total;
}

}  // namespace dabs
