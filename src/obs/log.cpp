#include "obs/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace dabs::obs {
namespace {

struct LogConfig {
  LogLevel level = LogLevel::kWarn;
  bool json = false;
};

std::mutex& sink_mu() {
  static std::mutex mu;
  return mu;
}

std::function<void(const std::string&)>& sink_ref() {
  static std::function<void(const std::string&)> sink;
  return sink;
}

LogConfig parse_spec(std::string_view spec) {
  LogConfig config;
  std::string_view level = spec;
  const std::size_t comma = spec.find(',');
  if (comma != std::string_view::npos) {
    level = spec.substr(0, comma);
    std::string_view rest = spec.substr(comma + 1);
    if (rest == "json") config.json = true;
  }
  if (level == "debug") {
    config.level = LogLevel::kDebug;
  } else if (level == "info") {
    config.level = LogLevel::kInfo;
  } else if (level == "warn" || level.empty()) {
    config.level = LogLevel::kWarn;
  } else if (level == "error") {
    config.level = LogLevel::kError;
  } else if (level == "off") {
    config.level = LogLevel::kOff;
  } else {
    config.level = LogLevel::kWarn;
  }
  return config;
}

LogConfig initial_config() {
  const char* env = std::getenv("DABS_LOG");
  return parse_spec(env == nullptr ? std::string_view{} : env);
}

// Packed as level | (json << 8) in one atomic so readers never see a torn
// config.
std::atomic<unsigned>& config_word() {
  static std::atomic<unsigned> word([] {
    const LogConfig c = initial_config();
    return static_cast<unsigned>(c.level) | (c.json ? 0x100u : 0u);
  }());
  return word;
}

LogConfig current_config() noexcept {
  const unsigned word = config_word().load(std::memory_order_relaxed);
  LogConfig c;
  c.level = static_cast<LogLevel>(word & 0xff);
  c.json = (word & 0x100u) != 0;
  return c;
}

void format_timestamp(char* buf, std::size_t size) {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  tm parts{};
  const time_t secs = ts.tv_sec;
  gmtime_r(&secs, &parts);
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                parts.tm_year + 1900, parts.tm_mon + 1, parts.tm_mday,
                parts.tm_hour, parts.tm_min, parts.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000));
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
}

// Raw EINTR-safe write to stderr.  Deliberately not net_util's write_all —
// obs sits below net in the layer order and must not depend on it.  Errors
// (including EPIPE; SIGPIPE is ignored/handled process-wide by the CLI and
// server paths) are swallowed: logging must never take the process down.
void write_stderr(const std::string& line) {
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(2, data, left);
    if (n > 0) {
      data += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // EPIPE, EAGAIN on a weird stderr, ENOSPC... drop the line.
  }
}

std::int64_t steady_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

LogLevel log_level() noexcept { return current_config().level; }

bool log_enabled(LogLevel level) noexcept {
  return level >= current_config().level && level != LogLevel::kOff;
}

void log_configure(std::string_view spec) {
  const LogConfig c = parse_spec(spec);
  config_word().store(
      static_cast<unsigned>(c.level) | (c.json ? 0x100u : 0u),
      std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view component, std::string_view message,
         std::initializer_list<LogField> fields) {
  const LogConfig config = current_config();
  if (level < config.level || level == LogLevel::kOff) return;

  char stamp[96];
  format_timestamp(stamp, sizeof(stamp));

  std::string line;
  line.reserve(128);
  if (config.json) {
    line += "{\"ts\":\"";
    line += stamp;
    line += "\",\"level\":\"";
    line += to_string(level);
    line += "\",\"component\":\"";
    append_json_escaped(line, component);
    line += "\",\"msg\":\"";
    append_json_escaped(line, message);
    line += '"';
    for (const LogField& f : fields) {
      line += ",\"";
      append_json_escaped(line, f.key);
      line += "\":\"";
      append_json_escaped(line, f.value);
      line += '"';
    }
    line += "}\n";
  } else {
    line += stamp;
    line += ' ';
    line += to_string(level);
    line += ' ';
    line += component;
    line += ": ";
    line += message;
    for (const LogField& f : fields) {
      line += ' ';
      line += f.key;
      line += "=\"";
      for (char c : f.value) {
        if (c == '"' || c == '\\') line += '\\';
        line += c == '\n' ? ' ' : c;
      }
      line += '"';
    }
    line += '\n';
  }

  std::lock_guard<std::mutex> lock(sink_mu());
  auto& sink = sink_ref();
  if (sink) {
    sink(line);
  } else {
    write_stderr(line);
  }
}

void log_set_sink(std::function<void(const std::string& line)> sink) {
  std::lock_guard<std::mutex> lock(sink_mu());
  sink_ref() = std::move(sink);
}

bool LogRateLimit::allow(std::uint64_t* suppressed) noexcept {
  const std::int64_t now = steady_ns();
  std::int64_t last = last_ns_.load(std::memory_order_relaxed);
  // last == 0 means "never fired"; the first caller always wins.
  if (last != 0 && now - last < interval_ns_) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!last_ns_.compare_exchange_strong(last, now,
                                        std::memory_order_relaxed)) {
    // Another thread claimed this interval.
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (suppressed != nullptr) {
    *suppressed = suppressed_.exchange(0, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace dabs::obs
