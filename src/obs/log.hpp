// Leveled structured logger for the service/net layers.  One line per
// event, written to stderr with a single EINTR-safe write(2) so concurrent
// processes (forked shard workers) never interleave mid-line and a SIGPIPE'd
// or full stderr cannot wedge a worker.
//
// Configuration comes from the DABS_LOG environment variable, read once:
//
//   DABS_LOG=level[,json]      level in {debug, info, warn, error, off}
//
// Default is `warn` — production runs stay quiet unless something is wrong.
// Text form:
//
//   2026-08-07T12:00:00.000Z WARN journal: append failed error="ENOSPC"
//
// JSON form (DABS_LOG=warn,json) emits one object per line with the same
// fields, for log shippers.
//
// Call sites that can fire at high frequency (journal append on a dying
// disk, shard RPC failures in a crash loop) guard with a LogRateLimit so
// stderr sees at most one line per interval, with a `suppressed=N` count
// attached when the gate reopens.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>

namespace dabs::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level) noexcept;

/// One key="value" pair attached to a log line.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, std::int64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, std::uint64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, int v) : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, double v);
};

/// Current threshold (parsed from DABS_LOG on first use).
LogLevel log_level() noexcept;

/// True when a line at `level` would be emitted — use to skip expensive
/// field formatting.
bool log_enabled(LogLevel level) noexcept;

/// Programmatic override of the DABS_LOG spec ("level[,json]"); unknown
/// levels fall back to warn.  Mostly for tests and CLI flags.
void log_configure(std::string_view spec);

/// Emit one line.  `component` is a short subsystem tag (journal, batch,
/// shard, serve, http); `message` is a fixed human phrase; variable data
/// goes in `fields`.
void log(LogLevel level, std::string_view component, std::string_view message,
         std::initializer_list<LogField> fields = {});

/// Test hook: redirect formatted lines (newline included) to `sink`
/// instead of stderr.  Pass nullptr to restore the default.  Not for
/// production use.
void log_set_sink(std::function<void(const std::string& line)> sink);

/// Per-call-site flood gate.  Declare one (function-local static) next to
/// the log call; allow() grants at most one emission per interval and
/// reports how many attempts were swallowed since the last grant.
///
///   static obs::LogRateLimit gate(5.0);
///   std::uint64_t suppressed = 0;
///   if (gate.allow(&suppressed)) {
///     obs::log(obs::LogLevel::kWarn, "journal", "append failed",
///              {{"error", err}, {"suppressed", suppressed}});
///   }
class LogRateLimit {
 public:
  explicit LogRateLimit(double min_interval_seconds) noexcept
      : interval_ns_(static_cast<std::int64_t>(min_interval_seconds * 1e9)) {}

  /// Thread-safe.  Returns true when this call may log; *suppressed (may
  /// be nullptr) receives the number of suppressed attempts since the
  /// previous grant.
  bool allow(std::uint64_t* suppressed = nullptr) noexcept;

 private:
  std::int64_t interval_ns_;
  std::atomic<std::int64_t> last_ns_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace dabs::obs
