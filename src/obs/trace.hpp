// Per-job trace spans, dumped as Chrome trace-event JSON ("Trace Event
// Format", the array-of-events form) so a multi-job batch or server run
// opens directly in chrome://tracing / Perfetto as a flame view: one row
// per job, a "queued" span from submission to first execution, a
// "run:<solver>" span to the terminal state, and instant markers for the
// progress ticks in between.
//
// The collector itself is generic (spans + instants, thread-safe append);
// append_job_trace() maps one job's lifecycle — the timestamps carried by
// service::JobSnapshot — onto it.  All times are seconds on one process's
// service epoch; Chrome wants microseconds, the writer converts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dabs::obs {

/// ph:"X" complete event.
struct TraceSpan {
  std::string name;
  std::string category;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;  // chrome renders one row per (pid, tid)
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// ph:"i" instant event (thread scope).
struct TraceInstant {
  std::string name;
  std::string category;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  double at_seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceCollector {
 public:
  void add_span(TraceSpan span);
  void add_instant(TraceInstant instant);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// {"traceEvents": [...]} — the envelope chrome://tracing expects.
  void write_chrome_json(std::ostream& out) const;

  /// Writes the Chrome JSON to `path`; on failure logs a warning (component
  /// "trace") and returns false instead of throwing — tracing must never
  /// fail a run that otherwise succeeded.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
};

/// One finished (or at least submitted) job's lifecycle, decoupled from the
/// service layer's types so obs stays dependency-free: the service/net
/// callers copy the handful of fields out of their JobSnapshot.
/// Timestamps are seconds on the owning service's epoch; negative means
/// "never reached" (e.g. started_seconds for a rejected job).
struct JobTrace {
  std::uint64_t job_id = 0;
  std::string tag;
  std::string solver;
  std::string state;  // terminal state name: done/failed/cancelled/rejected
  double submitted_seconds = -1.0;
  double started_seconds = -1.0;
  double finished_seconds = -1.0;

  struct Tick {
    std::string kind;       // "tick" | "new_best"
    double at_seconds = 0;  // relative to started_seconds
    double best_energy = 0;
    std::uint64_t work = 0;
  };
  std::vector<Tick> ticks;
};

/// Maps one job onto the collector: queued span, run span, tick instants.
/// Jobs that never started get a single queued span to their terminal time;
/// jobs with no terminal time (still live at dump) are skipped.
void append_job_trace(TraceCollector& collector, const JobTrace& job);

}  // namespace dabs::obs
