#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "io/json_writer.hpp"
#include "obs/log.hpp"

namespace dabs::obs {
namespace {

std::int64_t to_micros(double seconds) {
  if (seconds < 0) return 0;
  return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

void write_args(io::JsonWriter& w,
                const std::vector<std::pair<std::string, std::string>>& args) {
  if (args.empty()) return;
  w.begin_object("args");
  for (const auto& [k, v] : args) w.value(k, v);
  w.end_object();
}

std::string format_energy(double e) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", e);
  return buf;
}

}  // namespace

void TraceCollector::add_span(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void TraceCollector::add_instant(TraceInstant instant) {
  std::lock_guard<std::mutex> lock(mu_);
  instants_.push_back(std::move(instant));
}

std::size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size() + instants_.size();
}

void TraceCollector::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  io::JsonWriter w(out);
  w.begin_object();
  w.begin_array("traceEvents");
  for (const auto& span : spans_) {
    w.begin_object();
    w.value("name", span.name);
    w.value("cat", span.category.empty() ? "job" : span.category);
    w.value("ph", "X");
    w.value("ts", to_micros(span.start_seconds));
    w.value("dur", to_micros(span.duration_seconds));
    w.value("pid", span.pid);
    w.value("tid", span.tid);
    write_args(w, span.args);
    w.end_object();
  }
  for (const auto& instant : instants_) {
    w.begin_object();
    w.value("name", instant.name);
    w.value("cat", instant.category.empty() ? "job" : instant.category);
    w.value("ph", "i");
    w.value("s", "t");
    w.value("ts", to_micros(instant.at_seconds));
    w.value("pid", instant.pid);
    w.value("tid", instant.tid);
    write_args(w, instant.args);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

bool TraceCollector::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log(LogLevel::kWarn, "trace", "cannot open trace file",
        {{"path", path}});
    return false;
  }
  write_chrome_json(out);
  out.flush();
  if (!out) {
    log(LogLevel::kWarn, "trace", "trace file write failed",
        {{"path", path}});
    return false;
  }
  return true;
}

void append_job_trace(TraceCollector& collector, const JobTrace& job) {
  if (job.submitted_seconds < 0 || job.finished_seconds < 0) return;

  const std::uint64_t tid = job.job_id;
  std::vector<std::pair<std::string, std::string>> args;
  if (!job.tag.empty()) args.emplace_back("tag", job.tag);
  if (!job.solver.empty()) args.emplace_back("solver", job.solver);
  if (!job.state.empty()) args.emplace_back("state", job.state);
  args.emplace_back("job_id", std::to_string(job.job_id));

  const bool ran = job.started_seconds >= job.submitted_seconds;
  const double queued_end = ran ? job.started_seconds : job.finished_seconds;

  TraceSpan queued;
  queued.name = "queued";
  queued.category = "job";
  queued.tid = tid;
  queued.start_seconds = job.submitted_seconds;
  queued.duration_seconds = queued_end - job.submitted_seconds;
  queued.args = args;
  collector.add_span(std::move(queued));

  if (ran) {
    TraceSpan run;
    run.name = job.solver.empty() ? "run" : "run:" + job.solver;
    run.category = "job";
    run.tid = tid;
    run.start_seconds = job.started_seconds;
    run.duration_seconds = job.finished_seconds - job.started_seconds;
    run.args = std::move(args);
    collector.add_span(std::move(run));

    for (const auto& tick : job.ticks) {
      TraceInstant instant;
      instant.name = tick.kind;
      instant.category = "progress";
      instant.tid = tid;
      instant.at_seconds = job.started_seconds + tick.at_seconds;
      instant.args.emplace_back("best_energy", format_energy(tick.best_energy));
      instant.args.emplace_back("work", std::to_string(tick.work));
      collector.add_instant(std::move(instant));
    }
  }
}

}  // namespace dabs::obs
