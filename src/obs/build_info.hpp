// Build provenance for /v1/healthz: version, git describe, compiler, and
// flags, captured at configure time into a generated header
// (build/generated/dabs_version.hpp) that only build_info.cpp includes —
// so nothing else rebuilds when the git hash moves.
#pragma once

#include <string>

namespace dabs::obs {

struct BuildInfo {
  std::string version;     // project version, e.g. "0.1.0"
  std::string git;         // `git describe --always --dirty`, or "unknown"
  std::string compiler;    // "GNU 13.2.0"
  std::string build_type;  // "Release", "RelWithDebInfo", ...
  std::string flags;       // CMAKE_CXX_FLAGS + per-build-type flags
};

/// The values baked into this binary.
const BuildInfo& build_info();

}  // namespace dabs::obs
